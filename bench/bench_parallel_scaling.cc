// Parallel scaling of the deterministic hot paths (DESIGN.md §9):
// ops/sec by thread count for the selection-game utility scan, the
// merging-game replicator, Merkle batch roots, and VRF batch
// verification. Every kernel produces byte-identical results at every
// thread count (asserted here against the serial run before timing),
// so the only thing that may change with the thread knob is speed.
//
// Emits BENCH_parallel.json into the working directory for CI
// artifact collection.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/emit_json.h"
#include "common/rng.h"
#include "core/unification.h"
#include "core/unification_codec.h"
#include "crypto/merkle.h"
#include "crypto/vrf.h"
#include "parallel/thread_pool.h"

namespace shardchain {
namespace {

using Clock = std::chrono::steady_clock;  // detlint:allow(wall-clock): bench timing

const size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr double kMinSeconds = 0.25;

struct KernelResult {
  std::string name;
  size_t threads = 1;
  double ops_per_sec = 0.0;
  double speedup = 1.0;
};

/// Times `op` (which must consume its result via the returned checksum
/// so the optimizer cannot elide work): runs for >= kMinSeconds and
/// returns invocations per second.
double MeasureOpsPerSec(const std::function<uint64_t()>& op) {
  uint64_t sink = op();  // Warm-up (and first correctness pass).
  size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    sink ^= op();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < kMinSeconds);
  // Keep `sink` observable.
  if (sink == 0xdeadbeefdeadbeefull) std::printf("(unlikely checksum)\n");
  return static_cast<double>(iters) / elapsed;
}

uint64_t Checksum(const Bytes& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : bytes) h = (h ^ b) * 1099511628211ull;
  return h;
}

/// A kernel exposes one operation parameterized by a pool; the harness
/// verifies parallel output equals serial output, then times it at
/// every thread count.
struct Kernel {
  std::string name;
  std::function<uint64_t(ThreadPool*)> op;
};

std::vector<Kernel> BuildKernels() {
  std::vector<Kernel> kernels;

  // --- Selection game: per-transaction utility scans in the sweep ---
  {
    auto params = std::make_shared<UnifiedParameters>();
    Rng rng(101);
    params->randomness = Sha256Digest("bench.parallel.select");
    for (int t = 0; t < 4000; ++t) {
      params->tx_fees.push_back(static_cast<Amount>(1 + rng.Zipf(400, 1.1)));
    }
    params->num_miners = 20;
    params->select_config.capacity = 10;
    kernels.push_back({"selection_game", [params](ThreadPool* pool) {
                         return Checksum(codec::EncodeSelectionPlan(
                             ComputeSelectionPlan(*params, pool)));
                       }});
  }

  // --- Merging game: Monte-Carlo replicator dynamics ----------------
  {
    auto params = std::make_shared<UnifiedParameters>();
    Rng rng(202);
    params->randomness = Sha256Digest("bench.parallel.merge");
    for (int s = 0; s < 24; ++s) {
      params->shard_sizes.push_back(1 + rng.UniformInt(19));
    }
    params->merge_config.subslots = 64;
    params->merge_config.max_slots = 120;
    params->num_miners = 24;
    kernels.push_back({"merging_replicator", [params](ThreadPool* pool) {
                         return Checksum(codec::EncodeMergePlan(
                             ComputeMergePlan(*params, pool)));
                       }});
  }

  // --- Merkle batch root --------------------------------------------
  {
    auto leaves = std::make_shared<std::vector<Hash256>>();
    Rng rng(303);
    leaves->resize(50'000);
    for (Hash256& leaf : *leaves) {
      leaf = Sha256Digest("leaf." + std::to_string(rng.Next()));
    }
    kernels.push_back({"merkle_batch_root", [leaves](ThreadPool* pool) {
                         return MerkleRoot(*leaves, pool).Prefix64();
                       }});
  }

  // --- VRF batch verification ---------------------------------------
  {
    struct VrfFixture {
      std::vector<KeyPair> keys;
      std::vector<VrfOutput> outs;
      Hash256 seed;
    };
    auto fx = std::make_shared<VrfFixture>();
    Rng rng(404);
    fx->seed = Sha256Digest("bench.parallel.vrf");
    for (int i = 0; i < 48; ++i) {
      fx->keys.push_back(KeyPair::Generate(&rng));
      fx->outs.push_back(VrfEvaluate(fx->keys.back(), fx->seed));
    }
    kernels.push_back({"vrf_verify_batch", [fx](ThreadPool* pool) {
                         std::vector<const PublicKey*> pks;
                         std::vector<const VrfOutput*> outs;
                         for (size_t i = 0; i < fx->keys.size(); ++i) {
                           pks.push_back(&fx->keys[i].public_key());
                           outs.push_back(&fx->outs[i]);
                         }
                         const std::vector<uint8_t> valid =
                             VrfVerifyBatch(pks, fx->seed, outs, pool);
                         uint64_t h = 0;
                         for (uint8_t v : valid) h = h * 31 + v;
                         return h;
                       }});
  }
  return kernels;
}

}  // namespace
}  // namespace shardchain

int main() {
  using namespace shardchain;
  using bench::Fmt;

  bench::Banner(
      "BENCH parallel scaling (DESIGN.md §9)",
      "deterministic parallelism: identical bytes at every thread count; "
      "speed is the only degree of freedom");
  std::printf("hardware_concurrency = %u\n",
              std::thread::hardware_concurrency());

  std::vector<KernelResult> results;
  for (const Kernel& kernel : BuildKernels()) {
    // Correctness gate before timing: parallel bytes == serial bytes.
    const uint64_t serial_sum = kernel.op(nullptr);
    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      if (kernel.op(&pool) != serial_sum) {
        std::fprintf(stderr, "FATAL: %s diverged at %zu threads\n",
                     kernel.name.c_str(), threads);
        return 1;
      }
    }

    bench::Row({"kernel", "threads", "ops/sec", "speedup"});
    double baseline = 0.0;
    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      ThreadPool* p = threads == 1 ? nullptr : &pool;
      KernelResult r;
      r.name = kernel.name;
      r.threads = threads;
      r.ops_per_sec = MeasureOpsPerSec([&] { return kernel.op(p); });
      if (threads == 1) baseline = r.ops_per_sec;
      r.speedup = baseline > 0.0 ? r.ops_per_sec / baseline : 1.0;
      results.push_back(r);
      bench::Row({kernel.name, std::to_string(threads),
                  Fmt(r.ops_per_sec, 2), Fmt(r.speedup, 2)});
    }
    std::printf("\n");
  }

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", bench::Json::Str("parallel_scaling"));
  doc.Set("hardware_concurrency",
          bench::Json::Int(std::thread::hardware_concurrency()));
  doc.Set("determinism",
          bench::Json::Str("all kernels byte-identical to threads=1"));
  bench::Json arr = bench::Json::Array();
  for (const KernelResult& r : results) {
    bench::Json row = bench::Json::Object();
    row.Set("kernel", bench::Json::Str(r.name));
    row.Set("threads", bench::Json::Int(static_cast<int64_t>(r.threads)));
    row.Set("ops_per_sec", bench::Json::Num(r.ops_per_sec));
    row.Set("speedup_vs_serial", bench::Json::Num(r.speedup));
    arr.Push(std::move(row));
  }
  doc.Set("results", std::move(arr));
  const std::string path = "BENCH_parallel.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
