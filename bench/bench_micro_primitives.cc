// Micro-benchmarks (google-benchmark) for the substrate primitives:
// hashing, signatures, Merkle trees, the contract VM, the transaction
// pool, and both game algorithms. These are not paper figures; they
// document the cost model of the library.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "contract/assembler.h"
#include "contract/registry.h"
#include "core/merging_game.h"
#include "core/selection_game.h"
#include "crypto/keys.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/vrf.h"
#include "state/statedb.h"
#include "txpool/txpool.h"

namespace {

using namespace shardchain;

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_LamportSign(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(1);
  const Hash256 msg = Sha256Digest("message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.Sign(msg));
  }
}
BENCHMARK(BM_LamportSign);

void BM_LamportVerify(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(2);
  const Hash256 msg = Sha256Digest("message");
  const Signature sig = kp.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Verify(kp.public_key(), msg, sig));
  }
}
BENCHMARK(BM_LamportVerify);

void BM_VrfEvaluate(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(3);
  const Hash256 seed = Sha256Digest("epoch");
  for (auto _ : state) {
    benchmark::DoNotOptimize(VrfEvaluate(kp, seed));
  }
}
BENCHMARK(BM_VrfEvaluate);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256Digest("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleRoot(leaves));
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(10)->Arg(100)->Arg(1000);

void BM_VmConditionalTransfer(benchmark::State& state) {
  StateDB db;
  Address recipient;
  recipient.bytes.fill(2);
  const ContractProgram program =
      contracts::ConditionalTransfer(recipient, 1u << 30);
  Address caller;
  caller.bytes.fill(1);
  db.Mint(caller, ~uint64_t{0} >> 1);
  CallContext ctx;
  ctx.contract = Address::ForContract(caller, 0);
  ctx.caller = caller;
  ctx.call_value = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Vm::Execute(program, ctx, &db));
  }
}
BENCHMARK(BM_VmConditionalTransfer);

void BM_TxPoolAddRemove(benchmark::State& state) {
  Rng rng(4);
  std::vector<Transaction> txs;
  for (int64_t i = 0; i < state.range(0); ++i) {
    Transaction tx;
    tx.fee = rng.UniformRange(1, 1000);
    tx.nonce = static_cast<uint64_t>(i);
    txs.push_back(tx);
  }
  for (auto _ : state) {
    TxPool pool;
    for (const auto& tx : txs) benchmark::DoNotOptimize(pool.Add(tx).ok());
    benchmark::DoNotOptimize(pool.TopByFee(10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TxPoolAddRemove)->Arg(100)->Arg(1000);

void BM_SelectionGame(benchmark::State& state) {
  Rng fee_rng(5);
  std::vector<Amount> fees;
  for (int64_t i = 0; i < state.range(0); ++i) {
    fees.push_back(fee_rng.Binomial(200, 0.5) + 1);
  }
  const size_t miners = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    Rng rng(6);
    benchmark::DoNotOptimize(RunSelectionGame(fees, miners, {10, 1000}, &rng));
  }
}
BENCHMARK(BM_SelectionGame)->Args({200, 9})->Args({1000, 50});

void BM_MergingGame(benchmark::State& state) {
  Rng size_rng(7);
  std::vector<uint64_t> sizes;
  for (int64_t i = 0; i < state.range(0); ++i) {
    sizes.push_back(static_cast<uint64_t>(size_rng.UniformRange(1, 9)));
  }
  MergingGameConfig config;
  config.min_shard_size = 20;
  config.subslots = 16;
  config.max_slots = 100;
  for (auto _ : state) {
    Rng rng(8);
    benchmark::DoNotOptimize(RunOneTimeMerge(sizes, config, &rng));
  }
}
BENCHMARK(BM_MergingGame)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
