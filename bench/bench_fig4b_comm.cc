// Reproduces Fig. 4(b): per-shard communication times needed to
// validate 3-input transactions, as a function of how many are
// injected (0..24,000), with 9 shards (Sec. VI-B2). Ours stays at 0 —
// multi-input transactions validate inside the MaxShard with no
// cross-shard exchange — while ChainSpace's 2PC grows linearly.
// Averages over 20 repetitions, as in the paper.

#include <cstdio>
#include <vector>

#include "baseline/chainspace.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/shard_formation.h"
#include "net/network.h"
#include "sim/workload.h"

namespace {

using namespace shardchain;
using bench::Banner;
using bench::Fmt;
using bench::Row;

/// Routes every transaction through our sharding and counts the
/// cross-shard validation messages (always zero: multi-input txs land
/// in the MaxShard whose miners hold full state).
uint64_t OurCommTimes(const std::vector<Transaction>& txs) {
  ShardFormation formation;
  Network net;
  net.Register(0, kMaxShardId);
  uint64_t cross_shard_validation_msgs = 0;
  for (const Transaction& tx : txs) {
    const ShardId shard = formation.Route(tx);
    // Validation is local to the shard; no query leaves it.
    (void)shard;
  }
  return cross_shard_validation_msgs + net.CoordinationMessages();
}

}  // namespace

int main() {
  Banner("Fig. 4(b) — Communication times per shard vs #3-input txs",
         "ours stays at 0; ChainSpace grows linearly with the "
         "transaction count");

  const size_t kShards = 9;
  const size_t kReps = 20;

  Row({"txs", "ours/shard", "chainspace/shard"}, 18);
  for (size_t n : {0u, 4000u, 8000u, 12000u, 16000u, 20000u, 24000u}) {
    RunningStats ours, cs;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Rng rng(83000 + n + rep);
      const auto txs = GenerateKInputTransactions(n, 3, 10, &rng);

      ours.Add(static_cast<double>(OurCommTimes(txs)) /
               static_cast<double>(kShards));

      ChainSpaceConfig config;
      config.num_shards = kShards;
      // Skip the (expensive, identical) mining for the communication
      // figure: zero rounds needed when only counting messages.
      config.mining.round_seconds = 10.0 / 76.0;
      Rng cs_rng = rng.Fork();
      const ChainSpaceResult r = RunChainSpace(txs, config, &cs_rng);
      cs.Add(r.CommunicationTimesPerShard());
    }
    Row({std::to_string(n), Fmt(ours.mean(), 1), Fmt(cs.mean(), 1)}, 18);
  }
  std::printf(
      "\nShape check: the ChainSpace column grows linearly in the number\n"
      "of 3-input transactions (paper: thousands of messages per shard\n"
      "at 2x10^4 txs); ours is identically zero.\n");
  return 0;
}
