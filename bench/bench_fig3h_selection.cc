// Reproduces Fig. 3(h): throughput improvement of the intra-shard
// transaction-selection algorithm (Algorithm 2) with 1..9 miners in a
// single shard, 200 injected transactions, one block per miner per
// minute (Sec. VI-D). Paper: ~300% average improvement.

#include <cstdio>
#include <vector>

#include "baseline/ethereum.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/mining_sim.h"
#include "sim/workload.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::Fmt;
  using bench::Row;

  Banner("Fig. 3(h) — Intra-shard transaction selection, 1..9 miners",
         "average throughput improvement ~300% (3x)");

  MiningSimConfig greedy;
  greedy.round_seconds = 60.0;
  greedy.txs_per_block = 10;
  greedy.policy = SelectionPolicy::kGreedy;

  MiningSimConfig game = greedy;
  game.policy = SelectionPolicy::kCongestionGame;

  WorkloadConfig wl;
  wl.num_transactions = 200;
  wl.fee_model = FeeModel::kBinomial;

  const size_t kReps = 20;
  Row({"miners", "improvement"});
  RunningStats average;
  for (size_t miners = 1; miners <= 9; ++miners) {
    RunningStats improvement;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Rng rng(61000 + miners * 100 + rep);
      Workload w = GenerateWorkload(wl, &rng);
      std::vector<Amount> fees;
      for (const auto& tx : w.transactions) fees.push_back(tx.fee);

      // Ethereum reference: the same shard and miners, greedy policy.
      Rng eth_rng = rng.Fork();
      const SimResult eth = RunEthereumBaseline(fees, miners, greedy,
                                                &eth_rng);
      Rng game_rng = rng.Fork();
      const SimResult with_game =
          RunMiningSim({[&] {
            ShardSpec spec;
            spec.num_miners = miners;
            spec.tx_fees = fees;
            return spec;
          }()}, game, &game_rng);
      improvement.Add(ThroughputImprovement(eth, with_game));
    }
    Row({std::to_string(miners), Fmt(improvement.mean())});
    average.Add(improvement.mean());
  }
  std::printf("\nHeadline: average improvement %.2fx (paper: ~3x with up "
              "to 9 miners).\n",
              average.mean());
  return 0;
}
