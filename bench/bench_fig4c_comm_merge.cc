// Reproduces Fig. 4(c): per-shard communication times of the merging
// process under parameter unification, as a function of the number of
// small shards (0..6 of 7 shards; Sec. VI-B2). Each shard submits its
// transaction count to the verifiable leader and receives the unified
// parameters back: exactly 2 messages per shard, independent of the
// number of small shards. An ablation arm shows what the game would
// cost with per-iteration gossip instead (Sec. IV-C).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/merging_game.h"
#include "core/unification.h"
#include "net/network.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::Fmt;
  using bench::Row;

  Banner("Fig. 4(c) — Communication times per shard during merging",
         "constant 2 messages per shard under parameter unification");

  const size_t kShards = 7;
  Row({"small", "unified/shard", "gossip/shard (ablation)"}, 24);
  for (size_t small = 0; small <= 6; ++small) {
    // Parameter-unification arm: every shard representative sends its
    // stats to the leader and receives the broadcast, regardless of how
    // many shards are small.
    Network net;
    std::vector<NodeId> reps;
    for (NodeId n = 0; n < kShards; ++n) {
      net.Register(n, n);
      if (n > 0) reps.push_back(n);
    }
    RunUnificationRound(&net, /*leader=*/0, reps);
    const double unified =
        static_cast<double>(net.CoordinationMessages()) /
        static_cast<double>(kShards - 1);

    // Gossip ablation: the small shards iterate Algorithm 3 by
    // exchanging choices each slot.
    Network gossip_net;
    std::vector<NodeId> players;
    for (NodeId n = 0; n < small; ++n) {
      gossip_net.Register(n, n);
      players.push_back(n);
    }
    double gossip = 0.0;
    if (small >= 2) {
      MergingGameConfig merge;
      merge.min_shard_size = 20;
      merge.subslots = 16;
      merge.max_slots = 120;
      Rng rng(90000 + small);
      std::vector<uint64_t> sizes;
      for (size_t i = 0; i < small; ++i) {
        sizes.push_back(static_cast<uint64_t>(rng.UniformRange(1, 9)));
      }
      const OneTimeMergeResult one = RunOneTimeMerge(sizes, merge, &rng);
      RunGossipIterations(&gossip_net, players, one.slots_used);
      gossip = static_cast<double>(gossip_net.CoordinationMessages()) /
               static_cast<double>(kShards);
    }
    Row({std::to_string(small), Fmt(unified, 1), Fmt(gossip, 1)}, 24);
  }
  std::printf(
      "\nShape check: the unified column is the constant 2 the paper\n"
      "reports; without unification the gossip cost scales with both the\n"
      "shard count and the game's iteration count.\n");
  return 0;
}
