// State-commitment scaling (DESIGN.md §10): cost of the incremental
// authenticated state vs the pre-incremental baseline, by account
// count, for the three hot operations the chain performs per block:
//
//   root_update      — mutate a fixed number of accounts, re-derive the
//                      state root. old: rebuild the whole trie with
//                      fresh digests (O(n)); new: re-leaf only the
//                      dirty accounts (O(dirty · depth)).
//   snapshot_revert  — take a revert point, write, roll back. old:
//                      full account-map copy out and back; new:
//                      journaled undo log (O(writes)).
//   block_build      — pack a 10-tx block on a funded state. old:
//                      per-candidate StateDB copy + from-scratch root;
//                      new: journaled trials + incremental root.
//
// The bench is also a correctness gate: before any timing, every
// scenario asserts the incremental root is byte-identical to the
// from-scratch rebuild (the consensus invariant the optimization must
// preserve) and aborts on divergence.
//
// Emits BENCH_state.json into the working directory for CI artifact
// collection.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/emit_json.h"
#include "chain/ledger.h"
#include "state/statedb.h"
#include "state/trie.h"
#include "types/address.h"

namespace shardchain {
namespace {

using Clock = std::chrono::steady_clock;  // detlint:allow(wall-clock): bench timing

const size_t kAccountCounts[] = {100, 1000, 10000};
constexpr size_t kTouchedPerRoot = 64;  ///< Dirty accounts per root update.
constexpr size_t kTouchedPerSnap = 16;  ///< Writes inside a snapshot span.
constexpr double kMinSeconds = 0.2;

Address BenchAddr(uint64_t n) {
  Address a;
  a.bytes[0] = static_cast<uint8_t>(n);
  a.bytes[1] = static_cast<uint8_t>(n >> 8);
  a.bytes[2] = static_cast<uint8_t>(n >> 16);
  a.bytes[19] = static_cast<uint8_t>(n * 131);
  return a;
}

Bytes AddressKey(const Address& addr) {
  return Bytes(addr.bytes.begin(), addr.bytes.end());
}

/// The pre-incremental StateRoot(): walk every account, recompute its
/// digest (the old code had no digest cache), and build a fresh trie.
/// Byte-identical to StateDB::StateRoot() over the same contents — the
/// identity gate below enforces exactly that.
Hash256 RootFromScratch(const StateDB& db) {
  MerklePatriciaTrie trie;
  for (const Address& addr : db.Addresses()) {
    const Account* account = db.Find(addr);
    account->MarkDigestDirty();
    const Hash256 digest = account->Digest(addr);
    trie.Put(AddressKey(addr), Bytes(digest.bytes.begin(), digest.bytes.end()));
  }
  return trie.RootHash();
}

StateDB FundedState(size_t accounts) {
  StateDB db;
  for (uint64_t i = 0; i < accounts; ++i) {
    db.Mint(BenchAddr(i), 1'000'000 + i);
  }
  return db;
}

/// Times `op` for >= kMinSeconds and returns invocations per second.
/// `op` must fold its result into the returned checksum so the work
/// cannot be elided.
double MeasureOpsPerSec(const std::function<uint64_t()>& op) {
  uint64_t sink = op();  // Warm-up.
  size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    sink ^= op();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < kMinSeconds);
  if (sink == 0xdeadbeefdeadbeefull) std::printf("(unlikely checksum)\n");
  return static_cast<double>(iters) / elapsed;
}

struct ScenarioResult {
  std::string scenario;
  size_t accounts = 0;
  double old_ops_per_sec = 0.0;
  double new_ops_per_sec = 0.0;
  double speedup = 0.0;
};

void Report(std::vector<ScenarioResult>* out, const std::string& scenario,
            size_t accounts, double old_ops, double new_ops) {
  ScenarioResult r;
  r.scenario = scenario;
  r.accounts = accounts;
  r.old_ops_per_sec = old_ops;
  r.new_ops_per_sec = new_ops;
  r.speedup = old_ops > 0.0 ? new_ops / old_ops : 0.0;
  out->push_back(r);
  bench::Row({scenario, std::to_string(accounts), bench::Fmt(old_ops, 2),
              bench::Fmt(new_ops, 2), bench::Fmt(r.speedup, 1) + "x"});
}

[[noreturn]] void IdentityFailure(const char* scenario, size_t accounts) {
  std::fprintf(stderr,
               "FATAL: incremental root != from-scratch root (%s, %zu "
               "accounts) — consensus-visible divergence\n",
               scenario, accounts);
  std::exit(1);
}

// ------------------------- root_update --------------------------------

void BenchRootUpdate(size_t accounts, std::vector<ScenarioResult>* out) {
  StateDB db = FundedState(accounts);
  (void)db.StateRoot();
  uint64_t cursor = 0;
  auto mutate_batch = [&] {
    for (size_t j = 0; j < kTouchedPerRoot; ++j) {
      db.Mint(BenchAddr((cursor + j * 7) % accounts), 1);
    }
    cursor += 1;
  };

  // Identity gate: after several mutation batches, the incremental
  // root must equal the from-scratch rebuild, byte for byte.
  for (int round = 0; round < 3; ++round) {
    mutate_batch();
    if (db.StateRoot() != RootFromScratch(db)) {
      IdentityFailure("root_update", accounts);
    }
  }

  const double new_ops = MeasureOpsPerSec([&] {
    mutate_batch();
    return db.StateRoot().Prefix64();
  });
  const double old_ops = MeasureOpsPerSec([&] {
    mutate_batch();
    return RootFromScratch(db).Prefix64();
  });
  Report(out, "root_update", accounts, old_ops, new_ops);
}

// ------------------------ snapshot_revert -----------------------------

void BenchSnapshotRevert(size_t accounts, std::vector<ScenarioResult>* out) {
  StateDB db = FundedState(accounts);
  const Hash256 base_root = db.StateRoot();
  auto touch = [&](StateDB* target) {
    for (size_t j = 0; j < kTouchedPerSnap; ++j) {
      target->Mint(BenchAddr(j * 11 % accounts), 3);
    }
  };

  // Identity gate: both revert styles must land back on the base root.
  {
    const size_t snap = db.Snapshot();
    touch(&db);
    if (!db.RevertTo(snap).ok() || db.StateRoot() != base_root) {
      IdentityFailure("snapshot_revert(journal)", accounts);
    }
    StateDB backup = db;
    touch(&db);
    db = backup;
    if (db.StateRoot() != base_root) {
      IdentityFailure("snapshot_revert(copy)", accounts);
    }
  }

  const double new_ops = MeasureOpsPerSec([&] {
    const size_t snap = db.Snapshot();
    touch(&db);
    if (!db.RevertTo(snap).ok()) IdentityFailure("revert", accounts);
    return static_cast<uint64_t>(snap);
  });
  const double old_ops = MeasureOpsPerSec([&] {
    StateDB backup = db;  // The pre-journal Snapshot(): copy everything.
    touch(&db);
    db = backup;          // ...and RevertTo(): copy it all back.
    return static_cast<uint64_t>(backup.AccountCount());
  });
  Report(out, "snapshot_revert", accounts, old_ops, new_ops);
}

// -------------------------- block_build -------------------------------

std::vector<Transaction> BlockTxs(size_t accounts) {
  std::vector<Transaction> txs;
  for (uint64_t i = 0; i < 10; ++i) {
    Transaction tx;
    tx.kind = TxKind::kDirectTransfer;
    tx.sender = BenchAddr(i);
    tx.recipient = BenchAddr((i + accounts / 2) % accounts);
    tx.value = 10 + i;
    tx.fee = 2;
    tx.nonce = 0;
    txs.push_back(tx);
  }
  return txs;
}

/// The pre-journal BuildBlock inner loop: every candidate transaction
/// executes on a full copy of the scratch state, and the final root is
/// a from-scratch rebuild.
Hash256 OldStyleBuild(const Ledger& ledger, const Address& miner,
                      const std::vector<Transaction>& txs) {
  StateDB scratch = ledger.tip_state();
  ChainConfig no_reward = ledger.config();
  no_reward.block_reward = 0;
  size_t included = 0;
  for (const Transaction& tx : txs) {
    if (included >= ledger.config().max_txs_per_block) break;
    StateDB trial = scratch;
    if (Ledger::ExecuteTransactions({tx}, miner, no_reward, &trial).ok()) {
      scratch = std::move(trial);
      ++included;
    }
  }
  scratch.Mint(miner, ledger.config().block_reward);
  return RootFromScratch(scratch);
}

void BenchBlockBuild(size_t accounts, std::vector<ScenarioResult>* out) {
  Ledger ledger(1, FundedState(accounts));
  const Address miner = BenchAddr(accounts - 1);
  const std::vector<Transaction> txs = BlockTxs(accounts);

  // Identity gate: the journaled build must commit to the same root as
  // the copy-everything build.
  Result<Block> built = ledger.BuildBlock(miner, txs, /*timestamp=*/1);
  if (!built.ok() || built->transactions.size() != txs.size() ||
      built->header.state_root != OldStyleBuild(ledger, miner, txs)) {
    IdentityFailure("block_build", accounts);
  }

  const double new_ops = MeasureOpsPerSec([&] {
    return ledger.BuildBlock(miner, txs, 1)->header.state_root.Prefix64();
  });
  const double old_ops = MeasureOpsPerSec(
      [&] { return OldStyleBuild(ledger, miner, txs).Prefix64(); });
  Report(out, "block_build", accounts, old_ops, new_ops);
}

}  // namespace
}  // namespace shardchain

int main() {
  using namespace shardchain;

  bench::Banner(
      "BENCH state scaling (DESIGN.md §10)",
      "incremental authenticated state: root update O(dirty*depth) not "
      "O(n); snapshots journaled not copied; roots byte-identical");

  std::vector<ScenarioResult> results;
  for (const size_t accounts : kAccountCounts) {
    bench::Row({"scenario", "accounts", "old/sec", "new/sec", "speedup"});
    BenchRootUpdate(accounts, &results);
    BenchSnapshotRevert(accounts, &results);
    BenchBlockBuild(accounts, &results);
    std::printf("\n");
  }

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", bench::Json::Str("state_scaling"));
  doc.Set("identity_gate",
          bench::Json::Str("incremental root byte-identical to from-scratch "
                           "rebuild in every scenario (asserted pre-timing)"));
  doc.Set("touched_per_root_update",
          bench::Json::Int(static_cast<int64_t>(kTouchedPerRoot)));
  doc.Set("writes_per_snapshot_span",
          bench::Json::Int(static_cast<int64_t>(kTouchedPerSnap)));
  bench::Json arr = bench::Json::Array();
  for (const ScenarioResult& r : results) {
    bench::Json row = bench::Json::Object();
    row.Set("scenario", bench::Json::Str(r.scenario));
    row.Set("accounts", bench::Json::Int(static_cast<int64_t>(r.accounts)));
    row.Set("old_ops_per_sec", bench::Json::Num(r.old_ops_per_sec));
    row.Set("new_ops_per_sec", bench::Json::Num(r.new_ops_per_sec));
    row.Set("speedup", bench::Json::Num(r.speedup));
    arr.Push(std::move(row));
  }
  doc.Set("results", std::move(arr));
  const std::string path = "BENCH_state.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
