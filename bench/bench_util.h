#ifndef SHARDCHAIN_BENCH_BENCH_UTIL_H_
#define SHARDCHAIN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace shardchain::bench {

/// Prints a banner naming the reproduced table/figure.
inline void Banner(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints one row of a fixed-width table.
inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

}  // namespace shardchain::bench

#endif  // SHARDCHAIN_BENCH_BENCH_UTIL_H_
