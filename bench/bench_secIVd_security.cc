// Reproduces the closed-form security numbers of Sec. IV-D:
//   - Eq. 3 (merging): with a 25% adversary the failure probability of
//     the inter-shard merging algorithm is ~8e-6 as l -> infinity.
//   - Eq. 4-6 (selection): with a 25% adversary and 200 total
//     transaction fees the corruption probability is ~7e-7.

#include <cstdio>

#include "analysis/security.h"
#include "bench/bench_util.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::FmtSci;
  using bench::Row;

  Banner("Sec. IV-D — Corruption probabilities (Eq. 3-6)",
         "merge failure ~8e-6 and selection corruption ~7e-7 at a 25% "
         "adversary");

  const double f = 0.25;

  std::printf("\nEq. 3 — merge corruption limit vs shard size:\n");
  Row({"shard size", "1-Ps", "limit (l->inf)"}, 16);
  for (uint64_t n = 30; n <= 90; n += 10) {
    const double ps = security::ShardSafety(n, f);
    Row({std::to_string(n), FmtSci(1.0 - ps),
         FmtSci(security::MergeCorruptionLimit(f, ps))},
        16);
  }
  const uint64_t n_star = security::MinShardSizeForSafety(f, 1.0 - 6e-6, 300);
  std::printf(
      "Smallest shard size with merge-corruption <= 8e-6: %llu miners "
      "(limit %.2e; paper quotes 8e-6).\n",
      static_cast<unsigned long long>(n_star),
      security::MergeCorruptionLimit(f, security::ShardSafety(n_star, f)));

  std::printf("\nEq. 4-6 — selection corruption vs miners per transaction "
              "(200 total fees):\n");
  Row({"miners/tx", "Pi (Eq.5)", "limit (Eq.6)"}, 16);
  for (uint64_t m = 10; m <= 90; m += 10) {
    Row({std::to_string(m), FmtSci(security::TxCorruption(m, f)),
         FmtSci(security::SelectionCorruptionLimit(f, 200, m))},
        16);
  }
  for (uint64_t m = 10; m <= 200; ++m) {
    const double p = security::SelectionCorruptionLimit(f, 200, m);
    if (p <= 7e-7) {
      std::printf(
          "Smallest per-transaction validator count with corruption <= "
          "7e-7: %llu miners (limit %.2e; paper quotes 7e-7).\n",
          static_cast<unsigned long long>(m), p);
      break;
    }
  }

  std::printf("\n33%% resilience check: shard safety at the paper's "
              "operating point (n=30, f=0.33) is %.4f.\n",
              security::ShardSafety(30, 0.33));
  return 0;
}
