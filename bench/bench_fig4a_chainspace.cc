// Reproduces Fig. 4(a): throughput improvement of our sharding vs
// ChainSpace with 1..9 shards, 24,000 injected transactions, and the
// intra-shard confirmation speed unified at 76 tx/s per miner
// (Sec. VI-B2, difficulty 0xd79). Both schemes parallelize equally;
// they differ in communication (Fig. 4b), not raw throughput.

#include <cstdio>
#include <vector>

#include "baseline/chainspace.h"
#include "baseline/ethereum.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "consensus/pow.h"
#include "sim/mining_sim.h"

namespace {

using namespace shardchain;
using bench::Banner;
using bench::Fmt;
using bench::Row;

}  // namespace

int main() {
  Banner("Fig. 4(a) — Our sharding vs ChainSpace, 1..9 shards",
         "both improve throughput near-linearly; ours is not worse");

  // 76 tx/s with 10-tx blocks -> one block every 10/76 s.
  MiningSimConfig config;
  config.txs_per_block = 10;
  config.round_seconds =
      pow::MeanBlockInterval(pow::DifficultyForThroughput(76.0, 10.0), 1.0);
  config.policy = SelectionPolicy::kGreedy;

  const size_t kTxs = 24000;
  const size_t kReps = 5;
  const std::vector<Amount> fees(kTxs, 10);

  Row({"shards", "ours", "chainspace"});
  for (size_t k = 1; k <= 9; ++k) {
    RunningStats ours_impr, cs_impr;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Rng rng(71000 + k * 100 + rep);
      Rng eth_rng = rng.Fork();
      const SimResult eth = RunEthereumBaseline(fees, 9, config, &eth_rng);

      // Our sharding: contract-based shards; the paper's injection
      // spreads transactions uniformly over the contracts, so the shard
      // loads are a uniform multinomial split — identical in shape to
      // ChainSpace's random placement. One miner per shard.
      std::vector<ShardSpec> shards(k);
      for (size_t s = 0; s < k; ++s) shards[s].id = static_cast<ShardId>(s);
      for (size_t t = 0; t < kTxs; ++t) {
        shards[rng.UniformInt(k)].tx_fees.push_back(10);
      }
      Rng ours_rng = rng.Fork();
      const SimResult ours = RunMiningSim(shards, config, &ours_rng);
      ours_impr.Add(ThroughputImprovement(eth, ours));

      // ChainSpace: random tx placement, same mining model.
      ChainSpaceConfig cs;
      cs.num_shards = k;
      cs.miners_per_shard = 1;
      cs.mining = config;
      std::vector<Transaction> txs;
      txs.reserve(kTxs);
      for (size_t t = 0; t < kTxs; ++t) {
        Transaction tx;
        tx.fee = 10;
        txs.push_back(tx);
      }
      Rng cs_rng = rng.Fork();
      const ChainSpaceResult csr = RunChainSpace(txs, cs, &cs_rng);
      cs_impr.Add(ThroughputImprovement(eth, csr.sim));
    }
    Row({std::to_string(k), Fmt(ours_impr.mean()), Fmt(cs_impr.mean())});
  }
  std::printf("\nShape check: both curves grow near-linearly and overlap "
              "(the paper finds no throughput penalty either way).\n");
  return 0;
}
