// Reproduces Fig. 5(a): large-scale simulation of the inter-shard
// merging algorithm — number of newly formed shards vs the optimal
// floor(total/L), for up to 1000 small shards (Sec. VI-E1). Paper: the
// algorithm reaches ~80% of the optimal on average.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/merging_game.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::Fmt;
  using bench::Row;

  Banner("Fig. 5(a) — Merging at scale: new shards vs optimal",
         "the merging algorithm achieves ~80% of the optimal number of "
         "new shards");

  MergingGameConfig merge;
  merge.min_shard_size = 40;
  // Run the replicator to genuine convergence: with many players the
  // mixed strategies settle just above the exploration floor, so each
  // final draw yields a coalition near the qualifying size L (which is
  // what makes the outcome near-optimal).
  merge.subslots = 8;
  merge.eta = 0.2;
  merge.max_slots = 1500;
  merge.tolerance = 5e-4;
  merge.final_draw_retries = 512;
  merge.prob_floor = 0.007;
  merge.prefer_minimal_coalition = true;

  Row({"small-shards", "ours", "optimal", "ratio"}, 14);
  RunningStats ratio;
  for (size_t n : {50u, 100u, 200u, 400u, 600u, 800u, 1000u}) {
    Rng rng(95000 + n);
    std::vector<uint64_t> sizes;
    sizes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      sizes.push_back(static_cast<uint64_t>(rng.UniformRange(1, 9)));
    }
    const IterativeMergeResult plan = RunIterativeMerge(sizes, merge, &rng);
    const size_t optimal = OptimalNewShards(sizes, merge.min_shard_size);
    const double r = optimal == 0
                         ? 0.0
                         : static_cast<double>(plan.NumNewShards()) /
                               static_cast<double>(optimal);
    ratio.Add(r);
    Row({std::to_string(n), std::to_string(plan.NumNewShards()),
         std::to_string(optimal), Fmt(r)},
        14);
  }
  std::printf("\nHeadline: %.0f%% of optimal on average (paper: ~80%%).\n",
              100.0 * ratio.mean());
  return 0;
}
