// Reproduces Fig. 3(a)/(b): throughput improvement and empty blocks of
// contract-based sharding vs Ethereum with 1..9 shards (Sec. VI-B1).
// 200 transactions spread uniformly over the shards, one miner per
// shard, one block (<= 10 txs) per minute per shard.

#include <cstdio>
#include <vector>

#include "baseline/ethereum.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/mining_sim.h"
#include "sim/workload.h"

namespace {

using namespace shardchain;
using bench::Banner;
using bench::Fmt;
using bench::Row;

/// Distributes the workload's 200 txs uniformly at random over k shards
/// (the paper's "numbers of transactions in these shards obey a uniform
/// distribution").
std::vector<ShardSpec> SplitUniform(const std::vector<Amount>& fees, size_t k,
                                    Rng* rng) {
  std::vector<ShardSpec> shards(k);
  for (size_t s = 0; s < k; ++s) shards[s].id = static_cast<ShardId>(s);
  for (Amount fee : fees) {
    shards[rng->UniformInt(k)].tx_fees.push_back(fee);
  }
  return shards;
}

}  // namespace

int main() {
  Banner("Fig. 3(a)/(b) — Sharding vs Ethereum, 1..9 shards",
         "throughput improves near-linearly, 7.2x at 9 shards; empty "
         "blocks comparable to Ethereum");

  MiningSimConfig config;
  config.round_seconds = 60.0;
  config.txs_per_block = 10;
  config.policy = SelectionPolicy::kGreedy;

  WorkloadConfig wl;
  wl.num_transactions = 200;
  wl.fee_model = FeeModel::kBinomial;

  const size_t kReps = 20;
  Row({"shards", "improvement", "empty(sharded)", "empty(eth)"}, 16);

  for (size_t k = 1; k <= 9; ++k) {
    RunningStats improvement;
    RunningStats empty_sharded;
    RunningStats empty_eth;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Rng rng(7000 + k * 100 + rep);
      Workload w = GenerateWorkload(wl, &rng);
      std::vector<Amount> fees;
      for (const auto& tx : w.transactions) fees.push_back(tx.fee);

      // Ethereum baseline: 9 miners, one pool.
      Rng eth_rng = rng.Fork();
      const SimResult eth = RunEthereumBaseline(fees, 9, config, &eth_rng);

      // Sharded run; count empty blocks over the same window as the
      // sharded makespan (miners keep mining until all txs confirm).
      std::vector<ShardSpec> shards = SplitUniform(fees, k, &rng);
      for (auto& s : shards) s.num_miners = 1;
      Rng probe_rng = rng.Fork();
      const SimResult probe = RunMiningSim(shards, config, &probe_rng);
      MiningSimConfig windowed = config;
      windowed.window_seconds = probe.makespan;
      Rng shard_rng = rng.Fork();
      const SimResult sharded = RunMiningSim(shards, windowed, &shard_rng);

      improvement.Add(ThroughputImprovement(eth, sharded));
      empty_sharded.Add(static_cast<double>(sharded.TotalEmptyBlocks()));
      empty_eth.Add(static_cast<double>(eth.TotalEmptyBlocks()));
    }
    Row({std::to_string(k), Fmt(improvement.mean()),
         Fmt(empty_sharded.mean(), 1), Fmt(empty_eth.mean(), 1)},
        16);
  }

  std::printf(
      "\nShape check: improvement grows near-linearly in the shard count\n"
      "(paper: 7.2x at 9 shards) and neither design produces a\n"
      "meaningful number of empty blocks when shards are balanced.\n");
  return 0;
}
