// Conflict-aware parallel in-block execution (DESIGN.md §13): block
// building throughput of the serial greedy loop vs the lane-scheduled
// parallel engine at 1/2/4/8 worker threads, across conflict densities
// (the fraction of candidates calling one hot contract; the rest call
// per-sender private contracts and are fully independent). Every
// candidate runs a real VM workload — a 2000-iteration countdown loop
// before forwarding the call value — so per-transaction execution cost
// dominates scheduling and merge overhead, as it does with non-trivial
// contracts.
//
// The bench is also a correctness gate: before any timing, every
// (density, threads) cell asserts the parallel build is byte-identical
// to the serial build (encoded block and state root — the consensus
// invariant the optimization must preserve) and aborts on divergence.
// At density 1.0 every lane has width 1, so the parallel engine is
// expected to roughly match (not beat) serial: the schedule has
// degraded to serial execution plus bookkeeping. Speedup > 1x on the
// conflict-free workload needs multi-core hardware; the JSON records
// hardware_concurrency so single-core CI numbers read as what they
// are — the engine's bookkeeping overhead, not its scaling.
//
// Emits BENCH_exec.json into the working directory for CI artifact
// collection.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/emit_json.h"
#include "chain/ledger.h"
#include "contract/vm.h"
#include "parallel/thread_pool.h"
#include "types/codec.h"

namespace shardchain {
namespace {

using Clock = std::chrono::steady_clock;  // detlint:allow(wall-clock): bench timing

constexpr size_t kNumTxs = 256;
constexpr int64_t kLoopIterations = 2000;
const double kDensities[] = {0.0, 0.25, 0.75, 1.0};
const size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr double kMinSeconds = 0.2;

Address BenchAddr(uint64_t n) {
  Address a;
  a.bytes[0] = static_cast<uint8_t>(n);
  a.bytes[1] = static_cast<uint8_t>(n >> 8);
  a.bytes[2] = static_cast<uint8_t>(n >> 16);
  a.bytes[19] = static_cast<uint8_t>(n * 131);
  return a;
}

void EmitPush(Bytes* code, int64_t imm) {
  code->push_back(static_cast<uint8_t>(Op::kPush));
  for (int i = 7; i >= 0; --i) {
    code->push_back(static_cast<uint8_t>(imm >> (8 * i)));
  }
}

/// Countdown loop (kLoopIterations passes over SUB/DUP/JUMPI), then
/// forward the call value to party 0. Real per-transaction VM work.
ContractProgram BusyForwarder(const Address& destination) {
  ContractProgram program;
  program.parties = {destination};
  Bytes& code = program.code;
  EmitPush(&code, kLoopIterations);  // [0..8]  counter
  const uint16_t loop_top = static_cast<uint16_t>(code.size());  // 9
  EmitPush(&code, 1);                                 // [9..17]
  code.push_back(static_cast<uint8_t>(Op::kSub));     // 18
  code.push_back(static_cast<uint8_t>(Op::kDup));     // 19
  code.push_back(static_cast<uint8_t>(Op::kJumpI));   // 20
  code.push_back(static_cast<uint8_t>(loop_top >> 8));
  code.push_back(static_cast<uint8_t>(loop_top & 0xff));
  code.push_back(static_cast<uint8_t>(Op::kPop));     // drop counter (0)
  code.push_back(static_cast<uint8_t>(Op::kCallValue));
  EmitPush(&code, 0);  // party index
  code.push_back(static_cast<uint8_t>(Op::kTransfer));
  code.push_back(static_cast<uint8_t>(Op::kStop));
  return program;
}

/// A candidate set at the given conflict density: the first
/// `density * kNumTxs` candidates call one hot contract (every pair
/// conflicts); the rest call per-sender private contracts (mutually
/// independent). Distinct senders throughout.
struct ExecScenario {
  StateDB genesis;
  std::vector<Transaction> txs;
  ChainConfig config;
};

ExecScenario MakeScenario(double density) {
  ExecScenario s;
  s.config.max_txs_per_block = kNumTxs;
  const Address hot_contract = BenchAddr(100'000);
  const Address hot_dest = BenchAddr(100'001);
  if (!s.genesis
           .DeployContract(hot_contract, BusyForwarder(hot_dest).Serialize())
           .ok()) {
    std::fprintf(stderr, "FATAL: hot contract deploy failed\n");
    std::exit(1);
  }
  const size_t hot_count = static_cast<size_t>(density * kNumTxs);
  for (uint64_t i = 0; i < kNumTxs; ++i) {
    const Address sender = BenchAddr(i);
    s.genesis.Mint(sender, 1'000'000);
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = sender;
    tx.value = 100 + i;
    tx.fee = 2;
    tx.nonce = 0;
    tx.gas_limit = 90'000;  // The countdown loop outgrows the default.
    if (i < hot_count) {
      tx.recipient = hot_contract;
    } else {
      const Address own_contract = BenchAddr(200'000 + i);
      if (!s.genesis
               .DeployContract(
                   own_contract,
                   BusyForwarder(BenchAddr(300'000 + i)).Serialize())
               .ok()) {
        std::fprintf(stderr, "FATAL: private contract deploy failed\n");
        std::exit(1);
      }
      tx.recipient = own_contract;
    }
    s.txs.push_back(tx);
  }
  return s;
}

double MeasureOpsPerSec(const std::function<uint64_t()>& op) {
  uint64_t sink = op();  // Warm-up.
  size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    sink ^= op();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < kMinSeconds);
  if (sink == 0xdeadbeefdeadbeefull) std::printf("(unlikely checksum)\n");
  return static_cast<double>(iters) / elapsed;
}

struct CellResult {
  double density = 0.0;
  size_t threads = 0;  ///< 0 = serial reference (no pool).
  double blocks_per_sec = 0.0;
  double speedup = 0.0;  ///< vs the serial reference at this density.
};

int Run() {
  bench::Banner(
      "BENCH parallel in-block execution (DESIGN.md §13)",
      "lane-scheduled conflict-aware block building vs the serial greedy "
      "loop; blocks byte-identical in every cell (asserted pre-timing)");

  std::vector<CellResult> results;
  const Address miner = BenchAddr(999'999);

  for (const double density : kDensities) {
    const ExecScenario s = MakeScenario(density);
    Ledger serial_ledger(1, s.genesis, s.config);
    Result<Block> serial_built = serial_ledger.BuildBlock(miner, s.txs, 1);
    if (!serial_built.ok() ||
        serial_built->transactions.size() != kNumTxs) {
      std::fprintf(stderr, "FATAL: serial build failed at density %.2f\n",
                   density);
      return 1;
    }
    const Bytes serial_bytes = codec::EncodeBlock(*serial_built);

    bench::Row({"density", "threads", "blocks/sec", "speedup"});
    const double serial_ops = MeasureOpsPerSec([&] {
      return serial_ledger.BuildBlock(miner, s.txs, 1)
          ->header.state_root.Prefix64();
    });
    CellResult serial_cell;
    serial_cell.density = density;
    serial_cell.threads = 0;
    serial_cell.blocks_per_sec = serial_ops;
    serial_cell.speedup = 1.0;
    results.push_back(serial_cell);
    bench::Row({bench::Fmt(density, 2), "serial", bench::Fmt(serial_ops, 2),
                "1.0x"});

    for (const size_t threads : kThreadCounts) {
      ThreadPool pool(threads);
      Ledger ledger(1, s.genesis, s.config);
      ledger.SetExecPool(&pool);

      // Identity gate: bitwise equality with the serial build before
      // any timing — divergence here is a consensus fork.
      Result<Block> built = ledger.BuildBlock(miner, s.txs, 1);
      if (!built.ok() || codec::EncodeBlock(*built) != serial_bytes) {
        std::fprintf(stderr,
                     "FATAL: parallel build != serial build (density %.2f, "
                     "%zu threads) — consensus-visible divergence\n",
                     density, threads);
        return 1;
      }

      const double ops = MeasureOpsPerSec([&] {
        return ledger.BuildBlock(miner, s.txs, 1)
            ->header.state_root.Prefix64();
      });
      CellResult cell;
      cell.density = density;
      cell.threads = threads;
      cell.blocks_per_sec = ops;
      cell.speedup = serial_ops > 0.0 ? ops / serial_ops : 0.0;
      results.push_back(cell);
      bench::Row({bench::Fmt(density, 2), std::to_string(threads),
                  bench::Fmt(ops, 2), bench::Fmt(cell.speedup, 2) + "x"});
    }
    std::printf("\n");
  }

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", bench::Json::Str("exec_parallel"));
  doc.Set("identity_gate",
          bench::Json::Str("parallel block byte-identical to serial build in "
                           "every (density, threads) cell (asserted "
                           "pre-timing)"));
  doc.Set("num_txs", bench::Json::Int(static_cast<int64_t>(kNumTxs)));
  // Interpretation context: with one hardware thread, every cell is
  // expected <= 1x (bookkeeping, no parallelism to buy); >1x needs
  // multi-core hardware.
  doc.Set("hardware_concurrency",
          bench::Json::Int(static_cast<int64_t>(
              std::thread::hardware_concurrency())));
  doc.Set("vm_loop_iterations", bench::Json::Int(kLoopIterations));
  bench::Json arr = bench::Json::Array();
  for (const CellResult& r : results) {
    bench::Json row = bench::Json::Object();
    row.Set("conflict_density", bench::Json::Num(r.density));
    row.Set("threads", bench::Json::Int(static_cast<int64_t>(r.threads)));
    row.Set("blocks_per_sec", bench::Json::Num(r.blocks_per_sec));
    row.Set("speedup_vs_serial", bench::Json::Num(r.speedup));
    arr.Push(std::move(row));
  }
  doc.Set("results", std::move(arr));
  const std::string path = "BENCH_exec.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace shardchain

int main() { return shardchain::Run(); }
