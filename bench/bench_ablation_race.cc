// Model-validation ablation: the continuous-time PoW race simulator
// (sim/pow_race.h) vs the round-based model used by the paper-figure
// benches. Three questions:
//   1. With go-Ethereum's difficulty retargeting (as on the paper's
//      testbed), does confirmation time stay flat as miners join?
//      (Table I's phenomenon — and the round model's core assumption.)
//   2. Without retargeting, the counterfactual: time ~ 1/miners.
//   3. How much does propagation delay (stale forks) cost?

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/gossip.h"
#include "sim/pow_race.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::Fmt;
  using bench::Row;

  Banner("Ablation — round model vs continuous PoW race",
         "retargeting makes confirmation power-independent, which is "
         "what the round model encodes");

  const size_t kTxs = 100;  // 10 blocks of work.
  const size_t kReps = 30;

  std::printf("\nConfirmation time of %zu txs (s):\n", kTxs);
  Row({"miners", "retarget ON", "retarget OFF", "round model"}, 15);
  for (size_t miners : {1u, 2u, 4u, 8u, 16u}) {
    RunningStats on, off;
    for (size_t rep = 0; rep < kReps; ++rep) {
      PowRaceConfig config;
      config.num_miners = miners;
      config.propagation_delay = 2.0;
      config.retarget = true;
      config.retarget_config.target_interval = 60.0;
      config.warmup_blocks = 12000;
      Rng r1(1000 + miners * 100 + rep);
      on.Add(RunPowRace(kTxs, config, &r1).completion_time);

      config.retarget = false;
      config.warmup_blocks = 0;
      Rng r2(2000 + miners * 100 + rep);
      off.Add(RunPowRace(kTxs, config, &r2).completion_time);
    }
    // The round model's prediction: one useful block per 60 s round.
    const double round_model = 10 * 60.0;
    Row({std::to_string(miners), Fmt(on.mean(), 0), Fmt(off.mean(), 0),
         Fmt(round_model, 0)},
        15);
  }

  std::printf("\nStale-fork rate vs propagation delay (8 miners, no "
              "retargeting, ~7.5 s intervals):\n");
  Row({"delay (s)", "stale fraction"}, 16);
  for (double delay : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    RunningStats stale_frac;
    for (size_t rep = 0; rep < kReps; ++rep) {
      PowRaceConfig config;
      config.num_miners = 8;
      config.retarget = false;
      config.propagation_delay = delay;
      Rng rng(3000 + static_cast<uint64_t>(delay * 10) * 100 + rep);
      const PowRaceResult r = RunPowRace(500, config, &rng);
      const double total =
          static_cast<double>(r.chain_blocks + r.stale_blocks);
      if (total > 0) {
        stale_frac.Add(static_cast<double>(r.stale_blocks) / total);
      }
    }
    Row({Fmt(delay, 1), Fmt(stale_frac.mean(), 3)}, 16);
  }

  std::printf("\nMeasured gossip propagation (what the delay above models):\n");
  Row({"miners", "time-to-all (s)", "flood msgs"}, 17);
  for (size_t nodes : {9u, 50u, 200u}) {
    GossipConfig gconfig;
    gconfig.degree = 4;
    gconfig.link_latency = 0.25;  // WAN-ish links.
    Rng grng(5000 + nodes);
    GossipNetwork overlay(nodes, gconfig, &grng);
    EventQueue queue;
    const auto spread =
        overlay.MeasureSpread(0, Bytes{0x42, 0x42}, &queue);
    Row({std::to_string(nodes), Fmt(spread.time_to_all, 2),
         std::to_string(spread.messages)},
        17);
  }

  std::printf(
      "\nReading: with retargeting the confirmation time is flat in the\n"
      "miner count and close to the round model's 10-round prediction;\n"
      "without it, time scales as 1/miners — the regime the paper's\n"
      "fixed-difficulty narrative would naively suggest, which its own\n"
      "Table I contradicts. Stale forks grow with propagation delay and\n"
      "are the physical cost the conflict rule abstracts.\n");
  return 0;
}
