// Reproduces Fig. 3(c)/(d): empty-block reduction and throughput cost
// of the inter-shard merging algorithm with 2..7 small shards among 9
// (Sec. VI-C1).
//
// Workload (see EXPERIMENTS.md): 9 shards, one miner each; m small
// shards hold 1..9 transactions, the others hold 25 (">22" as the
// paper states). Empty blocks are counted over the observation
// window (the Ethereum confirmation time). The merge plan comes from Algorithm 1 over the small-shard
// sizes with L = 20; merged shards pool their transactions and miners
// and keep mining greedily — which is exactly why a large merged shard
// serializes validation and costs some throughput (the paper's 14%).

#include <cstdio>
#include <vector>

#include "baseline/ethereum.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/merging_game.h"
#include "sim/mining_sim.h"

namespace {

using namespace shardchain;
using bench::Banner;
using bench::Fmt;
using bench::Row;

constexpr size_t kShards = 9;
constexpr Amount kFee = 10;

struct Setup {
  std::vector<ShardSpec> before;        // One spec per shard.
  std::vector<uint64_t> small_sizes;    // Pending txs of the small shards.
  std::vector<size_t> small_indices;    // Positions of small shards.
  std::vector<Amount> all_fees;
};

Setup MakeSetup(size_t num_small, Rng* rng) {
  Setup s;
  for (size_t i = 0; i < kShards; ++i) {
    ShardSpec spec;
    spec.id = static_cast<ShardId>(i);
    spec.num_miners = 1;
    const bool small = i < num_small;
    const size_t txs =
        small ? static_cast<size_t>(rng->UniformRange(1, 9)) : 25;
    spec.tx_fees.assign(txs, kFee);
    if (small) {
      s.small_sizes.push_back(txs);
      s.small_indices.push_back(i);
    }
    for (size_t t = 0; t < txs; ++t) s.all_fees.push_back(kFee);
    s.before.push_back(std::move(spec));
  }
  return s;
}

/// Applies a merge plan: each group's shards collapse into one spec
/// holding the union of transactions and miners.
std::vector<ShardSpec> ApplyMerge(const Setup& setup,
                                  const IterativeMergeResult& plan) {
  std::vector<bool> consumed(kShards, false);
  std::vector<ShardSpec> after;
  for (const auto& group : plan.new_shards) {
    ShardSpec merged;
    merged.id = static_cast<ShardId>(setup.small_indices[group[0]]);
    merged.num_miners = 0;
    merged.start_delay = 60.0;  // One unification round (Sec. IV-C).
    for (size_t local : group) {
      const ShardSpec& src = setup.before[setup.small_indices[local]];
      merged.num_miners += src.num_miners;
      merged.tx_fees.insert(merged.tx_fees.end(), src.tx_fees.begin(),
                            src.tx_fees.end());
      consumed[setup.small_indices[local]] = true;
    }
    after.push_back(std::move(merged));
  }
  for (size_t i = 0; i < kShards; ++i) {
    if (!consumed[i]) after.push_back(setup.before[i]);
  }
  return after;
}

}  // namespace

int main() {
  Banner("Fig. 3(c)/(d) — Inter-shard merging: empty blocks & throughput",
         "~90% fewer empty blocks at a ~14% throughput-improvement cost");

  MiningSimConfig config;
  config.round_seconds = 60.0;
  config.txs_per_block = 10;
  config.policy = SelectionPolicy::kGreedy;

  MergingGameConfig merge;
  merge.min_shard_size = 10;
  merge.merge_cost = 5.0;  // Strong incentive: G/C = 20 (Sec. IV-A1).
  merge.subslots = 16;
  merge.max_slots = 120;

  const size_t kReps = 20;
  Row({"small", "empty-before", "empty-after", "impr-before", "impr-after"},
      13);

  RunningStats reduction;
  RunningStats loss;
  for (size_t m = 2; m <= 7; ++m) {
    RunningStats empty_before, empty_after, impr_before, impr_after;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Rng rng(31000 + m * 1000 + rep);
      Setup setup = MakeSetup(m, &rng);

      Rng eth_rng = rng.Fork();
      const SimResult eth =
          RunEthereumBaseline(setup.all_fees, 9, config, &eth_rng);

      // Empty blocks are observed until all injected transactions are
      // confirmed in the (pre-merge) sharded system — the paper's 212 s
      // window; idle small shards keep packing empty blocks meanwhile.
      Rng probe_rng = rng.Fork();
      const SimResult probe =
          RunMiningSim(setup.before, config, &probe_rng);
      MiningSimConfig windowed = config;
      windowed.window_seconds = probe.makespan;

      Rng before_rng = rng.Fork();
      const SimResult before =
          RunMiningSim(setup.before, windowed, &before_rng);

      Rng merge_rng = rng.Fork();
      const IterativeMergeResult plan =
          RunIterativeMerge(setup.small_sizes, merge, &merge_rng);
      const std::vector<ShardSpec> merged = ApplyMerge(setup, plan);
      Rng after_rng = rng.Fork();
      const SimResult after = RunMiningSim(merged, windowed, &after_rng);

      empty_before.Add(before.EmptyBlocksPerShard());
      empty_after.Add(after.EmptyBlocksPerShard());
      impr_before.Add(ThroughputImprovement(eth, before));
      impr_after.Add(ThroughputImprovement(eth, after));
    }
    Row({std::to_string(m), Fmt(empty_before.mean()), Fmt(empty_after.mean()),
         Fmt(impr_before.mean()), Fmt(impr_after.mean())},
        13);
    if (empty_before.mean() > 0) {
      reduction.Add(1.0 - empty_after.mean() / empty_before.mean());
    }
    if (impr_before.mean() > 0) {
      loss.Add(1.0 - impr_after.mean() / impr_before.mean());
    }
  }

  std::printf(
      "\nHeadline: empty blocks reduced by %.0f%% (paper: 90%%); "
      "throughput improvement cost %.0f%% (paper: 14%%).\n",
      100.0 * reduction.mean(), 100.0 * loss.mean());
  return 0;
}
