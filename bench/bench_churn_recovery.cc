// Churn recovery (DESIGN.md §12): how epoch liveness and shard
// utilisation degrade as the miner population churns, swept over churn
// rates {0, 0.1, 0.2, 0.3}:
//
//   liveness   — EpochLivenessSim under seeded join/retire/crash
//                schedules (core/churn.h): fraction of epochs that end
//                in the MaxShard fallback, fraction of non-fallback
//                epochs won only after a view change, and the mean
//                length of consecutive-fallback runs (epochs to
//                recover once liveness is lost).
//   system     — the full ShardingSystem driven by the adversarial
//                workload stream with churn applied between epochs:
//                empty-block rate across all shard chains, accepted
//                cross-shard migrations, and degraded (fallback)
//                epochs.
//
// Before anything is reported, every accepted migration is re-verified
// against its source shard root (the authenticated-handoff gate); a
// failure aborts the bench.
//
// Emits BENCH_churn.json into the working directory for CI artifact
// collection.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/emit_json.h"
#include "common/rng.h"
#include "contract/registry.h"
#include "core/churn.h"
#include "core/migration.h"
#include "core/sharding_system.h"
#include "sim/liveness.h"
#include "sim/workload.h"

namespace shardchain {
namespace {

const double kChurnRates[] = {0.0, 0.1, 0.2, 0.3};
constexpr uint64_t kLivenessSeeds = 10;
constexpr int kLivenessEpochs = 12;
constexpr uint64_t kSystemSeeds = 5;
constexpr uint64_t kSystemEpochs = 6;

ChurnConfig ChurnAt(double rate, size_t min_live) {
  ChurnConfig churn;
  churn.retire_probability = rate / 2.0;
  churn.crash_probability = rate / 2.0;
  // Joins roughly balance expected departures so the population holds
  // steady instead of draining to the floor.
  churn.join_rate = rate * 8.0;
  churn.max_joins_per_epoch = 4;
  churn.min_live_miners = min_live;
  return churn;
}

// -------------------------- liveness sweep ----------------------------

struct LivenessPoint {
  double churn_rate = 0.0;
  size_t epochs = 0;
  size_t fallback_epochs = 0;
  size_t view_change_wins = 0;
  double mean_recovery_epochs = 0.0;  ///< Mean consecutive-fallback run.
};

LivenessPoint SweepLiveness(double rate) {
  LivenessConfig config;
  config.num_miners = 18;
  config.gossip.deterministic_latency = true;

  LivenessPoint point;
  point.churn_rate = rate;
  size_t fallback_runs = 0;
  size_t fallback_run_epochs = 0;
  for (uint64_t seed = 1; seed <= kLivenessSeeds; ++seed) {
    EpochLivenessSim sim(config, seed);
    const ChurnConfig churn = ChurnAt(rate, /*min_live=*/12);
    size_t current_run = 0;
    for (int epoch = 0; epoch < kLivenessEpochs; ++epoch) {
      FaultConfig faults;
      sim.ApplyChurn(DrawChurnEvents(churn, seed * 17 + 3, epoch,
                                     sim.LiveMiners()),
                     &faults);
      sim.AppendDepartureCrashes(&faults);
      FaultPlan plan(faults, seed * 1013 + epoch);
      const EpochOutcome out = sim.RunEpoch(&plan);
      ++point.epochs;

      bool fell_back = false;
      bool view_changed = false;
      for (const MinerDecision& d : out.decisions) {
        if (!d.live) continue;
        if (d.fallback) fell_back = true;
        if (!d.fallback && d.view > 0) view_changed = true;
      }
      if (fell_back) {
        ++point.fallback_epochs;
        if (current_run == 0) ++fallback_runs;
        ++current_run;
        ++fallback_run_epochs;
      } else {
        current_run = 0;
        if (view_changed) ++point.view_change_wins;
      }
    }
  }
  point.mean_recovery_epochs =
      fallback_runs > 0
          ? static_cast<double>(fallback_run_epochs) /
                static_cast<double>(fallback_runs)
          : 0.0;
  return point;
}

// --------------------------- system sweep -----------------------------

struct SystemPoint {
  double churn_rate = 0.0;
  size_t epochs = 0;
  size_t degraded_epochs = 0;
  size_t blocks = 0;
  size_t empty_blocks = 0;
  size_t migrations = 0;
  size_t joins = 0;
  size_t departures = 0;
};

[[noreturn]] void HandoffGateFailure(double rate, uint64_t seed) {
  std::fprintf(stderr,
               "FATAL: accepted migration fails proof re-verification "
               "(churn rate %.2f, seed %llu)\n",
               rate, static_cast<unsigned long long>(seed));
  std::exit(1);
}

SystemPoint SweepSystem(double rate) {
  SystemPoint point;
  point.churn_rate = rate;
  for (uint64_t seed = 1; seed <= kSystemSeeds; ++seed) {
    ShardingSystemConfig config;
    config.chain.max_txs_per_block = 32;
    ShardingSystem system(config, seed);
    for (int i = 0; i < 10; ++i) system.AddMiner();

    AdversarialWorkloadConfig wl;
    wl.base.num_transactions = 48;
    wl.base.num_contracts = 4;
    wl.returning_senders = 8;
    wl.returning_fraction = 0.4;
    AdversarialWorkloadStream stream(wl, seed * 101);

    // The stream draws its own contract addresses; map each index onto
    // a really deployed contract so calls execute instead of no-op.
    std::vector<Address> deployed;
    for (size_t c = 0; c < wl.base.num_contracts; ++c) {
      Address creator;
      creator.bytes.fill(static_cast<uint8_t>(0xd0 + c));
      Result<Address> addr = system.DeployContract(
          creator, contracts::UnconditionalTransfer(creator));
      if (!addr.ok()) HandoffGateFailure(rate, seed);
      deployed.push_back(*addr);
    }

    const ChurnConfig churn = ChurnAt(rate, /*min_live=*/5);
    for (uint64_t epoch = 0; epoch < kSystemEpochs; ++epoch) {
      const std::vector<ChurnEvent> events = DrawChurnEvents(
          churn, seed * 29 + 11, epoch, system.LiveMiners());
      for (const ChurnEvent& e : events) {
        if (e.kind == ChurnEventKind::kJoin) {
          ++point.joins;
        } else {
          ++point.departures;
        }
      }
      if (!system.ApplyChurn(events).ok()) HandoffGateFailure(rate, seed);
      ++point.epochs;
      if (system.EpochDegraded()) {
        ++point.degraded_epochs;
        if (!system.BeginFallbackEpoch().ok()) {
          HandoffGateFailure(rate, seed);
        }
      } else if (!system.BeginEpoch(epoch).ok()) {
        HandoffGateFailure(rate, seed);
      }

      const Workload w = stream.NextEpoch();
      for (size_t i = 0; i < w.transactions.size(); ++i) {
        Transaction tx = w.transactions[i];
        if (w.contract_of[i] >= 0) {
          tx.recipient = deployed[static_cast<size_t>(w.contract_of[i])];
        }
        system.Mint(tx.sender, tx.fee + tx.value);
        (void)system.SubmitTransaction(tx);  // Stale-nonce txs may drop.
      }
      for (NodeId m : system.LiveMiners()) {
        (void)system.MineBlock(m);
      }
    }

    // Authenticated-handoff gate: every accepted migration must still
    // verify against its source root before it counts in the report.
    for (const HandoffRecord& record : system.MigrationLog()) {
      if (!VerifyHandoff(record).ok()) HandoffGateFailure(rate, seed);
    }
    point.migrations += system.MigrationLog().size();

    // detlint:allow(pointer-keyed-order): dedup only; sums are order-free.
    std::set<const Ledger*> chains;  // Merged shards alias one ledger.
    for (ShardId s = 0; s < system.ShardCount(); ++s) {
      chains.insert(system.ShardLedger(s));
    }
    for (const Ledger* chain : chains) {
      point.blocks += chain->CanonicalLength() - 1;  // Minus genesis.
      point.empty_blocks += chain->CanonicalEmptyBlocks();
    }
  }
  return point;
}

}  // namespace
}  // namespace shardchain

int main() {
  using namespace shardchain;

  bench::Banner(
      "BENCH churn recovery (DESIGN.md §12)",
      "epoch liveness and shard utilisation vs miner churn rate: "
      "fallback/view-change rates, epochs-to-recover, empty-block "
      "rate, verified cross-shard migrations");

  std::vector<LivenessPoint> liveness;
  std::vector<SystemPoint> systems;
  bench::Row({"churn", "fallback%", "viewchg%", "recover", "empty%",
              "migrations"});
  for (const double rate : kChurnRates) {
    const LivenessPoint lp = SweepLiveness(rate);
    const SystemPoint sp = SweepSystem(rate);
    liveness.push_back(lp);
    systems.push_back(sp);
    const double fallback_pct =
        100.0 * static_cast<double>(lp.fallback_epochs) /
        static_cast<double>(lp.epochs);
    const double viewchg_pct =
        100.0 * static_cast<double>(lp.view_change_wins) /
        static_cast<double>(lp.epochs);
    const double empty_pct =
        sp.blocks > 0 ? 100.0 * static_cast<double>(sp.empty_blocks) /
                            static_cast<double>(sp.blocks)
                      : 0.0;
    bench::Row({bench::Fmt(rate, 2), bench::Fmt(fallback_pct, 1),
                bench::Fmt(viewchg_pct, 1),
                bench::Fmt(lp.mean_recovery_epochs, 2),
                bench::Fmt(empty_pct, 1),
                std::to_string(sp.migrations)});
  }

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", bench::Json::Str("churn_recovery"));
  doc.Set("handoff_gate",
          bench::Json::Str("every accepted migration re-verified against "
                           "its source shard root before reporting "
                           "(asserted pre-emit)"));
  doc.Set("liveness_seeds",
          bench::Json::Int(static_cast<int64_t>(kLivenessSeeds)));
  doc.Set("liveness_epochs_per_seed",
          bench::Json::Int(static_cast<int64_t>(kLivenessEpochs)));
  doc.Set("system_seeds",
          bench::Json::Int(static_cast<int64_t>(kSystemSeeds)));
  doc.Set("system_epochs_per_seed",
          bench::Json::Int(static_cast<int64_t>(kSystemEpochs)));

  bench::Json arr = bench::Json::Array();
  for (size_t i = 0; i < liveness.size(); ++i) {
    const LivenessPoint& lp = liveness[i];
    const SystemPoint& sp = systems[i];
    bench::Json row = bench::Json::Object();
    row.Set("churn_rate", bench::Json::Num(lp.churn_rate));
    row.Set("epochs", bench::Json::Int(static_cast<int64_t>(lp.epochs)));
    row.Set("fallback_rate",
            bench::Json::Num(static_cast<double>(lp.fallback_epochs) /
                             static_cast<double>(lp.epochs)));
    row.Set("view_change_rate",
            bench::Json::Num(static_cast<double>(lp.view_change_wins) /
                             static_cast<double>(lp.epochs)));
    row.Set("mean_recovery_epochs",
            bench::Json::Num(lp.mean_recovery_epochs));
    row.Set("system_epochs",
            bench::Json::Int(static_cast<int64_t>(sp.epochs)));
    row.Set("degraded_epochs",
            bench::Json::Int(static_cast<int64_t>(sp.degraded_epochs)));
    row.Set("blocks", bench::Json::Int(static_cast<int64_t>(sp.blocks)));
    row.Set("empty_block_rate",
            bench::Json::Num(sp.blocks > 0
                                 ? static_cast<double>(sp.empty_blocks) /
                                       static_cast<double>(sp.blocks)
                                 : 0.0));
    row.Set("migrations",
            bench::Json::Int(static_cast<int64_t>(sp.migrations)));
    row.Set("joins", bench::Json::Int(static_cast<int64_t>(sp.joins)));
    row.Set("departures",
            bench::Json::Int(static_cast<int64_t>(sp.departures)));
    arr.Push(std::move(row));
  }
  doc.Set("results", std::move(arr));

  const std::string path = "BENCH_churn.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
