// Sharded chunked mempool + pipelined block production (DESIGN.md
// §14): end-to-end throughput of draining a million-transaction queued
// backlog into blocks, serial select → build → append → remove loop vs
// BlockPipeline (execution overlapped with Merkle-commit on an async
// worker) at commit-queue depths 1/2/4. The backlog is 4100 senders x
// 256-deep nonce chains (1,049,600 direct transfers) with fees aligned
// so every TopByFee slice is executable — the drain measures steady
// production, not retry churn.
//
// The bench is also a correctness gate, run BEFORE any timing: at gate
// scale every queue depth must produce byte-identical block encodings,
// the same tip state root, and the same residual pool as the serial
// loop — including trailing empty blocks — and the harness aborts on
// divergence. The full-scale timed runs re-assert the same identity
// over a running digest of all encoded blocks.
//
// Pipelining buys overlap, not parallel execution: with one hardware
// thread the pipelined cells are expected to roughly match serial
// (bookkeeping, nothing to overlap onto). The JSON records
// hardware_concurrency so single-core CI numbers read as what they
// are.
//
// Admission is measured separately (TxPool::AddBatch of the full
// backlog), and batched Lamport signature verification (the
// AddSignedBatch admission path) is measured on a small signed batch —
// at 8 KiB per signature, a million *signed* transactions is not a
// realistic resident workload, so sig-verify throughput is reported in
// sigs/sec and composes analytically.
//
// Emits BENCH_pipeline.json into the working directory for CI artifact
// collection.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/emit_json.h"
#include "chain/ledger.h"
#include "chain/pipeline.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "parallel/thread_pool.h"
#include "txpool/txpool.h"
#include "types/codec.h"

namespace shardchain {
namespace {

using Clock = std::chrono::steady_clock;  // detlint:allow(wall-clock): bench timing

// Full-scale drain: strictly over a million queued transactions.
constexpr size_t kSenders = 4100;
constexpr uint64_t kNoncesPerSender = 256;
constexpr size_t kBacklog = kSenders * kNoncesPerSender;  // 1,049,600
constexpr size_t kBlockTxs = 4096;
constexpr size_t kRounds = (kBacklog + kBlockTxs - 1) / kBlockTxs;  // 257
constexpr size_t kPoolCapacity = size_t{1} << 21;
constexpr size_t kChunkCapacity = 4096;
const size_t kQueueDepths[] = {1, 2, 4};

// Gate scale: small enough to run every depth pre-timing, shaped the
// same way, plus two trailing rounds past exhaustion so empty-block
// production is part of the identity check.
constexpr size_t kGateSenders = 96;
constexpr uint64_t kGateNonces = 8;
constexpr size_t kGateBlockTxs = 64;
constexpr size_t kGateRounds = kGateSenders * kGateNonces / kGateBlockTxs + 2;

// Signed-admission micro-measurement.
constexpr size_t kSigBatch = 48;
const size_t kSigThreadCounts[] = {1, 2, 4, 8};
constexpr double kMinSeconds = 0.2;

Address BenchAddr(uint64_t n) {
  Address a;
  a.bytes[0] = static_cast<uint8_t>(n);
  a.bytes[1] = static_cast<uint8_t>(n >> 8);
  a.bytes[2] = static_cast<uint8_t>(n >> 16);
  a.bytes[19] = static_cast<uint8_t>(n * 131);
  return a;
}

const Address kMiner = BenchAddr(999'999);

struct Workload {
  StateDB genesis;
  std::vector<Transaction> txs;  ///< Admission order.
  ChainConfig config;
};

/// `senders` nonce chains of depth `nonces`. Fee = nonces - nonce keeps
/// the fee order aligned with every sender's nonce order, so each
/// TopByFee slice executes without a single nonce rejection: within a
/// candidate slice greedy inclusion runs in fee order, and a nonce-k tx
/// can only rank into the top `block_txs` after every still-pooled
/// lower nonce of its sender (which carries a strictly higher fee).
Workload MakeWorkload(size_t senders, uint64_t nonces, size_t block_txs) {
  Workload w;
  w.config.max_txs_per_block = block_txs;
  w.txs.reserve(senders * nonces);
  for (size_t i = 0; i < senders; ++i) {
    const Address sender = BenchAddr(i);
    w.genesis.Mint(sender, 1'000'000);
    for (uint64_t nonce = 0; nonce < nonces; ++nonce) {
      Transaction tx;
      tx.kind = TxKind::kDirectTransfer;
      tx.sender = sender;
      // Bounded recipient set: state size stays ~#senders accounts, so
      // per-block StateDB snapshots cost what they would on a real
      // shard, and the backlog — not the account map — is the scale
      // knob.
      tx.recipient = BenchAddr(1'000'000 + (i % 64));
      tx.value = 1;
      tx.fee = static_cast<Amount>(nonces - nonce);
      tx.nonce = nonce;
      w.txs.push_back(tx);
    }
  }
  return w;
}

struct DrainOutcome {
  double admit_sec = 0.0;
  double drain_sec = 0.0;
  size_t confirmed = 0;
  size_t residual = 0;
  Hash256 blocks_digest;  ///< SHA-256 over all encoded blocks, in order.
  Hash256 root;           ///< Tip state root after the drain.
  std::vector<Bytes> blocks;  ///< Filled only when keep_blocks.
};

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// The serial baseline: the ShardingSystem::MineBlock loop — TopByFee,
/// BuildBlock, Append, RemoveAll — one round per block.
DrainOutcome DrainSerial(const Workload& w, size_t rounds, bool keep_blocks) {
  Ledger ledger(/*shard_id=*/1, w.genesis, w.config);
  TxPool pool(kPoolCapacity, kChunkCapacity);
  DrainOutcome out;
  const auto admit_start = Clock::now();
  for (const Status& s : pool.AddBatch(w.txs)) {
    if (!s.ok()) std::abort();  // Synthetic workload must admit fully.
  }
  out.admit_sec = Seconds(admit_start, Clock::now());
  Sha256 digest;
  const auto drain_start = Clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    std::vector<Transaction> cands = pool.TopByFee(w.config.max_txs_per_block);
    Result<Block> built = ledger.BuildBlock(
        kMiner, std::move(cands),
        static_cast<uint64_t>(ledger.tip_number() + 1));
    if (!built.ok() || !ledger.Append(*built).ok()) {
      std::fprintf(stderr, "FATAL: serial drain failed at round %zu\n", round);
      std::exit(1);
    }
    pool.RemoveAll(built->transactions);
    out.confirmed += built->transactions.size();
    const Bytes enc = codec::EncodeBlock(*built);
    digest.Update(enc);
    if (keep_blocks) out.blocks.push_back(enc);
  }
  out.drain_sec = Seconds(drain_start, Clock::now());
  out.blocks_digest = digest.Finalize();
  out.root = ledger.tip_state().StateRoot();
  out.residual = pool.Size();
  return out;
}

DrainOutcome DrainPipelined(const Workload& w, size_t rounds,
                            size_t queue_depth, bool keep_blocks) {
  Ledger ledger(/*shard_id=*/1, w.genesis, w.config);
  TxPool pool(kPoolCapacity, kChunkCapacity);
  DrainOutcome out;
  const auto admit_start = Clock::now();
  for (const Status& s : pool.AddBatch(w.txs)) {
    if (!s.ok()) std::abort();  // Synthetic workload must admit fully.
  }
  out.admit_sec = Seconds(admit_start, Clock::now());
  BlockPipeline pipeline(&ledger, &pool, PipelineConfig{queue_depth});
  const auto drain_start = Clock::now();
  Result<PipelineResult> produced = pipeline.Run(kMiner, rounds);
  out.drain_sec = Seconds(drain_start, Clock::now());
  if (!produced.ok() || produced->hashes.size() != rounds) {
    std::fprintf(stderr, "FATAL: pipelined drain failed (depth %zu): %s\n",
                 queue_depth, produced.status().message().c_str());
    std::exit(1);
  }
  out.confirmed = produced->txs_confirmed;
  Sha256 digest;
  for (const Hash256& hash : produced->hashes) {
    const Block* block = ledger.Find(hash);
    if (block == nullptr) {
      std::fprintf(stderr, "FATAL: pipelined block missing from ledger\n");
      std::exit(1);
    }
    const Bytes enc = codec::EncodeBlock(*block);
    digest.Update(enc);
    if (keep_blocks) out.blocks.push_back(enc);
  }
  out.blocks_digest = digest.Finalize();
  out.root = ledger.tip_state().StateRoot();
  out.residual = pool.Size();
  return out;
}

/// Pre-timing identity gate: every queue depth must reproduce the
/// serial blocks byte-for-byte at gate scale, empty trailing blocks
/// included. Exits on divergence — a mismatch here is a consensus
/// fork, and timing a fork is meaningless.
void RunIdentityGate() {
  const Workload w = MakeWorkload(kGateSenders, kGateNonces, kGateBlockTxs);
  const DrainOutcome serial =
      DrainSerial(w, kGateRounds, /*keep_blocks=*/true);
  for (const size_t depth : kQueueDepths) {
    const DrainOutcome piped =
        DrainPipelined(w, kGateRounds, depth, /*keep_blocks=*/true);
    for (size_t b = 0; b < kGateRounds; ++b) {
      if (piped.blocks[b] != serial.blocks[b]) {
        std::fprintf(stderr,
                     "FATAL: pipelined block %zu != serial block (queue depth "
                     "%zu) — consensus-visible divergence\n",
                     b, depth);
        std::exit(1);
      }
    }
    if (piped.root != serial.root || piped.residual != serial.residual) {
      std::fprintf(stderr,
                   "FATAL: pipelined post-state diverges from serial (queue "
                   "depth %zu)\n",
                   depth);
      std::exit(1);
    }
  }
  std::printf(
      "identity gate: %zu blocks x %zu queue depths byte-identical to the "
      "serial loop (incl. 2 empty blocks)\n",
      kGateRounds, std::size(kQueueDepths));
}

double MeasureOpsPerSec(const std::function<uint64_t()>& op) {
  uint64_t sink = op();  // Warm-up.
  size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    sink ^= op();
    ++iters;
    elapsed = Seconds(start, Clock::now());
  } while (elapsed < kMinSeconds);
  if (sink == 0xdeadbeefdeadbeefull) std::printf("(unlikely checksum)\n");
  return static_cast<double>(iters) / elapsed;
}

struct SigCell {
  size_t threads = 0;  ///< 0 = serial (no pool).
  double sigs_per_sec = 0.0;
};

/// Batched Lamport verification throughput — the admission-path crypto
/// AddSignedBatch runs per batch. Serial and pooled results were
/// asserted bitwise-equal per element by the equivalence suite; here
/// only throughput is measured.
std::vector<SigCell> MeasureSigVerify() {
  std::vector<KeyPair> keys;
  std::vector<Hash256> digests;
  std::vector<Signature> sigs;
  keys.reserve(kSigBatch);
  for (size_t i = 0; i < kSigBatch; ++i) {
    keys.push_back(KeyPair::FromSeed(9000 + i));
    Sha256 h;
    h.Update("bench_pipeline.sig");
    h.Update(std::string(1, static_cast<char>(i)));
    digests.push_back(h.Finalize());
    sigs.push_back(keys[i].Sign(digests[i]));
  }
  std::vector<const PublicKey*> pks;
  std::vector<const Hash256*> digest_ptrs;
  std::vector<const Signature*> sig_ptrs;
  for (size_t i = 0; i < kSigBatch; ++i) {
    pks.push_back(&keys[i].public_key());
    digest_ptrs.push_back(&digests[i]);
    sig_ptrs.push_back(&sigs[i]);
  }
  std::vector<SigCell> cells;
  const auto run = [&](ThreadPool* pool) {
    const std::vector<uint8_t> ok = VerifyBatch(pks, digest_ptrs, sig_ptrs,
                                                pool);
    uint64_t sum = 0;
    for (const uint8_t v : ok) sum += v;
    if (sum != kSigBatch) {
      std::fprintf(stderr, "FATAL: sig batch failed verification\n");
      std::exit(1);
    }
    return sum;
  };
  bench::Row({"threads", "sigs/sec"});
  const double serial_ops = MeasureOpsPerSec([&] { return run(nullptr); });
  cells.push_back(SigCell{0, serial_ops * kSigBatch});
  bench::Row({"serial", bench::Fmt(serial_ops * kSigBatch, 0)});
  for (const size_t threads : kSigThreadCounts) {
    ThreadPool pool(threads);
    const double ops = MeasureOpsPerSec([&] { return run(&pool); });
    cells.push_back(SigCell{threads, ops * kSigBatch});
    bench::Row({std::to_string(threads), bench::Fmt(ops * kSigBatch, 0)});
  }
  return cells;
}

struct DrainCell {
  std::string mode;
  size_t queue_depth = 0;
  double admit_txs_per_sec = 0.0;
  double drain_sec = 0.0;
  double txs_per_sec = 0.0;
  double speedup = 0.0;
};

int Run() {
  bench::Banner(
      "BENCH pipelined block production over a 1M-tx backlog "
      "(DESIGN.md §14)",
      "chunked mempool admission + pipelined select/execute/commit drain "
      "a million queued transactions; blocks byte-identical to the serial "
      "loop (asserted pre-timing and re-checked at full scale)");

  RunIdentityGate();

  std::printf("building backlog: %zu txs (%zu senders x %llu nonces)...\n",
              kBacklog, kSenders,
              static_cast<unsigned long long>(kNoncesPerSender));
  const Workload w = MakeWorkload(kSenders, kNoncesPerSender, kBlockTxs);

  std::vector<DrainCell> cells;
  bench::Row({"mode", "depth", "admit tx/s", "drain sec", "tx/s", "speedup"});

  const DrainOutcome serial = DrainSerial(w, kRounds, /*keep_blocks=*/false);
  if (serial.confirmed != kBacklog || serial.residual != 0) {
    std::fprintf(stderr, "FATAL: serial drain left %zu txs unconfirmed\n",
                 kBacklog - serial.confirmed + serial.residual);
    return 1;
  }
  DrainCell serial_cell;
  serial_cell.mode = "serial";
  serial_cell.admit_txs_per_sec = kBacklog / serial.admit_sec;
  serial_cell.drain_sec = serial.drain_sec;
  serial_cell.txs_per_sec = kBacklog / serial.drain_sec;
  serial_cell.speedup = 1.0;
  cells.push_back(serial_cell);
  bench::Row({"serial", "-", bench::Fmt(serial_cell.admit_txs_per_sec, 0),
              bench::Fmt(serial.drain_sec, 2),
              bench::Fmt(serial_cell.txs_per_sec, 0), "1.0x"});

  for (const size_t depth : kQueueDepths) {
    const DrainOutcome piped =
        DrainPipelined(w, kRounds, depth, /*keep_blocks=*/false);
    // Full-scale identity re-check: same blocks, same post-state, same
    // (empty) pool — over the entire million-tx drain.
    if (piped.blocks_digest != serial.blocks_digest ||
        piped.root != serial.root || piped.residual != serial.residual) {
      std::fprintf(stderr,
                   "FATAL: full-scale pipelined drain diverges from serial "
                   "(queue depth %zu)\n",
                   depth);
      return 1;
    }
    DrainCell cell;
    cell.mode = "pipelined";
    cell.queue_depth = depth;
    cell.admit_txs_per_sec = kBacklog / piped.admit_sec;
    cell.drain_sec = piped.drain_sec;
    cell.txs_per_sec = kBacklog / piped.drain_sec;
    cell.speedup = serial.drain_sec / piped.drain_sec;
    cells.push_back(cell);
    bench::Row({"pipelined", std::to_string(depth),
                bench::Fmt(cell.admit_txs_per_sec, 0),
                bench::Fmt(piped.drain_sec, 2),
                bench::Fmt(cell.txs_per_sec, 0),
                bench::Fmt(cell.speedup, 2) + "x"});
  }
  std::printf("\nbatched Lamport signature verification (batch=%zu):\n",
              kSigBatch);
  const std::vector<SigCell> sig_cells = MeasureSigVerify();

  bench::Json doc = bench::Json::Object();
  doc.Set("bench", bench::Json::Str("pipeline"));
  doc.Set("identity_gate",
          bench::Json::Str(
              "pipelined drain byte-identical to the serial mine loop at "
              "every queue depth — blocks (incl. empty), tip state root, "
              "residual pool — asserted pre-timing at gate scale and "
              "re-checked over the full million-tx drain"));
  doc.Set("backlog_txs", bench::Json::Int(static_cast<int64_t>(kBacklog)));
  doc.Set("block_txs", bench::Json::Int(static_cast<int64_t>(kBlockTxs)));
  doc.Set("blocks", bench::Json::Int(static_cast<int64_t>(kRounds)));
  // Interpretation context: pipelining overlaps production with
  // commitment, so speedup > 1x needs a second hardware thread to run
  // the commit worker on.
  doc.Set("hardware_concurrency",
          bench::Json::Int(static_cast<int64_t>(
              std::thread::hardware_concurrency())));
  bench::Json arr = bench::Json::Array();
  for (const DrainCell& c : cells) {
    bench::Json row = bench::Json::Object();
    row.Set("mode", bench::Json::Str(c.mode));
    row.Set("queue_depth",
            bench::Json::Int(static_cast<int64_t>(c.queue_depth)));
    row.Set("admit_txs_per_sec", bench::Json::Num(c.admit_txs_per_sec));
    row.Set("drain_sec", bench::Json::Num(c.drain_sec));
    row.Set("txs_per_sec", bench::Json::Num(c.txs_per_sec));
    row.Set("speedup_vs_serial", bench::Json::Num(c.speedup));
    arr.Push(std::move(row));
  }
  doc.Set("results", std::move(arr));
  bench::Json sig_arr = bench::Json::Array();
  for (const SigCell& c : sig_cells) {
    bench::Json row = bench::Json::Object();
    row.Set("threads", bench::Json::Int(static_cast<int64_t>(c.threads)));
    row.Set("sigs_per_sec", bench::Json::Num(c.sigs_per_sec));
    sig_arr.Push(std::move(row));
  }
  doc.Set("sig_verify_batch", bench::Json::Int(kSigBatch));
  doc.Set("sig_verify", std::move(sig_arr));
  const std::string path = "BENCH_pipeline.json";
  if (!bench::WriteJsonFile(path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace shardchain

int main() { return shardchain::Run(); }
