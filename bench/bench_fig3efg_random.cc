// Reproduces Fig. 3(e)/(f)/(g): the game-theoretic merging algorithm vs
// the randomized baseline (each small shard merges with probability
// 0.5). Paper: +11% throughput improvement, -4% empty blocks, +59% new
// shards for the game (Sec. VI-C2). Setup identical to Fig. 3(c)/(d).

#include <cstdio>
#include <vector>

#include "baseline/ethereum.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/merging_game.h"
#include "sim/mining_sim.h"

namespace {

using namespace shardchain;
using bench::Banner;
using bench::Fmt;
using bench::Row;

constexpr size_t kShards = 9;
constexpr Amount kFee = 10;

struct Setup {
  std::vector<ShardSpec> before;
  std::vector<uint64_t> small_sizes;
  std::vector<size_t> small_indices;
  std::vector<Amount> all_fees;
};

Setup MakeSetup(size_t num_small, Rng* rng) {
  Setup s;
  for (size_t i = 0; i < kShards; ++i) {
    ShardSpec spec;
    spec.id = static_cast<ShardId>(i);
    spec.num_miners = 1;
    const bool small = i < num_small;
    const size_t txs =
        small ? static_cast<size_t>(rng->UniformRange(1, 9)) : 25;
    spec.tx_fees.assign(txs, kFee);
    if (small) {
      s.small_sizes.push_back(txs);
      s.small_indices.push_back(i);
    }
    for (size_t t = 0; t < txs; ++t) s.all_fees.push_back(kFee);
    s.before.push_back(std::move(spec));
  }
  return s;
}

std::vector<ShardSpec> ApplyMerge(const Setup& setup,
                                  const IterativeMergeResult& plan) {
  std::vector<bool> consumed(kShards, false);
  std::vector<ShardSpec> after;
  for (const auto& group : plan.new_shards) {
    ShardSpec merged;
    merged.id = static_cast<ShardId>(setup.small_indices[group[0]]);
    merged.num_miners = 0;
    merged.start_delay = 60.0;  // One unification round (Sec. IV-C).
    for (size_t local : group) {
      const ShardSpec& src = setup.before[setup.small_indices[local]];
      merged.num_miners += src.num_miners;
      merged.tx_fees.insert(merged.tx_fees.end(), src.tx_fees.begin(),
                            src.tx_fees.end());
      consumed[setup.small_indices[local]] = true;
    }
    after.push_back(std::move(merged));
  }
  for (size_t i = 0; i < kShards; ++i) {
    if (!consumed[i]) after.push_back(setup.before[i]);
  }
  return after;
}

}  // namespace

int main() {
  Banner("Fig. 3(e)/(f)/(g) — Game merging vs randomized merging",
         "game: +11% throughput, -4% empty blocks, +59% new shards");

  MiningSimConfig config;
  config.round_seconds = 60.0;
  config.txs_per_block = 10;
  config.policy = SelectionPolicy::kGreedy;

  MergingGameConfig merge;
  merge.min_shard_size = 10;
  merge.merge_cost = 5.0;  // Strong incentive: G/C = 20 (Sec. IV-A1).
  merge.subslots = 16;
  merge.max_slots = 120;

  const size_t kReps = 20;
  Row({"small", "impr-game", "impr-rand", "empty-game", "empty-rand",
       "shards-game", "shards-rand"},
      12);

  RunningStats impr_game_all, impr_rand_all, empty_game_all, empty_rand_all,
      shards_game_all, shards_rand_all;
  for (size_t m = 2; m <= 7; ++m) {
    RunningStats impr_game, impr_rand, empty_game, empty_rand, shards_game,
        shards_rand;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Rng rng(53000 + m * 1000 + rep);
      Setup setup = MakeSetup(m, &rng);
      Rng eth_rng = rng.Fork();
      const SimResult eth =
          RunEthereumBaseline(setup.all_fees, 9, config, &eth_rng);

      Rng game_rng = rng.Fork();
      const IterativeMergeResult game_plan =
          RunIterativeMerge(setup.small_sizes, merge, &game_rng);
      Rng rand_rng = rng.Fork();
      const IterativeMergeResult rand_plan =
          RunRandomizedMerge(setup.small_sizes, merge, &rand_rng, 0.5);

      // Same observation window as Fig. 3(c)/(d): the pre-merge sharded
      // confirmation time.
      Rng probe_rng = rng.Fork();
      const SimResult probe = RunMiningSim(setup.before, config, &probe_rng);
      MiningSimConfig windowed = config;
      windowed.window_seconds = probe.makespan;
      Rng sim1 = rng.Fork();
      const SimResult game_sim =
          RunMiningSim(ApplyMerge(setup, game_plan), windowed, &sim1);
      Rng sim2 = rng.Fork();
      const SimResult rand_sim =
          RunMiningSim(ApplyMerge(setup, rand_plan), windowed, &sim2);

      impr_game.Add(ThroughputImprovement(eth, game_sim));
      impr_rand.Add(ThroughputImprovement(eth, rand_sim));
      empty_game.Add(game_sim.EmptyBlocksPerShard());
      empty_rand.Add(rand_sim.EmptyBlocksPerShard());
      shards_game.Add(static_cast<double>(game_plan.NumNewShards()));
      shards_rand.Add(static_cast<double>(rand_plan.NumNewShards()));
    }
    Row({std::to_string(m), Fmt(impr_game.mean()), Fmt(impr_rand.mean()),
         Fmt(empty_game.mean()), Fmt(empty_rand.mean()),
         Fmt(shards_game.mean()), Fmt(shards_rand.mean())},
        12);
    impr_game_all.Add(impr_game.mean());
    impr_rand_all.Add(impr_rand.mean());
    empty_game_all.Add(empty_game.mean());
    empty_rand_all.Add(empty_rand.mean());
    shards_game_all.Add(shards_game.mean());
    shards_rand_all.Add(shards_rand.mean());
  }

  std::printf(
      "\nHeadline: throughput improvement game %.2f vs random %.2f "
      "(paper: 4.48 vs 4.03); per-shard empty blocks %.1f vs %.1f "
      "(paper: 14.6 vs 15.3); new shards %.2f vs %.2f "
      "(paper: 1.78 vs 1.12, +59%%).\n",
      impr_game_all.mean(), impr_rand_all.mean(), empty_game_all.mean(),
      empty_rand_all.mean(), shards_game_all.mean(), shards_rand_all.mean());
  return 0;
}
