#ifndef SHARDCHAIN_BENCH_EMIT_JSON_H_
#define SHARDCHAIN_BENCH_EMIT_JSON_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace shardchain::bench {

/// \brief Minimal JSON document builder for machine-readable benchmark
/// artifacts (BENCH_*.json). Supports exactly what the harnesses emit:
/// objects with ordered keys, arrays, strings, numbers, and booleans.
class Json {
 public:
  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }
  static Json Str(std::string s) {
    Json j(Kind::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json Num(double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static Json Int(int64_t v) {
    Json j(Kind::kInt);
    j.int_ = v;
    return j;
  }
  static Json Bool(bool b) {
    Json j(Kind::kBool);
    j.bool_ = b;
    return j;
  }

  /// Object member (insertion order preserved).
  Json& Set(const std::string& key, Json value) {
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  /// Array element.
  Json& Push(Json value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  std::string Dump(int indent = 0) const {
    std::string out;
    Write(&out, indent);
    return out;
  }

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInt, kBool };
  explicit Json(Kind kind) : kind_(kind) {}

  static void Escape(const std::string& s, std::string* out) {
    out->push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': *out += "\\\""; break;
        case '\\': *out += "\\\\"; break;
        case '\n': *out += "\\n"; break;
        case '\t': *out += "\\t"; break;
        default: out->push_back(c);
      }
    }
    out->push_back('"');
  }

  void Write(std::string* out, int indent) const {
    const std::string pad(static_cast<size_t>(indent), ' ');
    const std::string pad2(static_cast<size_t>(indent) + 2, ' ');
    char buf[64];
    switch (kind_) {
      case Kind::kString:
        Escape(str_, out);
        break;
      case Kind::kNumber:
        std::snprintf(buf, sizeof(buf), "%.6g", num_);
        *out += buf;
        break;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        *out += buf;
        break;
      case Kind::kBool:
        *out += bool_ ? "true" : "false";
        break;
      case Kind::kArray: {
        if (elements_.empty()) {
          *out += "[]";
          break;
        }
        *out += "[\n";
        for (size_t i = 0; i < elements_.size(); ++i) {
          *out += pad2;
          elements_[i].Write(out, indent + 2);
          *out += (i + 1 < elements_.size()) ? ",\n" : "\n";
        }
        *out += pad + "]";
        break;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          *out += "{}";
          break;
        }
        *out += "{\n";
        for (size_t i = 0; i < members_.size(); ++i) {
          *out += pad2;
          Escape(members_[i].first, out);
          *out += ": ";
          members_[i].second.Write(out, indent + 2);
          *out += (i + 1 < members_.size()) ? ",\n" : "\n";
        }
        *out += pad + "}";
        break;
      }
    }
  }

  Kind kind_;
  std::string str_;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

/// Writes `doc` to `path` (plus a trailing newline); returns false on
/// I/O failure.
inline bool WriteJsonFile(const std::string& path, const Json& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = doc.Dump() + "\n";
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && written == text.size();
}

}  // namespace shardchain::bench

#endif  // SHARDCHAIN_BENCH_EMIT_JSON_H_
