// Storage-cost ablation (Related Work, last paragraph): per-miner
// storage of our contract-centric sharding vs full replication
// (Ethereum / Zilliqa-style validating peers) vs fully state-divided
// sharding (Omniledger-style lower bound), as the shard count grows.
//
// Workload: total state of 10,000 units; the MaxShard holds 20% of the
// state (multi-contract senders and direct transfers), the rest is
// spread evenly over the contract shards; miners are assigned by the
// fraction weighting of Sec. III-B.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/storage.h"
#include "bench/bench_util.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::Fmt;
  using bench::Row;

  Banner("Ablation — per-miner storage vs sharding scheme",
         "contract sharding stores full state only on MaxShard miners; "
         "\"the storage cost is significantly reduced\"");

  const double kTotalState = 10000.0;
  const double kMaxShardFraction = 0.20;
  const uint64_t kTotalMiners = 100;

  Row({"shards", "ours/miner", "full-repl", "state-div", "ours/full"}, 13);
  for (size_t contract_shards : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<double> state;
    std::vector<uint64_t> miners;
    state.push_back(kTotalState * kMaxShardFraction);
    const double per_contract =
        kTotalState * (1.0 - kMaxShardFraction) /
        static_cast<double>(contract_shards);
    for (size_t s = 0; s < contract_shards; ++s) {
      state.push_back(per_contract);
    }
    // Miners proportional to shard transaction fractions (Sec. III-B),
    // with at least one per shard.
    uint64_t assigned = 0;
    miners.resize(state.size());
    for (size_t s = 0; s < state.size(); ++s) {
      miners[s] = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::llround(
                 static_cast<double>(kTotalMiners) * state[s] / kTotalState)));
      assigned += miners[s];
    }
    // Absorb rounding drift in the MaxShard.
    if (assigned < kTotalMiners) miners[0] += kTotalMiners - assigned;

    const auto ours = storage::ContractSharding(state, miners);
    const auto full = storage::FullReplication(state, miners);
    const auto divided = storage::StateDivided(state, miners);
    Row({std::to_string(contract_shards), Fmt(ours.per_miner, 0),
         Fmt(full.per_miner, 0), Fmt(divided.per_miner, 0),
         Fmt(ours.per_miner / full.per_miner, 2)},
        13);
  }

  std::printf(
      "\nReading: with enough contract shards, per-miner storage drops\n"
      "toward the MaxShard-dominated floor — a large constant-factor\n"
      "saving over full replication, approaching the state-divided\n"
      "lower bound without that design's cross-shard protocols.\n");
  return 0;
}
