// Reproduces Table I: confirmation time of 20 injected transactions in
// non-sharded go-Ethereum with 2..7 miners (Sec. II-B, settings of
// Sec. VI-B1: difficulty 0x40000 ~ one block per minute, <= 10 txs per
// block). The paper's observation: the time stops improving beyond
// four miners because every miner validates the same top-fee set.

#include <cstdio>
#include <vector>

#include "baseline/ethereum.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"

namespace {

using namespace shardchain;
using bench::Banner;
using bench::Fmt;
using bench::Row;

constexpr double kPaperSeconds[] = {218, 194, 113, 120, 103, 121};

}  // namespace

int main() {
  Banner("Table I — Confirmation time vs number of miners",
         "more miners do not reduce confirmation time beyond ~4 "
         "(2..7 miners: 218/194/113/120/103/121 s)");

  MiningSimConfig config;
  config.round_seconds = 60.0;
  config.txs_per_block = 10;
  // Genesis difficulty 0x40000 was tuned to roughly four c5.large
  // machines; under-powered networks mine slower until retargeting
  // would catch up (see EXPERIMENTS.md).
  config.calibration_power = 4.0;
  config.policy = SelectionPolicy::kGreedy;

  const std::vector<Amount> fees(20, 10);
  const size_t kReps = 20;

  Row({"miners", "sim (s)", "paper (s)"});
  for (size_t miners = 2; miners <= 7; ++miners) {
    RunningStats stats;
    for (size_t rep = 0; rep < kReps; ++rep) {
      Rng rng(1000 + miners * 100 + rep);
      stats.Add(EthereumConfirmationTime(fees, miners, config, &rng));
    }
    Row({std::to_string(miners), Fmt(stats.mean(), 0),
         Fmt(kPaperSeconds[miners - 2], 0)});
  }
  std::printf(
      "\nShape check: time decreases up to the calibration power (4) and\n"
      "is flat afterwards — adding miners does not speed up greedy,\n"
      "serialized confirmation.\n");
  return 0;
}
