// Reproduces Fig. 5(b): large-scale simulation of the intra-shard
// transaction-selection algorithm — number of distinct transaction
// sets vs the optimal (= number of miners), for up to 1000 miners
// (Sec. VI-E2). Paper: ~50% of the optimal on average, because fee
// outliers occasionally collapse the equilibrium onto one set.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/selection_game.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::Fmt;
  using bench::Row;

  Banner("Fig. 5(b) — Selection at scale: distinct tx sets vs optimal",
         "the selection game reaches ~50% of the optimal set diversity");

  SelectionGameConfig game;
  game.capacity = 1;  // One resource per miner isolates set diversity.

  Row({"miners", "distinct-sets", "optimal", "ratio"}, 15);
  RunningStats ratio;
  for (size_t miners : {50u, 100u, 200u, 400u, 600u, 800u, 1000u}) {
    Rng rng(97000 + miners);
    // Randomly generated transaction fees, heavy-tailed as in real fee
    // markets: a few far-more-profitable transactions attract several
    // miners each (the paper's "transaction set with much higher
    // transaction fees than others"), so the equilibrium only reaches
    // part of the optimal diversity. As many transactions as miners,
    // so the optimal is one distinct set per miner.
    std::vector<Amount> fees;
    fees.reserve(miners);
    for (size_t i = 0; i < miners; ++i) {
      fees.push_back(static_cast<Amount>(rng.Exponential(50.0)) + 1);
    }
    const SelectionResult r = RunSelectionGame(fees, miners, game, &rng);
    const double ratio_n = static_cast<double>(r.DistinctSets()) /
                           static_cast<double>(miners);
    ratio.Add(ratio_n);
    Row({std::to_string(miners), std::to_string(r.DistinctSets()),
         std::to_string(miners), Fmt(ratio_n)},
        15);
  }
  std::printf("\nHeadline: %.0f%% of optimal on average (paper: ~50%%).\n",
              100.0 * ratio.mean());
  return 0;
}
