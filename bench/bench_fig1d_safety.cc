// Reproduces Fig. 1(d): the probability that a shard of n miners stays
// safe (fewer than half malicious) when the adversary controls 25% or
// 33% of the network, for n = 20..100 (Sec. III-B).

#include <cstdio>

#include "analysis/security.h"
#include "bench/bench_util.h"

int main() {
  using namespace shardchain;
  using bench::Banner;
  using bench::Fmt;
  using bench::Row;

  Banner("Fig. 1(d) — Shard safety vs shard size",
         "a 30-miner shard under a 33% adversary is corrupted with "
         "probability ~0; safety grows with shard size");

  Row({"miners", "safety f=25%", "safety f=33%"});
  for (uint64_t n = 20; n <= 100; n += 10) {
    Row({std::to_string(n), Fmt(security::ShardSafety(n, 0.25), 4),
         Fmt(security::ShardSafety(n, 0.33), 4)});
  }

  std::printf("\nCaption check: shard of 30 miners, 33%% adversary -> "
              "corruption probability %.2e (\"almost 0\").\n",
              1.0 - security::ShardSafety(30, 0.33));
  return 0;
}
