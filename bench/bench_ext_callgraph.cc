// Extension bench (the paper's stated future work, Sec. III-C /
// Conclusion): the query cost of sender classification. Compares the
// local call graph (incremental index, O(1) lookups) against the
// trivial baseline the paper warns about — scanning the MaxShard's
// full transaction history per query.

#include <chrono>
#include <functional>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "contract/callgraph.h"
#include "contract/naive_classifier.h"
#include "sim/workload.h"

namespace {

using namespace shardchain;
using bench::Banner;
using bench::Fmt;
using bench::Row;

double MicrosPerQuery(const std::function<void()>& fn, size_t queries) {
  // detlint:allow(wall-clock): bench-only timing, never consensus input.
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();  // detlint:allow(wall-clock): bench timing
  return std::chrono::duration<double, std::micro>(end - start).count() /
         static_cast<double>(queries);
}

}  // namespace

int main() {
  Banner("Extension — sender-classification query cost",
         "the call graph replaces an O(history) scan per incoming "
         "transaction with an O(1) lookup (Sec. III-C future work)");

  Row({"history", "callgraph us/q", "naive scan us/q", "speedup"}, 17);
  for (size_t history : {1000u, 10000u, 50000u, 200000u}) {
    Rng rng(40000 + history);
    WorkloadConfig wl;
    wl.num_transactions = history;
    wl.num_contracts = 16;
    wl.maxshard_fraction = 0.1;
    const Workload w = GenerateWorkload(wl, &rng);

    CallGraph graph;
    NaiveHistoryClassifier naive;
    for (const Transaction& tx : w.transactions) {
      graph.Record(tx);
      naive.Record(tx);
    }

    // Query workload: re-classify a sample of the senders.
    std::vector<Transaction> probes(w.transactions.begin(),
                                    w.transactions.begin() + 200);

    volatile size_t sink = 0;
    const double graph_us = MicrosPerQuery(
        [&] {
          for (int rep = 0; rep < 50; ++rep) {
            for (const Transaction& tx : probes) {
              Address contract;
              sink = sink + (graph.IsShardable(tx, &contract) ? 1 : 0);
            }
          }
        },
        probes.size() * 50);
    // The scan is so slow at scale that one pass over the probes is
    // plenty.
    const double naive_us = MicrosPerQuery(
        [&] {
          for (const Transaction& tx : probes) {
            Address contract;
            sink = sink + (naive.IsShardable(tx, &contract) ? 1 : 0);
          }
        },
        probes.size());
    (void)sink;

    Row({std::to_string(history), Fmt(graph_us, 3), Fmt(naive_us, 1),
         Fmt(naive_us / graph_us, 0) + "x"},
        17);
  }
  std::printf(
      "\nReading: the naive per-query cost grows linearly with the\n"
      "history while the call graph stays flat — the gap is why the\n"
      "paper proposes maintaining the call graph locally.\n");
  return 0;
}
