#ifndef SHARDCHAIN_CHAIN_LEDGER_H_
#define SHARDCHAIN_CHAIN_LEDGER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "contract/registry.h"
#include "state/statedb.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

class ThreadPool;

/// \brief Chain-level parameters.
struct ChainConfig {
  Amount block_reward = 2'000'000'000;  ///< Paid per block, empty or not.
  uint64_t max_txs_per_block = 10;      ///< Paper: gas limit 0x300000 ≈ 10 txs.
  bool check_pow = false;               ///< Verify header hash vs difficulty.
  bool strict_nonces = true;            ///< Enforce per-sender nonce order.
};

/// \brief Per-shard ledger: a block tree with longest-chain fork choice,
/// full transaction execution, and per-block post-state tracking.
///
/// "Blocks are recorded by all the miners locally in the form of linked
/// lists, called ledgers" (Sec. II-A). Each miner in a shard owns a
/// Ledger restricted to that shard's transactions; MaxShard miners'
/// ledgers cover everything.
class Ledger {
 public:
  /// Creates the ledger with an implicit genesis block over
  /// `genesis_state`.
  Ledger(ShardId shard_id, StateDB genesis_state, ChainConfig config = {});

  ShardId shard_id() const { return shard_id_; }
  const ChainConfig& config() const { return config_; }

  /// Hash of the genesis block.
  const Hash256& genesis_hash() const { return genesis_hash_; }

  /// Current canonical tip (longest chain; ties keep the earlier tip).
  const Hash256& tip_hash() const { return tip_hash_; }
  uint64_t tip_number() const;

  /// State after executing the canonical chain.
  const StateDB& tip_state() const;

  /// Validates and stores `block`:
  ///  - parent must be known; number must be parent.number + 1;
  ///  - header.shard_id must equal this ledger's shard (Sec. III-C);
  ///  - tx_root must match the body; optional PoW check;
  ///  - every transaction must execute successfully on the parent state
  ///    (fees + block reward credited to the miner).
  /// On success the block joins the tree and fork choice may advance
  /// the tip. Returns the block hash.
  [[nodiscard]] Result<Hash256> Append(const Block& block);

  /// Trusted-producer append (chain/pipeline.h): records `block` with
  /// `post_state` as its executed post-state, skipping re-execution and
  /// the second StateRoot() derivation. The caller vouches that
  /// `post_state` is exactly the result of executing the block on its
  /// parent state and that `block.header.state_root` was derived from
  /// it — the same trust Append already extends to BuildBlock's cached
  /// post-state. Structural validation (parent link, number, tx root,
  /// shard id, PoW) still runs.
  [[nodiscard]] Result<Hash256> AppendExecuted(const Block& block,
                                              StateDB post_state);

  /// Convenience: builds a valid block on the current tip from `txs`
  /// (truncated to max_txs_per_block), executing them to fill in the
  /// roots. Transactions that fail execution are skipped, mirroring a
  /// miner dropping invalid txs while packing. Does not append. Fails
  /// only on internal invariant violations (snapshot bracket errors,
  /// a journal escaping its derived footprint) — never on individual
  /// invalid candidates.
  ///
  /// With no exec pool installed, candidates execute serially against a
  /// journaled revert point on one shared scratch state (no
  /// per-transaction StateDB copy). With SetExecPool, non-conflicting
  /// candidates execute concurrently on conflict-graph lanes against
  /// forked COW views and merge deterministically
  /// (chain/parallel_exec.h) — the block bytes, inclusion decisions,
  /// and state root are bitwise identical either way. The executed
  /// post-state is retained so Append of the freshly built block skips
  /// re-execution and the second StateRoot() derivation.
  [[nodiscard]] Result<Block> BuildBlock(const Address& miner,
                                         std::vector<Transaction> txs,
                                         uint64_t timestamp) const;

  /// Installs the thread pool BuildBlock uses for conflict-aware
  /// parallel candidate execution (nullptr = serial greedy loop).
  /// Never consensus-visible.
  void SetExecPool(ThreadPool* pool) { exec_pool_ = pool; }

  bool Contains(const Hash256& block_hash) const;
  const Block* Find(const Hash256& block_hash) const;

  /// Number of blocks on the canonical chain, genesis included.
  size_t CanonicalLength() const;

  /// Canonical chain from genesis to tip.
  std::vector<Hash256> CanonicalChain() const;

  /// Count of empty (transaction-free) blocks on the canonical chain,
  /// genesis excluded — the waste metric of Fig. 3b/3c.
  size_t CanonicalEmptyBlocks() const;

  /// Total number of transactions confirmed on the canonical chain.
  size_t CanonicalTxCount() const;

  /// Addresses the canonical chain has touched (senders, recipients,
  /// input accounts, coinbases), sorted ascending — the set whose
  /// authoritative state lives on THIS shard's chain and must be handed
  /// off when the shard's accounts migrate (DESIGN.md §12).
  std::vector<Address> TouchedAddresses() const;

  /// Cross-shard migration receive side: overwrites `addr` in the tip
  /// post-state with verified handed-off contents. Callers MUST have
  /// checked the handoff proof first (core/migration.h VerifyHandoff);
  /// the ledger only applies the state change.
  [[nodiscard]] Status ImportAccount(const Address& addr,
                                     const Account& account);

  /// Cross-shard migration send side: removes `addr` from the tip
  /// post-state after its authoritative home moved to another shard.
  [[nodiscard]] Status EvictAccount(const Address& addr);

  /// Executes `txs` in order against `state`: nonce check, fee charge,
  /// value transfer / contract call / deploy. Stops with an error on
  /// the first invalid transaction (states are not rolled back by this
  /// helper; callers pass a scratch copy). Fees and `block_reward` go
  /// to `miner`.
  [[nodiscard]] static Status ExecuteTransactions(
      const std::vector<Transaction>& txs, const Address& miner,
      const ChainConfig& config, StateDB* state);

 private:
  struct Node {
    Block block;
    StateDB post_state;
    uint64_t height = 0;
  };

  [[nodiscard]] Status Validate(const Block& block,
                                const Node& parent) const;

  /// Post-state of the most recent BuildBlock, keyed by its header
  /// hash (which commits to the parent, tx root, and state root).
  /// Consumed by Append when the same block comes straight back, so
  /// the build→append path executes and hashes the state once, not
  /// twice. Mutable: retaining it is a cache, not an observable state
  /// change of the const BuildBlock.
  mutable std::optional<std::pair<Hash256, StateDB>> last_built_;

  ThreadPool* exec_pool_ = nullptr;
  ShardId shard_id_;
  ChainConfig config_;
  Hash256 genesis_hash_;
  Hash256 tip_hash_;
  /// Keyed lookups and parent-hash walks only — the block tree is
  /// never iterated in bucket order, so fork choice stays a pure
  /// function of Append order (determinism audit, see tools/detlint).
  // detlint:allow(unordered-container): lookup-only index, never iterated
  std::unordered_map<Hash256, Node> nodes_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CHAIN_LEDGER_H_
