#ifndef SHARDCHAIN_CHAIN_PIPELINE_H_
#define SHARDCHAIN_CHAIN_PIPELINE_H_

#include <cstddef>
#include <vector>

#include "chain/ledger.h"
#include "common/result.h"
#include "txpool/txpool.h"

namespace shardchain {

/// \brief Pipeline knobs. Local performance only — like ParallelConfig,
/// never consensus-visible: any setting yields byte-identical blocks.
struct PipelineConfig {
  /// How many executed-but-uncommitted blocks may queue in front of the
  /// commit worker before selection/execution stalls (backpressure).
  size_t max_queued_blocks = 2;
};

/// \brief What a pipeline run produced.
struct PipelineResult {
  /// Appended block hashes, in height order (one per requested block).
  std::vector<Hash256> hashes;
  /// Transactions confirmed across all produced blocks.
  size_t txs_confirmed = 0;
};

/// \brief Pipelined block production: overlap select → execute with the
/// previous block's Merkle commit (DESIGN.md §14).
///
/// The serial mine loop per block is
///   select (TopByFee) → execute candidates → state root → append,
/// where the state-root derivation is the dominant per-block cost at
/// scale (O(dirty · depth) hashing). BlockPipeline splits the loop into
/// two stages:
///
///  - the CALLING thread selects and greedily executes block N+1's
///    candidates in place on a persistent execution state (the same
///    journaled snapshot brackets as Ledger::BuildBlock's serial path),
///    then value-snapshots the block's account delta (TouchedSince);
///  - an AsyncWorker (parallel/async_worker.h) replays each delta onto
///    a shadow commit state, derives the state root, finalizes the
///    header (parent hash chaining is worker-local, FIFO), and copies
///    the post-state for the ledger node.
///
/// Determinism argument (§14): selection/execution for block N+1 reads
/// only the execution state and the pool — never the in-flight root —
/// and the execution state's account contents after block N equal the
/// serial path's tip post-state contents by induction (same greedy
/// code, same inputs). The commit worker replays exactly the accounts
/// the journal recorded, so the shadow state's contents — and therefore
/// the root, a pure function of contents (DESIGN.md §10) — match the
/// serial path's. The worker is a single FIFO thread, so header
/// chaining and append order are the submission order. Hence blocks are
/// byte-identical to the serial loop at any queue depth
/// (tests/pipeline_equivalence_test.cc pins this across thread counts).
///
/// The ledger and pool must not be accessed externally while Run() is
/// in flight (Run itself is synchronous; the worker only touches state
/// it owns, so this is the ordinary single-caller rule, not a lock).
class BlockPipeline {
 public:
  /// Neither pointer is owned; both must outlive the pipeline.
  BlockPipeline(Ledger* ledger, TxPool* pool, PipelineConfig config = {});

  /// Mines exactly `count` blocks on the ledger tip — byte-identical to
  /// `count` iterations of the serial select/build/append/remove loop
  /// (empty blocks included, matching ShardingSystem::MineBlock's
  /// timestamp = block-number convention). Included transactions leave
  /// the pool; failed candidates stay pooled, as in the serial loop.
  [[nodiscard]] Result<PipelineResult> Run(const Address& miner,
                                           size_t count);

 private:
  Ledger* ledger_;
  TxPool* pool_;
  PipelineConfig config_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CHAIN_PIPELINE_H_
