#include "chain/snapshot.h"

#include "types/codec.h"

namespace shardchain {
namespace snapshot {

Bytes Serialize(const StateDB& state) {
  Bytes out;
  const std::vector<Address> addresses = state.Addresses();
  AppendUint64(&out, addresses.size());
  for (const Address& addr : addresses) {
    const Account* account = state.Find(addr);
    out.insert(out.end(), addr.bytes.begin(), addr.bytes.end());
    AppendUint64(&out, account->balance);
    AppendUint64(&out, account->nonce);
    AppendUint64(&out, account->code.size());
    out.insert(out.end(), account->code.begin(), account->code.end());
    AppendUint64(&out, account->storage.size());
    for (const auto& [key, value] : account->storage) {
      AppendUint64(&out, key);
      AppendUint64(&out, static_cast<uint64_t>(value));
    }
  }
  return out;
}

Result<StateDB> Deserialize(const Bytes& wire, const Hash256& expected_root) {
  codec::Reader reader(wire);
  StateDB state;
  uint64_t count = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(count, reader.ReadU64());
  // Every account needs at least 20 + 3*8 + 8 bytes.
  if (count > wire.size() / 52) {
    return Status::Corruption("account count exceeds snapshot size");
  }
  for (uint64_t i = 0; i < count; ++i) {
    Address addr;
    SHARDCHAIN_ASSIGN_OR_RETURN(addr, reader.ReadAddress());
    Account& account = state.GetOrCreate(addr);
    SHARDCHAIN_ASSIGN_OR_RETURN(account.balance, reader.ReadU64());
    SHARDCHAIN_ASSIGN_OR_RETURN(account.nonce, reader.ReadU64());
    uint64_t code_len = 0;
    SHARDCHAIN_ASSIGN_OR_RETURN(code_len, reader.ReadU64());
    if (code_len > reader.remaining()) {
      return Status::Corruption("code length exceeds snapshot");
    }
    SHARDCHAIN_ASSIGN_OR_RETURN(
        account.code, reader.ReadBytes(static_cast<size_t>(code_len)));
    uint64_t slots = 0;
    SHARDCHAIN_ASSIGN_OR_RETURN(slots, reader.ReadU64());
    if (slots > reader.remaining() / 16) {
      return Status::Corruption("storage slot count exceeds snapshot");
    }
    for (uint64_t s = 0; s < slots; ++s) {
      uint64_t key = 0;
      uint64_t value = 0;
      SHARDCHAIN_ASSIGN_OR_RETURN(key, reader.ReadU64());
      SHARDCHAIN_ASSIGN_OR_RETURN(value, reader.ReadU64());
      account.storage[key] = static_cast<int64_t>(value);
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot");
  }
  if (!expected_root.IsZero() && state.StateRoot() != expected_root) {
    return Status::Corruption("snapshot does not match the state root");
  }
  return state;
}

size_t SizeOf(const StateDB& state) { return Serialize(state).size(); }

}  // namespace snapshot
}  // namespace shardchain
