#include "chain/ledger.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "chain/parallel_exec.h"

namespace shardchain {

namespace {

/// PoW validity: the header hash, read as a 64-bit big-endian prefix,
/// must be below UINT64_MAX / difficulty.
bool PowValid(const BlockHeader& header) {
  if (header.difficulty <= 1) return true;
  const uint64_t target = ~uint64_t{0} / header.difficulty;
  return header.Hash().Prefix64() <= target;
}

}  // namespace

Ledger::Ledger(ShardId shard_id, StateDB genesis_state, ChainConfig config)
    : shard_id_(shard_id), config_(config) {
  Node genesis;
  genesis.block.header.shard_id = shard_id;
  genesis.block.header.state_root = genesis_state.StateRoot();
  genesis.post_state = std::move(genesis_state);
  genesis.height = 0;
  genesis_hash_ = genesis.block.header.Hash();
  tip_hash_ = genesis_hash_;
  nodes_.emplace(genesis_hash_, std::move(genesis));
}

uint64_t Ledger::tip_number() const { return nodes_.at(tip_hash_).height; }

const StateDB& Ledger::tip_state() const {
  return nodes_.at(tip_hash_).post_state;
}

Status Ledger::ExecuteTransactions(const std::vector<Transaction>& txs,
                                   const Address& miner,
                                   const ChainConfig& config, StateDB* state) {
  assert(state != nullptr);
  for (const Transaction& tx : txs) {
    if (config.strict_nonces && tx.nonce != state->NonceOf(tx.sender)) {
      return Status::FailedPrecondition("nonce mismatch for sender " +
                                        tx.sender.ToHex());
    }
    if (state->BalanceOf(tx.sender) < tx.fee + tx.value) {
      return Status::FailedPrecondition("sender cannot cover fee + value");
    }
    // Fee first, then the action.
    SHARDCHAIN_RETURN_IF_ERROR(state->Transfer(tx.sender, miner, tx.fee));
    switch (tx.kind) {
      case TxKind::kDirectTransfer:
        SHARDCHAIN_RETURN_IF_ERROR(
            state->Transfer(tx.sender, tx.recipient, tx.value));
        break;
      case TxKind::kContractCall: {
        Result<ExecReceipt> receipt = ContractRegistry::Call(state, tx);
        if (!receipt.ok()) return receipt.status();
        break;
      }
      case TxKind::kContractDeploy: {
        Result<ContractProgram> program =
            ContractProgram::Deserialize(tx.payload);
        if (!program.ok()) return program.status();
        const Address addr =
            Address::ForContract(tx.sender, state->NonceOf(tx.sender));
        SHARDCHAIN_RETURN_IF_ERROR(
            state->DeployContract(addr, program->Serialize()));
        break;
      }
    }
    state->GetOrCreate(tx.sender).nonce += 1;
  }
  state->Mint(miner, config.block_reward);
  return Status::OK();
}

Status Ledger::Validate(const Block& block, const Node& parent) const {
  const BlockHeader& h = block.header;
  if (h.shard_id != shard_id_) {
    return Status::Unauthorized("block carries foreign ShardID " +
                                std::to_string(h.shard_id));
  }
  if (h.number != parent.height + 1) {
    return Status::InvalidArgument("block number does not extend parent");
  }
  if (h.tx_root != block.ComputeTxRoot()) {
    return Status::Corruption("tx root does not match block body");
  }
  if (block.transactions.size() > config_.max_txs_per_block) {
    return Status::InvalidArgument("block exceeds transaction limit");
  }
  if (config_.check_pow && !PowValid(h)) {
    return Status::Unauthorized("proof-of-work below difficulty");
  }
  return Status::OK();
}

Result<Hash256> Ledger::Append(const Block& block) {
  const Hash256 hash = block.header.Hash();
  if (nodes_.count(hash) > 0) {
    return Status::AlreadyExists("block already recorded");
  }
  auto parent_it = nodes_.find(block.header.parent_hash);
  if (parent_it == nodes_.end()) {
    return Status::NotFound("unknown parent block");
  }
  const Node& parent = parent_it->second;
  SHARDCHAIN_RETURN_IF_ERROR(Validate(block, parent));

  Node node;
  if (last_built_.has_value() && last_built_->first == hash) {
    // This exact block (the header hash binds parent, tx root, and
    // state root) was just produced by BuildBlock on the same tip, and
    // its post-state — whose StateRoot() already matches the header by
    // construction — was retained. Reuse it instead of re-executing
    // the transactions and re-deriving the root a second time.
    node.post_state = std::move(last_built_->second);
    last_built_.reset();
  } else {
    node.post_state = parent.post_state;
    SHARDCHAIN_RETURN_IF_ERROR(ExecuteTransactions(
        block.transactions, block.header.miner, config_, &node.post_state));
    if (block.header.state_root != node.post_state.StateRoot()) {
      return Status::Corruption("state root mismatch after execution");
    }
  }
  node.block = block;
  node.height = parent.height + 1;

  const uint64_t height = node.height;
  nodes_.emplace(hash, std::move(node));
  // Longest-chain rule; strictly longer chains win so the earlier tip
  // is kept on ties (every miner breaks ties identically by arrival).
  if (height > nodes_.at(tip_hash_).height) tip_hash_ = hash;
  return hash;
}

Result<Hash256> Ledger::AppendExecuted(const Block& block,
                                       StateDB post_state) {
  // Seed the built-block cache and let Append take its fast path: all
  // structural validation runs, execution and root derivation do not.
  // (Overwriting an unrelated cached BuildBlock result is fine — that
  // cache is best-effort.)
  last_built_.emplace(block.header.Hash(), std::move(post_state));
  return Append(block);
}

// flowlint: deterministic-root — consensus entry point (DESIGN.md §7)
Result<Block> Ledger::BuildBlock(const Address& miner,
                                 std::vector<Transaction> txs,
                                 uint64_t timestamp) const {
  const Node& tip = nodes_.at(tip_hash_);
  Block block;
  block.header.parent_hash = tip_hash_;
  block.header.number = tip.height + 1;
  block.header.shard_id = shard_id_;
  block.header.miner = miner;
  block.header.timestamp = timestamp;

  StateDB scratch;
  if (exec_pool_ != nullptr) {
    // Conflict-aware parallel packing: non-conflicting candidates run
    // concurrently on lanes and merge deterministically; inclusion and
    // state are bitwise identical to the serial loop below.
    std::vector<uint8_t> included;
    SHARDCHAIN_ASSIGN_OR_RETURN(
        scratch, ExecuteCandidatesParallel(
                     tip.post_state, txs, miner, config_,
                     config_.max_txs_per_block, exec_pool_, &included,
                     /*stats=*/nullptr));
    for (size_t i = 0; i < txs.size(); ++i) {
      if (included[i] != 0) block.transactions.push_back(std::move(txs[i]));
    }
  } else {
    // Greedily include executable transactions up to the block limit.
    // Each candidate runs against a journaled revert point — committed
    // if it executes, rolled back if not — so trying a transaction
    // costs O(accounts it touches), not a copy of the whole state.
    scratch = tip.post_state;
    ChainConfig no_reward = config_;
    no_reward.block_reward = 0;
    for (Transaction& tx : txs) {
      if (block.transactions.size() >= config_.max_txs_per_block) break;
      const size_t trial = scratch.Snapshot();
      const std::vector<Transaction> single{tx};
      if (ExecuteTransactions(single, miner, no_reward, &scratch).ok()) {
        SHARDCHAIN_RETURN_IF_ERROR(scratch.Commit(trial));
        block.transactions.push_back(std::move(tx));
      } else {
        SHARDCHAIN_RETURN_IF_ERROR(scratch.RevertTo(trial));
      }
    }
  }
  scratch.Mint(miner, config_.block_reward);

  block.header.tx_root = block.ComputeTxRoot();
  block.header.state_root = scratch.StateRoot();
  // Retain the executed post-state so an immediate Append of this very
  // block (the common mine-then-record path) can skip re-execution.
  last_built_.emplace(block.header.Hash(), std::move(scratch));
  return block;
}

bool Ledger::Contains(const Hash256& block_hash) const {
  return nodes_.count(block_hash) > 0;
}

const Block* Ledger::Find(const Hash256& block_hash) const {
  auto it = nodes_.find(block_hash);
  return it == nodes_.end() ? nullptr : &it->second.block;
}

size_t Ledger::CanonicalLength() const {
  return nodes_.at(tip_hash_).height + 1;
}

std::vector<Hash256> Ledger::CanonicalChain() const {
  std::vector<Hash256> chain;
  Hash256 cursor = tip_hash_;
  for (;;) {
    chain.push_back(cursor);
    const Node& node = nodes_.at(cursor);
    if (node.height == 0) break;
    cursor = node.block.header.parent_hash;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

size_t Ledger::CanonicalEmptyBlocks() const {
  size_t empty = 0;
  for (const Hash256& hash : CanonicalChain()) {
    const Node& node = nodes_.at(hash);
    if (node.height > 0 && node.block.IsEmpty()) ++empty;
  }
  return empty;
}

size_t Ledger::CanonicalTxCount() const {
  size_t count = 0;
  for (const Hash256& hash : CanonicalChain()) {
    count += nodes_.at(hash).block.transactions.size();
  }
  return count;
}

std::vector<Address> Ledger::TouchedAddresses() const {
  std::set<Address> touched;
  for (const Hash256& hash : CanonicalChain()) {
    const Node& node = nodes_.at(hash);
    if (node.height > 0) touched.insert(node.block.header.miner);
    for (const Transaction& tx : node.block.transactions) {
      touched.insert(tx.sender);
      touched.insert(tx.recipient);
      for (const Address& input : tx.input_accounts) touched.insert(input);
    }
  }
  return std::vector<Address>(touched.begin(), touched.end());
}

Status Ledger::ImportAccount(const Address& addr, const Account& account) {
  Node& tip = nodes_.at(tip_hash_);
  tip.post_state.ApplyAccount(addr, account);
  // The tip post-state changed under any cached built block.
  last_built_.reset();
  return Status::OK();
}

Status Ledger::EvictAccount(const Address& addr) {
  Node& tip = nodes_.at(tip_hash_);
  if (!tip.post_state.EraseAccount(addr)) {
    return Status::NotFound("account not present at tip");
  }
  last_built_.reset();
  return Status::OK();
}

}  // namespace shardchain
