#include "chain/pipeline.h"

#include <exception>
#include <utility>

#include "parallel/async_worker.h"

namespace shardchain {

namespace {

/// A block finalized by the commit worker, awaiting its ledger append.
struct Prepared {
  Block block;
  StateDB post_state;
};

}  // namespace

BlockPipeline::BlockPipeline(Ledger* ledger, TxPool* pool,
                             PipelineConfig config)
    : ledger_(ledger), pool_(pool), config_(config) {}

// flowlint: deterministic-root — consensus entry point (DESIGN.md §14)
Result<PipelineResult> BlockPipeline::Run(const Address& miner, size_t count) {
  PipelineResult result;
  if (count == 0) return result;
  const ChainConfig& config = ledger_->config();
  ChainConfig no_reward = config;
  no_reward.block_reward = 0;

  // Stage-local states. exec_state is the selector/executor's working
  // copy; commit_state is the worker's shadow replica. Both copies
  // flush the tip's dirty set once, up front, then share its trie.
  // Serial digests (no thread pool): the §9 pool is fork-join with a
  // single caller, so the worker must not share it with the producer.
  StateDB exec_state = ledger_->tip_state();
  StateDB commit_state = ledger_->tip_state();
  exec_state.SetThreadPool(nullptr);
  commit_state.SetThreadPool(nullptr);

  // Written only by the commit worker after initialization; read by the
  // producer only after WaitIdle (the worker's mutex orders both).
  std::vector<Prepared> prepared;
  prepared.reserve(count);
  Hash256 prev_hash = ledger_->tip_hash();
  const uint64_t start_height = ledger_->tip_number();

  {
    AsyncWorker committer(config_.max_queued_blocks);
    for (size_t round = 0; round < count; ++round) {
      std::vector<Transaction> candidates =
          pool_->TopByFee(config.max_txs_per_block);

      // Greedy inclusion — the same per-candidate snapshot bracket as
      // Ledger::BuildBlock's serial path, against exec_state in place.
      // parlint:allow(unbalanced-snapshot): delta-collection bracket, always committed, never reverted
      const size_t outer = exec_state.Snapshot();
      std::vector<Transaction> included;
      for (Transaction& tx : candidates) {
        if (included.size() >= config.max_txs_per_block) break;
        const size_t trial = exec_state.Snapshot();
        const std::vector<Transaction> single{tx};
        if (Ledger::ExecuteTransactions(single, miner, no_reward, &exec_state)
                .ok()) {
          SHARDCHAIN_RETURN_IF_ERROR(exec_state.Commit(trial));
          included.push_back(std::move(tx));
        } else {
          SHARDCHAIN_RETURN_IF_ERROR(exec_state.RevertTo(trial));
        }
      }
      exec_state.Mint(miner, config.block_reward);

      // Value-snapshot this block's account delta for the worker
      // (reverted trial writes have left the journal, so TouchedSince
      // is exactly the surviving write set).
      std::vector<Address> touched;
      SHARDCHAIN_ASSIGN_OR_RETURN(touched, exec_state.TouchedSince(outer));
      SHARDCHAIN_RETURN_IF_ERROR(exec_state.Commit(outer));
      std::vector<std::pair<Address, Account>> delta;
      delta.reserve(touched.size());
      for (const Address& addr : touched) {
        const Account* account = exec_state.Find(addr);
        // Null only for a create that was fully reverted; execution
        // never erases pre-existing accounts, so skipping is exact.
        if (account != nullptr) delta.emplace_back(addr, *account);
      }
      pool_->RemoveAll(included);

      Block block;
      block.header.number = start_height + round + 1;
      block.header.shard_id = ledger_->shard_id();
      block.header.miner = miner;
      // The simulator's convention (ShardingSystem::MineBlock):
      // timestamp = block number on the virtual clock.
      block.header.timestamp = block.header.number;
      block.transactions = std::move(included);
      result.txs_confirmed += block.transactions.size();

      // Commit stage: replay the delta, derive the root, finalize the
      // header (FIFO chaining via worker-local prev_hash). Explicit
      // captures only — the closure owns its inputs by value and the
      // worker-confined state by pointer (§9 / tools/parlint).
      committer.Submit([block = std::move(block), delta = std::move(delta),
                        commit = &commit_state, out = &prepared,
                        prev = &prev_hash]() mutable {
        for (const auto& [addr, account] : delta) {
          commit->ApplyAccount(addr, account);
        }
        block.header.parent_hash = *prev;
        block.header.tx_root = block.ComputeTxRoot();
        block.header.state_root = commit->StateRoot();
        *prev = block.header.Hash();
        // StateRoot just flushed the dirty set, so this copy shares the
        // trie; only the plain account map is duplicated — the same
        // per-block cost Append's post-state tracking already pays.
        StateDB post = *commit;
        out->push_back(Prepared{std::move(block), std::move(post)});
      });
    }
    try {
      committer.WaitIdle();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("pipeline commit stage failed: ") +
                              e.what());
    }
  }

  // Record the finished blocks in height order. Cheap: AppendExecuted
  // skips re-execution and root re-derivation.
  result.hashes.reserve(prepared.size());
  for (Prepared& p : prepared) {
    Hash256 hash;
    SHARDCHAIN_ASSIGN_OR_RETURN(
        hash, ledger_->AppendExecuted(p.block, std::move(p.post_state)));
    result.hashes.push_back(hash);
  }
  return result;
}

}  // namespace shardchain
