#include "chain/parallel_exec.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "contract/analyzer.h"
#include "contract/registry.h"
#include "parallel/parallel.h"

namespace shardchain {

namespace {

/// Cap on the number of forked views per lane. The chunk decomposition
/// is a function of the lane size and this constant only (§9 rule 1),
/// so the fork count — and every byte downstream — is thread-count
/// independent.
constexpr size_t kMaxChunksPerLane = 16;

/// One executed candidate's contribution, extracted from the fork's
/// journal: absolute post-images of every written account (the account
/// modification log) plus the fee credited to the miner as an additive
/// delta. Replaying `mods` then minting `fee` in canonical candidate
/// order reproduces the serial post-state exactly.
struct TxEffect {
  bool ok = false;
  std::vector<std::pair<Address, Account>> mods;
  Amount fee = 0;
};

/// Executes lane entries [begin, end) of `lane` against one fork of
/// `lane_base`, recording each success's modification log into
/// `effects` (disjoint slots — §9 rule 2). The fork rolls back to the
/// lane base after every trial, so each transaction in the chunk sees
/// exactly the merged state of all earlier lanes, never its chunk
/// neighbours.
Status ExecuteLaneChunk(const std::vector<Transaction>& candidates,
                        const std::vector<uint32_t>& lane, size_t begin,
                        size_t end, const Address& miner,
                        const ChainConfig& no_reward, const StateDB& lane_base,
                        const std::vector<TxFootprint>& footprints,
                        std::vector<TxEffect>* effects) {
  StateDB fork = lane_base;  // O(1) trie share; the base was pre-flushed.
  for (size_t k = begin; k < end; ++k) {
    const uint32_t idx = lane[k];
    const Transaction& tx = candidates[idx];
    TxEffect& eff = (*effects)[idx];
    // The bracket reverts on both paths by design: the success effects
    // live on as the extracted modification log, and the fork must
    // return to the lane base before the next trial in this chunk.
    // parlint:allow(unbalanced-snapshot): revert-only bracket, effects extracted from the journal
    const size_t trial = fork.Snapshot();
    const std::vector<Transaction> single{tx};
    const bool executed =
        Ledger::ExecuteTransactions(single, miner, no_reward, &fork).ok();
    if (executed) {
      std::vector<Address> touched;
      SHARDCHAIN_ASSIGN_OR_RETURN(touched, fork.TouchedSince(trial));
      const TxFootprint& fp = footprints[idx];
      eff.mods.reserve(touched.size());
      for (const Address& addr : touched) {
        // The miner credit is Transfer'd inside ExecuteTransactions but
        // merges as an additive fee delta, not a post-image.
        if (addr == miner) continue;
        if (!std::binary_search(fp.writes.begin(), fp.writes.end(), addr)) {
          return Status::Internal(
              "execution journal escaped the derived footprint: account " +
              addr.ToHex());
        }
        const Account* post = fork.Find(addr);
        if (post == nullptr) {
          // Execution never erases accounts, so every journaled address
          // must have a live post-image.
          return Status::Internal("journaled account lost its post-image");
        }
        eff.mods.emplace_back(addr, *post);
      }
      eff.fee = tx.fee;
      eff.ok = true;
    }
    SHARDCHAIN_RETURN_IF_ERROR(fork.RevertTo(trial));
  }
  return Status::OK();
}

/// Replays one effect onto `state`: post-images first, then the fee
/// delta. Mint runs even for fee 0 so the miner account springs into
/// existence exactly when the serial loop would have created it.
void MergeEffect(const TxEffect& eff, const Address& miner, StateDB* state) {
  for (const auto& [addr, account] : eff.mods) {
    state->ApplyAccount(addr, account);
  }
  state->Mint(miner, eff.fee);
}

}  // namespace

TxFootprint DeriveFootprint(const Transaction& tx, const StateDB& pre_state,
                            const Address& miner) {
  TxFootprint fp;
  std::set<Address> reads(tx.input_accounts.begin(), tx.input_accounts.end());
  std::set<Address> writes;
  writes.insert(tx.sender);
  switch (tx.kind) {
    case TxKind::kDirectTransfer:
      writes.insert(tx.recipient);
      break;
    case TxKind::kContractDeploy:
      // The deployed address hashes the sender's nonce *at execution
      // time*, which depends on every earlier in-block transaction of
      // that sender — unresolvable before scheduling.
      return fp;
    case TxKind::kContractCall: {
      Result<ContractProgram> program =
          ContractRegistry::Load(pre_state, tx.recipient);
      // Target absent (or undecodable) in the pre-state: the call could
      // only succeed after an in-block deploy, so serialize it.
      if (!program.ok()) return fp;
      std::optional<PartyFootprint> parties = AnalyzePartyFootprint(*program);
      if (!parties.has_value()) return fp;
      writes.insert(tx.recipient);
      if (parties->all_parties) {
        for (const Address& party : program->parties) writes.insert(party);
      } else {
        for (uint8_t index : parties->party_indices) {
          if (index < program->parties.size()) {
            reads.insert(program->parties[index]);
          }
        }
      }
      break;
    }
  }
  // The miner account accretes a fee from every merged transaction, so
  // any transaction reading or writing it must see the fully-merged
  // balance: serialize.
  if (writes.count(miner) > 0 || reads.count(miner) > 0) return fp;
  for (const Address& addr : writes) reads.erase(addr);
  fp.resolvable = true;
  fp.reads.assign(reads.begin(), reads.end());
  fp.writes.assign(writes.begin(), writes.end());
  return fp;
}

LaneSchedule ScheduleLanes(const std::vector<TxFootprint>& footprints) {
  LaneSchedule schedule;
  const size_t n = footprints.size();
  schedule.lane_of.resize(n, 0);
  schedule.serialized.assign(n, 0);
  size_t num_lanes = 0;
  // Deepest lane so far writing / reading each address. std::map keeps
  // this deterministic by construction; it is only probed, never
  // iterated.
  std::map<Address, uint32_t> last_write_lane;
  std::map<Address, uint32_t> last_read_lane;
  // Minimum lane for the next candidate; raised past every serial
  // barrier so unresolvable transactions order against everything.
  uint32_t floor = 0;
  for (size_t i = 0; i < n; ++i) {
    const TxFootprint& fp = footprints[i];
    if (!fp.resolvable) {
      // Fresh lane above everything scheduled so far; everything after
      // lands strictly above it.
      const uint32_t lane = static_cast<uint32_t>(num_lanes);
      schedule.lane_of[i] = lane;
      schedule.serialized[i] = 1;
      num_lanes = lane + 1;
      floor = lane + 1;
      continue;
    }
    uint32_t lane = floor;
    for (const Address& addr : fp.writes) {
      auto w = last_write_lane.find(addr);
      if (w != last_write_lane.end()) lane = std::max(lane, w->second + 1);
      auto r = last_read_lane.find(addr);
      if (r != last_read_lane.end()) lane = std::max(lane, r->second + 1);
    }
    for (const Address& addr : fp.reads) {
      auto w = last_write_lane.find(addr);
      if (w != last_write_lane.end()) lane = std::max(lane, w->second + 1);
    }
    schedule.lane_of[i] = lane;
    num_lanes = std::max(num_lanes, static_cast<size_t>(lane) + 1);
    for (const Address& addr : fp.writes) {
      auto [it, inserted] = last_write_lane.try_emplace(addr, lane);
      if (!inserted) it->second = std::max(it->second, lane);
    }
    for (const Address& addr : fp.reads) {
      auto [it, inserted] = last_read_lane.try_emplace(addr, lane);
      if (!inserted) it->second = std::max(it->second, lane);
    }
  }
  schedule.lanes.resize(num_lanes);
  for (size_t i = 0; i < n; ++i) {
    schedule.lanes[schedule.lane_of[i]].push_back(static_cast<uint32_t>(i));
  }
  return schedule;
}

Result<StateDB> ExecuteCandidatesParallel(
    const StateDB& pre_state, const std::vector<Transaction>& candidates,
    const Address& miner, const ChainConfig& config, size_t max_include,
    ThreadPool* pool, std::vector<uint8_t>* included,
    ParallelExecStats* stats) {
  const size_t n = candidates.size();
  std::vector<TxFootprint> footprints;
  footprints.reserve(n);
  for (const Transaction& tx : candidates) {
    footprints.push_back(DeriveFootprint(tx, pre_state, miner));
  }
  const LaneSchedule schedule = ScheduleLanes(footprints);

  ChainConfig no_reward = config;
  no_reward.block_reward = 0;
  StateDB working = pre_state;
  std::vector<TxEffect> effects(n);

  for (const std::vector<uint32_t>& lane : schedule.lanes) {
    if (lane.size() == 1 && schedule.serialized[lane[0]] != 0) {
      // Serial barrier: execute directly on the merged state, exactly
      // like the serial greedy loop's trial bracket. Its lane sits
      // above every earlier candidate's, so `working` holds precisely
      // the effects of the successful candidates before it.
      const uint32_t idx = lane[0];
      const size_t trial = working.Snapshot();
      const std::vector<Transaction> single{candidates[idx]};
      if (Ledger::ExecuteTransactions(single, miner, no_reward, &working)
              .ok()) {
        // Record the modification log (miner post-image included — the
        // fee is already folded in) for the overflow rebuild below.
        std::vector<Address> touched;
        SHARDCHAIN_ASSIGN_OR_RETURN(touched, working.TouchedSince(trial));
        TxEffect& eff = effects[idx];
        eff.mods.reserve(touched.size());
        for (const Address& addr : touched) {
          const Account* post = working.Find(addr);
          if (post == nullptr) {
            return Status::Internal("journaled account lost its post-image");
          }
          eff.mods.emplace_back(addr, *post);
        }
        eff.fee = 0;
        eff.ok = true;
        SHARDCHAIN_RETURN_IF_ERROR(working.Commit(trial));
      } else {
        SHARDCHAIN_RETURN_IF_ERROR(working.RevertTo(trial));
      }
      continue;
    }

    const size_t m = lane.size();
    const size_t grain = (m + kMaxChunksPerLane - 1) / kMaxChunksPerLane;
    if (pool == nullptr || pool->thread_count() <= 1 ||
        NumChunks(m, grain) <= 1 || ThreadPool::InParallelRegion()) {
      // The lane would execute serially anyway (ParallelChunks' own
      // fallback conditions), so skip the per-chunk forks and run each
      // trial directly on `working`. Byte-identical to the fork path:
      // a lane member's actual reads and writes stay inside its
      // footprint (DeriveFootprint covers every account the VM and the
      // transfer path can touch), and the lane invariant guarantees no
      // same-lane predecessor wrote any of those accounts, so seeing a
      // neighbour's committed effects equals seeing the lane base.
      for (const uint32_t idx : lane) {
        const Transaction& tx = candidates[idx];
        TxEffect& eff = effects[idx];
        const size_t trial = working.Snapshot();
        const std::vector<Transaction> single{tx};
        if (Ledger::ExecuteTransactions(single, miner, no_reward, &working)
                .ok()) {
          std::vector<Address> touched;
          SHARDCHAIN_ASSIGN_OR_RETURN(touched, working.TouchedSince(trial));
          const TxFootprint& fp = footprints[idx];
          eff.mods.reserve(touched.size());
          for (const Address& addr : touched) {
            // Fork-style effect log: the miner credit stays an additive
            // fee delta so the overflow rebuild below can replay these
            // logs in canonical order even though lane order diverges
            // from it.
            if (addr == miner) continue;
            if (!std::binary_search(fp.writes.begin(), fp.writes.end(),
                                    addr)) {
              return Status::Internal(
                  "execution journal escaped the derived footprint: "
                  "account " +
                  addr.ToHex());
            }
            const Account* post = working.Find(addr);
            if (post == nullptr) {
              return Status::Internal(
                  "journaled account lost its post-image");
            }
            eff.mods.emplace_back(addr, *post);
          }
          eff.fee = tx.fee;
          eff.ok = true;
          SHARDCHAIN_RETURN_IF_ERROR(working.Commit(trial));
        } else {
          SHARDCHAIN_RETURN_IF_ERROR(working.RevertTo(trial));
        }
      }
      continue;
    }

    // Flush pending writes into the shared trie once, serially, so the
    // concurrent per-chunk forks below copy a fully-hashed structure
    // (pure reads on the shared nodes; PR 4's TSan guarantee).
    (void)working.StateRoot();
    std::vector<Status> chunk_status(NumChunks(m, grain), Status::OK());
    ParallelChunks(
        pool, m, grain,
        [&candidates, &lane, &miner, &no_reward, &working, &footprints,
         &effects, &chunk_status](size_t begin, size_t end, size_t c) {
          // Each chunk snapshots and reverts its own private fork of
          // `working`; the shared base is read-only inside the region
          // (§9 rule 2).
          // flowlint:allow(parallel-body-effects): snapshot brackets run on a chunk-private fork
          chunk_status[c] = ExecuteLaneChunk(candidates, lane, begin, end,
                                             miner, no_reward, working,
                                             footprints, &effects);
        });
    for (const Status& st : chunk_status) {
      SHARDCHAIN_RETURN_IF_ERROR(st);
    }
    // Merge this lane's modification logs left-to-right in canonical
    // candidate order before the next lane executes against them.
    for (const uint32_t idx : lane) {
      if (effects[idx].ok) MergeEffect(effects[idx], miner, &working);
    }
  }

  // Inclusion pass: the first `max_include` successes in canonical
  // order, exactly the prefix the serial greedy loop packs.
  included->assign(n, 0);
  size_t included_count = 0;
  size_t total_ok = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!effects[i].ok) continue;
    ++total_ok;
    if (included_count < max_include) {
      (*included)[i] = 1;
      ++included_count;
    }
  }
  if (stats != nullptr) {
    stats->num_lanes = schedule.lanes.size();
    stats->max_lane_width = 0;
    for (const auto& lane : schedule.lanes) {
      stats->max_lane_width = std::max(stats->max_lane_width, lane.size());
    }
    stats->serialized_txs = 0;
    for (uint8_t s : schedule.serialized) stats->serialized_txs += s;
    stats->included_txs = included_count;
  }

  if (total_ok <= max_include) return working;
  // The block overflowed: `working` carries effects of successful
  // candidates beyond the cap, which the serial loop never executes.
  // Rebuild from the pre-state replaying only the included logs (their
  // post-images are base-independent across non-conflicting merges, so
  // this equals the serial scratch exactly).
  StateDB rebuilt = pre_state;
  for (size_t i = 0; i < n; ++i) {
    if ((*included)[i] != 0) MergeEffect(effects[i], miner, &rebuilt);
  }
  return rebuilt;
}

}  // namespace shardchain
