#ifndef SHARDCHAIN_CHAIN_PARALLEL_EXEC_H_
#define SHARDCHAIN_CHAIN_PARALLEL_EXEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chain/ledger.h"
#include "common/result.h"
#include "state/statedb.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

class ThreadPool;

/// \brief Conflict-aware parallel in-block execution (DESIGN.md §13).
///
/// The block builder derives a per-transaction account footprint, colors
/// the conflict graph into execution *lanes* (an order-respecting greedy
/// layering: a transaction's lane is strictly after every earlier
/// transaction it conflicts with), executes each lane's transactions
/// concurrently against forked copy-on-write StateDB views, and merges
/// the recorded account modification logs left-to-right in canonical
/// candidate order. Inclusion decisions, transaction order, the state
/// root, and the block bytes are bitwise identical to the serial greedy
/// loop at every thread count — the differential suite in
/// tests/parallel_exec_equivalence_test.cc is the gate.

/// Account read/write sets of one candidate transaction, derived
/// statically from the transaction shape and (for contract calls) the
/// callee's code in the pre-state (contract/analyzer.h footprints).
///
/// `resolvable == false` means the footprint could not be bounded —
/// contract deploys (the deployed address depends on the in-block
/// nonce), calls whose target program is absent or undecodable in the
/// pre-state, and any transaction touching the miner account (whose
/// balance accretes fees from every merged transaction). Unresolvable
/// transactions execute as serial barriers: strictly after everything
/// before them and strictly before everything after.
struct TxFootprint {
  bool resolvable = false;
  /// Accounts the transaction may read without writing, sorted and
  /// deduplicated, disjoint from `writes`.
  std::vector<Address> reads;
  /// Accounts the transaction may create or mutate (writes imply
  /// reads), sorted and deduplicated. Never contains the miner — the
  /// per-transaction fee credit merges as an additive delta instead.
  std::vector<Address> writes;
};

/// Derives `tx`'s footprint against `pre_state` (the block's parent
/// post-state; contract code is immutable once deployed, so the
/// pre-state program is the program every execution sees).
TxFootprint DeriveFootprint(const Transaction& tx, const StateDB& pre_state,
                            const Address& miner);

/// \brief Lane assignment for one candidate list.
struct LaneSchedule {
  /// Per-candidate lane index. Lanes execute in index order; merging a
  /// lane's modification log happens before the next lane runs.
  std::vector<uint32_t> lane_of;
  /// Per-lane candidate indices, ascending within each lane.
  std::vector<std::vector<uint32_t>> lanes;
  /// Per-candidate flag: 1 when the footprint was unresolvable and the
  /// transaction runs as a width-1 serial barrier.
  std::vector<uint8_t> serialized;
};

/// Order-respecting greedy coloring: candidate i lands on the lowest
/// lane strictly greater than the lane of every earlier candidate j
/// with writes_j ∩ (reads_i ∪ writes_i) ≠ ∅ or writes_i ∩ reads_j ≠ ∅
/// (the symmetric conflict test the fuzz suite asserts). Two
/// transactions in the same lane therefore never share a written
/// account, so they can execute against the same merged base in any
/// order. Unresolvable candidates get a fresh lane above everything
/// scheduled so far and raise the floor for everything after.
LaneSchedule ScheduleLanes(const std::vector<TxFootprint>& footprints);

/// Counters the builder reports for benches and tests.
struct ParallelExecStats {
  size_t num_lanes = 0;
  /// Widest lane (1 on the all-conflict degenerate case: the schedule
  /// has degraded to serial).
  size_t max_lane_width = 0;
  size_t serialized_txs = 0;
  size_t included_txs = 0;
};

/// Executes `candidates` against a copy of `pre_state` under the lane
/// schedule, filling `included` (one flag per candidate: 1 iff the
/// transaction executes successfully and lands within the first
/// `max_include` successes in canonical order) and returning the
/// resulting post-state (included transactions' effects plus their fee
/// credits; no block reward — the caller mints that). `pool == nullptr`
/// runs the identical lane/chunk decomposition serially.
///
/// Fails only on internal invariant violations (a journal entry outside
/// the derived footprint, a snapshot bracket error) — per-transaction
/// execution failures are expressed as `included[i] == 0`, exactly like
/// the serial greedy loop skipping an invalid transaction.
[[nodiscard]] Result<StateDB> ExecuteCandidatesParallel(
    const StateDB& pre_state, const std::vector<Transaction>& candidates,
    const Address& miner, const ChainConfig& config, size_t max_include,
    ThreadPool* pool, std::vector<uint8_t>* included, ParallelExecStats* stats);

}  // namespace shardchain

#endif  // SHARDCHAIN_CHAIN_PARALLEL_EXEC_H_
