#ifndef SHARDCHAIN_CHAIN_SNAPSHOT_H_
#define SHARDCHAIN_CHAIN_SNAPSHOT_H_

#include "common/result.h"
#include "state/statedb.h"

namespace shardchain {

/// \brief State snapshot sync.
///
/// The paper's future work includes reducing "the storage overhead of
/// miners in the MaxShard". A prerequisite for any pruning or
/// fast-sync scheme is a canonical, verifiable state snapshot: a miner
/// joining a shard downloads the snapshot bytes from a peer and checks
/// them against the state root committed in a block header instead of
/// replaying history. This module provides exactly that:
///
///   Bytes wire = snapshot::Serialize(state);
///   Result<StateDB> restored = snapshot::Deserialize(wire, expected_root);
namespace snapshot {

/// Canonical byte serialization of the full world state (accounts in
/// address order; balances, nonces, code, storage).
Bytes Serialize(const StateDB& state);

/// Parses a snapshot and verifies its StateRoot against
/// `expected_root` (pass Hash256::Zero() to skip verification).
/// Corrupted or tampered snapshots are rejected.
[[nodiscard]] Result<StateDB> Deserialize(const Bytes& wire,
                                          const Hash256& expected_root);

/// Size in bytes a shard miner must download/store for `state` — the
/// quantity the storage analysis (analysis/storage.h) reasons about.
size_t SizeOf(const StateDB& state);

}  // namespace snapshot

}  // namespace shardchain

#endif  // SHARDCHAIN_CHAIN_SNAPSHOT_H_
