#include "net/network.h"

#include <algorithm>
#include <cassert>

#include "net/faults.h"

namespace shardchain {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kTxGossip:
      return "TxGossip";
    case MsgKind::kBlockGossip:
      return "BlockGossip";
    case MsgKind::kCrossShardQuery:
      return "CrossShardQuery";
    case MsgKind::kCrossShardVote:
      return "CrossShardVote";
    case MsgKind::kLeaderStat:
      return "LeaderStat";
    case MsgKind::kLeaderBroadcast:
      return "LeaderBroadcast";
    case MsgKind::kGameGossip:
      return "GameGossip";
  }
  return "Unknown";
}

void Network::Register(NodeId node, ShardId shard) {
  shard_of_[node] = shard;
}

void Network::Unregister(NodeId node) { shard_of_.erase(node); }

ShardId Network::ShardOf(NodeId node) const {
  auto it = shard_of_.find(node);
  return it == shard_of_.end() ? kUnassignedShard : it->second;
}

std::vector<NodeId> Network::Members(ShardId shard) const {
  std::vector<NodeId> out;
  for (const auto& [node, s] : shard_of_) {
    if (s == shard) out.push_back(node);
  }
  return out;  // Already ascending: shard_of_ is ordered by NodeId.
}

void Network::Account(NodeId from, NodeId to, MsgKind kind) {
  const size_t k = static_cast<size_t>(kind);
  ++total_[k];
  if (ShardOf(from) != ShardOf(to)) ++cross_shard_[k];
}

bool Network::Suppressed(NodeId from, NodeId to, SimTime now) {
  if (faults_ == nullptr) return false;
  if (faults_->IsCrashed(from, now) || faults_->IsCrashed(to, now) ||
      faults_->LinkCut(from, to, now)) {
    ++suppressed_;
    return true;
  }
  return false;
}

bool Network::Send(NodeId from, NodeId to, MsgKind kind, SimTime now) {
  if (Suppressed(from, to, now)) return false;
  Account(from, to, kind);
  return true;
}

void Network::Broadcast(NodeId from, MsgKind kind, SimTime now) {
  for (const auto& [node, shard] : shard_of_) {
    if (node != from && !Suppressed(from, node, now)) {
      Account(from, node, kind);
    }
  }
}

void Network::MulticastShard(NodeId from, ShardId shard, MsgKind kind,
                             SimTime now) {
  for (const auto& [node, s] : shard_of_) {
    if (s == shard && node != from && !Suppressed(from, node, now)) {
      Account(from, node, kind);
    }
  }
}

uint64_t Network::Count(MsgKind kind) const {
  return total_[static_cast<size_t>(kind)];
}

uint64_t Network::CrossShardCount(MsgKind kind) const {
  return cross_shard_[static_cast<size_t>(kind)];
}

uint64_t Network::CoordinationMessages() const {
  uint64_t sum = 0;
  for (MsgKind kind :
       {MsgKind::kCrossShardQuery, MsgKind::kCrossShardVote,
        MsgKind::kLeaderStat, MsgKind::kLeaderBroadcast,
        MsgKind::kGameGossip}) {
    sum += CrossShardCount(kind);
  }
  return sum;
}

double Network::CommunicationTimesPerShard(size_t shard_count) const {
  if (shard_count == 0) return 0.0;
  return static_cast<double>(CoordinationMessages()) /
         static_cast<double>(shard_count);
}

void Network::ResetCounters() {
  total_.fill(0);
  cross_shard_.fill(0);
}

}  // namespace shardchain
