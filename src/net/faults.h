#ifndef SHARDCHAIN_NET_FAULTS_H_
#define SHARDCHAIN_NET_FAULTS_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "net/network.h"
#include "types/block.h"

namespace shardchain {

/// \brief One partition episode: during [start, end) every link between
/// `island` and the rest of the network is cut. Links inside the island
/// (and inside the complement) keep working.
struct PartitionWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::vector<NodeId> island;
};

/// \brief Declarative fault schedule for one simulation run.
///
/// Everything is fixed up front — probabilities, crash times, partition
/// windows — so a chaos run is reproducible from (config, seed) alone.
struct FaultConfig {
  /// Per-link, per-attempt probability that a message is lost.
  double drop_probability = 0.0;
  /// Per-link, per-delivery probability that a second copy arrives.
  double duplicate_probability = 0.0;
  /// Per-link latency multipliers are drawn uniformly from
  /// [1, delay_multiplier_max] (1.0 disables extra delay).
  double delay_multiplier_max = 1.0;
  /// Nodes that crash, with their (sim-time) crash instants. A crashed
  /// node neither sends, relays, nor receives from that time on.
  std::vector<std::pair<NodeId, SimTime>> crashes;
  /// Partition schedule (may overlap; a link is cut if ANY active
  /// window cuts it).
  std::vector<PartitionWindow> partitions;
};

/// \brief Deterministic fault injector shared by GossipNetwork and
/// Network.
///
/// Every random decision is a pure function of (seed, link, per-link
/// attempt counter) via SplitMix64, so outcomes do not depend on the
/// global interleaving of calls across links — two runs with the same
/// plan and the same per-link traffic see the same faults, which keeps
/// chaos tests byte-reproducible.
class FaultPlan {
 public:
  FaultPlan(FaultConfig config, uint64_t seed);

  /// True once `node`'s crash instant has passed.
  bool IsCrashed(NodeId node, SimTime now) const;

  /// True while an active partition window separates `a` from `b`.
  bool LinkCut(NodeId a, NodeId b, SimTime now) const;

  /// Seeded coin: should this send attempt on (from → to) be lost?
  /// Advances the link's attempt counter.
  bool ShouldDrop(NodeId from, NodeId to);

  /// Seeded coin: should this delivery be duplicated? Advances the
  /// link's attempt counter.
  bool ShouldDuplicate(NodeId from, NodeId to);

  /// The link's fixed latency multiplier in [1, delay_multiplier_max].
  double DelayMultiplier(NodeId from, NodeId to) const;

  /// Convenience: the message is lost right now on (from → to), either
  /// to a partition cut or to a random drop. Advances the drop counter
  /// only when the link is up (cuts are not coin flips).
  bool Lost(NodeId from, NodeId to, SimTime now);

  const FaultConfig& config() const { return config_; }

  // --- Injection statistics (for reports and tests) -------------------
  uint64_t drops_injected() const { return drops_injected_; }
  uint64_t duplicates_injected() const { return duplicates_injected_; }
  uint64_t cuts_hit() const { return cuts_hit_; }

 private:
  /// Mixes (seed, link key, counter) into one well-distributed word.
  uint64_t Mix(NodeId from, NodeId to, uint64_t counter,
               uint64_t domain) const;
  double UnitCoin(NodeId from, NodeId to, uint64_t counter,
                  uint64_t domain) const;

  FaultConfig config_;
  uint64_t seed_;
  /// Crash instants, ordered by node id (lookup-only).
  std::map<NodeId, SimTime> crash_time_;
  /// Partition islands as sets for O(log n) membership tests.
  std::vector<std::set<NodeId>> islands_;
  /// Per-link attempt counters; ordered map keyed on the packed link id
  /// (lookup-only — never iterated).
  std::map<uint64_t, uint64_t> drop_counter_;
  std::map<uint64_t, uint64_t> dup_counter_;

  uint64_t drops_injected_ = 0;
  uint64_t duplicates_injected_ = 0;
  uint64_t cuts_hit_ = 0;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_NET_FAULTS_H_
