#include "net/gossip.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <queue>

namespace shardchain {

namespace {

uint64_t LinkKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace

GossipNetwork::GossipNetwork(size_t num_nodes, const GossipConfig& config,
                             Rng* rng)
    : config_(config), rng_(rng->Fork()) {
  assert(num_nodes > 0);
  adjacency_.resize(num_nodes);
  std::vector<std::unordered_set<NodeId>> peers(num_nodes);

  auto connect = [&](NodeId a, NodeId b) {
    if (a == b) return;
    if (!peers[a].insert(b).second) return;
    peers[b].insert(a);
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    const double latency = SampleLatency(config_.link_latency, &rng_);
    link_latency_[LinkKey(a, b)] = latency;
    link_latency_[LinkKey(b, a)] = latency;
  };

  // Ring for guaranteed connectivity.
  for (size_t i = 0; i + 1 < num_nodes; ++i) {
    connect(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  if (num_nodes > 2) {
    connect(static_cast<NodeId>(num_nodes - 1), 0);
  }
  // Random extra links.
  for (size_t i = 0; i < num_nodes; ++i) {
    for (size_t d = 0; d < config_.degree; ++d) {
      connect(static_cast<NodeId>(i),
              static_cast<NodeId>(rng_.UniformInt(num_nodes)));
    }
  }
  for (auto& neighbours : adjacency_) {
    std::sort(neighbours.begin(), neighbours.end());
  }
}

double GossipNetwork::SampleLatency(double base, Rng* rng) const {
  if (config_.deterministic_latency) return base;
  return rng->Exponential(base);
}

bool GossipNetwork::IsConnected() const {
  std::vector<bool> visited(adjacency_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  visited[0] = true;
  size_t count = 1;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (NodeId next : adjacency_[node]) {
      if (!visited[next]) {
        visited[next] = true;
        ++count;
        frontier.push(next);
      }
    }
  }
  return count == adjacency_.size();
}

void GossipNetwork::Deliver(NodeId from, NodeId to, const Hash256& id,
                            std::shared_ptr<const Bytes> payload,
                            EventQueue* queue) {
  auto& reached = seen_[id];
  if (!reached.insert(to).second) return;  // Duplicate: dropped.
  if (handler_) handler_(to, *payload, queue->Now());
  // Forward to every neighbour except the sender.
  for (NodeId next : adjacency_[to]) {
    if (next == from) continue;
    ++messages_sent_;
    const double latency = link_latency_.at(LinkKey(to, next));
    queue->ScheduleIn(latency, [this, to, next, id, payload, queue] {
      Deliver(to, next, id, payload, queue);
    });
  }
}

Hash256 GossipNetwork::Publish(NodeId origin, Bytes payload,
                               EventQueue* queue) {
  assert(queue != nullptr && origin < adjacency_.size());
  const Hash256 id = Sha256Digest(payload);
  auto shared = std::make_shared<const Bytes>(std::move(payload));
  // The origin "receives" its own message immediately (no self-send
  // counted), then floods.
  queue->ScheduleIn(0.0, [this, origin, id, shared, queue] {
    Deliver(origin, origin, id, shared, queue);
  });
  return id;
}

GossipNetwork::SpreadReport GossipNetwork::MeasureSpread(NodeId origin,
                                                         Bytes payload,
                                                         EventQueue* queue) {
  SpreadReport report;
  const uint64_t sent_before = messages_sent_;
  std::vector<double> arrival_times;
  arrival_times.reserve(adjacency_.size());
  Handler saved = handler_;
  handler_ = [&](NodeId, const Bytes&, SimTime when) {
    arrival_times.push_back(when);
  };
  const SimTime start = queue->Now();
  Publish(origin, std::move(payload), queue);
  queue->RunAll();
  handler_ = std::move(saved);

  report.reached = arrival_times.size();
  report.messages = messages_sent_ - sent_before;
  if (!arrival_times.empty()) {
    std::sort(arrival_times.begin(), arrival_times.end());
    report.time_to_all = arrival_times.back() - start;
    report.time_to_half =
        arrival_times[arrival_times.size() / 2] - start;
  }
  return report;
}

}  // namespace shardchain
