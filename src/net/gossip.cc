#include "net/gossip.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <queue>

namespace shardchain {

namespace {

uint64_t LinkKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace

GossipNetwork::GossipNetwork(size_t num_nodes, const GossipConfig& config,
                             Rng* rng)
    : config_(config), rng_(rng->Fork()) {
  assert(num_nodes > 0);
  adjacency_.resize(num_nodes);
  // Membership filter during construction; never iterated.
  // detlint:allow(unordered-container): lookup-only edge filter.
  std::vector<std::unordered_set<NodeId>> peers(num_nodes);

  auto connect = [&](NodeId a, NodeId b) {
    if (a == b) return;
    if (!peers[a].insert(b).second) return;
    peers[b].insert(a);
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    const double latency = SampleLatency(config_.link_latency, &rng_);
    link_latency_[LinkKey(a, b)] = latency;
    link_latency_[LinkKey(b, a)] = latency;
  };

  // Ring for guaranteed connectivity.
  for (size_t i = 0; i + 1 < num_nodes; ++i) {
    connect(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  if (num_nodes > 2) {
    connect(static_cast<NodeId>(num_nodes - 1), 0);
  }
  // Random extra links.
  for (size_t i = 0; i < num_nodes; ++i) {
    for (size_t d = 0; d < config_.degree; ++d) {
      connect(static_cast<NodeId>(i),
              static_cast<NodeId>(rng_.UniformInt(num_nodes)));
    }
  }
  for (auto& neighbours : adjacency_) {
    std::sort(neighbours.begin(), neighbours.end());
  }
}

double GossipNetwork::SampleLatency(double base, Rng* rng) const {
  if (config_.deterministic_latency) return base;
  return rng->Exponential(base);
}

bool GossipNetwork::IsConnected() const {
  std::vector<bool> visited(adjacency_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  visited[0] = true;
  size_t count = 1;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (NodeId next : adjacency_[node]) {
      if (!visited[next]) {
        visited[next] = true;
        ++count;
        frontier.push(next);
      }
    }
  }
  return count == adjacency_.size();
}

void GossipNetwork::SchedulePending(const Hash256& id, double delay,
                                    EventQueue* queue,
                                    std::function<void()> fn) {
  auto it = floods_.find(id);
  assert(it != floods_.end());
  ++it->second.pending;
  queue->ScheduleIn(delay, [this, id, fn = std::move(fn)] {
    fn();
    // The callback may have scheduled further events (raising pending);
    // prune only when this was the last one.
    auto entry = floods_.find(id);
    assert(entry != floods_.end() && entry->second.pending > 0);
    if (--entry->second.pending == 0) {
      floods_.erase(entry);
    }
  });
}

bool GossipNetwork::FloodComplete(const FloodState& state,
                                  SimTime now) const {
  for (NodeId node = 0; node < adjacency_.size(); ++node) {
    if (state.reached.count(node) > 0) continue;
    if (faults_ != nullptr && faults_->IsCrashed(node, now)) continue;
    return false;
  }
  return true;
}

void GossipNetwork::SendCopy(NodeId from, NodeId to, const Hash256& id,
                             size_t attempt, EventQueue* queue) {
  const SimTime now = queue->Now();
  if (faults_ != nullptr && faults_->IsCrashed(from, now)) {
    return;  // Crashed senders fall silent, including pending retries.
  }
  ++messages_sent_;
  if (attempt > 0) ++retransmissions_;
  double latency = link_latency_.at(LinkKey(from, to));
  if (faults_ != nullptr) {
    latency *= faults_->DelayMultiplier(from, to);
    if (faults_->Lost(from, to, now)) {
      ++messages_lost_;
      if (attempt < config_.max_retransmits) {
        // Exponential backoff: the sender retries the copy until the
        // link recovers or the budget runs out.
        const double backoff =
            config_.retransmit_backoff * static_cast<double>(1ULL << attempt);
        SchedulePending(id, backoff, queue, [this, from, to, id, attempt,
                                             queue] {
          SendCopy(from, to, id, attempt + 1, queue);
        });
      }
      return;
    }
    if (faults_->ShouldDuplicate(from, to)) {
      // The duplicate trails the original; receivers dedup on receipt.
      SchedulePending(id, latency * 1.5, queue, [this, from, to, id, queue] {
        Receive(from, to, id, queue);
      });
    }
  }
  SchedulePending(id, latency, queue, [this, from, to, id, queue] {
    Receive(from, to, id, queue);
  });
}

void GossipNetwork::Receive(NodeId from, NodeId to, const Hash256& id,
                            EventQueue* queue) {
  auto it = floods_.find(id);
  assert(it != floods_.end());
  FloodState& state = it->second;
  if (faults_ != nullptr && faults_->IsCrashed(to, queue->Now())) {
    return;  // Crashed receivers take nothing.
  }
  if (!state.reached.insert(to).second) return;  // Duplicate: dropped.
  if (handler_) handler_(to, *state.payload, queue->Now());
  // Forward to every neighbour except the sender.
  for (NodeId next : adjacency_[to]) {
    if (next == from) continue;
    SendCopy(to, next, id, 0, queue);
  }
}

void GossipNetwork::RepairRound(const Hash256& id, EventQueue* queue) {
  auto it = floods_.find(id);
  assert(it != floods_.end());
  FloodState& state = it->second;
  const SimTime now = queue->Now();
  if (FloodComplete(state, now)) return;  // All live nodes served.
  // Every holder re-offers the message to neighbours that lack it, in
  // node-id order (deterministic; the receipt set is only probed).
  for (NodeId node = 0; node < adjacency_.size(); ++node) {
    if (state.reached.count(node) == 0) continue;
    if (faults_ != nullptr && faults_->IsCrashed(node, now)) continue;
    for (NodeId next : adjacency_[node]) {
      if (state.reached.count(next) > 0) continue;
      ++repair_sends_;
      SendCopy(node, next, id, 0, queue);
    }
  }
  if (++state.repair_round < config_.anti_entropy_rounds) {
    SchedulePending(id, config_.anti_entropy_period, queue,
                    [this, id, queue] { RepairRound(id, queue); });
  }
}

Hash256 GossipNetwork::Publish(NodeId origin, Bytes payload,
                               EventQueue* queue) {
  assert(queue != nullptr && origin < adjacency_.size());
  const Hash256 id = Sha256Digest(payload);
  FloodState& state = floods_[id];
  state.payload = std::make_shared<const Bytes>(std::move(payload));
  // The origin "receives" its own message immediately (no self-send
  // counted), then floods.
  SchedulePending(id, 0.0, queue, [this, origin, id, queue] {
    Receive(origin, origin, id, queue);
  });
  if (faults_ != nullptr && config_.anti_entropy_rounds > 0) {
    SchedulePending(id, config_.anti_entropy_period, queue,
                    [this, id, queue] { RepairRound(id, queue); });
  }
  return id;
}

GossipNetwork::SpreadReport GossipNetwork::MeasureSpread(NodeId origin,
                                                         Bytes payload,
                                                         EventQueue* queue) {
  SpreadReport report;
  const uint64_t sent_before = messages_sent_;
  const uint64_t retrans_before = retransmissions_;
  const uint64_t repair_before = repair_sends_;
  const uint64_t lost_before = messages_lost_;
  std::vector<double> arrival_times;
  arrival_times.reserve(adjacency_.size());
  Handler saved = handler_;
  handler_ = [&](NodeId, const Bytes&, SimTime when) {
    arrival_times.push_back(when);
  };
  const SimTime start = queue->Now();
  Publish(origin, std::move(payload), queue);
  queue->RunAll();
  handler_ = std::move(saved);

  report.reached = arrival_times.size();
  report.messages = messages_sent_ - sent_before;
  report.retransmissions = retransmissions_ - retrans_before;
  report.repair_sends = repair_sends_ - repair_before;
  report.lost = messages_lost_ - lost_before;
  if (!arrival_times.empty()) {
    std::sort(arrival_times.begin(), arrival_times.end());
    report.time_to_all = arrival_times.back() - start;
    report.time_to_half =
        arrival_times[arrival_times.size() / 2] - start;
  }
  return report;
}

}  // namespace shardchain
