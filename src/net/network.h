#ifndef SHARDCHAIN_NET_NETWORK_H_
#define SHARDCHAIN_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/block.h"

namespace shardchain {

/// Node identifier within the simulated network.
using NodeId = uint32_t;

/// Shard reported for nodes the network has never seen. Registration
/// assigns real shards; `ShardOf` is total and returns this sentinel
/// instead of faulting on unknown nodes.
inline constexpr ShardId kUnassignedShard = ~ShardId{0};

/// Message categories, so experiments can attribute traffic. The
/// paper's "communication times" metric (Fig. 4) counts cross-shard
/// coordination messages; block/tx gossip inside a shard is the
/// baseline cost every scheme pays and is tracked separately.
enum class MsgKind : uint8_t {
  kTxGossip = 0,
  kBlockGossip = 1,
  kCrossShardQuery = 2,     ///< Validation needing foreign shard state.
  kCrossShardVote = 3,      ///< 2PC/BFT-style coordination votes.
  kLeaderStat = 4,          ///< Shard stats submitted to the leader.
  kLeaderBroadcast = 5,     ///< Leader's randomness/parameter broadcast.
  kGameGossip = 6,          ///< Per-iteration exchanges in Alg. 2/3.
};

/// Number of MsgKind values (counters are arrays indexed by kind).
inline constexpr size_t kMsgKindCount = 7;

const char* MsgKindName(MsgKind kind);

class FaultPlan;

/// \brief A simulated message-passing network with per-kind, per-shard
/// accounting.
///
/// Delivery is immediate and reliable (latency belongs to the
/// discrete-event layer); what the experiments need from this class is
/// *counting*: "communication times per shard" (Fig. 4b/4c) is
/// cross-shard message count divided by shard count.
///
/// With a FaultPlan attached, sends involving a crashed endpoint or
/// crossing an active partition are suppressed instead of counted —
/// the accounting then reflects the traffic that actually flows.
class Network {
 public:
  Network() = default;

  /// Registers a node and its shard. Re-registering updates the shard
  /// (used after merging and epoch-boundary reassignment).
  void Register(NodeId node, ShardId shard);

  /// Removes a departed node: it stops appearing in Members() and its
  /// ShardOf reverts to kUnassignedShard. No-op for unknown nodes.
  void Unregister(NodeId node);

  /// Total: returns kUnassignedShard for nodes never registered.
  ShardId ShardOf(NodeId node) const;
  size_t NodeCount() const { return shard_of_.size(); }

  /// Nodes currently assigned to `shard`.
  std::vector<NodeId> Members(ShardId shard) const;

  /// Attaches a fault injector (non-owning; nullptr restores perfect
  /// delivery). `now` arguments below are evaluated against its crash
  /// and partition schedules.
  void SetFaultPlan(FaultPlan* faults) { faults_ = faults; }

  /// Records a point-to-point message. Returns false (and counts
  /// nothing) when the attached fault plan suppresses it.
  bool Send(NodeId from, NodeId to, MsgKind kind, SimTime now = 0.0);

  /// Records a broadcast from `from` to every other node (counted as
  /// N-1 messages, minus any the fault plan suppresses).
  void Broadcast(NodeId from, MsgKind kind, SimTime now = 0.0);

  /// Records a multicast to every node in `shard` other than `from`.
  void MulticastShard(NodeId from, ShardId shard, MsgKind kind,
                      SimTime now = 0.0);

  /// Messages suppressed by the fault plan so far.
  uint64_t SuppressedCount() const { return suppressed_; }

  /// Total messages of `kind`.
  uint64_t Count(MsgKind kind) const;

  /// Messages of `kind` that crossed a shard boundary.
  uint64_t CrossShardCount(MsgKind kind) const;

  /// All cross-shard coordination traffic (queries + votes + leader
  /// stats/broadcasts + game gossip) — the "communication times" of
  /// Fig. 4 — divided by `shard_count`.
  double CommunicationTimesPerShard(size_t shard_count) const;

  /// Total cross-shard coordination messages (see above), undivided.
  uint64_t CoordinationMessages() const;

  void ResetCounters();

 private:
  void Account(NodeId from, NodeId to, MsgKind kind);
  bool Suppressed(NodeId from, NodeId to, SimTime now);

  /// Ordered by NodeId so Broadcast/MulticastShard walk the membership
  /// in one fixed order on every miner — delivery and accounting order
  /// must not depend on hash-bucket layout (Sec. IV-C determinism).
  std::map<NodeId, ShardId> shard_of_;
  std::array<uint64_t, kMsgKindCount> total_{};
  std::array<uint64_t, kMsgKindCount> cross_shard_{};
  FaultPlan* faults_ = nullptr;
  uint64_t suppressed_ = 0;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_NET_NETWORK_H_
