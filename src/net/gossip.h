#ifndef SHARDCHAIN_NET_GOSSIP_H_
#define SHARDCHAIN_NET_GOSSIP_H_

#include <cstdint>
#include <memory>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace shardchain {

/// \brief Parameters of the gossip overlay.
struct GossipConfig {
  /// Outgoing random links per node (the union graph is undirected; a
  /// ring is always added so the overlay is connected).
  size_t degree = 4;
  /// Mean per-link latency in seconds.
  double link_latency = 0.05;
  /// If true every link takes exactly `link_latency`; otherwise each
  /// hop samples an exponential with that mean.
  bool deterministic_latency = false;
};

/// \brief A flooding gossip overlay over the discrete-event queue.
///
/// Models how blocks and transactions actually spread between miners:
/// the origin sends to its neighbours, every first-time receiver
/// forwards to hers, duplicates are dropped. The measured time-to-all
/// is the `propagation_delay` the PoW race simulator consumes — this
/// module grounds that number instead of guessing it.
class GossipNetwork {
 public:
  /// Called on each node's FIRST receipt of a message.
  using Handler =
      std::function<void(NodeId node, const Bytes& payload, SimTime when)>;

  /// Builds a random `config.degree`-out overlay plus a ring, with
  /// per-link latencies drawn once from `rng` (a fixed topology, like a
  /// real deployment).
  GossipNetwork(size_t num_nodes, const GossipConfig& config, Rng* rng);

  size_t NodeCount() const { return adjacency_.size(); }
  const std::vector<std::vector<NodeId>>& adjacency() const {
    return adjacency_;
  }

  /// True if every node is reachable from node 0 (always holds with
  /// the ring, but the check is cheap and test-friendly).
  bool IsConnected() const;

  /// Installs the delivery handler (one for the whole overlay; the
  /// node id is passed in).
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Starts a flood of `payload` from `origin` at the queue's current
  /// time. Delivery events are scheduled on `queue`; run it to
  /// propagate. Returns the message id (payload hash).
  Hash256 Publish(NodeId origin, Bytes payload, EventQueue* queue);

  /// Total point-to-point sends so far (duplicates included — the real
  /// bandwidth cost of flooding).
  uint64_t MessagesSent() const { return messages_sent_; }

  /// \brief Outcome of a measured flood.
  struct SpreadReport {
    double time_to_half = 0.0;  ///< When 50% of nodes had the message.
    double time_to_all = 0.0;   ///< When every node had it.
    uint64_t messages = 0;      ///< Sends attributable to this flood.
    size_t reached = 0;
  };

  /// Publishes and runs the queue to completion, reporting spread
  /// latencies. Uses (and drains) `queue`.
  SpreadReport MeasureSpread(NodeId origin, Bytes payload, EventQueue* queue);

 private:
  struct Link {
    NodeId to;
    double latency;
  };

  double SampleLatency(double base, Rng* rng) const;
  void Deliver(NodeId from, NodeId to, const Hash256& id,
               std::shared_ptr<const Bytes> payload, EventQueue* queue);

  GossipConfig config_;
  Rng rng_;
  /// Neighbour lists are kept sorted: forwarding fans out in NodeId
  /// order, so a flood's delivery schedule is a pure function of the
  /// topology and seed (determinism audit, see tools/detlint).
  std::vector<std::vector<NodeId>> adjacency_;
  /// Lookup-only tables — never iterated, so their unordered layout
  /// cannot influence delivery order.
  std::unordered_map<uint64_t, double> link_latency_;  // key = from<<32|to.
  std::unordered_map<Hash256, std::unordered_set<NodeId>> seen_;
  Handler handler_;
  uint64_t messages_sent_ = 0;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_NET_GOSSIP_H_
