#ifndef SHARDCHAIN_NET_GOSSIP_H_
#define SHARDCHAIN_NET_GOSSIP_H_

#include <cstdint>
#include <memory>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "net/faults.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace shardchain {

/// \brief Parameters of the gossip overlay.
struct GossipConfig {
  /// Outgoing random links per node (the union graph is undirected; a
  /// ring is always added so the overlay is connected).
  size_t degree = 4;
  /// Mean per-link latency in seconds.
  double link_latency = 0.05;
  /// If true every link takes exactly `link_latency`; otherwise each
  /// hop samples an exponential with that mean.
  bool deterministic_latency = false;

  // --- Loss recovery (active only while a FaultPlan is attached) -----
  /// Maximum retransmissions of one lost copy on one link.
  size_t max_retransmits = 6;
  /// First retransmission delay; doubles on every further attempt.
  double retransmit_backoff = 0.05;
  /// Interval between anti-entropy repair rounds after a Publish.
  double anti_entropy_period = 0.25;
  /// Repair rounds per flood (bounds the repair work; the flood is
  /// abandoned as incomplete if nodes are still unreachable after
  /// them — e.g. crashed or partitioned beyond the schedule).
  size_t anti_entropy_rounds = 64;
};

/// \brief A flooding gossip overlay over the discrete-event queue.
///
/// Models how blocks and transactions actually spread between miners:
/// the origin sends to its neighbours, every first-time receiver
/// forwards to hers, duplicates are dropped. The measured time-to-all
/// is the `propagation_delay` the PoW race simulator consumes — this
/// module grounds that number instead of guessing it.
///
/// With a FaultPlan attached (SetFaultPlan) the overlay additionally
/// models loss and recovers from it: a lost copy is retransmitted with
/// exponential backoff (simulator omniscience stands in for the
/// ack/timeout a real transport would use), and periodic bounded
/// anti-entropy rounds let any node that holds a message re-offer it to
/// neighbours that still lack it, so floods complete under message
/// loss, crashed relays, and healed partitions.
class GossipNetwork {
 public:
  /// Called on each node's FIRST receipt of a message.
  using Handler =
      std::function<void(NodeId node, const Bytes& payload, SimTime when)>;

  /// Builds a random `config.degree`-out overlay plus a ring, with
  /// per-link latencies drawn once from `rng` (a fixed topology, like a
  /// real deployment).
  GossipNetwork(size_t num_nodes, const GossipConfig& config, Rng* rng);

  size_t NodeCount() const { return adjacency_.size(); }
  const std::vector<std::vector<NodeId>>& adjacency() const {
    return adjacency_;
  }

  /// True if every node is reachable from node 0 (always holds with
  /// the ring, but the check is cheap and test-friendly).
  bool IsConnected() const;

  /// Installs the delivery handler (one for the whole overlay; the
  /// node id is passed in).
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Attaches a fault injector (non-owning; nullptr restores the
  /// perfect network). Must outlive any queue runs.
  void SetFaultPlan(FaultPlan* faults) { faults_ = faults; }

  /// Starts a flood of `payload` from `origin` at the queue's current
  /// time. Delivery events are scheduled on `queue`; run it to
  /// propagate. Returns the message id (payload hash).
  Hash256 Publish(NodeId origin, Bytes payload, EventQueue* queue);

  /// Total point-to-point sends so far (duplicates and retransmissions
  /// included — the real bandwidth cost of flooding).
  uint64_t MessagesSent() const { return messages_sent_; }

  /// Retransmissions of lost copies so far (subset of MessagesSent).
  uint64_t Retransmissions() const { return retransmissions_; }

  /// Sends performed by anti-entropy repair rounds (subset of
  /// MessagesSent).
  uint64_t RepairSends() const { return repair_sends_; }

  /// Copies lost to drops or partition cuts so far.
  uint64_t MessagesLost() const { return messages_lost_; }

  /// Floods whose per-node receipt state is still retained (pruned to 0
  /// once every scheduled event of the flood has run).
  size_t ActiveFloods() const { return floods_.size(); }

  /// \brief Outcome of a measured flood.
  struct SpreadReport {
    double time_to_half = 0.0;  ///< When 50% of nodes had the message.
    double time_to_all = 0.0;   ///< When every node had it.
    uint64_t messages = 0;      ///< Sends attributable to this flood.
    size_t reached = 0;
    uint64_t retransmissions = 0;  ///< Backoff retries of lost copies.
    uint64_t repair_sends = 0;     ///< Anti-entropy repair traffic.
    uint64_t lost = 0;             ///< Copies dropped or cut en route.
  };

  /// Publishes and runs the queue to completion, reporting spread
  /// latencies. Uses (and drains) `queue`.
  SpreadReport MeasureSpread(NodeId origin, Bytes payload, EventQueue* queue);

 private:
  /// Per-flood receipt and lifecycle state. `pending` counts scheduled
  /// events still referencing the flood; when it returns to zero no
  /// further delivery can occur and the whole entry is pruned —
  /// GossipNetwork's memory use is bounded by in-flight floods, not by
  /// history.
  struct FloodState {
    /// Membership tests only; iteration goes through node-id order.
    /// detlint:allow(unordered-container): lookup-only receipt set.
    std::unordered_set<NodeId> reached;
    std::shared_ptr<const Bytes> payload;
    size_t pending = 0;
    size_t repair_round = 0;
  };

  double SampleLatency(double base, Rng* rng) const;
  /// Schedules `fn` while holding a pending reference on flood `id`.
  void SchedulePending(const Hash256& id, double delay, EventQueue* queue,
                       std::function<void()> fn);
  /// Fires when a copy of `id` arrives at `to` (first receipt forwards).
  void Receive(NodeId from, NodeId to, const Hash256& id, EventQueue* queue);
  /// One copy on one link, at the current queue time; handles faults,
  /// latency, duplicates, and schedules backoff retries on loss.
  void SendCopy(NodeId from, NodeId to, const Hash256& id, size_t attempt,
                EventQueue* queue);
  /// One anti-entropy repair round for flood `id`.
  void RepairRound(const Hash256& id, EventQueue* queue);
  bool FloodComplete(const FloodState& state, SimTime now) const;

  GossipConfig config_;
  Rng rng_;
  /// Neighbour lists are kept sorted: forwarding fans out in NodeId
  /// order, so a flood's delivery schedule is a pure function of the
  /// topology and seed (determinism audit, see tools/detlint).
  std::vector<std::vector<NodeId>> adjacency_;
  /// Lookup-only tables — never iterated, so their unordered layout
  /// cannot influence delivery order.
  /// detlint:allow(unordered-container): lookup-only latency table.
  std::unordered_map<uint64_t, double> link_latency_;  // key = from<<32|to.
  /// Keyed lookups only; repair rounds walk nodes in id order.
  /// detlint:allow(unordered-container): lookup-only flood table.
  std::unordered_map<Hash256, FloodState> floods_;
  Handler handler_;
  FaultPlan* faults_ = nullptr;
  uint64_t messages_sent_ = 0;
  uint64_t retransmissions_ = 0;
  uint64_t repair_sends_ = 0;
  uint64_t messages_lost_ = 0;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_NET_GOSSIP_H_
