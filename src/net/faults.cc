#include "net/faults.h"

#include <algorithm>

#include "common/rng.h"

namespace shardchain {

namespace {

uint64_t PackLink(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config, uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  for (const auto& [node, when] : config_.crashes) {
    auto it = crash_time_.find(node);
    if (it == crash_time_.end()) {
      crash_time_[node] = when;
    } else {
      it->second = std::min(it->second, when);
    }
  }
  islands_.reserve(config_.partitions.size());
  for (const PartitionWindow& window : config_.partitions) {
    islands_.emplace_back(window.island.begin(), window.island.end());
  }
}

bool FaultPlan::IsCrashed(NodeId node, SimTime now) const {
  auto it = crash_time_.find(node);
  return it != crash_time_.end() && now >= it->second;
}

bool FaultPlan::LinkCut(NodeId a, NodeId b, SimTime now) const {
  for (size_t i = 0; i < config_.partitions.size(); ++i) {
    const PartitionWindow& w = config_.partitions[i];
    if (now < w.start || now >= w.end) continue;
    const bool a_in = islands_[i].count(a) > 0;
    const bool b_in = islands_[i].count(b) > 0;
    if (a_in != b_in) return true;
  }
  return false;
}

uint64_t FaultPlan::Mix(NodeId from, NodeId to, uint64_t counter,
                        uint64_t domain) const {
  // SplitMix64 over a state folding in every input: one mixing step per
  // word keeps decisions independent across links and attempts.
  uint64_t state = seed_ ^ (domain * 0x9e3779b97f4a7c15ULL);
  (void)SplitMix64(&state);
  state ^= PackLink(from, to);
  (void)SplitMix64(&state);
  state ^= counter;
  return SplitMix64(&state);
}

double FaultPlan::UnitCoin(NodeId from, NodeId to, uint64_t counter,
                           uint64_t domain) const {
  // 53 high bits into [0, 1), same construction as Rng::UniformDouble.
  return static_cast<double>(Mix(from, to, counter, domain) >> 11) *
         (1.0 / 9007199254740992.0);
}

bool FaultPlan::ShouldDrop(NodeId from, NodeId to) {
  if (config_.drop_probability <= 0.0) return false;
  const uint64_t counter = drop_counter_[PackLink(from, to)]++;
  const bool drop = UnitCoin(from, to, counter, 1) < config_.drop_probability;
  if (drop) ++drops_injected_;
  return drop;
}

bool FaultPlan::ShouldDuplicate(NodeId from, NodeId to) {
  if (config_.duplicate_probability <= 0.0) return false;
  const uint64_t counter = dup_counter_[PackLink(from, to)]++;
  const bool dup =
      UnitCoin(from, to, counter, 2) < config_.duplicate_probability;
  if (dup) ++duplicates_injected_;
  return dup;
}

double FaultPlan::DelayMultiplier(NodeId from, NodeId to) const {
  if (config_.delay_multiplier_max <= 1.0) return 1.0;
  // Fixed per link (counter 0): a slow link is consistently slow.
  const double u = UnitCoin(from, to, 0, 3);
  return 1.0 + u * (config_.delay_multiplier_max - 1.0);
}

bool FaultPlan::Lost(NodeId from, NodeId to, SimTime now) {
  if (LinkCut(from, to, now)) {
    ++cuts_hit_;
    return true;
  }
  return ShouldDrop(from, to);
}

}  // namespace shardchain
