#ifndef SHARDCHAIN_PARALLEL_ASYNC_WORKER_H_
#define SHARDCHAIN_PARALLEL_ASYNC_WORKER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace shardchain {

/// \brief A single background thread draining a bounded FIFO task
/// queue (speedex `async_worker.h` shape, adapted to the §9 contract).
///
/// This is the pipelining primitive: ThreadPool is fork-join (the
/// caller blocks inside every region), so overlapping pipeline *stages*
/// — e.g. committing block N's state root while block N+1 executes —
/// needs a worker the producer does NOT join per task. Determinism is
/// preserved structurally:
///
///  - exactly one consumer thread, so queued tasks run in submission
///    order (FIFO), sequentially — the worker is a serial stage;
///  - the producer hands each task an explicit value snapshot (tasks
///    are std::function closures; callers follow the explicit-capture
///    rule, see tools/parlint);
///  - `WaitIdle()` is the join barrier: it blocks until the queue is
///    empty and the in-flight task finished, then rethrows the first
///    task exception, so errors cannot be silently dropped.
///
/// The bounded queue (`max_queued`) provides backpressure: Submit
/// blocks while the queue is full, which caps how far the producer
/// stage may run ahead of the consumer stage.
class AsyncWorker {
 public:
  /// Spawns the worker thread. `max_queued` >= 1 bounds the number of
  /// tasks waiting (not counting the one executing).
  explicit AsyncWorker(size_t max_queued = 4);

  /// Drains the queue (WaitIdle), then joins the thread. Pending
  /// task exceptions are swallowed at this point — call WaitIdle()
  /// first if you need them.
  ~AsyncWorker();

  AsyncWorker(const AsyncWorker&) = delete;
  AsyncWorker& operator=(const AsyncWorker&) = delete;

  /// Enqueues `task`; blocks while the queue holds `max_queued` tasks.
  /// After a task has thrown, Submit drops subsequent tasks (the error
  /// surfaces at the next WaitIdle, and running more pipeline stages on
  /// top of a failed one would act on stale state).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed, then rethrows the
  /// first exception thrown by a task (if any) and clears it.
  void WaitIdle();

  /// Queue depth + in-flight task (racy snapshot; for tests/bench).
  size_t Pending() const;

 private:
  void WorkerLoop();

  const size_t max_queued_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals the worker: task ready/stop.
  std::condition_variable space_cv_;  ///< Signals producers: queue has room.
  std::condition_variable idle_cv_;   ///< Signals WaitIdle: all drained.
  std::deque<std::function<void()>> queue_;
  bool in_flight_ = false;
  bool stop_ = false;
  std::exception_ptr first_error_;  // Guarded by mu_.

  std::thread thread_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_PARALLEL_ASYNC_WORKER_H_
