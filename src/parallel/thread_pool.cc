#include "parallel/thread_pool.h"

namespace shardchain {

namespace {

/// Set while the current thread executes chunks; Run() calls made from
/// such a context (nested parallelism) fall back to the serial loop.
thread_local bool tls_in_parallel_region = false;

class RegionGuard {
 public:
  RegionGuard() : saved_(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~RegionGuard() { tls_in_parallel_region = saved_; }

 private:
  bool saved_;
};

}  // namespace

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

ThreadPool::ThreadPool(size_t threads) {
  const size_t total = threads == 0 ? 1 : threads;
  workers_.reserve(total - 1);
  for (size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainChunks(const std::function<void(size_t)>& fn,
                             size_t num_chunks) {
  RegionGuard guard;
  for (;;) {
    const size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks) return;
    try {
      fn(c);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      // Skip the chunks nobody started yet; peers finish their current
      // chunk and the region drains normally.
      next_chunk_.store(num_chunks, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t served = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != served; });
      if (stop_) return;
      served = generation_;
      fn = job_;
      chunks = job_chunks_;
    }
    if (fn != nullptr) DrainChunks(*fn, chunks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--busy_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::Run(size_t num_chunks,
                     const std::function<void(size_t)>& chunk_fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1 || InParallelRegion()) {
    // Serial path: inline, in chunk order — bitwise identical to the
    // pool-free loop (and the only legal behaviour when nested).
    RegionGuard guard;
    for (size_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &chunk_fn;
    job_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread is the final lane.
  DrainChunks(chunk_fn, num_chunks);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace shardchain
