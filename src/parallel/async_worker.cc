#include "parallel/async_worker.h"

#include <utility>

namespace shardchain {

AsyncWorker::AsyncWorker(size_t max_queued)
    : max_queued_(max_queued == 0 ? 1 : max_queued) {
  thread_ = std::thread([this] { WorkerLoop(); });
}

AsyncWorker::~AsyncWorker() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
    stop_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

void AsyncWorker::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] {
      return queue_.size() < max_queued_ || first_error_ != nullptr;
    });
    if (first_error_ != nullptr) return;  // Poisoned: surface at WaitIdle.
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void AsyncWorker::WaitIdle() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

size_t AsyncWorker::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + (in_flight_ ? 1 : 0);
}

void AsyncWorker::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    space_cv_.notify_one();
    std::exception_ptr err;
    try {
      if (task) task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = false;
      if (err && !first_error_) {
        first_error_ = err;
        queue_.clear();  // Poison: drop tasks that would act on stale state.
      }
      if (queue_.empty()) idle_cv_.notify_all();
    }
    // Poisoning freed the whole queue; wake any blocked producers.
    if (err) space_cv_.notify_all();
  }
}

}  // namespace shardchain
