#ifndef SHARDCHAIN_PARALLEL_PARALLEL_H_
#define SHARDCHAIN_PARALLEL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "parallel/thread_pool.h"

namespace shardchain {

/// \brief Deterministic data-parallel primitives (DESIGN.md §9).
///
/// The determinism contract every helper here honours:
///
///   1. FIXED CHUNKING — chunk boundaries are a function of (n, grain)
///      only, never of the thread count. Chunk c covers
///      [c*grain, min(n, (c+1)*grain)).
///   2. DISJOINT WRITES — a chunk may only write state no other chunk
///      touches (its own output slots / its own partial accumulator).
///   3. ORDERED REDUCTION — partial results are combined serially in
///      chunk order on the calling thread, so floating-point sums see
///      the exact same addition order at every thread count, including
///      the pool-free serial path (which walks the same chunks).
///   4. PER-CHUNK SEEDING — randomized chunk work derives its RNG
///      stream from ChunkSeed(base, index), never from a shared
///      sequential generator.
///
/// Under these rules the pool's scheduling freedom (which thread runs
/// which chunk, in what order) cannot leak into any result byte.

/// Number of fixed-size chunks covering n items.
inline size_t NumChunks(size_t n, size_t grain) {
  const size_t g = grain == 0 ? 1 : grain;
  return (n + g - 1) / g;
}

/// Deterministic per-chunk seed: SplitMix64 over (base, index) — the
/// same construction FaultPlan::Mix uses — so a chunk's RNG stream
/// depends only on its logical index, never on which thread runs it or
/// how many peers run beside it.
inline uint64_t ChunkSeed(uint64_t base, uint64_t index) {
  uint64_t state = base;
  (void)SplitMix64(&state);
  state ^= index;
  return SplitMix64(&state);
}

/// Runs `body(begin, end, chunk)` over the fixed chunk decomposition of
/// [0, n). `pool == nullptr` (or a single-thread pool, or a nested
/// call) runs the identical chunks serially in chunk order.
// flowlint: contract-barrier — certified §9 boundary; taints inside the
// primitives (ThreadPool's hardware_concurrency read) stay inside.
template <typename Body>
void ParallelChunks(ThreadPool* pool, size_t n, size_t grain,
                    const Body& body) {
  if (n == 0) return;
  const size_t g = grain == 0 ? 1 : grain;
  const size_t chunks = NumChunks(n, g);
  if (pool == nullptr || pool->thread_count() <= 1 || chunks <= 1 ||
      ThreadPool::InParallelRegion()) {
    for (size_t c = 0; c < chunks; ++c) {
      body(c * g, std::min(n, (c + 1) * g), c);
    }
    return;
  }
  pool->Run(chunks, [&body, g, n](size_t c) {
    body(c * g, std::min(n, (c + 1) * g), c);
  });
}

/// Element-wise parallel loop: `body(i)` for i in [0, n). The body must
/// only write state owned by element i.
// flowlint: contract-barrier — certified §9 boundary (see ParallelChunks)
template <typename Body>
void ParallelFor(ThreadPool* pool, size_t n, size_t grain, const Body& body) {
  ParallelChunks(pool, n, grain,
                 [&body](size_t begin, size_t end, size_t) {
                   for (size_t i = begin; i < end; ++i) body(i);
                 });
}

/// Map-reduce with ordered combination: `map(begin, end, chunk)`
/// produces one partial per chunk (computed concurrently), then the
/// partials are folded left-to-right in chunk order on the calling
/// thread: acc = combine(acc, partial[0]), combine(acc, partial[1]), …
/// starting from `init`. The fold order is what makes floating-point
/// reductions bit-stable across thread counts.
// flowlint: contract-barrier — certified §9 boundary (see ParallelChunks)
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(ThreadPool* pool, size_t n, size_t grain, T init,
                 const MapFn& map, const CombineFn& combine) {
  if (n == 0) return init;
  std::vector<T> partials(NumChunks(n, grain == 0 ? 1 : grain), init);
  ParallelChunks(pool, n, grain,
                 [&partials, &map](size_t begin, size_t end, size_t c) {
                   partials[c] = map(begin, end, c);
                 });
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace shardchain

#endif  // SHARDCHAIN_PARALLEL_PARALLEL_H_
