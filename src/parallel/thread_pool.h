#ifndef SHARDCHAIN_PARALLEL_THREAD_POOL_H_
#define SHARDCHAIN_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shardchain {

/// \brief How much parallelism a component may use. This is a *local
/// performance knob*, never consensus data: two miners running with
/// different thread counts must still produce byte-identical plans
/// (see DESIGN.md §9), so ParallelConfig is deliberately absent from
/// every codec and every UnifiedParameters field.
struct ParallelConfig {
  /// Total threads participating in parallel regions (workers plus the
  /// calling thread). 0 = use std::thread::hardware_concurrency();
  /// 1 = strictly serial — no pool is ever created and every parallel
  /// primitive degenerates to the plain loop.
  size_t threads = 0;

  /// The effective thread count (always >= 1).
  size_t Resolve() const {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
};

/// \brief A deterministic fork-join thread pool.
///
/// Deliberately work-stealing-free: a parallel region is a fixed list
/// of chunks [0, num_chunks) and idle threads claim the next chunk from
/// a shared cursor. WHICH thread runs a chunk is scheduler-dependent,
/// but because every primitive built on top (ParallelFor /
/// ParallelReduce in parallel.h) makes chunk boundaries a function of
/// the problem size alone and gives each chunk its own seeded RNG
/// stream, WHAT each chunk computes — and the order partial results are
/// combined in — is not. Results are therefore independent of thread
/// count and scheduling, which is what lets the consensus-critical hot
/// paths use this pool at all (Sec. IV-C requires every miner to
/// recompute plans bit-identically).
///
/// The pool owns `threads - 1` workers; the thread calling Run()
/// participates as the final lane, so `ThreadPool(1)` spawns nothing
/// and runs chunks inline — bitwise identical to the pool-free loop.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (clamped so `threads == 0` behaves
  /// like 1). The pool is reusable across any number of Run() calls.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers + the calling thread.
  size_t thread_count() const { return workers_.size() + 1; }

  /// Runs `chunk_fn(c)` for every c in [0, num_chunks), distributing
  /// chunks over the workers and the calling thread. Blocks until every
  /// chunk completed. If any chunk throws, the first exception is
  /// rethrown on the calling thread after the region drains (remaining
  /// unstarted chunks are skipped).
  ///
  /// Calls from inside a parallel region (nested parallelism) execute
  /// the chunks serially inline — same results, no deadlock.
  void Run(size_t num_chunks, const std::function<void(size_t)>& chunk_fn);

  /// True while the current thread is executing a chunk of some
  /// parallel region (used by the nested-region serial fallback).
  static bool InParallelRegion();

 private:
  void WorkerLoop();
  /// Claims and executes chunks of the current job until the cursor is
  /// exhausted; records the first exception and fast-forwards the
  /// cursor on failure.
  void DrainChunks(const std::function<void(size_t)>& fn, size_t num_chunks);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  /// Incremented once per Run(); workers pick up a job when the
  /// generation moves past the one they last served.
  uint64_t generation_ = 0;
  size_t busy_workers_ = 0;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_chunks_ = 0;
  std::exception_ptr first_error_;  // Guarded by mu_.

  std::atomic<size_t> next_chunk_{0};
};

}  // namespace shardchain

#endif  // SHARDCHAIN_PARALLEL_THREAD_POOL_H_
