#include "state/trie.h"

#include <algorithm>
#include <cassert>

namespace shardchain {

namespace {

size_t CommonPrefix(const std::vector<uint8_t>& a, size_t a_from,
                    const std::vector<uint8_t>& b, size_t b_from) {
  size_t n = 0;
  while (a_from + n < a.size() && b_from + n < b.size() &&
         a[a_from + n] == b[b_from + n]) {
    ++n;
  }
  return n;
}

}  // namespace

// ---------------------------------------------------------------------
// Node basics
// ---------------------------------------------------------------------

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::ShallowCopy(const Node& src) {
  auto copy = std::make_shared<Node>();
  copy->kind = src.kind;
  copy->path = src.path;
  copy->value = src.value;
  copy->has_value = src.has_value;
  copy->children = src.children;  // Pointer copies: subtrees are shared.
  return copy;
}

MerklePatriciaTrie::MerklePatriciaTrie(const MerklePatriciaTrie& other)
    : root_(other.root_), size_(other.size_) {
  // Warm the shared nodes' hash caches before sharing so neither copy
  // ever writes a node the other can reach (data-race freedom when
  // copies are hashed from different threads).
  (void)other.RootHash();
}

MerklePatriciaTrie& MerklePatriciaTrie::operator=(
    const MerklePatriciaTrie& other) {
  if (this != &other) {
    (void)other.RootHash();
    root_ = other.root_;
    size_ = other.size_;
  }
  return *this;
}

std::vector<uint8_t> MerklePatriciaTrie::ToNibbles(const Bytes& key) {
  std::vector<uint8_t> nibbles;
  nibbles.reserve(key.size() * 2);
  for (uint8_t b : key) {
    nibbles.push_back(b >> 4);
    nibbles.push_back(b & 0x0f);
  }
  return nibbles;
}

// ---------------------------------------------------------------------
// Serialization & hashing
// ---------------------------------------------------------------------

Bytes MerklePatriciaTrie::Serialize(const Node& node) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(node.kind));
  switch (node.kind) {
    case Node::Kind::kLeaf: {
      AppendUint32(&out, static_cast<uint32_t>(node.path.size()));
      out.insert(out.end(), node.path.begin(), node.path.end());
      AppendUint64(&out, node.value.size());
      out.insert(out.end(), node.value.begin(), node.value.end());
      break;
    }
    case Node::Kind::kExtension: {
      AppendUint32(&out, static_cast<uint32_t>(node.path.size()));
      out.insert(out.end(), node.path.begin(), node.path.end());
      const Hash256 child = node.children[0] ? HashOf(*node.children[0])
                                             : Hash256::Zero();
      out.insert(out.end(), child.bytes.begin(), child.bytes.end());
      break;
    }
    case Node::Kind::kBranch: {
      for (const NodePtr& child : node.children) {
        const Hash256 h = child ? HashOf(*child) : Hash256::Zero();
        out.insert(out.end(), h.bytes.begin(), h.bytes.end());
      }
      out.push_back(node.has_value ? 1 : 0);
      AppendUint64(&out, node.value.size());
      out.insert(out.end(), node.value.begin(), node.value.end());
      break;
    }
  }
  return out;
}

Hash256 MerklePatriciaTrie::HashOf(const Node& node) {
  if (node.hash_valid) return node.cached_hash;
  node.cached_hash = Sha256Digest(Serialize(node));
  node.hash_valid = true;
  return node.cached_hash;
}

Hash256 MerklePatriciaTrie::RootHash() const {
  return root_ ? HashOf(*root_) : Hash256::Zero();
}

// ---------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------

namespace {

/// Whether the key suffix nibbles[depth..] equals `path`.
bool SuffixEquals(const std::vector<uint8_t>& nibbles, size_t depth,
                  const std::vector<uint8_t>& path) {
  if (nibbles.size() - depth != path.size()) return false;
  return std::equal(path.begin(), path.end(), nibbles.begin() + depth);
}

}  // namespace

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::Insert(
    const NodePtr& node, const std::vector<uint8_t>& nibbles, size_t depth,
    Bytes value, bool* added) {
  if (!node) {
    auto leaf = std::make_shared<Node>();
    leaf->kind = Node::Kind::kLeaf;
    leaf->path.assign(nibbles.begin() + static_cast<ptrdiff_t>(depth),
                      nibbles.end());
    leaf->value = std::move(value);
    leaf->has_value = true;
    *added = true;
    return leaf;
  }

  switch (node->kind) {
    case Node::Kind::kLeaf: {
      if (SuffixEquals(nibbles, depth, node->path)) {
        NodePtr copy = ShallowCopy(*node);
        copy->value = std::move(value);
        return copy;
      }
      *added = true;
      const size_t cp = CommonPrefix(node->path, 0, nibbles, depth);
      auto branch = std::make_shared<Node>();
      branch->kind = Node::Kind::kBranch;
      // Re-seat the existing leaf under the branch.
      if (node->path.size() == cp) {
        branch->has_value = true;
        branch->value = node->value;
      } else {
        auto old_leaf = std::make_shared<Node>();
        old_leaf->kind = Node::Kind::kLeaf;
        old_leaf->path.assign(
            node->path.begin() + static_cast<ptrdiff_t>(cp + 1),
            node->path.end());
        old_leaf->value = node->value;
        old_leaf->has_value = true;
        branch->children[node->path[cp]] = std::move(old_leaf);
      }
      // Seat the new entry.
      if (nibbles.size() - depth == cp) {
        branch->has_value = true;
        branch->value = std::move(value);
      } else {
        auto new_leaf = std::make_shared<Node>();
        new_leaf->kind = Node::Kind::kLeaf;
        new_leaf->path.assign(
            nibbles.begin() + static_cast<ptrdiff_t>(depth + cp + 1),
            nibbles.end());
        new_leaf->value = std::move(value);
        new_leaf->has_value = true;
        branch->children[nibbles[depth + cp]] = std::move(new_leaf);
      }
      if (cp == 0) return branch;
      auto ext = std::make_shared<Node>();
      ext->kind = Node::Kind::kExtension;
      ext->path.assign(node->path.begin(),
                       node->path.begin() + static_cast<ptrdiff_t>(cp));
      ext->children[0] = std::move(branch);
      return ext;
    }

    case Node::Kind::kExtension: {
      const size_t cp = CommonPrefix(node->path, 0, nibbles, depth);
      if (cp == node->path.size()) {
        NodePtr copy = ShallowCopy(*node);
        copy->children[0] =
            Insert(node->children[0], nibbles, depth + cp, std::move(value),
                   added);
        return copy;
      }
      // Split the extension at cp.
      *added = true;
      auto branch = std::make_shared<Node>();
      branch->kind = Node::Kind::kBranch;
      // Old subtree goes under node->path[cp]; the subtree itself is
      // shared untouched.
      {
        const uint8_t idx = node->path[cp];
        if (node->path.size() - cp == 1) {
          branch->children[idx] = node->children[0];
        } else {
          auto tail = std::make_shared<Node>();
          tail->kind = Node::Kind::kExtension;
          tail->path.assign(
              node->path.begin() + static_cast<ptrdiff_t>(cp + 1),
              node->path.end());
          tail->children[0] = node->children[0];
          branch->children[idx] = std::move(tail);
        }
      }
      // New entry.
      if (nibbles.size() - depth == cp) {
        branch->has_value = true;
        branch->value = std::move(value);
      } else {
        auto leaf = std::make_shared<Node>();
        leaf->kind = Node::Kind::kLeaf;
        leaf->path.assign(
            nibbles.begin() + static_cast<ptrdiff_t>(depth + cp + 1),
            nibbles.end());
        leaf->value = std::move(value);
        leaf->has_value = true;
        branch->children[nibbles[depth + cp]] = std::move(leaf);
      }
      if (cp == 0) return branch;
      auto ext = std::make_shared<Node>();
      ext->kind = Node::Kind::kExtension;
      ext->path.assign(node->path.begin(),
                       node->path.begin() + static_cast<ptrdiff_t>(cp));
      ext->children[0] = std::move(branch);
      return ext;
    }

    case Node::Kind::kBranch: {
      NodePtr copy = ShallowCopy(*node);
      if (depth == nibbles.size()) {
        if (!copy->has_value) *added = true;
        copy->has_value = true;
        copy->value = std::move(value);
        return copy;
      }
      const uint8_t idx = nibbles[depth];
      copy->children[idx] = Insert(node->children[idx], nibbles, depth + 1,
                                   std::move(value), added);
      return copy;
    }
  }
  return nullptr;  // Unreachable.
}

void MerklePatriciaTrie::Put(const Bytes& key, Bytes value) {
  const std::vector<uint8_t> nibbles = ToNibbles(key);
  bool added = false;
  root_ = Insert(root_, nibbles, 0, std::move(value), &added);
  if (added) ++size_;
}

// ---------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------

const MerklePatriciaTrie::Node* MerklePatriciaTrie::Find(
    const Node* node, const std::vector<uint8_t>& nibbles, size_t depth) {
  while (node != nullptr) {
    switch (node->kind) {
      case Node::Kind::kLeaf:
        return SuffixEquals(nibbles, depth, node->path) ? node : nullptr;
      case Node::Kind::kExtension: {
        const size_t cp = CommonPrefix(node->path, 0, nibbles, depth);
        if (cp != node->path.size()) return nullptr;
        depth += cp;
        node = node->children[0].get();
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == nibbles.size()) {
          return node->has_value ? node : nullptr;
        }
        node = node->children[nibbles[depth]].get();
        ++depth;
        break;
      }
    }
  }
  return nullptr;
}

std::optional<Bytes> MerklePatriciaTrie::Get(const Bytes& key) const {
  const Node* node = Find(root_.get(), ToNibbles(key), 0);
  if (node == nullptr) return std::nullopt;
  return node->value;
}

// ---------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::Normalize(NodePtr node) {
  if (!node) return node;
  if (node->kind == Node::Kind::kExtension) {
    const Node* child = node->children[0].get();
    if (child == nullptr) return nullptr;
    if (child->kind == Node::Kind::kLeaf ||
        child->kind == Node::Kind::kExtension) {
      // ext(p) + leaf(q) => leaf(p+q); ext(p) + ext(q) => ext(p+q).
      // The child may be shared, so the merge builds a fresh node.
      NodePtr merged = ShallowCopy(*child);
      merged->path.insert(merged->path.begin(), node->path.begin(),
                          node->path.end());
      return merged;
    }
    return node;
  }
  if (node->kind == Node::Kind::kBranch) {
    int only_child = -1;
    int child_count = 0;
    for (int i = 0; i < 16; ++i) {
      if (node->children[i]) {
        ++child_count;
        only_child = i;
      }
    }
    if (child_count == 0 && !node->has_value) return nullptr;
    if (child_count == 0 && node->has_value) {
      auto leaf = std::make_shared<Node>();
      leaf->kind = Node::Kind::kLeaf;
      leaf->value = std::move(node->value);
      leaf->has_value = true;
      return leaf;
    }
    if (child_count == 1 && !node->has_value) {
      const NodePtr& child = node->children[only_child];
      switch (child->kind) {
        case Node::Kind::kLeaf:
        case Node::Kind::kExtension: {
          NodePtr merged = ShallowCopy(*child);
          merged->path.insert(merged->path.begin(),
                              static_cast<uint8_t>(only_child));
          return merged;
        }
        case Node::Kind::kBranch: {
          auto ext = std::make_shared<Node>();
          ext->kind = Node::Kind::kExtension;
          ext->path = {static_cast<uint8_t>(only_child)};
          ext->children[0] = child;
          return ext;
        }
      }
    }
  }
  return node;
}

MerklePatriciaTrie::NodePtr MerklePatriciaTrie::Remove(
    const NodePtr& node, const std::vector<uint8_t>& nibbles, size_t depth,
    bool* removed) {
  if (!node) return node;
  switch (node->kind) {
    case Node::Kind::kLeaf: {
      if (SuffixEquals(nibbles, depth, node->path)) {
        *removed = true;
        return nullptr;
      }
      return node;
    }
    case Node::Kind::kExtension: {
      const size_t cp = CommonPrefix(node->path, 0, nibbles, depth);
      if (cp != node->path.size()) return node;
      NodePtr child = Remove(node->children[0], nibbles, depth + cp, removed);
      if (!*removed) return node;
      NodePtr copy = ShallowCopy(*node);
      copy->children[0] = std::move(child);
      return Normalize(std::move(copy));
    }
    case Node::Kind::kBranch: {
      NodePtr copy;
      if (depth == nibbles.size()) {
        if (!node->has_value) return node;
        copy = ShallowCopy(*node);
        copy->has_value = false;
        copy->value.clear();
        *removed = true;
      } else {
        const uint8_t idx = nibbles[depth];
        NodePtr child =
            Remove(node->children[idx], nibbles, depth + 1, removed);
        if (!*removed) return node;
        copy = ShallowCopy(*node);
        copy->children[idx] = std::move(child);
      }
      return Normalize(std::move(copy));
    }
  }
  return node;
}

bool MerklePatriciaTrie::Delete(const Bytes& key) {
  bool removed = false;
  root_ = Remove(root_, ToNibbles(key), 0, &removed);
  if (removed) --size_;
  return removed;
}

// ---------------------------------------------------------------------
// Iteration
// ---------------------------------------------------------------------

void MerklePatriciaTrie::CollectEntries(
    const Node* node, std::vector<uint8_t>* prefix,
    std::vector<std::pair<Bytes, Bytes>>* out) {
  if (node == nullptr) return;
  auto emit = [&](const Bytes& value) {
    assert(prefix->size() % 2 == 0 && "keys are whole bytes");
    Bytes key;
    key.reserve(prefix->size() / 2);
    for (size_t i = 0; i + 1 < prefix->size(); i += 2) {
      key.push_back(
          static_cast<uint8_t>(((*prefix)[i] << 4) | (*prefix)[i + 1]));
    }
    out->emplace_back(std::move(key), value);
  };
  switch (node->kind) {
    case Node::Kind::kLeaf: {
      prefix->insert(prefix->end(), node->path.begin(), node->path.end());
      emit(node->value);
      prefix->resize(prefix->size() - node->path.size());
      break;
    }
    case Node::Kind::kExtension: {
      prefix->insert(prefix->end(), node->path.begin(), node->path.end());
      CollectEntries(node->children[0].get(), prefix, out);
      prefix->resize(prefix->size() - node->path.size());
      break;
    }
    case Node::Kind::kBranch: {
      if (node->has_value) emit(node->value);
      for (uint8_t i = 0; i < 16; ++i) {
        if (!node->children[i]) continue;
        prefix->push_back(i);
        CollectEntries(node->children[i].get(), prefix, out);
        prefix->pop_back();
      }
      break;
    }
  }
}

std::vector<std::pair<Bytes, Bytes>> MerklePatriciaTrie::Entries() const {
  std::vector<std::pair<Bytes, Bytes>> out;
  out.reserve(size_);
  std::vector<uint8_t> prefix;
  CollectEntries(root_.get(), &prefix, &out);
  return out;
}

// ---------------------------------------------------------------------
// Proofs
// ---------------------------------------------------------------------

void MerklePatriciaTrie::CollectProof(const Node* node,
                                      const std::vector<uint8_t>& nibbles,
                                      size_t depth, Proof* proof) {
  while (node != nullptr) {
    proof->push_back(ProofNode{Serialize(*node)});
    switch (node->kind) {
      case Node::Kind::kLeaf:
        return;
      case Node::Kind::kExtension: {
        const size_t cp = CommonPrefix(node->path, 0, nibbles, depth);
        if (cp != node->path.size()) return;  // Diverged: absence proof.
        depth += cp;
        node = node->children[0].get();
        break;
      }
      case Node::Kind::kBranch: {
        if (depth == nibbles.size()) return;
        node = node->children[nibbles[depth]].get();
        ++depth;
        break;
      }
    }
  }
}

MerklePatriciaTrie::Proof MerklePatriciaTrie::Prove(const Bytes& key) const {
  Proof proof;
  CollectProof(root_.get(), ToNibbles(key), 0, &proof);
  return proof;
}

namespace {

/// Parsed view of a serialized trie node (for proof verification).
struct ParsedNode {
  uint8_t kind = 0;
  std::vector<uint8_t> path;
  Bytes value;
  bool has_value = false;
  std::array<Hash256, 16> child_hashes;
  Hash256 ext_child;
};

Result<ParsedNode> ParseNode(const Bytes& raw) {
  if (raw.empty()) return Status::Corruption("empty proof node");
  ParsedNode out;
  out.kind = raw[0];
  size_t pos = 1;
  auto need = [&](size_t n) { return pos + n <= raw.size(); };
  switch (out.kind) {
    case 0: {  // Leaf.
      if (!need(4)) return Status::Corruption("truncated leaf");
      uint32_t plen = 0;
      for (int i = 0; i < 4; ++i) plen = (plen << 8) | raw[pos++];
      if (!need(plen + 8)) return Status::Corruption("truncated leaf path");
      out.path.assign(raw.begin() + static_cast<ptrdiff_t>(pos),
                      raw.begin() + static_cast<ptrdiff_t>(pos + plen));
      pos += plen;
      const uint64_t vlen = ReadUint64(raw, pos);
      pos += 8;
      if (!need(vlen)) return Status::Corruption("truncated leaf value");
      out.value.assign(raw.begin() + static_cast<ptrdiff_t>(pos),
                       raw.begin() + static_cast<ptrdiff_t>(pos + vlen));
      out.has_value = true;
      break;
    }
    case 1: {  // Extension.
      if (!need(4)) return Status::Corruption("truncated extension");
      uint32_t plen = 0;
      for (int i = 0; i < 4; ++i) plen = (plen << 8) | raw[pos++];
      if (!need(plen + 32)) return Status::Corruption("truncated ext path");
      out.path.assign(raw.begin() + static_cast<ptrdiff_t>(pos),
                      raw.begin() + static_cast<ptrdiff_t>(pos + plen));
      pos += plen;
      std::copy(raw.begin() + static_cast<ptrdiff_t>(pos),
                raw.begin() + static_cast<ptrdiff_t>(pos + 32),
                out.ext_child.bytes.begin());
      break;
    }
    case 2: {  // Branch.
      if (!need(16 * 32 + 1 + 8)) return Status::Corruption("truncated branch");
      for (int c = 0; c < 16; ++c) {
        std::copy(raw.begin() + static_cast<ptrdiff_t>(pos),
                  raw.begin() + static_cast<ptrdiff_t>(pos + 32),
                  out.child_hashes[c].bytes.begin());
        pos += 32;
      }
      out.has_value = raw[pos++] != 0;
      const uint64_t vlen = ReadUint64(raw, pos);
      pos += 8;
      if (!need(vlen)) return Status::Corruption("truncated branch value");
      out.value.assign(raw.begin() + static_cast<ptrdiff_t>(pos),
                       raw.begin() + static_cast<ptrdiff_t>(pos + vlen));
      break;
    }
    default:
      return Status::Corruption("unknown proof node kind");
  }
  return out;
}

}  // namespace

Result<std::optional<Bytes>> MerklePatriciaTrie::VerifyProof(
    const Hash256& root, const Bytes& key, const Proof& proof) {
  const std::vector<uint8_t> nibbles = ToNibbles(key);
  if (proof.empty()) {
    // Only the empty trie proves anything with an empty proof.
    if (root.IsZero()) return std::optional<Bytes>(std::nullopt);
    return Status::Corruption("empty proof for non-empty root");
  }

  Hash256 expected = root;
  size_t depth = 0;
  for (size_t i = 0; i < proof.size(); ++i) {
    if (Sha256Digest(proof[i].encoded) != expected) {
      return Status::Corruption("proof node hash mismatch");
    }
    ParsedNode node;
    SHARDCHAIN_ASSIGN_OR_RETURN(node, ParseNode(proof[i].encoded));
    const bool last = (i + 1 == proof.size());
    switch (node.kind) {
      case 0: {  // Leaf.
        if (!last) return Status::Corruption("leaf before end of proof");
        if (nibbles.size() - depth == node.path.size() &&
            std::equal(node.path.begin(), node.path.end(),
                       nibbles.begin() + static_cast<ptrdiff_t>(depth))) {
          return std::optional<Bytes>(node.value);
        }
        return std::optional<Bytes>(std::nullopt);  // Proven absent.
      }
      case 1: {  // Extension.
        const size_t cp = CommonPrefix(node.path, 0, nibbles, depth);
        if (cp != node.path.size()) {
          if (!last) return Status::Corruption("diverged mid-proof");
          return std::optional<Bytes>(std::nullopt);
        }
        depth += cp;
        if (last) return Status::Corruption("proof ends at extension");
        expected = node.ext_child;
        break;
      }
      case 2: {  // Branch.
        if (depth == nibbles.size()) {
          if (!last) return Status::Corruption("key ends before proof");
          if (node.has_value) return std::optional<Bytes>(node.value);
          return std::optional<Bytes>(std::nullopt);
        }
        const uint8_t idx = nibbles[depth];
        ++depth;
        if (node.child_hashes[idx].IsZero()) {
          if (!last) return Status::Corruption("absent child mid-proof");
          return std::optional<Bytes>(std::nullopt);  // Proven absent.
        }
        if (last) return Status::Corruption("proof ends inside branch");
        expected = node.child_hashes[idx];
        break;
      }
      default:
        return Status::Corruption("unknown node kind");
    }
  }
  return Status::Corruption("proof exhausted without resolution");
}

}  // namespace shardchain
