#ifndef SHARDCHAIN_STATE_ACCOUNT_H_
#define SHARDCHAIN_STATE_ACCOUNT_H_

#include <cstdint>
#include <map>

#include "common/hex.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief An account in the world state: externally owned (EOA) or a
/// smart contract (code non-empty).
///
/// Contract accounts "record a transaction and the conditions under
/// which that transaction is valid" (Sec. II-A); the conditions live in
/// `code` as contract-VM bytecode and the parameters in `storage`.
struct Account {
  Amount balance = 0;
  uint64_t nonce = 0;
  Bytes code;                            ///< Empty for EOAs.
  std::map<uint64_t, int64_t> storage;   ///< Contract key/value store.

  bool IsContract() const { return !code.empty(); }

  /// Deterministic digest of the account contents (state-root leaf).
  ///
  /// The result is cached under a dirty flag so StateDB's incremental
  /// StateRoot() never re-hashes untouched accounts (DESIGN.md §10).
  /// Cache invariant: every mutable access to an account held by a
  /// StateDB goes through StateDB::GetOrCreate, which calls
  /// MarkDigestDirty() before handing out the reference; the cache is
  /// only ever valid for the address the account lives at. Code that
  /// mutates a free-standing Account directly must call
  /// MarkDigestDirty() itself before re-reading Digest().
  Hash256 Digest(const Address& addr) const;

  /// Invalidates the cached digest; the next Digest() recomputes.
  void MarkDigestDirty() const { digest_valid_ = false; }

 private:
  // Derived cache, recomputed from the serialized members on demand;
  // deliberately excluded from the wire format (EncodeAccountState
  // re-derives it on the destination shard, DESIGN.md §11).
  // codeclint:allow(codec-missing-field): digest memo cache, not state
  mutable Hash256 digest_cache_;
  // codeclint:allow(codec-missing-field): cache validity flag, not state
  mutable bool digest_valid_ = false;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_STATE_ACCOUNT_H_
