#ifndef SHARDCHAIN_STATE_ACCOUNT_H_
#define SHARDCHAIN_STATE_ACCOUNT_H_

#include <cstdint>
#include <map>

#include "common/hex.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief An account in the world state: externally owned (EOA) or a
/// smart contract (code non-empty).
///
/// Contract accounts "record a transaction and the conditions under
/// which that transaction is valid" (Sec. II-A); the conditions live in
/// `code` as contract-VM bytecode and the parameters in `storage`.
struct Account {
  Amount balance = 0;
  uint64_t nonce = 0;
  Bytes code;                            ///< Empty for EOAs.
  std::map<uint64_t, int64_t> storage;   ///< Contract key/value store.

  bool IsContract() const { return !code.empty(); }

  /// Deterministic digest of the account contents (state-root leaf).
  Hash256 Digest(const Address& addr) const;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_STATE_ACCOUNT_H_
