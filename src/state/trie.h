#ifndef SHARDCHAIN_STATE_TRIE_H_
#define SHARDCHAIN_STATE_TRIE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hex.h"
#include "common/result.h"
#include "crypto/sha256.h"

namespace shardchain {

/// \brief A Merkle Patricia-style radix trie over hex nibbles.
///
/// The authenticated key-value store behind account state, in the
/// spirit of Ethereum's state trie: every node's hash commits to its
/// subtree, the root hash commits to the whole mapping, and compact
/// Merkle proofs authenticate single entries (including proofs of
/// absence). Three node kinds, as in Ethereum:
///   - leaf: remaining key nibbles + value;
///   - extension: shared nibble run + one child;
///   - branch: 16 children + optional value at this exact key.
///
/// Keys are arbitrary byte strings (internally nibble-expanded);
/// values are byte strings. The empty trie hashes to Hash256::Zero().
class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie() = default;
  MerklePatriciaTrie(const MerklePatriciaTrie& other);
  MerklePatriciaTrie& operator=(const MerklePatriciaTrie& other);
  MerklePatriciaTrie(MerklePatriciaTrie&&) = default;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) = default;

  /// Inserts or overwrites `key` with `value`.
  void Put(const Bytes& key, Bytes value);

  /// The stored value, or nullopt.
  std::optional<Bytes> Get(const Bytes& key) const;

  /// Removes `key`; returns true if it was present.
  bool Delete(const Bytes& key);

  bool Contains(const Bytes& key) const { return Get(key).has_value(); }

  /// Number of stored entries.
  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// Root commitment. O(dirty subtree) — hashes are cached and
  /// invalidated along write paths.
  Hash256 RootHash() const;

  /// All (key, value) pairs in lexicographic key order.
  std::vector<std::pair<Bytes, Bytes>> Entries() const;

  // --- Authenticated reads -------------------------------------------

  /// \brief A proof node: the serialized bytes of one trie node on the
  /// path from the root to the key.
  struct ProofNode {
    Bytes encoded;
  };
  using Proof = std::vector<ProofNode>;

  /// Builds a Merkle proof for `key` (works for absent keys too: the
  /// proof then shows the divergence point).
  Proof Prove(const Bytes& key) const;

  /// Verifies a proof against a root hash. Returns the proven value
  /// (nullopt = proven absent), or an error if the proof is invalid or
  /// does not match the root.
  static Result<std::optional<Bytes>> VerifyProof(const Hash256& root,
                                                  const Bytes& key,
                                                  const Proof& proof);

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct Node {
    enum class Kind : uint8_t { kLeaf, kExtension, kBranch };
    Kind kind = Kind::kLeaf;

    // kLeaf: path = remaining nibbles, value set.
    // kExtension: path = shared nibbles, children[0] used as the child.
    // kBranch: children[0..15], optional value.
    std::vector<uint8_t> path;
    Bytes value;
    bool has_value = false;
    std::array<NodePtr, 16> children;

    // Cached subtree hash; invalid when dirty.
    mutable Hash256 cached_hash;
    mutable bool hash_valid = false;

    NodePtr Clone() const;
  };

  static std::vector<uint8_t> ToNibbles(const Bytes& key);
  static Bytes Serialize(const Node& node);
  static Hash256 HashOf(const Node& node);
  static NodePtr Insert(NodePtr node, const std::vector<uint8_t>& nibbles,
                        size_t depth, Bytes value);
  static const Node* Find(const Node* node,
                          const std::vector<uint8_t>& nibbles, size_t depth);
  static NodePtr Remove(NodePtr node, const std::vector<uint8_t>& nibbles,
                        size_t depth, bool* removed);
  /// Collapses single-child branches / chained extensions after delete.
  static NodePtr Normalize(NodePtr node);
  static void CollectEntries(const Node* node, std::vector<uint8_t>* prefix,
                             std::vector<std::pair<Bytes, Bytes>>* out);
  static void CollectProof(const Node* node,
                           const std::vector<uint8_t>& nibbles, size_t depth,
                           Proof* proof);

  NodePtr root_;
  size_t size_ = 0;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_STATE_TRIE_H_
