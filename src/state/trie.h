#ifndef SHARDCHAIN_STATE_TRIE_H_
#define SHARDCHAIN_STATE_TRIE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hex.h"
#include "common/result.h"
#include "crypto/sha256.h"

namespace shardchain {

/// \brief A persistent Merkle Patricia-style radix trie over hex
/// nibbles with structural sharing.
///
/// The authenticated key-value store behind account state, in the
/// spirit of Ethereum's state trie: every node's hash commits to its
/// subtree, the root hash commits to the whole mapping, and compact
/// Merkle proofs authenticate single entries (including proofs of
/// absence). Three node kinds, as in Ethereum:
///   - leaf: remaining key nibbles + value;
///   - extension: shared nibble run + one child;
///   - branch: 16 children + optional value at this exact key.
///
/// Nodes are held by `std::shared_ptr` and treated as immutable once
/// reachable from more than one trie: `Put`/`Delete` copy only the
/// O(depth) spine from the root to the touched key and share every
/// untouched subtree with the pre-mutation version (copy-on-write).
/// Consequences, relied on by StateDB (DESIGN.md §10):
///   - copying a trie is O(1) — the copy shares the whole node graph;
///   - cached subtree hashes on shared, untouched nodes stay valid, so
///     RootHash() after k mutations re-hashes only the O(k·depth)
///     fresh spine nodes;
///   - the root hash is a pure function of the key-value contents —
///     byte-identical to a rebuild-from-scratch trie holding the same
///     entries, whatever the mutation history.
///
/// The copy constructor warms the source's hash cache (RootHash) before
/// sharing, so shared nodes are never written afterwards — hashing two
/// copies from different threads is then data-race-free.
///
/// Keys are arbitrary byte strings (internally nibble-expanded);
/// values are byte strings. The empty trie hashes to Hash256::Zero().
class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie() = default;
  MerklePatriciaTrie(const MerklePatriciaTrie& other);
  MerklePatriciaTrie& operator=(const MerklePatriciaTrie& other);
  MerklePatriciaTrie(MerklePatriciaTrie&&) = default;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) = default;

  /// Inserts or overwrites `key` with `value`. O(depth) node copies;
  /// subtrees off the key path are shared, not cloned.
  void Put(const Bytes& key, Bytes value);

  /// The stored value, or nullopt.
  std::optional<Bytes> Get(const Bytes& key) const;

  /// Removes `key`; returns true if it was present. O(depth) copies.
  bool Delete(const Bytes& key);

  bool Contains(const Bytes& key) const { return Get(key).has_value(); }

  /// Number of stored entries.
  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// Root commitment. O(dirty spine) — hashes are cached per node and
  /// only nodes created since the last RootHash() are re-hashed.
  Hash256 RootHash() const;

  /// All (key, value) pairs in lexicographic key order.
  std::vector<std::pair<Bytes, Bytes>> Entries() const;

  // --- Authenticated reads -------------------------------------------

  /// \brief A proof node: the serialized bytes of one trie node on the
  /// path from the root to the key.
  struct ProofNode {
    Bytes encoded;
  };
  using Proof = std::vector<ProofNode>;

  /// Builds a Merkle proof for `key` (works for absent keys too: the
  /// proof then shows the divergence point).
  Proof Prove(const Bytes& key) const;

  /// Verifies a proof against a root hash. Returns the proven value
  /// (nullopt = proven absent), or an error if the proof is invalid or
  /// does not match the root.
  static Result<std::optional<Bytes>> VerifyProof(const Hash256& root,
                                                  const Bytes& key,
                                                  const Proof& proof);

 private:
  struct Node;
  using NodePtr = std::shared_ptr<Node>;

  struct Node {
    enum class Kind : uint8_t { kLeaf, kExtension, kBranch };
    Kind kind = Kind::kLeaf;

    // kLeaf: path = remaining nibbles, value set.
    // kExtension: path = shared nibbles, children[0] used as the child.
    // kBranch: children[0..15], optional value.
    std::vector<uint8_t> path;
    Bytes value;
    bool has_value = false;
    std::array<NodePtr, 16> children;

    // Cached subtree hash; invalid when the node was created by a
    // mutation and not yet hashed. Shared nodes are only ever read
    // once their cache is warm (see the class comment).
    mutable Hash256 cached_hash;
    mutable bool hash_valid = false;
  };

  /// Fresh node copying `src`'s fields but *sharing* its children —
  /// the COW spine-copy primitive. The copy starts hash-invalid.
  static NodePtr ShallowCopy(const Node& src);

  static std::vector<uint8_t> ToNibbles(const Bytes& key);
  static Bytes Serialize(const Node& node);
  static Hash256 HashOf(const Node& node);
  /// Functional insert: returns the root of a new version whose spine
  /// nodes are fresh and whose off-path subtrees are shared with
  /// `node`. Sets *added when the key was not previously present.
  static NodePtr Insert(const NodePtr& node,
                        const std::vector<uint8_t>& nibbles, size_t depth,
                        Bytes value, bool* added);
  static const Node* Find(const Node* node,
                          const std::vector<uint8_t>& nibbles, size_t depth);
  /// Functional delete; returns the (possibly shared, unchanged) new
  /// version root. Sets *removed when the key was present.
  static NodePtr Remove(const NodePtr& node,
                        const std::vector<uint8_t>& nibbles, size_t depth,
                        bool* removed);
  /// Collapses single-child branches / chained extensions after delete.
  /// `node` must be freshly created (unshared); children may be shared.
  static NodePtr Normalize(NodePtr node);
  static void CollectEntries(const Node* node, std::vector<uint8_t>* prefix,
                             std::vector<std::pair<Bytes, Bytes>>* out);
  static void CollectProof(const Node* node,
                           const std::vector<uint8_t>& nibbles, size_t depth,
                           Proof* proof);

  NodePtr root_;
  size_t size_ = 0;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_STATE_TRIE_H_
