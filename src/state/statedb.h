#ifndef SHARDCHAIN_STATE_STATEDB_H_
#define SHARDCHAIN_STATE_STATEDB_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "state/account.h"
#include "state/trie.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief The world state: a map from address to account, with
/// snapshot/revert support and a Merkle state-root commitment.
///
/// In the sharded system each shard's miners hold a StateDB restricted
/// to their shard's accounts; MaxShard miners hold the full state
/// (Sec. III-A). Copyable so the simulator can fork per-miner views.
class StateDB {
 public:
  StateDB() = default;

  /// Read access. Missing accounts read as empty (balance 0, nonce 0).
  const Account* Find(const Address& addr) const;
  Amount BalanceOf(const Address& addr) const;
  uint64_t NonceOf(const Address& addr) const;
  bool IsContract(const Address& addr) const;

  /// Mutable access, creating the account if absent.
  Account& GetOrCreate(const Address& addr);

  /// Credits `amount` to `addr` (minting; used for genesis funding and
  /// block/shard rewards).
  void Mint(const Address& addr, Amount amount);

  /// Moves `amount` from `from` to `to`. Fails with FailedPrecondition
  /// on insufficient balance. Does not touch nonces.
  Status Transfer(const Address& from, const Address& to, Amount amount);

  /// Deploys contract `code` at `addr`. Fails if an account with code
  /// already exists there.
  Status DeployContract(const Address& addr, Bytes code);

  /// Contract storage access (creates the account if needed).
  int64_t StorageGet(const Address& addr, uint64_t key) const;
  void StorageSet(const Address& addr, uint64_t key, int64_t value);

  /// Snapshots the full state; RevertTo restores it. Snapshot ids are
  /// monotonically increasing and invalidated by RevertTo to an earlier
  /// snapshot.
  size_t Snapshot();
  Status RevertTo(size_t snapshot_id);

  /// Authenticated commitment over all accounts: the root of a Merkle
  /// Patricia trie keyed by address, with account digests as values.
  Hash256 StateRoot() const;

  /// Merkle Patricia proof that `addr` has the returned digest under
  /// the current StateRoot (or is absent). Verify with VerifyAccount.
  MerklePatriciaTrie::Proof ProveAccount(const Address& addr) const;

  /// Verifies an account proof against a state root. Returns the
  /// proven account digest, or nullopt if the account is proven absent.
  static Result<std::optional<Hash256>> VerifyAccount(
      const Hash256& state_root, const Address& addr,
      const MerklePatriciaTrie::Proof& proof);

  size_t AccountCount() const { return accounts_.size(); }

  /// All addresses in deterministic (sorted) order.
  std::vector<Address> Addresses() const;

 private:
  std::map<Address, Account> accounts_;
  std::vector<std::map<Address, Account>> snapshots_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_STATE_STATEDB_H_
