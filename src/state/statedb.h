#ifndef SHARDCHAIN_STATE_STATEDB_H_
#define SHARDCHAIN_STATE_STATEDB_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "state/account.h"
#include "state/trie.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

class ThreadPool;

/// \brief The world state: a map from address to account, with
/// journaled snapshot/revert support and an incrementally maintained
/// Merkle state-root commitment.
///
/// In the sharded system each shard's miners hold a StateDB restricted
/// to their shard's accounts; MaxShard miners hold the full state
/// (Sec. III-A). Copyable so the simulator can fork per-miner views —
/// the copy shares the authenticated trie structurally (O(1) for the
/// trie, O(n) only for the plain account map).
///
/// Incremental commitment (DESIGN.md §10): a live copy-on-write trie
/// mirrors the account map. Mutations only mark accounts dirty;
/// StateRoot() recomputes the digests of the dirty accounts (in
/// parallel when a thread pool is installed, under the §9 determinism
/// contract — SHA-256 digests are bit-exact at any thread count) and
/// re-inserts just those leaves, so its cost is O(dirty · depth)
/// instead of a full rebuild. The resulting root is byte-identical to
/// a from-scratch rebuild over the same contents, whatever the
/// mutation/snapshot history (pinned by the differential tests and the
/// tests/vectors/state*.hex golden vectors).
class StateDB {
 public:
  StateDB() = default;
  /// Copies flush the source's dirty set first, so the shared trie
  /// nodes are fully hashed before sharing (no writes after sharing;
  /// see MerklePatriciaTrie) and the digest work is not repeated per
  /// fork.
  StateDB(const StateDB& other);
  StateDB& operator=(const StateDB& other);
  StateDB(StateDB&&) = default;
  StateDB& operator=(StateDB&&) = default;

  /// Read access. Missing accounts read as empty (balance 0, nonce 0).
  const Account* Find(const Address& addr) const;
  Amount BalanceOf(const Address& addr) const;
  uint64_t NonceOf(const Address& addr) const;
  bool IsContract(const Address& addr) const;

  /// Mutable access, creating the account if absent. The sole mutation
  /// choke point: marks the account dirty for the incremental root and
  /// records an undo entry when a snapshot is outstanding.
  Account& GetOrCreate(const Address& addr);

  /// Credits `amount` to `addr` (minting; used for genesis funding and
  /// block/shard rewards).
  void Mint(const Address& addr, Amount amount);

  /// Moves `amount` from `from` to `to`. Fails with FailedPrecondition
  /// on insufficient balance. Does not touch nonces.
  Status Transfer(const Address& from, const Address& to, Amount amount);

  /// Deploys contract `code` at `addr`. Fails if an account with code
  /// already exists there.
  Status DeployContract(const Address& addr, Bytes code);

  /// Contract storage access (creates the account if needed).
  int64_t StorageGet(const Address& addr, uint64_t key) const;
  void StorageSet(const Address& addr, uint64_t key, int64_t value);

  /// Removes `addr` entirely (cross-shard migration: the account's
  /// authoritative home moved away). Journaled like any write; the trie
  /// leaf is deleted at the next flush. Returns false when absent.
  bool EraseAccount(const Address& addr);

  /// Marks a revert point; RevertTo restores it. O(1): no state is
  /// copied — subsequent writes record undo entries (touched accounts
  /// only) in a journal. Snapshot ids are monotonically increasing and
  /// invalidated by RevertTo to an earlier snapshot.
  size_t Snapshot();

  /// Rolls back every write made since `snapshot_id` was taken and
  /// invalidates it along with all later snapshots. O(writes since).
  Status RevertTo(size_t snapshot_id);

  /// Discards the innermost snapshot, keeping its writes. The matching
  /// undo entries fold into the enclosing snapshot's span (or are
  /// dropped when none is outstanding). Fails unless `snapshot_id` is
  /// the most recent live snapshot.
  Status Commit(size_t snapshot_id);

  /// Outstanding (live) snapshot count — 0 when no revert point exists.
  size_t SnapshotDepth() const { return marks_.size(); }

  /// Addresses written (created, mutated, or erased) since `snapshot_id`
  /// was taken, sorted and deduplicated — the account modification log
  /// of that journal span. Reads are never journaled, so this is exactly
  /// the write set. Fails when the snapshot is not live.
  Result<std::vector<Address>> TouchedSince(size_t snapshot_id) const;

  /// Overwrites `addr` with `account` wholesale (creating it if absent).
  /// The merge-commit primitive for replaying account modification logs:
  /// journaled and dirty-marked like any write.
  void ApplyAccount(const Address& addr, const Account& account);

  /// Installs a thread pool used to recompute dirty account digests in
  /// batch (nullptr = serial). Never consensus-visible: digests are
  /// bit-exact at any thread count (DESIGN.md §9).
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  /// Authenticated commitment over all accounts: the root of a Merkle
  /// Patricia trie keyed by address, with account digests as values.
  /// O(dirty · depth) since the previous call.
  Hash256 StateRoot() const;

  /// Merkle Patricia proof that `addr` has the returned digest under
  /// the current StateRoot (or is absent). Verify with VerifyAccount.
  MerklePatriciaTrie::Proof ProveAccount(const Address& addr) const;

  /// Verifies an account proof against a state root. Returns the
  /// proven account digest, or nullopt if the account is proven absent.
  static Result<std::optional<Hash256>> VerifyAccount(
      const Hash256& state_root, const Address& addr,
      const MerklePatriciaTrie::Proof& proof);

  size_t AccountCount() const { return accounts_.size(); }

  /// All addresses in deterministic (sorted) order.
  std::vector<Address> Addresses() const;

 private:
  /// One undo record: the account's full prior contents, or nullopt
  /// when the write created it (revert then erases). Replayed in
  /// reverse order, so repeated touches of one address in a span are
  /// harmless — the oldest entry is applied last and wins.
  struct UndoEntry {
    Address addr;
    std::optional<Account> prior;
  };

  /// Folds the dirty set into the live trie: batch-recomputes digests
  /// of surviving dirty accounts, Put/Delete's exactly those leaves,
  /// and warms the trie's hash cache. Logically const (cache
  /// maintenance); cheap when nothing is dirty.
  void FlushDirty() const;

  std::map<Address, Account> accounts_;

  /// Live authenticated mirror of accounts_, lagged by dirty_.
  mutable MerklePatriciaTrie trie_;
  /// Accounts whose trie leaf / digest cache is stale. std::set so the
  /// flush walks addresses in deterministic sorted order.
  mutable std::set<Address> dirty_;

  /// Undo log of writes made while at least one snapshot is live, plus
  /// the journal length at each Snapshot() call.
  std::vector<UndoEntry> journal_;
  std::vector<size_t> marks_;

  ThreadPool* pool_ = nullptr;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_STATE_STATEDB_H_
