#include "state/statedb.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "parallel/parallel.h"

namespace shardchain {

namespace {

/// Chunk size for the batch digest recompute: large enough that chunk
/// dispatch is amortized, small enough that a block's worth of dirty
/// accounts still fans out.
constexpr size_t kDigestGrain = 32;

Bytes AddressKey(const Address& addr) {
  return Bytes(addr.bytes.begin(), addr.bytes.end());
}

}  // namespace

Hash256 Account::Digest(const Address& addr) const {
  if (digest_valid_) return digest_cache_;
  Bytes buf;
  buf.reserve(64 + code.size() + storage.size() * 16);
  buf.insert(buf.end(), addr.bytes.begin(), addr.bytes.end());
  AppendUint64(&buf, balance);
  AppendUint64(&buf, nonce);
  AppendUint64(&buf, code.size());
  buf.insert(buf.end(), code.begin(), code.end());
  AppendUint64(&buf, storage.size());
  for (const auto& [key, value] : storage) {
    AppendUint64(&buf, key);
    AppendUint64(&buf, static_cast<uint64_t>(value));
  }
  digest_cache_ = Sha256Digest(buf);
  digest_valid_ = true;
  return digest_cache_;
}

StateDB::StateDB(const StateDB& other) { *this = other; }

StateDB& StateDB::operator=(const StateDB& other) {
  if (this == &other) return *this;
  // Fold the source's pending writes into its trie once, here, so (a)
  // the shared nodes are fully hashed before sharing and (b) the two
  // copies don't each redo the digest work.
  other.FlushDirty();
  accounts_ = other.accounts_;
  trie_ = other.trie_;  // O(1): structural sharing.
  dirty_.clear();
  journal_ = other.journal_;
  marks_ = other.marks_;
  pool_ = other.pool_;
  return *this;
}

const Account* StateDB::Find(const Address& addr) const {
  auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Amount StateDB::BalanceOf(const Address& addr) const {
  const Account* a = Find(addr);
  return a ? a->balance : 0;
}

uint64_t StateDB::NonceOf(const Address& addr) const {
  const Account* a = Find(addr);
  return a ? a->nonce : 0;
}

bool StateDB::IsContract(const Address& addr) const {
  const Account* a = Find(addr);
  return a != nullptr && a->IsContract();
}

Account& StateDB::GetOrCreate(const Address& addr) {
  auto [it, created] = accounts_.try_emplace(addr);
  if (!marks_.empty()) {
    journal_.push_back(UndoEntry{addr, created
                                           ? std::optional<Account>()
                                           : std::optional<Account>(it->second)});
  }
  dirty_.insert(addr);
  it->second.MarkDigestDirty();
  return it->second;
}

void StateDB::Mint(const Address& addr, Amount amount) {
  GetOrCreate(addr).balance += amount;
}

Status StateDB::Transfer(const Address& from, const Address& to,
                         Amount amount) {
  Account& src = GetOrCreate(from);
  if (src.balance < amount) {
    return Status::FailedPrecondition("insufficient balance for transfer");
  }
  src.balance -= amount;
  GetOrCreate(to).balance += amount;
  return Status::OK();
}

Status StateDB::DeployContract(const Address& addr, Bytes code) {
  Account& a = GetOrCreate(addr);
  if (a.IsContract()) {
    return Status::AlreadyExists("contract already deployed at address");
  }
  a.code = std::move(code);
  return Status::OK();
}

int64_t StateDB::StorageGet(const Address& addr, uint64_t key) const {
  const Account* a = Find(addr);
  if (a == nullptr) return 0;
  auto it = a->storage.find(key);
  return it == a->storage.end() ? 0 : it->second;
}

void StateDB::StorageSet(const Address& addr, uint64_t key, int64_t value) {
  GetOrCreate(addr).storage[key] = value;
}

bool StateDB::EraseAccount(const Address& addr) {
  auto it = accounts_.find(addr);
  if (it == accounts_.end()) return false;
  if (!marks_.empty()) {
    journal_.push_back(UndoEntry{addr, std::optional<Account>(it->second)});
  }
  accounts_.erase(it);
  // FlushDirty sees the address dirty with no account and deletes the
  // trie leaf.
  dirty_.insert(addr);
  return true;
}

size_t StateDB::Snapshot() {
  marks_.push_back(journal_.size());
  return marks_.size() - 1;
}

Status StateDB::RevertTo(size_t snapshot_id) {
  if (snapshot_id >= marks_.size()) {
    return Status::OutOfRange("unknown snapshot id");
  }
  const size_t target = marks_[snapshot_id];
  while (journal_.size() > target) {
    UndoEntry& entry = journal_.back();
    if (entry.prior.has_value()) {
      accounts_[entry.addr] = std::move(*entry.prior);
    } else {
      accounts_.erase(entry.addr);
    }
    dirty_.insert(entry.addr);
    journal_.pop_back();
  }
  marks_.resize(snapshot_id);
  return Status::OK();
}

Result<std::vector<Address>> StateDB::TouchedSince(size_t snapshot_id) const {
  if (snapshot_id >= marks_.size()) {
    return Status::OutOfRange("unknown snapshot id");
  }
  std::vector<Address> out;
  out.reserve(journal_.size() - marks_[snapshot_id]);
  for (size_t i = marks_[snapshot_id]; i < journal_.size(); ++i) {
    out.push_back(journal_[i].addr);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void StateDB::ApplyAccount(const Address& addr, const Account& account) {
  Account& slot = GetOrCreate(addr);
  slot = account;
  slot.MarkDigestDirty();
}

Status StateDB::Commit(size_t snapshot_id) {
  if (snapshot_id >= marks_.size()) {
    return Status::OutOfRange("unknown snapshot id");
  }
  if (snapshot_id + 1 != marks_.size()) {
    return Status::InvalidArgument(
        "commit must target the innermost live snapshot");
  }
  marks_.pop_back();
  // With no revert point left, the undo entries can never be replayed.
  if (marks_.empty()) journal_.clear();
  return Status::OK();
}

void StateDB::FlushDirty() const {
  if (!dirty_.empty()) {
    // Sorted dirty addresses; their account pointers (nullptr = erased
    // since it went dirty). std::set iteration is ordered, so the work
    // list is a pure function of the touched set.
    std::vector<const Account*> touched;
    std::vector<const Address*> order;
    touched.reserve(dirty_.size());
    order.reserve(dirty_.size());
    for (const Address& addr : dirty_) {
      order.push_back(&addr);
      touched.push_back(Find(addr));
    }
    // Batch digest recompute. Each lane writes only its own account's
    // digest cache (disjoint writes, §9 rule 2); SHA-256 is bit-exact,
    // so the thread count can never reach the root bytes.
    ParallelFor(pool_, order.size(), kDigestGrain,
                [&touched, &order](size_t i) {
                  if (touched[i] != nullptr) (void)touched[i]->Digest(*order[i]);
                });
    // Fold into the live trie serially, in address order.
    for (size_t i = 0; i < order.size(); ++i) {
      if (touched[i] != nullptr) {
        const Hash256 digest = touched[i]->Digest(*order[i]);
        trie_.Put(AddressKey(*order[i]),
                  Bytes(digest.bytes.begin(), digest.bytes.end()));
      } else {
        trie_.Delete(AddressKey(*order[i]));
      }
    }
    dirty_.clear();
  }
  // Warm the spine hashes so copies made from here share only
  // fully-hashed nodes.
  (void)trie_.RootHash();
}

Hash256 StateDB::StateRoot() const {
  FlushDirty();
  return trie_.RootHash();
}

MerklePatriciaTrie::Proof StateDB::ProveAccount(const Address& addr) const {
  FlushDirty();
  return trie_.Prove(AddressKey(addr));
}

Result<std::optional<Hash256>> StateDB::VerifyAccount(
    const Hash256& state_root, const Address& addr,
    const MerklePatriciaTrie::Proof& proof) {
  std::optional<Bytes> value;
  SHARDCHAIN_ASSIGN_OR_RETURN(
      value,
      MerklePatriciaTrie::VerifyProof(state_root, AddressKey(addr), proof));
  if (!value.has_value()) return std::optional<Hash256>(std::nullopt);
  if (value->size() != 32) {
    return Status::Corruption("account digest has wrong size");
  }
  Hash256 digest;
  std::copy(value->begin(), value->end(), digest.bytes.begin());
  return std::optional<Hash256>(digest);
}

std::vector<Address> StateDB::Addresses() const {
  std::vector<Address> out;
  out.reserve(accounts_.size());
  for (const auto& [addr, account] : accounts_) out.push_back(addr);
  return out;
}

}  // namespace shardchain
