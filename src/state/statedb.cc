#include "state/statedb.h"

#include "crypto/sha256.h"

namespace shardchain {

Hash256 Account::Digest(const Address& addr) const {
  Bytes buf;
  buf.reserve(64 + code.size() + storage.size() * 16);
  buf.insert(buf.end(), addr.bytes.begin(), addr.bytes.end());
  AppendUint64(&buf, balance);
  AppendUint64(&buf, nonce);
  AppendUint64(&buf, code.size());
  buf.insert(buf.end(), code.begin(), code.end());
  AppendUint64(&buf, storage.size());
  for (const auto& [key, value] : storage) {
    AppendUint64(&buf, key);
    AppendUint64(&buf, static_cast<uint64_t>(value));
  }
  return Sha256Digest(buf);
}

const Account* StateDB::Find(const Address& addr) const {
  auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Amount StateDB::BalanceOf(const Address& addr) const {
  const Account* a = Find(addr);
  return a ? a->balance : 0;
}

uint64_t StateDB::NonceOf(const Address& addr) const {
  const Account* a = Find(addr);
  return a ? a->nonce : 0;
}

bool StateDB::IsContract(const Address& addr) const {
  const Account* a = Find(addr);
  return a != nullptr && a->IsContract();
}

Account& StateDB::GetOrCreate(const Address& addr) {
  return accounts_[addr];
}

void StateDB::Mint(const Address& addr, Amount amount) {
  GetOrCreate(addr).balance += amount;
}

Status StateDB::Transfer(const Address& from, const Address& to,
                         Amount amount) {
  Account& src = GetOrCreate(from);
  if (src.balance < amount) {
    return Status::FailedPrecondition("insufficient balance for transfer");
  }
  src.balance -= amount;
  GetOrCreate(to).balance += amount;
  return Status::OK();
}

Status StateDB::DeployContract(const Address& addr, Bytes code) {
  Account& a = GetOrCreate(addr);
  if (a.IsContract()) {
    return Status::AlreadyExists("contract already deployed at address");
  }
  a.code = std::move(code);
  return Status::OK();
}

int64_t StateDB::StorageGet(const Address& addr, uint64_t key) const {
  const Account* a = Find(addr);
  if (a == nullptr) return 0;
  auto it = a->storage.find(key);
  return it == a->storage.end() ? 0 : it->second;
}

void StateDB::StorageSet(const Address& addr, uint64_t key, int64_t value) {
  GetOrCreate(addr).storage[key] = value;
}

size_t StateDB::Snapshot() {
  snapshots_.push_back(accounts_);
  return snapshots_.size() - 1;
}

Status StateDB::RevertTo(size_t snapshot_id) {
  if (snapshot_id >= snapshots_.size()) {
    return Status::OutOfRange("unknown snapshot id");
  }
  accounts_ = snapshots_[snapshot_id];
  snapshots_.resize(snapshot_id);
  return Status::OK();
}

namespace {

/// Builds the address -> account-digest trie committing to the state.
MerklePatriciaTrie BuildStateTrie(const std::map<Address, Account>& accounts) {
  MerklePatriciaTrie trie;
  for (const auto& [addr, account] : accounts) {
    const Hash256 digest = account.Digest(addr);
    trie.Put(Bytes(addr.bytes.begin(), addr.bytes.end()),
             Bytes(digest.bytes.begin(), digest.bytes.end()));
  }
  return trie;
}

}  // namespace

Hash256 StateDB::StateRoot() const {
  return BuildStateTrie(accounts_).RootHash();
}

MerklePatriciaTrie::Proof StateDB::ProveAccount(const Address& addr) const {
  return BuildStateTrie(accounts_).Prove(
      Bytes(addr.bytes.begin(), addr.bytes.end()));
}

Result<std::optional<Hash256>> StateDB::VerifyAccount(
    const Hash256& state_root, const Address& addr,
    const MerklePatriciaTrie::Proof& proof) {
  std::optional<Bytes> value;
  SHARDCHAIN_ASSIGN_OR_RETURN(
      value, MerklePatriciaTrie::VerifyProof(
                 state_root, Bytes(addr.bytes.begin(), addr.bytes.end()),
                 proof));
  if (!value.has_value()) return std::optional<Hash256>(std::nullopt);
  if (value->size() != 32) {
    return Status::Corruption("account digest has wrong size");
  }
  Hash256 digest;
  std::copy(value->begin(), value->end(), digest.bytes.begin());
  return std::optional<Hash256>(digest);
}

std::vector<Address> StateDB::Addresses() const {
  std::vector<Address> out;
  out.reserve(accounts_.size());
  for (const auto& [addr, account] : accounts_) out.push_back(addr);
  return out;
}

}  // namespace shardchain
