#include "txpool/txpool.h"

namespace shardchain {

Status TxPool::Add(const Transaction& tx) {
  const Hash256 id = tx.Id();
  if (by_id_.count(id) > 0) {
    return Status::AlreadyExists("transaction already pooled");
  }
  const FeeKey key{tx.fee, id};
  if (by_id_.size() >= capacity_) {
    // The cheapest entry is the last in fee order. Compare full FeeKeys,
    // not bare fees: deciding fee ties by arrival order would make the
    // retained set depend on gossip timing, and a full pool would then
    // feed different tx_fees into the unified parameters on different
    // miners (see tests/determinism_harness_test.cc).
    auto worst = std::prev(by_fee_.end());
    if (!(key < worst->first)) {
      return Status::FailedPrecondition(
          "pool full of transactions ranked higher");
    }
    by_id_.erase(worst->first.id);
    by_fee_.erase(worst);
  }
  by_fee_.emplace(key, tx);
  by_id_.emplace(id, key);
  return Status::OK();
}

Status TxPool::Remove(const Hash256& id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("transaction not pooled");
  by_fee_.erase(it->second);
  by_id_.erase(it);
  return Status::OK();
}

void TxPool::RemoveAll(const std::vector<Transaction>& confirmed) {
  for (const Transaction& tx : confirmed) {
    (void)Remove(tx.Id());
  }
}

bool TxPool::Contains(const Hash256& id) const {
  return by_id_.count(id) > 0;
}

std::vector<Transaction> TxPool::TopByFee(size_t n) const {
  std::vector<Transaction> out;
  out.reserve(std::min(n, by_fee_.size()));
  for (const auto& [key, tx] : by_fee_) {
    if (out.size() >= n) break;
    out.push_back(tx);
  }
  return out;
}

}  // namespace shardchain
