#include "txpool/txpool.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

namespace shardchain {

TxPool::TxPool(size_t capacity, size_t chunk_capacity)
    : capacity_(capacity),
      chunk_capacity_(chunk_capacity == 0 ? 1 : chunk_capacity) {}

Status TxPool::Add(const Transaction& tx) {
  const Hash256 id = tx.Id();
  if (by_id_.count(id) > 0) {
    return Status::AlreadyExists("transaction already pooled");
  }
  const FeeKey key{tx.fee, id};
  if (size_ >= capacity_) {
    // The cheapest live entry is the max over per-chunk worst keys.
    // Compare full FeeKeys, not bare fees: deciding fee ties by arrival
    // order would make the retained set depend on gossip timing, and a
    // full pool would then feed different tx_fees into the unified
    // parameters on different miners (tests/determinism_harness_test.cc
    // and the PR 1 regression in tests/mempool_differential_test.cc).
    if (size_ == 0) {
      return Status::FailedPrecondition(
          "pool full of transactions ranked higher");
    }
    const uint32_t wi = WorstChunk();
    Chunk& c = chunks_[wi];
    if (!(key < c.worst)) {
      return Status::FailedPrecondition(
          "pool full of transactions ranked higher");
    }
    by_id_.erase(c.ids[c.worst_slot]);
    MarkDead(Locator{wi, c.worst_slot});
    SweepChunk(wi);
  }
  Insert(tx, id);
  return Status::OK();
}

std::vector<Status> TxPool::AddBatch(const std::vector<Transaction>& txs) {
  std::vector<Status> out;
  out.reserve(txs.size());
  for (const Transaction& tx : txs) out.push_back(Add(tx));
  return out;
}

std::vector<Status> TxPool::AddSignedBatch(
    const std::vector<Transaction>& txs,
    const std::vector<const PublicKey*>& pks,
    const std::vector<const Signature*>& sigs, ThreadPool* pool) {
  assert(txs.size() == pks.size() && txs.size() == sigs.size());
  std::vector<Hash256> digests(txs.size());
  std::vector<const Hash256*> digest_ptrs(txs.size());
  for (size_t i = 0; i < txs.size(); ++i) {
    digests[i] = txs[i].SigningDigest();
    digest_ptrs[i] = &digests[i];
  }
  const std::vector<uint8_t> ok = VerifyBatch(pks, digest_ptrs, sigs, pool);
  std::vector<Status> out;
  out.reserve(txs.size());
  for (size_t i = 0; i < txs.size(); ++i) {
    if (!ok[i]) {
      out.push_back(Status::Unauthorized("bad transaction signature"));
      continue;
    }
    out.push_back(Add(txs[i]));
  }
  return out;
}

Status TxPool::Remove(const Hash256& id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("transaction not pooled");
  const Locator loc = it->second;
  by_id_.erase(it);
  MarkDead(loc);
  SweepChunk(loc.chunk);
  return Status::OK();
}

void TxPool::RemoveAll(const std::vector<Transaction>& confirmed) {
  // Phase 1: mark every confirmed slot dead in its chunk's bitmap.
  std::vector<uint32_t> touched;
  touched.reserve(confirmed.size());
  for (const Transaction& tx : confirmed) {
    auto it = by_id_.find(tx.Id());
    if (it == by_id_.end()) continue;
    const Locator loc = it->second;
    by_id_.erase(it);
    MarkDead(loc);
    touched.push_back(loc.chunk);
  }
  // Phase 2: compact/recycle only the touched chunks, in index order.
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (uint32_t ci : touched) SweepChunk(ci);
}

bool TxPool::Contains(const Hash256& id) const { return by_id_.count(id) > 0; }

// flowlint: deterministic-root — consensus entry point (DESIGN.md §14)
std::vector<Transaction> TxPool::TopByFee(size_t n) const {
  std::vector<Transaction> out;
  out.reserve(std::min(n, size_));
  if (n == 0 || size_ == 0) return out;
  // K-way merge of per-chunk fee-sorted runs. Every live tx carries a
  // unique FeeKey, so the merged sequence is the unique total order —
  // byte-identical to the legacy pool's ordered-map walk regardless of
  // how transactions are laid out across chunks.
  struct Cursor {
    FeeKey key;
    uint32_t chunk;
    uint32_t pos;
  };
  // std::*_heap pops the max under this comparator; "max" = best-ranked.
  const auto worse = [](const Cursor& a, const Cursor& b) {
    return b.key < a.key;
  };
  std::vector<Cursor> heap;
  heap.reserve(chunks_.size());
  for (uint32_t ci = 0; ci < static_cast<uint32_t>(chunks_.size()); ++ci) {
    const Chunk& c = chunks_[ci];
    if (c.live == 0) continue;
    EnsureOrder(c);
    uint32_t pos = 0;
    while (c.dead[c.order[pos]]) ++pos;  // live > 0 bounds the scan
    const uint32_t slot = c.order[pos];
    heap.push_back(Cursor{FeeKey{c.txs[slot].fee, c.ids[slot]}, ci, pos});
  }
  std::make_heap(heap.begin(), heap.end(), worse);
  while (!heap.empty() && out.size() < n) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    const Cursor cur = heap.back();
    heap.pop_back();
    const Chunk& c = chunks_[cur.chunk];
    out.push_back(c.txs[c.order[cur.pos]]);
    uint32_t pos = cur.pos + 1;
    while (pos < c.order.size() && c.dead[c.order[pos]]) ++pos;
    if (pos < c.order.size()) {
      const uint32_t slot = c.order[pos];
      heap.push_back(
          Cursor{FeeKey{c.txs[slot].fee, c.ids[slot]}, cur.chunk, pos});
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return out;
}

size_t TxPool::ChunkCount() const {
  size_t n = 0;
  for (const Chunk& c : chunks_) {
    if (c.live > 0) ++n;
  }
  return n;
}

void TxPool::Insert(const Transaction& tx, const Hash256& id) {
  if (open_.empty()) {
    chunks_.emplace_back();
    Chunk& fresh = chunks_.back();
    fresh.txs.reserve(chunk_capacity_);
    fresh.ids.reserve(chunk_capacity_);
    fresh.dead.reserve(chunk_capacity_);
    open_.push_back(static_cast<uint32_t>(chunks_.size() - 1));
  }
  const uint32_t ci = open_.back();
  Chunk& c = chunks_[ci];
  const uint32_t slot = static_cast<uint32_t>(c.txs.size());
  c.txs.push_back(tx);
  c.ids.push_back(id);
  c.dead.push_back(0);
  const FeeKey key{tx.fee, id};
  if (c.live == 0) {
    c.worst = key;
    c.worst_slot = slot;
    c.worst_valid = true;
  } else if (c.worst_valid && c.worst < key) {
    c.worst = key;
    c.worst_slot = slot;
  }
  ++c.live;
  c.order_valid = false;
  if (c.txs.size() >= chunk_capacity_) {
    c.open = false;
    open_.pop_back();
  }
  by_id_.emplace(id, Locator{ci, slot});
  ++size_;
}

void TxPool::MarkDead(const Locator& loc) {
  Chunk& c = chunks_[loc.chunk];
  assert(!c.dead[loc.slot]);
  c.dead[loc.slot] = 1;
  --c.live;
  --size_;
  if (c.worst_valid && c.worst_slot == loc.slot) c.worst_valid = false;
}

void TxPool::SweepChunk(uint32_t ci) {
  Chunk& c = chunks_[ci];
  if (c.txs.empty()) return;
  if (c.live == 0) {
    // Fully confirmed: recycle the chunk wholesale (capacity retained).
    c.txs.clear();
    c.ids.clear();
    c.dead.clear();
    c.order.clear();
    c.order_valid = true;
    c.worst_valid = true;
    if (!c.open) {
      c.open = true;
      open_.push_back(ci);
    }
    return;
  }
  // Compact once >= 3/4 of the slots are dead; below that, the bitmap
  // skip during emission is cheaper than rewriting locators.
  if (c.live * 4 > c.txs.size()) return;
  size_t w = 0;
  for (size_t s = 0; s < c.txs.size(); ++s) {
    if (c.dead[s]) continue;
    if (w != s) {
      c.txs[w] = std::move(c.txs[s]);
      c.ids[w] = c.ids[s];
      by_id_[c.ids[w]] = Locator{ci, static_cast<uint32_t>(w)};
    }
    ++w;
  }
  c.txs.resize(w);
  c.ids.resize(w);
  c.dead.assign(w, 0);
  c.order_valid = false;
  c.worst_valid = false;
  if (!c.open && w < chunk_capacity_) {
    c.open = true;
    open_.push_back(ci);
  }
}

uint32_t TxPool::WorstChunk() const {
  uint32_t best = 0;
  bool found = false;
  for (uint32_t ci = 0; ci < static_cast<uint32_t>(chunks_.size()); ++ci) {
    const Chunk& c = chunks_[ci];
    if (c.live == 0) continue;
    EnsureWorst(c);
    if (!found || chunks_[best].worst < c.worst) {
      best = ci;
      found = true;
    }
  }
  assert(found);
  return best;
}

void TxPool::EnsureOrder(const Chunk& c) {
  if (c.order_valid) return;
  c.order.resize(c.txs.size());
  std::iota(c.order.begin(), c.order.end(), 0u);
  std::sort(c.order.begin(), c.order.end(), [&c](uint32_t a, uint32_t b) {
    return FeeKey{c.txs[a].fee, c.ids[a]} < FeeKey{c.txs[b].fee, c.ids[b]};
  });
  c.order_valid = true;
}

void TxPool::EnsureWorst(const Chunk& c) {
  if (c.worst_valid) return;
  bool first = true;
  for (uint32_t s = 0; s < static_cast<uint32_t>(c.txs.size()); ++s) {
    if (c.dead[s]) continue;
    const FeeKey k{c.txs[s].fee, c.ids[s]};
    if (first || c.worst < k) {
      c.worst = k;
      c.worst_slot = s;
      first = false;
    }
  }
  c.worst_valid = true;
}

}  // namespace shardchain
