#ifndef SHARDCHAIN_TXPOOL_TXPOOL_H_
#define SHARDCHAIN_TXPOOL_TXPOOL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief A fee-ordered pool of unconfirmed transactions, stored in
/// fixed-size chunks (DESIGN.md §14).
///
/// This is what each miner "keeps track of" (Sec. II-B): miners pick
/// the highest-fee transactions first, which is exactly the behaviour
/// that serializes confirmation in the non-sharded baseline and that
/// the intra-shard congestion game (Alg. 2) replaces.
///
/// Layout (speedex-style chunked mempool): transactions live in chunks
/// that own them outright; a confirmation bitmap per chunk turns
/// `RemoveAll` into batch mark-and-compact instead of per-tx ordered-map
/// erases; admission is batchable (`AddBatch`, with signatures verified
/// through crypto VerifyBatch in `AddSignedBatch`); emission merges
/// lazily-sorted per-chunk runs through a k-way heap so `TopByFee`
/// bytes are identical to the legacy single-map pool
/// (`LegacyTxPool`, pinned by tests/mempool_differential_test.cc).
///
/// Observable semantics — accepted/rejected statuses, eviction choice,
/// emission order — are a function of the arrival sequence only, never
/// of chunk placement.
class TxPool {
 public:
  /// Caps the pool; adding beyond it evicts the cheapest transaction
  /// (or rejects the incoming one if it is the cheapest).
  /// `chunk_capacity` is internal layout only (never consensus-visible).
  explicit TxPool(size_t capacity = 1 << 20, size_t chunk_capacity = 1024);

  /// Adds a transaction. Fails with AlreadyExists on duplicate id, or
  /// FailedPrecondition if the pool is full of higher-ranked txs (fee
  /// desc, id asc — the same total order emission uses, so the
  /// retained set is independent of arrival order).
  [[nodiscard]] Status Add(const Transaction& tx);

  /// Batch admission. Statuses are element-wise identical to calling
  /// `Add` sequentially in vector order (so capacity-eviction races
  /// inside one batch resolve exactly as the legacy pool would).
  [[nodiscard]] std::vector<Status> AddBatch(
      const std::vector<Transaction>& txs);

  /// Batch admission with signature verification: `sigs[i]` must be a
  /// signature by `pks[i]` over `txs[i].SigningDigest()`. Signatures
  /// are checked through crypto VerifyBatch (parallel when `pool` is
  /// non-null); a bad signature rejects only its own transaction with
  /// Unauthorized, the rest of the batch proceeds as in `AddBatch`.
  [[nodiscard]] std::vector<Status> AddSignedBatch(
      const std::vector<Transaction>& txs,
      const std::vector<const PublicKey*>& pks,
      const std::vector<const Signature*>& sigs, ThreadPool* pool);

  /// Removes a transaction by id; returns NotFound if absent.
  [[nodiscard]] Status Remove(const Hash256& id);

  /// Removes every transaction contained in `confirmed` (called when a
  /// block is accepted). Batch path: mark each confirmed slot dead in
  /// its chunk's bitmap, then compact/recycle only the touched chunks.
  void RemoveAll(const std::vector<Transaction>& confirmed);

  bool Contains(const Hash256& id) const;
  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// The `n` highest-fee transactions (ties broken by id for
  /// determinism), best first. n may exceed Size(). Byte-identical to
  /// the legacy pool's ordered-map walk.
  std::vector<Transaction> TopByFee(size_t n) const;

  /// All pooled transactions in fee order (best first).
  std::vector<Transaction> All() const { return TopByFee(size_); }

  /// Number of live chunks (introspection for tests/bench).
  size_t ChunkCount() const;

 private:
  /// Orders by fee descending, then id ascending — a deterministic
  /// total order shared by all miners. `a < b` means a ranks higher.
  struct FeeKey {
    Amount fee;
    Hash256 id;
    friend bool operator<(const FeeKey& a, const FeeKey& b) {
      if (a.fee != b.fee) return a.fee > b.fee;
      return a.id < b.id;
    }
  };

  /// A fixed-capacity slab of transactions. Slots are append-only
  /// between compactions; `dead` is the confirmation bitmap.
  struct Chunk {
    std::vector<Transaction> txs;
    std::vector<Hash256> ids;    ///< Cached tx ids, parallel to txs.
    std::vector<uint8_t> dead;   ///< 1 = confirmed/removed, skip on emit.
    size_t live = 0;

    /// Slot indices in FeeKey order (best first), lazily rebuilt after
    /// appends; dead slots are skipped at merge time so marking dead
    /// does not invalidate it.
    mutable std::vector<uint32_t> order;
    mutable bool order_valid = true;

    /// Worst (cheapest-ranked) live FeeKey and its slot; lazily
    /// recomputed. Drives O(#chunks) capacity eviction.
    mutable FeeKey worst{};
    mutable uint32_t worst_slot = 0;
    mutable bool worst_valid = true;  // vacuously, while empty

    /// Whether this chunk is on the open_ list (has spare slots).
    bool open = true;
  };

  struct Locator {
    uint32_t chunk;
    uint32_t slot;
  };

  void Insert(const Transaction& tx, const Hash256& id);
  void MarkDead(const Locator& loc);
  /// Recycles/compacts a chunk after batch removals.
  void SweepChunk(uint32_t ci);
  /// Index of the chunk holding the globally worst live FeeKey.
  uint32_t WorstChunk() const;
  static void EnsureOrder(const Chunk& c);
  static void EnsureWorst(const Chunk& c);

  size_t capacity_;
  size_t chunk_capacity_;
  size_t size_ = 0;
  /// Chunks are only ever iterated by ascending index (deterministic).
  std::vector<Chunk> chunks_;
  /// Chunks with spare slots, most recently freed last.
  std::vector<uint32_t> open_;
  // detlint:allow(unordered-container): lookup-only index, never iterated
  std::unordered_map<Hash256, Locator> by_id_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_TXPOOL_TXPOOL_H_
