#ifndef SHARDCHAIN_TXPOOL_LEGACY_POOL_H_
#define SHARDCHAIN_TXPOOL_LEGACY_POOL_H_

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "crypto/sha256.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief The original single-ordered-map mempool, kept as the
/// executable specification for the chunked `TxPool` (DESIGN.md §14).
///
/// tests/mempool_differential_test.cc drives both pools with identical
/// arrival sequences and asserts element-wise equal admission statuses
/// and byte-identical `TopByFee` output. Not used on any production
/// path.
///
/// Its one historical performance bug — `RemoveAll` doing a
/// O(confirmed x log n) per-tx map erase — is fixed here with a batch
/// removal path (resolve ids, sort the fee keys, erase in one ordered
/// sweep); the observable state after removal is unchanged.
class LegacyTxPool {
 public:
  /// Caps the pool; adding beyond it evicts the cheapest transaction
  /// (or rejects the incoming one if it is the cheapest).
  explicit LegacyTxPool(size_t capacity = 1 << 20) : capacity_(capacity) {}

  /// Adds a transaction. Fails with AlreadyExists on duplicate id, or
  /// FailedPrecondition if the pool is full of higher-ranked txs (fee
  /// desc, id asc — the same total order emission uses, so the
  /// retained set is independent of arrival order).
  [[nodiscard]] Status Add(const Transaction& tx);

  /// Removes a transaction by id; returns NotFound if absent.
  [[nodiscard]] Status Remove(const Hash256& id);

  /// Removes every transaction contained in `confirmed` (called when a
  /// block is accepted). Batched: sorts the resolved fee keys and
  /// erases them in a single ordered sweep when the confirmed set is a
  /// large fraction of the pool, falling back to per-key erase when it
  /// is small (where m log n beats an O(n) walk).
  void RemoveAll(const std::vector<Transaction>& confirmed);

  bool Contains(const Hash256& id) const;
  size_t Size() const { return by_id_.size(); }
  bool Empty() const { return by_id_.empty(); }

  /// The `n` highest-fee transactions (ties broken by id for
  /// determinism), best first. n may exceed Size().
  std::vector<Transaction> TopByFee(size_t n) const;

  /// All pooled transactions in fee order (best first).
  std::vector<Transaction> All() const { return TopByFee(by_id_.size()); }

 private:
  /// Orders by fee descending, then id ascending — a deterministic
  /// total order shared by all miners.
  struct FeeKey {
    Amount fee;
    Hash256 id;
    friend bool operator<(const FeeKey& a, const FeeKey& b) {
      if (a.fee != b.fee) return a.fee > b.fee;
      return a.id < b.id;
    }
  };

  size_t capacity_;
  /// All emission (TopByFee/All) walks by_fee_, whose FeeKey order is a
  /// deterministic total order; by_id_ is a lookup-only index and is
  /// never iterated (determinism audit, see tools/detlint).
  std::map<FeeKey, Transaction> by_fee_;
  // detlint:allow(unordered-container): lookup-only index, never iterated
  std::unordered_map<Hash256, FeeKey> by_id_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_TXPOOL_LEGACY_POOL_H_
