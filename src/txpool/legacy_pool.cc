#include "txpool/legacy_pool.h"

#include <algorithm>

namespace shardchain {

Status LegacyTxPool::Add(const Transaction& tx) {
  const Hash256 id = tx.Id();
  if (by_id_.count(id) > 0) {
    return Status::AlreadyExists("transaction already pooled");
  }
  const FeeKey key{tx.fee, id};
  if (by_id_.size() >= capacity_) {
    // The cheapest entry is the last in fee order. Compare full FeeKeys,
    // not bare fees: deciding fee ties by arrival order would make the
    // retained set depend on gossip timing, and a full pool would then
    // feed different tx_fees into the unified parameters on different
    // miners (see tests/determinism_harness_test.cc).
    auto worst = std::prev(by_fee_.end());
    if (!(key < worst->first)) {
      return Status::FailedPrecondition(
          "pool full of transactions ranked higher");
    }
    by_id_.erase(worst->first.id);
    by_fee_.erase(worst);
  }
  by_fee_.emplace(key, tx);
  by_id_.emplace(id, key);
  return Status::OK();
}

Status LegacyTxPool::Remove(const Hash256& id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("transaction not pooled");
  by_fee_.erase(it->second);
  by_id_.erase(it);
  return Status::OK();
}

void LegacyTxPool::RemoveAll(const std::vector<Transaction>& confirmed) {
  // Resolve ids to fee keys up front (dropping anything not pooled),
  // then sort into map order so removal touches the tree left to right.
  std::vector<FeeKey> keys;
  keys.reserve(confirmed.size());
  for (const Transaction& tx : confirmed) {
    auto it = by_id_.find(tx.Id());
    if (it == by_id_.end()) continue;
    keys.push_back(it->second);
    by_id_.erase(it);
  }
  if (keys.empty()) return;
  std::sort(keys.begin(), keys.end());
  // Heuristic crossover: a single in-order sweep is O(n + m); per-key
  // erase is O(m log n). Sweep once the confirmed set is a meaningful
  // fraction of the pool (the block-confirmation case this fixes).
  const size_t n = by_fee_.size();
  if (keys.size() * 16 >= n) {
    auto it = by_fee_.begin();
    size_t k = 0;
    while (it != by_fee_.end() && k < keys.size()) {
      if (it->first < keys[k]) {
        ++it;
      } else {
        // Keys were resolved from the live index, so it->first == keys[k].
        it = by_fee_.erase(it);
        ++k;
      }
    }
  } else {
    for (const FeeKey& key : keys) by_fee_.erase(key);
  }
}

bool LegacyTxPool::Contains(const Hash256& id) const {
  return by_id_.count(id) > 0;
}

std::vector<Transaction> LegacyTxPool::TopByFee(size_t n) const {
  std::vector<Transaction> out;
  out.reserve(std::min(n, by_fee_.size()));
  for (const auto& [key, tx] : by_fee_) {
    if (out.size() >= n) break;
    out.push_back(tx);
  }
  return out;
}

}  // namespace shardchain
