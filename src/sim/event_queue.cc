#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace shardchain {

void EventQueue::ScheduleIn(SimTime delay, Callback fn) {
  assert(delay >= 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void EventQueue::ScheduleAt(SimTime when, Callback fn) {
  assert(when >= now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool EventQueue::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out
  // before pop, so copy the small fields and move the function.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.when;
  event.fn();
  return true;
}

size_t EventQueue::RunUntil(SimTime horizon) {
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    Step();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

size_t EventQueue::RunAll() {
  size_t executed = 0;
  while (Step()) ++executed;
  return executed;
}

}  // namespace shardchain
