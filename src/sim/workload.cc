#include "sim/workload.h"

#include <cassert>

namespace shardchain {

Address RandomAddress(Rng* rng) {
  Address a;
  for (int w = 0; w < 2; ++w) {
    const uint64_t r = rng->Next();
    for (int j = 0; j < 8; ++j) {
      a.bytes[w * 8 + j] = static_cast<uint8_t>(r >> (56 - 8 * j));
    }
  }
  const uint64_t r = rng->Next();
  for (int j = 0; j < 4; ++j) {
    a.bytes[16 + j] = static_cast<uint8_t>(r >> (24 - 8 * j));
  }
  return a;
}

Amount DrawFee(const WorkloadConfig& config, Rng* rng) {
  switch (config.fee_model) {
    case FeeModel::kBinomial:
      // +1 keeps fees strictly positive so every transaction is worth
      // mining.
      return rng->Binomial(static_cast<uint32_t>(config.fee_binomial_n),
                           0.5) +
             1;
    case FeeModel::kUniform:
      return static_cast<Amount>(rng->UniformRange(
          static_cast<int64_t>(config.fee_uniform_lo),
          static_cast<int64_t>(config.fee_uniform_hi)));
    case FeeModel::kEqual:
      return config.fee_equal;
  }
  return 1;
}

std::vector<size_t> Workload::PerContractCounts() const {
  std::vector<size_t> counts(contracts.size(), 0);
  for (int c : contract_of) {
    if (c >= 0) ++counts[static_cast<size_t>(c)];
  }
  return counts;
}

Workload GenerateWorkload(const WorkloadConfig& config, Rng* rng) {
  assert(rng != nullptr);
  Workload w;
  w.contracts.reserve(config.num_contracts);
  for (size_t i = 0; i < config.num_contracts; ++i) {
    w.contracts.push_back(RandomAddress(rng));
  }

  w.transactions.reserve(config.num_transactions);
  w.contract_of.reserve(config.num_transactions);
  for (size_t i = 0; i < config.num_transactions; ++i) {
    Transaction tx;
    tx.sender = RandomAddress(rng);
    tx.value = config.value_per_tx;
    tx.fee = DrawFee(config, rng);
    tx.nonce = 0;

    const bool maxshard_bound =
        config.maxshard_fraction > 0.0 && rng->Bernoulli(config.maxshard_fraction);
    if (maxshard_bound) {
      // Half direct transfers, half multi-input contract calls — both
      // route to the MaxShard.
      if (rng->Bernoulli(0.5) || config.num_contracts == 0) {
        tx.kind = TxKind::kDirectTransfer;
        tx.recipient = RandomAddress(rng);
      } else {
        tx.kind = TxKind::kContractCall;
        tx.recipient = w.contracts[rng->UniformInt(w.contracts.size())];
        for (size_t k = 0; k < config.extra_inputs; ++k) {
          tx.input_accounts.push_back(RandomAddress(rng));
        }
      }
      w.contract_of.push_back(-1);
    } else {
      size_t contract_idx = 0;
      if (config.num_contracts > 1) {
        switch (config.popularity) {
          case ContractPopularity::kUniform:
            contract_idx = rng->UniformInt(config.num_contracts);
            break;
          case ContractPopularity::kZipf:
            contract_idx =
                rng->Zipf(static_cast<uint32_t>(config.num_contracts),
                          config.zipf_exponent) -
                1;
            break;
        }
      }
      tx.kind = TxKind::kContractCall;
      tx.recipient = w.contracts[contract_idx];
      w.contract_of.push_back(static_cast<int>(contract_idx));
    }
    w.transactions.push_back(std::move(tx));
  }
  return w;
}

std::vector<Transaction> GenerateKInputTransactions(size_t n, size_t k,
                                                    Amount fee, Rng* rng) {
  assert(k >= 1);
  std::vector<Transaction> txs;
  txs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = RandomAddress(rng);
    tx.recipient = RandomAddress(rng);
    tx.fee = fee;
    tx.value = 1;
    for (size_t j = 1; j < k; ++j) {
      tx.input_accounts.push_back(RandomAddress(rng));
    }
    txs.push_back(std::move(tx));
  }
  return txs;
}

AdversarialWorkloadStream::AdversarialWorkloadStream(
    const AdversarialWorkloadConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  config_.base.popularity = ContractPopularity::kZipf;
  if (config_.base.num_contracts == 0) config_.base.num_contracts = 1;
  contracts_.reserve(config_.base.num_contracts);
  for (size_t i = 0; i < config_.base.num_contracts; ++i) {
    contracts_.push_back(RandomAddress(&rng_));
  }
  senders_.reserve(config_.returning_senders);
  home_.reserve(config_.returning_senders);
  for (size_t i = 0; i < config_.returning_senders; ++i) {
    senders_.push_back(RandomAddress(&rng_));
    home_.push_back(rng_.UniformInt(contracts_.size()));
  }
  nonces_.assign(config_.returning_senders, 0);
}

Workload AdversarialWorkloadStream::NextEpoch() {
  // Epoch-boundary drift, drawn before any transaction: a switched pool
  // sender calls only its NEW home contract for the whole epoch, so the
  // migration set this epoch induces is fixed here, not by arrival
  // order of the transactions below.
  for (size_t i = 0; i < senders_.size(); ++i) {
    if (rng_.Bernoulli(config_.contract_switch_probability) &&
        contracts_.size() > 1) {
      const size_t hop = 1 + rng_.UniformInt(contracts_.size() - 1);
      home_[i] = (home_[i] + hop) % contracts_.size();
    }
  }
  ++epoch_;
  last_flash_ =
      config_.flash_period > 0 && epoch_ % config_.flash_period == 0;
  last_hot_ = -1;
  if (last_flash_) {
    last_hot_ = static_cast<int>(rng_.UniformInt(contracts_.size()));
  }

  Workload w;
  w.contracts = contracts_;
  w.transactions.reserve(config_.base.num_transactions);
  w.contract_of.reserve(config_.base.num_transactions);
  size_t next_pool = 0;  // Round-robin over the returning pool.
  for (size_t i = 0; i < config_.base.num_transactions; ++i) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.value = config_.base.value_per_tx;
    tx.fee = DrawFee(config_.base, &rng_);

    size_t contract_idx;
    const bool returning = config_.returning_senders > 0 &&
                           rng_.Bernoulli(config_.returning_fraction);
    if (returning) {
      const size_t p = next_pool++ % senders_.size();
      tx.sender = senders_[p];
      tx.nonce = nonces_[p]++;
      contract_idx = home_[p];
    } else {
      tx.sender = RandomAddress(&rng_);
      tx.nonce = 0;
      if (last_flash_ && rng_.Bernoulli(config_.flash_crowd_share)) {
        contract_idx = static_cast<size_t>(last_hot_);
      } else {
        contract_idx =
            contracts_.size() > 1
                ? rng_.Zipf(static_cast<uint32_t>(contracts_.size()),
                            config_.base.zipf_exponent) -
                      1
                : 0;
      }
    }
    if (last_flash_ && config_.fee_attack_fraction > 0.0 &&
        rng_.Bernoulli(config_.fee_attack_fraction)) {
      tx.fee = static_cast<Amount>(static_cast<double>(tx.fee) *
                                   config_.fee_attack_multiplier);
    }
    tx.recipient = contracts_[contract_idx];
    w.contract_of.push_back(static_cast<int>(contract_idx));
    w.transactions.push_back(std::move(tx));
  }
  return w;
}

void FundWorkload(const std::vector<Transaction>& txs, StateDB* state) {
  assert(state != nullptr);
  for (const Transaction& tx : txs) {
    state->Mint(tx.sender, tx.fee + tx.value);
  }
}

}  // namespace shardchain
