#ifndef SHARDCHAIN_SIM_POW_RACE_H_
#define SHARDCHAIN_SIM_POW_RACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "consensus/difficulty.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief Continuous-time PoW race simulator.
///
/// The fine-grained counterpart to the round-based model in
/// mining_sim.h: block discoveries form a Poisson race over the
/// miners' hash power, blocks found within the propagation delay of
/// the previous commit become stale, and (optionally) go-Ethereum's
/// difficulty retargeting holds the commit rate at the target interval
/// regardless of how much power joins.
///
/// Used by the model-validation ablation (bench_ablation_race): with
/// retargeting ON this simulator reproduces the round model's (and
/// Table I's) flat confirmation-time curve; with retargeting OFF it
/// shows the counterfactual where more miners mean proportionally more
/// blocks.
struct PowRaceConfig {
  size_t num_miners = 1;
  /// Hash power per miner (hashes per second); the paper's calibration
  /// is one c5.large == 0x40000 / 60 H/s (pow::kCalibratedHashRate).
  double hashrate_per_miner = 4369.0;
  uint64_t initial_difficulty = 0x40000;
  bool retarget = true;
  pow::RetargetConfig retarget_config;
  /// Seconds for a freshly committed block to reach the other miners;
  /// blocks found inside this window of a commit are stale forks.
  double propagation_delay = 2.0;
  size_t txs_per_block = 10;
  /// If true, all miners target the same top-fee set, so only blocks
  /// that extend the tip in time count (greedy serialization). If
  /// false, miners hold disjoint partitions (selection-game limit):
  /// a stale block's transactions are still fresh, so it is re-mined
  /// immediately and only the propagation time is lost.
  bool greedy = true;
  /// Blocks mined before the measured injection (the paper's private
  /// chain runs, and difficulty equilibrates, before each experiment).
  size_t warmup_blocks = 0;
  /// Stop even if transactions remain (safety).
  double horizon_seconds = 1e7;
};

struct PowRaceResult {
  SimTime completion_time = 0.0;  ///< When the last tx confirmed (0 if never).
  size_t txs_confirmed = 0;
  size_t chain_blocks = 0;  ///< Committed (canonical) blocks.
  size_t stale_blocks = 0;  ///< Forks lost to propagation.
  size_t empty_blocks = 0;  ///< Committed blocks with no payload.
  uint64_t final_difficulty = 0;
  /// Mean commit interval over the final 20 commits.
  double tail_interval = 0.0;
};

/// Runs the race until all `num_txs` transactions confirm (or the
/// horizon passes).
PowRaceResult RunPowRace(size_t num_txs, const PowRaceConfig& config,
                         Rng* rng);

}  // namespace shardchain

#endif  // SHARDCHAIN_SIM_POW_RACE_H_
