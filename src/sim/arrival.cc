#include "sim/arrival.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

#include "common/stats.h"
#include "core/selection_game.h"

namespace shardchain {

ArrivalResult RunArrivalSim(const ArrivalConfig& config, Rng* rng) {
  assert(rng != nullptr);
  ArrivalResult result;

  struct PendingTx {
    Amount fee;
    double arrival;
  };
  std::vector<PendingTx> pending;
  std::vector<double> latencies;

  double next_arrival =
      config.arrival_rate > 0.0
          ? rng->Exponential(1.0 / config.arrival_rate)
          : config.duration_seconds + 1.0;

  const size_t rounds =
      static_cast<size_t>(config.duration_seconds / config.round_seconds);
  std::vector<size_t> miner_order(config.num_miners);
  std::iota(miner_order.begin(), miner_order.end(), 0);

  for (size_t round = 1; round <= rounds; ++round) {
    const double round_end = static_cast<double>(round) * config.round_seconds;
    // Admit arrivals up to the end of this round; they are eligible for
    // the NEXT round's blocks (miners select at round start).
    const double round_start = round_end - config.round_seconds;
    while (next_arrival <= round_start) {
      pending.push_back(PendingTx{
          static_cast<Amount>(rng->UniformRange(
              static_cast<int64_t>(config.fee_lo),
              static_cast<int64_t>(config.fee_hi))),
          next_arrival});
      ++result.arrived;
      next_arrival += rng->Exponential(1.0 / config.arrival_rate);
    }

    std::vector<Amount> fees;
    fees.reserve(pending.size());
    for (const PendingTx& tx : pending) fees.push_back(tx.fee);

    std::vector<std::vector<size_t>> sets;
    switch (config.policy) {
      case SelectionPolicy::kGreedy:
        sets = GreedySelection(fees, config.num_miners, config.txs_per_block)
                   .assignment;
        break;
      case SelectionPolicy::kCongestionGame: {
        SelectionGameConfig game = config.game;
        game.capacity = config.txs_per_block;
        sets = RunSelectionGame(fees, config.num_miners, game, rng).assignment;
        break;
      }
      case SelectionPolicy::kRoundRobin:
        sets = RoundRobinSelection(fees, config.num_miners,
                                   config.txs_per_block)
                   .assignment;
        break;
      case SelectionPolicy::kRandomSets: {
        sets.assign(config.num_miners, {});
        std::vector<size_t> idx(fees.size());
        std::iota(idx.begin(), idx.end(), 0);
        const size_t take = std::min(config.txs_per_block, idx.size());
        for (auto& s : sets) {
          rng->Shuffle(&idx);
          s.assign(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(take));
          std::sort(s.begin(), s.end());
        }
        break;
      }
    }

    rng->Shuffle(&miner_order);
    // detlint:allow(unordered-container): membership tests only.
    std::unordered_set<size_t> confirmed_this_round;
    for (size_t m : miner_order) {
      const auto& set = sets[m];
      if (set.empty()) {
        ++result.blocks;
        ++result.empty_blocks;
        continue;
      }
      bool conflict = false;
      for (size_t j : set) {
        if (confirmed_this_round.count(j) > 0) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;  // Stale fork.
      ++result.blocks;
      for (size_t j : set) {
        confirmed_this_round.insert(j);
        latencies.push_back(round_end - pending[j].arrival);
      }
    }
    result.confirmed += confirmed_this_round.size();

    if (!confirmed_this_round.empty()) {
      std::vector<PendingTx> next;
      next.reserve(pending.size() - confirmed_this_round.size());
      for (size_t j = 0; j < pending.size(); ++j) {
        if (confirmed_this_round.count(j) == 0) next.push_back(pending[j]);
      }
      pending = std::move(next);
    }
  }

  result.backlog = pending.size();
  if (!latencies.empty()) {
    RunningStats stats;
    for (double l : latencies) stats.Add(l);
    result.mean_latency = stats.mean();
    result.p95_latency = Percentile(latencies, 95.0);
  }
  result.throughput =
      static_cast<double>(result.confirmed) / config.duration_seconds;
  return result;
}

double FindSaturationRate(const ArrivalConfig& base, double lo, double hi,
                          int iterations, Rng* rng) {
  assert(rng != nullptr);
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    ArrivalConfig probe = base;
    probe.arrival_rate = mid;
    Rng probe_rng = rng->Fork();
    const ArrivalResult r = RunArrivalSim(probe, &probe_rng);
    if (r.Saturated(probe)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace shardchain
