#ifndef SHARDCHAIN_SIM_MINING_SIM_H_
#define SHARDCHAIN_SIM_MINING_SIM_H_

#include <optional>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/selection_game.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// How miners in a shard choose which transactions to pack.
enum class SelectionPolicy : uint8_t {
  kGreedy = 0,          ///< Everyone takes the top fees (Ethereum default).
  kCongestionGame = 1,  ///< Algorithm 2 best-reply equilibrium.
  kRandomSets = 2,      ///< Each miner picks uniformly at random (ablation).
  kRoundRobin = 3,      ///< Disjoint oracle partition (upper bound).
};

const char* SelectionPolicyName(SelectionPolicy policy);

/// \brief One shard's specification for a mining simulation: its miner
/// count and the fees of the transactions injected into it.
struct ShardSpec {
  ShardId id = 0;
  size_t num_miners = 1;
  std::vector<Amount> tx_fees;
  /// Overrides the config-wide selection policy for this shard (e.g. a
  /// MaxShard running the congestion game while contract shards mine
  /// greedily). nullopt = use MiningSimConfig::policy.
  std::optional<SelectionPolicy> policy_override;
  /// Seconds before this shard starts mining. Newly merged shards pay
  /// one coordination round (leader stats + parameter broadcast) before
  /// their first block — the source of the paper's post-merge
  /// throughput cost (Fig. 3d).
  double start_delay = 0.0;
};

/// \brief Parameters of the round-based PoW model.
///
/// MODEL (see DESIGN.md §2 and EXPERIMENTS.md): on the paper's testbed
/// "a miner can pack one block in one minute on average" at difficulty
/// 0x40000. We therefore advance time in rounds of `round_seconds`; in
/// each round every miner crafts one block from her selected set.
/// Blocks crafted in the same round are concurrent: a block whose
/// transactions overlap an already-committed concurrent block is a
/// stale fork and is wasted. This is what serializes confirmation under
/// greedy selection (all miners pack the same top-fee set, one useful
/// block per round — the paper's Sec. II-B observation and Table I) and
/// what the congestion game fixes (disjoint sets all commit).
///
/// `calibration_power` models genesis-difficulty equilibration: the
/// 0x40000 genesis difficulty was tuned to the testbed's aggregate
/// power, so a shard with fewer than `calibration_power` miners mines
/// rounds slower by factor power/n until retargeting would catch up
/// (Table I's slow 2- and 3-miner rows). Set to 1 to disable.
struct MiningSimConfig {
  double round_seconds = 60.0;
  size_t txs_per_block = 10;
  double calibration_power = 1.0;
  SelectionPolicy policy = SelectionPolicy::kGreedy;
  SelectionGameConfig game;
  /// Keep simulating empty mining until this time even after all
  /// transactions confirm (empty-block counting window, Fig. 3b/3c).
  /// <= 0 means stop at completion.
  double window_seconds = 0.0;
  /// Safety valve: give up after this many rounds per shard.
  size_t max_rounds = 1 << 20;
};

/// \brief Per-shard outcome of a simulation.
struct ShardMetrics {
  ShardId id = 0;
  size_t txs_injected = 0;
  size_t txs_confirmed = 0;
  size_t blocks_committed = 0;   ///< Chain blocks, empty ones included.
  size_t empty_blocks = 0;       ///< Committed blocks with no txs.
  size_t wasted_blocks = 0;      ///< Stale forks (conflicting sets).
  SimTime completion_time = 0.0; ///< When the shard's last tx confirmed.
};

/// \brief Whole-run outcome.
struct SimResult {
  std::vector<ShardMetrics> shards;
  /// W: waiting time until ALL injected transactions are confirmed —
  /// the paper's throughput denominator (Sec. VI-A).
  SimTime makespan = 0.0;

  size_t TotalTxsConfirmed() const;
  size_t TotalBlocks() const;
  size_t TotalEmptyBlocks() const;
  size_t TotalWastedBlocks() const;
  /// Empty blocks averaged over shards (the per-shard metric of
  /// Fig. 3c/3f).
  double EmptyBlocksPerShard() const;
};

/// Runs the round-based mining simulation over independent shards.
SimResult RunMiningSim(const std::vector<ShardSpec>& shards,
                       const MiningSimConfig& config, Rng* rng);

/// Throughput improvement of a sharded run over a baseline:
/// W_baseline / W_sharded (Sec. VI-A).
double ThroughputImprovement(const SimResult& baseline,
                             const SimResult& sharded);

}  // namespace shardchain

#endif  // SHARDCHAIN_SIM_MINING_SIM_H_
