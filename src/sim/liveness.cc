#include "sim/liveness.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/hex.h"
#include "core/unification.h"
#include "core/unification_codec.h"
#include "crypto/vrf.h"
#include "types/codec.h"

namespace shardchain {

namespace {

/// Fractions the leader would broadcast in a healthy epoch; fixed so
/// the chaos invariant depends only on message delivery, not workload.
const std::vector<double> kEpochFractions = {40.0, 35.0, 25.0};

/// The broadcast randomness: the leader's VRF value mixed with the
/// beacon output (zero when the beacon degraded). Receivers recompute
/// this from public data to verify the broadcast binds to the epoch.
Hash256 MixRandomness(const Hash256& vrf_value, const Hash256& beacon_out) {
  Sha256 h;
  h.Update("shardchain.liveness.mix.v1");
  h.Update(vrf_value.bytes.data(), vrf_value.bytes.size());
  h.Update(beacon_out.bytes.data(), beacon_out.bytes.size());
  return h.Finalize();
}

/// The unified parameters a view leader broadcasts: a small synthetic
/// workload derived from the epoch seed (identical for every would-be
/// leader except the randomness, which binds to the leader's VRF).
UnifiedParameters SyntheticParams(const Hash256& seed,
                                  const Hash256& vrf_value,
                                  const Hash256& beacon_out,
                                  size_t num_miners) {
  UnifiedParameters params;
  params.randomness = MixRandomness(vrf_value, beacon_out);
  for (size_t i = 0; i < 4; ++i) {
    params.shard_sizes.push_back(1 + seed.bytes[i] % 37);
  }
  for (size_t i = 4; i < 10; ++i) {
    params.tx_fees.push_back(static_cast<Amount>(1 + seed.bytes[i] % 19));
  }
  params.num_miners = num_miners;
  return params;
}

}  // namespace

EpochLivenessSim::EpochLivenessSim(const LivenessConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      gossip_(config.num_miners, config.gossip, &rng_) {
  if (config_.parallel.Resolve() > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.parallel.Resolve());
  }
  miners_.reserve(config.num_miners);
  for (size_t i = 0; i < config.num_miners; ++i) {
    KeyPair keys = KeyPair::Generate(&rng_);
    const Hash256 id = keys.public_key().Fingerprint();
    miners_.push_back(Miner{std::move(keys), id});
  }
  departed_.resize(config.num_miners, false);
}

NodeId EpochLivenessSim::Join() {
  KeyPair keys = KeyPair::Generate(&rng_);
  const Hash256 id = keys.public_key().Fingerprint();
  const NodeId node = static_cast<NodeId>(miners_.size());
  miners_.push_back(Miner{std::move(keys), id});
  departed_.push_back(false);
  // The overlay is sized at construction; rebuild it for the larger
  // population. The rebuild draws from the sim's seeded stream, so two
  // runs replaying the same join sequence get identical overlays.
  gossip_ = GossipNetwork(miners_.size(), config_.gossip, &rng_);
  return node;
}

void EpochLivenessSim::Depart(NodeId miner) {
  if (miner < departed_.size()) departed_[miner] = true;
}

bool EpochLivenessSim::IsDeparted(NodeId miner) const {
  return miner < departed_.size() && departed_[miner];
}

size_t EpochLivenessSim::LiveMinerCount() const {
  size_t count = 0;
  for (size_t i = 0; i < miners_.size(); ++i) {
    if (!departed_[i]) ++count;
  }
  return count;
}

std::vector<NodeId> EpochLivenessSim::LiveMiners() const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < miners_.size(); ++i) {
    if (!departed_[i]) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

void EpochLivenessSim::ApplyChurn(const std::vector<ChurnEvent>& events,
                                  FaultConfig* faults) {
  for (const ChurnEvent& event : events) {
    switch (event.kind) {
      case ChurnEventKind::kJoin:
        (void)Join();
        break;
      case ChurnEventKind::kRetire:
        Depart(event.node);
        break;
      case ChurnEventKind::kCrash:
        // Dies mid-epoch: the fault plan silences it from `when` on;
        // the permanent departure lands after the epoch has run.
        if (faults != nullptr) {
          faults->crashes.emplace_back(
              event.node, event.when * config_.decision_deadline);
        }
        crashing_this_epoch_.push_back(event.node);
        break;
    }
  }
}

void EpochLivenessSim::AppendDepartureCrashes(FaultConfig* faults) const {
  for (size_t i = 0; i < departed_.size(); ++i) {
    if (departed_[i]) {
      faults->crashes.emplace_back(static_cast<NodeId>(i), 0.0);
    }
  }
}

void EpochLivenessSim::BuildCandidates(
    std::vector<LeaderCandidate>* candidates,
    std::vector<NodeId>* cand_to_miner) const {
  const Hash256 seed = epochs_.NextSeed();
  std::vector<const KeyPair*> keys;
  for (size_t i = 0; i < miners_.size(); ++i) {
    const NodeId m = static_cast<NodeId>(i);
    if (departed_[i]) continue;  // Churned out for good.
    if (std::find(excluded_.begin(), excluded_.end(), m) != excluded_.end()) {
      continue;  // Last epoch's beacon withholders sit this one out.
    }
    keys.push_back(&miners_[i].keys);
    cand_to_miner->push_back(m);
  }
  std::vector<VrfOutput> vrfs = VrfEvaluateBatch(keys, seed, pool_.get());
  for (size_t c = 0; c < keys.size(); ++c) {
    candidates->push_back(
        LeaderCandidate{keys[c]->public_key(), std::move(vrfs[c])});
  }
}

Bytes EpochLivenessSim::BeaconShare(NodeId miner, const Hash256& seed) const {
  Bytes share;
  for (char c : std::string_view("shardchain.liveness.share.v1")) {
    share.push_back(static_cast<uint8_t>(c));
  }
  AppendUint32(&share, miner);
  share.insert(share.end(), seed.bytes.begin(), seed.bytes.end());
  return share;
}

std::vector<NodeId> EpochLivenessSim::NextRanking() const {
  std::vector<LeaderCandidate> candidates;
  std::vector<NodeId> cand_to_miner;
  BuildCandidates(&candidates, &cand_to_miner);
  Result<std::vector<size_t>> ranked =
      RankCandidates(candidates, epochs_.NextSeed(), pool_.get());
  std::vector<NodeId> out;
  if (!ranked.ok()) return out;  // No candidates: nobody can lead.
  out.reserve(ranked->size());
  for (size_t c : *ranked) out.push_back(cand_to_miner[c]);
  return out;
}

EpochOutcome EpochLivenessSim::RunEpoch(FaultPlan* faults) {
  const size_t n = miners_.size();
  const Hash256 seed = epochs_.NextSeed();

  EpochOutcome out;
  out.epoch_number = epochs_.EpochCount() + 1;
  out.seed = seed;
  out.decisions.resize(n);

  std::vector<LeaderCandidate> candidates;
  std::vector<NodeId> cand_to_miner;
  BuildCandidates(&candidates, &cand_to_miner);
  Result<std::vector<size_t>> ranked_r =
      RankCandidates(candidates, seed, pool_.get());
  // Failover order as miner ids; each miner's VRF value is common
  // knowledge (simulator shortcut, see class comment).
  std::vector<NodeId> ranked;
  std::map<NodeId, Hash256> vrf_value;
  if (ranked_r.ok()) {
    for (size_t c : *ranked_r) ranked.push_back(cand_to_miner[c]);
    for (size_t c = 0; c < candidates.size(); ++c) {
      vrf_value[cand_to_miner[c]] = candidates[c].vrf.value;
    }
  }

  EventQueue queue;
  gossip_.SetFaultPlan(faults);
  const uint64_t retrans0 = gossip_.Retransmissions();
  const uint64_t repair0 = gossip_.RepairSends();
  const uint64_t lost0 = gossip_.MessagesLost();

  // --- Beacon phases, closed by deadline timers ----------------------
  RandomnessBeacon beacon(config_.min_reveals);
  Hash256 beacon_out;  // Stays zero when the beacon degrades.
  bool degraded = false;
  for (size_t i = 0; i < n; ++i) {
    const NodeId m = static_cast<NodeId>(i);
    if (departed_[i]) continue;  // Departed miners play no part.
    // Commits and reveals spread evenly inside their phases, so a crash
    // instant inside a phase splits participants into committed /
    // not-committed (and revealed / withholding) sets.
    const double tc = config_.beacon_commit_close *
                      static_cast<double>(i + 1) / static_cast<double>(n + 2);
    const double tr = config_.beacon_commit_close +
                      (config_.beacon_reveal_close -
                       config_.beacon_commit_close) *
                          static_cast<double>(i + 1) /
                          static_cast<double>(n + 2);
    queue.ScheduleAt(tc, [this, &queue, &beacon, faults, m, seed] {
      if (faults != nullptr && faults->IsCrashed(m, queue.Now())) return;
      (void)beacon.Commit(m, RandomnessBeacon::CommitmentFor(
                                 BeaconShare(m, seed)));
    });
    queue.ScheduleAt(tr, [this, &queue, &beacon, faults, m, seed] {
      if (faults != nullptr && faults->IsCrashed(m, queue.Now())) return;
      (void)beacon.Reveal(m, BeaconShare(m, seed));
    });
  }
  queue.ScheduleAt(config_.beacon_commit_close,
                   [&beacon] { (void)beacon.CloseCommits(); });
  queue.ScheduleAt(config_.beacon_reveal_close,
                   [&beacon, &beacon_out, &degraded] {
                     Result<Hash256> fin = beacon.Finalize();
                     if (fin.ok()) {
                       beacon_out = *fin;
                     } else {
                       degraded = true;  // Proceed on the seed chain.
                     }
                   });

  // --- Broadcast receipt: verify and file by view --------------------
  std::vector<std::map<uint32_t, Accepted>> inbox(n);
  std::map<uint32_t, double> view_last_arrival;
  gossip_.SetHandler([&](NodeId node, const Bytes& payload, SimTime when) {
    codec::Reader reader(payload);
    Result<uint32_t> view = reader.ReadU32();
    Result<uint32_t> leader = reader.ReadU32();
    if (!view.ok() || !leader.ok()) return;
    Result<Bytes> body = reader.ReadBytes(reader.remaining());
    if (!body.ok()) return;
    Result<UnifiedParameters> params = codec::DecodeUnifiedParameters(*body);
    if (!params.ok()) return;
    // Acceptance checks (each receiver): the claimed view/leader pair
    // matches the public VRF ranking, and the broadcast randomness
    // binds the leader's VRF value to the beacon output.
    if (*view >= ranked.size() || ranked[*view] != *leader) return;
    if (params->randomness !=
        MixRandomness(vrf_value[*leader], beacon_out)) {
      return;
    }
    inbox[node][*view] = Accepted{*body, params->randomness};
    double& last = view_last_arrival[*view];
    last = std::max(last, when);
  });

  // --- View-change schedule: ranked[v] broadcasts at its slot unless
  // it already holds a verified lower-view broadcast ------------------
  const size_t views = std::min(config_.max_views, ranked.size());
  for (size_t v = 0; v < views; ++v) {
    queue.ScheduleAt(config_.ViewBroadcastTime(v), [&, v] {
      const NodeId leader = ranked[v];
      if (faults != nullptr && faults->IsCrashed(leader, queue.Now())) return;
      if (!inbox[leader].empty()) return;  // A lower view already won.
      const UnifiedParameters params =
          SyntheticParams(seed, vrf_value[leader], beacon_out, n);
      Bytes payload;
      AppendUint32(&payload, static_cast<uint32_t>(v));
      AppendUint32(&payload, leader);
      const Bytes enc = codec::EncodeUnifiedParameters(params);
      payload.insert(payload.end(), enc.begin(), enc.end());
      gossip_.Publish(leader, std::move(payload), &queue);
      ++out.broadcasts_published;
    });
  }

  // --- Decision: lowest received view, else MaxShard fallback --------
  queue.ScheduleAt(config_.decision_deadline, [&] {
    for (size_t i = 0; i < n; ++i) {
      const NodeId m = static_cast<NodeId>(i);
      MinerDecision& d = out.decisions[i];
      if (departed_[i]) continue;  // Not live; decides nothing.
      if (faults != nullptr && faults->IsCrashed(m, queue.Now())) continue;
      d.live = true;
      if (inbox[i].empty()) {
        d.fallback = true;
        d.randomness = EpochManager::FallbackRandomness(seed);
        continue;
      }
      const auto& [view, accepted] = *inbox[i].begin();  // Lowest view.
      d.view = view;
      d.randomness = accepted.randomness;
      // The byte-identity oracle: the accepted parameter encoding plus
      // the merge plan this miner recomputes from it locally.
      d.plan = accepted.params_encoding;
      Result<UnifiedParameters> params =
          codec::DecodeUnifiedParameters(accepted.params_encoding);
      if (params.ok()) {
        const Bytes plan_enc =
            codec::EncodeMergePlan(ComputeMergePlan(*params, pool_.get()));
        d.plan.insert(d.plan.end(), plan_enc.begin(), plan_enc.end());
      }
    }
  });

  queue.RunAll();

  // The handler and fault plan reference this frame; detach before
  // returning.
  gossip_.SetHandler(GossipNetwork::Handler{});
  gossip_.SetFaultPlan(nullptr);

  out.beacon_degraded = degraded;
  out.withholders = beacon.Withholders();
  out.retransmissions = gossip_.Retransmissions() - retrans0;
  out.repair_sends = gossip_.RepairSends() - repair0;
  out.messages_lost = gossip_.MessagesLost() - lost0;

  // --- Convergence check and chain advance ---------------------------
  const MinerDecision* ref = nullptr;
  bool converged = true;
  for (const MinerDecision& d : out.decisions) {
    if (!d.live) continue;
    if (ref == nullptr) {
      ref = &d;
      continue;
    }
    if (d.fallback != ref->fallback || d.plan != ref->plan ||
        d.randomness != ref->randomness ||
        (!d.fallback && d.view != ref->view)) {
      converged = false;
    }
  }
  out.converged = converged;  // Vacuously true with no live miner.
  if (ref != nullptr && !ref->fallback && converged) {
    (void)epochs_.Advance(candidates, kEpochFractions, ref->view);
    out.recovery_latency = view_last_arrival[ref->view];
  } else {
    // No live miner, a split (should not happen — tests assert), or a
    // unanimous fallback: the chain records a leaderless epoch.
    (void)epochs_.AdvanceFallback();
  }

  // Beacon withholders lose candidacy for the next epoch.
  excluded_ = out.withholders;
  // Mid-epoch crash victims of this epoch's churn schedule are gone for
  // good from the next epoch on.
  for (NodeId m : crashing_this_epoch_) Depart(m);
  crashing_this_epoch_.clear();
  return out;
}

}  // namespace shardchain
