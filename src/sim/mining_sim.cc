#include "sim/mining_sim.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

namespace shardchain {

const char* SelectionPolicyName(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kGreedy:
      return "Greedy";
    case SelectionPolicy::kCongestionGame:
      return "CongestionGame";
    case SelectionPolicy::kRandomSets:
      return "RandomSets";
    case SelectionPolicy::kRoundRobin:
      return "RoundRobin";
  }
  return "Unknown";
}

size_t SimResult::TotalTxsConfirmed() const {
  size_t n = 0;
  for (const auto& s : shards) n += s.txs_confirmed;
  return n;
}

size_t SimResult::TotalBlocks() const {
  size_t n = 0;
  for (const auto& s : shards) n += s.blocks_committed;
  return n;
}

size_t SimResult::TotalEmptyBlocks() const {
  size_t n = 0;
  for (const auto& s : shards) n += s.empty_blocks;
  return n;
}

size_t SimResult::TotalWastedBlocks() const {
  size_t n = 0;
  for (const auto& s : shards) n += s.wasted_blocks;
  return n;
}

double SimResult::EmptyBlocksPerShard() const {
  if (shards.empty()) return 0.0;
  return static_cast<double>(TotalEmptyBlocks()) /
         static_cast<double>(shards.size());
}

namespace {

/// Computes the per-miner selected sets over the currently pending
/// transactions according to the policy.
std::vector<std::vector<size_t>> SelectSets(
    const std::vector<Amount>& pending_fees, size_t num_miners,
    SelectionPolicy policy, const MiningSimConfig& config, Rng* rng) {
  switch (policy) {
    case SelectionPolicy::kGreedy:
      return GreedySelection(pending_fees, num_miners, config.txs_per_block)
          .assignment;
    case SelectionPolicy::kCongestionGame: {
      SelectionGameConfig game = config.game;
      game.capacity = config.txs_per_block;
      return RunSelectionGame(pending_fees, num_miners, game, rng).assignment;
    }
    case SelectionPolicy::kRandomSets: {
      std::vector<std::vector<size_t>> sets(num_miners);
      std::vector<size_t> indices(pending_fees.size());
      std::iota(indices.begin(), indices.end(), 0);
      const size_t take = std::min(config.txs_per_block, indices.size());
      for (size_t m = 0; m < num_miners; ++m) {
        rng->Shuffle(&indices);
        sets[m].assign(indices.begin(),
                       indices.begin() + static_cast<ptrdiff_t>(take));
        std::sort(sets[m].begin(), sets[m].end());
      }
      return sets;
    }
    case SelectionPolicy::kRoundRobin:
      return RoundRobinSelection(pending_fees, num_miners,
                                 config.txs_per_block)
          .assignment;
  }
  return {};
}

ShardMetrics SimulateShard(const ShardSpec& spec,
                           const MiningSimConfig& config, Rng* rng) {
  ShardMetrics metrics;
  metrics.id = spec.id;
  metrics.txs_injected = spec.tx_fees.size();
  if (spec.num_miners == 0) return metrics;

  // Genesis-difficulty equilibration: an under-powered shard mines
  // rounds slower by calibration_power / n (see header comment).
  const double power_factor =
      std::max(1.0, config.calibration_power /
                        static_cast<double>(spec.num_miners));
  const double round_len = config.round_seconds * power_factor;

  // Pending transactions, by stable local index.
  std::vector<Amount> fees = spec.tx_fees;
  std::vector<size_t> live(fees.size());  // live[k] = original index.
  std::iota(live.begin(), live.end(), 0);

  SimTime now = spec.start_delay;
  std::vector<size_t> miner_order(spec.num_miners);
  std::iota(miner_order.begin(), miner_order.end(), 0);

  for (size_t round = 0; round < config.max_rounds; ++round) {
    const bool work_left = !live.empty();
    now += round_len;
    if (!work_left && now > config.window_seconds) break;

    // Fees of the currently pending transactions, positionally aligned
    // with `live`.
    std::vector<Amount> pending;
    pending.reserve(live.size());
    for (size_t k : live) pending.push_back(fees[k]);

    std::vector<std::vector<size_t>> sets = SelectSets(
        pending, spec.num_miners, spec.policy_override.value_or(config.policy),
        config, rng);

    // All miners craft blocks concurrently this round; commit in random
    // arrival order. A block conflicting with an earlier commit of the
    // same round is a stale fork.
    rng->Shuffle(&miner_order);
    // detlint:allow(unordered-container): membership tests only.
    std::unordered_set<size_t> confirmed_this_round;
    std::vector<bool> removed(live.size(), false);
    for (size_t m : miner_order) {
      const std::vector<size_t>& set = sets[m];
      if (set.empty()) {
        // Nothing to pack: the miner still claims the block reward with
        // an empty block (Sec. III-D).
        ++metrics.blocks_committed;
        ++metrics.empty_blocks;
        continue;
      }
      bool conflict = false;
      for (size_t j : set) {
        if (confirmed_this_round.count(j) > 0) {
          conflict = true;
          break;
        }
      }
      if (conflict) {
        ++metrics.wasted_blocks;
        continue;
      }
      ++metrics.blocks_committed;
      metrics.txs_confirmed += set.size();
      for (size_t j : set) {
        confirmed_this_round.insert(j);
        removed[j] = true;
      }
      if (metrics.txs_confirmed == metrics.txs_injected) {
        metrics.completion_time = now;
      }
    }

    // Drop confirmed transactions from the pending list.
    if (!confirmed_this_round.empty()) {
      std::vector<size_t> next_live;
      next_live.reserve(live.size() - confirmed_this_round.size());
      for (size_t pos = 0; pos < live.size(); ++pos) {
        if (!removed[pos]) next_live.push_back(live[pos]);
      }
      live = std::move(next_live);
    }
  }
  return metrics;
}

}  // namespace

SimResult RunMiningSim(const std::vector<ShardSpec>& shards,
                       const MiningSimConfig& config, Rng* rng) {
  assert(rng != nullptr);
  SimResult result;
  result.shards.reserve(shards.size());
  for (const ShardSpec& spec : shards) {
    // Independent stream per shard keeps results insensitive to shard
    // iteration order.
    Rng shard_rng = rng->Fork();
    result.shards.push_back(SimulateShard(spec, config, &shard_rng));
    result.makespan =
        std::max(result.makespan, result.shards.back().completion_time);
  }
  return result;
}

double ThroughputImprovement(const SimResult& baseline,
                             const SimResult& sharded) {
  if (sharded.makespan <= 0.0) return 0.0;
  return baseline.makespan / sharded.makespan;
}

}  // namespace shardchain
