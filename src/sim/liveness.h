#ifndef SHARDCHAIN_SIM_LIVENESS_H_
#define SHARDCHAIN_SIM_LIVENESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/beacon.h"
#include "core/churn.h"
#include "core/epoch.h"
#include "core/miner_assignment.h"
#include "crypto/keys.h"
#include "net/faults.h"
#include "net/gossip.h"
#include "parallel/thread_pool.h"
#include "sim/event_queue.h"

namespace shardchain {

/// \brief Timing of one simulated epoch (all instants are sim seconds
/// from the epoch start; every miner uses the same constants, so phase
/// boundaries are common knowledge — no clock synchronisation is
/// modelled).
struct LivenessConfig {
  size_t num_miners = 16;
  GossipConfig gossip;
  /// Commit phase closes (beacon deadline #1).
  double beacon_commit_close = 1.0;
  /// Reveal phase closes and the beacon finalizes (beacon deadline #2).
  double beacon_reveal_close = 2.0;
  /// Reveals Finalize needs; below it the beacon degrades to the seed
  /// chain instead of stalling the epoch.
  size_t min_reveals = 1;
  /// View v's leader broadcasts at ViewBroadcastTime(v); a view change
  /// happens every `view_timeout` seconds without an accepted
  /// broadcast.
  double view_timeout = 2.0;
  /// Failover budget: views 0..max_views-1 may broadcast; after that
  /// the epoch can only end in the MaxShard fallback.
  size_t max_views = 3;
  /// Every live miner decides at this instant: lowest received view,
  /// or the MaxShard fallback when none arrived.
  double decision_deadline = 12.0;
  /// Thread pool for the VRF batches and plan recomputation inside the
  /// sim. Defaults to 1 (strictly serial) so existing chaos schedules
  /// run unchanged; any setting yields byte-identical outcomes
  /// (DESIGN.md §9) — the parallel-equivalence suite asserts this.
  ParallelConfig parallel{1};

  /// When view v's leader checks its inbox and (if still empty)
  /// publishes its broadcast.
  double ViewBroadcastTime(size_t view) const {
    return beacon_reveal_close + 0.1 +
           static_cast<double>(view) * view_timeout;
  }
};

/// \brief One miner's verdict at the epoch's decision deadline.
struct MinerDecision {
  bool live = false;      ///< Alive at the decision deadline.
  bool fallback = false;  ///< No verified broadcast arrived in time.
  uint32_t view = 0;      ///< Accepted view (meaningful iff !fallback).
  /// Byte-identity oracle: canonical encoding of the accepted unified
  /// parameters followed by the locally recomputed merge plan (both via
  /// the PR-1 codec). Empty on fallback.
  Bytes plan;
  /// Epoch randomness the miner proceeds with: the accepted broadcast's
  /// (beacon-mixed) randomness, or the shared leaderless fallback
  /// derivation.
  Hash256 randomness;
};

/// \brief Everything one simulated epoch produced.
struct EpochOutcome {
  uint64_t epoch_number = 0;
  Hash256 seed;
  std::vector<MinerDecision> decisions;  ///< Indexed by miner NodeId.
  /// Beacon participants that committed but never revealed; they are
  /// excluded from the NEXT epoch's candidate set.
  std::vector<NodeId> withholders;
  /// True when Finalize failed at the reveal deadline (fewer than
  /// min_reveals); the epoch then runs on the seed chain alone.
  bool beacon_degraded = false;
  size_t broadcasts_published = 0;
  /// True when every live miner reached the identical decision — the
  /// core chaos invariant (identical plan bytes, or identical
  /// fallback). Always check this in tests.
  bool converged = false;
  /// Gossip-layer recovery cost of this epoch.
  uint64_t retransmissions = 0;
  uint64_t repair_sends = 0;
  uint64_t messages_lost = 0;
  /// Sim time when the earliest-view broadcast that won had reached
  /// every live miner (0 when the epoch fell back).
  double recovery_latency = 0.0;
};

/// \brief Discrete-event simulation of the epoch pipeline under
/// faults: commit-reveal beacon with deadlines, VRF leader election
/// with view-change failover, leader broadcast over lossy gossip, and
/// the MaxShard fallback when liveness cannot be restored in time.
///
/// SIMULATOR SHORTCUTS (documented, deliberate): VRF tickets and the
/// beacon transcript are treated as common knowledge (as if gossiped a
/// round earlier), so the ranking of failover candidates and the
/// beacon output are known to every miner; what travels over the
/// faulty gossip overlay — and what faults can therefore split — is
/// the leader's unified-parameter broadcast, exactly the message the
/// paper's Sec. IV-C scheme hinges on.
class EpochLivenessSim {
 public:
  EpochLivenessSim(const LivenessConfig& config, uint64_t seed);

  size_t MinerCount() const { return miners_.size(); }
  const LivenessConfig& config() const { return config_; }
  const EpochManager& epochs() const { return epochs_; }
  GossipNetwork& gossip() { return gossip_; }

  /// Miners barred from candidacy in the next epoch (last epoch's
  /// beacon withholders).
  const std::vector<NodeId>& excluded() const { return excluded_; }

  // --- Churn (DESIGN.md §12) -----------------------------------------

  /// A fresh miner joining at the next epoch boundary: new keys from
  /// the sim's seeded stream, gossip overlay rebuilt deterministically
  /// for the larger population. Returns its NodeId.
  NodeId Join();

  /// Permanent departure (voluntary leave, or a crash discovered at the
  /// boundary): excluded from candidacy, beacon, and decisions of every
  /// subsequent epoch.
  void Depart(NodeId miner);

  bool IsDeparted(NodeId miner) const;
  size_t LiveMinerCount() const;

  /// Live (non-departed) miner ids, ascending — the population churn
  /// schedules are drawn over.
  std::vector<NodeId> LiveMiners() const;

  /// Applies one epoch's drawn churn schedule (core/churn.h): joins and
  /// retires take effect now (next RunEpoch sees them); crash events
  /// become crash-stop entries in `faults` at `when × decision_deadline`
  /// so the victim dies mid-epoch, and the victim departs permanently
  /// after the next RunEpoch returns.
  void ApplyChurn(const std::vector<ChurnEvent>& events, FaultConfig* faults);

  /// Adds crash-at-zero entries for every already-departed miner, so a
  /// FaultPlan built from `faults` silences them in the gossip overlay
  /// too (a departed miner must not relay or repair).
  void AppendDepartureCrashes(FaultConfig* faults) const;

  /// Failover order for the NEXT epoch: miner ids ranked by VRF ticket
  /// on the upcoming seed, excluded miners removed. ranking[0] is the
  /// would-be leader, ranking[v] the leader after v view changes.
  /// Exposed so chaos schedules can target specific leaders.
  std::vector<NodeId> NextRanking() const;

  /// Runs one epoch under `faults` (nullptr = perfect network) and
  /// advances the epoch chain with the converged outcome.
  EpochOutcome RunEpoch(FaultPlan* faults);

 private:
  struct Miner {
    KeyPair keys;
    Hash256 id;
  };
  /// A verified broadcast a miner holds, keyed by view in its inbox.
  struct Accepted {
    Bytes params_encoding;
    Hash256 randomness;
  };

  /// Candidates (non-excluded miners) for the next epoch plus the
  /// candidate-index → miner-id mapping.
  void BuildCandidates(std::vector<LeaderCandidate>* candidates,
                       std::vector<NodeId>* cand_to_miner) const;
  Bytes BeaconShare(NodeId miner, const Hash256& seed) const;

  LivenessConfig config_;
  /// Null when config_.parallel resolves to one thread.
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  std::vector<Miner> miners_;
  GossipNetwork gossip_;
  EpochManager epochs_{Sha256Digest("shardchain.liveness.genesis.v1")};
  std::vector<NodeId> excluded_;
  /// departed_[m]: miner m left for good (indexed by NodeId).
  std::vector<bool> departed_;
  /// Mid-epoch crash victims of the current churn schedule; they depart
  /// permanently once the epoch they crash in has run.
  std::vector<NodeId> crashing_this_epoch_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_SIM_LIVENESS_H_
