#ifndef SHARDCHAIN_SIM_ARRIVAL_H_
#define SHARDCHAIN_SIM_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/mining_sim.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief Open-system workload: Poisson transaction arrivals into a
/// shard under sustained load.
///
/// The paper's evaluation is closed (inject N, wait until confirmed).
/// This extension studies the steady state a deployment actually runs
/// in: transactions arrive continuously; the interesting questions are
/// sustainable throughput and confirmation latency, and how the
/// intra-shard selection game shifts the saturation point (it raises a
/// shard's service rate from 1 to ~num_miners blocks per round).
struct ArrivalConfig {
  double arrival_rate = 0.1;  ///< Transactions per second (Poisson).
  double round_seconds = 60.0;
  size_t txs_per_block = 10;
  size_t num_miners = 1;
  SelectionPolicy policy = SelectionPolicy::kGreedy;
  SelectionGameConfig game;
  double duration_seconds = 3600.0;
  /// Fee model for arrivals.
  Amount fee_lo = 1;
  Amount fee_hi = 100;
};

struct ArrivalResult {
  size_t arrived = 0;
  size_t confirmed = 0;
  size_t backlog = 0;  ///< Pending at the end of the run.
  double mean_latency = 0.0;  ///< Arrival -> confirmation, confirmed txs.
  double p95_latency = 0.0;
  double throughput = 0.0;  ///< Confirmed per second over the run.
  size_t empty_blocks = 0;
  size_t blocks = 0;

  /// A system is stable when the backlog does not grow with the run:
  /// here, backlog under twice a round's service capacity.
  bool Saturated(const ArrivalConfig& config) const {
    return backlog > 2 * config.txs_per_block * config.num_miners;
  }
};

/// Simulates one shard under Poisson arrivals with round-based mining
/// (same conflict semantics as RunMiningSim).
ArrivalResult RunArrivalSim(const ArrivalConfig& config, Rng* rng);

/// The arrival rate at which the shard saturates (bisection over
/// RunArrivalSim), useful for capacity planning.
double FindSaturationRate(const ArrivalConfig& base, double lo, double hi,
                          int iterations, Rng* rng);

}  // namespace shardchain

#endif  // SHARDCHAIN_SIM_ARRIVAL_H_
