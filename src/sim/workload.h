#ifndef SHARDCHAIN_SIM_WORKLOAD_H_
#define SHARDCHAIN_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "state/statedb.h"
#include "types/address.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// How transactions spread over contracts.
enum class ContractPopularity : uint8_t {
  kUniform = 0,  ///< The paper's setting: 200/(s+1) per shard (Sec. VI-B1).
  kZipf = 1,     ///< Skewed popularity (motivates the intra-shard game).
};

/// How transaction fees are drawn.
enum class FeeModel : uint8_t {
  kBinomial = 0,  ///< Binomial(N, 1/2), the paper's assumption (Eq. 4).
  kUniform = 1,   ///< Uniform integer range.
  kEqual = 2,     ///< All fees identical.
};

/// \brief Parameters for synthetic workload generation.
///
/// Mirrors the paper's testbed: "we register multiple smart contracts,
/// and each of them records an unconditional transaction that transfers
/// money to a specified destination. Transactions in our experiments
/// will invoke these smart contracts" (Sec. VI-A).
struct WorkloadConfig {
  size_t num_transactions = 200;
  size_t num_contracts = 8;          ///< s contracts -> s+1 shards w/ MaxShard.
  ContractPopularity popularity = ContractPopularity::kUniform;
  double zipf_exponent = 1.0;

  FeeModel fee_model = FeeModel::kBinomial;
  uint64_t fee_binomial_n = 200;     ///< Paper: "200 transaction fees in total".
  Amount fee_uniform_lo = 1;
  Amount fee_uniform_hi = 100;
  Amount fee_equal = 10;

  /// Fraction of transactions that are MaxShard-bound: direct transfers
  /// or multi-input contract calls (0 reproduces the paper's clean
  /// per-contract injections).
  double maxshard_fraction = 0.0;
  /// Number of extra input accounts for MaxShard-bound contract calls
  /// ("3-input transactions" of Sec. VI-B2 have 2 extras).
  size_t extra_inputs = 2;

  Amount value_per_tx = 100;
};

/// \brief A generated workload: transactions plus the contract universe
/// they invoke.
struct Workload {
  std::vector<Transaction> transactions;
  std::vector<Address> contracts;

  /// contract_of[i] is the index (into `contracts`) invoked by
  /// transactions[i], or -1 for MaxShard-bound transactions.
  std::vector<int> contract_of;

  /// Count of transactions per contract index (same order as
  /// `contracts`); MaxShard-bound txs are excluded.
  std::vector<size_t> PerContractCounts() const;
};

/// Generates a workload. Every non-MaxShard transaction comes from a
/// fresh sender that only ever touches its one contract, so it is
/// shardable by construction (Sec. II-C).
Workload GenerateWorkload(const WorkloadConfig& config, Rng* rng);

/// Generates `n` transactions that each require `k` account inputs
/// (sender + k-1 others) — the Sec. VI-B2 ChainSpace communication
/// workload.
std::vector<Transaction> GenerateKInputTransactions(size_t n, size_t k,
                                                    Amount fee, Rng* rng);

/// Draws a fee according to the config's fee model.
Amount DrawFee(const WorkloadConfig& config, Rng* rng);

/// Mints every sender enough balance to cover fee + value, so the
/// workload executes cleanly against a real StateDB.
void FundWorkload(const std::vector<Transaction>& txs, StateDB* state);

/// A fresh pseudo-random address (not tied to a key pair; synthetic
/// actors in large-scale simulations do not need signatures).
Address RandomAddress(Rng* rng);

}  // namespace shardchain

#endif  // SHARDCHAIN_SIM_WORKLOAD_H_
