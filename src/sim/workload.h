#ifndef SHARDCHAIN_SIM_WORKLOAD_H_
#define SHARDCHAIN_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "state/statedb.h"
#include "types/address.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// How transactions spread over contracts.
enum class ContractPopularity : uint8_t {
  kUniform = 0,  ///< The paper's setting: 200/(s+1) per shard (Sec. VI-B1).
  kZipf = 1,     ///< Skewed popularity (motivates the intra-shard game).
};

/// How transaction fees are drawn.
enum class FeeModel : uint8_t {
  kBinomial = 0,  ///< Binomial(N, 1/2), the paper's assumption (Eq. 4).
  kUniform = 1,   ///< Uniform integer range.
  kEqual = 2,     ///< All fees identical.
};

/// \brief Parameters for synthetic workload generation.
///
/// Mirrors the paper's testbed: "we register multiple smart contracts,
/// and each of them records an unconditional transaction that transfers
/// money to a specified destination. Transactions in our experiments
/// will invoke these smart contracts" (Sec. VI-A).
struct WorkloadConfig {
  size_t num_transactions = 200;
  size_t num_contracts = 8;          ///< s contracts -> s+1 shards w/ MaxShard.
  ContractPopularity popularity = ContractPopularity::kUniform;
  double zipf_exponent = 1.0;

  FeeModel fee_model = FeeModel::kBinomial;
  uint64_t fee_binomial_n = 200;     ///< Paper: "200 transaction fees in total".
  Amount fee_uniform_lo = 1;
  Amount fee_uniform_hi = 100;
  Amount fee_equal = 10;

  /// Fraction of transactions that are MaxShard-bound: direct transfers
  /// or multi-input contract calls (0 reproduces the paper's clean
  /// per-contract injections).
  double maxshard_fraction = 0.0;
  /// Number of extra input accounts for MaxShard-bound contract calls
  /// ("3-input transactions" of Sec. VI-B2 have 2 extras).
  size_t extra_inputs = 2;

  Amount value_per_tx = 100;
};

/// \brief A generated workload: transactions plus the contract universe
/// they invoke.
struct Workload {
  std::vector<Transaction> transactions;
  std::vector<Address> contracts;

  /// contract_of[i] is the index (into `contracts`) invoked by
  /// transactions[i], or -1 for MaxShard-bound transactions.
  std::vector<int> contract_of;

  /// Count of transactions per contract index (same order as
  /// `contracts`); MaxShard-bound txs are excluded.
  std::vector<size_t> PerContractCounts() const;
};

/// Generates a workload. Every non-MaxShard transaction comes from a
/// fresh sender that only ever touches its one contract, so it is
/// shardable by construction (Sec. II-C).
Workload GenerateWorkload(const WorkloadConfig& config, Rng* rng);

/// Generates `n` transactions that each require `k` account inputs
/// (sender + k-1 others) — the Sec. VI-B2 ChainSpace communication
/// workload.
std::vector<Transaction> GenerateKInputTransactions(size_t n, size_t k,
                                                    Amount fee, Rng* rng);

/// Draws a fee according to the config's fee model.
Amount DrawFee(const WorkloadConfig& config, Rng* rng);

/// Mints every sender enough balance to cover fee + value, so the
/// workload executes cleanly against a real StateDB.
void FundWorkload(const std::vector<Transaction>& txs, StateDB* state);

/// A fresh pseudo-random address (not tied to a key pair; synthetic
/// actors in large-scale simulations do not need signatures).
Address RandomAddress(Rng* rng);

/// \brief Adversarial traffic knobs layered on a base WorkloadConfig
/// (DESIGN.md §12): power-law contract popularity, periodic flash-crowd
/// epochs that pile a large share of traffic onto one hot contract, a
/// pool of returning senders whose home contract drifts across epochs
/// (each switch forces a cross-shard account migration), and
/// fee-manipulation bursts that inflate fees during flash epochs to
/// stress the fee-driven shard-selection game.
struct AdversarialWorkloadConfig {
  /// Base distribution; `base.popularity` is forced to kZipf by the
  /// stream (the adversary exploits skew, not uniformity).
  WorkloadConfig base;

  /// Fraction of an epoch's transactions redirected at the hot contract
  /// during a flash-crowd epoch.
  double flash_crowd_share = 0.5;
  /// A flash crowd hits every `flash_period`-th epoch (0 = never).
  size_t flash_period = 3;

  /// Size of the persistent sender pool reused across epochs. These are
  /// the only senders with cross-epoch identity, so they are the only
  /// accounts whose shard residency can go stale.
  size_t returning_senders = 16;
  /// Fraction of an epoch's transactions issued by pool senders.
  double returning_fraction = 0.25;
  /// Probability that a pool sender switches its home contract at an
  /// epoch boundary. A switched sender calls ONLY the new contract for
  /// the whole epoch, so the set of accounts needing migration is a
  /// pure function of the seed — independent of transaction arrival
  /// order within the epoch.
  double contract_switch_probability = 0.2;

  /// During a flash epoch, this fraction of transactions carries an
  /// inflated fee (fee manipulation aimed at luring miners onto the hot
  /// shard, Sec. V's game).
  double fee_attack_fraction = 0.1;
  double fee_attack_multiplier = 8.0;
};

/// \brief Stateful multi-epoch generator of adversarial workloads.
///
/// The contract universe and the returning-sender pool are fixed at
/// construction; `NextEpoch()` advances the drift state (contract
/// switches, flash schedule, nonces) and emits one epoch's Workload.
/// All randomness flows through the single seeded stream, so the full
/// trace is a pure function of (config, seed).
class AdversarialWorkloadStream {
 public:
  AdversarialWorkloadStream(const AdversarialWorkloadConfig& config,
                            uint64_t seed);

  /// Generates the next epoch's transactions and advances drift state.
  Workload NextEpoch();

  size_t EpochsGenerated() const { return epoch_; }
  /// Whether the most recent NextEpoch() was a flash-crowd epoch.
  bool LastEpochWasFlash() const { return last_flash_; }
  /// Index (into the workload's contract list) of the most recent flash
  /// epoch's hot contract, or -1 if the last epoch was not a flash.
  int LastHotContract() const { return last_hot_; }

  const std::vector<Address>& ReturningSenders() const { return senders_; }
  /// Current home contract index of pool sender `i`.
  size_t HomeContractOf(size_t i) const { return home_.at(i); }

 private:
  AdversarialWorkloadConfig config_;
  Rng rng_;
  std::vector<Address> contracts_;
  std::vector<Address> senders_;   ///< Returning pool, fixed at birth.
  std::vector<size_t> home_;       ///< home_[i]: pool sender i's contract.
  std::vector<uint64_t> nonces_;   ///< Per pool-sender nonce counters.
  size_t epoch_ = 0;
  bool last_flash_ = false;
  int last_hot_ = -1;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_SIM_WORKLOAD_H_
