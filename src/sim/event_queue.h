#ifndef SHARDCHAIN_SIM_EVENT_QUEUE_H_
#define SHARDCHAIN_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "types/block.h"

namespace shardchain {

/// \brief Discrete-event simulation core: a virtual clock and a
/// time-ordered queue of callbacks.
///
/// Ties are broken by insertion order so runs are deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time (seconds).
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  void ScheduleIn(SimTime delay, Callback fn);

  /// Schedules `fn` at absolute time `when` (>= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Runs the earliest pending event; returns false when empty.
  bool Step();

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// Returns the number of events executed.
  size_t RunUntil(SimTime horizon);

  /// Drains the queue completely.
  size_t RunAll();

  bool Empty() const { return queue_.empty(); }
  size_t Pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_SIM_EVENT_QUEUE_H_
