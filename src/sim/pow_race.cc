#include "sim/pow_race.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace shardchain {

PowRaceResult RunPowRace(size_t num_txs, const PowRaceConfig& config,
                         Rng* rng) {
  assert(rng != nullptr);
  assert(config.num_miners > 0 && config.hashrate_per_miner > 0.0);

  PowRaceResult result;
  const double total_hashrate =
      config.hashrate_per_miner * static_cast<double>(config.num_miners);
  uint64_t difficulty =
      std::max(config.initial_difficulty, config.retarget_config.min_difficulty);

  // Warmup: the chain runs (and difficulty equilibrates) before the
  // measured transactions are injected.
  for (size_t b = 0; b < config.warmup_blocks && config.retarget; ++b) {
    const double mean = static_cast<double>(difficulty) / total_hashrate;
    const double interval = rng->Exponential(mean);
    difficulty =
        pow::NextDifficulty(difficulty, interval, config.retarget_config);
  }

  size_t pending = num_txs;
  SimTime now = 0.0;
  SimTime last_commit = -1e18;  // No commit yet.
  std::deque<double> recent_intervals;

  // The Poisson race: the next solution arrives after an exponential
  // with rate total_hashrate / difficulty; the finder's identity only
  // matters for non-greedy content, where each miner owns a partition
  // (identical in distribution, so it needs no explicit tracking).
  while (now < config.horizon_seconds) {
    const double mean_interval =
        static_cast<double>(difficulty) / total_hashrate;
    now += rng->Exponential(mean_interval);

    // A block found while the previous commit is still propagating
    // extends a stale tip.
    if (now - last_commit < config.propagation_delay) {
      if (config.greedy) {
        // The stale block duplicated the committed set: pure waste.
        ++result.stale_blocks;
        continue;
      }
      // Disjoint sets: the content is still fresh; the miner re-bases
      // and re-announces, losing only the propagation window. Model as
      // a commit shifted past the window.
      ++result.stale_blocks;
      now = last_commit + config.propagation_delay;
    }

    const double interval =
        last_commit < 0.0 ? config.retarget_config.target_interval
                          : now - last_commit;
    last_commit = now;
    ++result.chain_blocks;
    if (pending == 0) {
      ++result.empty_blocks;
    } else {
      const size_t take = std::min(config.txs_per_block, pending);
      pending -= take;
      result.txs_confirmed += take;
      if (pending == 0) {
        result.completion_time = now;
      }
    }
    if (config.retarget) {
      difficulty =
          pow::NextDifficulty(difficulty, interval, config.retarget_config);
    }
    recent_intervals.push_back(interval);
    if (recent_intervals.size() > 20) recent_intervals.pop_front();

    if (pending == 0) break;
  }

  result.final_difficulty = difficulty;
  if (!recent_intervals.empty()) {
    double sum = 0.0;
    for (double i : recent_intervals) sum += i;
    result.tail_interval = sum / static_cast<double>(recent_intervals.size());
  }
  return result;
}

}  // namespace shardchain
