#ifndef SHARDCHAIN_CONTRACT_NAIVE_CLASSIFIER_H_
#define SHARDCHAIN_CONTRACT_NAIVE_CLASSIFIER_H_

#include <cstddef>
#include <vector>

#include "contract/callgraph.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief The baseline the call graph replaces (Sec. III-C).
///
/// "Trivially, since miners in the MaxShard record all the transactions
/// in the system, they can get the answer through checking the local
/// states of the system ... This will surely incur heavy query cost."
/// This class implements that trivial approach — keep the full
/// transaction history and scan it per query — so the call graph's
/// O(1) lookups can be compared against the O(history) scan
/// (bench_ext_callgraph; the paper leaves the call-graph design as
/// future work, and this pair quantifies why it matters).
class NaiveHistoryClassifier {
 public:
  NaiveHistoryClassifier() = default;

  /// Appends to the full history (what MaxShard miners store anyway).
  void Record(const Transaction& tx) { history_.push_back(tx); }

  /// Classification by scanning the entire history.
  SenderClass Classify(const Address& sender) const;

  /// Same contract-or-not decision as CallGraph::IsShardable, by scan.
  bool IsShardable(const Transaction& tx, Address* contract) const;

  size_t HistorySize() const { return history_.size(); }

 private:
  std::vector<Transaction> history_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CONTRACT_NAIVE_CLASSIFIER_H_
