#include "contract/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace shardchain {

namespace {

struct OpInfo {
  Op op;
  enum class Operand { kNone, kImm64, kImm8, kLabel } operand;
};

const std::map<std::string, OpInfo>& Mnemonics() {
  using Operand = OpInfo::Operand;
  static const auto* table = new std::map<std::string, OpInfo>{
      {"STOP", {Op::kStop, Operand::kNone}},
      {"PUSH", {Op::kPush, Operand::kImm64}},
      {"POP", {Op::kPop, Operand::kNone}},
      {"DUP", {Op::kDup, Operand::kNone}},
      {"SWAP", {Op::kSwap, Operand::kNone}},
      {"ADD", {Op::kAdd, Operand::kNone}},
      {"SUB", {Op::kSub, Operand::kNone}},
      {"MUL", {Op::kMul, Operand::kNone}},
      {"DIV", {Op::kDiv, Operand::kNone}},
      {"MOD", {Op::kMod, Operand::kNone}},
      {"LT", {Op::kLt, Operand::kNone}},
      {"GT", {Op::kGt, Operand::kNone}},
      {"LE", {Op::kLe, Operand::kNone}},
      {"GE", {Op::kGe, Operand::kNone}},
      {"EQ", {Op::kEq, Operand::kNone}},
      {"NEQ", {Op::kNeq, Operand::kNone}},
      {"AND", {Op::kAnd, Operand::kNone}},
      {"OR", {Op::kOr, Operand::kNone}},
      {"NOT", {Op::kNot, Operand::kNone}},
      {"JUMP", {Op::kJump, Operand::kLabel}},
      {"JUMPI", {Op::kJumpI, Operand::kLabel}},
      {"REQUIRE", {Op::kRequire, Operand::kNone}},
      {"REVERT", {Op::kRevert, Operand::kNone}},
      {"ARG", {Op::kArg, Operand::kImm8}},
      {"CALLVALUE", {Op::kCallValue, Operand::kNone}},
      {"CALLERBALANCE", {Op::kCallerBalance, Operand::kNone}},
      {"PARTYBALANCE", {Op::kPartyBalance, Operand::kImm8}},
      {"SELFBALANCE", {Op::kSelfBalance, Operand::kNone}},
      {"SLOAD", {Op::kSLoad, Operand::kNone}},
      {"SSTORE", {Op::kSStore, Operand::kNone}},
      {"TRANSFER", {Op::kTransfer, Operand::kNone}},
      {"TRANSFERCALLER", {Op::kTransferCaller, Operand::kNone}},
  };
  return *table;
}

struct Line {
  std::string mnemonic;  // Empty for label-only lines.
  std::string operand;
  std::string label;     // Defined label, if the line is "name:".
  int number = 0;
};

std::string Strip(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

Result<std::vector<Line>> Tokenize(std::string_view source) {
  std::vector<Line> lines;
  int number = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    const size_t nl = source.find('\n', pos);
    std::string_view raw = source.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;
    ++number;

    const size_t comment = raw.find(';');
    if (comment != std::string_view::npos) raw = raw.substr(0, comment);
    std::string text = Strip(raw);
    if (text.empty()) continue;

    Line line;
    line.number = number;
    if (text.back() == ':') {
      line.label = Strip(std::string_view(text).substr(0, text.size() - 1));
      if (line.label.empty()) {
        return Status::InvalidArgument("empty label at line " +
                                       std::to_string(number));
      }
      lines.push_back(std::move(line));
      continue;
    }
    std::istringstream iss(text);
    iss >> line.mnemonic;
    iss >> line.operand;
    std::string extra;
    if (iss >> extra) {
      return Status::InvalidArgument("trailing tokens at line " +
                                     std::to_string(number));
    }
    for (char& c : line.mnemonic) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

size_t InstructionSize(const OpInfo& info) {
  switch (info.operand) {
    case OpInfo::Operand::kNone:
      return 1;
    case OpInfo::Operand::kImm8:
      return 2;
    case OpInfo::Operand::kLabel:
      return 3;
    case OpInfo::Operand::kImm64:
      return 9;
  }
  return 1;
}

}  // namespace

Result<Bytes> Assemble(std::string_view source) {
  std::vector<Line> lines;
  SHARDCHAIN_ASSIGN_OR_RETURN(lines, Tokenize(source));

  // Pass 1: label offsets.
  std::map<std::string, size_t> labels;
  size_t offset = 0;
  for (const Line& line : lines) {
    if (!line.label.empty()) {
      if (labels.count(line.label) > 0) {
        return Status::InvalidArgument("duplicate label '" + line.label +
                                       "' at line " +
                                       std::to_string(line.number));
      }
      labels[line.label] = offset;
      continue;
    }
    auto it = Mnemonics().find(line.mnemonic);
    if (it == Mnemonics().end()) {
      return Status::InvalidArgument("unknown mnemonic '" + line.mnemonic +
                                     "' at line " + std::to_string(line.number));
    }
    offset += InstructionSize(it->second);
  }
  if (offset > 0xffff) {
    return Status::OutOfRange("program exceeds 64 KiB jump-address space");
  }

  // Pass 2: emit.
  Bytes code;
  code.reserve(offset);
  for (const Line& line : lines) {
    if (!line.label.empty()) continue;
    const OpInfo& info = Mnemonics().at(line.mnemonic);
    code.push_back(static_cast<uint8_t>(info.op));
    switch (info.operand) {
      case OpInfo::Operand::kNone:
        if (!line.operand.empty()) {
          return Status::InvalidArgument("unexpected operand at line " +
                                         std::to_string(line.number));
        }
        break;
      case OpInfo::Operand::kImm64: {
        if (line.operand.empty()) {
          return Status::InvalidArgument("missing immediate at line " +
                                         std::to_string(line.number));
        }
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(line.operand.c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0') {
          return Status::InvalidArgument("bad immediate '" + line.operand +
                                         "' at line " +
                                         std::to_string(line.number));
        }
        AppendUint64(&code, static_cast<uint64_t>(v));
        break;
      }
      case OpInfo::Operand::kImm8: {
        if (line.operand.empty()) {
          return Status::InvalidArgument("missing index at line " +
                                         std::to_string(line.number));
        }
        char* end = nullptr;
        const long v = std::strtol(line.operand.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || v < 0 || v > 255) {
          return Status::InvalidArgument("bad 8-bit index at line " +
                                         std::to_string(line.number));
        }
        code.push_back(static_cast<uint8_t>(v));
        break;
      }
      case OpInfo::Operand::kLabel: {
        auto it = labels.find(line.operand);
        if (it == labels.end()) {
          return Status::InvalidArgument("undefined label '" + line.operand +
                                         "' at line " +
                                         std::to_string(line.number));
        }
        code.push_back(static_cast<uint8_t>(it->second >> 8));
        code.push_back(static_cast<uint8_t>(it->second & 0xff));
        break;
      }
    }
  }
  return code;
}

Result<std::string> Disassemble(const Bytes& code) {
  std::ostringstream out;
  size_t pc = 0;
  while (pc < code.size()) {
    const Op op = static_cast<Op>(code[pc]);
    bool known = false;
    OpInfo info{op, OpInfo::Operand::kNone};
    for (const auto& [name, i] : Mnemonics()) {
      if (i.op == op) {
        known = true;
        info = i;
        break;
      }
    }
    if (!known) {
      return Status::Corruption("invalid opcode at offset " +
                                std::to_string(pc));
    }
    out << pc << ": " << OpName(op);
    const size_t size = InstructionSize(info);
    if (pc + size > code.size()) {
      return Status::Corruption("truncated instruction at offset " +
                                std::to_string(pc));
    }
    switch (info.operand) {
      case OpInfo::Operand::kNone:
        break;
      case OpInfo::Operand::kImm8:
        out << " " << static_cast<int>(code[pc + 1]);
        break;
      case OpInfo::Operand::kLabel:
        out << " " << ((code[pc + 1] << 8) | code[pc + 2]);
        break;
      case OpInfo::Operand::kImm64: {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v = (v << 8) | code[pc + 1 + i];
        out << " " << static_cast<int64_t>(v);
        break;
      }
    }
    out << "\n";
    pc += size;
  }
  return out.str();
}

}  // namespace shardchain
