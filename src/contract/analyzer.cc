#include "contract/analyzer.h"

#include <algorithm>
#include <map>
#include <set>

namespace shardchain {

namespace {

struct Instruction {
  size_t offset = 0;
  Op op = Op::kStop;
  size_t size = 1;
  uint16_t jump_target = 0;  // For kJump / kJumpI.
  uint8_t index = 0;         // For kArg / kPartyBalance.
};

struct StackEffect {
  int pops = 0;
  int pushes = 0;
};

std::optional<StackEffect> EffectOf(Op op) {
  switch (op) {
    case Op::kStop:
    case Op::kRevert:
    case Op::kJump:
      return StackEffect{0, 0};
    case Op::kPush:
    case Op::kArg:
    case Op::kCallValue:
    case Op::kCallerBalance:
    case Op::kPartyBalance:
    case Op::kSelfBalance:
      return StackEffect{0, 1};
    case Op::kPop:
    case Op::kJumpI:
    case Op::kRequire:
    case Op::kTransferCaller:
      return StackEffect{1, 0};
    case Op::kDup:
      return StackEffect{1, 2};
    case Op::kSwap:
      return StackEffect{2, 2};
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kEq:
    case Op::kNeq:
    case Op::kAnd:
    case Op::kOr:
      return StackEffect{2, 1};
    case Op::kNot:
      return StackEffect{1, 1};
    case Op::kSLoad:
      return StackEffect{1, 1};
    case Op::kSStore:
    case Op::kTransfer:
      return StackEffect{2, 0};
  }
  return std::nullopt;
}

size_t InstructionSize(Op op) {
  switch (op) {
    case Op::kPush:
      return 9;
    case Op::kJump:
    case Op::kJumpI:
      return 3;
    case Op::kArg:
    case Op::kPartyBalance:
      return 2;
    default:
      return 1;
  }
}

uint64_t GasOf(Op op) {
  switch (op) {
    case Op::kCallerBalance:
    case Op::kPartyBalance:
    case Op::kSelfBalance:
    case Op::kSLoad:
    case Op::kSStore:
    case Op::kTransfer:
    case Op::kTransferCaller:
      return Vm::kGasPerOp + Vm::kGasPerStateOp;
    default:
      return Vm::kGasPerOp;
  }
}

/// Possible stack depths at an instruction entry, as an interval.
struct DepthRange {
  int lo = 0;
  int hi = 0;
  bool reached = false;
};

}  // namespace

AnalysisReport AnalyzeProgram(const ContractProgram& program) {
  AnalysisReport report;
  const Bytes& code = program.code;

  // --- Pass 1: decode ----------------------------------------------------
  std::vector<Instruction> instrs;
  std::map<size_t, size_t> index_of_offset;  // offset -> instrs index.
  size_t pc = 0;
  while (pc < code.size()) {
    Instruction ins;
    ins.offset = pc;
    ins.op = static_cast<Op>(code[pc]);
    if (!EffectOf(ins.op).has_value()) {
      report.errors.push_back("invalid opcode at offset " +
                              std::to_string(pc));
      return report;
    }
    ins.size = InstructionSize(ins.op);
    if (pc + ins.size > code.size()) {
      report.errors.push_back("truncated instruction at offset " +
                              std::to_string(pc));
      return report;
    }
    if (ins.op == Op::kJump || ins.op == Op::kJumpI) {
      ins.jump_target = static_cast<uint16_t>((code[pc + 1] << 8) |
                                              code[pc + 2]);
    }
    if (ins.op == Op::kArg || ins.op == Op::kPartyBalance) {
      ins.index = code[pc + 1];
    }
    index_of_offset[pc] = instrs.size();
    instrs.push_back(ins);
    pc += ins.size;
  }

  // --- Pass 2: structural checks ------------------------------------------
  for (const Instruction& ins : instrs) {
    if (ins.op == Op::kJump || ins.op == Op::kJumpI) {
      if (ins.jump_target != code.size() &&
          index_of_offset.count(ins.jump_target) == 0) {
        report.errors.push_back("jump to mid-instruction offset " +
                                std::to_string(ins.jump_target));
      }
    }
    if (ins.op == Op::kPartyBalance && ins.index >= program.parties.size()) {
      report.errors.push_back("party index " + std::to_string(ins.index) +
                              " out of range at offset " +
                              std::to_string(ins.offset));
    }
    if (ins.op == Op::kArg) {
      report.required_args =
          std::max(report.required_args, static_cast<size_t>(ins.index) + 1);
    }
  }
  if (!report.errors.empty()) return report;

  // --- Pass 3: abstract interpretation of stack depths ---------------------
  const size_t n = instrs.size();
  std::vector<DepthRange> entry(n);
  if (n > 0) {
    entry[0] = DepthRange{0, 0, true};
  }
  auto successor_indices = [&](size_t i) {
    std::vector<size_t> out;
    const Instruction& ins = instrs[i];
    const bool falls_through = ins.op != Op::kStop && ins.op != Op::kRevert &&
                               ins.op != Op::kJump;
    if (falls_through && i + 1 < n) out.push_back(i + 1);
    if (ins.op == Op::kJump || ins.op == Op::kJumpI) {
      if (ins.jump_target != code.size()) {
        out.push_back(index_of_offset.at(ins.jump_target));
      }
    }
    return out;
  };

  bool changed = true;
  size_t sweeps = 0;
  while (changed && sweeps < n + 8) {
    changed = false;
    ++sweeps;
    for (size_t i = 0; i < n; ++i) {
      if (!entry[i].reached) continue;
      const StackEffect effect = *EffectOf(instrs[i].op);
      if (entry[i].lo < effect.pops) report.may_underflow = true;
      const int out_lo = std::max(entry[i].lo - effect.pops, 0) + effect.pushes;
      const int out_hi = std::max(entry[i].hi - effect.pops, 0) + effect.pushes;
      report.max_stack = std::max(report.max_stack,
                                  static_cast<size_t>(std::max(out_hi, 0)));
      for (size_t succ : successor_indices(i)) {
        DepthRange merged = entry[succ];
        if (!merged.reached) {
          merged = DepthRange{out_lo, out_hi, true};
        } else {
          merged.lo = std::min(merged.lo, out_lo);
          merged.hi = std::max(merged.hi, out_hi);
        }
        if (merged.lo != entry[succ].lo || merged.hi != entry[succ].hi ||
            !entry[succ].reached) {
          entry[succ] = merged;
          changed = true;
        }
      }
    }
  }

  // --- Pass 4: cycle detection + gas bound ---------------------------------
  std::vector<int> color(n, 0);  // 0 white, 1 grey, 2 black.
  std::vector<uint64_t> gas_to_end(n, 0);
  // Iterative DFS for cycles.
  for (size_t start = 0; start < n && !report.has_loops; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::pair<size_t, size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto succs = successor_indices(node);
      if (child < succs.size()) {
        const size_t next = succs[child++];
        if (color[next] == 1) {
          report.has_loops = true;
          break;
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  if (!report.has_loops && n > 0) {
    // Longest-path DP in reverse instruction order works because all
    // jumps in an acyclic program go forward... not necessarily; use
    // memoized recursion instead.
    std::vector<int8_t> done(n, 0);
    std::vector<size_t> order;
    std::vector<std::pair<size_t, size_t>> stack{{0, 0}};
    // Topological order via DFS finish times from entry.
    std::vector<int8_t> visited(n, 0);
    visited[0] = 1;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto succs = successor_indices(node);
      if (child < succs.size()) {
        const size_t next = succs[child++];
        if (!visited[next]) {
          visited[next] = 1;
          stack.emplace_back(next, 0);
        }
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
    for (size_t node : order) {  // Finish order = reverse topological.
      uint64_t best = 0;
      for (size_t succ : successor_indices(node)) {
        best = std::max(best, gas_to_end[succ]);
      }
      gas_to_end[node] = GasOf(instrs[node].op) + best;
      (void)done;
    }
    report.gas_upper_bound = gas_to_end[0];
  }

  report.valid = report.errors.empty();
  return report;
}

std::optional<PartyFootprint> AnalyzePartyFootprint(
    const ContractProgram& program) {
  const Bytes& code = program.code;
  PartyFootprint fp;
  size_t pc = 0;
  while (pc < code.size()) {
    const Op op = static_cast<Op>(code[pc]);
    if (!EffectOf(op).has_value()) return std::nullopt;
    const size_t size = InstructionSize(op);
    if (pc + size > code.size()) return std::nullopt;
    if (op == Op::kTransfer) fp.all_parties = true;
    if (op == Op::kPartyBalance) fp.party_indices.push_back(code[pc + 1]);
    pc += size;
  }
  std::sort(fp.party_indices.begin(), fp.party_indices.end());
  fp.party_indices.erase(
      std::unique(fp.party_indices.begin(), fp.party_indices.end()),
      fp.party_indices.end());
  return fp;
}

Status ValidateProgram(const ContractProgram& program) {
  const AnalysisReport report = AnalyzeProgram(program);
  if (!report.valid) {
    return Status::InvalidArgument("contract rejected: " +
                                   (report.errors.empty()
                                        ? std::string("structural error")
                                        : report.errors.front()));
  }
  if (report.may_underflow) {
    return Status::InvalidArgument(
        "contract rejected: possible stack underflow");
  }
  if (report.max_stack > Vm::kMaxStack) {
    return Status::InvalidArgument("contract rejected: stack depth bound " +
                                   std::to_string(report.max_stack) +
                                   " exceeds VM limit");
  }
  return Status::OK();
}

}  // namespace shardchain
