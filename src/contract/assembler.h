#ifndef SHARDCHAIN_CONTRACT_ASSEMBLER_H_
#define SHARDCHAIN_CONTRACT_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "contract/vm.h"

namespace shardchain {

/// \brief Assembles contract-VM text into bytecode.
///
/// Grammar (one instruction per line):
///   - `MNEMONIC [operand]`, e.g. `PUSH 42`, `ARG 0`, `PARTYBALANCE 1`
///   - labels: `name:` on their own line; `JUMP name` / `JUMPI name`
///   - comments: `;` to end of line; blank lines ignored
///
/// Immediates are decimal (PUSH accepts negatives). Two passes: first
/// collects label offsets, second emits code.
Result<Bytes> Assemble(std::string_view source);

/// \brief Disassembles bytecode back to one-instruction-per-line text
/// (absolute jump targets; no label reconstruction). For debugging and
/// round-trip tests.
Result<std::string> Disassemble(const Bytes& code);

}  // namespace shardchain

#endif  // SHARDCHAIN_CONTRACT_ASSEMBLER_H_
