#include "contract/naive_classifier.h"

#include <set>

namespace shardchain {

SenderClass NaiveHistoryClassifier::Classify(const Address& sender) const {
  bool any = false;
  bool direct = false;
  std::set<Address> contracts;
  // The whole point of the baseline: every query walks the full
  // history.
  for (const Transaction& tx : history_) {
    if (tx.sender != sender) continue;
    any = true;
    switch (tx.kind) {
      case TxKind::kDirectTransfer:
        direct = true;
        break;
      case TxKind::kContractCall:
        contracts.insert(tx.recipient);
        break;
      case TxKind::kContractDeploy:
        break;
    }
  }
  if (!any) return SenderClass::kNoHistory;
  if (direct) return SenderClass::kDirect;
  if (contracts.size() >= 2) return SenderClass::kMultiContract;
  if (contracts.size() == 1) return SenderClass::kSingleContract;
  return SenderClass::kNoHistory;
}

bool NaiveHistoryClassifier::IsShardable(const Transaction& tx,
                                         Address* contract) const {
  if (tx.kind != TxKind::kContractCall || !tx.input_accounts.empty()) {
    return false;
  }
  const SenderClass base = Classify(tx.sender);
  if (base == SenderClass::kDirect || base == SenderClass::kMultiContract) {
    return false;
  }
  if (base == SenderClass::kSingleContract) {
    // One more scan to fetch the single contract.
    for (const Transaction& h : history_) {
      if (h.sender == tx.sender && h.kind == TxKind::kContractCall) {
        if (h.recipient != tx.recipient) return false;
        break;
      }
    }
  }
  if (contract != nullptr) *contract = tx.recipient;
  return true;
}

}  // namespace shardchain
