#include "contract/registry.h"

#include <cassert>
#include <string>

#include "contract/analyzer.h"
#include "contract/assembler.h"

namespace shardchain {

Result<Address> ContractRegistry::Deploy(StateDB* state,
                                         const Address& creator,
                                         const ContractProgram& program) {
  assert(state != nullptr);
  Account& creator_account = state->GetOrCreate(creator);
  const Address addr = Address::ForContract(creator, creator_account.nonce);
  ++creator_account.nonce;
  SHARDCHAIN_RETURN_IF_ERROR(state->DeployContract(addr,
                                                   program.Serialize()));
  return addr;
}

Result<Address> ContractRegistry::DeployChecked(
    StateDB* state, const Address& creator, const ContractProgram& program) {
  SHARDCHAIN_RETURN_IF_ERROR(ValidateProgram(program));
  return Deploy(state, creator, program);
}

Result<ContractProgram> ContractRegistry::Load(const StateDB& state,
                                               const Address& contract) {
  const Account* account = state.Find(contract);
  if (account == nullptr || !account->IsContract()) {
    return Status::NotFound("no contract at address " + contract.ToHex());
  }
  return ContractProgram::Deserialize(account->code);
}

Result<ExecReceipt> ContractRegistry::Call(StateDB* state,
                                           const Transaction& tx) {
  assert(state != nullptr);
  if (tx.kind != TxKind::kContractCall) {
    return Status::InvalidArgument("transaction is not a contract call");
  }
  ContractProgram program;
  SHARDCHAIN_ASSIGN_OR_RETURN(program, Load(*state, tx.recipient));
  CallContext ctx;
  ctx.contract = tx.recipient;
  ctx.caller = tx.sender;
  ctx.call_value = tx.value;
  ctx.gas_limit = tx.gas_limit;
  SHARDCHAIN_ASSIGN_OR_RETURN(ctx.args, Vm::DecodeArgs(tx.payload));
  return Vm::Execute(program, ctx, state);
}

namespace contracts {

namespace {

/// Assembles trusted template source; aborts on programming errors.
Bytes MustAssemble(const std::string& source) {
  Result<Bytes> code = Assemble(source);
  assert(code.ok() && "template assembly failed");
  return std::move(code).value();
}

}  // namespace

ContractProgram UnconditionalTransfer(const Address& destination) {
  ContractProgram program;
  program.parties = {destination};
  program.code = MustAssemble(
      "CALLVALUE\n"   // amount = value sent with the call
      "PUSH 0\n"      // party 0 = destination
      "TRANSFER\n"
      "STOP\n");
  return program;
}

ContractProgram ConditionalTransfer(const Address& recipient,
                                    Amount threshold) {
  ContractProgram program;
  program.parties = {recipient};
  program.code = MustAssemble(
      "PARTYBALANCE 0\n"
      "PUSH " + std::to_string(threshold) + "\n"
      "LT\n"
      "REQUIRE\n"     // revert unless balance(recipient) < threshold
      "CALLVALUE\n"
      "PUSH 0\n"
      "TRANSFER\n"
      "STOP\n");
  return program;
}

ContractProgram Escrow(const Address& beneficiary) {
  ContractProgram program;
  program.parties = {beneficiary};
  program.code = MustAssemble(
      "ARG 0\n"
      "PUSH 1\n"
      "EQ\n"
      "JUMPI release\n"
      // Deposit path: slot0 += call value.
      "PUSH 0\n"
      "SLOAD\n"
      "CALLVALUE\n"
      "ADD\n"
      "PUSH 0\n"
      "SSTORE\n"
      "STOP\n"
      "release:\n"
      // Release path: pay out slot0 to the beneficiary, zero the slot.
      "PUSH 0\n"
      "SLOAD\n"
      "PUSH 0\n"
      "TRANSFER\n"
      "PUSH 0\n"      // value 0
      "PUSH 0\n"      // key 0
      "SSTORE\n"
      "STOP\n");
  return program;
}

ContractProgram Token(const std::vector<Address>& parties) {
  ContractProgram program;
  program.parties = parties;
  // Storage slot i = token balance of party i.
  // arg0: 0 = buy (credit CALLVALUE tokens to party arg1)
  //       1 = move arg1 tokens from party arg2 to party arg3
  //       2 = redeem arg1 tokens of party arg2 for coins
  program.code = MustAssemble(
      "ARG 0\n"
      "PUSH 1\n"
      "EQ\n"
      "JUMPI move\n"
      "ARG 0\n"
      "PUSH 2\n"
      "EQ\n"
      "JUMPI redeem\n"
      // Buy: slot[arg1] += CALLVALUE.
      "ARG 1\n"
      "SLOAD\n"
      "CALLVALUE\n"
      "ADD\n"
      "ARG 1\n"
      "SSTORE\n"
      "STOP\n"
      "move:\n"
      // Require slot[arg2] >= arg1.
      "ARG 2\n"
      "SLOAD\n"
      "ARG 1\n"
      "GE\n"
      "REQUIRE\n"
      // slot[arg2] -= arg1.
      "ARG 2\n"
      "SLOAD\n"
      "ARG 1\n"
      "SUB\n"
      "ARG 2\n"
      "SSTORE\n"
      // slot[arg3] += arg1.
      "ARG 3\n"
      "SLOAD\n"
      "ARG 1\n"
      "ADD\n"
      "ARG 3\n"
      "SSTORE\n"
      "STOP\n"
      "redeem:\n"
      // Require slot[arg2] >= arg1, burn, then pay coins to the party.
      "ARG 2\n"
      "SLOAD\n"
      "ARG 1\n"
      "GE\n"
      "REQUIRE\n"
      "ARG 2\n"
      "SLOAD\n"
      "ARG 1\n"
      "SUB\n"
      "ARG 2\n"
      "SSTORE\n"
      "ARG 1\n"
      "ARG 2\n"
      "TRANSFER\n"
      "STOP\n");
  return program;
}

ContractProgram Crowdfund(const Address& owner, Amount goal) {
  ContractProgram program;
  program.parties = {owner};
  program.code = MustAssemble(
      "ARG 0\n"
      "PUSH 1\n"
      "EQ\n"
      "JUMPI claim\n"
      // Pledge: slot0 += CALLVALUE.
      "PUSH 0\n"
      "SLOAD\n"
      "CALLVALUE\n"
      "ADD\n"
      "PUSH 0\n"
      "SSTORE\n"
      "STOP\n"
      "claim:\n"
      // Require slot0 >= goal, pay the pot to the owner, reset.
      "PUSH 0\n"
      "SLOAD\n"
      "PUSH " + std::to_string(goal) + "\n"
      "GE\n"
      "REQUIRE\n"
      "PUSH 0\n"
      "SLOAD\n"
      "PUSH 0\n"
      "TRANSFER\n"
      "PUSH 0\n"
      "PUSH 0\n"
      "SSTORE\n"
      "STOP\n");
  return program;
}

}  // namespace contracts

}  // namespace shardchain
