#ifndef SHARDCHAIN_CONTRACT_REGISTRY_H_
#define SHARDCHAIN_CONTRACT_REGISTRY_H_

#include <vector>

#include "common/result.h"
#include "contract/vm.h"
#include "state/statedb.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief Deploys contracts into a StateDB and dispatches contract-call
/// transactions to the VM.
///
/// Stateless utility API: the authoritative store is the StateDB's
/// account code, so every miner sees the same contracts.
class ContractRegistry {
 public:
  /// Deploys `program` from `creator` (consumes one creator nonce) and
  /// returns the new contract's address.
  static Result<Address> Deploy(StateDB* state, const Address& creator,
                                const ContractProgram& program);

  /// Deploy with static analysis first (contract/analyzer.h): rejects
  /// structurally invalid or underflowing programs before they reach
  /// the chain.
  static Result<Address> DeployChecked(StateDB* state, const Address& creator,
                                       const ContractProgram& program);

  /// Executes a kContractCall transaction against the state. Loads the
  /// program from the recipient account, decodes args from the payload,
  /// transfers the call value in, and runs the code. Nonce bookkeeping
  /// belongs to block execution, not here.
  static Result<ExecReceipt> Call(StateDB* state, const Transaction& tx);

  /// Loads and parses the program stored at `contract`.
  static Result<ContractProgram> Load(const StateDB& state,
                                      const Address& contract);
};

/// Standard contract templates used by the evaluation and examples.
/// All are assembled from contract-VM source (see registry.cc), the way
/// the paper's testbed "registers multiple smart contracts" (Sec. VI-A).
namespace contracts {

/// "Records an unconditional transaction that transfers money to a
/// specified destination" (Sec. VI-A): forwards the full call value to
/// `destination`.
ContractProgram UnconditionalTransfer(const Address& destination);

/// The paper's motivating example (Sec. II-A): forwards the call value
/// to `recipient` only if recipient's balance is below `threshold`;
/// reverts otherwise (caller keeps the funds).
ContractProgram ConditionalTransfer(const Address& recipient,
                                    Amount threshold);

/// A stateful two-party escrow: arg0 selects the action
/// (0 = deposit call value and record it in storage slot 0;
///  1 = release everything recorded so far to the beneficiary).
ContractProgram Escrow(const Address& beneficiary);

/// A minimal token ledger over the fixed party list: storage slot i
/// holds party i's token balance. arg0 selects the action:
///   0 = buy: credit `call value` tokens to party arg1;
///   1 = move: transfer arg1 tokens from party arg2 to party arg3
///       (reverts if arg2's balance is insufficient);
///   2 = redeem: burn arg1 tokens of party arg2 and pay that many
///       coins from the contract to the same party.
ContractProgram Token(const std::vector<Address>& parties);

/// A crowdfunding campaign: pledges (action 0) accumulate the call
/// value in slot 0; the owner claim (action 1) pays the whole pot to
/// party 0 only once the goal is reached, and reverts otherwise.
ContractProgram Crowdfund(const Address& owner, Amount goal);

}  // namespace contracts

}  // namespace shardchain

#endif  // SHARDCHAIN_CONTRACT_REGISTRY_H_
