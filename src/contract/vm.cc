#include "contract/vm.h"

#include <cassert>
#include <cstddef>

namespace shardchain {

namespace {

/// Reads a big-endian signed 64-bit immediate.
int64_t ReadImm64(const Bytes& code, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | code[offset + i];
  return static_cast<int64_t>(v);
}

/// Reads a big-endian unsigned 16-bit immediate.
uint16_t ReadImm16(const Bytes& code, size_t offset) {
  return static_cast<uint16_t>((code[offset] << 8) | code[offset + 1]);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kStop: return "STOP";
    case Op::kPush: return "PUSH";
    case Op::kPop: return "POP";
    case Op::kDup: return "DUP";
    case Op::kSwap: return "SWAP";
    case Op::kAdd: return "ADD";
    case Op::kSub: return "SUB";
    case Op::kMul: return "MUL";
    case Op::kDiv: return "DIV";
    case Op::kMod: return "MOD";
    case Op::kLt: return "LT";
    case Op::kGt: return "GT";
    case Op::kLe: return "LE";
    case Op::kGe: return "GE";
    case Op::kEq: return "EQ";
    case Op::kNeq: return "NEQ";
    case Op::kAnd: return "AND";
    case Op::kOr: return "OR";
    case Op::kNot: return "NOT";
    case Op::kJump: return "JUMP";
    case Op::kJumpI: return "JUMPI";
    case Op::kRequire: return "REQUIRE";
    case Op::kRevert: return "REVERT";
    case Op::kArg: return "ARG";
    case Op::kCallValue: return "CALLVALUE";
    case Op::kCallerBalance: return "CALLERBALANCE";
    case Op::kPartyBalance: return "PARTYBALANCE";
    case Op::kSelfBalance: return "SELFBALANCE";
    case Op::kSLoad: return "SLOAD";
    case Op::kSStore: return "SSTORE";
    case Op::kTransfer: return "TRANSFER";
    case Op::kTransferCaller: return "TRANSFERCALLER";
  }
  return "INVALID";
}

Bytes ContractProgram::Serialize() const {
  Bytes out;
  out.reserve(12 + parties.size() * 20 + code.size());
  AppendUint32(&out, static_cast<uint32_t>(parties.size()));
  for (const Address& p : parties) {
    out.insert(out.end(), p.bytes.begin(), p.bytes.end());
  }
  AppendUint64(&out, code.size());
  out.insert(out.end(), code.begin(), code.end());
  return out;
}

Result<ContractProgram> ContractProgram::Deserialize(const Bytes& raw) {
  if (raw.size() < 4) return Status::Corruption("contract blob too short");
  uint32_t party_count = 0;
  for (int i = 0; i < 4; ++i) party_count = (party_count << 8) | raw[i];
  size_t offset = 4;
  if (raw.size() < offset + static_cast<size_t>(party_count) * 20 + 8) {
    return Status::Corruption("contract blob truncated in party list");
  }
  ContractProgram program;
  program.parties.resize(party_count);
  for (uint32_t i = 0; i < party_count; ++i) {
    for (int j = 0; j < 20; ++j) {
      program.parties[i].bytes[j] = raw[offset++];
    }
  }
  const uint64_t code_len = ReadUint64(raw, offset);
  offset += 8;
  if (raw.size() < offset + code_len) {
    return Status::Corruption("contract blob truncated in code");
  }
  program.code.assign(raw.begin() + static_cast<ptrdiff_t>(offset),
                      raw.begin() + static_cast<ptrdiff_t>(offset + code_len));
  return program;
}

Bytes Vm::EncodeArgs(const std::vector<int64_t>& args) {
  Bytes out;
  out.reserve(args.size() * 8);
  for (int64_t a : args) AppendUint64(&out, static_cast<uint64_t>(a));
  return out;
}

Result<std::vector<int64_t>> Vm::DecodeArgs(const Bytes& payload) {
  if (payload.size() % 8 != 0) {
    return Status::InvalidArgument("call payload not a multiple of 8 bytes");
  }
  std::vector<int64_t> args;
  args.reserve(payload.size() / 8);
  for (size_t i = 0; i < payload.size(); i += 8) {
    args.push_back(static_cast<int64_t>(ReadUint64(payload, i)));
  }
  return args;
}

Result<ExecReceipt> Vm::Execute(const ContractProgram& program,
                                const CallContext& ctx, StateDB* state) {
  assert(state != nullptr);
  // Journaled revert point: O(1) to take, O(touched accounts) to roll
  // back — no full-state copy either way.
  const size_t snapshot = state->Snapshot();
  // Abort helper: rolls the state back and surfaces the error.
  auto fail = [&](Status st) -> Result<ExecReceipt> {
    Status revert = state->RevertTo(snapshot);
    assert(revert.ok());
    (void)revert;
    return st;
  };
  // Success helper: keeps the effects and retires the revert point so
  // the undo log does not accumulate across calls.
  auto succeed = [&](uint64_t gas_used,
                     std::vector<int64_t> final_stack) -> Result<ExecReceipt> {
    Status committed = state->Commit(snapshot);
    assert(committed.ok());
    (void)committed;
    return ExecReceipt{gas_used, std::move(final_stack)};
  };

  // The call value moves into the contract before the code runs.
  if (ctx.call_value > 0) {
    Status st = state->Transfer(ctx.caller, ctx.contract, ctx.call_value);
    if (!st.ok()) return fail(st);
  }

  const Bytes& code = program.code;
  std::vector<int64_t> stack;
  uint64_t gas = 0;
  uint64_t steps = 0;
  size_t pc = 0;

  auto pop = [&](int64_t* out) -> bool {
    if (stack.empty()) return false;
    *out = stack.back();
    stack.pop_back();
    return true;
  };
  auto push = [&](int64_t v) -> bool {
    if (stack.size() >= kMaxStack) return false;
    stack.push_back(v);
    return true;
  };
  auto binary = [&](auto fn) -> Status {
    int64_t b = 0, a = 0;
    if (!pop(&b) || !pop(&a)) {
      return Status::Corruption("stack underflow");
    }
    if (!push(fn(a, b))) return Status::Corruption("stack overflow");
    return Status::OK();
  };

  while (pc < code.size()) {
    if (++steps > kMaxSteps) {
      return fail(Status::Internal("step limit exceeded"));
    }
    const Op op = static_cast<Op>(code[pc]);
    gas += kGasPerOp;
    if (gas > ctx.gas_limit) return fail(Status::Internal("out of gas"));
    if (ctx.tracer) {
      ctx.tracer(TraceStep{pc, op, stack.size(), gas});
    }

    switch (op) {
      case Op::kStop:
        return succeed(gas, std::move(stack));
      case Op::kPush: {
        if (pc + 9 > code.size()) {
          return fail(Status::Corruption("truncated PUSH immediate"));
        }
        if (!push(ReadImm64(code, pc + 1))) {
          return fail(Status::Corruption("stack overflow"));
        }
        pc += 9;
        continue;
      }
      case Op::kPop: {
        int64_t v;
        if (!pop(&v)) return fail(Status::Corruption("stack underflow"));
        break;
      }
      case Op::kDup: {
        if (stack.empty()) return fail(Status::Corruption("stack underflow"));
        if (!push(stack.back())) {
          return fail(Status::Corruption("stack overflow"));
        }
        break;
      }
      case Op::kSwap: {
        if (stack.size() < 2) {
          return fail(Status::Corruption("stack underflow"));
        }
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      }
      case Op::kAdd: {
        Status st = binary([](int64_t a, int64_t b) {
          return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                      static_cast<uint64_t>(b));
        });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kSub: {
        Status st = binary([](int64_t a, int64_t b) {
          return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                      static_cast<uint64_t>(b));
        });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kMul: {
        Status st = binary([](int64_t a, int64_t b) {
          return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                      static_cast<uint64_t>(b));
        });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kDiv: {
        int64_t b = 0, a = 0;
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Corruption("stack underflow"));
        }
        if (b == 0) return fail(Status::FailedPrecondition("division by zero"));
        if (!push(a / b)) return fail(Status::Corruption("stack overflow"));
        break;
      }
      case Op::kMod: {
        int64_t b = 0, a = 0;
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Corruption("stack underflow"));
        }
        if (b == 0) return fail(Status::FailedPrecondition("modulo by zero"));
        if (!push(a % b)) return fail(Status::Corruption("stack overflow"));
        break;
      }
      case Op::kLt: {
        Status st =
            binary([](int64_t a, int64_t b) -> int64_t { return a < b; });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kGt: {
        Status st =
            binary([](int64_t a, int64_t b) -> int64_t { return a > b; });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kLe: {
        Status st =
            binary([](int64_t a, int64_t b) -> int64_t { return a <= b; });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kGe: {
        Status st =
            binary([](int64_t a, int64_t b) -> int64_t { return a >= b; });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kEq: {
        Status st =
            binary([](int64_t a, int64_t b) -> int64_t { return a == b; });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kNeq: {
        Status st =
            binary([](int64_t a, int64_t b) -> int64_t { return a != b; });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kAnd: {
        Status st = binary([](int64_t a, int64_t b) -> int64_t {
          return (a != 0) && (b != 0);
        });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kOr: {
        Status st = binary([](int64_t a, int64_t b) -> int64_t {
          return (a != 0) || (b != 0);
        });
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kNot: {
        int64_t v;
        if (!pop(&v)) return fail(Status::Corruption("stack underflow"));
        if (!push(v == 0)) return fail(Status::Corruption("stack overflow"));
        break;
      }
      case Op::kJump: {
        if (pc + 3 > code.size()) {
          return fail(Status::Corruption("truncated JUMP target"));
        }
        const uint16_t target = ReadImm16(code, pc + 1);
        if (target > code.size()) {
          return fail(Status::Corruption("jump out of bounds"));
        }
        pc = target;
        continue;
      }
      case Op::kJumpI: {
        if (pc + 3 > code.size()) {
          return fail(Status::Corruption("truncated JUMPI target"));
        }
        int64_t cond;
        if (!pop(&cond)) return fail(Status::Corruption("stack underflow"));
        if (cond != 0) {
          const uint16_t target = ReadImm16(code, pc + 1);
          if (target > code.size()) {
            return fail(Status::Corruption("jump out of bounds"));
          }
          pc = target;
          continue;
        }
        pc += 3;
        continue;
      }
      case Op::kRequire: {
        int64_t cond;
        if (!pop(&cond)) return fail(Status::Corruption("stack underflow"));
        if (cond == 0) {
          return fail(Status::FailedPrecondition("contract condition failed"));
        }
        break;
      }
      case Op::kRevert:
        return fail(Status::FailedPrecondition("contract reverted"));
      case Op::kArg: {
        if (pc + 2 > code.size()) {
          return fail(Status::Corruption("truncated ARG index"));
        }
        const uint8_t idx = code[pc + 1];
        if (idx >= ctx.args.size()) {
          return fail(Status::OutOfRange("call argument index out of range"));
        }
        if (!push(ctx.args[idx])) {
          return fail(Status::Corruption("stack overflow"));
        }
        pc += 2;
        continue;
      }
      case Op::kCallValue: {
        if (!push(static_cast<int64_t>(ctx.call_value))) {
          return fail(Status::Corruption("stack overflow"));
        }
        break;
      }
      case Op::kCallerBalance: {
        gas += kGasPerStateOp;
        if (!push(static_cast<int64_t>(state->BalanceOf(ctx.caller)))) {
          return fail(Status::Corruption("stack overflow"));
        }
        break;
      }
      case Op::kPartyBalance: {
        if (pc + 2 > code.size()) {
          return fail(Status::Corruption("truncated PARTYBALANCE index"));
        }
        gas += kGasPerStateOp;
        const uint8_t idx = code[pc + 1];
        if (idx >= program.parties.size()) {
          return fail(Status::OutOfRange("party index out of range"));
        }
        if (!push(static_cast<int64_t>(
                state->BalanceOf(program.parties[idx])))) {
          return fail(Status::Corruption("stack overflow"));
        }
        pc += 2;
        continue;
      }
      case Op::kSelfBalance: {
        gas += kGasPerStateOp;
        if (!push(static_cast<int64_t>(state->BalanceOf(ctx.contract)))) {
          return fail(Status::Corruption("stack overflow"));
        }
        break;
      }
      case Op::kSLoad: {
        gas += kGasPerStateOp;
        int64_t key;
        if (!pop(&key)) return fail(Status::Corruption("stack underflow"));
        if (!push(state->StorageGet(ctx.contract,
                                    static_cast<uint64_t>(key)))) {
          return fail(Status::Corruption("stack overflow"));
        }
        break;
      }
      case Op::kSStore: {
        gas += kGasPerStateOp;
        int64_t value, key;
        if (!pop(&key) || !pop(&value)) {
          return fail(Status::Corruption("stack underflow"));
        }
        state->StorageSet(ctx.contract, static_cast<uint64_t>(key), value);
        break;
      }
      case Op::kTransfer: {
        gas += kGasPerStateOp;
        int64_t party_idx, amount;
        if (!pop(&party_idx) || !pop(&amount)) {
          return fail(Status::Corruption("stack underflow"));
        }
        if (party_idx < 0 ||
            static_cast<size_t>(party_idx) >= program.parties.size()) {
          return fail(Status::OutOfRange("transfer party out of range"));
        }
        if (amount < 0) {
          return fail(Status::InvalidArgument("negative transfer amount"));
        }
        Status st = state->Transfer(
            ctx.contract, program.parties[static_cast<size_t>(party_idx)],
            static_cast<Amount>(amount));
        if (!st.ok()) return fail(st);
        break;
      }
      case Op::kTransferCaller: {
        gas += kGasPerStateOp;
        int64_t amount;
        if (!pop(&amount)) return fail(Status::Corruption("stack underflow"));
        if (amount < 0) {
          return fail(Status::InvalidArgument("negative transfer amount"));
        }
        Status st = state->Transfer(ctx.contract, ctx.caller,
                                    static_cast<Amount>(amount));
        if (!st.ok()) return fail(st);
        break;
      }
      default:
        return fail(Status::Corruption("invalid opcode"));
    }
    ++pc;
  }
  // Falling off the end of the code is an implicit STOP.
  return succeed(gas, std::move(stack));
}

}  // namespace shardchain
