#ifndef SHARDCHAIN_CONTRACT_VM_H_
#define SHARDCHAIN_CONTRACT_VM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "state/statedb.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief Bytecode operations of the contract mini-VM.
///
/// The paper's contracts "record a transaction and the conditions under
/// which that transaction is valid" (Sec. II-A). This VM is a small
/// stack machine expressive enough for those conditional transfers:
/// balance reads, arithmetic/comparison on 64-bit integers, contract
/// storage, guarded aborts, and value transfers out of the contract.
enum class Op : uint8_t {
  kStop = 0x00,       ///< End execution successfully.
  kPush = 0x01,       ///< Push signed 64-bit immediate (8 bytes follow).
  kPop = 0x02,
  kDup = 0x03,        ///< Duplicate top of stack.
  kSwap = 0x04,       ///< Swap top two entries.

  kAdd = 0x10,
  kSub = 0x11,
  kMul = 0x12,
  kDiv = 0x13,        ///< Signed division; division by zero reverts.
  kMod = 0x14,

  kLt = 0x20,
  kGt = 0x21,
  kLe = 0x22,
  kGe = 0x23,
  kEq = 0x24,
  kNeq = 0x25,
  kAnd = 0x26,        ///< Logical and of two booleans (non-zero = true).
  kOr = 0x27,
  kNot = 0x28,

  kJump = 0x30,       ///< Unconditional jump (2-byte absolute offset).
  kJumpI = 0x31,      ///< Pop cond; jump if non-zero.
  kRequire = 0x32,    ///< Pop cond; revert if zero.
  kRevert = 0x33,     ///< Unconditional revert.

  kArg = 0x40,        ///< Push call argument n (1-byte index follows).
  kCallValue = 0x41,  ///< Push the value sent with the call.
  kCallerBalance = 0x42,
  kPartyBalance = 0x43,  ///< Push balance of party n (1-byte index).
  kSelfBalance = 0x44,   ///< Push the contract's own balance.
  kSLoad = 0x50,      ///< Pop key; push storage[key].
  kSStore = 0x51,     ///< Pop key, pop value; storage[key] = value.

  kTransfer = 0x60,       ///< Pop party index, pop amount; contract pays.
  kTransferCaller = 0x61, ///< Pop amount; contract pays the caller.
};

/// \brief A deployable contract: bytecode plus the fixed party list the
/// code may reference (recipients of conditional transfers).
struct ContractProgram {
  Bytes code;
  std::vector<Address> parties;

  /// Serializes to the on-chain account code representation.
  Bytes Serialize() const;

  /// Parses the on-chain representation; fails on truncation.
  static Result<ContractProgram> Deserialize(const Bytes& raw);
};

/// \brief Result of a successful contract execution.
struct ExecReceipt {
  uint64_t gas_used = 0;
  std::vector<int64_t> stack;  ///< Final stack (top = back), for tests.
};

/// \brief One executed instruction, as seen by the tracer.
struct TraceStep {
  size_t pc = 0;
  Op op = Op::kStop;
  size_t stack_depth_before = 0;  ///< Stack depth entering the op.
  uint64_t gas_after = 0;         ///< Cumulative gas after the op.
};

/// Optional per-instruction observer; installed via CallContext::tracer.
/// Called before each instruction executes.
using TraceFn = std::function<void(const TraceStep&)>;

/// \brief Per-call context handed to the VM.
struct CallContext {
  Address contract;            ///< The executing contract's address.
  Address caller;              ///< Transaction sender.
  Amount call_value = 0;       ///< Value transferred in with the call.
  std::vector<int64_t> args;   ///< Decoded call arguments.
  uint64_t gas_limit = 100000;
  /// Per-instruction observer for debugging/teaching; null = no trace.
  TraceFn tracer;
};

/// \brief The contract virtual machine.
///
/// `Execute` applies a program against a StateDB. The call value is
/// credited to the contract before the code runs; on revert (explicit,
/// failed Require, or any VM error) all state effects including the
/// value credit are rolled back and a non-OK status is returned.
class Vm {
 public:
  /// Gas charged per executed instruction.
  static constexpr uint64_t kGasPerOp = 3;
  /// Extra gas for state-touching ops (storage, transfer, balance).
  static constexpr uint64_t kGasPerStateOp = 20;
  /// Hard cap on stack depth.
  static constexpr size_t kMaxStack = 256;
  /// Hard cap on executed instructions (anti-loop belt-and-braces on
  /// top of gas).
  static constexpr uint64_t kMaxSteps = 1 << 20;

  /// Runs `program` under `ctx` mutating `state`. Reverting executions
  /// restore `state` exactly and return a non-OK status.
  static Result<ExecReceipt> Execute(const ContractProgram& program,
                                     const CallContext& ctx, StateDB* state);

  /// Encodes int64 call args into a transaction payload.
  static Bytes EncodeArgs(const std::vector<int64_t>& args);

  /// Decodes a transaction payload into call args.
  static Result<std::vector<int64_t>> DecodeArgs(const Bytes& payload);
};

/// Human-readable opcode name (for the disassembler and error text).
const char* OpName(Op op);

}  // namespace shardchain

#endif  // SHARDCHAIN_CONTRACT_VM_H_
