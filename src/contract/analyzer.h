#ifndef SHARDCHAIN_CONTRACT_ANALYZER_H_
#define SHARDCHAIN_CONTRACT_ANALYZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "contract/vm.h"

namespace shardchain {

/// \brief Result of static contract analysis.
struct AnalysisReport {
  /// Structural validity: every instruction decodes, immediates are in
  /// bounds, jump targets land on instruction boundaries, party/arg
  /// indices are within range.
  bool valid = false;
  std::vector<std::string> errors;

  /// Maximum stack depth any execution can reach (from abstract
  /// interpretation over the control-flow graph).
  size_t max_stack = 0;
  /// True if some path may pop from an empty stack.
  bool may_underflow = false;
  /// Number of call arguments the code may read (1 + max ARG index).
  size_t required_args = 0;
  /// True if the control-flow graph contains a cycle (then gas is the
  /// only termination bound).
  bool has_loops = false;
  /// Upper bound on gas for acyclic programs; nullopt when has_loops.
  std::optional<uint64_t> gas_upper_bound;
};

/// \brief Static analyzer for contract-VM programs.
///
/// Run before deployment (see ContractRegistry::DeployChecked) so that
/// structurally broken or underflowing contracts never reach the
/// chain — every miner can re-run the same analysis and reject blocks
/// deploying invalid code, in the spirit of the paper's "honest miners
/// verify and reject" stance (Sec. IV-C).
AnalysisReport AnalyzeProgram(const ContractProgram& program);

/// Convenience: OK iff the program analyzes as valid with no possible
/// stack underflow and all referenced parties/args resolvable.
Status ValidateProgram(const ContractProgram& program);

/// \brief Which of a program's parties a call may read or write, from a
/// static scan of its balance/transfer opcodes.
///
/// Used by the conflict-aware block builder (DESIGN.md §13) to bound a
/// contract call's account footprint beyond the always-touched caller
/// and contract accounts. `kTransfer` takes its party index from the
/// stack, so any occurrence makes every party potentially written
/// (`all_parties`); `kPartyBalance` carries a static immediate, so its
/// reads are listed exactly.
struct PartyFootprint {
  /// True when some execution may credit any party (dynamic kTransfer
  /// index): treat every party as written.
  bool all_parties = false;
  /// Party indices read via static kPartyBalance immediates, sorted and
  /// deduplicated. Meaningless when all_parties is set.
  std::vector<uint8_t> party_indices;
};

/// Returns the party footprint, or nullopt when the code does not
/// decode (the caller must then treat the footprint as unresolvable and
/// serialize the transaction).
std::optional<PartyFootprint> AnalyzePartyFootprint(
    const ContractProgram& program);

}  // namespace shardchain

#endif  // SHARDCHAIN_CONTRACT_ANALYZER_H_
