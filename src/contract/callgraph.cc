#include "contract/callgraph.h"

#include <algorithm>

namespace shardchain {

const char* SenderClassName(SenderClass c) {
  switch (c) {
    case SenderClass::kNoHistory:
      return "NoHistory";
    case SenderClass::kSingleContract:
      return "SingleContract";
    case SenderClass::kMultiContract:
      return "MultiContract";
    case SenderClass::kDirect:
      return "Direct";
  }
  return "Unknown";
}

void CallGraph::Record(const Transaction& tx) {
  UserInfo& info = users_[tx.sender];
  switch (tx.kind) {
    case TxKind::kContractCall:
      if (std::find(info.contracts.begin(), info.contracts.end(),
                    tx.recipient) == info.contracts.end()) {
        info.contracts.push_back(tx.recipient);
      }
      break;
    case TxKind::kDirectTransfer:
      info.has_direct = true;
      break;
    case TxKind::kContractDeploy:
      // Deploying does not make the deployer a *participant* in the
      // contract's transaction flow; it leaves the class unchanged.
      break;
  }
}

SenderClass CallGraph::Classify(const Address& sender) const {
  auto it = users_.find(sender);
  if (it == users_.end()) return SenderClass::kNoHistory;
  const UserInfo& info = it->second;
  if (info.has_direct) return SenderClass::kDirect;
  if (info.contracts.size() >= 2) return SenderClass::kMultiContract;
  if (info.contracts.size() == 1) return SenderClass::kSingleContract;
  return SenderClass::kNoHistory;
}

std::optional<Address> CallGraph::SingleContractOf(
    const Address& sender) const {
  auto it = users_.find(sender);
  if (it == users_.end()) return std::nullopt;
  const UserInfo& info = it->second;
  if (info.has_direct || info.contracts.size() != 1) return std::nullopt;
  return info.contracts.front();
}

SenderClass CallGraph::ClassifyWith(const Address& sender,
                                    const Transaction& tx) const {
  const SenderClass base = Classify(sender);
  if (base == SenderClass::kDirect) return base;
  if (tx.kind == TxKind::kDirectTransfer) return SenderClass::kDirect;
  if (tx.kind != TxKind::kContractCall) return base;
  switch (base) {
    case SenderClass::kNoHistory:
      return SenderClass::kSingleContract;
    case SenderClass::kSingleContract: {
      std::optional<Address> contract = SingleContractOf(sender);
      return (contract.has_value() && *contract == tx.recipient)
                 ? SenderClass::kSingleContract
                 : SenderClass::kMultiContract;
    }
    case SenderClass::kMultiContract:
      return SenderClass::kMultiContract;
    default:
      return base;
  }
}

bool CallGraph::IsShardable(const Transaction& tx, Address* contract) const {
  if (tx.kind != TxKind::kContractCall) return false;
  // Transactions needing extra account inputs require state outside the
  // contract's shard (the paper routes multi-input txs to the MaxShard,
  // Sec. VI-B2).
  if (!tx.input_accounts.empty()) return false;
  if (ClassifyWith(tx.sender, tx) != SenderClass::kSingleContract) {
    return false;
  }
  if (contract != nullptr) *contract = tx.recipient;
  return true;
}

std::vector<Address> CallGraph::ContractsOf(const Address& sender) const {
  auto it = users_.find(sender);
  if (it == users_.end()) return {};
  return it->second.contracts;
}

}  // namespace shardchain
