#ifndef SHARDCHAIN_CONTRACT_CALLGRAPH_H_
#define SHARDCHAIN_CONTRACT_CALLGRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

/// How a sender relates to the contract universe (Sec. II-C, Fig. 1).
enum class SenderClass : uint8_t {
  kNoHistory = 0,      ///< Never sent a transaction.
  kSingleContract = 1, ///< Only ever invoked one contract (Fig. 1a).
  kMultiContract = 2,  ///< Invoked two or more contracts (Fig. 1b).
  kDirect = 3,         ///< Has sent a direct user-to-user tx (Fig. 1c).
};

const char* SenderClassName(SenderClass c);

/// \brief The user/contract call graph miners maintain locally
/// (Sec. III-C) so that sender classification — "does this sender only
/// incorporate the current smart contract?" — is a local lookup instead
/// of a remote query over the whole history.
///
/// Edges: user → contract (contract call), user → user (direct
/// transfer). A user that ever issues a direct transfer, or that
/// touches a second contract, is permanently non-shardable and her
/// transactions route to the MaxShard.
class CallGraph {
 public:
  CallGraph() = default;

  /// Records a transaction's edges. Call for every transaction the
  /// miner accepts (the graph is append-only, like the history).
  void Record(const Transaction& tx);

  /// Classification from recorded history alone.
  SenderClass Classify(const Address& sender) const;

  /// The unique contract of a kSingleContract sender; nullopt for every
  /// other class.
  std::optional<Address> SingleContractOf(const Address& sender) const;

  /// Classification of `sender` *as if* `tx` had also been recorded —
  /// the check a miner runs on an incoming, not-yet-confirmed
  /// transaction.
  SenderClass ClassifyWith(const Address& sender, const Transaction& tx) const;

  /// True if `tx` can be validated inside the shard of one contract
  /// (sender remains single-contract after `tx`). On success,
  /// `*contract` receives that contract's address.
  bool IsShardable(const Transaction& tx, Address* contract) const;

  size_t UserCount() const { return users_.size(); }

  /// Contracts `sender` has invoked, in insertion order.
  std::vector<Address> ContractsOf(const Address& sender) const;

 private:
  struct UserInfo {
    /// Distinct contracts in insertion order. A sender touches a
    /// handful of contracts at most (two already makes her
    /// non-shardable), so a scanned vector beats a hash set AND keeps
    /// every traversal deterministic — classification feeds
    /// consensus-visible routing (Sec. III-A/III-C).
    std::vector<Address> contracts;
    bool has_direct = false;
  };

  /// Keyed lookups only; never iterated, so the unordered map cannot
  /// leak its ordering into consensus-visible output.
  /// detlint:allow(unordered-container): lookup-only, never iterated
  std::unordered_map<Address, UserInfo> users_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CONTRACT_CALLGRAPH_H_
