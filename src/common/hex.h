#ifndef SHARDCHAIN_COMMON_HEX_H_
#define SHARDCHAIN_COMMON_HEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace shardchain {

/// Byte buffer alias used across the codebase.
using Bytes = std::vector<uint8_t>;

/// Encodes `data` as lowercase hex (no 0x prefix).
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const Bytes& data);

/// Decodes a hex string (optionally 0x-prefixed, case-insensitive).
/// Fails on odd length or non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// Appends a 64-bit integer to `out` in big-endian byte order.
void AppendUint64(Bytes* out, uint64_t v);

/// Appends a 32-bit integer to `out` in big-endian byte order.
void AppendUint32(Bytes* out, uint32_t v);

/// Reads a big-endian 64-bit integer from `data` (must have >= 8 bytes
/// available at `offset`).
uint64_t ReadUint64(const Bytes& data, size_t offset);

}  // namespace shardchain

#endif  // SHARDCHAIN_COMMON_HEX_H_
