#ifndef SHARDCHAIN_COMMON_RNG_H_
#define SHARDCHAIN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace shardchain {

/// \brief Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64) plus the sampling distributions the simulator needs.
///
/// Every source of randomness in the library flows through an `Rng`
/// carrying an explicit seed, so simulations, games and tests are fully
/// reproducible. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64 so that any
  /// 64-bit seed (including 0) yields a well-mixed state.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, bound), bias-free (rejection sampling).
  /// `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Exponentially distributed double with the given mean (> 0). Used to
  /// model Proof-of-Work block-interval races.
  double Exponential(double mean);

  /// Binomial sample: number of successes in n trials of probability p.
  /// Exact inversion for small n, normal approximation for large n.
  uint32_t Binomial(uint32_t n, double p);

  /// Zipf-distributed integer in [1, n] with exponent `s` (> 0). Models
  /// skewed smart-contract popularity.
  uint32_t Zipf(uint32_t n, double s);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; used to hand each simulated
  /// miner its own stream without correlating draws.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// SplitMix64 step: advances *state and returns the next output. Exposed
/// because it is also the hash-mixing core used in a few places.
uint64_t SplitMix64(uint64_t* state);

}  // namespace shardchain

#endif  // SHARDCHAIN_COMMON_RNG_H_
