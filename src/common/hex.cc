#include "common/hex.h"

#include <cassert>

namespace shardchain {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string HexEncode(const Bytes& data) {
  return HexEncode(data.data(), data.size());
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void AppendUint64(Bytes* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void AppendUint32(Bytes* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

uint64_t ReadUint64(const Bytes& data, size_t offset) {
  assert(offset + 8 <= data.size());
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data[offset + i];
  return v;
}

}  // namespace shardchain
