#ifndef SHARDCHAIN_COMMON_STATUS_H_
#define SHARDCHAIN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace shardchain {

/// \brief Lightweight error-reporting type used instead of exceptions.
///
/// Mirrors the RocksDB / Arrow `Status` idiom: functions that can fail
/// return a `Status` (or a `Result<T>`, see result.h) and callers branch
/// on `ok()`. A default-constructed `Status` is OK and carries no
/// allocation.
class Status {
 public:
  /// Machine-readable failure category.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kCorruption,
    kUnauthorized,
    kFailedPrecondition,
    kInternal,
  };

  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status Unauthorized(std::string_view msg) {
    return Status(Code::kUnauthorized, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnauthorized() const { return code_ == Code::kUnauthorized; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Returns the symbolic name of a status code ("OK", "NotFound", ...).
const char* StatusCodeName(Status::Code code);

/// Propagate a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define SHARDCHAIN_RETURN_IF_ERROR(expr)            \
  do {                                              \
    ::shardchain::Status _st = (expr);              \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace shardchain

#endif  // SHARDCHAIN_COMMON_STATUS_H_
