#ifndef SHARDCHAIN_COMMON_RESULT_H_
#define SHARDCHAIN_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace shardchain {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// The return type for fallible functions that produce a value, so that
/// error handling stays exception-free (see status.h). A `Result` is
/// contextually convertible to bool: `if (auto r = Parse(s)) use(*r);`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing
  /// from an OK status is a programming error.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result built from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  /// The failure status; Status::OK() when the result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  /// Value accessors. Calling these on a failed Result is a programming
  /// error (asserted in debug builds).
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result failed.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// Assign a Result's value to `lhs`, or return its status to the caller.
#define SHARDCHAIN_ASSIGN_OR_RETURN(lhs, expr)      \
  do {                                              \
    auto _res = (expr);                             \
    if (!_res.ok()) return _res.status();           \
    lhs = std::move(_res).value();                  \
  } while (false)

}  // namespace shardchain

#endif  // SHARDCHAIN_COMMON_RESULT_H_
