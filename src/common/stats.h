#ifndef SHARDCHAIN_COMMON_STATS_H_
#define SHARDCHAIN_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace shardchain {

/// \brief Streaming summary statistics (Welford's algorithm).
///
/// Used by the benchmark harnesses to aggregate repeated simulation runs
/// (the paper repeats injections "20 times ... to make the results more
/// valid").
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the p-th percentile (p in [0,100]) of `values` by linear
/// interpolation. `values` is copied and sorted; empty input yields 0.
double Percentile(std::vector<double> values, double p);

}  // namespace shardchain

#endif  // SHARDCHAIN_COMMON_STATS_H_
