#include "common/status.h"

namespace shardchain {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kUnauthorized:
      return "Unauthorized";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace shardchain
