#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace shardchain {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

uint32_t Rng::Binomial(uint32_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    uint32_t successes = 0;
    for (uint32_t i = 0; i < n; ++i) successes += Bernoulli(p) ? 1 : 0;
    return successes;
  }
  // Normal approximation with continuity correction, clamped to [0, n].
  const double mu = static_cast<double>(n) * p;
  const double sigma = std::sqrt(mu * (1.0 - p));
  // Box-Muller transform.
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 == 0.0);
  const double u2 = UniformDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  double x = std::floor(mu + sigma * z + 0.5);
  if (x < 0.0) x = 0.0;
  if (x > static_cast<double>(n)) x = static_cast<double>(n);
  return static_cast<uint32_t>(x);
}

uint32_t Rng::Zipf(uint32_t n, double s) {
  assert(n > 0 && s > 0.0);
  // Inverse-CDF over the normalized Zipf mass. O(n) per draw is fine for
  // workload generation (done once per transaction batch).
  double h = 0.0;
  for (uint32_t k = 1; k <= n; ++k) h += 1.0 / std::pow(k, s);
  double u = UniformDouble() * h;
  double acc = 0.0;
  for (uint32_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(k, s);
    if (u <= acc) return k;
  }
  return n;
}

Rng Rng::Fork() {
  // A child stream seeded from two draws of the parent keeps the parent
  // and child sequences statistically independent.
  uint64_t seed = Next() ^ Rotl(Next(), 31);
  return Rng(seed);
}

}  // namespace shardchain
