#ifndef SHARDCHAIN_BASELINE_CHAINSPACE_H_
#define SHARDCHAIN_BASELINE_CHAINSPACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "sim/mining_sim.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief ChainSpace-model baseline (Sec. VI-A, Related Work):
/// a sharded smart-contract platform that "separates miners and
/// transactions into shards randomly, incurring new cross-shard
/// consensus protocols and heavy cross-shard communications".
///
/// SUBSTITUTION NOTE (DESIGN.md §2): we model ChainSpace's S-BAC as a
/// two-phase commit among the shards holding a transaction's inputs:
/// the home shard queries every foreign input shard and collects a
/// vote from each (2 messages per foreign input shard). Account-to-
/// shard placement is random (hash-based), as is transaction-to-shard
/// placement. Mining inside each shard uses the same round model as
/// everything else, so throughput comparisons isolate the scheme.
struct ChainSpaceConfig {
  size_t num_shards = 9;
  size_t miners_per_shard = 1;
  MiningSimConfig mining;
};

struct ChainSpaceResult {
  SimResult sim;
  /// Total cross-shard coordination messages exchanged to validate the
  /// injected transactions.
  uint64_t cross_shard_messages = 0;
  size_t num_shards = 0;

  /// "Communication times per shard" (Fig. 4b).
  double CommunicationTimesPerShard() const {
    if (num_shards == 0) return 0.0;
    return static_cast<double>(cross_shard_messages) /
           static_cast<double>(num_shards);
  }
};

/// Shard an account hashes to under random state placement.
ShardId ChainSpaceShardOfAccount(const Address& account, size_t num_shards);

/// Runs the ChainSpace model over `txs`: random tx placement, random
/// state placement, 2PC message counting for every foreign input, and
/// per-shard greedy mining.
ChainSpaceResult RunChainSpace(const std::vector<Transaction>& txs,
                               const ChainSpaceConfig& config, Rng* rng);

/// Message cost of validating one transaction whose home shard is
/// `home` given its input accounts' shards: 2 per distinct foreign
/// input shard (query + vote).
uint64_t ChainSpaceMessagesForTx(ShardId home,
                                 const std::vector<ShardId>& input_shards);

}  // namespace shardchain

#endif  // SHARDCHAIN_BASELINE_CHAINSPACE_H_
