#include "baseline/chainspace.h"

#include <cassert>
#include <set>

#include "crypto/sha256.h"

namespace shardchain {

ShardId ChainSpaceShardOfAccount(const Address& account, size_t num_shards) {
  assert(num_shards > 0);
  Sha256 h;
  h.Update("chainspace.state.v1");
  h.Update(account.bytes.data(), account.bytes.size());
  return static_cast<ShardId>(h.Finalize().Prefix64() % num_shards);
}

uint64_t ChainSpaceMessagesForTx(ShardId home,
                                 const std::vector<ShardId>& input_shards) {
  std::set<ShardId> foreign(input_shards.begin(), input_shards.end());
  foreign.erase(home);
  // Query + vote per distinct foreign input shard (2PC between the
  // shard leaders).
  return 2 * static_cast<uint64_t>(foreign.size());
}

ChainSpaceResult RunChainSpace(const std::vector<Transaction>& txs,
                               const ChainSpaceConfig& config, Rng* rng) {
  assert(rng != nullptr);
  assert(config.num_shards > 0);
  ChainSpaceResult result;
  result.num_shards = config.num_shards;

  // Random, even transaction placement plus 2PC accounting.
  std::vector<std::vector<Amount>> shard_fees(config.num_shards);
  for (const Transaction& tx : txs) {
    const ShardId home =
        static_cast<ShardId>(rng->UniformInt(config.num_shards));
    shard_fees[home].push_back(tx.fee);

    std::vector<ShardId> input_shards;
    input_shards.reserve(tx.input_accounts.size() + 1);
    input_shards.push_back(
        ChainSpaceShardOfAccount(tx.sender, config.num_shards));
    for (const Address& input : tx.input_accounts) {
      input_shards.push_back(
          ChainSpaceShardOfAccount(input, config.num_shards));
    }
    result.cross_shard_messages += ChainSpaceMessagesForTx(home, input_shards);
  }

  std::vector<ShardSpec> specs;
  specs.reserve(config.num_shards);
  for (size_t s = 0; s < config.num_shards; ++s) {
    ShardSpec spec;
    spec.id = static_cast<ShardId>(s);
    spec.num_miners = config.miners_per_shard;
    spec.tx_fees = std::move(shard_fees[s]);
    specs.push_back(std::move(spec));
  }
  MiningSimConfig mining = config.mining;
  mining.policy = SelectionPolicy::kGreedy;
  result.sim = RunMiningSim(specs, mining, rng);
  return result;
}

}  // namespace shardchain
