#include "baseline/ethereum.h"

namespace shardchain {

SimResult RunEthereumBaseline(const std::vector<Amount>& fees,
                              size_t num_miners,
                              const MiningSimConfig& config, Rng* rng) {
  MiningSimConfig eth = config;
  eth.policy = SelectionPolicy::kGreedy;
  ShardSpec spec;
  spec.id = 0;
  spec.num_miners = num_miners;
  spec.tx_fees = fees;
  return RunMiningSim({spec}, eth, rng);
}

SimTime EthereumConfirmationTime(const std::vector<Amount>& fees,
                                 size_t num_miners,
                                 const MiningSimConfig& config, Rng* rng) {
  return RunEthereumBaseline(fees, num_miners, config, rng).makespan;
}

}  // namespace shardchain
