#ifndef SHARDCHAIN_BASELINE_ETHEREUM_H_
#define SHARDCHAIN_BASELINE_ETHEREUM_H_

#include <vector>

#include "common/rng.h"
#include "sim/mining_sim.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief The non-sharded Ethereum baseline (Sec. VI-A): one network,
/// every miner tracks the same pool and greedily packs the top-fee
/// transactions, so confirmation is serialized (Sec. II-B).
///
/// This is the benchmark denominator W_E in every throughput-
/// improvement figure.
SimResult RunEthereumBaseline(const std::vector<Amount>& fees,
                              size_t num_miners,
                              const MiningSimConfig& config, Rng* rng);

/// Convenience: the makespan W_E of the baseline.
SimTime EthereumConfirmationTime(const std::vector<Amount>& fees,
                                 size_t num_miners,
                                 const MiningSimConfig& config, Rng* rng);

}  // namespace shardchain

#endif  // SHARDCHAIN_BASELINE_ETHEREUM_H_
