#include "crypto/merkle.h"

#include <cassert>

#include "parallel/parallel.h"

namespace shardchain {

namespace {

/// Pair hashes per chunk when a level is reduced in parallel. Fixed, so
/// chunk boundaries never depend on the thread count; small enough that
/// transaction-batch levels (thousands of nodes) split across cores.
constexpr size_t kMerkleGrain = 256;

/// One reduction step: next[i] = H(prev[2i] ‖ prev[2i+1]) with the odd
/// tail paired with itself. Every output slot is written exactly once.
std::vector<Hash256> ReduceLevel(const std::vector<Hash256>& prev,
                                 ThreadPool* pool) {
  std::vector<Hash256> next((prev.size() + 1) / 2);
  ParallelFor(pool, next.size(), kMerkleGrain, [&next, &prev](size_t i) {
    const Hash256& left = prev[2 * i];
    const Hash256& right = (2 * i + 1 < prev.size()) ? prev[2 * i + 1] : left;
    next[i] = HashPair(left, right);
  });
  return next;
}

}  // namespace

MerkleTree::MerkleTree(std::vector<Hash256> leaves) {
  if (leaves.empty()) {
    root_ = Hash256::Zero();
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    levels_.push_back(ReduceLevel(levels_.back(), nullptr));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::Prove(size_t index) const {
  assert(!levels_.empty() && index < levels_[0].size());
  MerkleProof proof;
  size_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Hash256>& nodes = levels_[level];
    const size_t sibling_pos = (pos % 2 == 0) ? pos + 1 : pos - 1;
    MerkleStep step;
    // Odd tail: the node is paired with itself.
    step.sibling =
        sibling_pos < nodes.size() ? nodes[sibling_pos] : nodes[pos];
    step.sibling_on_left = (pos % 2 == 1);
    proof.push_back(step);
    pos /= 2;
  }
  return proof;
}

Hash256 MerkleRoot(const std::vector<Hash256>& leaves, ThreadPool* pool) {
  if (leaves.empty()) return Hash256::Zero();
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) level = ReduceLevel(level, pool);
  return level[0];
}

bool MerkleVerify(const Hash256& leaf, const MerkleProof& proof,
                  const Hash256& root) {
  Hash256 acc = leaf;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_on_left ? HashPair(step.sibling, acc)
                               : HashPair(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace shardchain
