#include "crypto/merkle.h"

#include <cassert>

namespace shardchain {

MerkleTree::MerkleTree(std::vector<Hash256> leaves) {
  if (leaves.empty()) {
    root_ = Hash256::Zero();
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const std::vector<Hash256>& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      const Hash256& left = prev[i];
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(HashPair(left, right));
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::Prove(size_t index) const {
  assert(!levels_.empty() && index < levels_[0].size());
  MerkleProof proof;
  size_t pos = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Hash256>& nodes = levels_[level];
    const size_t sibling_pos = (pos % 2 == 0) ? pos + 1 : pos - 1;
    MerkleStep step;
    // Odd tail: the node is paired with itself.
    step.sibling =
        sibling_pos < nodes.size() ? nodes[sibling_pos] : nodes[pos];
    step.sibling_on_left = (pos % 2 == 1);
    proof.push_back(step);
    pos /= 2;
  }
  return proof;
}

Hash256 MerkleRoot(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256::Zero();
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(HashPair(left, right));
    }
    level = std::move(next);
  }
  return level[0];
}

bool MerkleVerify(const Hash256& leaf, const MerkleProof& proof,
                  const Hash256& root) {
  Hash256 acc = leaf;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_on_left ? HashPair(step.sibling, acc)
                               : HashPair(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace shardchain
