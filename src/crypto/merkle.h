#ifndef SHARDCHAIN_CRYPTO_MERKLE_H_
#define SHARDCHAIN_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "parallel/thread_pool.h"

namespace shardchain {

/// \brief One step of a Merkle inclusion proof.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_left = false;  ///< True if the sibling hashes first.
};

/// \brief A Merkle inclusion proof: the path from a leaf to the root.
using MerkleProof = std::vector<MerkleStep>;

/// \brief Binary Merkle tree over a list of leaf digests.
///
/// Used for block transaction roots and state commitments. Odd nodes at
/// a level are paired with themselves (the Bitcoin convention). An empty
/// tree has root Hash256::Zero().
class MerkleTree {
 public:
  /// Builds the full tree; O(n) space, O(n) time.
  explicit MerkleTree(std::vector<Hash256> leaves);

  const Hash256& root() const { return root_; }
  size_t leaf_count() const { return levels_.empty() ? 0 : levels_[0].size(); }

  /// Returns the inclusion proof for leaf `index` (must be < leaf_count).
  MerkleProof Prove(size_t index) const;

 private:
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] == leaves.
  Hash256 root_;
};

/// Computes just the root of `leaves` without materializing the tree.
/// `pool` parallelizes the per-level pair hashing over fixed chunks of
/// output positions; each HashPair is a pure function of its two
/// inputs written to a distinct slot, so the root is identical at any
/// thread count. nullptr (the default) hashes serially.
Hash256 MerkleRoot(const std::vector<Hash256>& leaves,
                   ThreadPool* pool = nullptr);

/// Verifies that `leaf` at the position encoded by `proof` hashes up to
/// `root`.
bool MerkleVerify(const Hash256& leaf, const MerkleProof& proof,
                  const Hash256& root);

}  // namespace shardchain

#endif  // SHARDCHAIN_CRYPTO_MERKLE_H_
