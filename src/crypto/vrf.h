#ifndef SHARDCHAIN_CRYPTO_VRF_H_
#define SHARDCHAIN_CRYPTO_VRF_H_

#include <cstdint>
#include <vector>

#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "parallel/thread_pool.h"

namespace shardchain {

/// \brief Verifiable random function output: a pseudo-random value plus
/// a proof binding it to (public key, seed).
///
/// SUBSTITUTION NOTE (DESIGN.md §2): the paper cites Micali et al.'s
/// VRF for leader election (as in Omniledger). We build the VRF from
/// the Lamport signature scheme in keys.h: the proof is a signature
/// over H("vrf" ‖ seed) and the output is the hash of that signature.
/// This yields the two properties the protocol uses — uniqueness (one
/// valid output per key/seed) and public verifiability — from SHA-256
/// alone.
struct VrfOutput {
  Hash256 value;   ///< Pseudo-random output, uniform over 256 bits.
  Signature proof; ///< Lamport signature over the seed digest.
};

/// Evaluates the VRF for `seed` under `key`.
VrfOutput VrfEvaluate(const KeyPair& key, const Hash256& seed);

/// Verifies that `out` is the unique VRF output of `pk` on `seed`.
bool VrfVerify(const PublicKey& pk, const Hash256& seed,
               const VrfOutput& out);

/// Batch evaluation: out[i] = VrfEvaluate(*keys[i], seed). Each
/// evaluation is a pure function of (key, seed), so the batch fans out
/// over `pool` with every slot written exactly once — results are
/// positionally identical to the serial loop at any thread count.
std::vector<VrfOutput> VrfEvaluateBatch(const std::vector<const KeyPair*>& keys,
                                        const Hash256& seed, ThreadPool* pool);

/// Batch verification: out[i] = VrfVerify(*pks[i], seed, *outs[i]).
/// `pks` and `outs` must be the same length. uint8_t (not bool) so the
/// flags are independently addressable per lane.
std::vector<uint8_t> VrfVerifyBatch(const std::vector<const PublicKey*>& pks,
                                    const Hash256& seed,
                                    const std::vector<const VrfOutput*>& outs,
                                    ThreadPool* pool);

/// Maps a VRF value to a lottery ticket in [0, 1). Leader election picks
/// the miner with the smallest ticket (Sec. III-B / Omniledger style).
double VrfTicket(const Hash256& value);

/// Convenience: the digest that VRF proofs sign for a given seed.
Hash256 VrfSeedDigest(const Hash256& seed);

}  // namespace shardchain

#endif  // SHARDCHAIN_CRYPTO_VRF_H_
