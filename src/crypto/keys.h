#ifndef SHARDCHAIN_CRYPTO_KEYS_H_
#define SHARDCHAIN_CRYPTO_KEYS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "parallel/thread_pool.h"

namespace shardchain {

/// \brief Lamport one-time signature public key.
///
/// SUBSTITUTION NOTE (see DESIGN.md §2): the paper's go-Ethereum
/// prototype uses secp256k1 ECDSA. The sharding protocol only needs
/// (a) stable identities derived from keys and (b) signatures anyone
/// can verify. Lamport signatures give exactly that from SHA-256 alone:
/// the secret key is 2x256 random preimages, the public key their
/// hashes, and a signature reveals one preimage per digest bit.
/// Verification is fully public; forgery requires inverting SHA-256.
/// (One-time use suffices: simulated actors sign logically independent
/// statements and the security experiments model adversaries at the
/// protocol level, not the signature level.)
struct PublicKey {
  /// hash[i][b] commits to the preimage revealed when digest bit i == b.
  std::array<std::array<Hash256, 2>, 256> hashes;

  /// Compact identity: SHA-256 over the full commitment array. This is
  /// what addresses and VRF identities are derived from.
  Hash256 Fingerprint() const;

  std::string ToHex() const { return Fingerprint().ToHex(); }

  friend bool operator==(const PublicKey& a, const PublicKey& b) {
    return a.hashes == b.hashes;
  }
};

/// \brief A Lamport signature: one revealed preimage per digest bit.
struct Signature {
  std::array<Hash256, 256> preimages;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.preimages == b.preimages;
  }
};

/// \brief A secret/public key pair.
///
/// Heap-backed (the raw material is 32 KiB); move-only to make the
/// ownership of secret material explicit.
class KeyPair {
 public:
  /// Derives a key pair from an RNG stream.
  static KeyPair Generate(Rng* rng);

  /// Derives a key pair from an explicit 64-bit seed (reproducible test
  /// fixtures).
  static KeyPair FromSeed(uint64_t seed);

  KeyPair(KeyPair&&) = default;
  KeyPair& operator=(KeyPair&&) = default;
  KeyPair(const KeyPair&) = delete;
  KeyPair& operator=(const KeyPair&) = delete;

  const PublicKey& public_key() const { return *public_; }

  /// Signs a 256-bit message digest.
  Signature Sign(const Hash256& message_digest) const;

 private:
  struct Secret {
    std::array<std::array<Hash256, 2>, 256> preimages;
  };

  KeyPair(std::unique_ptr<Secret> secret, std::unique_ptr<PublicKey> pk)
      : secret_(std::move(secret)), public_(std::move(pk)) {}

  std::unique_ptr<Secret> secret_;
  std::unique_ptr<PublicKey> public_;
};

/// Verifies `sig` over `message_digest` against `pk`: for every digest
/// bit i with value b, SHA-256(sig.preimages[i]) must equal
/// pk.hashes[i][b].
bool Verify(const PublicKey& pk, const Hash256& message_digest,
            const Signature& sig);

/// Batch verification (the VRF batch shape, extended to plain
/// signatures for mempool admission): ok[i] = Verify(*pks[i],
/// *digests[i], *sigs[i]). Independent per element — one forged
/// signature flips only its own slot. Deterministic for any pool per
/// the §9 contract (disjoint writes, no reduction).
std::vector<uint8_t> VerifyBatch(const std::vector<const PublicKey*>& pks,
                                 const std::vector<const Hash256*>& digests,
                                 const std::vector<const Signature*>& sigs,
                                 ThreadPool* pool);

/// Extracts bit `i` (0 = most significant bit of byte 0) of a digest.
inline int DigestBit(const Hash256& d, int i) {
  return (d.bytes[i / 8] >> (7 - (i % 8))) & 1;
}

}  // namespace shardchain

#endif  // SHARDCHAIN_CRYPTO_KEYS_H_
