#include "crypto/vrf.h"

namespace shardchain {

Hash256 VrfSeedDigest(const Hash256& seed) {
  Sha256 h;
  h.Update("shardchain.vrf.v1");
  h.Update(seed.bytes.data(), seed.bytes.size());
  return h.Finalize();
}

VrfOutput VrfEvaluate(const KeyPair& key, const Hash256& seed) {
  VrfOutput out;
  out.proof = key.Sign(VrfSeedDigest(seed));
  Sha256 h;
  for (const Hash256& pre : out.proof.preimages) {
    h.Update(pre.bytes.data(), pre.bytes.size());
  }
  out.value = h.Finalize();
  return out;
}

bool VrfVerify(const PublicKey& pk, const Hash256& seed,
               const VrfOutput& out) {
  if (!Verify(pk, VrfSeedDigest(seed), out.proof)) return false;
  Sha256 h;
  for (const Hash256& pre : out.proof.preimages) {
    h.Update(pre.bytes.data(), pre.bytes.size());
  }
  return h.Finalize() == out.value;
}

double VrfTicket(const Hash256& value) {
  // Top 53 bits -> [0, 1), matching Rng::UniformDouble's precision.
  return static_cast<double>(value.Prefix64() >> 11) * 0x1.0p-53;
}

}  // namespace shardchain
