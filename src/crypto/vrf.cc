#include "crypto/vrf.h"

#include <cassert>

#include "parallel/parallel.h"

namespace shardchain {

namespace {

/// Lamport evaluate/verify hash ~16 KiB of key material per call, so a
/// handful of identities per chunk already amortizes the dispatch.
constexpr size_t kVrfGrain = 4;

}  // namespace

Hash256 VrfSeedDigest(const Hash256& seed) {
  Sha256 h;
  h.Update("shardchain.vrf.v1");
  h.Update(seed.bytes.data(), seed.bytes.size());
  return h.Finalize();
}

VrfOutput VrfEvaluate(const KeyPair& key, const Hash256& seed) {
  VrfOutput out;
  out.proof = key.Sign(VrfSeedDigest(seed));
  Sha256 h;
  for (const Hash256& pre : out.proof.preimages) {
    h.Update(pre.bytes.data(), pre.bytes.size());
  }
  out.value = h.Finalize();
  return out;
}

bool VrfVerify(const PublicKey& pk, const Hash256& seed,
               const VrfOutput& out) {
  if (!Verify(pk, VrfSeedDigest(seed), out.proof)) return false;
  Sha256 h;
  for (const Hash256& pre : out.proof.preimages) {
    h.Update(pre.bytes.data(), pre.bytes.size());
  }
  return h.Finalize() == out.value;
}

std::vector<VrfOutput> VrfEvaluateBatch(const std::vector<const KeyPair*>& keys,
                                        const Hash256& seed,
                                        ThreadPool* pool) {
  std::vector<VrfOutput> out(keys.size());
  ParallelFor(pool, keys.size(), kVrfGrain, [&out, &keys, &seed](size_t i) {
    out[i] = VrfEvaluate(*keys[i], seed);
  });
  return out;
}

std::vector<uint8_t> VrfVerifyBatch(const std::vector<const PublicKey*>& pks,
                                    const Hash256& seed,
                                    const std::vector<const VrfOutput*>& outs,
                                    ThreadPool* pool) {
  assert(pks.size() == outs.size());
  std::vector<uint8_t> ok(pks.size(), 0);
  ParallelFor(pool, pks.size(), kVrfGrain,
              [&ok, &pks, &seed, &outs](size_t i) {
                ok[i] = VrfVerify(*pks[i], seed, *outs[i]) ? 1 : 0;
              });
  return ok;
}

double VrfTicket(const Hash256& value) {
  // Top 53 bits -> [0, 1), matching Rng::UniformDouble's precision.
  return static_cast<double>(value.Prefix64() >> 11) * 0x1.0p-53;
}

}  // namespace shardchain
