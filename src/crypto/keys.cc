#include "crypto/keys.h"

#include <cassert>

#include "parallel/parallel.h"

namespace shardchain {

namespace {

/// Each Verify hashes 8 KiB of preimages; a few per chunk amortizes
/// dispatch (same grain reasoning as kVrfGrain in vrf.cc).
constexpr size_t kVerifyGrain = 4;

}  // namespace

Hash256 PublicKey::Fingerprint() const {
  Sha256 h;
  for (const auto& pair : hashes) {
    h.Update(pair[0].bytes.data(), pair[0].bytes.size());
    h.Update(pair[1].bytes.data(), pair[1].bytes.size());
  }
  return h.Finalize();
}

KeyPair KeyPair::Generate(Rng* rng) {
  auto secret = std::make_unique<Secret>();
  auto pk = std::make_unique<PublicKey>();
  for (int i = 0; i < 256; ++i) {
    for (int b = 0; b < 2; ++b) {
      Hash256& pre = secret->preimages[i][b];
      for (int w = 0; w < 4; ++w) {
        const uint64_t r = rng->Next();
        for (int j = 0; j < 8; ++j) {
          pre.bytes[w * 8 + j] = static_cast<uint8_t>(r >> (56 - 8 * j));
        }
      }
      pk->hashes[i][b] = Sha256Digest(pre.bytes.data(), pre.bytes.size());
    }
  }
  return KeyPair(std::move(secret), std::move(pk));
}

KeyPair KeyPair::FromSeed(uint64_t seed) {
  Rng rng(seed);
  return Generate(&rng);
}

Signature KeyPair::Sign(const Hash256& message_digest) const {
  Signature sig;
  for (int i = 0; i < 256; ++i) {
    sig.preimages[i] = secret_->preimages[i][DigestBit(message_digest, i)];
  }
  return sig;
}

bool Verify(const PublicKey& pk, const Hash256& message_digest,
            const Signature& sig) {
  for (int i = 0; i < 256; ++i) {
    const int b = DigestBit(message_digest, i);
    const Hash256 expected = Sha256Digest(sig.preimages[i].bytes.data(),
                                          sig.preimages[i].bytes.size());
    if (expected != pk.hashes[i][b]) return false;
  }
  return true;
}

std::vector<uint8_t> VerifyBatch(const std::vector<const PublicKey*>& pks,
                                 const std::vector<const Hash256*>& digests,
                                 const std::vector<const Signature*>& sigs,
                                 ThreadPool* pool) {
  assert(pks.size() == digests.size() && pks.size() == sigs.size());
  std::vector<uint8_t> ok(pks.size(), 0);
  ParallelFor(pool, pks.size(), kVerifyGrain,
              [&ok, &pks, &digests, &sigs](size_t i) {
                ok[i] = Verify(*pks[i], *digests[i], *sigs[i]) ? 1 : 0;
              });
  return ok;
}

}  // namespace shardchain
