#ifndef SHARDCHAIN_CRYPTO_SHA256_H_
#define SHARDCHAIN_CRYPTO_SHA256_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/hex.h"

namespace shardchain {

/// \brief A 256-bit hash digest (value type, ordered, hashable).
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  /// The all-zero digest; used as the genesis parent hash.
  static Hash256 Zero() { return Hash256{}; }

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  /// Lowercase hex, no prefix.
  std::string ToHex() const { return HexEncode(bytes.data(), bytes.size()); }

  /// First 8 bytes as a big-endian integer; handy as a well-mixed
  /// 64-bit fingerprint (e.g. PoW target comparison, randomness seeds).
  uint64_t Prefix64() const {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[i];
    return v;
  }

  friend auto operator<=>(const Hash256&, const Hash256&) = default;
};

/// \brief Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Usage: `Sha256 h; h.Update(a); h.Update(b); Hash256 d = h.Finalize();`
/// or the one-shot helpers below. Tested against the NIST vectors in
/// tests/crypto_test.cc.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes. May be called repeatedly.
  void Update(const uint8_t* data, size_t len);
  void Update(std::string_view data);
  void Update(const Bytes& data);

  /// Pads, finishes, and returns the digest. The hasher must not be
  /// updated afterwards (reset by constructing a new one).
  Hash256 Finalize();

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// One-shot SHA-256 of a byte span.
Hash256 Sha256Digest(const uint8_t* data, size_t len);
Hash256 Sha256Digest(std::string_view data);
Hash256 Sha256Digest(const Bytes& data);

/// SHA-256 of the concatenation of two digests; the node combiner for
/// Merkle trees.
Hash256 HashPair(const Hash256& a, const Hash256& b);

}  // namespace shardchain

/// std::hash support so Hash256 can key unordered containers.
template <>
struct std::hash<shardchain::Hash256> {
  size_t operator()(const shardchain::Hash256& h) const noexcept {
    return static_cast<size_t>(h.Prefix64());
  }
};

#endif  // SHARDCHAIN_CRYPTO_SHA256_H_
