#include "analysis/storage.h"

#include <algorithm>
#include <cassert>

namespace shardchain {
namespace storage {

namespace {

double TotalState(const std::vector<double>& shard_state) {
  double total = 0.0;
  for (double s : shard_state) total += s;
  return total;
}

uint64_t TotalMiners(const std::vector<uint64_t>& shard_miners) {
  uint64_t total = 0;
  for (uint64_t m : shard_miners) total += m;
  return total;
}

StorageProfile Finalize(double total, double max_miner, uint64_t miners) {
  StorageProfile p;
  p.total = total;
  p.per_miner = miners == 0 ? 0.0 : total / static_cast<double>(miners);
  p.max_miner = max_miner;
  return p;
}

}  // namespace

StorageProfile ContractSharding(const std::vector<double>& shard_state,
                                const std::vector<uint64_t>& shard_miners) {
  assert(shard_state.size() == shard_miners.size());
  const double full = TotalState(shard_state);
  double total = 0.0;
  double max_miner = 0.0;
  for (size_t s = 0; s < shard_state.size(); ++s) {
    // Shard 0 is the MaxShard: its miners store the whole system state.
    const double per = (s == 0) ? full : shard_state[s];
    total += per * static_cast<double>(shard_miners[s]);
    if (shard_miners[s] > 0) max_miner = std::max(max_miner, per);
  }
  return Finalize(total, max_miner, TotalMiners(shard_miners));
}

StorageProfile FullReplication(const std::vector<double>& shard_state,
                               const std::vector<uint64_t>& shard_miners) {
  assert(shard_state.size() == shard_miners.size());
  const double full = TotalState(shard_state);
  const uint64_t miners = TotalMiners(shard_miners);
  return Finalize(full * static_cast<double>(miners), miners > 0 ? full : 0.0,
                  miners);
}

StorageProfile StateDivided(const std::vector<double>& shard_state,
                            const std::vector<uint64_t>& shard_miners) {
  assert(shard_state.size() == shard_miners.size());
  double total = 0.0;
  double max_miner = 0.0;
  for (size_t s = 0; s < shard_state.size(); ++s) {
    total += shard_state[s] * static_cast<double>(shard_miners[s]);
    if (shard_miners[s] > 0) max_miner = std::max(max_miner, shard_state[s]);
  }
  return Finalize(total, max_miner, TotalMiners(shard_miners));
}

double SavingsVsFullReplication(const std::vector<double>& shard_state,
                                const std::vector<uint64_t>& shard_miners) {
  const StorageProfile ours = ContractSharding(shard_state, shard_miners);
  const StorageProfile full = FullReplication(shard_state, shard_miners);
  if (full.per_miner <= 0.0) return 1.0;
  return ours.per_miner / full.per_miner;
}

}  // namespace storage
}  // namespace shardchain
