#ifndef SHARDCHAIN_ANALYSIS_SECURITY_H_
#define SHARDCHAIN_ANALYSIS_SECURITY_H_

#include <cstddef>
#include <cstdint>

namespace shardchain {

/// \brief Closed-form security analysis of the sharding design
/// (Sec. III-B, Sec. IV-D). Malicious-node counts per shard are
/// modelled with the binomial distribution over an infinite adversary
/// pool, as the paper assumes.
namespace security {

/// log of the binomial coefficient C(n, k), numerically stable.
double LogBinomialCoefficient(uint64_t n, uint64_t k);

/// P(X = k) for X ~ Binomial(n, p).
double BinomialPmf(uint64_t n, uint64_t k, double p);

/// P(X >= k0) for X ~ Binomial(n, p).
double BinomialTail(uint64_t n, uint64_t k0, double p);

/// Probability that a shard of `n` miners sampled against adversary
/// fraction `f` is SAFE, i.e. fewer than ceil(n * threshold) malicious
/// members (Fig. 1d; threshold 1/2 under PoW as in Eq. 5).
double ShardSafety(uint64_t n, double f, double threshold = 0.5);

/// Eq. 3: probability the newly formed shard is corrupted during the
/// merging process — the adversary (computation fraction `f`) must
/// control the leader for consecutive rounds until the merged shard has
/// a malicious majority: sum_{k=0}^{l} f^k * (1 - Ps).
double MergeCorruption(double f, double shard_safety, uint64_t l);

/// Eq. 3 with l -> infinity: (1 - Ps) / (1 - f).
double MergeCorruptionLimit(double f, double shard_safety);

/// Eq. 4: probability of a transaction fee of t coins under
/// Binomial(N, 1/2) fees: C(N, t) * (1/2)^N.
double FeeProbability(uint64_t t, uint64_t total_fees);

/// Eq. 5: probability of corrupting a single transaction validated by
/// `n` miners: P(malicious > floor(n/2)) = sum_{k=ceil(n/2)}^{n} ...
double TxCorruption(uint64_t n, double f);

/// Eq. 6: probability the system is corrupted under the intra-shard
/// selection algorithm: sum_{k=0}^{l} f^k * sum_{t=1}^{N} Pi * Pt,
/// with Pi evaluated at `miners_per_tx` miners.
double SelectionCorruption(double f, uint64_t l, uint64_t total_fees,
                           uint64_t miners_per_tx);

/// Eq. 6 with l -> infinity.
double SelectionCorruptionLimit(double f, uint64_t total_fees,
                                uint64_t miners_per_tx);

/// Smallest shard size whose safety (at threshold 1/2) is at least
/// `target` against adversary fraction `f`; scans up to `max_n`.
/// Returns 0 if no size up to max_n suffices.
uint64_t MinShardSizeForSafety(double f, double target, uint64_t max_n);

}  // namespace security

}  // namespace shardchain

#endif  // SHARDCHAIN_ANALYSIS_SECURITY_H_
