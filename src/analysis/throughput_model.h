#ifndef SHARDCHAIN_ANALYSIS_THROUGHPUT_MODEL_H_
#define SHARDCHAIN_ANALYSIS_THROUGHPUT_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shardchain {
namespace model {

/// \brief Closed-form predictions of the round-based mining model —
/// an independent cross-check on the simulator (the tests assert the
/// two agree exactly in the deterministic regimes).
struct RoundModelParams {
  double round_seconds = 60.0;
  size_t txs_per_block = 10;
  double calibration_power = 1.0;
};

/// Confirmation time of `txs` transactions in one shard of `miners`
/// greedy miners: one useful block per round, slowed by the
/// genesis-difficulty factor when under-powered (Table I).
double GreedyConfirmationTime(size_t txs, size_t miners,
                              const RoundModelParams& params);

/// Confirmation time with perfectly disjoint per-miner sets (the
/// round-robin oracle; the congestion game approaches this when fees
/// disperse miners).
double DisjointConfirmationTime(size_t txs, size_t miners,
                                const RoundModelParams& params);

/// Makespan over parallel shards, each greedy (Fig. 3a): the slowest
/// shard dominates.
double ShardedMakespan(const std::vector<size_t>& shard_txs,
                       const std::vector<size_t>& shard_miners,
                       const RoundModelParams& params);

/// Predicted throughput improvement of sharding `shard_txs` over one
/// Ethereum network of `eth_miners` holding all the transactions.
double PredictedImprovement(const std::vector<size_t>& shard_txs,
                            const std::vector<size_t>& shard_miners,
                            size_t eth_miners,
                            const RoundModelParams& params);

/// Empty blocks a shard mines between finishing its own work and the
/// end of the observation window (per Fig. 3b/3c accounting: one per
/// miner per idle round).
size_t PredictedEmptyBlocks(size_t txs, size_t miners,
                            double window_seconds,
                            const RoundModelParams& params);

}  // namespace model
}  // namespace shardchain

#endif  // SHARDCHAIN_ANALYSIS_THROUGHPUT_MODEL_H_
