#include "analysis/throughput_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace shardchain {
namespace model {

namespace {

double RoundLength(size_t miners, const RoundModelParams& params) {
  if (miners == 0) return 0.0;
  const double factor = std::max(
      1.0, params.calibration_power / static_cast<double>(miners));
  return params.round_seconds * factor;
}

size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

}  // namespace

double GreedyConfirmationTime(size_t txs, size_t miners,
                              const RoundModelParams& params) {
  if (txs == 0 || miners == 0) return 0.0;
  // One useful block (txs_per_block transactions) per round.
  const size_t rounds = CeilDiv(txs, params.txs_per_block);
  return static_cast<double>(rounds) * RoundLength(miners, params);
}

double DisjointConfirmationTime(size_t txs, size_t miners,
                                const RoundModelParams& params) {
  if (txs == 0 || miners == 0) return 0.0;
  // Every miner commits a disjoint block each round.
  const size_t per_round = params.txs_per_block * miners;
  const size_t rounds = CeilDiv(txs, per_round);
  return static_cast<double>(rounds) * RoundLength(miners, params);
}

double ShardedMakespan(const std::vector<size_t>& shard_txs,
                       const std::vector<size_t>& shard_miners,
                       const RoundModelParams& params) {
  assert(shard_txs.size() == shard_miners.size());
  double makespan = 0.0;
  for (size_t s = 0; s < shard_txs.size(); ++s) {
    makespan = std::max(
        makespan, GreedyConfirmationTime(shard_txs[s], shard_miners[s],
                                         params));
  }
  return makespan;
}

double PredictedImprovement(const std::vector<size_t>& shard_txs,
                            const std::vector<size_t>& shard_miners,
                            size_t eth_miners,
                            const RoundModelParams& params) {
  size_t total = 0;
  for (size_t t : shard_txs) total += t;
  const double eth = GreedyConfirmationTime(total, eth_miners, params);
  const double sharded = ShardedMakespan(shard_txs, shard_miners, params);
  if (sharded <= 0.0) return 0.0;
  return eth / sharded;
}

size_t PredictedEmptyBlocks(size_t txs, size_t miners,
                            double window_seconds,
                            const RoundModelParams& params) {
  if (miners == 0) return 0;
  const double round_len = RoundLength(miners, params);
  const size_t busy_rounds = CeilDiv(txs, params.txs_per_block);
  const size_t window_rounds =
      static_cast<size_t>(window_seconds / round_len);
  if (window_rounds <= busy_rounds) return 0;
  // Each idle round, every miner packs one empty block.
  return (window_rounds - busy_rounds) * miners;
}

}  // namespace model
}  // namespace shardchain
