#ifndef SHARDCHAIN_ANALYSIS_STORAGE_H_
#define SHARDCHAIN_ANALYSIS_STORAGE_H_

#include <cstdint>
#include <vector>

namespace shardchain {
namespace storage {

/// \brief Storage-cost model (Related Work, last paragraph): "our
/// sharding scheme divides the isolated states into independent shards
/// and miners in these shards do not need to store the complete
/// information of the system. Therefore, the storage cost is
/// significantly reduced."
///
/// Inputs: per-shard state sizes (shard 0 = MaxShard, whose miners
/// hold everything) and the per-shard miner counts. All sizes are in
/// abstract units (e.g. transactions or bytes — ratios are what
/// matters).
struct StorageProfile {
  /// Sum over miners of the state they store.
  double total = 0.0;
  /// Average storage per miner.
  double per_miner = 0.0;
  /// Largest single-miner storage.
  double max_miner = 0.0;
};

/// Our contract-centric sharding: a contract-shard miner stores only
/// her shard's state; every MaxShard miner stores the full state
/// (Sec. III-A).
StorageProfile ContractSharding(const std::vector<double>& shard_state,
                                const std::vector<uint64_t>& shard_miners);

/// Full replication (Ethereum, and the Zilliqa/Corda/Elastico sharding
/// family where "per-shard validating peers store the entire states"):
/// every miner stores everything.
StorageProfile FullReplication(const std::vector<double>& shard_state,
                               const std::vector<uint64_t>& shard_miners);

/// State-divided sharding with cross-shard protocols (Omniledger /
/// RapidChain style): every miner stores only her shard — the lower
/// bound our design matches outside the MaxShard.
StorageProfile StateDivided(const std::vector<double>& shard_state,
                            const std::vector<uint64_t>& shard_miners);

/// Ratio of our per-miner storage to full replication (< 1 is a win).
double SavingsVsFullReplication(const std::vector<double>& shard_state,
                                const std::vector<uint64_t>& shard_miners);

}  // namespace storage
}  // namespace shardchain

#endif  // SHARDCHAIN_ANALYSIS_STORAGE_H_
