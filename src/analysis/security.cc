#include "analysis/security.h"

#include <cassert>
#include <cmath>

namespace shardchain {
namespace security {

double LogBinomialCoefficient(uint64_t n, uint64_t k) {
  if (k > n) return -INFINITY;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double BinomialPmf(uint64_t n, uint64_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomialCoefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialTail(uint64_t n, uint64_t k0, double p) {
  double tail = 0.0;
  for (uint64_t k = k0; k <= n; ++k) tail += BinomialPmf(n, k, p);
  return tail > 1.0 ? 1.0 : tail;
}

double ShardSafety(uint64_t n, double f, double threshold) {
  if (n == 0) return 0.0;
  const uint64_t k0 = static_cast<uint64_t>(
      std::ceil(static_cast<double>(n) * threshold));
  return 1.0 - BinomialTail(n, k0, f);
}

double MergeCorruption(double f, double shard_safety, uint64_t l) {
  // Eq. 3: sum_{k=0}^{l} f^k * (1 - Ps).
  double geom = 0.0;
  double fk = 1.0;
  for (uint64_t k = 0; k <= l; ++k) {
    geom += fk;
    fk *= f;
  }
  return geom * (1.0 - shard_safety);
}

double MergeCorruptionLimit(double f, double shard_safety) {
  assert(f < 1.0);
  return (1.0 - shard_safety) / (1.0 - f);
}

double FeeProbability(uint64_t t, uint64_t total_fees) {
  // Eq. 4: C(N, t) * (1/2)^N.
  return BinomialPmf(total_fees, t, 0.5);
}

double TxCorruption(uint64_t n, double f) {
  if (n == 0) return 0.0;
  // Eq. 5: P(c > floor(n/2)).
  const uint64_t k0 = n / 2 + 1;
  return BinomialTail(n, k0, f);
}

double SelectionCorruption(double f, uint64_t l, uint64_t total_fees,
                           uint64_t miners_per_tx) {
  // Eq. 6: (sum_k f^k) * sum_t Pi * Pt. Pt sums to ~1 over t, so the
  // inner sum is Pi weighted by the fee distribution.
  double inner = 0.0;
  const double pi = TxCorruption(miners_per_tx, f);
  for (uint64_t t = 1; t <= total_fees; ++t) {
    inner += pi * FeeProbability(t, total_fees);
  }
  double geom = 0.0;
  double fk = 1.0;
  for (uint64_t k = 0; k <= l; ++k) {
    geom += fk;
    fk *= f;
  }
  return geom * inner;
}

double SelectionCorruptionLimit(double f, uint64_t total_fees,
                                uint64_t miners_per_tx) {
  assert(f < 1.0);
  double inner = 0.0;
  const double pi = TxCorruption(miners_per_tx, f);
  for (uint64_t t = 1; t <= total_fees; ++t) {
    inner += pi * FeeProbability(t, total_fees);
  }
  return inner / (1.0 - f);
}

uint64_t MinShardSizeForSafety(double f, double target, uint64_t max_n) {
  for (uint64_t n = 1; n <= max_n; ++n) {
    if (ShardSafety(n, f) >= target) return n;
  }
  return 0;
}

}  // namespace security
}  // namespace shardchain
