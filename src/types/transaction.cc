#include "types/transaction.h"

namespace shardchain {

Address Address::ForContract(const Address& creator, uint64_t nonce) {
  Sha256 h;
  h.Update("shardchain.contract.v1");
  h.Update(creator.bytes.data(), creator.bytes.size());
  Bytes n;
  AppendUint64(&n, nonce);
  h.Update(n);
  return Address::FromHash(h.Finalize());
}

const char* TxKindName(TxKind kind) {
  switch (kind) {
    case TxKind::kDirectTransfer:
      return "DirectTransfer";
    case TxKind::kContractCall:
      return "ContractCall";
    case TxKind::kContractDeploy:
      return "ContractDeploy";
  }
  return "Unknown";
}

Bytes Transaction::Encode() const {
  Bytes out;
  out.reserve(96 + payload.size() + input_accounts.size() * 20);
  out.insert(out.end(), sender.bytes.begin(), sender.bytes.end());
  out.insert(out.end(), recipient.bytes.begin(), recipient.bytes.end());
  out.push_back(static_cast<uint8_t>(kind));
  AppendUint64(&out, value);
  AppendUint64(&out, fee);
  AppendUint64(&out, gas_limit);
  AppendUint64(&out, nonce);
  AppendUint64(&out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  AppendUint64(&out, input_accounts.size());
  for (const Address& a : input_accounts) {
    out.insert(out.end(), a.bytes.begin(), a.bytes.end());
  }
  return out;
}

Hash256 Transaction::Id() const { return Sha256Digest(Encode()); }

Hash256 Transaction::SigningDigest() const {
  Sha256 h;
  h.Update("shardchain.txsig.v1");
  h.Update(Encode());
  return h.Finalize();
}

}  // namespace shardchain
