#ifndef SHARDCHAIN_TYPES_BLOCK_H_
#define SHARDCHAIN_TYPES_BLOCK_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "types/address.h"
#include "types/transaction.h"

namespace shardchain {

/// Shard identifier. Shard 0 is always the MaxShard (Sec. III-A);
/// contract shards are numbered from 1.
using ShardId = uint32_t;
inline constexpr ShardId kMaxShardId = 0;

/// Simulated time in seconds (virtual clock of the discrete-event
/// simulator).
using SimTime = double;

/// \brief Block header. Carries the ShardID the paper adds to headers
/// (Sec. III-C) so receivers can check shard membership.
struct BlockHeader {
  Hash256 parent_hash;
  uint64_t number = 0;     ///< Height within its shard's chain.
  ShardId shard_id = kMaxShardId;
  Address miner;           ///< Coinbase of the block's creator.
  Hash256 tx_root;         ///< Merkle root over transaction ids.
  Hash256 state_root;      ///< Commitment to post-state.
  uint64_t difficulty = 1;
  uint64_t nonce = 0;      ///< PoW solution.
  uint64_t timestamp = 0;  ///< Seconds, virtual clock.

  /// Canonical serialization for hashing / PoW.
  Bytes Encode() const;

  /// SHA-256 of Encode() — the block hash (PoW subject).
  Hash256 Hash() const;
};

/// \brief A full block: header plus transaction list.
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// An empty block confirms no transactions but still pays the block
  /// reward — the waste the inter-shard merging algorithm removes.
  bool IsEmpty() const { return transactions.empty(); }

  /// Recomputes header.tx_root from the current transaction list.
  Hash256 ComputeTxRoot() const;

  /// Sum of the transaction fees the miner collects.
  Amount TotalFees() const;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_TYPES_BLOCK_H_
