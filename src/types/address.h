#ifndef SHARDCHAIN_TYPES_ADDRESS_H_
#define SHARDCHAIN_TYPES_ADDRESS_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/hex.h"
#include "crypto/sha256.h"

namespace shardchain {

/// \brief A 20-byte account address (Ethereum-style), derived from the
/// trailing bytes of a key fingerprint or contract-creation hash.
struct Address {
  std::array<uint8_t, 20> bytes{};

  static Address Zero() { return Address{}; }

  /// Derives an address from a public-key fingerprint (last 20 bytes,
  /// the Ethereum convention).
  static Address FromHash(const Hash256& h) {
    Address a;
    for (int i = 0; i < 20; ++i) a.bytes[i] = h.bytes[12 + i];
    return a;
  }

  /// Deterministic contract address: H("contract" ‖ creator ‖ nonce).
  static Address ForContract(const Address& creator, uint64_t nonce);

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  std::string ToHex() const {
    return "0x" + HexEncode(bytes.data(), bytes.size());
  }

  /// Well-mixed 64-bit fingerprint for hashing.
  uint64_t Prefix64() const {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[i];
    return v;
  }

  friend auto operator<=>(const Address&, const Address&) = default;
};

}  // namespace shardchain

template <>
struct std::hash<shardchain::Address> {
  size_t operator()(const shardchain::Address& a) const noexcept {
    return static_cast<size_t>(a.Prefix64());
  }
};

#endif  // SHARDCHAIN_TYPES_ADDRESS_H_
