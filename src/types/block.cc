#include "types/block.h"

#include "crypto/merkle.h"

namespace shardchain {

Bytes BlockHeader::Encode() const {
  Bytes out;
  out.reserve(160);
  out.insert(out.end(), parent_hash.bytes.begin(), parent_hash.bytes.end());
  AppendUint64(&out, number);
  AppendUint32(&out, shard_id);
  out.insert(out.end(), miner.bytes.begin(), miner.bytes.end());
  out.insert(out.end(), tx_root.bytes.begin(), tx_root.bytes.end());
  out.insert(out.end(), state_root.bytes.begin(), state_root.bytes.end());
  AppendUint64(&out, difficulty);
  AppendUint64(&out, nonce);
  AppendUint64(&out, timestamp);
  return out;
}

Hash256 BlockHeader::Hash() const { return Sha256Digest(Encode()); }

Hash256 Block::ComputeTxRoot() const {
  std::vector<Hash256> leaves;
  leaves.reserve(transactions.size());
  for (const Transaction& tx : transactions) leaves.push_back(tx.Id());
  return MerkleRoot(leaves);
}

Amount Block::TotalFees() const {
  Amount total = 0;
  for (const Transaction& tx : transactions) total += tx.fee;
  return total;
}

}  // namespace shardchain
