#include "types/codec.h"

#include <cstddef>

namespace shardchain {
namespace codec {

Result<uint8_t> Reader::ReadByte() {
  if (remaining() < 1) return Status::Corruption("buffer underrun (byte)");
  return data_[pos_++];
}

Result<uint32_t> Reader::ReadU32() {
  if (remaining() < 4) return Status::Corruption("buffer underrun (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

Result<uint64_t> Reader::ReadU64() {
  if (remaining() < 8) return Status::Corruption("buffer underrun (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

Result<Bytes> Reader::ReadBytes(size_t n) {
  if (remaining() < n) return Status::Corruption("buffer underrun (bytes)");
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<Address> Reader::ReadAddress() {
  if (remaining() < 20) return Status::Corruption("buffer underrun (addr)");
  Address a;
  for (int i = 0; i < 20; ++i) a.bytes[i] = data_[pos_++];
  return a;
}

Result<Hash256> Reader::ReadHash() {
  if (remaining() < 32) return Status::Corruption("buffer underrun (hash)");
  Hash256 h;
  for (int i = 0; i < 32; ++i) h.bytes[i] = data_[pos_++];
  return h;
}

Bytes EncodeTransaction(const Transaction& tx) { return tx.Encode(); }

Result<Transaction> DecodeTransaction(const Bytes& data) {
  Reader r(data);
  Transaction tx;
  SHARDCHAIN_ASSIGN_OR_RETURN(tx.sender, r.ReadAddress());
  SHARDCHAIN_ASSIGN_OR_RETURN(tx.recipient, r.ReadAddress());
  uint8_t kind = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(kind, r.ReadByte());
  if (kind > static_cast<uint8_t>(TxKind::kContractDeploy)) {
    return Status::Corruption("unknown transaction kind");
  }
  tx.kind = static_cast<TxKind>(kind);
  SHARDCHAIN_ASSIGN_OR_RETURN(tx.value, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(tx.fee, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(tx.gas_limit, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(tx.nonce, r.ReadU64());
  uint64_t payload_len = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(payload_len, r.ReadU64());
  if (payload_len > r.remaining()) {
    return Status::Corruption("payload length exceeds buffer");
  }
  SHARDCHAIN_ASSIGN_OR_RETURN(tx.payload,
                              r.ReadBytes(static_cast<size_t>(payload_len)));
  uint64_t inputs = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(inputs, r.ReadU64());
  if (inputs > r.remaining() / 20) {
    return Status::Corruption("input count exceeds buffer");
  }
  tx.input_accounts.reserve(static_cast<size_t>(inputs));
  for (uint64_t i = 0; i < inputs; ++i) {
    Address a;
    SHARDCHAIN_ASSIGN_OR_RETURN(a, r.ReadAddress());
    tx.input_accounts.push_back(a);
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after tx");
  return tx;
}

Bytes EncodeHeader(const BlockHeader& header) { return header.Encode(); }

Result<BlockHeader> DecodeHeader(const Bytes& data) {
  Reader r(data);
  BlockHeader h;
  SHARDCHAIN_ASSIGN_OR_RETURN(h.parent_hash, r.ReadHash());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.number, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.shard_id, r.ReadU32());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.miner, r.ReadAddress());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.tx_root, r.ReadHash());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.state_root, r.ReadHash());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.difficulty, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.nonce, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(h.timestamp, r.ReadU64());
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after header");
  return h;
}

Bytes EncodeBlock(const Block& block) {
  Bytes out = block.header.Encode();
  AppendUint32(&out, static_cast<uint32_t>(block.transactions.size()));
  for (const Transaction& tx : block.transactions) {
    const Bytes enc = tx.Encode();
    AppendUint64(&out, enc.size());
    out.insert(out.end(), enc.begin(), enc.end());
  }
  return out;
}

Result<Block> DecodeBlock(const Bytes& data) {
  // Header is fixed-size: 32+8+4+20+32+32+8+8+8 = 152 bytes.
  constexpr size_t kHeaderSize = 152;
  if (data.size() < kHeaderSize + 4) {
    return Status::Corruption("block shorter than header");
  }
  Block block;
  {
    Bytes header_bytes(data.begin(),
                       data.begin() + static_cast<ptrdiff_t>(kHeaderSize));
    SHARDCHAIN_ASSIGN_OR_RETURN(block.header, DecodeHeader(header_bytes));
  }
  Reader r(data);
  // Skip the header region.
  Result<Bytes> skipped = r.ReadBytes(kHeaderSize);
  if (!skipped.ok()) return skipped.status();
  uint32_t count = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(count, r.ReadU32());
  // Every transaction needs at least its 8-byte length prefix, so a
  // count beyond that is corrupt — and must not drive a huge reserve.
  if (count > r.remaining() / 8) {
    return Status::Corruption("tx count exceeds buffer");
  }
  block.transactions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    SHARDCHAIN_ASSIGN_OR_RETURN(len, r.ReadU64());
    if (len > r.remaining()) {
      return Status::Corruption("tx length exceeds buffer");
    }
    Bytes tx_bytes;
    SHARDCHAIN_ASSIGN_OR_RETURN(tx_bytes,
                                r.ReadBytes(static_cast<size_t>(len)));
    Transaction tx;
    SHARDCHAIN_ASSIGN_OR_RETURN(tx, DecodeTransaction(tx_bytes));
    block.transactions.push_back(std::move(tx));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after block");
  return block;
}

}  // namespace codec
}  // namespace shardchain
