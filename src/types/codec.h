#ifndef SHARDCHAIN_TYPES_CODEC_H_
#define SHARDCHAIN_TYPES_CODEC_H_

#include <cstdint>

#include "common/result.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief Wire codec: canonical, self-delimiting encode/decode for
/// transactions, headers and blocks.
///
/// `Transaction::Encode` / `BlockHeader::Encode` define the canonical
/// byte layouts used for hashing; this module adds the inverse
/// direction (plus whole-block framing) so blocks and transactions can
/// actually travel between miners as bytes and be re-validated on
/// arrival — the transport counterpart of the Sec. III-C receive-side
/// checks.
namespace codec {

/// \brief Cursor over an input buffer with bounds-checked reads.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<uint8_t> ReadByte();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<Bytes> ReadBytes(size_t n);
  Result<Address> ReadAddress();
  Result<Hash256> ReadHash();

 private:
  const Bytes& data_;
  size_t pos_ = 0;
};

/// Transaction wire format (identical to Transaction::Encode, so the
/// decoded transaction re-hashes to the same id).
Bytes EncodeTransaction(const Transaction& tx);
Result<Transaction> DecodeTransaction(const Bytes& data);

/// Header wire format (identical to BlockHeader::Encode).
Bytes EncodeHeader(const BlockHeader& header);
Result<BlockHeader> DecodeHeader(const Bytes& data);

/// Whole block: header, then a count-prefixed transaction list (each
/// transaction length-prefixed). Decode verifies nothing beyond
/// structure; run Ledger/ShardingSystem validation afterwards.
Bytes EncodeBlock(const Block& block);
Result<Block> DecodeBlock(const Bytes& data);

}  // namespace codec

}  // namespace shardchain

#endif  // SHARDCHAIN_TYPES_CODEC_H_
