#ifndef SHARDCHAIN_TYPES_TRANSACTION_H_
#define SHARDCHAIN_TYPES_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hex.h"
#include "crypto/sha256.h"
#include "types/address.h"

namespace shardchain {

/// Monetary amounts, in the smallest unit ("wei"-like).
using Amount = uint64_t;

/// What a transaction does. The paper's sender classification
/// (Sec. II-C) keys off these: contract calls by single-contract
/// senders are shardable; direct transfers force the sender's
/// transactions into the MaxShard.
enum class TxKind : uint8_t {
  kDirectTransfer = 0,  ///< User -> user value transfer (Fig. 1c, tx 5).
  kContractCall = 1,    ///< User -> contract invocation (Fig. 1a).
  kContractDeploy = 2,  ///< User deploys new contract code.
};

const char* TxKindName(TxKind kind);

/// \brief A transaction in the account model.
///
/// Matches the fields the evaluation exercises: a fee (the miners'
/// congestion-game resource value), a contract target (the shard key),
/// and an `input_accounts` list modelling the paper's "k-input
/// transactions" whose validation needs account records from k users
/// (Sec. VI-B2, Fig. 4b).
struct Transaction {
  Address sender;
  Address recipient;          ///< Contract address for kContractCall.
  TxKind kind = TxKind::kDirectTransfer;
  Amount value = 0;
  Amount fee = 0;             ///< Transaction fee paid to the miner.
  uint64_t gas_limit = 21000;
  uint64_t nonce = 0;         ///< Sender's account nonce.
  Bytes payload;              ///< Contract code (deploy) or call args.

  /// Accounts whose records are needed to validate this transaction
  /// (besides the sender). Drives cross-shard communication accounting
  /// in the ChainSpace baseline.
  std::vector<Address> input_accounts;

  /// Canonical serialization (deterministic; used for hashing).
  Bytes Encode() const;

  /// SHA-256 of Encode(); the transaction id.
  Hash256 Id() const;

  /// Domain-separated digest a sender's signature covers on admission
  /// (distinct from Id() so a signature can never be replayed as an
  /// identifier or vice versa). Batch-verified by the mempool through
  /// crypto VerifyBatch (DESIGN.md §14).
  Hash256 SigningDigest() const;

  /// Total number of accounts touched (sender + inputs); the paper's
  /// "number of inputs" for a k-input transaction.
  size_t InputCount() const { return 1 + input_accounts.size(); }
};

}  // namespace shardchain

#endif  // SHARDCHAIN_TYPES_TRANSACTION_H_
