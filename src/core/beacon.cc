#include "core/beacon.h"

namespace shardchain {

Hash256 RandomnessBeacon::CommitmentFor(const Bytes& share) {
  Sha256 h;
  h.Update("shardchain.beacon.commit.v1");
  h.Update(share);
  return h.Finalize();
}

Status RandomnessBeacon::Commit(NodeId node, const Hash256& commitment) {
  if (phase_ != Phase::kCommit) {
    return Status::FailedPrecondition("commit phase is closed");
  }
  if (!commitments_.emplace(node, commitment).second) {
    return Status::AlreadyExists("node already committed");
  }
  return Status::OK();
}

Status RandomnessBeacon::CloseCommits() {
  if (phase_ != Phase::kCommit) {
    return Status::FailedPrecondition("commit phase already closed");
  }
  phase_ = Phase::kReveal;
  return Status::OK();
}

Status RandomnessBeacon::Reveal(NodeId node, const Bytes& share) {
  if (phase_ != Phase::kReveal) {
    return Status::FailedPrecondition("not in the reveal phase");
  }
  auto it = commitments_.find(node);
  if (it == commitments_.end()) {
    return Status::NotFound("node never committed");
  }
  if (CommitmentFor(share) != it->second) {
    return Status::Unauthorized("reveal does not match commitment");
  }
  if (!reveals_.emplace(node, share).second) {
    return Status::AlreadyExists("node already revealed");
  }
  return Status::OK();
}

Hash256 RandomnessBeacon::Aggregate(const std::map<NodeId, Bytes>& reveals) {
  Sha256 h;
  h.Update("shardchain.beacon.output.v1");
  for (const auto& [node, share] : reveals) {
    Bytes id;
    AppendUint32(&id, node);
    h.Update(id);
    h.Update(share);
  }
  return h.Finalize();
}

Result<Hash256> RandomnessBeacon::Finalize() {
  if (phase_ != Phase::kReveal) {
    return Status::FailedPrecondition("finalize requires the reveal phase");
  }
  if (reveals_.size() < min_reveals_) {
    return Status::FailedPrecondition("not enough reveals to finalize");
  }
  phase_ = Phase::kDone;
  output_ = Aggregate(reveals_);
  return *output_;
}

std::vector<NodeId> RandomnessBeacon::Withholders() const {
  std::vector<NodeId> out;
  for (const auto& [node, commitment] : commitments_) {
    if (reveals_.count(node) == 0) out.push_back(node);
  }
  return out;
}

Status RandomnessBeacon::VerifyTranscript(
    const std::map<NodeId, Hash256>& commitments,
    const std::map<NodeId, Bytes>& reveals, const Hash256& claimed_output) {
  for (const auto& [node, share] : reveals) {
    auto it = commitments.find(node);
    if (it == commitments.end()) {
      return Status::Unauthorized("reveal from a node that never committed");
    }
    if (CommitmentFor(share) != it->second) {
      return Status::Unauthorized("reveal does not match commitment");
    }
  }
  if (Aggregate(reveals) != claimed_output) {
    return Status::Corruption("claimed output does not match the reveals");
  }
  return Status::OK();
}

}  // namespace shardchain
