#ifndef SHARDCHAIN_CORE_SHARD_FORMATION_H_
#define SHARDCHAIN_CORE_SHARD_FORMATION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "contract/callgraph.h"
#include "types/address.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief Shard formation by contract (Sec. III-A).
///
/// "Transactions sent by users who only participate in the same smart
/// contract naturally form a shard"; everything else — multi-contract
/// senders, direct transfers, multi-input calls — lands in the
/// MaxShard (ShardId 0), whose miners hold full state.
///
/// The router keeps the local call graph miners maintain (Sec. III-C)
/// and lazily assigns ShardIds to contracts on first shardable use.
class ShardFormation {
 public:
  ShardFormation() = default;

  /// Routes an incoming transaction: returns the shard that must
  /// validate it, then records it in the call graph. Deterministic
  /// given the same transaction sequence, so every miner derives the
  /// same routing (no communication needed).
  ShardId Route(const Transaction& tx);

  /// The shard a transaction would go to, without recording it.
  ShardId Peek(const Transaction& tx) const;

  /// ShardId of a contract, if one has been formed around it.
  std::optional<ShardId> ShardOfContract(const Address& contract) const;

  /// The contract a shard is formed around; nullopt for the MaxShard.
  std::optional<Address> ContractOfShard(ShardId shard) const;

  /// Number of shards including the MaxShard.
  size_t ShardCount() const { return 1 + contract_to_shard_.size(); }

  /// Routed-transaction counts per shard, indexed by ShardId
  /// (index 0 = MaxShard). Basis of the fractions β_i the verifiable
  /// leader broadcasts for miner assignment (Sec. III-B).
  std::vector<uint64_t> ShardSizes() const;

  /// β_i as percentages summing to ~100 (uniform when no transactions
  /// have been routed yet).
  std::vector<double> Fractions() const;

  const CallGraph& call_graph() const { return graph_; }

 private:
  CallGraph graph_;
  std::map<Address, ShardId> contract_to_shard_;
  std::vector<Address> shard_to_contract_;  // [i] = contract of shard i+1.
  std::vector<uint64_t> sizes_ = {0};       // [0] = MaxShard.
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_SHARD_FORMATION_H_
