#include "core/unification.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace shardchain {

uint64_t UnifiedParameters::SeedFor(const char* domain) const {
  Sha256 h;
  h.Update("shardchain.unified.v1");
  h.Update(domain);
  h.Update(randomness.bytes.data(), randomness.bytes.size());
  return h.Finalize().Prefix64();
}

IterativeMergeResult ComputeMergePlan(const UnifiedParameters& params,
                                      ThreadPool* pool) {
  Rng rng(params.SeedFor("merge"));
  return RunIterativeMerge(params.shard_sizes, params.merge_config, &rng, pool);
}

SelectionResult ComputeSelectionPlan(const UnifiedParameters& params,
                                     ThreadPool* pool) {
  Rng rng(params.SeedFor("select"));
  return RunSelectionGame(params.tx_fees, params.num_miners,
                          params.select_config, &rng, pool);
}

Status VerifySelection(const UnifiedParameters& params, size_t miner_index,
                       const std::vector<size_t>& claimed_set) {
  if (miner_index >= params.num_miners) {
    return Status::InvalidArgument("miner index out of range");
  }
  const SelectionResult plan = ComputeSelectionPlan(params);
  std::vector<size_t> claimed = claimed_set;
  std::sort(claimed.begin(), claimed.end());
  if (plan.assignment[miner_index] != claimed) {
    return Status::Unauthorized(
        "miner's transaction set deviates from the unified assignment");
  }
  return Status::OK();
}

Status VerifyMergeGroup(const UnifiedParameters& params,
                        const std::vector<size_t>& claimed_group) {
  const IterativeMergeResult plan = ComputeMergePlan(params);
  std::vector<size_t> claimed = claimed_group;
  std::sort(claimed.begin(), claimed.end());
  for (const std::vector<size_t>& group : plan.new_shards) {
    std::vector<size_t> expected = group;
    std::sort(expected.begin(), expected.end());
    if (expected == claimed) return Status::OK();
  }
  return Status::Unauthorized(
      "claimed merge group is not part of the unified merge plan");
}

uint64_t RunUnificationRound(Network* net, NodeId leader,
                             const std::vector<NodeId>& shard_reps) {
  assert(net != nullptr);
  const uint64_t before = net->CoordinationMessages();
  for (NodeId rep : shard_reps) {
    if (rep != leader) net->Send(rep, leader, MsgKind::kLeaderStat);
  }
  for (NodeId rep : shard_reps) {
    if (rep != leader) net->Send(leader, rep, MsgKind::kLeaderBroadcast);
  }
  return net->CoordinationMessages() - before;
}

uint64_t RunGossipIterations(Network* net, const std::vector<NodeId>& players,
                             size_t iterations) {
  assert(net != nullptr);
  const uint64_t before = net->CoordinationMessages();
  for (size_t it = 0; it < iterations; ++it) {
    for (NodeId a : players) {
      for (NodeId b : players) {
        if (a != b) net->Send(a, b, MsgKind::kGameGossip);
      }
    }
  }
  return net->CoordinationMessages() - before;
}

}  // namespace shardchain
