#include "core/epoch.h"

namespace shardchain {

Hash256 EpochManager::DeriveSeed(const Hash256& prev, uint64_t epoch_number) {
  Sha256 h;
  h.Update("shardchain.epoch.v1");
  h.Update(prev.bytes.data(), prev.bytes.size());
  Bytes n;
  AppendUint64(&n, epoch_number);
  h.Update(n);
  return h.Finalize();
}

Hash256 EpochManager::NextSeed() const {
  const Hash256& prev =
      history_.empty() ? genesis_seed_ : history_.back().randomness;
  return DeriveSeed(prev, history_.size() + 1);
}

Result<EpochRecord> EpochManager::Advance(
    const std::vector<LeaderCandidate>& candidates,
    const std::vector<double>& fractions) {
  if (fractions.empty()) {
    return Status::InvalidArgument("epoch needs at least one shard fraction");
  }
  const Hash256 seed = NextSeed();
  Result<size_t> leader = ElectLeader(candidates, seed);
  if (!leader.ok()) return leader.status();

  EpochRecord record;
  record.number = history_.size() + 1;
  record.seed = seed;
  record.leader_index = *leader;
  record.randomness = candidates[*leader].vrf.value;
  record.fractions = fractions;
  history_.push_back(record);
  return record;
}

Status EpochManager::VerifyRecord(const EpochRecord& record,
                                  const Hash256& prev_randomness,
                                  const PublicKey& leader_key,
                                  const VrfOutput& proof) {
  if (record.seed != DeriveSeed(prev_randomness, record.number)) {
    return Status::Unauthorized("epoch seed does not chain from history");
  }
  if (proof.value != record.randomness) {
    return Status::Unauthorized("recorded randomness is not the VRF value");
  }
  if (!VrfVerify(leader_key, record.seed, proof)) {
    return Status::Unauthorized("leader VRF proof does not verify");
  }
  return Status::OK();
}

Result<ShardId> EpochManager::CurrentShardOf(const Hash256& miner_id) const {
  if (history_.empty()) {
    return Status::FailedPrecondition("no epoch has been established");
  }
  const EpochRecord& current = history_.back();
  return AssignShard(current.randomness, miner_id, current.fractions);
}

}  // namespace shardchain
