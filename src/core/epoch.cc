#include "core/epoch.h"

namespace shardchain {

Hash256 EpochManager::DeriveSeed(const Hash256& prev, uint64_t epoch_number) {
  Sha256 h;
  h.Update("shardchain.epoch.v1");
  h.Update(prev.bytes.data(), prev.bytes.size());
  Bytes n;
  AppendUint64(&n, epoch_number);
  h.Update(n);
  return h.Finalize();
}

Hash256 EpochManager::NextSeed() const {
  const Hash256& prev =
      history_.empty() ? genesis_seed_ : history_.back().randomness;
  return DeriveSeed(prev, history_.size() + 1);
}

Result<EpochRecord> EpochManager::Advance(
    const std::vector<LeaderCandidate>& candidates,
    const std::vector<double>& fractions, size_t view) {
  if (fractions.empty()) {
    return Status::InvalidArgument("epoch needs at least one shard fraction");
  }
  const Hash256 seed = NextSeed();
  Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
  if (!ranked.ok()) return ranked.status();
  if (view >= ranked->size()) {
    return Status::OutOfRange("view " + std::to_string(view) +
                              " exceeds the " +
                              std::to_string(ranked->size()) +
                              " valid failover candidates");
  }
  const size_t leader = (*ranked)[view];

  EpochRecord record;
  record.number = history_.size() + 1;
  record.seed = seed;
  record.leader_index = leader;
  record.view = static_cast<uint32_t>(view);
  record.randomness = candidates[leader].vrf.value;
  record.fractions = fractions;
  history_.push_back(record);
  return record;
}

Hash256 EpochManager::FallbackRandomness(const Hash256& seed) {
  Sha256 h;
  h.Update("shardchain.epoch.fallback.v1");
  h.Update(seed.bytes.data(), seed.bytes.size());
  return h.Finalize();
}

Result<EpochRecord> EpochManager::AdvanceFallback() {
  EpochRecord record;
  record.number = history_.size() + 1;
  record.seed = NextSeed();
  record.randomness = FallbackRandomness(record.seed);
  record.fallback = true;
  record.fractions = {100.0};  // Everyone validates in the MaxShard.
  history_.push_back(record);
  return record;
}

Status EpochManager::VerifyRecord(const EpochRecord& record,
                                  const Hash256& prev_randomness,
                                  const PublicKey& leader_key,
                                  const VrfOutput& proof) {
  if (record.seed != DeriveSeed(prev_randomness, record.number)) {
    return Status::Unauthorized("epoch seed does not chain from history");
  }
  if (record.fallback) {
    if (record.randomness != FallbackRandomness(record.seed)) {
      return Status::Unauthorized(
          "fallback randomness does not derive from the seed");
    }
    return Status::OK();
  }
  if (proof.value != record.randomness) {
    return Status::Unauthorized("recorded randomness is not the VRF value");
  }
  if (!VrfVerify(leader_key, record.seed, proof)) {
    return Status::Unauthorized("leader VRF proof does not verify");
  }
  return Status::OK();
}

Status EpochManager::VerifyView(const std::vector<LeaderCandidate>& candidates,
                                const Hash256& seed,
                                const std::vector<bool>& live,
                                size_t claimed_view,
                                size_t claimed_leader_index) {
  if (live.size() != candidates.size()) {
    return Status::InvalidArgument("live flags must parallel candidates");
  }
  Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
  if (!ranked.ok()) return ranked.status();
  if (claimed_view >= ranked->size()) {
    return Status::OutOfRange("claimed view exceeds the candidate ranking");
  }
  if ((*ranked)[claimed_view] != claimed_leader_index) {
    return Status::Unauthorized(
        "claimed leader is not the candidate ranked at the claimed view");
  }
  if (!live[claimed_leader_index]) {
    return Status::Unauthorized("claimed leader is not live");
  }
  for (size_t v = 0; v < claimed_view; ++v) {
    if (live[(*ranked)[v]]) {
      return Status::Unauthorized(
          "a live candidate ranked below the claimed view was skipped");
    }
  }
  return Status::OK();
}

Result<ShardId> EpochManager::CurrentShardOf(const Hash256& miner_id) const {
  if (history_.empty()) {
    return Status::FailedPrecondition("no epoch has been established");
  }
  const EpochRecord& current = history_.back();
  return AssignShard(current.randomness, miner_id, current.fractions);
}

}  // namespace shardchain
