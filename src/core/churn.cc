#include "core/churn.h"

#include <algorithm>

#include "common/rng.h"

namespace shardchain {

namespace {

/// Uniform double in [0, 1) from one SplitMix64 output.
double UnitDraw(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* ChurnEventKindName(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::kJoin:
      return "join";
    case ChurnEventKind::kRetire:
      return "retire";
    case ChurnEventKind::kCrash:
      return "crash";
  }
  return "unknown";
}

std::vector<ChurnEvent> DrawChurnEvents(
    const ChurnConfig& config, uint64_t seed, uint64_t epoch,
    const std::vector<NodeId>& live_miners) {
  // Domain-separated chain: epoch e's draws never reuse epoch e+1's.
  uint64_t base = seed ^ 0x636875726e2e7631ULL;  // "churn.v1"
  uint64_t mixer = epoch;
  base ^= SplitMix64(&mixer);
  uint64_t state = base;

  std::vector<ChurnEvent> events;

  // Joins: expectation join_rate, capped.
  size_t joins = static_cast<size_t>(config.join_rate);
  const double frac = config.join_rate - static_cast<double>(joins);
  if (frac > 0.0 && UnitDraw(&state) < frac) ++joins;
  joins = std::min(joins, config.max_joins_per_epoch);
  for (size_t j = 0; j < joins; ++j) {
    events.push_back(ChurnEvent{ChurnEventKind::kJoin, 0, 0.0});
  }

  // Departures: one retire coin and one crash coin per live miner, in
  // ascending NodeId order (callers pass the live set sorted; the loop
  // order is part of the canonical schedule). The floor counts joins as
  // replacements arriving at the same boundary retires take effect.
  size_t live = live_miners.size() + joins;
  for (NodeId node : live_miners) {
    if (live <= config.min_live_miners) break;
    const double retire_coin = UnitDraw(&state);
    const double crash_coin = UnitDraw(&state);
    const double crash_at = UnitDraw(&state);
    if (crash_coin < config.crash_probability) {
      events.push_back(ChurnEvent{ChurnEventKind::kCrash, node, crash_at});
      --live;
    } else if (retire_coin < config.retire_probability) {
      events.push_back(ChurnEvent{ChurnEventKind::kRetire, node, 0.0});
      --live;
    }
  }
  return events;
}

}  // namespace shardchain
