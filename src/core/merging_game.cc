#include "core/merging_game.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "parallel/parallel.h"

namespace shardchain {

namespace {

/// Subslots per chunk in the Monte-Carlo payoff estimation. Fixed, so
/// the chunk decomposition — and with it each chunk's derived RNG
/// stream — depends only on the subslot count, never the thread count.
constexpr size_t kSubslotGrain = 4;

/// Per-subslot utility of player i (Eq. 14): the shard reward G is won
/// by every small-shard player when the drawn coalition satisfies
/// Eq. 1; merging players additionally pay C_i.
double SubslotUtility(bool merged, bool satisfied,
                      const MergingGameConfig& config) {
  double u = 0.0;
  if (satisfied) u += config.shard_reward;
  if (merged) u -= config.merge_cost;
  return u;
}

/// One joint draw of all players' strategies; returns the coalition and
/// whether Eq. 1 holds.
struct Draw {
  std::vector<uint8_t> merged;  // 0/1 per player.
  uint64_t coalition_size = 0;
  bool satisfied = false;
};

Draw SampleDraw(const std::vector<uint64_t>& sizes,
                const std::vector<double>& probs, uint64_t min_size,
                Rng* rng) {
  Draw d;
  d.merged.resize(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    d.merged[i] = rng->Bernoulli(probs[i]) ? 1 : 0;
    if (d.merged[i]) d.coalition_size += sizes[i];
  }
  // A "coalition" of one shard is no merge at all: Eq. 7 sums m >= 2
  // participants in a meaningful merge, and a lone shard cannot
  // change its own size.
  const size_t joiners = static_cast<size_t>(
      std::count(d.merged.begin(), d.merged.end(), uint8_t{1}));
  d.satisfied = joiners >= 2 && d.coalition_size >= min_size;
  return d;
}

}  // namespace

double MergeUtility(const std::vector<uint64_t>& sizes,
                    const std::vector<double>& probs, size_t player,
                    bool merge, const MergingGameConfig& config,
                    size_t mc_samples, Rng* rng, ThreadPool* pool) {
  assert(player < sizes.size());
  std::vector<double> fixed = probs;
  fixed[player] = merge ? 1.0 : 0.0;
  const uint64_t base = rng->Next();
  const double total = ParallelReduce(
      pool, mc_samples, kSubslotGrain, 0.0,
      [&sizes, &fixed, &config, base,
       merge](size_t begin, size_t end, size_t chunk) {
        Rng sub(ChunkSeed(base, chunk));
        double partial = 0.0;
        for (size_t s = begin; s < end; ++s) {
          const Draw d = SampleDraw(sizes, fixed, config.min_shard_size, &sub);
          partial += SubslotUtility(merge, d.satisfied, config);
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  return total / static_cast<double>(mc_samples);
}

/// Per-chunk payoff partials accumulated over one chunk of subslots.
struct SubslotPartial {
  std::vector<double> merge;    // Σ u over draws where player i merged.
  std::vector<double> mixed;    // Σ u over all draws.
  std::vector<uint32_t> draws;  // # draws where player i merged.
};

// flowlint: deterministic-root — consensus entry point (DESIGN.md §7)
OneTimeMergeResult RunOneTimeMerge(const std::vector<uint64_t>& sizes,
                                   const MergingGameConfig& config, Rng* rng,
                                   ThreadPool* pool) {
  assert(rng != nullptr);
  OneTimeMergeResult result;
  const size_t n = sizes.size();
  result.final_probs.assign(n, config.initial_prob);
  if (n == 0) return result;
  if (n == 1) {
    // A single shard cannot merge with anyone.
    result.converged = true;
    return result;
  }

  std::vector<double>& x = result.final_probs;
  std::vector<double> avg_merge(n, 0.0);   // Ū_i(Y, x_-i), Eq. 12.
  std::vector<double> avg_mixed(n, 0.0);   // Ū_i(x_i), Eq. 13.
  std::vector<uint32_t> merge_draws(n, 0);
  std::vector<SubslotPartial> partials(
      NumChunks(config.subslots, kSubslotGrain));

  for (size_t slot = 0; slot < config.max_slots; ++slot) {
    std::fill(avg_merge.begin(), avg_merge.end(), 0.0);
    std::fill(avg_mixed.begin(), avg_mixed.end(), 0.0);
    std::fill(merge_draws.begin(), merge_draws.end(), 0u);

    // M subslots: every player tosses her coin, utilities are recorded
    // (Algorithm 3, lines 2-6). One base draw from the slot's shared
    // stream seeds an independent stream per chunk of subslots; the
    // per-chunk partials are then folded in chunk order, so the slot
    // consumes exactly one value of `rng` and the sums are bit-equal at
    // every thread count.
    const uint64_t slot_base = rng->Next();
    ParallelChunks(pool, config.subslots, kSubslotGrain,
                   [&partials, &x, &sizes, &config, slot_base,
                    n](size_t begin, size_t end, size_t chunk) {
                     SubslotPartial& p = partials[chunk];
                     p.merge.assign(n, 0.0);
                     p.mixed.assign(n, 0.0);
                     p.draws.assign(n, 0u);
                     Rng sub(ChunkSeed(slot_base, chunk));
                     for (size_t q = begin; q < end; ++q) {
                       const Draw d =
                           SampleDraw(sizes, x, config.min_shard_size, &sub);
                       for (size_t i = 0; i < n; ++i) {
                         const double u = SubslotUtility(d.merged[i] != 0,
                                                         d.satisfied, config);
                         p.mixed[i] += u;
                         if (d.merged[i]) {
                           p.merge[i] += u;
                           ++p.draws[i];
                         }
                       }
                     }
                   });
    for (const SubslotPartial& p : partials) {
      for (size_t i = 0; i < n; ++i) {
        avg_merge[i] += p.merge[i];
        avg_mixed[i] += p.mixed[i];
        merge_draws[i] += p.draws[i];
      }
    }

    // Replicator update (Eq. 11) on the merge probability.
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double mixed = avg_mixed[i] / static_cast<double>(config.subslots);
      if (merge_draws[i] == 0) continue;  // Eq. 12 undefined this slot.
      const double merge_payoff =
          avg_merge[i] / static_cast<double>(merge_draws[i]);
      // Normalize by G so the step size is scale-free.
      const double gradient =
          (merge_payoff - mixed) / std::max(config.shard_reward, 1e-9);
      double next = x[i] + config.eta * gradient * x[i];
      next = std::clamp(next, config.prob_floor,
                        1.0 - config.prob_floor);
      max_delta = std::max(max_delta, std::fabs(next - x[i]));
      x[i] = next;
    }
    result.slots_used = slot + 1;
    if (max_delta < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final determination: repeated draws from the converged mixed
  // strategies until a qualifying coalition appears; with
  // prefer_minimal_coalition the repetition instead keeps the smallest
  // qualifying draw — "repeating increases the success probability,
  // indicating the higher probability for getting the optimal
  // solution" (Sec. VI-E1; the optimum is a coalition of size L).
  Draw best;
  for (size_t attempt = 0; attempt < config.final_draw_retries; ++attempt) {
    Draw d = SampleDraw(sizes, x, config.min_shard_size, rng);
    if (!d.satisfied) continue;
    if (!best.satisfied || (config.prefer_minimal_coalition &&
                            d.coalition_size < best.coalition_size)) {
      best = std::move(d);
    }
    if (!config.prefer_minimal_coalition) break;
  }
  if (best.satisfied) {
    for (size_t i = 0; i < n; ++i) {
      if (best.merged[i]) result.merged.push_back(i);
    }
    result.merged_size = best.coalition_size;
    result.formed = true;
  }
  return result;
}

std::vector<uint64_t> IterativeMergeResult::NewShardSizes(
    const std::vector<uint64_t>& sizes) const {
  std::vector<uint64_t> out;
  out.reserve(new_shards.size());
  for (const auto& group : new_shards) {
    uint64_t total = 0;
    for (size_t i : group) total += sizes[i];
    out.push_back(total);
  }
  return out;
}

namespace {

/// Shared outer loop of Algorithm 1: `step` proposes one coalition from
/// the remaining shards (returning indices into the remaining-list);
/// accepted coalitions are removed and the loop continues while the
/// remainder could still form a shard.
template <typename StepFn>
IterativeMergeResult IterateMerging(const std::vector<uint64_t>& sizes,
                                    uint64_t min_size, size_t max_failures,
                                    StepFn step) {
  IterativeMergeResult result;
  std::vector<size_t> remaining(sizes.size());
  std::iota(remaining.begin(), remaining.end(), 0);

  auto remaining_total = [&]() {
    uint64_t total = 0;
    for (size_t i : remaining) total += sizes[i];
    return total;
  };

  // Bounded retries so a stochastic step that keeps failing to form a
  // coalition terminates.
  size_t consecutive_failures = 0;
  while (remaining.size() >= 2 && remaining_total() >= min_size &&
         consecutive_failures < max_failures) {
    std::vector<uint64_t> rem_sizes;
    rem_sizes.reserve(remaining.size());
    for (size_t i : remaining) rem_sizes.push_back(sizes[i]);

    std::vector<size_t> coalition = step(rem_sizes, &result.total_slots);
    uint64_t coalition_size = 0;
    for (size_t local : coalition) coalition_size += rem_sizes[local];
    if (coalition.size() < 2 || coalition_size < min_size) {
      ++consecutive_failures;
      continue;
    }
    consecutive_failures = 0;

    std::vector<size_t> group;
    group.reserve(coalition.size());
    for (size_t local : coalition) group.push_back(remaining[local]);
    result.new_shards.push_back(group);

    std::vector<size_t> next;
    next.reserve(remaining.size() - coalition.size());
    std::vector<bool> taken(remaining.size(), false);
    for (size_t local : coalition) taken[local] = true;
    for (size_t local = 0; local < remaining.size(); ++local) {
      if (!taken[local]) next.push_back(remaining[local]);
    }
    remaining = std::move(next);
  }
  result.leftover = remaining;
  return result;
}

}  // namespace

// flowlint: deterministic-root — consensus entry point (DESIGN.md §7)
IterativeMergeResult RunIterativeMerge(const std::vector<uint64_t>& sizes,
                                       const MergingGameConfig& config,
                                       Rng* rng, ThreadPool* pool) {
  assert(rng != nullptr);
  return IterateMerging(
      sizes, config.min_shard_size, /*max_failures=*/8,
      [&](const std::vector<uint64_t>& rem, size_t* slots) {
        OneTimeMergeResult one = RunOneTimeMerge(rem, config, rng, pool);
        *slots += one.slots_used;
        return one.formed ? one.merged : std::vector<size_t>{};
      });
}

// flowlint: deterministic-root — consensus entry point (DESIGN.md §7)
IterativeMergeResult RunRandomizedMerge(const std::vector<uint64_t>& sizes,
                                        const MergingGameConfig& config,
                                        Rng* rng, double merge_prob,
                                        ThreadPool* pool) {
  assert(rng != nullptr);
  // One joint coin flip: the shards that say yes form the (single) new
  // shard if Eq. 1 holds, and "the algorithm also stops here"
  // (Sec. VI-C2) — no iteration over the remainder. The flips fan out
  // over per-chunk streams seeded off one base draw, each writing its
  // own flag slot, so the coalition is the same at any thread count.
  IterativeMergeResult result;
  result.total_slots = 1;
  const uint64_t base = rng->Next();
  std::vector<uint8_t> joined(sizes.size(), 0);
  ParallelChunks(pool, sizes.size(), kSubslotGrain,
                 [&joined, base, merge_prob](size_t begin, size_t end,
                                             size_t chunk) {
                   Rng sub(ChunkSeed(base, chunk));
                   for (size_t i = begin; i < end; ++i) {
                     joined[i] = sub.Bernoulli(merge_prob) ? 1 : 0;
                   }
                 });
  std::vector<size_t> coalition;
  uint64_t coalition_size = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (joined[i]) {
      coalition.push_back(i);
      coalition_size += sizes[i];
    }
  }
  const bool formed =
      coalition.size() >= 2 && coalition_size >= config.min_shard_size;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (!formed ||
        std::find(coalition.begin(), coalition.end(), i) == coalition.end()) {
      result.leftover.push_back(i);
    }
  }
  if (formed) result.new_shards.push_back(std::move(coalition));
  return result;
}

size_t OptimalNewShards(const std::vector<uint64_t>& sizes,
                        uint64_t min_shard_size) {
  if (min_shard_size == 0) return sizes.size();
  uint64_t total = 0;
  for (uint64_t s : sizes) total += s;
  return static_cast<size_t>(total / min_shard_size);
}

}  // namespace shardchain
