#include "core/migration.h"

#include <algorithm>
#include <bit>
#include <tuple>

#include "common/hex.h"
#include "types/codec.h"

namespace shardchain {

Result<HandoffRecord> BuildHandoff(const StateDB& source_state, ShardId source,
                                   ShardId dest, const Address& addr) {
  if (source == dest) {
    return Status::InvalidArgument("handoff source equals destination");
  }
  const Account* account = source_state.Find(addr);
  if (account == nullptr) {
    return Status::NotFound("account not materialized on source shard");
  }
  HandoffRecord record;
  record.addr = addr;
  record.source = source;
  record.dest = dest;
  record.source_root = source_state.StateRoot();
  record.account = *account;
  record.proof = source_state.ProveAccount(addr);
  return record;
}

Status VerifyHandoff(const HandoffRecord& record) {
  if (record.source == record.dest) {
    return Status::Unauthorized("handoff source equals destination");
  }
  // Recompute the digest from the carried contents; a stale cached
  // digest on a tampered account must not be able to satisfy the proof.
  record.account.MarkDigestDirty();
  const Hash256 digest = record.account.Digest(record.addr);
  std::optional<Hash256> proven;
  SHARDCHAIN_ASSIGN_OR_RETURN(
      proven,
      StateDB::VerifyAccount(record.source_root, record.addr, record.proof));
  if (!proven.has_value()) {
    return Status::Unauthorized("proof shows the account absent at source");
  }
  if (*proven != digest) {
    return Status::Unauthorized("carried account does not match proven digest");
  }
  return Status::OK();
}

void CanonicalizeMigrationPlan(MigrationPlan* plan) {
  std::stable_sort(plan->handoffs.begin(), plan->handoffs.end(),
                   [](const HandoffRecord& a, const HandoffRecord& b) {
                     return std::tie(a.source, a.dest, a.addr.bytes) <
                            std::tie(b.source, b.dest, b.addr.bytes);
                   });
}

namespace codec {

namespace {

/// Count prefix guarded against the remaining buffer (each element
/// needs at least `min_elem_bytes`), so corrupt input cannot drive a
/// huge reserve.
Result<size_t> ReadCount(Reader* r, size_t min_elem_bytes) {
  uint64_t count = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(count, r->ReadU64());
  if (count > r->remaining() / min_elem_bytes) {
    return Status::Corruption("count exceeds buffer");
  }
  return static_cast<size_t>(count);
}

void AppendLengthPrefixed(Bytes* out, const Bytes& data) {
  AppendUint64(out, data.size());
  out->insert(out->end(), data.begin(), data.end());
}

Result<Bytes> ReadLengthPrefixed(Reader* r) {
  size_t len = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(len, ReadCount(r, 1));
  return r->ReadBytes(len);
}

}  // namespace

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Bytes EncodeAccountState(const Account& account) {
  Bytes out;
  AppendUint64(&out, account.balance);
  AppendUint64(&out, account.nonce);
  AppendLengthPrefixed(&out, account.code);
  AppendUint64(&out, account.storage.size());
  // std::map iterates in key order: canonical by construction.
  for (const auto& [key, value] : account.storage) {
    AppendUint64(&out, key);
    AppendUint64(&out, std::bit_cast<uint64_t>(value));
  }
  return out;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Result<Account> DecodeAccountState(const Bytes& data) {
  Reader r(data);
  Account account;
  SHARDCHAIN_ASSIGN_OR_RETURN(account.balance, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(account.nonce, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(account.code, ReadLengthPrefixed(&r));
  size_t slots = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(slots, ReadCount(&r, 16));
  uint64_t prev_key = 0;
  for (size_t i = 0; i < slots; ++i) {
    uint64_t key = 0;
    uint64_t value = 0;
    SHARDCHAIN_ASSIGN_OR_RETURN(key, r.ReadU64());
    SHARDCHAIN_ASSIGN_OR_RETURN(value, r.ReadU64());
    if (i > 0 && key <= prev_key) {
      return Status::Corruption("storage keys not strictly ascending");
    }
    prev_key = key;
    account.storage.emplace(key, std::bit_cast<int64_t>(value));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after account");
  return account;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Bytes EncodeHandoffRecord(const HandoffRecord& record) {
  Bytes out;
  out.insert(out.end(), record.addr.bytes.begin(), record.addr.bytes.end());
  AppendUint32(&out, record.source);
  AppendUint32(&out, record.dest);
  out.insert(out.end(), record.source_root.bytes.begin(),
             record.source_root.bytes.end());
  AppendLengthPrefixed(&out, EncodeAccountState(record.account));
  AppendUint64(&out, record.proof.size());
  for (const MerklePatriciaTrie::ProofNode& node : record.proof) {
    AppendLengthPrefixed(&out, node.encoded);
  }
  return out;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Result<HandoffRecord> DecodeHandoffRecord(const Bytes& data) {
  Reader r(data);
  HandoffRecord record;
  SHARDCHAIN_ASSIGN_OR_RETURN(record.addr, r.ReadAddress());
  SHARDCHAIN_ASSIGN_OR_RETURN(record.source, r.ReadU32());
  SHARDCHAIN_ASSIGN_OR_RETURN(record.dest, r.ReadU32());
  SHARDCHAIN_ASSIGN_OR_RETURN(record.source_root, r.ReadHash());
  Bytes account_bytes;
  SHARDCHAIN_ASSIGN_OR_RETURN(account_bytes, ReadLengthPrefixed(&r));
  SHARDCHAIN_ASSIGN_OR_RETURN(record.account,
                              DecodeAccountState(account_bytes));
  size_t nodes = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(nodes, ReadCount(&r, 8));
  record.proof.reserve(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    MerklePatriciaTrie::ProofNode node;
    SHARDCHAIN_ASSIGN_OR_RETURN(node.encoded, ReadLengthPrefixed(&r));
    record.proof.push_back(std::move(node));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after handoff");
  return record;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Bytes EncodeMigrationPlan(const MigrationPlan& plan) {
  Bytes out;
  AppendUint64(&out, plan.epoch);
  AppendUint64(&out, plan.handoffs.size());
  for (const HandoffRecord& record : plan.handoffs) {
    AppendLengthPrefixed(&out, EncodeHandoffRecord(record));
  }
  return out;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Result<MigrationPlan> DecodeMigrationPlan(const Bytes& data) {
  Reader r(data);
  MigrationPlan plan;
  SHARDCHAIN_ASSIGN_OR_RETURN(plan.epoch, r.ReadU64());
  size_t count = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(count, ReadCount(&r, 8));
  plan.handoffs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Bytes record_bytes;
    SHARDCHAIN_ASSIGN_OR_RETURN(record_bytes, ReadLengthPrefixed(&r));
    HandoffRecord record;
    SHARDCHAIN_ASSIGN_OR_RETURN(record, DecodeHandoffRecord(record_bytes));
    plan.handoffs.push_back(std::move(record));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after plan");
  return plan;
}

}  // namespace codec
}  // namespace shardchain
