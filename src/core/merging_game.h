#ifndef SHARDCHAIN_CORE_MERGING_GAME_H_
#define SHARDCHAIN_CORE_MERGING_GAME_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "parallel/thread_pool.h"

namespace shardchain {

/// \brief Parameters of the inter-shard merging game (Sec. IV-A, V).
struct MergingGameConfig {
  /// L: the minimum size of a newly formed shard (Eq. 1). A shard of at
  /// least this many pending transactions keeps its miners busy.
  uint64_t min_shard_size = 20;
  /// G: the shard reward paid to small-shard miners when the merge
  /// satisfies Eq. 1.
  double shard_reward = 100.0;
  /// C_i: the profit a merging shard's miners forgo (competition in the
  /// larger shard). One value for all players; must be < shard_reward
  /// or merging never pays.
  double merge_cost = 20.0;
  /// η: replicator step size (Eq. 11).
  double eta = 0.05;
  /// M: subslots per slot — samples used to estimate Eq. 12/13.
  size_t subslots = 32;
  /// Convergence: stop when no probability moves more than this in a
  /// slot, or after max_slots.
  double tolerance = 1e-3;
  size_t max_slots = 500;
  /// Initial merge probability (the leader-broadcast "random initial
  /// choice"; the paper's parameter unification makes it common).
  double initial_prob = 0.5;
  /// After convergence: how many times the final joint draw is retried
  /// until Eq. 1 holds ("repeating increases the success probability",
  /// Sec. VI-E1).
  size_t final_draw_retries = 64;
  /// How the repeated final draws pick the coalition: false = first
  /// qualifying draw (the baseline behaviour); true = the qualifying
  /// draw with the smallest size, which approaches the optimum of one
  /// new shard per L transactions ("repeating increases ... the higher
  /// probability for getting the optimal solution", Sec. VI-E1).
  bool prefer_minimal_coalition = false;
  /// Trembling-hand exploration floor: merge probabilities are clamped
  /// to [prob_floor, 1 - prob_floor]. With many players the volunteer's
  /// dilemma drives x* toward 0; a small positive floor keeps the
  /// population able to form coalitions at scale (Sec. VI-E1 relies on
  /// repeated draws succeeding).
  double prob_floor = 0.001;
};

/// \brief Result of one run of Algorithm 3 (one-time shard merging).
struct OneTimeMergeResult {
  /// Indices (into the input size vector) of the shards forming the new
  /// shard; empty if no qualifying coalition was drawn.
  std::vector<size_t> merged;
  /// Converged mixed strategies x_i*.
  std::vector<double> final_probs;
  size_t slots_used = 0;
  bool converged = false;
  /// True iff `merged` is non-empty and its total size >= L.
  bool formed = false;
  /// Total transactions in the new shard (y_m, Eq. 7).
  uint64_t merged_size = 0;
};

/// Runs Algorithm 3: discretized replicator dynamics (Eq. 11) with
/// Monte-Carlo payoff estimates (Eq. 12–14) until the mixed-strategy
/// equilibrium, then draws the actual merge coalition from the
/// converged probabilities. `sizes[i]` is the transaction count of
/// small shard i.
///
/// `rng` drives one base draw per slot; each chunk of subslots then
/// runs an independent stream seeded by ChunkSeed(base, chunk), and
/// the per-chunk payoff partials are combined in chunk order. The
/// outcome is therefore byte-identical at every thread count,
/// including `pool == nullptr` (serial, the default).
OneTimeMergeResult RunOneTimeMerge(const std::vector<uint64_t>& sizes,
                                   const MergingGameConfig& config, Rng* rng,
                                   ThreadPool* pool = nullptr);

/// \brief Result of iterative merging (Algorithm 1) or a baseline.
struct IterativeMergeResult {
  /// Each entry lists the source-shard indices of one new shard.
  std::vector<std::vector<size_t>> new_shards;
  /// Small shards left unmerged.
  std::vector<size_t> leftover;
  /// Slots used across all Algorithm 3 invocations.
  size_t total_slots = 0;

  size_t NumNewShards() const { return new_shards.size(); }
  /// Sizes of the new shards given the original size vector.
  std::vector<uint64_t> NewShardSizes(const std::vector<uint64_t>& sizes) const;
};

/// Algorithm 1: repeatedly runs Algorithm 3 on the remaining small
/// shards while they can still form a shard of size >= L. `pool` is
/// forwarded to every RunOneTimeMerge invocation.
IterativeMergeResult RunIterativeMerge(const std::vector<uint64_t>& sizes,
                                       const MergingGameConfig& config,
                                       Rng* rng, ThreadPool* pool = nullptr);

/// The randomized baseline of Sec. VI-C2: each remaining shard joins
/// the next coalition with probability `merge_prob` (paper: 0.5),
/// iterated with the same outer loop as Algorithm 1 but with a single
/// draw per coalition ("at some random point, all the miners are at an
/// equilibrium state ... and the algorithm also stops here") — a draw
/// that fails Eq. 1 ends the process.
IterativeMergeResult RunRandomizedMerge(const std::vector<uint64_t>& sizes,
                                        const MergingGameConfig& config,
                                        Rng* rng, double merge_prob = 0.5,
                                        ThreadPool* pool = nullptr);

/// The optimum of Fig. 5a: floor(total transactions / L) new shards
/// ("the system throughput is maximized when the size of all the new
/// shards is L").
size_t OptimalNewShards(const std::vector<uint64_t>& sizes,
                        uint64_t min_shard_size);

/// Expected utilities (Eq. 8/9) under independent merge probabilities
/// `probs` — exposed for tests of the equilibrium condition. Samples
/// are drawn from per-chunk streams seeded off one base draw from
/// `rng`, so the estimate is the same at every thread count.
double MergeUtility(const std::vector<uint64_t>& sizes,
                    const std::vector<double>& probs, size_t player,
                    bool merge, const MergingGameConfig& config,
                    size_t mc_samples, Rng* rng, ThreadPool* pool = nullptr);

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_MERGING_GAME_H_
