#ifndef SHARDCHAIN_CORE_EPOCH_H_
#define SHARDCHAIN_CORE_EPOCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/miner_assignment.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "crypto/vrf.h"
#include "types/block.h"

namespace shardchain {

/// \brief One epoch's public record: everything a late-joining miner
/// needs to verify who led, who sits where, and that the randomness
/// chain is unbroken.
struct EpochRecord {
  uint64_t number = 0;
  Hash256 seed;        ///< H(prev randomness ‖ epoch number).
  Hash256 randomness;  ///< Leader's verified VRF value on the seed.
  size_t leader_index = 0;
  std::vector<double> fractions;  ///< β_i broadcast by the leader.
};

/// \brief Epoch manager: randomness chaining, leader rotation, and
/// periodic reconfiguration.
///
/// Sharding systems "need to reconfigure shards and reselect
/// validating peers periodically to prevent the Sybil attack" (Related
/// Work). The manager chains epochs so that each seed is derived from
/// the previous epoch's randomness — an adversary cannot grind a
/// future seed without first winning the present leadership — and
/// exposes verification of the whole history.
class EpochManager {
 public:
  /// `genesis_seed` anchors the chain (public, arbitrary).
  explicit EpochManager(const Hash256& genesis_seed)
      : genesis_seed_(genesis_seed) {}

  /// The seed the NEXT epoch's leader election runs on.
  Hash256 NextSeed() const;

  /// Advances one epoch: elects the leader among `candidates`
  /// (VRF-evaluated on NextSeed()), records the epoch with the
  /// leader-provided `fractions`, and returns the new record.
  Result<EpochRecord> Advance(const std::vector<LeaderCandidate>& candidates,
                              const std::vector<double>& fractions);

  /// History access.
  size_t EpochCount() const { return history_.size(); }
  const EpochRecord* Current() const {
    return history_.empty() ? nullptr : &history_.back();
  }
  const std::vector<EpochRecord>& History() const { return history_; }

  /// Verifies that `record` is internally consistent with `proof`
  /// from the claimed leader: the seed chains from `prev_randomness`
  /// and the randomness is the leader's valid VRF output on it.
  static Status VerifyRecord(const EpochRecord& record,
                             const Hash256& prev_randomness,
                             const PublicKey& leader_key,
                             const VrfOutput& proof);

  /// A miner's shard for the CURRENT epoch (fractions + randomness
  /// from the newest record).
  Result<ShardId> CurrentShardOf(const Hash256& miner_id) const;

 private:
  static Hash256 DeriveSeed(const Hash256& prev, uint64_t epoch_number);

  Hash256 genesis_seed_;
  std::vector<EpochRecord> history_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_EPOCH_H_
