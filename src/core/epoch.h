#ifndef SHARDCHAIN_CORE_EPOCH_H_
#define SHARDCHAIN_CORE_EPOCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/miner_assignment.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "crypto/vrf.h"
#include "types/block.h"

namespace shardchain {

/// \brief One epoch's public record: everything a late-joining miner
/// needs to verify who led, who sits where, and that the randomness
/// chain is unbroken.
struct EpochRecord {
  uint64_t number = 0;
  Hash256 seed;        ///< H(prev randomness ‖ epoch number).
  Hash256 randomness;  ///< Leader's verified VRF value on the seed.
  size_t leader_index = 0;
  /// View changes performed before this record: 0 means the elected
  /// leader broadcast in time; v > 0 means the v lowest-ticket
  /// candidates were presumed dead and the (v+1)-th ranked one led.
  uint32_t view = 0;
  /// True for a leaderless degraded epoch: no broadcast arrived by the
  /// deadline and every miner fell back to the MaxShard (full
  /// validation). `randomness` is then derived from the seed alone and
  /// `leader_index` is meaningless.
  bool fallback = false;
  std::vector<double> fractions;  ///< β_i broadcast by the leader.
};

/// \brief Epoch manager: randomness chaining, leader rotation, and
/// periodic reconfiguration.
///
/// Sharding systems "need to reconfigure shards and reselect
/// validating peers periodically to prevent the Sybil attack" (Related
/// Work). The manager chains epochs so that each seed is derived from
/// the previous epoch's randomness — an adversary cannot grind a
/// future seed without first winning the present leadership — and
/// exposes verification of the whole history.
class EpochManager {
 public:
  /// `genesis_seed` anchors the chain (public, arbitrary).
  explicit EpochManager(const Hash256& genesis_seed)
      : genesis_seed_(genesis_seed) {}

  /// The seed the NEXT epoch's leader election runs on.
  Hash256 NextSeed() const;

  /// Advances one epoch: elects the leader among `candidates`
  /// (VRF-evaluated on NextSeed()), records the epoch with the
  /// leader-provided `fractions`, and returns the new record.
  ///
  /// `view` selects the failover leader: view 0 is the lowest valid
  /// VRF ticket, view v the (v+1)-th lowest — used after v broadcast
  /// timeouts (leader failover). Fails if fewer than view+1 candidates
  /// carry valid proofs.
  Result<EpochRecord> Advance(const std::vector<LeaderCandidate>& candidates,
                              const std::vector<double>& fractions,
                              size_t view = 0);

  /// Advances one epoch WITHOUT a leader: the MaxShard fallback for an
  /// epoch whose broadcast never arrived. The randomness is derived
  /// from the seed alone (public, no VRF) and the single fraction 100
  /// sends every miner to the MaxShard for full validation. Keeps the
  /// seed chain unbroken so the next epoch elects normally.
  Result<EpochRecord> AdvanceFallback();

  /// The randomness a fallback record must carry for `seed`.
  static Hash256 FallbackRandomness(const Hash256& seed);

  /// History access.
  size_t EpochCount() const { return history_.size(); }
  const EpochRecord* Current() const {
    return history_.empty() ? nullptr : &history_.back();
  }
  const std::vector<EpochRecord>& History() const { return history_; }

  /// Verifies that `record` is internally consistent with `proof`
  /// from the claimed leader: the seed chains from `prev_randomness`
  /// and the randomness is the leader's valid VRF output on it.
  /// Fallback records verify structurally instead (leaderless): the
  /// seed chains and the randomness equals FallbackRandomness(seed);
  /// `leader_key`/`proof` are ignored for them.
  static Status VerifyRecord(const EpochRecord& record,
                             const Hash256& prev_randomness,
                             const PublicKey& leader_key,
                             const VrfOutput& proof);

  /// The view-change acceptance rule (Sec. IV-C liveness): a claimed
  /// (view, leader) pair is valid iff the leader is the lowest-ranked
  /// *live* candidate — every better-ranked candidate is marked dead in
  /// `live` (parallel to `candidates`) and the claimed one is alive.
  /// Honest miners accept exactly one view per epoch this way: a
  /// failed leader cannot be impersonated and a live one cannot be
  /// skipped.
  static Status VerifyView(const std::vector<LeaderCandidate>& candidates,
                           const Hash256& seed, const std::vector<bool>& live,
                           size_t claimed_view, size_t claimed_leader_index);

  /// A miner's shard for the CURRENT epoch (fractions + randomness
  /// from the newest record).
  Result<ShardId> CurrentShardOf(const Hash256& miner_id) const;

 private:
  static Hash256 DeriveSeed(const Hash256& prev, uint64_t epoch_number);

  Hash256 genesis_seed_;
  std::vector<EpochRecord> history_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_EPOCH_H_
