#ifndef SHARDCHAIN_CORE_BEACON_H_
#define SHARDCHAIN_CORE_BEACON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crypto/sha256.h"
#include "net/network.h"

namespace shardchain {

/// \brief Commit-reveal distributed randomness beacon.
///
/// SUBSTITUTION NOTE (DESIGN.md §2): the paper generates its public
/// randomness with RandHound under a verifiable leader. This beacon is
/// the self-contained equivalent: every participant commits
/// H(share), then reveals; the beacon output is the hash of all
/// revealed shares in participant order. Properties:
///   - unpredictability: no participant learns the output before the
///     last reveal;
///   - verifiability: anyone can recompute the output from the public
///     transcript and check every reveal against its commitment;
///   - bias resistance: a single withholding participant can only
///     choose between "output with me" and "output without me"
///     (one bit), and withholders are publicly identified for
///     slashing/exclusion — the standard commit-reveal trade-off that
///     RandHound's threshold setup removes entirely.
class RandomnessBeacon {
 public:
  enum class Phase : uint8_t { kCommit = 0, kReveal = 1, kDone = 2 };

  /// `min_reveals`: how many reveals Finalize requires (liveness vs
  /// bias trade-off).
  explicit RandomnessBeacon(size_t min_reveals = 1)
      : min_reveals_(min_reveals) {}

  Phase phase() const { return phase_; }

  /// The commitment a participant should publish for `share`.
  static Hash256 CommitmentFor(const Bytes& share);

  /// Commit phase: records `commitment` for `node`. Rejects double
  /// commits and commits after the phase closed.
  Status Commit(NodeId node, const Hash256& commitment);

  /// Closes the commit phase (no more commitments accepted).
  Status CloseCommits();

  /// Reveal phase: `share` must hash to the node's commitment.
  Status Reveal(NodeId node, const Bytes& share);

  /// Finalizes: hashes all revealed shares (in node order) into the
  /// beacon output. Fails if fewer than min_reveals arrived.
  Result<Hash256> Finalize();

  /// After Finalize: the output (nullopt before).
  std::optional<Hash256> output() const { return output_; }

  /// Participants that committed but never revealed — the would-be
  /// biasers, publicly identifiable.
  std::vector<NodeId> Withholders() const;

  size_t CommitCount() const { return commitments_.size(); }
  size_t RevealCount() const { return reveals_.size(); }

  /// Recomputes and checks a finalized transcript: every reveal matches
  /// its commitment and the output is the hash of the reveals. For
  /// verifying someone else's beacon run.
  static Status VerifyTranscript(
      const std::map<NodeId, Hash256>& commitments,
      const std::map<NodeId, Bytes>& reveals, const Hash256& claimed_output);

 private:
  static Hash256 Aggregate(const std::map<NodeId, Bytes>& reveals);

  size_t min_reveals_;
  Phase phase_ = Phase::kCommit;
  std::map<NodeId, Hash256> commitments_;
  std::map<NodeId, Bytes> reveals_;
  std::optional<Hash256> output_;
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_BEACON_H_
