#ifndef SHARDCHAIN_CORE_CHURN_H_
#define SHARDCHAIN_CORE_CHURN_H_

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "types/block.h"

namespace shardchain {

/// \brief What happens to one miner in a churn schedule.
enum class ChurnEventKind : uint8_t {
  kJoin = 0,    ///< A fresh miner enters at the NEXT epoch boundary.
  kRetire = 1,  ///< Voluntary leave: serves out the epoch, then departs.
  kCrash = 2,   ///< Crash-stop mid-epoch at fraction `when` of the epoch.
};

const char* ChurnEventKindName(ChurnEventKind kind);

/// \brief One drawn churn event. `node` is the victim for retire/crash
/// (always one of the live miners passed to DrawChurnEvents) and unused
/// for joins. `when` is the crash instant as a fraction of the epoch in
/// [0, 1); zero for joins and retires, which take effect at boundaries.
struct ChurnEvent {
  ChurnEventKind kind = ChurnEventKind::kJoin;
  NodeId node = 0;
  double when = 0.0;
};

/// \brief Rates of the seeded churn process. All probabilities are per
/// epoch; departures stop once the live population would drop below
/// `min_live_miners`, so a schedule can never extinguish the system.
struct ChurnConfig {
  /// Expected number of joins per epoch (the fractional part is a
  /// Bernoulli coin).
  double join_rate = 0.0;
  /// Per live miner: probability of a voluntary leave this epoch.
  double retire_probability = 0.0;
  /// Per live miner: probability of a crash-stop this epoch.
  double crash_probability = 0.0;
  size_t min_live_miners = 4;
  size_t max_joins_per_epoch = 4;
};

/// Draws the churn schedule of one epoch as a pure function of
/// (config, seed, epoch, live set): a private SplitMix64 chain keyed by
/// seed and epoch drives every coin, so two miners replaying the same
/// history draw bit-identical events regardless of thread count or call
/// interleaving. Events come out in a canonical order — joins first,
/// then per-miner retire/crash decisions in ascending NodeId order.
std::vector<ChurnEvent> DrawChurnEvents(const ChurnConfig& config,
                                        uint64_t seed, uint64_t epoch,
                                        const std::vector<NodeId>& live_miners);

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_CHURN_H_
