#ifndef SHARDCHAIN_CORE_MINER_ASSIGNMENT_H_
#define SHARDCHAIN_CORE_MINER_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "crypto/vrf.h"
#include "net/network.h"
#include "types/block.h"

namespace shardchain {

/// \brief Miner-to-shard assignment (Sec. III-B).
///
/// A verifiable leader — the miner with the smallest VRF ticket on the
/// epoch seed — broadcasts the epoch randomness and the per-shard
/// transaction fractions β_i. Every miner then derives a RandHound-style
/// uniform draw r in [1, 100] from (randomness, her public key) and
/// joins shard s when r falls inside s's cumulative fraction band.
/// Anyone can re-derive the draw from public data, so cheating on shard
/// membership is detectable (the Sec. III-C receive-side check).

/// One candidate in the leader election.
struct LeaderCandidate {
  PublicKey public_key;
  VrfOutput vrf;
};

/// Elects the leader: the candidate with the smallest valid VRF ticket
/// on `seed`. Candidates with invalid proofs are skipped; fails if none
/// is valid.
Result<size_t> ElectLeader(const std::vector<LeaderCandidate>& candidates,
                           const Hash256& seed);

/// Full failover ranking: indices of every candidate with a valid VRF
/// proof on `seed`, ordered by ascending ticket (ties broken by index).
/// ranked[0] is the elected leader; ranked[v] is the leader of view v
/// after v view changes (see EpochManager::VerifyView). Fails if no
/// candidate is valid. `pool` parallelizes the per-candidate VRF proof
/// verification (a pure predicate per candidate, so the ranking is
/// identical at any thread count); nullptr verifies serially.
Result<std::vector<size_t>> RankCandidates(
    const std::vector<LeaderCandidate>& candidates, const Hash256& seed,
    ThreadPool* pool = nullptr);

/// RandHound-lite: miners are "separated to 100 groups evenly"; returns
/// this miner's group, a deterministic uniform draw in [1, 100] from
/// the leader randomness and the miner's key fingerprint.
uint32_t RandHoundDraw(const Hash256& randomness, const Hash256& miner_id);

/// Maps a draw to the shard whose cumulative fraction band contains it.
/// `fractions` are percentages per ShardId (index 0 = MaxShard) summing
/// to ~100.
ShardId ShardForDraw(uint32_t draw, const std::vector<double>& fractions);

/// Full assignment for one miner.
ShardId AssignShard(const Hash256& randomness, const Hash256& miner_id,
                    const std::vector<double>& fractions);

/// The receive-side verification of Sec. III-C: checks a claimed
/// membership against the public randomness and fractions. Returns
/// Unauthorized if the claim does not re-derive.
Status VerifyShardMembership(const Hash256& randomness,
                             const Hash256& miner_id,
                             const std::vector<double>& fractions,
                             ShardId claimed);

/// Assigns a whole miner population and registers it on `net` (which
/// may be null). Returns per-miner shard ids, positionally aligned with
/// `miner_ids`; miner i is registered as NodeId(i).
std::vector<ShardId> AssignAllMiners(const Hash256& randomness,
                                     const std::vector<Hash256>& miner_ids,
                                     const std::vector<double>& fractions,
                                     Network* net);

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_MINER_ASSIGNMENT_H_
