#include "core/sharding_system.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "chain/pipeline.h"
#include "parallel/parallel.h"
#include "types/codec.h"

namespace shardchain {

ShardingSystem::ShardingSystem(ShardingSystemConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  if (config_.parallel.Resolve() > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.parallel.Resolve());
  }
}

NodeId ShardingSystem::AddMiner() {
  KeyPair keys = KeyPair::Generate(&rng_);
  const Hash256 id = keys.public_key().Fingerprint();
  const NodeId node = static_cast<NodeId>(miners_.size());
  miners_.push_back(MinerRecord{std::move(keys), id, kMaxShardId, 0,
                                MinerStatus::kActive});
  net_.Register(node, kMaxShardId);
  return node;
}

void ShardingSystem::Mint(const Address& account, Amount amount) {
  genesis_state_.Mint(account, amount);
}

Result<Address> ShardingSystem::DeployContract(
    const Address& creator, const ContractProgram& program) {
  return ContractRegistry::Deploy(&genesis_state_, creator, program);
}

// --- Churn -----------------------------------------------------------

NodeId ShardingSystem::JoinMiner() {
  KeyPair keys = KeyPair::Generate(&rng_);
  const Hash256 id = keys.public_key().Fingerprint();
  const NodeId node = static_cast<NodeId>(miners_.size());
  miners_.push_back(MinerRecord{std::move(keys), id, kMaxShardId, 0,
                                MinerStatus::kPending});
  // Not on the network until activation at the next boundary.
  return node;
}

Status ShardingSystem::RetireMiner(NodeId miner) {
  if (miner >= miners_.size()) {
    return Status::InvalidArgument("unknown miner");
  }
  MinerRecord& m = miners_[miner];
  if (m.status == MinerStatus::kDeparted) {
    return Status::FailedPrecondition("miner already departed");
  }
  if (m.status == MinerStatus::kPending) {
    // Never served: drop it outright at the next boundary.
    m.status = MinerStatus::kDeparted;
    return Status::OK();
  }
  m.status = MinerStatus::kRetiring;
  return Status::OK();
}

Status ShardingSystem::CrashMiner(NodeId miner) {
  if (miner >= miners_.size()) {
    return Status::InvalidArgument("unknown miner");
  }
  MinerRecord& m = miners_[miner];
  if (m.status == MinerStatus::kDeparted) {
    return Status::FailedPrecondition("miner already departed");
  }
  const bool was_serving = m.status == MinerStatus::kActive ||
                           m.status == MinerStatus::kRetiring;
  m.status = MinerStatus::kDeparted;
  net_.Unregister(miner);
  if (epoch_active_ && was_serving) {
    if (miner == leader_) leader_crashed_ = true;
    RecoverOrphanedShards();
  }
  return Status::OK();
}

Status ShardingSystem::ApplyChurn(const std::vector<ChurnEvent>& events) {
  for (const ChurnEvent& event : events) {
    switch (event.kind) {
      case ChurnEventKind::kJoin:
        (void)JoinMiner();
        break;
      case ChurnEventKind::kRetire:
        SHARDCHAIN_RETURN_IF_ERROR(RetireMiner(event.node));
        break;
      case ChurnEventKind::kCrash:
        SHARDCHAIN_RETURN_IF_ERROR(CrashMiner(event.node));
        break;
    }
  }
  return Status::OK();
}

bool ShardingSystem::MinerLive(NodeId miner) const {
  if (miner >= miners_.size()) return false;
  const MinerStatus s = miners_[miner].status;
  return s == MinerStatus::kActive || s == MinerStatus::kRetiring;
}

size_t ShardingSystem::LiveMinerCount() const {
  size_t count = 0;
  for (size_t i = 0; i < miners_.size(); ++i) {
    if (MinerLive(static_cast<NodeId>(i))) ++count;
  }
  return count;
}

std::vector<NodeId> ShardingSystem::LiveMiners() const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < miners_.size(); ++i) {
    const NodeId m = static_cast<NodeId>(i);
    if (MinerLive(m)) out.push_back(m);
  }
  return out;
}

MinerStatus ShardingSystem::StatusOfMiner(NodeId miner) const {
  assert(miner < miners_.size());
  return miners_[miner].status;
}

bool ShardingSystem::EpochDegraded() const {
  if (!epoch_active_) return false;
  if (leader_crashed_ && !fallback_epoch_) return true;
  return 2 * LiveMinerCount() < epoch_population_;
}

void ShardingSystem::ActivateBoundaryChurn() {
  for (size_t i = 0; i < miners_.size(); ++i) {
    MinerRecord& m = miners_[i];
    if (m.status == MinerStatus::kPending) {
      m.status = MinerStatus::kActive;
      net_.Register(static_cast<NodeId>(i), kMaxShardId);
    } else if (m.status == MinerStatus::kRetiring) {
      m.status = MinerStatus::kDeparted;
      net_.Unregister(static_cast<NodeId>(i));
    }
  }
}

// --- Epochs ----------------------------------------------------------

Status ShardingSystem::BeginEpoch(uint64_t epoch_nonce) {
  (void)epoch_nonce;  // The chained epoch seed supersedes the nonce.
  FlushPendingEvictions();
  ActivateBoundaryChurn();
  const std::vector<NodeId> live = LiveMiners();
  if (live.empty()) {
    return Status::FailedPrecondition("no live miners");
  }
  // Epoch seed chains from history (EpochManager): public and
  // grind-resistant.
  const Hash256 seed = epochs_.NextSeed();

  // Leader election: every live miner evaluates her VRF; lowest valid
  // ticket wins (Sec. III-B / Omniledger). The evaluations are
  // independent per key, so they run as one batch over the pool.
  std::vector<const KeyPair*> keys;
  keys.reserve(live.size());
  for (NodeId m : live) keys.push_back(&miners_[m].keys);
  std::vector<VrfOutput> vrfs = VrfEvaluateBatch(keys, seed, pool_.get());
  std::vector<LeaderCandidate> candidates;
  candidates.reserve(live.size());
  for (size_t c = 0; c < live.size(); ++c) {
    candidates.push_back(LeaderCandidate{miners_[live[c]].keys.public_key(),
                                         std::move(vrfs[c])});
  }

  // Fractions come from the MaxShard's view of routed transactions.
  fractions_ = formation_.Fractions();

  Result<EpochRecord> record = epochs_.Advance(candidates, fractions_);
  if (!record.ok()) return record.status();
  // leader_index ranks within the candidate (live) set; map it back to
  // the true NodeId — with no churn, live[c] == c and this is identity.
  leader_ = live[record->leader_index];
  randomness_ = record->randomness;

  // Everyone derives their shard from public data. Registration routes
  // through the true NodeIds, NOT the candidate positions: under churn
  // the live set has holes, and positional registration would pin a
  // stale node onto another miner's shard (the stale-shard bug class).
  std::vector<Hash256> ids;
  ids.reserve(live.size());
  for (NodeId m : live) ids.push_back(miners_[m].id);
  const std::vector<ShardId> assignment =
      AssignAllMiners(randomness_, ids, fractions_, /*net=*/nullptr);
  for (size_t c = 0; c < live.size(); ++c) {
    miners_[live[c]].shard = assignment[c];
    net_.Register(live[c], assignment[c]);
  }

  // Leader broadcast of (randomness, fractions): one message per node.
  net_.Broadcast(leader_, MsgKind::kLeaderBroadcast);
  epoch_active_ = true;
  fallback_epoch_ = false;
  leader_crashed_ = false;
  epoch_population_ = live.size();
  epoch_log_start_ = migration_log_.size();
  return Status::OK();
}

Status ShardingSystem::BeginFallbackEpoch() {
  FlushPendingEvictions();
  ActivateBoundaryChurn();
  const std::vector<NodeId> live = LiveMiners();
  if (live.empty()) {
    return Status::FailedPrecondition("no live miners");
  }
  Result<EpochRecord> record = epochs_.AdvanceFallback();
  if (!record.ok()) return record.status();
  randomness_ = record->randomness;
  fractions_ = record->fractions;
  leader_ = 0;  // Meaningless in a leaderless epoch.

  // The single 100% fraction routes every draw to the MaxShard; the
  // assignment still runs so membership checks verify as usual.
  std::vector<Hash256> ids;
  ids.reserve(live.size());
  for (NodeId m : live) ids.push_back(miners_[m].id);
  const std::vector<ShardId> assignment =
      AssignAllMiners(randomness_, ids, fractions_, /*net=*/nullptr);
  for (size_t c = 0; c < live.size(); ++c) {
    miners_[live[c]].shard = assignment[c];
    net_.Register(live[c], assignment[c]);
  }
  // No leader broadcast: the fallback needs no message to agree on.
  epoch_active_ = true;
  fallback_epoch_ = true;
  leader_crashed_ = false;
  epoch_population_ = live.size();
  epoch_log_start_ = migration_log_.size();
  return Status::OK();
}

ShardId ShardingSystem::ShardOfMiner(NodeId miner) const {
  assert(miner < miners_.size());
  if (!MinerLive(miner)) return kUnassignedShard;
  return ResolveShard(miners_[miner].shard);
}

std::vector<NodeId> ShardingSystem::MinersOfShard(ShardId shard) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < miners_.size(); ++i) {
    const NodeId m = static_cast<NodeId>(i);
    if (!MinerLive(m)) continue;
    if (ResolveShard(miners_[i].shard) == ResolveShard(shard)) {
      out.push_back(m);
    }
  }
  return out;
}

ShardId ShardingSystem::ResolveShard(ShardId shard) const {
  // Follow merge aliases to the surviving shard.
  auto it = shards_.find(shard);
  while (it != shards_.end() && it->second.merged_into.has_value()) {
    shard = *it->second.merged_into;
    it = shards_.find(shard);
  }
  return shard;
}

ShardingSystem::ShardState& ShardingSystem::GetOrCreateShard(ShardId shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end()) {
    ShardState state;
    state.ledger =
        std::make_unique<Ledger>(shard, genesis_state_, config_.chain);
    // Conflict-aware parallel block packing (DESIGN.md §13): block
    // bytes stay identical to serial at any thread count.
    state.ledger->SetExecPool(pool_.get());
    it = shards_.emplace(shard, std::move(state)).first;
  }
  return it->second;
}

Result<ShardId> ShardingSystem::SubmitTransaction(const Transaction& tx) {
  const ShardId routed = formation_.Route(tx);
  const ShardId shard = ResolveShard(routed);

  // Sender-home tracking: when the routed shard moves — the sender's
  // contract set changed (shard → MaxShard) or a popularity shift
  // re-routed its contract — the authoritative account state follows
  // under an authenticated handoff before the transaction pools.
  auto home_it = home_.find(tx.sender);
  if (home_it == home_.end()) {
    home_.emplace(tx.sender, shard);
  } else if (ResolveShard(home_it->second) != shard) {
    const ShardId from = ResolveShard(home_it->second);
    Result<HandoffRecord> moved = MigrateAccount(tx.sender, from, shard);
    // NotFound: the account never materialized on the source chain —
    // the destination's genesis view is still authoritative.
    if (!moved.ok() &&
        moved.status().code() != Status::Code::kNotFound) {
      return moved.status();
    }
    home_it->second = shard;
  }

  ShardState& state = GetOrCreateShard(shard);
  SHARDCHAIN_RETURN_IF_ERROR(state.pool.Add(tx));
  // The user's broadcast reaches every miner; miners of other shards
  // discard it after the routing check.
  if (net_.NodeCount() > 1) {
    net_.MulticastShard(0, shard, MsgKind::kTxGossip);
  }
  return shard;
}

Result<Hash256> ShardingSystem::MineBlock(NodeId miner) {
  if (!epoch_active_) {
    return Status::FailedPrecondition("no active epoch");
  }
  if (miner >= miners_.size()) {
    return Status::InvalidArgument("unknown miner");
  }
  MinerRecord& record = miners_[miner];
  if (record.status == MinerStatus::kPending) {
    return Status::Unauthorized("miner enters at the next epoch boundary");
  }
  if (record.status == MinerStatus::kDeparted) {
    return Status::Unauthorized("miner has departed");
  }
  const ShardId shard = ResolveShard(record.shard);

  // The membership check every receiver would also run (Sec. III-C):
  // proves this miner may pack for this ShardID.
  SHARDCHAIN_RETURN_IF_ERROR(VerifyShardMembership(
      randomness_, record.id, fractions_, record.shard));

  ShardState& state = GetOrCreateShard(shard);
  const Address coinbase = Address::FromHash(record.id);
  std::vector<Transaction> candidates =
      state.pool.TopByFee(config_.chain.max_txs_per_block);
  Block block;
  SHARDCHAIN_ASSIGN_OR_RETURN(
      block, state.ledger->BuildBlock(
                 coinbase, std::move(candidates),
                 static_cast<uint64_t>(state.ledger->tip_number() + 1)));
  Result<Hash256> appended = state.ledger->Append(block);
  if (!appended.ok()) return appended.status();
  state.pool.RemoveAll(block.transactions);
  net_.MulticastShard(miner, shard, MsgKind::kBlockGossip);
  return appended;
}

std::vector<Status> ShardingSystem::SubmitTransactionBatch(
    const std::vector<Transaction>& txs) {
  std::vector<Status> out;
  out.reserve(txs.size());
  for (const Transaction& tx : txs) {
    Result<ShardId> routed = SubmitTransaction(tx);
    out.push_back(routed.ok() ? Status::OK() : routed.status());
  }
  return out;
}

Result<std::vector<Hash256>> ShardingSystem::MineBlocksPipelined(NodeId miner,
                                                                 size_t count) {
  // Same authorization gauntlet as MineBlock — one check covers the
  // whole run, since membership cannot change inside a synchronous call.
  if (!epoch_active_) {
    return Status::FailedPrecondition("no active epoch");
  }
  if (miner >= miners_.size()) {
    return Status::InvalidArgument("unknown miner");
  }
  MinerRecord& record = miners_[miner];
  if (record.status == MinerStatus::kPending) {
    return Status::Unauthorized("miner enters at the next epoch boundary");
  }
  if (record.status == MinerStatus::kDeparted) {
    return Status::Unauthorized("miner has departed");
  }
  const ShardId shard = ResolveShard(record.shard);
  SHARDCHAIN_RETURN_IF_ERROR(VerifyShardMembership(
      randomness_, record.id, fractions_, record.shard));

  ShardState& state = GetOrCreateShard(shard);
  const Address coinbase = Address::FromHash(record.id);
  BlockPipeline pipeline(state.ledger.get(), &state.pool);
  PipelineResult produced;
  SHARDCHAIN_ASSIGN_OR_RETURN(produced, pipeline.Run(coinbase, count));
  for (size_t i = 0; i < produced.hashes.size(); ++i) {
    net_.MulticastShard(miner, shard, MsgKind::kBlockGossip);
  }
  return produced.hashes;
}

Result<Hash256> ShardingSystem::ReceiveBlockBytes(const Bytes& wire,
                                                  const Hash256& packer_id) {
  Block block;
  SHARDCHAIN_ASSIGN_OR_RETURN(block, codec::DecodeBlock(wire));
  SHARDCHAIN_RETURN_IF_ERROR(VerifyIncomingBlock(block, packer_id));
  auto it = shards_.find(ResolveShard(block.header.shard_id));
  if (it == shards_.end()) {
    return Status::NotFound("no local ledger for the block's shard");
  }
  Result<Hash256> appended = it->second.ledger->Append(block);
  if (!appended.ok()) return appended.status();
  it->second.pool.RemoveAll(block.transactions);
  return appended;
}

Status ShardingSystem::VerifyIncomingBlock(const Block& block,
                                           const Hash256& packer_id) const {
  if (!epoch_active_) {
    return Status::FailedPrecondition("no active epoch");
  }
  // 1. Is the packer a currently serving miner? The miner set is part
  //    of the leader's broadcast (Sec. IV-C), so every receiver knows
  //    it — including who departed or has not entered yet.
  const MinerRecord* packer = nullptr;
  for (const MinerRecord& m : miners_) {
    if (m.id == packer_id) {
      packer = &m;
      break;
    }
  }
  if (packer == nullptr) {
    return Status::Unauthorized("packer is not a registered miner");
  }
  if (packer->status == MinerStatus::kPending ||
      packer->status == MinerStatus::kDeparted) {
    return Status::Unauthorized("packer is not serving this epoch");
  }
  // 2. Does the packer really correspond to the ShardID in the header?
  SHARDCHAIN_RETURN_IF_ERROR(VerifyShardMembership(
      randomness_, packer_id, fractions_, block.header.shard_id));
  // 3. Structural integrity of the body against the header.
  if (block.header.tx_root != block.ComputeTxRoot()) {
    return Status::Corruption("tx root does not match block body");
  }
  return Status::OK();
}

// --- Cross-shard migration -------------------------------------------

void ShardingSystem::ApplyVerifiedHandoff(const HandoffRecord& record) {
  ShardState& dest = GetOrCreateShard(ResolveShard(record.dest));
  Status imported = dest.ledger->ImportAccount(record.addr, record.account);
  assert(imported.ok());
  (void)imported;
  // Eviction is deferred to the boundary: removing the leaf now would
  // move the source root mid-epoch, and every other handoff leaving
  // this shard this epoch anchors its proof to that root.
  pending_evictions_[record.source].insert(record.addr);
  migration_log_.push_back(record);
}

void ShardingSystem::FlushPendingEvictions() {
  // Ordered maps/sets: evictions land in (shard, address) order on
  // every node regardless of the order migrations were triggered in.
  for (const auto& [shard, addrs] : pending_evictions_) {
    auto it = shards_.find(shard);
    if (it == shards_.end() || it->second.merged_into.has_value()) continue;
    for (const Address& addr : addrs) {
      (void)it->second.ledger->EvictAccount(addr);
    }
  }
  pending_evictions_.clear();
}

Result<HandoffRecord> ShardingSystem::MigrateAccount(const Address& addr,
                                                     ShardId source,
                                                     ShardId dest) {
  source = ResolveShard(source);
  dest = ResolveShard(dest);
  if (source == dest) {
    return Status::InvalidArgument("source and destination coincide");
  }
  auto it = shards_.find(source);
  if (it == shards_.end()) {
    return Status::NotFound("no ledger for the source shard");
  }
  HandoffRecord record;
  SHARDCHAIN_ASSIGN_OR_RETURN(
      record, BuildHandoff(it->second.ledger->tip_state(), source, dest, addr));
  SHARDCHAIN_RETURN_IF_ERROR(VerifyHandoff(record));
  ApplyVerifiedHandoff(record);
  return record;
}

Status ShardingSystem::ApplyHandoff(const HandoffRecord& record) {
  SHARDCHAIN_RETURN_IF_ERROR(VerifyHandoff(record));
  // When this node holds the source ledger, the proof must bind to its
  // CURRENT root — a replayed handoff from an older root is stale.
  auto src_it = shards_.find(record.source);
  if (src_it != shards_.end() && !src_it->second.merged_into.has_value()) {
    if (src_it->second.ledger->tip_state().StateRoot() != record.source_root) {
      return Status::Unauthorized("handoff root is stale");
    }
  }
  ApplyVerifiedHandoff(record);
  return Status::OK();
}

Status ShardingSystem::MigrateShardState(ShardId source, ShardId target) {
  auto it = shards_.find(source);
  if (it == shards_.end()) return Status::OK();  // Nothing materialized.
  const Ledger& ledger = *it->second.ledger;
  // All proofs anchor to the ONE pre-migration root; evictions are
  // deferred to the boundary, so nothing moves that root mid-batch.
  const auto pending = pending_evictions_.find(source);
  std::vector<HandoffRecord> batch;
  for (const Address& addr : ledger.TouchedAddresses()) {
    // Already migrated out earlier this epoch (eviction pending): the
    // destination copy is authoritative; re-exporting the stale source
    // leaf would roll it back.
    if (pending != pending_evictions_.end() && pending->second.count(addr)) {
      continue;
    }
    Result<HandoffRecord> record =
        BuildHandoff(ledger.tip_state(), source, target, addr);
    if (!record.ok()) {
      if (record.status().code() == Status::Code::kNotFound) continue;
      return record.status();
    }
    SHARDCHAIN_RETURN_IF_ERROR(VerifyHandoff(*record));
    batch.push_back(std::move(*record));
  }
  for (const HandoffRecord& record : batch) {
    ApplyVerifiedHandoff(record);
  }
  return Status::OK();
}

Result<MigrationPlan> ShardingSystem::MigrateShardToMaxShard(ShardId shard) {
  shard = ResolveShard(shard);
  if (shard == kMaxShardId) {
    return Status::InvalidArgument("the MaxShard cannot migrate into itself");
  }
  auto it = shards_.find(shard);
  if (it == shards_.end()) {
    return Status::NotFound("unknown shard");
  }

  MigrationPlan plan;
  plan.epoch = epochs_.EpochCount();
  const size_t log_start = migration_log_.size();
  SHARDCHAIN_RETURN_IF_ERROR(MigrateShardState(shard, kMaxShardId));
  plan.handoffs.assign(migration_log_.begin() + log_start,
                       migration_log_.end());
  CanonicalizeMigrationPlan(&plan);

  // Pool, surviving miners, and routing follow the state.
  ShardState& source = shards_.at(shard);
  ShardState& dest = GetOrCreateShard(kMaxShardId);
  for (const Transaction& tx : source.pool.All()) {
    (void)dest.pool.Add(tx);
  }
  source.pool.RemoveAll(source.pool.All());
  source.merged_into = kMaxShardId;
  for (size_t i = 0; i < miners_.size(); ++i) {
    const NodeId m = static_cast<NodeId>(i);
    if (!MinerLive(m)) continue;
    if (miners_[i].shard == shard) {
      miners_[i].shard = kMaxShardId;
      net_.Register(m, kMaxShardId);
    }
  }
  return plan;
}

void ShardingSystem::RecoverOrphanedShards() {
  // A shard is orphaned when no live miner serves it anymore. Instead
  // of letting its transactions stall until the next boundary, its
  // authenticated state and pool degrade into the MaxShard (which the
  // remaining population always serves as catch-all).
  std::vector<ShardId> orphans;
  for (const auto& [shard, state] : shards_) {
    if (shard == kMaxShardId || state.merged_into.has_value()) continue;
    bool any_live = false;
    for (size_t i = 0; i < miners_.size() && !any_live; ++i) {
      const NodeId m = static_cast<NodeId>(i);
      any_live = MinerLive(m) && ResolveShard(miners_[i].shard) == shard;
    }
    if (!any_live) orphans.push_back(shard);
  }
  for (ShardId shard : orphans) {
    (void)MigrateShardToMaxShard(shard);
  }
}

MigrationPlan ShardingSystem::EpochMigrationPlan() const {
  MigrationPlan plan;
  plan.epoch = epochs_.EpochCount();
  plan.handoffs.assign(migration_log_.begin() +
                           static_cast<std::ptrdiff_t>(epoch_log_start_),
                       migration_log_.end());
  CanonicalizeMigrationPlan(&plan);
  return plan;
}

// --- Shard state ------------------------------------------------------

std::vector<uint64_t> ShardingSystem::PendingPerShard() const {
  std::vector<uint64_t> out(formation_.ShardCount(), 0);
  for (const auto& [shard, state] : shards_) {
    if (state.merged_into.has_value()) continue;
    const ShardId resolved = ResolveShard(shard);
    if (resolved < out.size()) {
      out[resolved] += state.pool.Size();
    }
  }
  return out;
}

const Ledger* ShardingSystem::ShardLedger(ShardId shard) const {
  auto it = shards_.find(ResolveShard(shard));
  return it == shards_.end() ? nullptr : it->second.ledger.get();
}

const TxPool* ShardingSystem::ShardPool(ShardId shard) const {
  auto it = shards_.find(ResolveShard(shard));
  return it == shards_.end() ? nullptr : &it->second.pool;
}

IterativeMergeResult ShardingSystem::MergeSmallShards() {
  // Small shards: live (unmerged) shards whose pending pool is below L.
  std::vector<ShardId> small_ids;
  std::vector<uint64_t> sizes;
  for (const auto& [shard, state] : shards_) {
    if (state.merged_into.has_value()) continue;
    if (shard == kMaxShardId) continue;  // The MaxShard never merges.
    const uint64_t pending = state.pool.Size();
    if (pending < config_.merge.min_shard_size) {
      small_ids.push_back(shard);
      sizes.push_back(pending);
    }
  }

  // Unified parameters: the plan is derived from the epoch randomness,
  // so every miner computes the same one.
  UnifiedParameters params;
  params.randomness = randomness_;
  params.shard_sizes = sizes;
  params.num_miners = LiveMinerCount();
  params.merge_config = config_.merge;
  const IterativeMergeResult plan = ComputeMergePlan(params, pool_.get());

  for (const std::vector<size_t>& group : plan.new_shards) {
    if (group.empty()) continue;
    // The surviving shard is the lowest id in the group.
    ShardId target = small_ids[group[0]];
    for (size_t idx : group) target = std::min(target, small_ids[idx]);

    ShardState& target_state = GetOrCreateShard(target);
    for (size_t idx : group) {
      const ShardId source = small_ids[idx];
      if (source == target) continue;
      // Authenticated state handoff BEFORE the pool moves: senders with
      // advanced nonces on the source chain keep executing on the
      // merged shard (strict_nonces) instead of silently dropping.
      Status migrated = MigrateShardState(source, target);
      assert(migrated.ok());
      (void)migrated;
      ShardState& source_state = shards_.at(source);
      for (const Transaction& tx : source_state.pool.All()) {
        (void)target_state.pool.Add(tx);
      }
      source_state.pool.RemoveAll(source_state.pool.All());
      source_state.merged_into = target;
    }
    // Shard reward: every (serving) miner of a merged small shard gets
    // G (Sec. IV-A1), credited system-side like the block reward.
    for (size_t i = 0; i < miners_.size(); ++i) {
      if (!MinerLive(static_cast<NodeId>(i))) continue;
      MinerRecord& m = miners_[i];
      for (size_t idx : group) {
        if (m.shard == small_ids[idx]) {
          m.shard_rewards += config_.shard_reward;
          break;
        }
      }
    }
    // Miners of merged shards now serve the surviving shard. Only live
    // miners re-register — a departed miner's stale shard id must not
    // resurface in the network's membership view (stale-shard bug
    // class, DESIGN.md §12).
    for (size_t i = 0; i < miners_.size(); ++i) {
      const NodeId m = static_cast<NodeId>(i);
      if (!MinerLive(m)) continue;
      for (size_t idx : group) {
        if (miners_[i].shard == small_ids[idx]) miners_[i].shard = target;
      }
      net_.Register(m, miners_[i].shard);
    }
  }
  return plan;
}

// flowlint: deterministic-root — consensus entry point (DESIGN.md §7)
std::vector<ShardSelectionPlan> ShardingSystem::ComputeShardSelectionPlans()
    const {
  // Live shards in id order (std::map iteration), so the output order
  // is canonical regardless of scheduling.
  std::vector<ShardId> live;
  for (const auto& [shard, state] : shards_) {
    if (state.merged_into.has_value()) continue;
    live.push_back(shard);
  }
  std::vector<size_t> miners_per_shard(live.size(), 0);
  for (size_t i = 0; i < miners_.size(); ++i) {
    if (!MinerLive(static_cast<NodeId>(i))) continue;
    const ShardId resolved = ResolveShard(miners_[i].shard);
    for (size_t k = 0; k < live.size(); ++k) {
      if (live[k] == resolved) {
        ++miners_per_shard[k];
        break;
      }
    }
  }

  std::vector<ShardSelectionPlan> plans(live.size());
  // One shard per chunk: each plan is an independent computation
  // writing its own slot. The per-shard games receive the pool too, but
  // nested regions serialize inline, so the fan-out level wins when
  // there are many shards and the inner scan wins when there are few.
  ParallelFor(pool_.get(), live.size(), /*grain=*/1,
              [this, &live, &plans, &miners_per_shard](size_t k) {
    const ShardId shard = live[k];
    ShardSelectionPlan& out = plans[k];
    out.shard = shard;

    // Per-shard randomness: public, derived from the epoch randomness
    // and the shard id alone.
    Sha256 h;
    h.Update("shardchain.shardplan.v1");
    h.Update(randomness_.bytes.data(), randomness_.bytes.size());
    h.Update(std::to_string(shard));
    out.params.randomness = h.Finalize();

    // The shard's fee vector in canonical pool order (fee desc, id asc)
    // — the same total order every miner's pool emits.
    const TxPool& pool_of_shard = shards_.at(shard).pool;
    const std::vector<Transaction> txs =
        pool_of_shard.TopByFee(pool_of_shard.Size());
    out.params.tx_fees.reserve(txs.size());
    for (const Transaction& tx : txs) out.params.tx_fees.push_back(tx.fee);

    out.params.num_miners = miners_per_shard[k];
    out.params.merge_config = config_.merge;
    out.params.select_config = config_.select;
    // The games' inner parallel regions serialize inline under
    // ThreadPool::InParallelRegion() (§9): byte-identical to serial.
    // flowlint:allow(parallel-body-effects): nested regions flatten
    out.plan = ComputeSelectionPlan(out.params, pool_.get());
  });
  return plans;
}

Amount ShardingSystem::ShardRewardOf(NodeId miner) const {
  assert(miner < miners_.size());
  return miners_[miner].shard_rewards;
}

}  // namespace shardchain
