#include "core/sharding_system.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "parallel/parallel.h"
#include "types/codec.h"

namespace shardchain {

ShardingSystem::ShardingSystem(ShardingSystemConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  if (config_.parallel.Resolve() > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.parallel.Resolve());
  }
}

NodeId ShardingSystem::AddMiner() {
  KeyPair keys = KeyPair::Generate(&rng_);
  const Hash256 id = keys.public_key().Fingerprint();
  const NodeId node = static_cast<NodeId>(miners_.size());
  miners_.push_back(MinerRecord{std::move(keys), id, kMaxShardId, 0});
  net_.Register(node, kMaxShardId);
  return node;
}

void ShardingSystem::Mint(const Address& account, Amount amount) {
  genesis_state_.Mint(account, amount);
}

Result<Address> ShardingSystem::DeployContract(
    const Address& creator, const ContractProgram& program) {
  return ContractRegistry::Deploy(&genesis_state_, creator, program);
}

Status ShardingSystem::BeginEpoch(uint64_t epoch_nonce) {
  (void)epoch_nonce;  // The chained epoch seed supersedes the nonce.
  if (miners_.empty()) {
    return Status::FailedPrecondition("no miners registered");
  }
  // Epoch seed chains from history (EpochManager): public and
  // grind-resistant.
  const Hash256 seed = epochs_.NextSeed();

  // Leader election: every miner evaluates her VRF; lowest valid
  // ticket wins (Sec. III-B / Omniledger). The evaluations are
  // independent per key, so they run as one batch over the pool.
  std::vector<const KeyPair*> keys;
  keys.reserve(miners_.size());
  for (const MinerRecord& m : miners_) keys.push_back(&m.keys);
  std::vector<VrfOutput> vrfs = VrfEvaluateBatch(keys, seed, pool_.get());
  std::vector<LeaderCandidate> candidates;
  candidates.reserve(miners_.size());
  for (size_t i = 0; i < miners_.size(); ++i) {
    candidates.push_back(LeaderCandidate{miners_[i].keys.public_key(),
                                         std::move(vrfs[i])});
  }

  // Fractions come from the MaxShard's view of routed transactions.
  fractions_ = formation_.Fractions();

  Result<EpochRecord> record = epochs_.Advance(candidates, fractions_);
  if (!record.ok()) return record.status();
  leader_ = static_cast<NodeId>(record->leader_index);
  randomness_ = record->randomness;

  // Everyone derives their shard from public data.
  std::vector<Hash256> ids;
  ids.reserve(miners_.size());
  for (const MinerRecord& m : miners_) ids.push_back(m.id);
  const std::vector<ShardId> assignment =
      AssignAllMiners(randomness_, ids, fractions_, &net_);
  for (size_t i = 0; i < miners_.size(); ++i) {
    miners_[i].shard = assignment[i];
  }

  // Leader broadcast of (randomness, fractions): one message per node.
  net_.Broadcast(leader_, MsgKind::kLeaderBroadcast);
  epoch_active_ = true;
  fallback_epoch_ = false;
  return Status::OK();
}

Status ShardingSystem::BeginFallbackEpoch() {
  if (miners_.empty()) {
    return Status::FailedPrecondition("no miners registered");
  }
  Result<EpochRecord> record = epochs_.AdvanceFallback();
  if (!record.ok()) return record.status();
  randomness_ = record->randomness;
  fractions_ = record->fractions;
  leader_ = 0;  // Meaningless in a leaderless epoch.

  // The single 100% fraction routes every draw to the MaxShard; the
  // assignment still runs so membership checks verify as usual.
  std::vector<Hash256> ids;
  ids.reserve(miners_.size());
  for (const MinerRecord& m : miners_) ids.push_back(m.id);
  const std::vector<ShardId> assignment =
      AssignAllMiners(randomness_, ids, fractions_, &net_);
  for (size_t i = 0; i < miners_.size(); ++i) {
    miners_[i].shard = assignment[i];
  }
  // No leader broadcast: the fallback needs no message to agree on.
  epoch_active_ = true;
  fallback_epoch_ = true;
  return Status::OK();
}

ShardId ShardingSystem::ShardOfMiner(NodeId miner) const {
  assert(miner < miners_.size());
  return ResolveShard(miners_[miner].shard);
}

std::vector<NodeId> ShardingSystem::MinersOfShard(ShardId shard) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < miners_.size(); ++i) {
    if (ResolveShard(miners_[i].shard) == ResolveShard(shard)) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

ShardId ShardingSystem::ResolveShard(ShardId shard) const {
  // Follow merge aliases to the surviving shard.
  auto it = shards_.find(shard);
  while (it != shards_.end() && it->second.merged_into.has_value()) {
    shard = *it->second.merged_into;
    it = shards_.find(shard);
  }
  return shard;
}

ShardingSystem::ShardState& ShardingSystem::GetOrCreateShard(ShardId shard) {
  auto it = shards_.find(shard);
  if (it == shards_.end()) {
    ShardState state;
    state.ledger =
        std::make_unique<Ledger>(shard, genesis_state_, config_.chain);
    it = shards_.emplace(shard, std::move(state)).first;
  }
  return it->second;
}

Result<ShardId> ShardingSystem::SubmitTransaction(const Transaction& tx) {
  const ShardId routed = formation_.Route(tx);
  const ShardId shard = ResolveShard(routed);
  ShardState& state = GetOrCreateShard(shard);
  SHARDCHAIN_RETURN_IF_ERROR(state.pool.Add(tx));
  // The user's broadcast reaches every miner; miners of other shards
  // discard it after the routing check.
  if (net_.NodeCount() > 1) {
    net_.MulticastShard(0, shard, MsgKind::kTxGossip);
  }
  return shard;
}

Result<Hash256> ShardingSystem::MineBlock(NodeId miner) {
  if (!epoch_active_) {
    return Status::FailedPrecondition("no active epoch");
  }
  if (miner >= miners_.size()) {
    return Status::InvalidArgument("unknown miner");
  }
  MinerRecord& record = miners_[miner];
  const ShardId shard = ResolveShard(record.shard);

  // The membership check every receiver would also run (Sec. III-C):
  // proves this miner may pack for this ShardID.
  SHARDCHAIN_RETURN_IF_ERROR(VerifyShardMembership(
      randomness_, record.id, fractions_, record.shard));

  ShardState& state = GetOrCreateShard(shard);
  const Address coinbase = Address::FromHash(record.id);
  std::vector<Transaction> candidates =
      state.pool.TopByFee(config_.chain.max_txs_per_block);
  Block block = state.ledger->BuildBlock(
      coinbase, std::move(candidates),
      static_cast<uint64_t>(state.ledger->tip_number() + 1));
  Result<Hash256> appended = state.ledger->Append(block);
  if (!appended.ok()) return appended.status();
  state.pool.RemoveAll(block.transactions);
  net_.MulticastShard(miner, shard, MsgKind::kBlockGossip);
  return appended;
}

Result<Hash256> ShardingSystem::ReceiveBlockBytes(const Bytes& wire,
                                                  const Hash256& packer_id) {
  Block block;
  SHARDCHAIN_ASSIGN_OR_RETURN(block, codec::DecodeBlock(wire));
  SHARDCHAIN_RETURN_IF_ERROR(VerifyIncomingBlock(block, packer_id));
  auto it = shards_.find(ResolveShard(block.header.shard_id));
  if (it == shards_.end()) {
    return Status::NotFound("no local ledger for the block's shard");
  }
  Result<Hash256> appended = it->second.ledger->Append(block);
  if (!appended.ok()) return appended.status();
  it->second.pool.RemoveAll(block.transactions);
  return appended;
}

Status ShardingSystem::VerifyIncomingBlock(const Block& block,
                                           const Hash256& packer_id) const {
  if (!epoch_active_) {
    return Status::FailedPrecondition("no active epoch");
  }
  // 1. Is the packer a registered miner at all? The miner set is part
  //    of the leader's broadcast (Sec. IV-C), so every receiver knows
  //    it.
  const bool known = std::any_of(
      miners_.begin(), miners_.end(),
      [&](const MinerRecord& m) { return m.id == packer_id; });
  if (!known) {
    return Status::Unauthorized("packer is not a registered miner");
  }
  // 2. Does the packer really correspond to the ShardID in the header?
  SHARDCHAIN_RETURN_IF_ERROR(VerifyShardMembership(
      randomness_, packer_id, fractions_, block.header.shard_id));
  // 3. Structural integrity of the body against the header.
  if (block.header.tx_root != block.ComputeTxRoot()) {
    return Status::Corruption("tx root does not match block body");
  }
  return Status::OK();
}

std::vector<uint64_t> ShardingSystem::PendingPerShard() const {
  std::vector<uint64_t> out(formation_.ShardCount(), 0);
  for (const auto& [shard, state] : shards_) {
    if (state.merged_into.has_value()) continue;
    const ShardId resolved = ResolveShard(shard);
    if (resolved < out.size()) {
      out[resolved] += state.pool.Size();
    }
  }
  return out;
}

const Ledger* ShardingSystem::ShardLedger(ShardId shard) const {
  auto it = shards_.find(ResolveShard(shard));
  return it == shards_.end() ? nullptr : it->second.ledger.get();
}

const TxPool* ShardingSystem::ShardPool(ShardId shard) const {
  auto it = shards_.find(ResolveShard(shard));
  return it == shards_.end() ? nullptr : &it->second.pool;
}

IterativeMergeResult ShardingSystem::MergeSmallShards() {
  // Small shards: live (unmerged) shards whose pending pool is below L.
  std::vector<ShardId> small_ids;
  std::vector<uint64_t> sizes;
  for (const auto& [shard, state] : shards_) {
    if (state.merged_into.has_value()) continue;
    if (shard == kMaxShardId) continue;  // The MaxShard never merges.
    const uint64_t pending = state.pool.Size();
    if (pending < config_.merge.min_shard_size) {
      small_ids.push_back(shard);
      sizes.push_back(pending);
    }
  }

  // Unified parameters: the plan is derived from the epoch randomness,
  // so every miner computes the same one.
  UnifiedParameters params;
  params.randomness = randomness_;
  params.shard_sizes = sizes;
  params.num_miners = miners_.size();
  params.merge_config = config_.merge;
  const IterativeMergeResult plan = ComputeMergePlan(params, pool_.get());

  for (const std::vector<size_t>& group : plan.new_shards) {
    if (group.empty()) continue;
    // The surviving shard is the lowest id in the group.
    ShardId target = small_ids[group[0]];
    for (size_t idx : group) target = std::min(target, small_ids[idx]);

    ShardState& target_state = GetOrCreateShard(target);
    for (size_t idx : group) {
      const ShardId source = small_ids[idx];
      if (source == target) continue;
      ShardState& source_state = shards_.at(source);
      for (const Transaction& tx : source_state.pool.All()) {
        (void)target_state.pool.Add(tx);
      }
      source_state.pool.RemoveAll(source_state.pool.All());
      source_state.merged_into = target;
    }
    // Shard reward: every miner of a merged small shard gets G
    // (Sec. IV-A1), credited system-side like the block reward.
    for (MinerRecord& m : miners_) {
      for (size_t idx : group) {
        if (m.shard == small_ids[idx]) {
          m.shard_rewards += config_.shard_reward;
          break;
        }
      }
    }
    // Miners of merged shards now serve the surviving shard.
    for (MinerRecord& m : miners_) {
      for (size_t idx : group) {
        if (m.shard == small_ids[idx]) m.shard = target;
      }
    }
    for (size_t i = 0; i < miners_.size(); ++i) {
      net_.Register(static_cast<NodeId>(i), miners_[i].shard);
    }
  }
  return plan;
}

// flowlint: deterministic-root — consensus entry point (DESIGN.md §7)
std::vector<ShardSelectionPlan> ShardingSystem::ComputeShardSelectionPlans()
    const {
  // Live shards in id order (std::map iteration), so the output order
  // is canonical regardless of scheduling.
  std::vector<ShardId> live;
  for (const auto& [shard, state] : shards_) {
    if (state.merged_into.has_value()) continue;
    live.push_back(shard);
  }
  std::vector<size_t> miners_per_shard(live.size(), 0);
  for (const MinerRecord& m : miners_) {
    const ShardId resolved = ResolveShard(m.shard);
    for (size_t k = 0; k < live.size(); ++k) {
      if (live[k] == resolved) {
        ++miners_per_shard[k];
        break;
      }
    }
  }

  std::vector<ShardSelectionPlan> plans(live.size());
  // One shard per chunk: each plan is an independent computation
  // writing its own slot. The per-shard games receive the pool too, but
  // nested regions serialize inline, so the fan-out level wins when
  // there are many shards and the inner scan wins when there are few.
  ParallelFor(pool_.get(), live.size(), /*grain=*/1,
              [this, &live, &plans, &miners_per_shard](size_t k) {
    const ShardId shard = live[k];
    ShardSelectionPlan& out = plans[k];
    out.shard = shard;

    // Per-shard randomness: public, derived from the epoch randomness
    // and the shard id alone.
    Sha256 h;
    h.Update("shardchain.shardplan.v1");
    h.Update(randomness_.bytes.data(), randomness_.bytes.size());
    h.Update(std::to_string(shard));
    out.params.randomness = h.Finalize();

    // The shard's fee vector in canonical pool order (fee desc, id asc)
    // — the same total order every miner's pool emits.
    const TxPool& pool_of_shard = shards_.at(shard).pool;
    const std::vector<Transaction> txs =
        pool_of_shard.TopByFee(pool_of_shard.Size());
    out.params.tx_fees.reserve(txs.size());
    for (const Transaction& tx : txs) out.params.tx_fees.push_back(tx.fee);

    out.params.num_miners = miners_per_shard[k];
    out.params.merge_config = config_.merge;
    out.params.select_config = config_.select;
    // The games' inner parallel regions serialize inline under
    // ThreadPool::InParallelRegion() (§9): byte-identical to serial.
    // flowlint:allow(parallel-body-effects): nested regions flatten
    out.plan = ComputeSelectionPlan(out.params, pool_.get());
  });
  return plans;
}

Amount ShardingSystem::ShardRewardOf(NodeId miner) const {
  assert(miner < miners_.size());
  return miners_[miner].shard_rewards;
}

}  // namespace shardchain
