#ifndef SHARDCHAIN_CORE_UNIFICATION_CODEC_H_
#define SHARDCHAIN_CORE_UNIFICATION_CODEC_H_

#include "common/result.h"
#include "core/epoch.h"
#include "core/merging_game.h"
#include "core/selection_game.h"
#include "core/unification.h"
#include "types/codec.h"

namespace shardchain {
namespace codec {

/// \brief Canonical wire encodings for the Sec. IV-C unification
/// messages: the leader's broadcast of unified parameters, and the
/// locally computed merge/selection plans every miner derives from it.
///
/// These encodings are the *byte-equality oracle* of the determinism
/// audit: two honest miners fed the same UnifiedParameters must produce
/// plans whose encodings are identical byte-for-byte (see
/// tests/determinism_harness_test.cc). Every field is written in a
/// fixed order with fixed-width big-endian integers; doubles travel as
/// their IEEE-754 bit pattern, so the encoding is exact — no text
/// round-off, no locale.

/// The leader's parameter broadcast (randomness, shards set,
/// transactions set, miners set cardinality, game configs).
Bytes EncodeUnifiedParameters(const UnifiedParameters& params);
Result<UnifiedParameters> DecodeUnifiedParameters(const Bytes& data);

/// A miner's transaction-assignment message: the consensus-visible
/// output of Algorithm 2 under unification. Includes the per-miner
/// index sets plus convergence metadata.
Bytes EncodeSelectionPlan(const SelectionResult& plan);
Result<SelectionResult> DecodeSelectionPlan(const Bytes& data);

/// The merge plan: the consensus-visible output of Algorithms 1/3
/// under unification (new-shard groups, leftover shards, slot count).
Bytes EncodeMergePlan(const IterativeMergeResult& plan);
Result<IterativeMergeResult> DecodeMergePlan(const Bytes& data);

/// One epoch's public record (seed chain, randomness, leader/view,
/// fallback flag, fractions) — what the churn determinism gate compares
/// byte-for-byte across runs.
Bytes EncodeEpochRecord(const EpochRecord& record);
Result<EpochRecord> DecodeEpochRecord(const Bytes& data);

}  // namespace codec
}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_UNIFICATION_CODEC_H_
