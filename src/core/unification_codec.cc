#include "core/unification_codec.h"

#include <bit>
#include <cstdint>

#include "common/hex.h"

namespace shardchain {
namespace codec {

namespace {

// Doubles travel as their IEEE-754 bit pattern (big-endian u64): exact,
// locale-free, and byte-stable across every conforming platform.
void AppendDouble(Bytes* out, double v) {
  AppendUint64(out, std::bit_cast<uint64_t>(v));
}

Result<double> ReadDouble(Reader* r) {
  uint64_t bits = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(bits, r->ReadU64());
  return std::bit_cast<double>(bits);
}

// A count prefix that must be plausible against the remaining buffer
// (each element needs at least `min_elem_bytes`), so corrupt input
// cannot drive a huge reserve.
Result<size_t> ReadCount(Reader* r, size_t min_elem_bytes) {
  uint64_t count = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(count, r->ReadU64());
  if (count > r->remaining() / min_elem_bytes) {
    return Status::Corruption("count exceeds buffer");
  }
  return static_cast<size_t>(count);
}

void AppendIndexVector(Bytes* out, const std::vector<size_t>& v) {
  AppendUint64(out, v.size());
  for (size_t x : v) AppendUint64(out, x);
}

Result<std::vector<size_t>> ReadIndexVector(Reader* r) {
  std::vector<size_t> out;
  size_t count = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(count, ReadCount(r, 8));
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t x = 0;
    SHARDCHAIN_ASSIGN_OR_RETURN(x, r->ReadU64());
    out.push_back(static_cast<size_t>(x));
  }
  return out;
}

}  // namespace

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §7)
Bytes EncodeUnifiedParameters(const UnifiedParameters& params) {
  Bytes out;
  out.insert(out.end(), params.randomness.bytes.begin(),
             params.randomness.bytes.end());
  AppendUint64(&out, params.shard_sizes.size());
  for (uint64_t s : params.shard_sizes) AppendUint64(&out, s);
  AppendUint64(&out, params.tx_fees.size());
  for (Amount f : params.tx_fees) AppendUint64(&out, f);
  AppendUint64(&out, params.num_miners);

  const MergingGameConfig& m = params.merge_config;
  AppendUint64(&out, m.min_shard_size);
  AppendDouble(&out, m.shard_reward);
  AppendDouble(&out, m.merge_cost);
  AppendDouble(&out, m.eta);
  AppendUint64(&out, m.subslots);
  AppendDouble(&out, m.tolerance);
  AppendUint64(&out, m.max_slots);
  AppendDouble(&out, m.initial_prob);
  AppendUint64(&out, m.final_draw_retries);
  out.push_back(m.prefer_minimal_coalition ? 1 : 0);
  AppendDouble(&out, m.prob_floor);

  const SelectionGameConfig& s = params.select_config;
  AppendUint64(&out, s.capacity);
  AppendUint64(&out, s.max_sweeps);
  return out;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §7)
Result<UnifiedParameters> DecodeUnifiedParameters(const Bytes& data) {
  Reader r(data);
  UnifiedParameters params;
  SHARDCHAIN_ASSIGN_OR_RETURN(params.randomness, r.ReadHash());
  size_t shards = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(shards, ReadCount(&r, 8));
  params.shard_sizes.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    uint64_t s = 0;
    SHARDCHAIN_ASSIGN_OR_RETURN(s, r.ReadU64());
    params.shard_sizes.push_back(s);
  }
  size_t fees = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(fees, ReadCount(&r, 8));
  params.tx_fees.reserve(fees);
  for (size_t i = 0; i < fees; ++i) {
    uint64_t f = 0;
    SHARDCHAIN_ASSIGN_OR_RETURN(f, r.ReadU64());
    params.tx_fees.push_back(f);
  }
  uint64_t miners = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(miners, r.ReadU64());
  params.num_miners = static_cast<size_t>(miners);

  MergingGameConfig& m = params.merge_config;
  SHARDCHAIN_ASSIGN_OR_RETURN(m.min_shard_size, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(m.shard_reward, ReadDouble(&r));
  SHARDCHAIN_ASSIGN_OR_RETURN(m.merge_cost, ReadDouble(&r));
  SHARDCHAIN_ASSIGN_OR_RETURN(m.eta, ReadDouble(&r));
  uint64_t subslots = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(subslots, r.ReadU64());
  m.subslots = static_cast<size_t>(subslots);
  SHARDCHAIN_ASSIGN_OR_RETURN(m.tolerance, ReadDouble(&r));
  uint64_t max_slots = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(max_slots, r.ReadU64());
  m.max_slots = static_cast<size_t>(max_slots);
  SHARDCHAIN_ASSIGN_OR_RETURN(m.initial_prob, ReadDouble(&r));
  uint64_t retries = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(retries, r.ReadU64());
  m.final_draw_retries = static_cast<size_t>(retries);
  uint8_t prefer = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(prefer, r.ReadByte());
  if (prefer > 1) return Status::Corruption("bad bool byte");
  m.prefer_minimal_coalition = prefer == 1;
  SHARDCHAIN_ASSIGN_OR_RETURN(m.prob_floor, ReadDouble(&r));

  SelectionGameConfig& s = params.select_config;
  uint64_t capacity = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(capacity, r.ReadU64());
  s.capacity = static_cast<size_t>(capacity);
  uint64_t sweeps = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(sweeps, r.ReadU64());
  s.max_sweeps = static_cast<size_t>(sweeps);

  if (!r.AtEnd()) return Status::Corruption("trailing bytes after params");
  return params;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §7)
Bytes EncodeSelectionPlan(const SelectionResult& plan) {
  Bytes out;
  AppendUint64(&out, plan.assignment.size());
  for (const std::vector<size_t>& set : plan.assignment) {
    AppendIndexVector(&out, set);
  }
  AppendUint64(&out, plan.improvement_moves);
  out.push_back(plan.converged ? 1 : 0);
  return out;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §7)
Result<SelectionResult> DecodeSelectionPlan(const Bytes& data) {
  Reader r(data);
  SelectionResult plan;
  size_t miners = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(miners, ReadCount(&r, 8));
  plan.assignment.reserve(miners);
  for (size_t i = 0; i < miners; ++i) {
    std::vector<size_t> set;
    SHARDCHAIN_ASSIGN_OR_RETURN(set, ReadIndexVector(&r));
    plan.assignment.push_back(std::move(set));
  }
  uint64_t moves = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(moves, r.ReadU64());
  plan.improvement_moves = static_cast<size_t>(moves);
  uint8_t converged = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(converged, r.ReadByte());
  if (converged > 1) return Status::Corruption("bad bool byte");
  plan.converged = converged == 1;
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after plan");
  return plan;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §7)
Bytes EncodeMergePlan(const IterativeMergeResult& plan) {
  Bytes out;
  AppendUint64(&out, plan.new_shards.size());
  for (const std::vector<size_t>& group : plan.new_shards) {
    AppendIndexVector(&out, group);
  }
  AppendIndexVector(&out, plan.leftover);
  AppendUint64(&out, plan.total_slots);
  return out;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §7)
Result<IterativeMergeResult> DecodeMergePlan(const Bytes& data) {
  Reader r(data);
  IterativeMergeResult plan;
  size_t groups = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(groups, ReadCount(&r, 8));
  plan.new_shards.reserve(groups);
  for (size_t i = 0; i < groups; ++i) {
    std::vector<size_t> group;
    SHARDCHAIN_ASSIGN_OR_RETURN(group, ReadIndexVector(&r));
    plan.new_shards.push_back(std::move(group));
  }
  SHARDCHAIN_ASSIGN_OR_RETURN(plan.leftover, ReadIndexVector(&r));
  uint64_t slots = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(slots, r.ReadU64());
  plan.total_slots = static_cast<size_t>(slots);
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after plan");
  return plan;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Bytes EncodeEpochRecord(const EpochRecord& record) {
  Bytes out;
  AppendUint64(&out, record.number);
  out.insert(out.end(), record.seed.bytes.begin(), record.seed.bytes.end());
  out.insert(out.end(), record.randomness.bytes.begin(),
             record.randomness.bytes.end());
  AppendUint64(&out, record.leader_index);
  AppendUint32(&out, record.view);
  out.push_back(record.fallback ? 1 : 0);
  AppendUint64(&out, record.fractions.size());
  for (double f : record.fractions) AppendDouble(&out, f);
  return out;
}

// flowlint: deterministic-root — consensus byte stream (DESIGN.md §12)
Result<EpochRecord> DecodeEpochRecord(const Bytes& data) {
  Reader r(data);
  EpochRecord record;
  SHARDCHAIN_ASSIGN_OR_RETURN(record.number, r.ReadU64());
  SHARDCHAIN_ASSIGN_OR_RETURN(record.seed, r.ReadHash());
  SHARDCHAIN_ASSIGN_OR_RETURN(record.randomness, r.ReadHash());
  uint64_t leader = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(leader, r.ReadU64());
  record.leader_index = static_cast<size_t>(leader);
  SHARDCHAIN_ASSIGN_OR_RETURN(record.view, r.ReadU32());
  uint8_t fallback = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(fallback, r.ReadByte());
  if (fallback > 1) return Status::Corruption("bad bool byte");
  record.fallback = fallback == 1;
  size_t fractions = 0;
  SHARDCHAIN_ASSIGN_OR_RETURN(fractions, ReadCount(&r, 8));
  record.fractions.reserve(fractions);
  for (size_t i = 0; i < fractions; ++i) {
    double f = 0.0;
    SHARDCHAIN_ASSIGN_OR_RETURN(f, ReadDouble(&r));
    record.fractions.push_back(f);
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after record");
  return record;
}

}  // namespace codec
}  // namespace shardchain
