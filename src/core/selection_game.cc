#include "core/selection_game.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

#include "parallel/parallel.h"

namespace shardchain {

double SelectionUtility(Amount fee, uint32_t others) {
  return static_cast<double>(fee) / (static_cast<double>(others) + 1.0);
}

size_t SelectionResult::DistinctSets() const {
  std::set<std::vector<size_t>> sets;
  for (const auto& s : assignment) {
    if (!s.empty()) sets.insert(s);
  }
  return sets.size();
}

std::vector<uint32_t> SelectionResult::SelectionCounts(size_t num_txs) const {
  std::vector<uint32_t> counts(num_txs, 0);
  for (const auto& s : assignment) {
    for (size_t j : s) {
      assert(j < num_txs);
      ++counts[j];
    }
  }
  return counts;
}

namespace {

/// Transactions per chunk in the parallel utility scan. Fixed, so the
/// scan decomposition is a function of the fee-vector length alone.
constexpr size_t kScoreGrain = 2048;

/// Picks the best-reply set for one miner: the `capacity` transactions
/// with the highest fee/(competitors+1) shares, given the selection
/// counts of the other miners. Ties break toward the lower index so
/// every miner's computation is reproducible under parameter
/// unification.
///
/// The utility scan fans out over `pool` and writes scores[j] — one
/// pure double per transaction, each slot written once — so the
/// subsequent (serial) selection sees identical inputs at any thread
/// count. `scores` is caller-provided scratch to avoid reallocating in
/// the sweep loop.
std::vector<size_t> BestReply(const std::vector<Amount>& fees,
                              const std::vector<uint32_t>& counts,
                              const std::vector<size_t>& current,
                              size_t capacity, ThreadPool* pool,
                              std::vector<uint8_t>* mine_scratch,
                              std::vector<double>* scores) {
  const size_t t = fees.size();
  // counts[] includes this miner's current picks; competitors for tx j
  // exclude her.
  std::vector<uint8_t>& mine = *mine_scratch;
  mine.assign(t, 0);
  for (size_t j : current) mine[j] = 1;

  scores->resize(t);
  ParallelFor(pool, t, kScoreGrain, [&counts, &mine, &fees, scores](size_t j) {
    const uint32_t others = counts[j] - (mine[j] ? 1 : 0);
    (*scores)[j] = SelectionUtility(fees[j], others);
  });

  std::vector<size_t> order(t);
  std::iota(order.begin(), order.end(), 0);
  const size_t take = std::min(capacity, t);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&](size_t a, size_t b) {
                      const double sa = (*scores)[a];
                      const double sb = (*scores)[b];
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });
  std::vector<size_t> best(order.begin(),
                           order.begin() + static_cast<ptrdiff_t>(take));
  std::sort(best.begin(), best.end());
  return best;
}

double SetUtility(const std::vector<Amount>& fees,
                  const std::vector<uint32_t>& counts,
                  const std::vector<size_t>& set, bool counted) {
  double u = 0.0;
  for (size_t j : set) {
    const uint32_t others = counts[j] - (counted ? 1 : 0);
    u += SelectionUtility(fees[j], others);
  }
  return u;
}

}  // namespace

// flowlint: deterministic-root — consensus entry point (DESIGN.md §7)
SelectionResult RunSelectionGame(const std::vector<Amount>& fees,
                                 size_t num_miners,
                                 const SelectionGameConfig& config, Rng* rng,
                                 ThreadPool* pool) {
  assert(rng != nullptr);
  SelectionResult result;
  result.assignment.assign(num_miners, {});
  if (fees.empty() || num_miners == 0) {
    result.converged = true;
    return result;
  }

  const size_t t = fees.size();
  const size_t take = std::min(config.capacity, t);
  std::vector<uint32_t> counts(t, 0);

  // Random initial choices — in deployment these come from the
  // verifiable leader's broadcast so all miners start identically.
  std::vector<size_t> indices(t);
  std::iota(indices.begin(), indices.end(), 0);
  for (size_t i = 0; i < num_miners; ++i) {
    rng->Shuffle(&indices);
    std::vector<size_t> init(indices.begin(),
                             indices.begin() + static_cast<ptrdiff_t>(take));
    std::sort(init.begin(), init.end());
    for (size_t j : init) ++counts[j];
    result.assignment[i] = std::move(init);
  }

  // Best-reply sweeps (Algorithm 2). The game is a congestion game
  // over uniform-matroid strategy spaces, so the finite improvement
  // property holds and this terminates at a pure Nash equilibrium.
  constexpr double kEps = 1e-12;
  std::vector<uint8_t> mine_scratch;
  std::vector<double> scores;
  for (size_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool changed = false;
    for (size_t i = 0; i < num_miners; ++i) {
      std::vector<size_t>& mine = result.assignment[i];
      std::vector<size_t> best =
          BestReply(fees, counts, mine, take, pool, &mine_scratch, &scores);
      if (best == mine) continue;
      const double current_u = SetUtility(fees, counts, mine, true);
      // Score the candidate against counts with this miner removed.
      for (size_t j : mine) --counts[j];
      const double best_u = SetUtility(fees, counts, best, false);
      if (best_u > current_u + kEps) {
        for (size_t j : best) ++counts[j];
        mine = std::move(best);
        changed = true;
        ++result.improvement_moves;
      } else {
        for (size_t j : mine) ++counts[j];
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  return result;
}

SelectionResult GreedySelection(const std::vector<Amount>& fees,
                                size_t num_miners, size_t capacity) {
  SelectionResult result;
  result.converged = true;
  const size_t take = std::min(capacity, fees.size());
  std::vector<size_t> order(fees.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&](size_t a, size_t b) {
                      if (fees[a] != fees[b]) return fees[a] > fees[b];
                      return a < b;
                    });
  std::vector<size_t> top(order.begin(),
                          order.begin() + static_cast<ptrdiff_t>(take));
  std::sort(top.begin(), top.end());
  result.assignment.assign(num_miners, top);
  return result;
}

SelectionResult RoundRobinSelection(const std::vector<Amount>& fees,
                                    size_t num_miners, size_t capacity) {
  SelectionResult result;
  result.converged = true;
  result.assignment.assign(num_miners, {});
  if (num_miners == 0) return result;
  std::vector<size_t> order(fees.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (fees[a] != fees[b]) return fees[a] > fees[b];
    return a < b;
  });
  // Deal the fee-sorted transactions to miners like cards, stopping
  // when every miner is full.
  size_t miner = 0;
  for (size_t j : order) {
    // Find the next miner with spare capacity.
    size_t scanned = 0;
    while (result.assignment[miner].size() >= capacity &&
           scanned < num_miners) {
      miner = (miner + 1) % num_miners;
      ++scanned;
    }
    if (result.assignment[miner].size() >= capacity) break;
    result.assignment[miner].push_back(j);
    miner = (miner + 1) % num_miners;
  }
  for (auto& s : result.assignment) std::sort(s.begin(), s.end());
  return result;
}

}  // namespace shardchain
