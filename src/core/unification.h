#ifndef SHARDCHAIN_CORE_UNIFICATION_H_
#define SHARDCHAIN_CORE_UNIFICATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/merging_game.h"
#include "core/selection_game.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief The unified inputs a verifiable leader broadcasts so that
/// every miner runs Algorithms 1–3 locally and deterministically
/// (Sec. IV-C).
///
/// With identical inputs, every honest miner computes the identical
/// merge plan and transaction assignment. That kills two birds:
/// the per-iteration gossip of the games disappears (miners simulate
/// each other's moves locally), and cheating is detectable (a block
/// that deviates from the locally computed output is rejected).
struct UnifiedParameters {
  /// Leader-generated epoch randomness; seeds every derived RNG.
  Hash256 randomness;
  /// The shards set: small-shard sizes entering Algorithm 1.
  std::vector<uint64_t> shard_sizes;
  /// The transactions set: fees entering Algorithm 2.
  std::vector<Amount> tx_fees;
  /// The miners set (just its cardinality matters to the games).
  size_t num_miners = 0;
  /// Game parameters, also part of the broadcast.
  MergingGameConfig merge_config;
  SelectionGameConfig select_config;

  /// Deterministic RNG seed derived from the randomness and a domain
  /// label, so the two games use decorrelated streams.
  uint64_t SeedFor(const char* domain) const;
};

/// Every miner's local, deterministic computation of the merge plan —
/// identical outputs given identical parameters. `pool` only changes
/// how fast the plan is computed, never its bytes (DESIGN.md §9); it is
/// a local knob and deliberately NOT part of UnifiedParameters.
IterativeMergeResult ComputeMergePlan(const UnifiedParameters& params,
                                      ThreadPool* pool = nullptr);

/// Every miner's local, deterministic computation of the transaction
/// assignment. Same pool contract as ComputeMergePlan.
SelectionResult ComputeSelectionPlan(const UnifiedParameters& params,
                                     ThreadPool* pool = nullptr);

/// Receive-side checks (Sec. IV-C): honest miners compare a peer's
/// behaviour against the locally computed output and reject liars.

/// Verifies that miner `miner_index` packing transactions `claimed_set`
/// (indices into tx_fees) matches the unified selection plan.
Status VerifySelection(const UnifiedParameters& params, size_t miner_index,
                       const std::vector<size_t>& claimed_set);

/// Verifies that the set of source shards `claimed_group` is one of the
/// new shards in the unified merge plan.
Status VerifyMergeGroup(const UnifiedParameters& params,
                        const std::vector<size_t>& claimed_group);

/// Performs the communication of one unification round on `net` and
/// returns the resulting coordination-message count: each shard's
/// representative submits its statistics to the leader, and the leader
/// broadcasts the unified parameters back — the constant "2
/// communication times per shard" of Fig. 4c.
///
/// `shard_reps` maps each shard to the NodeId speaking for it;
/// `leader` is the leader's NodeId. All nodes must be registered on
/// `net`.
uint64_t RunUnificationRound(Network* net, NodeId leader,
                             const std::vector<NodeId>& shard_reps);

/// Ablation arm: the traffic the games would generate WITHOUT
/// parameter unification — every player gossips its choice to every
/// other player each iteration ("miners need to exchange their choices
/// for several iterations", Sec. IV-C). Returns messages recorded.
uint64_t RunGossipIterations(Network* net, const std::vector<NodeId>& players,
                             size_t iterations);

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_UNIFICATION_H_
