#ifndef SHARDCHAIN_CORE_SELECTION_GAME_H_
#define SHARDCHAIN_CORE_SELECTION_GAME_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "parallel/thread_pool.h"
#include "types/transaction.h"

namespace shardchain {

/// \brief Parameters of the intra-shard transaction-selection game
/// (Sec. IV-B, Algorithm 2).
struct SelectionGameConfig {
  /// Transactions per miner set (block capacity; paper: 10).
  size_t capacity = 10;
  /// Cap on best-reply sweeps (the game has the finite-improvement
  /// property, so this only guards pathological inputs).
  size_t max_sweeps = 10000;
};

/// \brief Outcome of the congestion game.
struct SelectionResult {
  /// assignment[i] = indices (into the fee vector) selected by miner i,
  /// sorted ascending.
  std::vector<std::vector<size_t>> assignment;
  /// Total single-miner best-reply improvements performed.
  size_t improvement_moves = 0;
  /// False only if max_sweeps was hit before reaching equilibrium.
  bool converged = false;

  /// Number of distinct selected sets — the throughput proxy of
  /// Fig. 5b ("the number of transaction sets can represent the
  /// throughput improvement").
  size_t DistinctSets() const;

  /// n_j for every transaction: how many miners selected it.
  std::vector<uint32_t> SelectionCounts(size_t num_txs) const;
};

/// Expected payoff of one miner for transaction j when `others` other
/// miners also chose it: U = fee / (others + 1)  (Eq. 2, with n_j
/// counting the *competing* miners).
double SelectionUtility(Amount fee, uint32_t others);

/// Runs Algorithm 2 (best-reply dynamics) until the pure-strategy Nash
/// equilibrium. `rng` seeds the random initial choices that the
/// verifiable leader would broadcast under parameter unification
/// (Sec. IV-C); passing the same seed everywhere makes every miner
/// compute the identical assignment.
///
/// `pool` parallelizes the per-transaction utility scan inside each
/// best reply (the scores are pure functions of the shared counts, so
/// the scan is order-free); the best-reply sweep itself stays strictly
/// sequential — its miner order IS the algorithm. Output is
/// byte-identical at any thread count, including nullptr (serial).
SelectionResult RunSelectionGame(const std::vector<Amount>& fees,
                                 size_t num_miners,
                                 const SelectionGameConfig& config, Rng* rng,
                                 ThreadPool* pool = nullptr);

/// The Ethereum default every miner follows without the game: all
/// miners take the same top-`capacity` transactions by fee.
SelectionResult GreedySelection(const std::vector<Amount>& fees,
                                size_t num_miners, size_t capacity);

/// Oracle upper bound: a disjoint round-robin partition of the fee-
/// sorted transactions (the "optimal" of Fig. 5b — every miner
/// validates a different set whenever enough transactions exist).
SelectionResult RoundRobinSelection(const std::vector<Amount>& fees,
                                    size_t num_miners, size_t capacity);

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_SELECTION_GAME_H_
