#ifndef SHARDCHAIN_CORE_MIGRATION_H_
#define SHARDCHAIN_CORE_MIGRATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "state/statedb.h"
#include "types/address.h"
#include "types/block.h"

namespace shardchain {

/// \brief Authenticated cross-shard account handoff (Shard Scheduler
/// style migration): the full account contents plus a Merkle Patricia
/// proof that exactly these contents — their digest — sit under the
/// source shard's pre-migration state root. A destination miner needs
/// no access to the source shard's ledger to accept the account: the
/// proof verifies against the publicly gossiped root alone.
struct HandoffRecord {
  Address addr;
  ShardId source = kMaxShardId;
  ShardId dest = kMaxShardId;
  /// Source shard's state root the proof is anchored to.
  Hash256 source_root;
  /// The migrating account's full contents.
  Account account;
  /// Proof that Digest(account) is addr's leaf under `source_root`.
  MerklePatriciaTrie::Proof proof;
};

/// \brief All handoffs of one epoch in canonical order — the unit the
/// determinism gate compares byte-for-byte across runs.
struct MigrationPlan {
  uint64_t epoch = 0;
  std::vector<HandoffRecord> handoffs;
};

/// Builds a handoff for `addr` out of the source shard's tip state.
/// NotFound when the account never materialized there (nothing to
/// move — the destination keeps its genesis view).
Result<HandoffRecord> BuildHandoff(const StateDB& source_state, ShardId source,
                                   ShardId dest, const Address& addr);

/// Verifies a handoff: recomputes the carried account's digest from its
/// contents (ignoring any cached digest) and checks the trie proof pins
/// exactly that digest for `addr` under `source_root` via
/// MerklePatriciaTrie::VerifyProof. Unauthorized on any mismatch.
Status VerifyHandoff(const HandoffRecord& record);

/// Canonical plan order: (source, dest, addr) ascending. Applied before
/// encoding so a plan's bytes are independent of the arrival order the
/// individual migrations were triggered in.
void CanonicalizeMigrationPlan(MigrationPlan* plan);

namespace codec {

/// Canonical account bytes: balance, nonce, length-prefixed code, then
/// the storage map in key order (values as two's-complement u64).
Bytes EncodeAccountState(const Account& account);
Result<Account> DecodeAccountState(const Bytes& data);

Bytes EncodeHandoffRecord(const HandoffRecord& record);
Result<HandoffRecord> DecodeHandoffRecord(const Bytes& data);

Bytes EncodeMigrationPlan(const MigrationPlan& plan);
Result<MigrationPlan> DecodeMigrationPlan(const Bytes& data);

}  // namespace codec

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_MIGRATION_H_
