#include "core/shard_formation.h"

namespace shardchain {

ShardId ShardFormation::Peek(const Transaction& tx) const {
  Address contract;
  if (!graph_.IsShardable(tx, &contract)) return kMaxShardId;
  auto it = contract_to_shard_.find(contract);
  // A contract without a shard yet would be assigned the next id.
  if (it == contract_to_shard_.end()) {
    return static_cast<ShardId>(shard_to_contract_.size() + 1);
  }
  return it->second;
}

ShardId ShardFormation::Route(const Transaction& tx) {
  Address contract;
  ShardId shard = kMaxShardId;
  if (graph_.IsShardable(tx, &contract)) {
    auto it = contract_to_shard_.find(contract);
    if (it == contract_to_shard_.end()) {
      shard = static_cast<ShardId>(shard_to_contract_.size() + 1);
      contract_to_shard_.emplace(contract, shard);
      shard_to_contract_.push_back(contract);
      sizes_.push_back(0);
    } else {
      shard = it->second;
    }
  }
  graph_.Record(tx);
  ++sizes_[shard];
  return shard;
}

std::optional<ShardId> ShardFormation::ShardOfContract(
    const Address& contract) const {
  auto it = contract_to_shard_.find(contract);
  if (it == contract_to_shard_.end()) return std::nullopt;
  return it->second;
}

std::optional<Address> ShardFormation::ContractOfShard(ShardId shard) const {
  if (shard == kMaxShardId || shard > shard_to_contract_.size()) {
    return std::nullopt;
  }
  return shard_to_contract_[shard - 1];
}

std::vector<uint64_t> ShardFormation::ShardSizes() const { return sizes_; }

std::vector<double> ShardFormation::Fractions() const {
  uint64_t total = 0;
  for (uint64_t s : sizes_) total += s;
  std::vector<double> fractions(sizes_.size());
  if (total == 0) {
    const double even = 100.0 / static_cast<double>(sizes_.size());
    for (double& f : fractions) f = even;
    return fractions;
  }
  for (size_t i = 0; i < sizes_.size(); ++i) {
    fractions[i] =
        100.0 * static_cast<double>(sizes_[i]) / static_cast<double>(total);
  }
  return fractions;
}

}  // namespace shardchain
