#ifndef SHARDCHAIN_CORE_SHARDING_SYSTEM_H_
#define SHARDCHAIN_CORE_SHARDING_SYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "chain/ledger.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/churn.h"
#include "core/epoch.h"
#include "core/merging_game.h"
#include "core/migration.h"
#include "core/miner_assignment.h"
#include "core/shard_formation.h"
#include "core/unification.h"
#include "crypto/keys.h"
#include "net/network.h"
#include "parallel/thread_pool.h"
#include "txpool/txpool.h"

namespace shardchain {

/// \brief Top-level configuration of the sharding system.
struct ShardingSystemConfig {
  ChainConfig chain;
  /// G: the shard reward credited to every small-shard miner when a
  /// merge satisfies Eq. 1 (Sec. IV-A1).
  Amount shard_reward = 50;
  MergingGameConfig merge;
  SelectionGameConfig select;
  /// Local execution knob: how many threads the system's deterministic
  /// pool uses for the hot paths (VRF batches, game plans, per-shard
  /// fan-out). Never serialized, never part of UnifiedParameters — at
  /// any setting every output byte matches `threads = 1` (DESIGN.md §9).
  ParallelConfig parallel;
};

/// \brief One shard's locally computed transaction assignment.
struct ShardSelectionPlan {
  ShardId shard = 0;
  /// The unified inputs the plan was derived from (per-shard randomness,
  /// the shard's fee vector in canonical pool order, its miner count).
  UnifiedParameters params;
  SelectionResult plan;
};

/// \brief Lifecycle of a miner under churn (DESIGN.md §12).
enum class MinerStatus : uint8_t {
  kPending = 0,   ///< Joined; enters candidacy at the next boundary.
  kActive = 1,    ///< Serving normally.
  kRetiring = 2,  ///< Serves out the current epoch, departs at the boundary.
  kDeparted = 3,  ///< Gone (crashed or retired); never serves again.
};

/// \brief The full distributed sharding system (Sec. III): contract-
/// centric shard formation, VRF leader election, verifiable miner
/// assignment, per-shard ledgers with real transaction execution, and
/// game-driven merging — the public API the examples build on.
///
/// The intended lifecycle:
///   1. setup: AddMiner / Mint / DeployContract (builds genesis state);
///   2. BeginEpoch: leader election + miner-to-shard assignment;
///   3. flow: SubmitTransaction routes txs to shard pools; MineBlock
///      lets an assigned miner pack and commit a block, with the
///      Sec. III-C receive-side verifications applied;
///   4. optionally MergeSmallShards between epochs.
///
/// Churn (DESIGN.md §12): JoinMiner/RetireMiner/CrashMiner (or a drawn
/// schedule via ApplyChurn) change the population. Joins and retires
/// take effect at the next epoch boundary through the normal candidacy
/// flow; crashes are immediate — a shard left without live miners is
/// merged into the MaxShard with an authenticated state handoff instead
/// of stalling, and EpochDegraded() tells callers when to cut the epoch
/// short via BeginFallbackEpoch.
class ShardingSystem {
 public:
  ShardingSystem(ShardingSystemConfig config, uint64_t seed);

  // --- Setup (before the first epoch) ---------------------------------

  /// Creates an immediately active miner with a fresh Lamport key pair;
  /// returns its NodeId. Setup-time API: use JoinMiner for mid-run
  /// entry.
  NodeId AddMiner();

  /// Funds an account in the genesis state. Shard ledgers snapshot the
  /// genesis state at the moment the shard forms, so fund accounts
  /// before submitting the transactions that create their shard.
  void Mint(const Address& account, Amount amount);

  /// Deploys a contract into the genesis state.
  Result<Address> DeployContract(const Address& creator,
                                 const ContractProgram& program);

  size_t MinerCount() const { return miners_.size(); }

  // --- Churn (miner population dynamics, DESIGN.md §12) ---------------

  /// Registers a miner that enters candidacy and assignment at the NEXT
  /// epoch boundary (it cannot mine or verify blocks before that).
  NodeId JoinMiner();

  /// Voluntary leave: the miner serves out the current epoch and is
  /// excluded from the next epoch's candidacy and assignment.
  Status RetireMiner(NodeId miner);

  /// Crash-stop, effective immediately: the miner stops serving
  /// mid-epoch. Shards left without any live miner are merged into the
  /// MaxShard with an authenticated state handoff so their transactions
  /// keep confirming instead of stalling.
  Status CrashMiner(NodeId miner);

  /// Applies a drawn churn schedule (core/churn.h) in order.
  Status ApplyChurn(const std::vector<ChurnEvent>& events);

  /// True for miners currently serving (kActive or kRetiring).
  bool MinerLive(NodeId miner) const;
  size_t LiveMinerCount() const;
  /// NodeIds of live miners, ascending.
  std::vector<NodeId> LiveMiners() const;
  MinerStatus StatusOfMiner(NodeId miner) const;

  /// True when the current epoch lost its leader to a crash or over
  /// half of the population it started with — callers should end it
  /// early via BeginFallbackEpoch (graceful degradation, DESIGN.md §8).
  bool EpochDegraded() const;

  // --- Epochs ----------------------------------------------------------

  /// Advances one epoch: activates pending joiners and departs retiring
  /// miners, then runs VRF leader election over the live miners on the
  /// chained epoch seed (see EpochManager) and assigns every live miner
  /// to a shard using the current transaction fractions. Counts the
  /// leader's broadcast on the network. `epoch_nonce` is kept for API
  /// compatibility and folded into nothing — the seed chain alone
  /// determines the randomness.
  Status BeginEpoch(uint64_t epoch_nonce);

  /// Graceful degradation (the liveness safety net): starts an epoch in
  /// which EVERY live miner serves the MaxShard and fully validates —
  /// the paper's catch-all shard as safe mode. Used when no verified
  /// leader broadcast (unified parameters) arrived by the epoch
  /// deadline, or when churn degraded the epoch (EpochDegraded):
  /// instead of stalling, all miners derive the same leaderless
  /// randomness from the seed chain and proceed with unsharded
  /// validation for one epoch. The seed chain stays unbroken, so the
  /// next BeginEpoch elects a leader normally.
  Status BeginFallbackEpoch();

  /// True while the current epoch is a MaxShard fallback epoch.
  bool CurrentEpochIsFallback() const { return fallback_epoch_; }

  /// The epoch history (randomness chaining, leader records).
  const EpochManager& epochs() const { return epochs_; }

  bool EpochActive() const { return epoch_active_; }
  NodeId leader() const { return leader_; }
  const Hash256& epoch_randomness() const { return randomness_; }
  /// Current shard of a miner (kUnassignedShard once departed).
  ShardId ShardOfMiner(NodeId miner) const;
  std::vector<NodeId> MinersOfShard(ShardId shard) const;

  // --- Transaction flow -------------------------------------------------

  /// Routes a transaction to its shard (Sec. III-A) and pools it there.
  /// Counts the user's gossip on the network. When the sender's
  /// authoritative home shard differs from the routed shard (its
  /// contract set changed — e.g. a second contract demoted it to the
  /// MaxShard, Sec. II-C), the account migrates first under an
  /// authenticated handoff (DESIGN.md §12).
  Result<ShardId> SubmitTransaction(const Transaction& tx);

  /// Batch admission: routes and pools each transaction exactly as
  /// SubmitTransaction would, in vector order — element-wise identical
  /// statuses (routing, migration, and capacity-eviction races resolve
  /// the same way). The batch entry point for backlog feeders.
  std::vector<Status> SubmitTransactionBatch(
      const std::vector<Transaction>& txs);

  /// Lets `miner` pack pending transactions of her shard into a block,
  /// append it to the shard ledger, and gossip it. Fails with
  /// Unauthorized if the miner's claimed shard does not re-derive
  /// (the Sec. III-C check every receiver also performs) or the miner
  /// is not currently serving (pending joiner / departed).
  Result<Hash256> MineBlock(NodeId miner);

  /// Pipelined mining (chain/pipeline.h): packs, commits, and gossips
  /// `count` consecutive blocks for `miner`'s shard, overlapping each
  /// block's Merkle commit with the next block's selection/execution.
  /// Byte-identical to calling MineBlock `count` times — same blocks,
  /// same pool evolution, same gossip — just faster wall-clock
  /// (tests/pipeline_equivalence_test.cc). Returns the block hashes in
  /// height order.
  Result<std::vector<Hash256>> MineBlocksPipelined(NodeId miner, size_t count);

  /// Receive-side verification a miner applies to a foreign block
  /// (Sec. III-C): the packer must really belong to the block's
  /// ShardID, and the header must carry a shard this system knows.
  Status VerifyIncomingBlock(const Block& block,
                             const Hash256& packer_id) const;

  /// Full wire-level receive path: decode the block bytes, run the
  /// Sec. III-C verifications, and append to the shard ledger. This is
  /// what a miner does with a gossiped block. Returns the block hash.
  Result<Hash256> ReceiveBlockBytes(const Bytes& wire,
                                    const Hash256& packer_id);

  // --- Cross-shard migration (DESIGN.md §12) ----------------------------

  /// Moves one account between shards under an authenticated handoff:
  /// builds a trie proof against the source shard's current root,
  /// verifies it, and imports at the destination. The source-side
  /// eviction is DEFERRED to the next epoch boundary, so every handoff
  /// leaving one shard within an epoch anchors to the same source root
  /// — migration plans stay byte-identical across arrival orders.
  /// NotFound when the account never materialized on the source chain.
  Result<HandoffRecord> MigrateAccount(const Address& addr, ShardId source,
                                       ShardId dest);

  /// Receive side: verifies a handoff (proof against the carried source
  /// root, which must also match the source ledger's current root when
  /// this node holds that ledger) and imports the account at the
  /// destination. A tampered handoff is rejected with Unauthorized and
  /// the epoch continues — rejection never halts the system.
  Status ApplyHandoff(const HandoffRecord& record);

  /// Degradation path for a shard with no live miners: migrates every
  /// account materialized on its chain into the MaxShard (each under a
  /// verified handoff anchored to the shard's pre-migration root),
  /// moves its pending pool, and aliases the shard to the MaxShard.
  /// Returns the applied plan.
  Result<MigrationPlan> MigrateShardToMaxShard(ShardId shard);

  /// Every handoff applied since construction, in application order.
  const std::vector<HandoffRecord>& MigrationLog() const {
    return migration_log_;
  }

  /// The current epoch's handoffs in canonical (source, dest, addr)
  /// order — byte-identical across arrival orders and thread counts
  /// once encoded (core/migration.h codec).
  MigrationPlan EpochMigrationPlan() const;

  // --- Shard state -------------------------------------------------------

  size_t ShardCount() const { return formation_.ShardCount(); }
  std::vector<uint64_t> PendingPerShard() const;
  const Ledger* ShardLedger(ShardId shard) const;
  const TxPool* ShardPool(ShardId shard) const;
  const ShardFormation& formation() const { return formation_; }
  Network& network() { return net_; }
  const Network& network() const { return net_; }

  // --- Inter-shard merging ------------------------------------------------

  /// Runs the unified merge plan over the currently small shards
  /// (pending size < L), moves their pools, miners, AND authenticated
  /// account state into merged shards, and credits the shard reward to
  /// every small-shard miner of a formed group (Sec. IV-A). Returns the
  /// merge plan.
  IterativeMergeResult MergeSmallShards();

  /// Computes every live shard's transaction-selection plan (Alg. 2)
  /// from public data: per-shard randomness derived from the epoch
  /// randomness and the shard id, the shard's pending fees in canonical
  /// pool order, and its miner count. Shards fan out over the system
  /// pool — each plan fills a distinct slot — and the result is ordered
  /// by shard id, so the vector is byte-identical at any thread count.
  std::vector<ShardSelectionPlan> ComputeShardSelectionPlans() const;

  /// The system's deterministic thread pool (nullptr when
  /// config.parallel resolves to one thread).
  ThreadPool* pool() const { return pool_.get(); }

  /// Shard rewards credited so far to a miner.
  Amount ShardRewardOf(NodeId miner) const;

 private:
  struct MinerRecord {
    KeyPair keys;
    Hash256 id;  // Public-key fingerprint.
    ShardId shard = kMaxShardId;
    Amount shard_rewards = 0;
    MinerStatus status = MinerStatus::kActive;
  };

  struct ShardState {
    std::unique_ptr<Ledger> ledger;
    TxPool pool;
    /// Routing alias: after a merge, transactions of this shard flow to
    /// `merged_into` instead.
    std::optional<ShardId> merged_into;
  };

  ShardState& GetOrCreateShard(ShardId shard);
  ShardId ResolveShard(ShardId shard) const;

  /// Epoch-boundary churn: pending joiners activate, retiring miners
  /// depart (and leave the network's membership view).
  void ActivateBoundaryChurn();

  /// Moves every account materialized on `source`'s canonical chain
  /// into `target` under handoffs anchored to `source`'s pre-migration
  /// root (all proofs are built against that one root, then verified
  /// and applied).
  Status MigrateShardState(ShardId source, ShardId target);

  /// Merges every live shard that lost all its live miners into the
  /// MaxShard (called after a crash).
  void RecoverOrphanedShards();

  /// Verified-handoff application: import at dest, schedule the
  /// source-side eviction for the next boundary, append to the log.
  /// Callers must have verified `record`.
  void ApplyVerifiedHandoff(const HandoffRecord& record);

  /// Applies the deferred source-side evictions (shard id, then address
  /// order) at the epoch boundary.
  void FlushPendingEvictions();

  ShardingSystemConfig config_;
  /// Created once from config_.parallel; stays null for threads = 1 so
  /// the serial path has zero pool overhead.
  std::unique_ptr<ThreadPool> pool_;
  Rng rng_;
  StateDB genesis_state_;
  ShardFormation formation_;
  Network net_;
  std::vector<MinerRecord> miners_;
  std::map<ShardId, ShardState> shards_;

  /// Authoritative home shard per sender, updated on migration. Ordered
  /// map: iteration never feeds consensus, but determinism by default.
  std::map<Address, ShardId> home_;
  std::vector<HandoffRecord> migration_log_;
  /// Source-side evictions awaiting the next epoch boundary: migrating
  /// an account out must not change the source root mid-epoch (other
  /// handoffs from the same shard anchor to it).
  std::map<ShardId, std::set<Address>> pending_evictions_;
  /// migration_log_ size at the last epoch boundary — the current
  /// epoch's handoffs are the suffix.
  size_t epoch_log_start_ = 0;

  bool epoch_active_ = false;
  bool fallback_epoch_ = false;
  NodeId leader_ = 0;
  /// The current epoch's leader crash-stopped mid-epoch.
  bool leader_crashed_ = false;
  /// Live population at the last epoch boundary (degradation baseline).
  size_t epoch_population_ = 0;
  Hash256 randomness_;
  std::vector<double> fractions_;
  EpochManager epochs_{Sha256Digest("shardchain.genesis.v1")};
};

}  // namespace shardchain

#endif  // SHARDCHAIN_CORE_SHARDING_SYSTEM_H_
