#include "core/miner_assignment.h"

#include <algorithm>
#include <cassert>

namespace shardchain {

Result<size_t> ElectLeader(const std::vector<LeaderCandidate>& candidates,
                           const Hash256& seed) {
  Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
  if (!ranked.ok()) return ranked.status();
  return ranked->front();
}

Result<std::vector<size_t>> RankCandidates(
    const std::vector<LeaderCandidate>& candidates, const Hash256& seed,
    ThreadPool* pool) {
  std::vector<const PublicKey*> pks;
  std::vector<const VrfOutput*> outs;
  pks.reserve(candidates.size());
  outs.reserve(candidates.size());
  for (const LeaderCandidate& c : candidates) {
    pks.push_back(&c.public_key);
    outs.push_back(&c.vrf);
  }
  const std::vector<uint8_t> valid = VrfVerifyBatch(pks, seed, outs, pool);
  std::vector<size_t> ranked;
  ranked.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (valid[i]) ranked.push_back(i);
  }
  if (ranked.empty()) {
    return Status::NotFound("no candidate with a valid VRF proof");
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
    return VrfTicket(candidates[a].vrf.value) <
           VrfTicket(candidates[b].vrf.value);
  });
  return ranked;
}

uint32_t RandHoundDraw(const Hash256& randomness, const Hash256& miner_id) {
  Sha256 h;
  h.Update("shardchain.randhound.v1");
  h.Update(randomness.bytes.data(), randomness.bytes.size());
  h.Update(miner_id.bytes.data(), miner_id.bytes.size());
  return 1 + static_cast<uint32_t>(h.Finalize().Prefix64() % 100);
}

ShardId ShardForDraw(uint32_t draw, const std::vector<double>& fractions) {
  assert(draw >= 1 && draw <= 100);
  double cumulative = 0.0;
  for (size_t s = 0; s < fractions.size(); ++s) {
    cumulative += fractions[s];
    if (static_cast<double>(draw) <= cumulative + 1e-9) {
      return static_cast<ShardId>(s);
    }
  }
  // Rounding in the fractions may leave the last sliver of [1, 100]
  // uncovered; it belongs to the final shard.
  return fractions.empty() ? kMaxShardId
                           : static_cast<ShardId>(fractions.size() - 1);
}

ShardId AssignShard(const Hash256& randomness, const Hash256& miner_id,
                    const std::vector<double>& fractions) {
  return ShardForDraw(RandHoundDraw(randomness, miner_id), fractions);
}

Status VerifyShardMembership(const Hash256& randomness,
                             const Hash256& miner_id,
                             const std::vector<double>& fractions,
                             ShardId claimed) {
  const ShardId expected = AssignShard(randomness, miner_id, fractions);
  if (expected != claimed) {
    return Status::Unauthorized("miner claims shard " +
                                std::to_string(claimed) + " but derives to " +
                                std::to_string(expected));
  }
  return Status::OK();
}

std::vector<ShardId> AssignAllMiners(const Hash256& randomness,
                                     const std::vector<Hash256>& miner_ids,
                                     const std::vector<double>& fractions,
                                     Network* net) {
  std::vector<ShardId> out;
  out.reserve(miner_ids.size());
  for (size_t i = 0; i < miner_ids.size(); ++i) {
    const ShardId shard = AssignShard(randomness, miner_ids[i], fractions);
    out.push_back(shard);
    if (net != nullptr) net->Register(static_cast<NodeId>(i), shard);
  }
  return out;
}

}  // namespace shardchain
