#include "consensus/pow.h"

#include <cassert>
#include <cmath>

namespace shardchain {
namespace pow {

uint64_t TargetForDifficulty(uint64_t difficulty) {
  if (difficulty <= 1) return ~uint64_t{0};
  return ~uint64_t{0} / difficulty;
}

bool CheckPow(const BlockHeader& header) {
  return header.Hash().Prefix64() <= TargetForDifficulty(header.difficulty);
}

std::optional<uint64_t> SolvePow(BlockHeader* header,
                                 uint64_t max_iterations) {
  assert(header != nullptr);
  const uint64_t target = TargetForDifficulty(header->difficulty);
  for (uint64_t i = 0; i < max_iterations; ++i) {
    if (header->Hash().Prefix64() <= target) return i + 1;
    ++header->nonce;
  }
  return std::nullopt;
}

double MeanBlockInterval(uint64_t difficulty, double relative_power) {
  assert(relative_power > 0.0);
  return static_cast<double>(difficulty) /
         (kCalibratedHashRate * relative_power);
}

SimTime SampleBlockInterval(uint64_t difficulty, double relative_power,
                            Rng* rng) {
  assert(rng != nullptr);
  return rng->Exponential(MeanBlockInterval(difficulty, relative_power));
}

uint64_t DifficultyForThroughput(double txs_per_second, double txs_per_block) {
  assert(txs_per_second > 0.0 && txs_per_block > 0.0);
  // blocks/s = txs_per_second / txs_per_block; mean interval is the
  // inverse; difficulty = interval * hashrate.
  const double interval = txs_per_block / txs_per_second;
  const double difficulty = interval * kCalibratedHashRate;
  return difficulty < 1.0 ? 1 : static_cast<uint64_t>(std::llround(difficulty));
}

}  // namespace pow
}  // namespace shardchain
