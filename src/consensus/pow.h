#ifndef SHARDCHAIN_CONSENSUS_POW_H_
#define SHARDCHAIN_CONSENSUS_POW_H_

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "types/block.h"

namespace shardchain {

/// \brief Proof-of-Work utilities.
///
/// Two layers, used at different scales:
///  1. A real hash-puzzle miner (`SolvePow`) for unit-level realism —
///     blocks appended to a check_pow ledger carry genuine solutions.
///  2. A stochastic timing model (`SampleBlockInterval`) for the
///     discrete-event simulator: PoW races are memoryless, so each
///     miner's time-to-block is exponential with mean
///     difficulty / hashrate. This is what reproduces the paper's
///     wall-clock results (1 block/min at difficulty 0x40000 on a
///     c5.large; 76 tx/s at 0xd79).
namespace pow {

/// Target derivation shared with ledger validation: hash prefix must be
/// <= UINT64_MAX / difficulty.
uint64_t TargetForDifficulty(uint64_t difficulty);

/// True if `header`'s hash meets its difficulty.
bool CheckPow(const BlockHeader& header);

/// Searches nonces starting at `header->nonce` until the hash meets the
/// difficulty or `max_iterations` are exhausted. Returns the number of
/// hashes tried on success.
std::optional<uint64_t> SolvePow(BlockHeader* header,
                                 uint64_t max_iterations = 1 << 24);

/// Hash rate that calibrates the timing model to the paper's testbed:
/// difficulty 0x40000 ↦ one block per 60 s (Sec. VI-B1).
inline constexpr double kCalibratedHashRate =
    static_cast<double>(0x40000) / 60.0;

/// Expected seconds for one miner of `relative_power` (1.0 = one
/// c5.large) to mine at `difficulty`.
double MeanBlockInterval(uint64_t difficulty, double relative_power = 1.0);

/// Samples the time a miner takes to find the next block (exponential).
SimTime SampleBlockInterval(uint64_t difficulty, double relative_power,
                            Rng* rng);

/// Difficulty at which one miner confirms `txs_per_second` transactions
/// per second when blocks hold `txs_per_block` transactions — used to
/// recreate the "76 transactions per second" setting of Sec. VI-B2.
uint64_t DifficultyForThroughput(double txs_per_second,
                                 double txs_per_block);

}  // namespace pow

}  // namespace shardchain

#endif  // SHARDCHAIN_CONSENSUS_POW_H_
