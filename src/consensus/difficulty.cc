#include "consensus/difficulty.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace shardchain {
namespace pow {

uint64_t NextDifficulty(uint64_t parent_difficulty, double interval,
                        const RetargetConfig& config) {
  assert(interval >= 0.0);
  const int64_t step =
      1 - static_cast<int64_t>(interval / config.target_interval);
  const int64_t clamped =
      std::max<int64_t>(config.max_downward, std::min<int64_t>(step, 1));
  const int64_t delta =
      static_cast<int64_t>(parent_difficulty / config.adjustment_divisor) *
      clamped;
  int64_t next = static_cast<int64_t>(parent_difficulty) + delta;
  if (next < static_cast<int64_t>(config.min_difficulty)) {
    next = static_cast<int64_t>(config.min_difficulty);
  }
  return static_cast<uint64_t>(next);
}

double RetargetTrace::EquilibriumInterval(size_t tail) const {
  if (intervals.empty()) return 0.0;
  const size_t n = std::min(tail, intervals.size());
  double sum = 0.0;
  for (size_t i = intervals.size() - n; i < intervals.size(); ++i) {
    sum += intervals[i];
  }
  return sum / static_cast<double>(n);
}

RetargetTrace SimulateRetargeting(uint64_t initial_difficulty,
                                  double hashrate, size_t blocks,
                                  const RetargetConfig& config, Rng* rng) {
  assert(hashrate > 0.0 && rng != nullptr);
  RetargetTrace trace;
  trace.intervals.reserve(blocks);
  trace.difficulties.reserve(blocks);
  uint64_t difficulty = std::max(initial_difficulty, config.min_difficulty);
  for (size_t b = 0; b < blocks; ++b) {
    const double mean = static_cast<double>(difficulty) / hashrate;
    const double interval = rng->Exponential(mean);
    difficulty = NextDifficulty(difficulty, interval, config);
    trace.intervals.push_back(interval);
    trace.difficulties.push_back(difficulty);
  }
  return trace;
}

uint64_t EquilibriumDifficulty(double hashrate, const RetargetConfig& config) {
  assert(hashrate > 0.0);
  // The retarget rule is (in expectation) stationary when the expected
  // clamp term is zero; for exponential intervals that is close to
  // interval == target, i.e. difficulty == hashrate * target.
  const double d = hashrate * config.target_interval;
  return d < static_cast<double>(config.min_difficulty)
             ? config.min_difficulty
             : static_cast<uint64_t>(std::llround(d));
}

}  // namespace pow
}  // namespace shardchain
