#ifndef SHARDCHAIN_CONSENSUS_DIFFICULTY_H_
#define SHARDCHAIN_CONSENSUS_DIFFICULTY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "types/block.h"

namespace shardchain {
namespace pow {

/// \brief Ethereum-style per-block difficulty retargeting.
///
/// go-Ethereum 1.8.0 (the paper's base system) adjusts difficulty every
/// block so the network's block interval tracks a target regardless of
/// how much mining power joins. This is what makes "more miners" stop
/// helping in Table I: the chain produces blocks at the target rate no
/// matter how many miners race. The rule (Homestead, bomb omitted):
///
///   d' = d + (d / 2048) * clamp(1 - (t - t_parent) / target, -99, 1)
struct RetargetConfig {
  double target_interval = 60.0;  ///< Seconds between blocks at equilibrium.
  uint64_t min_difficulty = 16;   ///< Floor, as in go-Ethereum.
  uint64_t adjustment_divisor = 2048;
  int64_t max_downward = -99;
};

/// One retargeting step given the parent difficulty and the observed
/// block interval.
uint64_t NextDifficulty(uint64_t parent_difficulty, double interval,
                        const RetargetConfig& config);

/// \brief Trace of a simulated retargeting run.
struct RetargetTrace {
  std::vector<double> intervals;      ///< Observed block intervals.
  std::vector<uint64_t> difficulties; ///< Difficulty after each block.
  double EquilibriumInterval(size_t tail = 20) const;
};

/// Simulates `blocks` blocks mined by aggregate `hashrate` (hashes/s)
/// under retargeting: each interval is exponential with mean
/// difficulty / hashrate, then difficulty adjusts. Shows convergence of
/// the interval to the target independent of hashrate.
RetargetTrace SimulateRetargeting(uint64_t initial_difficulty,
                                  double hashrate, size_t blocks,
                                  const RetargetConfig& config, Rng* rng);

/// The difficulty at which `hashrate` yields the target interval —
/// the fixed point the simulation converges to.
uint64_t EquilibriumDifficulty(double hashrate, const RetargetConfig& config);

}  // namespace pow
}  // namespace shardchain

#endif  // SHARDCHAIN_CONSENSUS_DIFFICULTY_H_
