// Contract playground: assemble, analyze, disassemble, and trace a
// contract program end to end.
//
//   $ ./example_contract_playground
//
// Walks the full tooling chain on a small loan contract written in the
// VM's assembly: static analysis (stack bounds, gas bound, required
// args), disassembly, then a traced execution against real state.

#include <cstdio>
#include <string>

#include "contract/analyzer.h"
#include "contract/assembler.h"
#include "contract/vm.h"
#include "state/statedb.h"

using namespace shardchain;

namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

// A micro-loan contract: the borrower (party 0) may draw up to a limit
// (arg1) if her balance is below a threshold (arg0); each draw is
// recorded in slot 0 and may never exceed the limit in total.
constexpr const char* kLoanSource = R"(
    ; args: 0 = balance threshold, 1 = total limit, 2 = draw amount
    PARTYBALANCE 0
    ARG 0
    LT
    REQUIRE            ; only lend to the needy
    PUSH 0
    SLOAD
    ARG 2
    ADD                ; drawn-so-far + draw
    DUP
    ARG 1
    LE
    REQUIRE            ; total must stay within the limit
    PUSH 0
    SSTORE             ; record the new total
    ARG 2
    PUSH 0
    TRANSFER           ; pay the borrower
    STOP
)";

}  // namespace

int main() {
  std::printf("== shardchain contract playground ==\n");

  // 1. Assemble.
  Result<Bytes> code = Assemble(kLoanSource);
  if (!code.ok()) {
    std::printf("assembly failed: %s\n", code.status().ToString().c_str());
    return 1;
  }
  ContractProgram program;
  program.code = *code;
  program.parties = {Addr(0xB0)};  // The borrower.
  std::printf("\nassembled %zu bytes of bytecode\n", program.code.size());

  // 2. Static analysis.
  const AnalysisReport report = AnalyzeProgram(program);
  std::printf("analysis: valid=%s underflow=%s max_stack=%zu args=%zu "
              "loops=%s gas_bound=%s\n",
              report.valid ? "yes" : "no",
              report.may_underflow ? "POSSIBLE" : "no", report.max_stack,
              report.required_args, report.has_loops ? "yes" : "no",
              report.gas_upper_bound.has_value()
                  ? std::to_string(*report.gas_upper_bound).c_str()
                  : "unbounded");

  // 3. Disassemble.
  Result<std::string> listing = Disassemble(program.code);
  if (listing.ok()) {
    std::printf("\ndisassembly:\n%s", listing->c_str());
  }

  // 4. Traced execution: fund the contract, run two draws.
  StateDB state;
  state.Mint(Addr(0xCC), 1000);  // Contract treasury.
  CallContext ctx;
  ctx.contract = Addr(0xCC);
  ctx.caller = Addr(0xB0);
  ctx.args = {/*threshold=*/500, /*limit=*/300, /*draw=*/200};
  size_t steps = 0;
  ctx.tracer = [&steps](const TraceStep& step) {
    ++steps;
    std::printf("  [%2zu] pc=%-3zu %-14s depth=%zu gas=%llu\n", steps,
                step.pc, OpName(step.op), step.stack_depth_before,
                static_cast<unsigned long long>(step.gas_after));
  };

  std::printf("\ntrace of draw #1 (200 of 300 limit):\n");
  Result<ExecReceipt> r1 = Vm::Execute(program, ctx, &state);
  std::printf("-> %s; borrower balance %llu, drawn %lld\n",
              r1.ok() ? "OK" : r1.status().ToString().c_str(),
              static_cast<unsigned long long>(state.BalanceOf(Addr(0xB0))),
              static_cast<long long>(state.StorageGet(Addr(0xCC), 0)));

  std::printf("\ndraw #2 (another 200 would exceed the limit):\n");
  ctx.tracer = nullptr;  // Quiet this time.
  Result<ExecReceipt> r2 = Vm::Execute(program, ctx, &state);
  std::printf("-> %s (drawn stays %lld)\n",
              r2.ok() ? "OK" : r2.status().ToString().c_str(),
              static_cast<long long>(state.StorageGet(Addr(0xCC), 0)));

  std::printf("\ndraw #3 (a smaller 100 fits):\n");
  ctx.args = {500, 300, 100};
  Result<ExecReceipt> r3 = Vm::Execute(program, ctx, &state);
  std::printf("-> %s; borrower balance %llu, drawn %lld\n",
              r3.ok() ? "OK" : r3.status().ToString().c_str(),
              static_cast<unsigned long long>(state.BalanceOf(Addr(0xB0))),
              static_cast<long long>(state.StorageGet(Addr(0xCC), 0)));
  return 0;
}
