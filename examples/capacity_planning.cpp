// Capacity planning under sustained load (open-system extension).
//
//   $ ./example_capacity_planning
//
// The paper evaluates closed runs (inject N transactions, wait). A
// deployment faces continuous arrivals instead. This example uses the
// Poisson-arrival model (sim/arrival.h) to answer two operator
// questions:
//   1. what confirmation latency should users expect at a given load?
//   2. at what arrival rate does a shard saturate — and how far does
//      the intra-shard selection game (Sec. IV-B) push that point?

#include <cstdio>

#include "sim/arrival.h"

using namespace shardchain;

int main() {
  std::printf("== shardchain capacity planning ==\n\n");

  // --- 1. Latency vs load, single-miner shard -------------------------
  std::printf("single miner, greedy packing (10 tx/min ceiling):\n");
  std::printf("%12s %12s %12s %12s %10s\n", "load (tx/s)", "throughput",
              "mean lat(s)", "p95 lat(s)", "backlog");
  for (double rate : {0.02, 0.05, 0.10, 0.15, 0.20}) {
    ArrivalConfig config;
    config.arrival_rate = rate;
    config.duration_seconds = 60000.0;
    Rng rng(1);
    const ArrivalResult r = RunArrivalSim(config, &rng);
    std::printf("%12.2f %12.3f %12.0f %12.0f %10zu%s\n", rate, r.throughput,
                r.mean_latency, r.p95_latency, r.backlog,
                r.Saturated(config) ? "  << saturated" : "");
  }

  // --- 2. The selection game raises capacity under pressure ------------
  std::printf("\n5 miners in one shard, overloaded at 0.6 tx/s (36 tx/min):\n");
  std::printf("%18s %12s %12s\n", "policy", "throughput", "tx/min");
  for (SelectionPolicy policy :
       {SelectionPolicy::kGreedy, SelectionPolicy::kCongestionGame,
        SelectionPolicy::kRoundRobin}) {
    ArrivalConfig config;
    config.num_miners = 5;
    config.policy = policy;
    config.arrival_rate = 0.6;
    config.duration_seconds = 12000.0;
    Rng rng(2);
    const ArrivalResult r = RunArrivalSim(config, &rng);
    std::printf("%18s %12.3f %12.1f\n", SelectionPolicyName(policy),
                r.throughput, r.throughput * 60.0);
  }

  // Stability thresholds (keep-up rate with a bounded backlog).
  std::printf("\nkeep-up rate (bounded backlog), 5 miners:\n");
  for (SelectionPolicy policy :
       {SelectionPolicy::kGreedy, SelectionPolicy::kCongestionGame,
        SelectionPolicy::kRoundRobin}) {
    ArrivalConfig base;
    base.num_miners = 5;
    base.policy = policy;
    base.duration_seconds = 12000.0;
    Rng rng(3);
    const double rate = FindSaturationRate(base, 0.01, 1.2, 10, &rng);
    std::printf("  %-16s : %.3f tx/s (%.0f tx/min)\n",
                SelectionPolicyName(policy), rate, rate * 60.0);
  }

  std::printf(
      "\nReading: greedy selection caps a shard at one block per round\n"
      "(10 tx/min) regardless of miner count. The congestion game's\n"
      "diversity grows with the queue, so it sustains roughly twice\n"
      "greedy's throughput under overload — at the cost of a standing\n"
      "backlog (its keep-up threshold sits near greedy's because a short\n"
      "queue gives the equilibrium little room to spread, Fig. 5b's 50%%\n"
      "diversity effect). The disjoint oracle shows the ceiling.\n");
  return 0;
}
