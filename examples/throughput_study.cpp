// Throughput study: a self-contained tour of the paper's evaluation on
// the round-based mining model.
//
//   $ ./example_throughput_study
//
// Compares four designs on the same 200-transaction workload:
//   1. Ethereum       — one network, greedy fee-ordered packing;
//   2. Sharding       — contract-centric shards (Sec. III);
//   3. Sharding+game  — plus intra-shard selection (Sec. IV-B);
//   4. Oracle         — disjoint round-robin sets (upper bound).

#include <cstdio>
#include <vector>

#include "baseline/ethereum.h"
#include "common/rng.h"
#include "sim/mining_sim.h"
#include "sim/workload.h"

using namespace shardchain;

namespace {

std::vector<ShardSpec> MakeShards(const Workload& w, size_t num_miners) {
  std::vector<ShardSpec> shards(w.contracts.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    shards[s].id = static_cast<ShardId>(s);
    shards[s].num_miners = num_miners;
  }
  for (size_t i = 0; i < w.transactions.size(); ++i) {
    if (w.contract_of[i] >= 0) {
      shards[static_cast<size_t>(w.contract_of[i])].tx_fees.push_back(
          w.transactions[i].fee);
    }
  }
  return shards;
}

}  // namespace

int main() {
  std::printf("== shardchain throughput study ==\n\n");

  Rng rng(7);
  WorkloadConfig wl;
  wl.num_transactions = 200;
  wl.num_contracts = 8;
  wl.fee_model = FeeModel::kBinomial;
  const Workload w = GenerateWorkload(wl, &rng);
  std::vector<Amount> fees;
  for (const auto& tx : w.transactions) fees.push_back(tx.fee);

  MiningSimConfig config;
  config.round_seconds = 60.0;
  config.txs_per_block = 10;

  // 1. Ethereum: 9 miners, serialized confirmation.
  Rng r1 = rng.Fork();
  const SimResult eth = RunEthereumBaseline(fees, 9, config, &r1);
  std::printf("Ethereum (9 miners, greedy)        : %6.0f s  (%zu stale "
              "forks wasted)\n",
              eth.makespan, eth.TotalWastedBlocks());

  // 2. Contract sharding, one miner per shard.
  Rng r2 = rng.Fork();
  const SimResult sharded = RunMiningSim(MakeShards(w, 1), config, &r2);
  std::printf("Sharding (8 shards, 1 miner each)  : %6.0f s  (%.2fx)\n",
              sharded.makespan, ThroughputImprovement(eth, sharded));

  // 3. Sharding + intra-shard congestion game, 3 miners per shard.
  MiningSimConfig game = config;
  game.policy = SelectionPolicy::kCongestionGame;
  Rng r3 = rng.Fork();
  const SimResult with_game = RunMiningSim(MakeShards(w, 3), game, &r3);
  std::printf("Sharding + selection game (3/shard): %6.0f s  (%.2fx)\n",
              with_game.makespan, ThroughputImprovement(eth, with_game));

  // 4. Oracle upper bound: perfectly disjoint sets.
  MiningSimConfig oracle = config;
  oracle.policy = SelectionPolicy::kRoundRobin;
  Rng r4 = rng.Fork();
  const SimResult best = RunMiningSim(MakeShards(w, 3), oracle, &r4);
  std::printf("Oracle (disjoint round-robin)      : %6.0f s  (%.2fx)\n",
              best.makespan, ThroughputImprovement(eth, best));

  std::printf(
      "\nReading: sharding parallelizes across contracts; the selection\n"
      "game additionally parallelizes within a shard by steering miners\n"
      "to different transaction sets; the oracle shows the headroom left\n"
      "by residual equilibrium overlap.\n");
  return 0;
}
