// Quickstart: stand up a contract-centric sharded blockchain, submit
// transactions, mine, and inspect the per-shard ledgers.
//
//   $ ./example_quickstart
//
// Walks the workflow of Fig. 2: users send contract calls, the call
// graph routes each transaction to its contract's shard (or the
// MaxShard), a VRF-elected leader assigns miners, and miners pack
// blocks that execute the calls against real per-shard state.

#include <cstdio>

#include "core/sharding_system.h"

using namespace shardchain;

namespace {

Address User(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

}  // namespace

int main() {
  std::printf("== shardchain quickstart ==\n\n");

  ShardingSystemConfig config;
  config.chain.max_txs_per_block = 10;
  ShardingSystem system(config, /*seed=*/42);

  // 1. Register miners (each gets a fresh Lamport key pair).
  for (int i = 0; i < 4; ++i) system.AddMiner();
  std::printf("registered %zu miners\n", system.MinerCount());

  // 2. Deploy two smart contracts into the genesis state: each
  //    "records an unconditional transaction that transfers money to a
  //    specified destination" (the paper's testbed contracts).
  const Address merchant_a = User(0xA0);
  const Address merchant_b = User(0xB0);
  const Address contract_a =
      *system.DeployContract(User(1), contracts::UnconditionalTransfer(merchant_a));
  const Address contract_b =
      *system.DeployContract(User(1), contracts::UnconditionalTransfer(merchant_b));
  std::printf("deployed contracts %s and %s\n",
              contract_a.ToHex().substr(0, 10).c_str(),
              contract_b.ToHex().substr(0, 10).c_str());

  // 3. Fund customers BEFORE their shards form (shard ledgers snapshot
  //    genesis when the first transaction routes to them).
  for (uint8_t u = 10; u < 16; ++u) system.Mint(User(u), 1000);

  // 4. Start an epoch: VRF leader election + verifiable miner
  //    assignment (Sec. III-B).
  if (Status st = system.BeginEpoch(1); !st.ok()) {
    std::printf("epoch failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("epoch started; leader = miner %u, randomness = %s...\n",
              system.leader(),
              system.epoch_randomness().ToHex().substr(0, 12).c_str());

  // 5. Customers invoke the contracts. Single-contract senders shard
  //    around their contract; a direct transfer goes to the MaxShard.
  auto call = [&](uint8_t user, const Address& contract) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = User(user);
    tx.recipient = contract;
    tx.value = 100;
    tx.fee = 10;
    Result<ShardId> shard = system.SubmitTransaction(tx);
    std::printf("  user %u -> contract %s : shard %u\n", user,
                contract.ToHex().substr(0, 10).c_str(), *shard);
  };
  call(10, contract_a);
  call(11, contract_a);
  call(12, contract_b);
  call(13, contract_b);

  Transaction direct;
  direct.kind = TxKind::kDirectTransfer;
  direct.sender = User(14);
  direct.recipient = User(15);
  direct.value = 5;
  direct.fee = 2;
  Result<ShardId> direct_shard = system.SubmitTransaction(direct);
  std::printf("  user 14 -> user 15 (direct)  : shard %u (MaxShard)\n",
              *direct_shard);

  // 6. Mine across a few epochs: each epoch re-runs leader election and
  //    reassigns miners by the (now non-trivial) shard fractions, so
  //    every shard eventually receives mining power.
  for (uint64_t epoch = 2; epoch <= 5; ++epoch) {
    (void)system.BeginEpoch(epoch);
    for (int round = 0; round < 2; ++round) {
      for (NodeId m = 0; m < system.MinerCount(); ++m) {
        (void)system.MineBlock(m);
      }
    }
    uint64_t pending = 0;
    for (uint64_t p : system.PendingPerShard()) pending += p;
    if (pending == 0) break;
  }

  // 7. Inspect the shards.
  std::printf("\nshard state after mining:\n");
  for (ShardId s = 0; s < system.ShardCount(); ++s) {
    const Ledger* ledger = system.ShardLedger(s);
    if (ledger == nullptr) continue;
    std::printf(
        "  shard %u: height %llu, %zu txs confirmed, %zu empty blocks\n", s,
        static_cast<unsigned long long>(ledger->tip_number()),
        ledger->CanonicalTxCount(), ledger->CanonicalEmptyBlocks());
  }
  const Ledger* shard_a = system.ShardLedger(1);
  if (shard_a != nullptr) {
    std::printf("\nmerchant A balance on its shard: %llu\n",
                static_cast<unsigned long long>(
                    shard_a->tip_state().BalanceOf(merchant_a)));
  }
  std::printf("\nleader broadcasts on the network: %llu messages\n",
              static_cast<unsigned long long>(
                  system.network().Count(MsgKind::kLeaderBroadcast)));
  std::printf("cross-shard validation messages: %llu (always zero)\n",
              static_cast<unsigned long long>(
                  system.network().CrossShardCount(MsgKind::kCrossShardQuery)));
  return 0;
}
