// Marketplace scenario: conditional payments and escrow across shards.
//
//   $ ./example_marketplace
//
// Exercises the contract VM end to end inside the sharded system:
//   - a charity contract that forwards donations only while the
//     beneficiary's balance is below a threshold (the paper's Sec. II-A
//     motivating example);
//   - an escrow contract that accumulates deposits and releases them on
//     demand;
//   - the inter-shard merging step that consolidates the small shards
//     these contracts create.

#include <cstdio>
#include <set>

#include "core/sharding_system.h"

using namespace shardchain;

namespace {

Address User(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

void PrintShards(const ShardingSystem& system, const char* label) {
  std::printf("%s\n", label);
  for (ShardId s = 0; s < system.ShardCount(); ++s) {
    const TxPool* pool = system.ShardPool(s);
    const Ledger* ledger = system.ShardLedger(s);
    if (pool == nullptr && ledger == nullptr) continue;
    std::printf("  shard %u: pending=%zu confirmed=%zu\n", s,
                pool != nullptr ? pool->Size() : 0,
                ledger != nullptr ? ledger->CanonicalTxCount() : 0);
  }
}

}  // namespace

int main() {
  std::printf("== shardchain marketplace ==\n\n");

  ShardingSystemConfig config;
  config.merge.min_shard_size = 6;  // Both demo shards count as small.
  config.merge.merge_cost = 5.0;
  config.shard_reward = 50;
  ShardingSystem system(config, /*seed=*/2026);

  for (int i = 0; i < 6; ++i) system.AddMiner();

  // Contracts: a capped charity and an escrow.
  const Address beneficiary = User(0xC0);
  const Address seller = User(0xD0);
  const Address charity = *system.DeployContract(
      User(1), contracts::ConditionalTransfer(beneficiary, /*threshold=*/250));
  const Address escrow =
      *system.DeployContract(User(2), contracts::Escrow(seller));
  std::printf("charity contract: %s (pays %s while balance < 250)\n",
              charity.ToHex().substr(0, 10).c_str(),
              beneficiary.ToHex().substr(0, 10).c_str());
  std::printf("escrow contract : %s (beneficiary %s)\n\n",
              escrow.ToHex().substr(0, 10).c_str(),
              seller.ToHex().substr(0, 10).c_str());

  // Fund all participants before their shards form.
  for (uint8_t u = 20; u < 30; ++u) system.Mint(User(u), 1000);

  (void)system.BeginEpoch(1);

  // Donors give 100 each through the charity. Once the beneficiary
  // holds 250+, further donations revert and are dropped by miners.
  for (uint8_t donor = 20; donor < 25; ++donor) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = User(donor);
    tx.recipient = charity;
    tx.value = 100;
    tx.fee = 5;
    (void)system.SubmitTransaction(tx);
  }

  // Buyers escrow 150 each (arg0 = 0 -> deposit), then one releases
  // (arg0 = 1).
  for (uint8_t buyer = 25; buyer < 28; ++buyer) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = User(buyer);
    tx.recipient = escrow;
    tx.value = 150;
    tx.fee = 5;
    tx.payload = Vm::EncodeArgs({0});
    (void)system.SubmitTransaction(tx);
  }
  Transaction release;
  release.kind = TxKind::kContractCall;
  release.sender = User(25);
  release.recipient = escrow;
  release.fee = 5;
  release.nonce = 1;  // Second transaction from this buyer.
  release.payload = Vm::EncodeArgs({1});
  (void)system.SubmitTransaction(release);

  PrintShards(system, "before mining:");

  // Refresh the epoch so miners are spread over the contract shards by
  // the fraction weighting, then merge the small shards the two
  // contracts created.
  (void)system.BeginEpoch(2);
  const IterativeMergeResult plan = system.MergeSmallShards();
  std::printf("\nmerge plan: %zu new shard(s)\n", plan.NumNewShards());
  for (const auto& group : plan.new_shards) {
    std::printf("  merged group of %zu small shards\n", group.size());
  }

  for (int round = 0; round < 6; ++round) {
    for (NodeId m = 0; m < system.MinerCount(); ++m) {
      (void)system.MineBlock(m);
    }
  }
  PrintShards(system, "\nafter mining:");

  // Shard rewards paid to miners of merged small shards (Sec. IV-A1).
  Amount rewards = 0;
  for (NodeId m = 0; m < system.MinerCount(); ++m) {
    rewards += system.ShardRewardOf(m);
  }
  std::printf("\ntotal shard rewards paid: %llu\n",
              static_cast<unsigned long long>(rewards));

  // Outcomes on the authoritative shard ledgers (merged shards alias
  // to one surviving ledger, so deduplicate).
  // detlint:allow(pointer-keyed-order): dedup only; the report walks shard ids.
  std::set<const Ledger*> seen;
  for (ShardId s = 0; s < system.ShardCount(); ++s) {
    const Ledger* ledger = system.ShardLedger(s);
    if (ledger == nullptr || !seen.insert(ledger).second) continue;
    const StateDB& state = ledger->tip_state();
    if (state.BalanceOf(beneficiary) > 0) {
      std::printf("beneficiary received %llu via the charity "
                  "(capped near 250 by the contract condition)\n",
                  static_cast<unsigned long long>(
                      state.BalanceOf(beneficiary)));
    }
    if (state.BalanceOf(seller) > 0) {
      std::printf("seller received %llu from the escrow release\n",
                  static_cast<unsigned long long>(state.BalanceOf(seller)));
    }
  }
  return 0;
}
