// Attack simulation: how the design detects and rejects misbehaviour.
//
//   $ ./example_attack_simulation
//
// Plays out the adversarial scenarios of Sec. III-C and IV-C/D:
//   1. a miner lies about her ShardID in a block header;
//   2. a candidate forges a VRF output to win leader election;
//   3. a miner packs transactions outside her unified assignment;
//   4. the closed-form corruption probabilities for these attacks.

#include <cstdio>

#include "analysis/security.h"
#include "core/miner_assignment.h"
#include "core/unification.h"
#include "crypto/keys.h"
#include "crypto/vrf.h"

using namespace shardchain;

int main() {
  std::printf("== shardchain attack simulation ==\n\n");

  // --- 1. Lying about shard membership -------------------------------
  const Hash256 randomness = Sha256Digest("epoch-randomness");
  const std::vector<double> fractions{40.0, 35.0, 25.0};
  const Hash256 honest_id = Sha256Digest("honest-miner");
  const ShardId real_shard = AssignShard(randomness, honest_id, fractions);
  std::printf("[1] miner derives to shard %u from public data\n", real_shard);
  const ShardId fake_shard = (real_shard + 1) % 3;
  const Status membership =
      VerifyShardMembership(randomness, honest_id, fractions, fake_shard);
  std::printf("    claiming shard %u instead -> %s\n", fake_shard,
              membership.ToString().c_str());

  // --- 2. Forging a VRF to steal leadership ---------------------------
  const Hash256 seed = Sha256Digest("leader-seed");
  KeyPair honest = KeyPair::FromSeed(1);
  KeyPair attacker = KeyPair::FromSeed(666);
  VrfOutput forged = VrfEvaluate(attacker, seed);
  forged.value = Hash256::Zero();  // Claim the minimal (winning) ticket.
  std::vector<LeaderCandidate> candidates{
      {honest.public_key(), VrfEvaluate(honest, seed)},
      {attacker.public_key(), forged},
  };
  const Result<size_t> leader = ElectLeader(candidates, seed);
  std::printf("\n[2] attacker claims VRF ticket 0.0 with a forged proof\n");
  std::printf("    elected leader: candidate %zu (the honest one; the "
              "forged proof failed verification)\n",
              *leader);

  // --- 3. Packing transactions outside the unified assignment ---------
  UnifiedParameters params;
  params.randomness = randomness;
  params.tx_fees = {90, 70, 60, 50, 40, 30, 20, 10};
  params.num_miners = 3;
  params.select_config.capacity = 2;
  const SelectionResult plan = ComputeSelectionPlan(params);
  std::printf("\n[3] unified assignment (every miner derives the same):\n");
  for (size_t m = 0; m < plan.assignment.size(); ++m) {
    std::printf("    miner %zu -> txs {", m);
    for (size_t j : plan.assignment[m]) std::printf(" %zu", j);
    std::printf(" }\n");
  }
  // Miner 2 greedily grabs miner 0's transactions instead.
  const Status cheat = VerifySelection(params, 2, plan.assignment[0]);
  std::printf("    miner 2 packs miner 0's set -> %s\n",
              cheat.ToString().c_str());
  const Status honest_check = VerifySelection(params, 2, plan.assignment[2]);
  std::printf("    miner 2 packs her own set   -> %s\n",
              honest_check.ToString().c_str());

  // --- 4. Why 33% adversaries fail ------------------------------------
  std::printf("\n[4] closed-form corruption probabilities (Sec. IV-D):\n");
  for (double f : {0.25, 0.33}) {
    const double safety = security::ShardSafety(60, f);
    std::printf("    f=%.0f%%: shard(60) safety %.6f, merge corruption "
                "%.2e, selection corruption %.2e\n",
                100 * f, safety, security::MergeCorruptionLimit(f, safety),
                security::SelectionCorruptionLimit(f, 200, 60));
  }
  std::printf("\nAll four attacks are rejected or made negligible without "
              "any cross-shard consensus protocol.\n");
  return 0;
}
