#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/event_queue.h"

namespace shardchain {
namespace {

// --------------------------- EventQueue ---------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleIn(3.0, [&] { order.push_back(3); });
  q.ScheduleIn(1.0, [&] { order.push_back(1); });
  q.ScheduleIn(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleIn(1.0, [&] { order.push_back(1); });
  q.ScheduleIn(1.0, [&] { order.push_back(2); });
  q.ScheduleIn(1.0, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleIn(1.0, [&] {
    ++fired;
    q.ScheduleIn(1.0, [&] { ++fired; });
  });
  q.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.Now(), 2.0);
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.ScheduleIn(1.0, [&] { ++fired; });
  q.ScheduleIn(5.0, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.Now(), 2.0);
  EXPECT_EQ(q.Pending(), 1u);
}

TEST(EventQueueTest, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  EXPECT_TRUE(q.Empty());
}

// ---------------------------- Network -----------------------------------

TEST(NetworkTest, RegisterAndMembers) {
  Network net;
  net.Register(0, 0);
  net.Register(1, 1);
  net.Register(2, 1);
  EXPECT_EQ(net.NodeCount(), 3u);
  EXPECT_EQ(net.ShardOf(2), 1u);
  EXPECT_EQ(net.Members(1), (std::vector<NodeId>{1, 2}));
  // Re-registration moves the node.
  net.Register(2, 0);
  EXPECT_EQ(net.Members(1), (std::vector<NodeId>{1}));
}

TEST(NetworkTest, SendCountsPerKind) {
  Network net;
  net.Register(0, 0);
  net.Register(1, 1);
  net.Send(0, 1, MsgKind::kCrossShardQuery);
  net.Send(0, 1, MsgKind::kCrossShardQuery);
  net.Send(1, 0, MsgKind::kCrossShardVote);
  EXPECT_EQ(net.Count(MsgKind::kCrossShardQuery), 2u);
  EXPECT_EQ(net.Count(MsgKind::kCrossShardVote), 1u);
  EXPECT_EQ(net.Count(MsgKind::kTxGossip), 0u);
}

TEST(NetworkTest, CrossShardOnlyCountsBoundaryCrossings) {
  Network net;
  net.Register(0, 0);
  net.Register(1, 0);
  net.Register(2, 1);
  net.Send(0, 1, MsgKind::kCrossShardVote);  // Intra-shard.
  net.Send(0, 2, MsgKind::kCrossShardVote);  // Cross-shard.
  EXPECT_EQ(net.Count(MsgKind::kCrossShardVote), 2u);
  EXPECT_EQ(net.CrossShardCount(MsgKind::kCrossShardVote), 1u);
}

TEST(NetworkTest, BroadcastReachesEveryoneElse) {
  Network net;
  for (NodeId n = 0; n < 5; ++n) net.Register(n, n % 2);
  net.Broadcast(0, MsgKind::kLeaderBroadcast);
  EXPECT_EQ(net.Count(MsgKind::kLeaderBroadcast), 4u);
}

TEST(NetworkTest, MulticastShardStaysInShard) {
  Network net;
  net.Register(0, 1);
  net.Register(1, 1);
  net.Register(2, 2);
  net.MulticastShard(0, 1, MsgKind::kBlockGossip);
  EXPECT_EQ(net.Count(MsgKind::kBlockGossip), 1u);
  EXPECT_EQ(net.CrossShardCount(MsgKind::kBlockGossip), 0u);
}

TEST(NetworkTest, CoordinationExcludesGossip) {
  Network net;
  net.Register(0, 0);
  net.Register(1, 1);
  net.Send(0, 1, MsgKind::kTxGossip);
  net.Send(0, 1, MsgKind::kBlockGossip);
  EXPECT_EQ(net.CoordinationMessages(), 0u);
  net.Send(0, 1, MsgKind::kLeaderStat);
  net.Send(1, 0, MsgKind::kLeaderBroadcast);
  net.Send(0, 1, MsgKind::kGameGossip);
  EXPECT_EQ(net.CoordinationMessages(), 3u);
  EXPECT_DOUBLE_EQ(net.CommunicationTimesPerShard(2), 1.5);
}

TEST(NetworkTest, ResetCountersClears) {
  Network net;
  net.Register(0, 0);
  net.Register(1, 1);
  net.Send(0, 1, MsgKind::kCrossShardQuery);
  net.ResetCounters();
  EXPECT_EQ(net.Count(MsgKind::kCrossShardQuery), 0u);
  EXPECT_EQ(net.CoordinationMessages(), 0u);
  EXPECT_EQ(net.NodeCount(), 2u);  // Registrations survive.
}

TEST(NetworkTest, MsgKindNamesCovered) {
  EXPECT_STREQ(MsgKindName(MsgKind::kTxGossip), "TxGossip");
  EXPECT_STREQ(MsgKindName(MsgKind::kBlockGossip), "BlockGossip");
  EXPECT_STREQ(MsgKindName(MsgKind::kCrossShardQuery), "CrossShardQuery");
  EXPECT_STREQ(MsgKindName(MsgKind::kCrossShardVote), "CrossShardVote");
  EXPECT_STREQ(MsgKindName(MsgKind::kLeaderStat), "LeaderStat");
  EXPECT_STREQ(MsgKindName(MsgKind::kLeaderBroadcast), "LeaderBroadcast");
  EXPECT_STREQ(MsgKindName(MsgKind::kGameGossip), "GameGossip");
}

}  // namespace
}  // namespace shardchain
