#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "state/trie.h"

namespace shardchain {
namespace {

Bytes B(const std::string& s) { return Bytes(s.begin(), s.end()); }

// Builds "<prefix><n>" without std::string::operator+, which GCC 12
// misanalyzes when fully inlined at -O3 (spurious -Wrestrict /
// -Wstringop-overread, gcc PR 105651) — keeps -Werror builds clean.
Bytes Key(const char* prefix, uint64_t n) {
  std::string s(prefix);
  s += std::to_string(n);
  return B(s);
}

TEST(TrieTest, EmptyTrie) {
  MerklePatriciaTrie trie;
  EXPECT_TRUE(trie.Empty());
  EXPECT_EQ(trie.Size(), 0u);
  EXPECT_TRUE(trie.RootHash().IsZero());
  EXPECT_FALSE(trie.Get(B("missing")).has_value());
}

TEST(TrieTest, SinglePutGet) {
  MerklePatriciaTrie trie;
  trie.Put(B("key"), B("value"));
  EXPECT_EQ(trie.Size(), 1u);
  ASSERT_TRUE(trie.Get(B("key")).has_value());
  EXPECT_EQ(*trie.Get(B("key")), B("value"));
  EXPECT_FALSE(trie.RootHash().IsZero());
}

TEST(TrieTest, OverwriteKeepsSize) {
  MerklePatriciaTrie trie;
  trie.Put(B("key"), B("v1"));
  const Hash256 h1 = trie.RootHash();
  trie.Put(B("key"), B("v2"));
  EXPECT_EQ(trie.Size(), 1u);
  EXPECT_EQ(*trie.Get(B("key")), B("v2"));
  EXPECT_NE(trie.RootHash(), h1);
}

TEST(TrieTest, PrefixKeysCoexist) {
  MerklePatriciaTrie trie;
  trie.Put(B("do"), B("verb"));
  trie.Put(B("dog"), B("animal"));
  trie.Put(B("doge"), B("coin"));
  EXPECT_EQ(trie.Size(), 3u);
  EXPECT_EQ(*trie.Get(B("do")), B("verb"));
  EXPECT_EQ(*trie.Get(B("dog")), B("animal"));
  EXPECT_EQ(*trie.Get(B("doge")), B("coin"));
  EXPECT_FALSE(trie.Get(B("d")).has_value());
  EXPECT_FALSE(trie.Get(B("dogs")).has_value());
}

TEST(TrieTest, DivergentKeys) {
  MerklePatriciaTrie trie;
  trie.Put(B("horse"), B("stallion"));
  trie.Put(B("house"), B("building"));
  EXPECT_EQ(*trie.Get(B("horse")), B("stallion"));
  EXPECT_EQ(*trie.Get(B("house")), B("building"));
}

TEST(TrieTest, RootIsOrderIndependent) {
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 40; ++i) {
    kvs.emplace_back(Key("key-", i),
                     Key("val-", i * 7));
  }
  MerklePatriciaTrie a;
  for (const auto& [k, v] : kvs) a.Put(k, v);
  MerklePatriciaTrie b;
  for (auto it = kvs.rbegin(); it != kvs.rend(); ++it) b.Put(it->first, it->second);
  EXPECT_EQ(a.RootHash(), b.RootHash());
}

TEST(TrieTest, RootChangesWithAnyValue) {
  MerklePatriciaTrie a;
  a.Put(B("k1"), B("x"));
  a.Put(B("k2"), B("y"));
  MerklePatriciaTrie b;
  b.Put(B("k1"), B("x"));
  b.Put(B("k2"), B("z"));
  EXPECT_NE(a.RootHash(), b.RootHash());
}

TEST(TrieTest, DeleteRestoresPriorRoot) {
  MerklePatriciaTrie trie;
  trie.Put(B("alpha"), B("1"));
  trie.Put(B("beta"), B("2"));
  const Hash256 before = trie.RootHash();
  trie.Put(B("gamma"), B("3"));
  EXPECT_NE(trie.RootHash(), before);
  EXPECT_TRUE(trie.Delete(B("gamma")));
  EXPECT_EQ(trie.RootHash(), before);
  EXPECT_EQ(trie.Size(), 2u);
}

TEST(TrieTest, DeleteMissingReturnsFalse) {
  MerklePatriciaTrie trie;
  trie.Put(B("alpha"), B("1"));
  EXPECT_FALSE(trie.Delete(B("beta")));
  EXPECT_FALSE(trie.Delete(B("alphaa")));
  EXPECT_FALSE(trie.Delete(B("alph")));
  EXPECT_EQ(trie.Size(), 1u);
}

TEST(TrieTest, DeleteToEmpty) {
  MerklePatriciaTrie trie;
  trie.Put(B("only"), B("1"));
  EXPECT_TRUE(trie.Delete(B("only")));
  EXPECT_TRUE(trie.Empty());
  EXPECT_TRUE(trie.RootHash().IsZero());
}

TEST(TrieTest, EntriesSortedByKey) {
  MerklePatriciaTrie trie;
  trie.Put(B("zebra"), B("1"));
  trie.Put(B("ant"), B("2"));
  trie.Put(B("mole"), B("3"));
  trie.Put(B("an"), B("4"));
  const auto entries = trie.Entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      entries.begin(), entries.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_EQ(entries[0].first, B("an"));
  EXPECT_EQ(entries[3].first, B("zebra"));
}

TEST(TrieTest, CopyIsDeepAndEqual) {
  MerklePatriciaTrie a;
  a.Put(B("k1"), B("v1"));
  a.Put(B("k2"), B("v2"));
  MerklePatriciaTrie b = a;
  EXPECT_EQ(a.RootHash(), b.RootHash());
  b.Put(B("k3"), B("v3"));
  EXPECT_NE(a.RootHash(), b.RootHash());
  EXPECT_FALSE(a.Get(B("k3")).has_value());
}

// -------------------------- Random fuzzing ------------------------------

class TrieFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieFuzzTest, MatchesStdMapUnderRandomOps) {
  Rng rng(GetParam());
  MerklePatriciaTrie trie;
  std::map<Bytes, Bytes> model;
  for (int op = 0; op < 600; ++op) {
    const uint64_t key_id = rng.UniformInt(64);
    const Bytes key = Key("key-", key_id);
    const uint32_t action = static_cast<uint32_t>(rng.UniformInt(3));
    if (action == 0) {  // Put.
      const Bytes value = Key("v", rng.UniformInt(1000));
      trie.Put(key, value);
      model[key] = value;
    } else if (action == 1) {  // Delete.
      EXPECT_EQ(trie.Delete(key), model.erase(key) > 0);
    } else {  // Get.
      auto it = model.find(key);
      auto got = trie.Get(key);
      EXPECT_EQ(got.has_value(), it != model.end());
      if (got.has_value() && it != model.end()) {
        EXPECT_EQ(*got, it->second);
      }
    }
    EXPECT_EQ(trie.Size(), model.size());
  }
  // Final contents identical and in order.
  const auto entries = trie.Entries();
  ASSERT_EQ(entries.size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ(entries[i].first, k);
    EXPECT_EQ(entries[i].second, v);
    ++i;
  }
}

TEST_P(TrieFuzzTest, RootHashMatchesRebuild) {
  // Root after random inserts+deletes equals the root of a fresh trie
  // holding the surviving entries — history independence.
  Rng rng(GetParam() + 1000);
  MerklePatriciaTrie trie;
  std::map<Bytes, Bytes> model;
  for (int op = 0; op < 300; ++op) {
    const Bytes key = Key("k", rng.UniformInt(48));
    if (rng.Bernoulli(0.7)) {
      const Bytes value = Key("v", rng.UniformInt(100));
      trie.Put(key, value);
      model[key] = value;
    } else {
      trie.Delete(key);
      model.erase(key);
    }
  }
  MerklePatriciaTrie rebuilt;
  for (const auto& [k, v] : model) rebuilt.Put(k, v);
  EXPECT_EQ(trie.RootHash(), rebuilt.RootHash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------- Proofs -----------------------------------

TEST(TrieProofTest, ProvesPresentKeys) {
  MerklePatriciaTrie trie;
  for (int i = 0; i < 30; ++i) {
    trie.Put(Key("acct-", i), Key("bal-", i));
  }
  const Hash256 root = trie.RootHash();
  for (int i = 0; i < 30; ++i) {
    const Bytes key = Key("acct-", i);
    const auto proof = trie.Prove(key);
    auto verified = MerklePatriciaTrie::VerifyProof(root, key, proof);
    ASSERT_TRUE(verified.ok()) << verified.status().ToString();
    ASSERT_TRUE(verified->has_value());
    EXPECT_EQ(**verified, Key("bal-", i));
  }
}

TEST(TrieProofTest, ProvesAbsentKeys) {
  MerklePatriciaTrie trie;
  trie.Put(B("alpha"), B("1"));
  trie.Put(B("beta"), B("2"));
  trie.Put(B("gamma"), B("3"));
  const Hash256 root = trie.RootHash();
  for (const char* missing : {"delta", "alphaa", "alp", "zeta"}) {
    const auto proof = trie.Prove(B(missing));
    auto verified = MerklePatriciaTrie::VerifyProof(root, B(missing), proof);
    ASSERT_TRUE(verified.ok())
        << missing << ": " << verified.status().ToString();
    EXPECT_FALSE(verified->has_value()) << missing;
  }
}

TEST(TrieProofTest, RejectsTamperedProof) {
  MerklePatriciaTrie trie;
  trie.Put(B("key1"), B("value1"));
  trie.Put(B("key2"), B("value2"));
  auto proof = trie.Prove(B("key1"));
  ASSERT_FALSE(proof.empty());
  proof.back().encoded.back() ^= 0x01;
  EXPECT_FALSE(
      MerklePatriciaTrie::VerifyProof(trie.RootHash(), B("key1"), proof).ok());
}

TEST(TrieProofTest, RejectsProofAgainstWrongRoot) {
  MerklePatriciaTrie trie;
  trie.Put(B("key1"), B("value1"));
  const auto proof = trie.Prove(B("key1"));
  Hash256 wrong = trie.RootHash();
  wrong.bytes[0] ^= 0xff;
  EXPECT_FALSE(MerklePatriciaTrie::VerifyProof(wrong, B("key1"), proof).ok());
}

TEST(TrieProofTest, CannotClaimAbsentKeyPresent) {
  // A proof for key A must not verify as a proof for key B.
  MerklePatriciaTrie trie;
  trie.Put(B("aa"), B("1"));
  trie.Put(B("ab"), B("2"));
  const auto proof = trie.Prove(B("aa"));
  auto verified =
      MerklePatriciaTrie::VerifyProof(trie.RootHash(), B("ab"), proof);
  // Either rejected outright or resolves to "absent"/different value —
  // never to key aa's value under key ab... the branch hash walk fails.
  if (verified.ok() && verified->has_value()) {
    EXPECT_NE(**verified, B("1"));
  }
}

TEST(TrieProofTest, EmptyTrieProof) {
  MerklePatriciaTrie trie;
  const auto proof = trie.Prove(B("anything"));
  EXPECT_TRUE(proof.empty());
  auto verified = MerklePatriciaTrie::VerifyProof(Hash256::Zero(),
                                                  B("anything"), proof);
  ASSERT_TRUE(verified.ok());
  EXPECT_FALSE(verified->has_value());
}

// ----------------------- Seeded proof fuzzing ------------------------

Bytes RandomKey(Rng* rng) {
  Bytes key(1 + rng->UniformInt(24));
  for (auto& b : key) b = static_cast<uint8_t>(rng->UniformInt(256));
  return key;
}

TEST(TrieProofFuzzTest, RandomKeysRoundTripPresenceAndAbsence) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(0x70726f6f66ull * seed);
    MerklePatriciaTrie trie;
    std::map<Bytes, Bytes> expected;
    while (expected.size() < 200) {
      const Bytes key = RandomKey(&rng);
      Bytes value(1 + rng.UniformInt(16));
      for (auto& b : value) b = static_cast<uint8_t>(rng.UniformInt(256));
      trie.Put(key, value);
      expected[key] = value;
    }
    const Hash256 root = trie.RootHash();

    // Every inserted key proves present with its exact value.
    for (const auto& [key, value] : expected) {
      const auto proof = trie.Prove(key);
      auto verified = MerklePatriciaTrie::VerifyProof(root, key, proof);
      ASSERT_TRUE(verified.ok())
          << "seed " << seed << ": " << verified.status().ToString();
      ASSERT_TRUE(verified->has_value()) << "seed " << seed;
      EXPECT_EQ(**verified, value) << "seed " << seed;
    }

    // Fresh random keys (re-drawn if they collide) prove absent.
    int absent = 0;
    while (absent < 100) {
      const Bytes key = RandomKey(&rng);
      if (expected.count(key) > 0) continue;
      ++absent;
      const auto proof = trie.Prove(key);
      auto verified = MerklePatriciaTrie::VerifyProof(root, key, proof);
      ASSERT_TRUE(verified.ok())
          << "seed " << seed << ": " << verified.status().ToString();
      EXPECT_FALSE(verified->has_value()) << "seed " << seed;
    }
  }
}

TEST(TrieProofFuzzTest, CorruptedProofsNeverVerifyToOriginalValue) {
  // Flipping any byte of any node, truncating the proof, or dropping an
  // interior node must never leave a proof that still verifies to the
  // honest value. (Some corruptions may verify to "absent" or another
  // value on a disjoint path — that is fine; claiming the original
  // binding from mutated evidence is not.)
  Rng rng(0xc0de);
  MerklePatriciaTrie trie;
  std::vector<Bytes> keys;
  for (int i = 0; i < 64; ++i) {
    const Bytes key = RandomKey(&rng);
    trie.Put(key, Key("val-", i));
    keys.push_back(key);
  }
  const Hash256 root = trie.RootHash();

  auto survives = [&root](const Bytes& key, const MerklePatriciaTrie::Proof& p,
                          const Bytes& honest) {
    auto verified = MerklePatriciaTrie::VerifyProof(root, key, p);
    return verified.ok() && verified->has_value() && **verified == honest;
  };

  int byte_flips = 0;
  for (size_t k = 0; k < keys.size(); k += 7) {
    const Bytes& key = keys[k];
    const auto proof = trie.Prove(key);
    auto verified = MerklePatriciaTrie::VerifyProof(root, key, proof);
    ASSERT_TRUE(verified.ok() && verified->has_value());
    const Bytes honest = **verified;

    // One random byte flipped in every node of the path.
    for (size_t n = 0; n < proof.size(); ++n) {
      auto mutated = proof;
      ASSERT_FALSE(mutated[n].encoded.empty());
      const size_t pos = rng.UniformInt(mutated[n].encoded.size());
      mutated[n].encoded[pos] ^= static_cast<uint8_t>(
          1 + rng.UniformInt(255));
      EXPECT_FALSE(survives(key, mutated, honest))
          << "byte flip in node " << n << " of key " << k << " survived";
      ++byte_flips;
    }

    // Truncated proof: the terminal node (and its value) is missing.
    if (!proof.empty()) {
      auto truncated = proof;
      truncated.pop_back();
      EXPECT_FALSE(survives(key, truncated, honest));
    }

    // An interior node dropped from the middle of the path.
    if (proof.size() >= 3) {
      auto gapped = proof;
      gapped.erase(gapped.begin() + static_cast<long>(gapped.size() / 2));
      EXPECT_FALSE(survives(key, gapped, honest));
    }
  }
  EXPECT_GT(byte_flips, 10) << "fuzz loop degenerated";
}

TEST(TrieProofTest, ProofSizeIsLogarithmic) {
  MerklePatriciaTrie trie;
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Bytes key(8);
    for (auto& b : key) b = static_cast<uint8_t>(rng.UniformInt(256));
    trie.Put(key, B("v"));
  }
  // Any fresh random key's proof touches only the path, far fewer nodes
  // than the entry count.
  Bytes probe(8, 0xab);
  const auto proof = trie.Prove(probe);
  EXPECT_LT(proof.size(), 12u);
}

}  // namespace
}  // namespace shardchain
