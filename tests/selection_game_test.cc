#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/selection_game.h"

namespace shardchain {
namespace {

// --------------------------- Utilities ----------------------------------

TEST(SelectionUtilityTest, MatchesEquationTwo) {
  // U_{i,j} = f_j / (n_j + 1) with n_j competitors.
  EXPECT_DOUBLE_EQ(SelectionUtility(100, 0), 100.0);
  EXPECT_DOUBLE_EQ(SelectionUtility(100, 1), 50.0);
  EXPECT_DOUBLE_EQ(SelectionUtility(100, 3), 25.0);
}

// ------------------------- Greedy baseline -------------------------------

TEST(GreedySelectionTest, AllMinersTakeTheSameTopSet) {
  const std::vector<Amount> fees{5, 50, 20, 40, 10};
  const SelectionResult r = GreedySelection(fees, 4, 3);
  ASSERT_EQ(r.assignment.size(), 4u);
  const std::vector<size_t> expected{1, 2, 3};  // Fees 50, 40, 20.
  for (const auto& set : r.assignment) EXPECT_EQ(set, expected);
  EXPECT_EQ(r.DistinctSets(), 1u);
}

TEST(GreedySelectionTest, CapacityAbovePoolTakesAll) {
  const std::vector<Amount> fees{5, 6};
  const SelectionResult r = GreedySelection(fees, 2, 10);
  EXPECT_EQ(r.assignment[0].size(), 2u);
}

// ------------------------ Round-robin oracle -----------------------------

TEST(RoundRobinTest, DisjointWhenEnoughTxs) {
  std::vector<Amount> fees(40, 1);
  for (size_t i = 0; i < fees.size(); ++i) fees[i] = 100 + i;
  const SelectionResult r = RoundRobinSelection(fees, 4, 10);
  std::set<size_t> seen;
  for (const auto& set : r.assignment) {
    EXPECT_EQ(set.size(), 10u);
    for (size_t j : set) EXPECT_TRUE(seen.insert(j).second);
  }
  EXPECT_EQ(r.DistinctSets(), 4u);
}

TEST(RoundRobinTest, FewerTxsThanMinersLeavesEmptySets) {
  const std::vector<Amount> fees{7, 8};
  const SelectionResult r = RoundRobinSelection(fees, 5, 10);
  size_t nonempty = 0;
  for (const auto& set : r.assignment) {
    if (!set.empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 2u);
}

// ------------------------- Congestion game -------------------------------

TEST(SelectionGameTest, ConvergesOnSmallInstance) {
  Rng rng(1);
  const std::vector<Amount> fees{10, 20, 30, 40, 50, 60};
  const SelectionResult r = RunSelectionGame(fees, 3, {2, 1000}, &rng);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.assignment.size(), 3u);
  for (const auto& set : r.assignment) EXPECT_EQ(set.size(), 2u);
}

TEST(SelectionGameTest, EquilibriumHasNoProfitableDeviation) {
  // Property test of the Nash condition: after convergence, no miner
  // can improve by swapping one selected tx for any unselected one.
  Rng rng(2);
  std::vector<Amount> fees;
  Rng fee_rng(3);
  for (int i = 0; i < 30; ++i) fees.push_back(fee_rng.UniformRange(1, 100));
  const size_t kMiners = 6;
  const size_t kCap = 4;
  const SelectionResult r = RunSelectionGame(fees, kMiners, {kCap, 1000}, &rng);
  ASSERT_TRUE(r.converged);

  const std::vector<uint32_t> counts = r.SelectionCounts(fees.size());
  for (size_t i = 0; i < kMiners; ++i) {
    const auto& mine = r.assignment[i];
    std::set<size_t> mine_set(mine.begin(), mine.end());
    for (size_t held : mine) {
      const double held_share =
          SelectionUtility(fees[held], counts[held] - 1);
      for (size_t alt = 0; alt < fees.size(); ++alt) {
        if (mine_set.count(alt) > 0) continue;
        const double alt_share = SelectionUtility(fees[alt], counts[alt]);
        EXPECT_LE(alt_share, held_share + 1e-9)
            << "miner " << i << " should swap tx " << held << " for " << alt;
      }
    }
  }
}

TEST(SelectionGameTest, MinersSpreadAcrossEqualFees) {
  // With equal fees and capacity 1, the equilibrium spreads miners out:
  // no transaction attracts two miners while another is free.
  Rng rng(4);
  const std::vector<Amount> fees(10, 50);
  const SelectionResult r = RunSelectionGame(fees, 10, {1, 1000}, &rng);
  ASSERT_TRUE(r.converged);
  const auto counts = r.SelectionCounts(fees.size());
  const uint32_t max_count = *std::max_element(counts.begin(), counts.end());
  const uint32_t min_count = *std::min_element(counts.begin(), counts.end());
  EXPECT_LE(max_count - min_count, 1u);
}

TEST(SelectionGameTest, DominantFeeAttractsEveryone) {
  // Paper Sec. VI-E2: "there is a transaction set with much higher
  // transaction fees than others, where the equilibrium is that
  // everyone chooses that transaction set."
  Rng rng(5);
  const std::vector<Amount> fees{1000000, 1, 1, 1};
  const SelectionResult r = RunSelectionGame(fees, 3, {1, 1000}, &rng);
  ASSERT_TRUE(r.converged);
  for (const auto& set : r.assignment) {
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set[0], 0u);
  }
  EXPECT_EQ(r.DistinctSets(), 1u);
}

TEST(SelectionGameTest, GameBeatsGreedyDiversity) {
  Rng rng(6);
  std::vector<Amount> fees;
  Rng fee_rng(7);
  for (int i = 0; i < 100; ++i) fees.push_back(fee_rng.Binomial(200, 0.5) + 1);
  const SelectionResult game = RunSelectionGame(fees, 9, {10, 1000}, &rng);
  const SelectionResult greedy = GreedySelection(fees, 9, 10);
  EXPECT_GT(game.DistinctSets(), greedy.DistinctSets());
}

TEST(SelectionGameTest, DeterministicGivenSeed) {
  // Parameter unification (Sec. IV-C): identical inputs -> identical
  // outputs on every miner.
  std::vector<Amount> fees;
  Rng fee_rng(8);
  for (int i = 0; i < 40; ++i) fees.push_back(fee_rng.UniformRange(1, 99));
  Rng rng1(42);
  Rng rng2(42);
  const SelectionResult a = RunSelectionGame(fees, 5, {4, 1000}, &rng1);
  const SelectionResult b = RunSelectionGame(fees, 5, {4, 1000}, &rng2);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(SelectionGameTest, EmptyInputsAreHandled) {
  Rng rng(9);
  const SelectionResult none = RunSelectionGame({}, 3, {2, 10}, &rng);
  EXPECT_TRUE(none.converged);
  EXPECT_EQ(none.DistinctSets(), 0u);
  const SelectionResult no_miners = RunSelectionGame({1, 2}, 0, {2, 10}, &rng);
  EXPECT_TRUE(no_miners.converged);
  EXPECT_TRUE(no_miners.assignment.empty());
}

TEST(SelectionGameTest, SelectionCountsMatchAssignment) {
  Rng rng(10);
  const std::vector<Amount> fees{9, 8, 7, 6};
  const SelectionResult r = RunSelectionGame(fees, 2, {2, 100}, &rng);
  const auto counts = r.SelectionCounts(4);
  uint32_t total = 0;
  for (uint32_t c : counts) total += c;
  EXPECT_EQ(total, 4u);  // 2 miners x capacity 2.
}

class SelectionScaleTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SelectionScaleTest, ConvergesAndCoversCapacity) {
  const auto [miners, txs] = GetParam();
  Rng rng(11);
  std::vector<Amount> fees;
  Rng fee_rng(12);
  for (size_t i = 0; i < txs; ++i) {
    fees.push_back(fee_rng.UniformRange(1, 1000));
  }
  const SelectionResult r = RunSelectionGame(fees, miners, {10, 2000}, &rng);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.assignment.size(), miners);
  const size_t expected = std::min<size_t>(10, txs);
  for (const auto& set : r.assignment) EXPECT_EQ(set.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SelectionScaleTest,
    ::testing::Values(std::make_tuple(1, 5), std::make_tuple(2, 20),
                      std::make_tuple(5, 50), std::make_tuple(9, 200),
                      std::make_tuple(20, 100)));

}  // namespace
}  // namespace shardchain
