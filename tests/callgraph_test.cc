#include <gtest/gtest.h>

#include "contract/callgraph.h"
#include "core/shard_formation.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Transaction Call(const Address& sender, const Address& contract) {
  Transaction tx;
  tx.kind = TxKind::kContractCall;
  tx.sender = sender;
  tx.recipient = contract;
  return tx;
}

Transaction Direct(const Address& sender, const Address& to) {
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  tx.sender = sender;
  tx.recipient = to;
  return tx;
}

// --------------------------- CallGraph ---------------------------------

TEST(CallGraphTest, FreshUserHasNoHistory) {
  CallGraph g;
  EXPECT_EQ(g.Classify(Addr(1)), SenderClass::kNoHistory);
  EXPECT_FALSE(g.SingleContractOf(Addr(1)).has_value());
}

TEST(CallGraphTest, SingleContractUser) {
  // Fig. 1(a): user A only invokes contract 1.
  CallGraph g;
  g.Record(Call(Addr(1), Addr(0x10)));
  EXPECT_EQ(g.Classify(Addr(1)), SenderClass::kSingleContract);
  ASSERT_TRUE(g.SingleContractOf(Addr(1)).has_value());
  EXPECT_EQ(*g.SingleContractOf(Addr(1)), Addr(0x10));
}

TEST(CallGraphTest, RepeatCallsStaySingleContract) {
  CallGraph g;
  g.Record(Call(Addr(1), Addr(0x10)));
  g.Record(Call(Addr(1), Addr(0x10)));
  g.Record(Call(Addr(1), Addr(0x10)));
  EXPECT_EQ(g.Classify(Addr(1)), SenderClass::kSingleContract);
}

TEST(CallGraphTest, MultiContractUser) {
  // Fig. 1(b): user C invokes contracts 2 and 3.
  CallGraph g;
  g.Record(Call(Addr(1), Addr(0x10)));
  g.Record(Call(Addr(1), Addr(0x11)));
  EXPECT_EQ(g.Classify(Addr(1)), SenderClass::kMultiContract);
  EXPECT_FALSE(g.SingleContractOf(Addr(1)).has_value());
  EXPECT_EQ(g.ContractsOf(Addr(1)).size(), 2u);
}

TEST(CallGraphTest, DirectTransferDominates) {
  // Fig. 1(c): user F calls a contract AND sends a direct transfer.
  CallGraph g;
  g.Record(Call(Addr(1), Addr(0x10)));
  g.Record(Direct(Addr(1), Addr(2)));
  EXPECT_EQ(g.Classify(Addr(1)), SenderClass::kDirect);
  // Direct status is permanent, further contract calls don't undo it.
  g.Record(Call(Addr(1), Addr(0x10)));
  EXPECT_EQ(g.Classify(Addr(1)), SenderClass::kDirect);
}

TEST(CallGraphTest, DeployDoesNotChangeClass) {
  CallGraph g;
  Transaction tx;
  tx.kind = TxKind::kContractDeploy;
  tx.sender = Addr(1);
  g.Record(tx);
  EXPECT_EQ(g.Classify(Addr(1)), SenderClass::kNoHistory);
}

TEST(CallGraphTest, ClassifyWithAnticipatesTransaction) {
  CallGraph g;
  // A fresh contract call makes the sender single-contract.
  EXPECT_EQ(g.ClassifyWith(Addr(1), Call(Addr(1), Addr(0x10))),
            SenderClass::kSingleContract);
  g.Record(Call(Addr(1), Addr(0x10)));
  // Same contract again: still single.
  EXPECT_EQ(g.ClassifyWith(Addr(1), Call(Addr(1), Addr(0x10))),
            SenderClass::kSingleContract);
  // A different contract would tip her into multi-contract.
  EXPECT_EQ(g.ClassifyWith(Addr(1), Call(Addr(1), Addr(0x11))),
            SenderClass::kMultiContract);
  // A direct transfer would tip her into direct.
  EXPECT_EQ(g.ClassifyWith(Addr(1), Direct(Addr(1), Addr(2))),
            SenderClass::kDirect);
}

TEST(CallGraphTest, ShardableOnlyForCleanSingleContractCalls) {
  CallGraph g;
  Address contract;
  EXPECT_TRUE(g.IsShardable(Call(Addr(1), Addr(0x10)), &contract));
  EXPECT_EQ(contract, Addr(0x10));

  // Direct transfers are never shardable.
  EXPECT_FALSE(g.IsShardable(Direct(Addr(1), Addr(2)), nullptr));

  // Multi-input calls are never shardable.
  Transaction multi = Call(Addr(1), Addr(0x10));
  multi.input_accounts.push_back(Addr(9));
  EXPECT_FALSE(g.IsShardable(multi, nullptr));

  // A second contract breaks shardability.
  g.Record(Call(Addr(1), Addr(0x10)));
  EXPECT_FALSE(g.IsShardable(Call(Addr(1), Addr(0x11)), nullptr));
}

TEST(CallGraphTest, SenderClassNames) {
  EXPECT_STREQ(SenderClassName(SenderClass::kNoHistory), "NoHistory");
  EXPECT_STREQ(SenderClassName(SenderClass::kSingleContract),
               "SingleContract");
  EXPECT_STREQ(SenderClassName(SenderClass::kMultiContract), "MultiContract");
  EXPECT_STREQ(SenderClassName(SenderClass::kDirect), "Direct");
}

// ------------------------- ShardFormation -------------------------------

TEST(ShardFormationTest, StartsWithOnlyMaxShard) {
  ShardFormation f;
  EXPECT_EQ(f.ShardCount(), 1u);
  EXPECT_EQ(f.ShardSizes(), std::vector<uint64_t>{0});
}

TEST(ShardFormationTest, ContractCallsFormShards) {
  ShardFormation f;
  EXPECT_EQ(f.Route(Call(Addr(1), Addr(0x10))), 1u);
  EXPECT_EQ(f.Route(Call(Addr(2), Addr(0x11))), 2u);
  // Another user of contract 0x10 lands in the same shard.
  EXPECT_EQ(f.Route(Call(Addr(3), Addr(0x10))), 1u);
  EXPECT_EQ(f.ShardCount(), 3u);
  EXPECT_EQ(f.ShardSizes(), (std::vector<uint64_t>{0, 2, 1}));
}

TEST(ShardFormationTest, DirectTransfersGoToMaxShard) {
  ShardFormation f;
  EXPECT_EQ(f.Route(Direct(Addr(1), Addr(2))), kMaxShardId);
  EXPECT_EQ(f.ShardSizes()[kMaxShardId], 1u);
}

TEST(ShardFormationTest, MultiContractSendersFallToMaxShard) {
  ShardFormation f;
  EXPECT_EQ(f.Route(Call(Addr(1), Addr(0x10))), 1u);
  // Second contract: the sender is now multi-contract -> MaxShard.
  EXPECT_EQ(f.Route(Call(Addr(1), Addr(0x11))), kMaxShardId);
}

TEST(ShardFormationTest, PeekDoesNotMutate) {
  ShardFormation f;
  EXPECT_EQ(f.Peek(Call(Addr(1), Addr(0x10))), 1u);
  EXPECT_EQ(f.ShardCount(), 1u);  // Nothing recorded.
  f.Route(Call(Addr(1), Addr(0x10)));
  EXPECT_EQ(f.Peek(Call(Addr(2), Addr(0x10))), 1u);
}

TEST(ShardFormationTest, ContractShardLookups) {
  ShardFormation f;
  f.Route(Call(Addr(1), Addr(0x10)));
  ASSERT_TRUE(f.ShardOfContract(Addr(0x10)).has_value());
  EXPECT_EQ(*f.ShardOfContract(Addr(0x10)), 1u);
  ASSERT_TRUE(f.ContractOfShard(1).has_value());
  EXPECT_EQ(*f.ContractOfShard(1), Addr(0x10));
  EXPECT_FALSE(f.ContractOfShard(kMaxShardId).has_value());
  EXPECT_FALSE(f.ContractOfShard(99).has_value());
  EXPECT_FALSE(f.ShardOfContract(Addr(0x33)).has_value());
}

TEST(ShardFormationTest, FractionsSumToHundred) {
  ShardFormation f;
  for (int i = 0; i < 6; ++i) {
    f.Route(Call(Addr(static_cast<uint8_t>(i + 1)), Addr(0x10)));
  }
  for (int i = 0; i < 4; ++i) {
    f.Route(Call(Addr(static_cast<uint8_t>(i + 10)), Addr(0x11)));
  }
  const auto fr = f.Fractions();
  double total = 0.0;
  for (double x : fr) total += x;
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_NEAR(fr[1], 60.0, 1e-9);
  EXPECT_NEAR(fr[2], 40.0, 1e-9);
}

TEST(ShardFormationTest, EmptyFractionsAreUniform) {
  ShardFormation f;
  const auto fr = f.Fractions();
  ASSERT_EQ(fr.size(), 1u);
  EXPECT_NEAR(fr[0], 100.0, 1e-9);
}

TEST(ShardFormationTest, DeterministicAcrossMiners) {
  // Two miners processing the same transaction stream derive identical
  // routings — the "no communication" property of Sec. III.
  ShardFormation a;
  ShardFormation b;
  std::vector<Transaction> stream;
  for (uint8_t i = 1; i < 30; ++i) {
    stream.push_back(Call(Addr(i), Addr(0x10 + i % 3)));
  }
  stream.push_back(Direct(Addr(1), Addr(2)));
  for (const auto& tx : stream) {
    EXPECT_EQ(a.Route(tx), b.Route(tx));
  }
  EXPECT_EQ(a.ShardSizes(), b.ShardSizes());
}

}  // namespace
}  // namespace shardchain
