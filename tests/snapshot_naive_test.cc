#include <gtest/gtest.h>

#include "chain/snapshot.h"
#include "common/rng.h"
#include "contract/callgraph.h"
#include "contract/naive_classifier.h"
#include "contract/registry.h"
#include "sim/workload.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

// --------------------------- State snapshots ------------------------------

StateDB RichState() {
  StateDB state;
  state.Mint(Addr(1), 1000);
  state.Mint(Addr(2), 5);
  state.GetOrCreate(Addr(2)).nonce = 7;
  Result<Address> contract = ContractRegistry::Deploy(
      &state, Addr(3), contracts::Escrow(Addr(4)));
  EXPECT_TRUE(contract.ok());
  state.StorageSet(*contract, 0, 42);
  state.StorageSet(*contract, 9, -5);
  return state;
}

TEST(SnapshotTest, RoundTripPreservesRootAndContents) {
  const StateDB state = RichState();
  const Hash256 root = state.StateRoot();
  const Bytes wire = snapshot::Serialize(state);
  Result<StateDB> restored = snapshot::Deserialize(wire, root);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->StateRoot(), root);
  EXPECT_EQ(restored->BalanceOf(Addr(1)), 1000u);
  EXPECT_EQ(restored->NonceOf(Addr(2)), 7u);
  EXPECT_EQ(restored->AccountCount(), state.AccountCount());
}

TEST(SnapshotTest, EmptyStateRoundTrips) {
  StateDB empty;
  Result<StateDB> restored =
      snapshot::Deserialize(snapshot::Serialize(empty), empty.StateRoot());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->AccountCount(), 0u);
}

TEST(SnapshotTest, RootMismatchRejected) {
  const StateDB state = RichState();
  Hash256 wrong = state.StateRoot();
  wrong.bytes[0] ^= 1;
  EXPECT_TRUE(snapshot::Deserialize(snapshot::Serialize(state), wrong)
                  .status()
                  .IsCorruption());
}

TEST(SnapshotTest, TamperedBytesRejected) {
  const StateDB state = RichState();
  const Hash256 root = state.StateRoot();
  Bytes wire = snapshot::Serialize(state);
  // Flip a balance byte: structure still parses, root check catches it.
  wire[8 + 20 + 3] ^= 0x01;
  EXPECT_FALSE(snapshot::Deserialize(wire, root).ok());
}

TEST(SnapshotTest, TruncationRejectedCleanly) {
  const StateDB state = RichState();
  const Bytes wire = snapshot::Serialize(state);
  for (size_t cut = 0; cut < wire.size(); cut += 11) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(snapshot::Deserialize(prefix, Hash256::Zero()).ok());
  }
}

TEST(SnapshotTest, GarbageNeverCrashes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    Bytes junk(rng.UniformInt(200));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.UniformInt(256));
    (void)snapshot::Deserialize(junk, Hash256::Zero());
  }
  SUCCEED();
}

TEST(SnapshotTest, SizeMatchesSerialization) {
  const StateDB state = RichState();
  EXPECT_EQ(snapshot::SizeOf(state), snapshot::Serialize(state).size());
}

// ------------------------- Naive classifier -------------------------------

TEST(NaiveClassifierTest, AgreesWithCallGraphOnRandomStreams) {
  Rng rng(2);
  WorkloadConfig wl;
  wl.num_transactions = 400;
  wl.num_contracts = 6;
  wl.maxshard_fraction = 0.3;
  const Workload w = GenerateWorkload(wl, &rng);

  CallGraph graph;
  NaiveHistoryClassifier naive;
  for (const Transaction& tx : w.transactions) {
    // Both classifiers must agree on every incoming transaction BEFORE
    // recording it (the miner's admission decision).
    Address g_contract, n_contract;
    EXPECT_EQ(graph.IsShardable(tx, &g_contract),
              naive.IsShardable(tx, &n_contract));
    EXPECT_EQ(graph.Classify(tx.sender), naive.Classify(tx.sender));
    graph.Record(tx);
    naive.Record(tx);
  }
  EXPECT_EQ(naive.HistorySize(), 400u);
}

TEST(NaiveClassifierTest, MatchesKnownClasses) {
  NaiveHistoryClassifier naive;
  Transaction call;
  call.kind = TxKind::kContractCall;
  call.sender = Addr(1);
  call.recipient = Addr(0x10);
  naive.Record(call);
  EXPECT_EQ(naive.Classify(Addr(1)), SenderClass::kSingleContract);

  call.recipient = Addr(0x11);
  naive.Record(call);
  EXPECT_EQ(naive.Classify(Addr(1)), SenderClass::kMultiContract);

  Transaction direct;
  direct.kind = TxKind::kDirectTransfer;
  direct.sender = Addr(2);
  direct.recipient = Addr(3);
  naive.Record(direct);
  EXPECT_EQ(naive.Classify(Addr(2)), SenderClass::kDirect);
  EXPECT_EQ(naive.Classify(Addr(9)), SenderClass::kNoHistory);
}

}  // namespace
}  // namespace shardchain
