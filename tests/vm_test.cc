#include <string>

#include <gtest/gtest.h>

#include "contract/assembler.h"
#include "contract/registry.h"
#include "contract/vm.h"
#include "state/statedb.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Bytes MustAssemble(const std::string& src) {
  Result<Bytes> code = Assemble(src);
  EXPECT_TRUE(code.ok()) << code.status().ToString();
  return code.ok() ? *code : Bytes{};
}

/// Runs `src` with no parties, default context, returning the receipt.
Result<ExecReceipt> RunSrc(const std::string& src,
                        std::vector<int64_t> args = {},
                        Amount call_value = 0, StateDB* state = nullptr) {
  ContractProgram program;
  program.code = MustAssemble(src);
  CallContext ctx;
  ctx.contract = Addr(0xcc);
  ctx.caller = Addr(0xaa);
  ctx.args = std::move(args);
  ctx.call_value = call_value;
  StateDB local;
  StateDB* db = state != nullptr ? state : &local;
  if (call_value > 0) db->Mint(ctx.caller, call_value);
  return Vm::Execute(program, ctx, db);
}

int64_t TopOf(const Result<ExecReceipt>& r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->stack.empty());
  return r->stack.back();
}

// --------------------------- Arithmetic --------------------------------

TEST(VmTest, PushAdd) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 2\nPUSH 3\nADD\nSTOP")), 5);
}

TEST(VmTest, SubIsOrdered) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 10\nPUSH 3\nSUB\nSTOP")), 7);
}

TEST(VmTest, MulDivMod) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 6\nPUSH 7\nMUL\nSTOP")), 42);
  EXPECT_EQ(TopOf(RunSrc("PUSH 17\nPUSH 5\nDIV\nSTOP")), 3);
  EXPECT_EQ(TopOf(RunSrc("PUSH 17\nPUSH 5\nMOD\nSTOP")), 2);
}

TEST(VmTest, NegativeImmediates) {
  EXPECT_EQ(TopOf(RunSrc("PUSH -5\nPUSH 3\nADD\nSTOP")), -2);
}

TEST(VmTest, DivisionByZeroReverts) {
  EXPECT_TRUE(RunSrc("PUSH 1\nPUSH 0\nDIV\nSTOP").status().IsFailedPrecondition());
  EXPECT_TRUE(RunSrc("PUSH 1\nPUSH 0\nMOD\nSTOP").status().IsFailedPrecondition());
}

// -------------------------- Comparisons --------------------------------

TEST(VmTest, ComparisonOps) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 2\nPUSH 3\nLT\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 3\nPUSH 2\nGT\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 3\nPUSH 3\nLE\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 3\nPUSH 3\nGE\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 3\nPUSH 3\nEQ\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 3\nPUSH 4\nNEQ\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 3\nPUSH 2\nLT\nSTOP")), 0);
}

TEST(VmTest, BooleanOps) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 1\nPUSH 0\nAND\nSTOP")), 0);
  EXPECT_EQ(TopOf(RunSrc("PUSH 1\nPUSH 0\nOR\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 0\nNOT\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 7\nNOT\nSTOP")), 0);
}

// --------------------------- Stack ops ---------------------------------

TEST(VmTest, DupSwapPop) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 5\nDUP\nADD\nSTOP")), 10);
  EXPECT_EQ(TopOf(RunSrc("PUSH 1\nPUSH 2\nSWAP\nSUB\nSTOP")), 1);
  EXPECT_EQ(TopOf(RunSrc("PUSH 9\nPUSH 8\nPOP\nSTOP")), 9);
}

TEST(VmTest, StackUnderflowIsCorruption) {
  EXPECT_TRUE(RunSrc("ADD\nSTOP").status().IsCorruption());
  EXPECT_TRUE(RunSrc("POP\nSTOP").status().IsCorruption());
  EXPECT_TRUE(RunSrc("DUP\nSTOP").status().IsCorruption());
}

// --------------------------- Control flow ------------------------------

TEST(VmTest, JumpSkipsCode) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 1\nJUMP end\nPUSH 99\nend:\nSTOP")), 1);
}

TEST(VmTest, JumpITakenAndNotTaken) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 7\nPUSH 1\nJUMPI end\nPOP\nPUSH 8\nend:\nSTOP")),
            7);
  EXPECT_EQ(TopOf(RunSrc("PUSH 7\nPUSH 0\nJUMPI end\nPOP\nPUSH 8\nend:\nSTOP")),
            8);
}

TEST(VmTest, RequirePassesNonZero) {
  EXPECT_TRUE(RunSrc("PUSH 1\nREQUIRE\nSTOP").ok());
}

TEST(VmTest, RequireFailsZero) {
  EXPECT_TRUE(RunSrc("PUSH 0\nREQUIRE\nSTOP").status().IsFailedPrecondition());
}

TEST(VmTest, RevertAborts) {
  EXPECT_TRUE(RunSrc("REVERT").status().IsFailedPrecondition());
}

TEST(VmTest, ImplicitStopAtCodeEnd) {
  EXPECT_EQ(TopOf(RunSrc("PUSH 4")), 4);
}

TEST(VmTest, InfiniteLoopHitsGasLimit) {
  const auto r = RunSrc("loop:\nJUMP loop");
  EXPECT_TRUE(r.status().IsInternal());
}

// ----------------------------- Args ------------------------------------

TEST(VmTest, ArgsAreReadable) {
  EXPECT_EQ(TopOf(RunSrc("ARG 0\nARG 1\nADD\nSTOP", {30, 12})), 42);
}

TEST(VmTest, OutOfRangeArgFails) {
  EXPECT_TRUE(RunSrc("ARG 2\nSTOP", {1, 2}).status().IsOutOfRange());
}

TEST(VmTest, CallValueReadable) {
  EXPECT_EQ(TopOf(RunSrc("CALLVALUE\nSTOP", {}, 55)), 55);
}

// --------------------------- State ops ---------------------------------

TEST(VmTest, CallValueMovesToContract) {
  StateDB db;
  const auto r = RunSrc("STOP", {}, 70, &db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(db.BalanceOf(Addr(0xcc)), 70u);
  EXPECT_EQ(db.BalanceOf(Addr(0xaa)), 0u);
}

TEST(VmTest, RevertRollsBackCallValue) {
  StateDB db;
  const auto r = RunSrc("REVERT", {}, 70, &db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(db.BalanceOf(Addr(0xcc)), 0u);
  EXPECT_EQ(db.BalanceOf(Addr(0xaa)), 70u);
}

TEST(VmTest, StorageRoundTrip) {
  StateDB db;
  ASSERT_TRUE(RunSrc("PUSH 123\nPUSH 9\nSSTORE\nSTOP", {}, 0, &db).ok());
  EXPECT_EQ(db.StorageGet(Addr(0xcc), 9), 123);
  EXPECT_EQ(TopOf(RunSrc("PUSH 9\nSLOAD\nSTOP", {}, 0, &db)), 123);
}

TEST(VmTest, SelfAndCallerBalance) {
  StateDB db;
  db.Mint(Addr(0xcc), 500);
  db.Mint(Addr(0xaa), 300);
  EXPECT_EQ(TopOf(RunSrc("SELFBALANCE\nSTOP", {}, 0, &db)), 500);
  EXPECT_EQ(TopOf(RunSrc("CALLERBALANCE\nSTOP", {}, 0, &db)), 300);
}

TEST(VmTest, TransferToPartyAndCaller) {
  StateDB db;
  ContractProgram program;
  program.parties = {Addr(0xbb)};
  program.code = MustAssemble(
      "PUSH 30\nPUSH 0\nTRANSFER\n"     // 30 to party 0
      "PUSH 20\nTRANSFERCALLER\nSTOP"); // 20 back to caller
  db.Mint(Addr(0xcc), 100);
  CallContext ctx;
  ctx.contract = Addr(0xcc);
  ctx.caller = Addr(0xaa);
  ASSERT_TRUE(Vm::Execute(program, ctx, &db).ok());
  EXPECT_EQ(db.BalanceOf(Addr(0xbb)), 30u);
  EXPECT_EQ(db.BalanceOf(Addr(0xaa)), 20u);
  EXPECT_EQ(db.BalanceOf(Addr(0xcc)), 50u);
}

TEST(VmTest, TransferBeyondBalanceReverts) {
  StateDB db;
  ContractProgram program;
  program.parties = {Addr(0xbb)};
  program.code = MustAssemble("PUSH 10\nPUSH 0\nTRANSFER\nSTOP");
  CallContext ctx;
  ctx.contract = Addr(0xcc);
  ctx.caller = Addr(0xaa);
  EXPECT_TRUE(Vm::Execute(program, ctx, &db).status().IsFailedPrecondition());
}

TEST(VmTest, GasAccumulates) {
  const auto r = RunSrc("PUSH 1\nPUSH 2\nADD\nSTOP");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->gas_used, 4 * Vm::kGasPerOp);
}

TEST(VmTest, OutOfGasRollsBack) {
  StateDB db;
  ContractProgram program;
  program.code = MustAssemble("PUSH 1\nPUSH 2\nSSTORE\nloop:\nJUMP loop");
  CallContext ctx;
  ctx.contract = Addr(0xcc);
  ctx.caller = Addr(0xaa);
  ctx.gas_limit = 1000;
  EXPECT_TRUE(Vm::Execute(program, ctx, &db).status().IsInternal());
  EXPECT_EQ(db.StorageGet(Addr(0xcc), 2), 0);
}

// ------------------------ Args encode/decode ----------------------------

TEST(VmTest, ArgsRoundTrip) {
  const std::vector<int64_t> args{1, -2, 3000000000LL};
  Result<std::vector<int64_t>> back = Vm::DecodeArgs(Vm::EncodeArgs(args));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, args);
}

TEST(VmTest, DecodeArgsRejectsRaggedPayload) {
  EXPECT_TRUE(Vm::DecodeArgs({1, 2, 3}).status().IsInvalidArgument());
}

// --------------------------- Assembler ---------------------------------

TEST(AssemblerTest, CommentsAndBlanksIgnored) {
  const Bytes code = MustAssemble("; header\n\nPUSH 1 ; trailing\n\nSTOP\n");
  EXPECT_EQ(code.size(), 10u);  // PUSH imm8 + STOP.
}

TEST(AssemblerTest, UnknownMnemonicRejected) {
  EXPECT_TRUE(Assemble("FROBNICATE").status().IsInvalidArgument());
}

TEST(AssemblerTest, UndefinedLabelRejected) {
  EXPECT_TRUE(Assemble("JUMP nowhere").status().IsInvalidArgument());
}

TEST(AssemblerTest, DuplicateLabelRejected) {
  EXPECT_TRUE(Assemble("a:\na:\nSTOP").status().IsInvalidArgument());
}

TEST(AssemblerTest, MissingImmediateRejected) {
  EXPECT_TRUE(Assemble("PUSH").status().IsInvalidArgument());
}

TEST(AssemblerTest, BadIndexRejected) {
  EXPECT_TRUE(Assemble("ARG 300").status().IsInvalidArgument());
  EXPECT_TRUE(Assemble("ARG -1").status().IsInvalidArgument());
}

TEST(AssemblerTest, UnexpectedOperandRejected) {
  EXPECT_TRUE(Assemble("STOP 5").status().IsInvalidArgument());
}

TEST(AssemblerTest, CaseInsensitiveMnemonics) {
  EXPECT_TRUE(Assemble("push 1\nstop").ok());
}

TEST(AssemblerTest, DisassembleRoundTrip) {
  const std::string src =
      "PUSH 42\nARG 0\nADD\nPUSH 0\nSSTORE\nJUMP end\nPUSH 1\nend:\nSTOP\n";
  const Bytes code = MustAssemble(src);
  Result<std::string> text = Disassemble(code);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("PUSH 42"), std::string::npos);
  EXPECT_NE(text->find("SSTORE"), std::string::npos);
  EXPECT_NE(text->find("JUMP"), std::string::npos);
}

TEST(AssemblerTest, DisassembleRejectsGarbage) {
  EXPECT_TRUE(Disassemble({0xfe}).status().IsCorruption());
}

// ------------------------ Contract templates ----------------------------

TEST(RegistryTest, DeployAndCallUnconditionalTransfer) {
  StateDB db;
  const Address creator = Addr(1);
  const Address dest = Addr(2);
  Result<Address> contract = ContractRegistry::Deploy(
      &db, creator, contracts::UnconditionalTransfer(dest));
  ASSERT_TRUE(contract.ok());
  EXPECT_TRUE(db.IsContract(*contract));

  db.Mint(Addr(3), 100);
  Transaction tx;
  tx.kind = TxKind::kContractCall;
  tx.sender = Addr(3);
  tx.recipient = *contract;
  tx.value = 60;
  ASSERT_TRUE(ContractRegistry::Call(&db, tx).ok());
  EXPECT_EQ(db.BalanceOf(dest), 60u);
  EXPECT_EQ(db.BalanceOf(Addr(3)), 40u);
}

TEST(RegistryTest, ConditionalTransferRespectsThreshold) {
  StateDB db;
  const Address recipient = Addr(2);
  Result<Address> contract = ContractRegistry::Deploy(
      &db, Addr(1), contracts::ConditionalTransfer(recipient, 50));
  ASSERT_TRUE(contract.ok());

  db.Mint(Addr(3), 200);
  Transaction tx;
  tx.kind = TxKind::kContractCall;
  tx.sender = Addr(3);
  tx.recipient = *contract;
  tx.value = 30;
  // recipient balance 0 < 50: transfer goes through.
  ASSERT_TRUE(ContractRegistry::Call(&db, tx).ok());
  EXPECT_EQ(db.BalanceOf(recipient), 30u);

  // Push recipient above the threshold; next call must revert and
  // leave the caller's funds untouched.
  db.Mint(recipient, 100);
  const Amount caller_before = db.BalanceOf(Addr(3));
  EXPECT_FALSE(ContractRegistry::Call(&db, tx).ok());
  EXPECT_EQ(db.BalanceOf(Addr(3)), caller_before);
}

TEST(RegistryTest, EscrowDepositAndRelease) {
  StateDB db;
  const Address beneficiary = Addr(9);
  Result<Address> contract =
      ContractRegistry::Deploy(&db, Addr(1), contracts::Escrow(beneficiary));
  ASSERT_TRUE(contract.ok());

  db.Mint(Addr(3), 100);
  Transaction deposit;
  deposit.kind = TxKind::kContractCall;
  deposit.sender = Addr(3);
  deposit.recipient = *contract;
  deposit.value = 40;
  deposit.payload = Vm::EncodeArgs({0});
  ASSERT_TRUE(ContractRegistry::Call(&db, deposit).ok());
  ASSERT_TRUE(ContractRegistry::Call(&db, deposit).ok());
  EXPECT_EQ(db.StorageGet(*contract, 0), 80);

  Transaction release;
  release.kind = TxKind::kContractCall;
  release.sender = Addr(3);
  release.recipient = *contract;
  release.payload = Vm::EncodeArgs({1});
  ASSERT_TRUE(ContractRegistry::Call(&db, release).ok());
  EXPECT_EQ(db.BalanceOf(beneficiary), 80u);
  EXPECT_EQ(db.StorageGet(*contract, 0), 0);
}

TEST(RegistryTest, CallOnNonContractFails) {
  StateDB db;
  Transaction tx;
  tx.kind = TxKind::kContractCall;
  tx.sender = Addr(1);
  tx.recipient = Addr(2);
  EXPECT_TRUE(ContractRegistry::Call(&db, tx).status().IsNotFound());
}

TEST(RegistryTest, CallRejectsWrongKind) {
  StateDB db;
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  EXPECT_TRUE(ContractRegistry::Call(&db, tx).status().IsInvalidArgument());
}

TEST(RegistryTest, DeployBumpsCreatorNonce) {
  StateDB db;
  const Address creator = Addr(1);
  Result<Address> c1 = ContractRegistry::Deploy(
      &db, creator, contracts::UnconditionalTransfer(Addr(2)));
  Result<Address> c2 = ContractRegistry::Deploy(
      &db, creator, contracts::UnconditionalTransfer(Addr(2)));
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
  EXPECT_EQ(db.NonceOf(creator), 2u);
}

TEST(ProgramTest, SerializeDeserializeRoundTrip) {
  ContractProgram program;
  program.parties = {Addr(1), Addr(2), Addr(3)};
  program.code = MustAssemble("PUSH 1\nSTOP");
  Result<ContractProgram> back =
      ContractProgram::Deserialize(program.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->parties, program.parties);
  EXPECT_EQ(back->code, program.code);
}

TEST(ProgramTest, DeserializeRejectsTruncation) {
  ContractProgram program;
  program.parties = {Addr(1)};
  program.code = MustAssemble("STOP");
  Bytes raw = program.Serialize();
  raw.resize(raw.size() - 1);
  EXPECT_TRUE(ContractProgram::Deserialize(raw).status().IsCorruption());
  EXPECT_TRUE(ContractProgram::Deserialize({0x01}).status().IsCorruption());
}

}  // namespace
}  // namespace shardchain
