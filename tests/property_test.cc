// Property-based tests: randomized sweeps over the VM, the ledger, and
// the simulators, checking invariants rather than fixed outputs.

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "chain/ledger.h"
#include "common/rng.h"
#include "contract/registry.h"
#include "contract/vm.h"
#include "core/merging_game.h"
#include "core/selection_game.h"
#include "sim/mining_sim.h"
#include "sim/workload.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Amount TotalBalance(const StateDB& state) {
  Amount total = 0;
  for (const Address& addr : state.Addresses()) {
    total += state.BalanceOf(addr);
  }
  return total;
}

// ----------------------------- VM fuzzing --------------------------------

class VmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmFuzzTest, RandomBytecodeNeverCrashesAndConservesValue) {
  // Random byte soup through the interpreter: every outcome must be a
  // clean Status, execution must terminate (gas/step bounded), and the
  // total coin supply must be exactly conserved whether the program
  // commits or reverts.
  Rng rng(GetParam());
  for (int trial = 0; trial < 120; ++trial) {
    ContractProgram program;
    const size_t len = 1 + rng.UniformInt(64);
    program.code.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      program.code.push_back(static_cast<uint8_t>(rng.UniformInt(256)));
    }
    const size_t parties = rng.UniformInt(3);
    for (size_t p = 0; p < parties; ++p) {
      program.parties.push_back(Addr(static_cast<uint8_t>(0x50 + p)));
    }

    StateDB state;
    state.Mint(Addr(1), 10000);
    state.Mint(Addr(0xcc), 500);  // Contract has funds to move around.
    const Amount supply_before = TotalBalance(state);

    CallContext ctx;
    ctx.contract = Addr(0xcc);
    ctx.caller = Addr(1);
    ctx.call_value = rng.UniformInt(100);
    ctx.gas_limit = 5000;
    const size_t nargs = rng.UniformInt(3);
    for (size_t a = 0; a < nargs; ++a) {
      ctx.args.push_back(static_cast<int64_t>(rng.UniformInt(1000)));
    }

    const Result<ExecReceipt> result = Vm::Execute(program, ctx, &state);
    (void)result;  // Any status is fine; what matters are the invariants.
    EXPECT_EQ(TotalBalance(state), supply_before)
        << "trial " << trial << " violated coin conservation";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --------------------------- Ledger invariants ---------------------------

class LedgerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LedgerPropertyTest, RandomTrafficConservesSupplyModuloRewards) {
  Rng rng(GetParam());
  StateDB genesis;
  std::vector<Address> users;
  for (uint8_t u = 1; u <= 10; ++u) {
    users.push_back(Addr(u));
    genesis.Mint(Addr(u), 10000);
  }
  Result<Address> contract = ContractRegistry::Deploy(
      &genesis, Addr(99), contracts::UnconditionalTransfer(Addr(0xee)));
  ASSERT_TRUE(contract.ok());
  const Amount genesis_supply = TotalBalance(genesis);

  ChainConfig config;
  config.block_reward = 1000;
  config.max_txs_per_block = 5;
  Ledger ledger(1, genesis, config);

  std::map<Address, uint64_t> nonces;
  size_t blocks_appended = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<Transaction> txs;
    const size_t batch = 1 + rng.UniformInt(5);
    for (size_t t = 0; t < batch; ++t) {
      const Address sender = users[rng.UniformInt(users.size())];
      Transaction tx;
      tx.sender = sender;
      tx.nonce = nonces[sender];
      tx.fee = 1 + rng.UniformInt(20);
      if (rng.Bernoulli(0.5)) {
        tx.kind = TxKind::kDirectTransfer;
        tx.recipient = users[rng.UniformInt(users.size())];
        tx.value = rng.UniformInt(50);
      } else {
        tx.kind = TxKind::kContractCall;
        tx.recipient = *contract;
        tx.value = rng.UniformInt(50);
      }
      txs.push_back(tx);
    }
    Result<Block> built =
        ledger.BuildBlock(Addr(0xaa), txs, static_cast<uint64_t>(round + 1));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Block block = *std::move(built);
    // Track nonces of what actually got in.
    for (const Transaction& tx : block.transactions) {
      nonces[tx.sender] = tx.nonce + 1;
    }
    Result<Hash256> appended = ledger.Append(block);
    ASSERT_TRUE(appended.ok()) << appended.status().ToString();
    ++blocks_appended;
  }

  // Conservation: final supply == genesis + block rewards minted.
  const Amount expected =
      genesis_supply + blocks_appended * config.block_reward;
  EXPECT_EQ(TotalBalance(ledger.tip_state()), expected);
  // Chain bookkeeping consistent.
  EXPECT_EQ(ledger.CanonicalLength(), blocks_appended + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerPropertyTest,
                         ::testing::Values(7, 8, 9, 10));

// ------------------------- Simulator invariants --------------------------

class MiningSimPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiningSimPropertyTest, AccountingAlwaysBalances) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const size_t shards = 1 + rng.UniformInt(6);
    std::vector<ShardSpec> specs;
    size_t injected = 0;
    for (size_t s = 0; s < shards; ++s) {
      ShardSpec spec;
      spec.id = static_cast<ShardId>(s);
      spec.num_miners = 1 + rng.UniformInt(5);
      const size_t txs = rng.UniformInt(60);
      spec.tx_fees.assign(txs, 1 + rng.UniformInt(100));
      injected += txs;
      specs.push_back(std::move(spec));
    }
    MiningSimConfig config;
    config.policy = static_cast<SelectionPolicy>(rng.UniformInt(4));
    config.window_seconds = rng.Bernoulli(0.5) ? 600.0 : 0.0;
    Rng run_rng = rng.Fork();
    const SimResult r = RunMiningSim(specs, config, &run_rng);

    // Every injected transaction confirms exactly once.
    EXPECT_EQ(r.TotalTxsConfirmed(), injected);
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(r.shards[s].txs_confirmed, r.shards[s].txs_injected);
      // completion_time is positive iff the shard had work.
      EXPECT_EQ(r.shards[s].completion_time > 0.0,
                r.shards[s].txs_injected > 0);
    }
    // Blocks split exactly into useful + empty; wasted are extra.
    size_t nonempty = 0;
    for (const auto& s : r.shards) {
      nonempty += s.blocks_committed - s.empty_blocks;
    }
    EXPECT_GE(injected, nonempty);  // Each useful block holds >= 1 tx.
    // Makespan is the max shard completion.
    double max_completion = 0.0;
    for (const auto& s : r.shards) {
      max_completion = std::max(max_completion, s.completion_time);
    }
    EXPECT_DOUBLE_EQ(r.makespan, max_completion);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiningSimPropertyTest,
                         ::testing::Values(100, 200, 300, 400));

TEST(MiningSimPropertyTest, DeterministicGivenSeed) {
  std::vector<ShardSpec> specs{{0, 3, std::vector<Amount>(47, 5), {}, 0.0},
                               {1, 2, std::vector<Amount>(31, 9), {}, 0.0}};
  MiningSimConfig config;
  config.policy = SelectionPolicy::kCongestionGame;
  Rng r1(77);
  Rng r2(77);
  const SimResult a = RunMiningSim(specs, config, &r1);
  const SimResult b = RunMiningSim(specs, config, &r2);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.TotalBlocks(), b.TotalBlocks());
  EXPECT_EQ(a.TotalWastedBlocks(), b.TotalWastedBlocks());
}

// ------------------------ Game-level invariants ---------------------------

class GamePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GamePropertyTest, SelectionAssignmentsAreWellFormed) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const size_t txs = 1 + rng.UniformInt(80);
    const size_t miners = 1 + rng.UniformInt(12);
    std::vector<Amount> fees;
    for (size_t i = 0; i < txs; ++i) fees.push_back(1 + rng.UniformInt(200));
    SelectionGameConfig config;
    config.capacity = 1 + rng.UniformInt(10);
    Rng game_rng = rng.Fork();
    const SelectionResult r = RunSelectionGame(fees, miners, config, &game_rng);
    ASSERT_EQ(r.assignment.size(), miners);
    const size_t expected = std::min(config.capacity, txs);
    for (const auto& set : r.assignment) {
      EXPECT_EQ(set.size(), expected);
      // Sorted, unique, in range.
      for (size_t k = 0; k < set.size(); ++k) {
        EXPECT_LT(set[k], txs);
        if (k > 0) {
          EXPECT_LT(set[k - 1], set[k]);
        }
      }
    }
    const auto counts = r.SelectionCounts(txs);
    uint32_t total = 0;
    for (uint32_t c : counts) total += c;
    EXPECT_EQ(total, miners * expected);
  }
}

TEST_P(GamePropertyTest, MergePlansPartitionTheInput) {
  Rng rng(GetParam() + 5000);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t n = 2 + rng.UniformInt(30);
    std::vector<uint64_t> sizes;
    for (size_t i = 0; i < n; ++i) {
      sizes.push_back(1 + rng.UniformInt(9));
    }
    MergingGameConfig config;
    config.min_shard_size = 5 + rng.UniformInt(30);
    config.subslots = 8;
    config.max_slots = 60;
    Rng game_rng = rng.Fork();
    const IterativeMergeResult plan =
        RunIterativeMerge(sizes, config, &game_rng);
    std::vector<bool> seen(n, false);
    for (const auto& group : plan.new_shards) {
      uint64_t total = 0;
      for (size_t i : group) {
        ASSERT_LT(i, n);
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
        total += sizes[i];
      }
      EXPECT_GE(total, config.min_shard_size);
      EXPECT_GE(group.size(), 2u);
    }
    for (size_t i : plan.leftover) {
      ASSERT_LT(i, n);
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
  }
}

/// Utility of `set` for a miner whose own picks are already inside
/// `counts` (Eq. 2: the competitor count excludes the miner herself).
double OwnUtility(const std::vector<Amount>& fees,
                  const std::vector<uint32_t>& counts,
                  const std::vector<size_t>& set) {
  double u = 0.0;
  for (size_t j : set) u += SelectionUtility(fees[j], counts[j] - 1);
  return u;
}

/// The best utility ANY deviation could reach against fixed opponents:
/// since per-transaction payoffs are independent, it is the sum of the
/// top-`capacity` utilities under the opponent-only counts.
double BestDeviationUtility(const std::vector<Amount>& fees,
                            const std::vector<uint32_t>& counts_wo_self,
                            size_t capacity) {
  std::vector<double> u;
  u.reserve(fees.size());
  for (size_t j = 0; j < fees.size(); ++j) {
    u.push_back(SelectionUtility(fees[j], counts_wo_self[j]));
  }
  std::sort(u.begin(), u.end(), std::greater<double>());
  const size_t take = std::min(capacity, u.size());
  return std::accumulate(u.begin(), u.begin() + static_cast<ptrdiff_t>(take),
                         0.0);
}

TEST_P(GamePropertyTest, ConvergedSelectionIsPureNashEquilibrium) {
  // Algorithm 2's fixed point: no miner can strictly improve by
  // switching to ANY other transaction set (unilateral deviation).
  Rng rng(GetParam() + 9000);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t txs = 1 + rng.UniformInt(60);
    const size_t miners = 1 + rng.UniformInt(10);
    std::vector<Amount> fees;
    for (size_t i = 0; i < txs; ++i) fees.push_back(1 + rng.UniformInt(150));
    SelectionGameConfig config;
    config.capacity = 1 + rng.UniformInt(8);
    Rng game_rng = rng.Fork();
    const SelectionResult r = RunSelectionGame(fees, miners, config, &game_rng);
    ASSERT_TRUE(r.converged);
    const std::vector<uint32_t> counts = r.SelectionCounts(txs);
    for (size_t i = 0; i < miners; ++i) {
      const double current = OwnUtility(fees, counts, r.assignment[i]);
      std::vector<uint32_t> wo_self = counts;
      for (size_t j : r.assignment[i]) --wo_self[j];
      const double best = BestDeviationUtility(fees, wo_self, config.capacity);
      EXPECT_LE(best, current + 1e-9)
          << "miner " << i << " profits by deviating (trial " << trial << ")";
    }
  }
}

TEST_P(GamePropertyTest, SelectionEquilibriumInvariantUnderMinerRelabeling) {
  // Miners are exchangeable: permuting who holds which equilibrium set
  // changes nothing consensus-visible — the selection counts are
  // identical and the permuted profile is still a Nash equilibrium.
  Rng rng(GetParam() + 11000);
  const size_t txs = 40, miners = 8;
  std::vector<Amount> fees;
  for (size_t i = 0; i < txs; ++i) fees.push_back(1 + rng.UniformInt(99));
  SelectionGameConfig config;
  config.capacity = 5;
  Rng game_rng = rng.Fork();
  const SelectionResult r = RunSelectionGame(fees, miners, config, &game_rng);
  ASSERT_TRUE(r.converged);

  SelectionResult relabeled = r;
  Rng perm_rng(GetParam());
  perm_rng.Shuffle(&relabeled.assignment);
  EXPECT_EQ(relabeled.SelectionCounts(txs), r.SelectionCounts(txs));
  const std::vector<uint32_t> counts = relabeled.SelectionCounts(txs);
  for (size_t i = 0; i < miners; ++i) {
    const double current = OwnUtility(fees, counts, relabeled.assignment[i]);
    std::vector<uint32_t> wo_self = counts;
    for (size_t j : relabeled.assignment[i]) --wo_self[j];
    EXPECT_LE(BestDeviationUtility(fees, wo_self, config.capacity),
              current + 1e-9)
        << "relabeled miner " << i << " profits by deviating";
  }
}

TEST_P(GamePropertyTest, IterativeMergeLeavesNoProfitableMergeBehind) {
  // Algorithm 1 must run the small shards down: when it stops, the
  // leftovers can no longer form a new shard — either fewer than two
  // remain or their combined size is below L. (Sizes here are generous
  // relative to L, so the bounded-retry escape hatch never triggers.)
  Rng rng(GetParam() + 13000);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t n = 4 + rng.UniformInt(12);
    MergingGameConfig config;
    config.min_shard_size = 20;
    config.subslots = 16;
    config.max_slots = 80;
    std::vector<uint64_t> sizes;
    for (size_t i = 0; i < n; ++i) {
      sizes.push_back(8 + rng.UniformInt(12));  // Any pair reaches L=20.
    }
    Rng game_rng = rng.Fork();
    const IterativeMergeResult plan =
        RunIterativeMerge(sizes, config, &game_rng);
    uint64_t leftover_total = 0;
    for (size_t i : plan.leftover) leftover_total += sizes[i];
    EXPECT_TRUE(plan.leftover.size() < 2 ||
                leftover_total < config.min_shard_size)
        << "profitable merge left behind: " << plan.leftover.size()
        << " leftover shards totalling " << leftover_total << " (trial "
        << trial << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GamePropertyTest,
                         ::testing::Values(501, 502, 503, 504, 505));

}  // namespace
}  // namespace shardchain
