// Cross-validation: the closed-form round-model predictions must agree
// exactly with the simulator in the deterministic regimes.

#include <gtest/gtest.h>

#include "analysis/throughput_model.h"
#include "common/rng.h"
#include "sim/mining_sim.h"

namespace shardchain {
namespace {

ShardSpec Spec(ShardId id, size_t miners, size_t txs) {
  ShardSpec spec;
  spec.id = id;
  spec.num_miners = miners;
  spec.tx_fees.assign(txs, 10);
  return spec;
}

model::RoundModelParams Params(double calibration = 1.0) {
  model::RoundModelParams p;
  p.round_seconds = 60.0;
  p.txs_per_block = 10;
  p.calibration_power = calibration;
  return p;
}

MiningSimConfig SimConfig(double calibration = 1.0) {
  MiningSimConfig config;
  config.round_seconds = 60.0;
  config.txs_per_block = 10;
  config.calibration_power = calibration;
  return config;
}

TEST(ThroughputModelTest, GreedyFormulaBasics) {
  const auto p = Params();
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(200, 9, p), 1200.0);
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(1, 1, p), 60.0);
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(11, 1, p), 120.0);
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(0, 5, p), 0.0);
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(5, 0, p), 0.0);
}

TEST(ThroughputModelTest, CalibrationSlowdown) {
  const auto p = Params(4.0);
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(20, 2, p), 240.0);
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(20, 4, p), 120.0);
  EXPECT_DOUBLE_EQ(model::GreedyConfirmationTime(20, 8, p), 120.0);
}

TEST(ThroughputModelTest, DisjointFormula) {
  const auto p = Params();
  EXPECT_DOUBLE_EQ(model::DisjointConfirmationTime(200, 9, p), 180.0);
  EXPECT_DOUBLE_EQ(model::DisjointConfirmationTime(200, 1, p), 1200.0);
}

class ModelVsSimTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ModelVsSimTest, GreedySimMatchesFormulaExactly) {
  const auto [miners, txs] = GetParam();
  Rng rng(miners * 1000 + txs);
  const SimResult sim =
      RunMiningSim({Spec(0, miners, txs)}, SimConfig(), &rng);
  EXPECT_DOUBLE_EQ(sim.makespan,
                   model::GreedyConfirmationTime(txs, miners, Params()));
}

TEST_P(ModelVsSimTest, RoundRobinSimMatchesDisjointFormula) {
  const auto [miners, txs] = GetParam();
  MiningSimConfig config = SimConfig();
  config.policy = SelectionPolicy::kRoundRobin;
  Rng rng(miners * 2000 + txs);
  const SimResult sim = RunMiningSim({Spec(0, miners, txs)}, config, &rng);
  EXPECT_DOUBLE_EQ(sim.makespan,
                   model::DisjointConfirmationTime(txs, miners, Params()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSimTest,
    ::testing::Values(std::make_tuple(1, 20), std::make_tuple(2, 55),
                      std::make_tuple(4, 100), std::make_tuple(9, 200),
                      std::make_tuple(3, 7)));

TEST(ThroughputModelTest, ShardedMakespanMatchesSim) {
  std::vector<ShardSpec> specs{Spec(0, 1, 22), Spec(1, 1, 35),
                               Spec(2, 1, 9)};
  Rng rng(5);
  const SimResult sim = RunMiningSim(specs, SimConfig(), &rng);
  EXPECT_DOUBLE_EQ(sim.makespan,
                   model::ShardedMakespan({22, 35, 9}, {1, 1, 1}, Params()));
}

TEST(ThroughputModelTest, ImprovementPrediction) {
  // The paper's even 9-shard split: 1200 s vs 180 s -> 6.67x.
  const std::vector<size_t> txs(9, 22);
  const std::vector<size_t> miners(9, 1);
  EXPECT_NEAR(model::PredictedImprovement(txs, miners, 9, Params()), 6.6,
              0.2);
}

TEST(ThroughputModelTest, EmptyBlockPredictionMatchesSim) {
  MiningSimConfig config = SimConfig();
  config.window_seconds = 600.0;
  Rng rng(6);
  const SimResult sim = RunMiningSim({Spec(0, 1, 5)}, config, &rng);
  EXPECT_EQ(sim.TotalEmptyBlocks(),
            model::PredictedEmptyBlocks(5, 1, 600.0, Params()));
  EXPECT_EQ(model::PredictedEmptyBlocks(5, 1, 60.0, Params()), 0u);
  EXPECT_EQ(model::PredictedEmptyBlocks(100, 1, 600.0, Params()), 0u);
}

}  // namespace
}  // namespace shardchain
