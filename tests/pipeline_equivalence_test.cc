// Pipelined-vs-serial block production equivalence (ctest label:
// parallel, runs under the TSan CI leg): BlockPipeline must emit
// byte-identical block encodings, state roots, and residual pool
// contents to the serial select → build → append → remove loop, across
// exec-pool thread counts {1, 2, 4, 8}, commit-queue depths {1, 2, 4},
// and seeded workloads with fee ties, nonce chains, and invalid
// candidates. Also units for the AsyncWorker pipelining primitive
// (FIFO order, backpressure, error poisoning) and the crypto
// VerifyBatch thread-count invariance (DESIGN.md §14).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chain/ledger.h"
#include "chain/pipeline.h"
#include "common/rng.h"
#include "core/sharding_system.h"
#include "crypto/keys.h"
#include "parallel/async_worker.h"
#include "parallel/thread_pool.h"
#include "txpool/txpool.h"
#include "types/codec.h"

namespace shardchain {
namespace {

const size_t kThreadCounts[] = {1, 2, 4, 8};
const size_t kQueueDepths[] = {1, 2, 4};
constexpr uint64_t kNumSeeds = 10;

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Address RngAddr(Rng* rng) {
  Address a;
  for (auto& b : a.bytes) b = static_cast<uint8_t>(rng->Next());
  return a;
}

Bytes Concat(const std::vector<Transaction>& txs) {
  Bytes out;
  for (const Transaction& tx : txs) {
    const Bytes enc = tx.Encode();
    out.insert(out.end(), enc.begin(), enc.end());
  }
  return out;
}

// ------------------------- AsyncWorker units -----------------------------

TEST(AsyncWorkerTest, RunsTasksInSubmissionOrder) {
  std::vector<int> seen;
  {
    AsyncWorker worker(/*max_queued=*/4);
    for (int i = 0; i < 100; ++i) {
      worker.Submit([i, out = &seen] { out->push_back(i); });
    }
    worker.WaitIdle();
  }
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i);
}

TEST(AsyncWorkerTest, BoundedQueueAppliesBackpressure) {
  AsyncWorker worker(/*max_queued=*/1);
  for (int i = 0; i < 8; ++i) {
    worker.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); });
    // Submit returns only once the queue has room: at most one task
    // waiting plus one in flight, however fast the producer runs.
    EXPECT_LE(worker.Pending(), 2u);
  }
  worker.WaitIdle();
  EXPECT_EQ(worker.Pending(), 0u);
}

TEST(AsyncWorkerTest, ErrorPoisonsQueueAndRethrowsAtWaitIdle) {
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  AsyncWorker worker(/*max_queued=*/4);
  // Hold the worker busy so the next two tasks are definitely queued
  // together when the thrower poisons the queue.
  worker.Submit([g = &gate] {
    while (!g->load()) std::this_thread::yield();
  });
  worker.Submit([] { throw std::runtime_error("stage failed"); });
  worker.Submit([r = &ran] { r->fetch_add(1); });
  gate.store(true);
  EXPECT_THROW(worker.WaitIdle(), std::runtime_error);
  // The task queued behind the failure was dropped, not run on state
  // the failed stage left behind.
  EXPECT_EQ(ran.load(), 0);
  // The error is consumed; the worker is reusable afterwards.
  worker.Submit([r = &ran] { r->fetch_add(1); });
  worker.WaitIdle();
  EXPECT_EQ(ran.load(), 1);
}

// -------------------- crypto VerifyBatch invariance ----------------------

TEST(VerifyBatchTest, ThreadCountInvariantAndPerElement) {
  std::vector<KeyPair> keys;
  std::vector<Hash256> digests;
  std::vector<Signature> sigs;
  for (int i = 0; i < 13; ++i) {
    keys.push_back(KeyPair::FromSeed(300 + i));
    Sha256 h;
    h.Update("msg");
    h.Update(std::string(1, static_cast<char>('a' + i)));
    digests.push_back(h.Finalize());
    sigs.push_back(keys[i].Sign(digests[i]));
  }
  // Forge two signatures at fixed positions.
  sigs[4].preimages[17].bytes[3] ^= 0x40;
  sigs[9].preimages[0].bytes[0] ^= 0x01;

  std::vector<const PublicKey*> pks;
  std::vector<const Hash256*> digest_ptrs;
  std::vector<const Signature*> sig_ptrs;
  for (int i = 0; i < 13; ++i) {
    pks.push_back(&keys[i].public_key());
    digest_ptrs.push_back(&digests[i]);
    sig_ptrs.push_back(&sigs[i]);
  }

  const std::vector<uint8_t> serial =
      VerifyBatch(pks, digest_ptrs, sig_ptrs, nullptr);
  ASSERT_EQ(serial.size(), 13u);
  for (int i = 0; i < 13; ++i) {
    EXPECT_EQ(serial[i], (i == 4 || i == 9) ? 0 : 1) << "index " << i;
  }
  for (size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_EQ(VerifyBatch(pks, digest_ptrs, sig_ptrs, &pool), serial)
        << "threads " << threads;
  }
}

// ----------------- pipelined vs serial block production ------------------

/// A seeded workload: funded senders with nonce chains and fee ties,
/// plus invalid candidates (unfunded senders, out-of-order nonces) that
/// must be skipped identically by both paths.
struct Scenario {
  StateDB genesis;
  std::vector<Transaction> txs;
  ChainConfig config;
};

Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed * 6151 + 3);
  Scenario s;
  s.config.max_txs_per_block = 8;
  std::vector<Address> senders;
  for (int i = 0; i < 24; ++i) {
    senders.push_back(RngAddr(&rng));
    s.genesis.Mint(senders.back(), 100'000);
  }
  for (const Address& sender : senders) {
    const uint64_t chain_len = 1 + rng.UniformInt(3);
    for (uint64_t nonce = 0; nonce < chain_len; ++nonce) {
      Transaction tx;
      tx.kind = TxKind::kDirectTransfer;
      tx.sender = sender;
      tx.recipient = senders[rng.UniformInt(senders.size())];
      tx.value = 1 + rng.UniformInt(500);
      tx.fee = 1 + rng.UniformInt(6);  // Heavy fee ties.
      tx.nonce = nonce;
      s.txs.push_back(tx);
    }
  }
  // Invalid candidates: unfunded strangers and hopeless nonces.
  for (int i = 0; i < 6; ++i) {
    Transaction tx;
    tx.kind = TxKind::kDirectTransfer;
    tx.sender = rng.Bernoulli(0.5) ? RngAddr(&rng)
                                   : senders[rng.UniformInt(senders.size())];
    tx.recipient = RngAddr(&rng);
    tx.value = 10;
    tx.fee = 1 + rng.UniformInt(6);
    tx.nonce = 40 + rng.UniformInt(5);
    s.txs.push_back(tx);
  }
  // Shuffle arrivals.
  for (size_t i = s.txs.size(); i > 1; --i) {
    std::swap(s.txs[i - 1], s.txs[rng.UniformInt(i)]);
  }
  return s;
}

struct Outcome {
  std::vector<Bytes> blocks;  ///< codec-encoded, height order.
  Hash256 root;               ///< Tip state root.
  Bytes residual_pool;        ///< Unconfirmed remainder, fee order.
};

constexpr size_t kBlocksToMine = 8;
const Address kMiner = Addr(0xaa);

Outcome MineSerial(const Scenario& s, ThreadPool* exec_pool) {
  Ledger ledger(/*shard_id=*/3, s.genesis, s.config);
  ledger.SetExecPool(exec_pool);
  TxPool pool(/*capacity=*/1 << 20, /*chunk_capacity=*/16);
  for (const Transaction& tx : s.txs) (void)pool.Add(tx);
  Outcome out;
  for (size_t b = 0; b < kBlocksToMine; ++b) {
    std::vector<Transaction> cands = pool.TopByFee(s.config.max_txs_per_block);
    Result<Block> built = ledger.BuildBlock(
        kMiner, std::move(cands),
        static_cast<uint64_t>(ledger.tip_number() + 1));
    EXPECT_TRUE(built.ok()) << built.status().message();
    EXPECT_TRUE(ledger.Append(*built).ok());
    pool.RemoveAll(built->transactions);
    out.blocks.push_back(codec::EncodeBlock(*built));
  }
  out.root = ledger.tip_state().StateRoot();
  out.residual_pool = Concat(pool.All());
  return out;
}

Outcome MinePipelined(const Scenario& s, size_t queue_depth) {
  Ledger ledger(/*shard_id=*/3, s.genesis, s.config);
  TxPool pool(/*capacity=*/1 << 20, /*chunk_capacity=*/16);
  for (const Transaction& tx : s.txs) (void)pool.Add(tx);
  BlockPipeline pipeline(&ledger, &pool, PipelineConfig{queue_depth});
  Result<PipelineResult> produced = pipeline.Run(kMiner, kBlocksToMine);
  EXPECT_TRUE(produced.ok()) << produced.status().message();
  Outcome out;
  for (const Hash256& hash : produced->hashes) {
    const Block* block = ledger.Find(hash);
    EXPECT_NE(block, nullptr);
    out.blocks.push_back(codec::EncodeBlock(*block));
  }
  out.root = ledger.tip_state().StateRoot();
  out.residual_pool = Concat(pool.All());
  return out;
}

TEST(PipelineEquivalenceTest, BlockBytesMatchSerialAcrossThreadsAndDepths) {
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    const Scenario s = MakeScenario(seed);
    const Outcome reference = MineSerial(s, /*exec_pool=*/nullptr);
    ASSERT_EQ(reference.blocks.size(), kBlocksToMine);

    // The serial loop itself must be exec-pool invariant (PR 8)...
    for (size_t threads : kThreadCounts) {
      ThreadPool exec_pool(threads);
      const Outcome with_pool = MineSerial(s, &exec_pool);
      ASSERT_EQ(with_pool.blocks, reference.blocks)
          << "seed " << seed << " threads " << threads;
      ASSERT_EQ(with_pool.root, reference.root);
      ASSERT_EQ(with_pool.residual_pool, reference.residual_pool);
    }
    // ...and the pipeline must match it at every commit-queue depth.
    for (size_t depth : kQueueDepths) {
      const Outcome pipelined = MinePipelined(s, depth);
      ASSERT_EQ(pipelined.blocks, reference.blocks)
          << "seed " << seed << " depth " << depth;
      ASSERT_EQ(pipelined.root, reference.root)
          << "seed " << seed << " depth " << depth;
      ASSERT_EQ(pipelined.residual_pool, reference.residual_pool)
          << "seed " << seed << " depth " << depth;
    }
  }
}

// Draining a backlog over MANY more blocks than the candidate supply:
// trailing empty blocks, pool exhaustion, and failed-candidate
// retention must all round-trip identically.
TEST(PipelineEquivalenceTest, DrainsBacklogIdenticallyIncludingEmptyBlocks) {
  const Scenario s = MakeScenario(99);
  Ledger serial_ledger(3, s.genesis, s.config);
  TxPool serial_pool(1 << 20, 16);
  Ledger piped_ledger(3, s.genesis, s.config);
  TxPool piped_pool(1 << 20, 16);
  for (const Transaction& tx : s.txs) {
    (void)serial_pool.Add(tx);
    (void)piped_pool.Add(tx);
  }
  constexpr size_t kRounds = 20;  // Far beyond the backlog.
  std::vector<Hash256> serial_hashes;
  for (size_t b = 0; b < kRounds; ++b) {
    std::vector<Transaction> cands =
        serial_pool.TopByFee(s.config.max_txs_per_block);
    Result<Block> built = serial_ledger.BuildBlock(
        kMiner, std::move(cands),
        static_cast<uint64_t>(serial_ledger.tip_number() + 1));
    ASSERT_TRUE(built.ok());
    Result<Hash256> appended = serial_ledger.Append(*built);
    ASSERT_TRUE(appended.ok());
    serial_hashes.push_back(*appended);
    serial_pool.RemoveAll(built->transactions);
  }
  BlockPipeline pipeline(&piped_ledger, &piped_pool);
  Result<PipelineResult> produced = pipeline.Run(kMiner, kRounds);
  ASSERT_TRUE(produced.ok()) << produced.status().message();
  EXPECT_EQ(produced->hashes, serial_hashes);
  EXPECT_EQ(piped_ledger.tip_hash(), serial_ledger.tip_hash());
  EXPECT_EQ(piped_ledger.CanonicalEmptyBlocks(),
            serial_ledger.CanonicalEmptyBlocks());
  EXPECT_EQ(Concat(piped_pool.All()), Concat(serial_pool.All()));
}

// ------------------- system-level pipelined mining -----------------------

ShardingSystemConfig SystemConfig(size_t threads) {
  ShardingSystemConfig config;
  config.chain.max_txs_per_block = 8;
  config.parallel = ParallelConfig{threads};
  return config;
}

TEST(PipelineEquivalenceTest, MineBlocksPipelinedMatchesMineBlockLoop) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ShardingSystem serial_sys(SystemConfig(1), /*seed=*/77);
    ShardingSystem piped_sys(SystemConfig(threads), /*seed=*/77);
    for (int i = 0; i < 4; ++i) {
      serial_sys.AddMiner();
      piped_sys.AddMiner();
    }
    Rng rng(505);
    std::vector<Transaction> txs;
    for (int i = 0; i < 40; ++i) {
      const Address sender = RngAddr(&rng);
      serial_sys.Mint(sender, 50'000);
      piped_sys.Mint(sender, 50'000);
      Transaction tx;
      tx.kind = TxKind::kDirectTransfer;
      tx.sender = sender;
      tx.recipient = Addr(static_cast<uint8_t>(rng.UniformInt(5)));
      tx.value = 1 + rng.UniformInt(100);
      tx.fee = 1 + rng.UniformInt(5);
      tx.nonce = 0;
      txs.push_back(tx);
    }
    ASSERT_TRUE(serial_sys.BeginEpoch(1).ok());
    ASSERT_TRUE(piped_sys.BeginEpoch(1).ok());

    // Batch submission must be status-equal to the sequential loop.
    std::vector<Status> serial_status;
    for (const Transaction& tx : txs) {
      Result<ShardId> routed = serial_sys.SubmitTransaction(tx);
      serial_status.push_back(routed.ok() ? Status::OK() : routed.status());
    }
    const std::vector<Status> batch_status =
        piped_sys.SubmitTransactionBatch(txs);
    ASSERT_EQ(batch_status.size(), serial_status.size());
    for (size_t i = 0; i < txs.size(); ++i) {
      EXPECT_EQ(batch_status[i].code(), serial_status[i].code());
    }
    ASSERT_EQ(piped_sys.PendingPerShard(), serial_sys.PendingPerShard());

    constexpr size_t kBlocks = 6;
    for (NodeId miner : serial_sys.LiveMiners()) {
      std::vector<Hash256> serial_hashes;
      for (size_t b = 0; b < kBlocks; ++b) {
        Result<Hash256> mined = serial_sys.MineBlock(miner);
        ASSERT_TRUE(mined.ok()) << mined.status().message();
        serial_hashes.push_back(*mined);
      }
      Result<std::vector<Hash256>> piped =
          piped_sys.MineBlocksPipelined(miner, kBlocks);
      ASSERT_TRUE(piped.ok()) << piped.status().message();
      EXPECT_EQ(*piped, serial_hashes) << "miner " << miner;
    }
    EXPECT_EQ(piped_sys.PendingPerShard(), serial_sys.PendingPerShard());
    for (ShardId shard = 0; shard < serial_sys.ShardCount(); ++shard) {
      const Ledger* a = serial_sys.ShardLedger(shard);
      const Ledger* b = piped_sys.ShardLedger(shard);
      if (a == nullptr || b == nullptr) {
        EXPECT_EQ(a == nullptr, b == nullptr);
        continue;
      }
      EXPECT_EQ(b->tip_hash(), a->tip_hash()) << "shard " << shard;
      EXPECT_EQ(b->tip_state().StateRoot(), a->tip_state().StateRoot());
    }
  }
}

}  // namespace
}  // namespace shardchain
