#include <vector>

#include <gtest/gtest.h>

#include "baseline/chainspace.h"
#include "baseline/ethereum.h"
#include "common/rng.h"
#include "sim/mining_sim.h"
#include "sim/workload.h"

namespace shardchain {
namespace {

std::vector<Amount> EqualFees(size_t n, Amount fee = 10) {
  return std::vector<Amount>(n, fee);
}

ShardSpec Spec(ShardId id, size_t miners, std::vector<Amount> fees) {
  ShardSpec spec;
  spec.id = id;
  spec.num_miners = miners;
  spec.tx_fees = std::move(fees);
  return spec;
}

MiningSimConfig BaseConfig() {
  MiningSimConfig config;
  config.round_seconds = 60.0;
  config.txs_per_block = 10;
  return config;
}

// ----------------------- Greedy serialization ----------------------------

TEST(MiningSimTest, GreedyIsSerializedRegardlessOfMiners) {
  // Sec. II-B / Table I: all miners pick the same top-fee set, so one
  // useful block per round no matter how many miners race.
  for (size_t miners : {1u, 2u, 5u, 9u}) {
    Rng rng(100 + miners);
    const ShardSpec spec = Spec(0, miners, EqualFees(200));
    const SimResult r = RunMiningSim({spec}, BaseConfig(), &rng);
    EXPECT_DOUBLE_EQ(r.makespan, 20 * 60.0) << miners << " miners";
    EXPECT_EQ(r.TotalTxsConfirmed(), 200u);
  }
}

TEST(MiningSimTest, GreedyWastesConcurrentBlocks) {
  Rng rng(1);
  const ShardSpec spec = Spec(0, 4, EqualFees(100));
  const SimResult r = RunMiningSim({spec}, BaseConfig(), &rng);
  // 10 rounds x 3 losing miners per round.
  EXPECT_EQ(r.TotalWastedBlocks(), 30u);
  EXPECT_EQ(r.TotalBlocks(), 10u);
}

TEST(MiningSimTest, ShardsRunInParallel) {
  // Fig. 3a: s shards with 1/s of the transactions each finish in 1/s
  // of the time.
  Rng rng(2);
  std::vector<ShardSpec> shards;
  for (ShardId s = 0; s < 4; ++s) shards.push_back(Spec(s, 1, EqualFees(50)));
  const SimResult r = RunMiningSim(shards, BaseConfig(), &rng);
  EXPECT_DOUBLE_EQ(r.makespan, 5 * 60.0);
  EXPECT_EQ(r.TotalTxsConfirmed(), 200u);
}

TEST(MiningSimTest, CalibrationPowerSlowsSmallNetworks) {
  // Table I: 2 miners at genesis difficulty calibrated for 4 take twice
  // as long per round.
  MiningSimConfig config = BaseConfig();
  config.calibration_power = 4.0;
  Rng rng(3);
  const SimResult two =
      RunMiningSim({Spec(0, 2, EqualFees(20))}, config, &rng);
  const SimResult four =
      RunMiningSim({Spec(0, 4, EqualFees(20))}, config, &rng);
  const SimResult seven =
      RunMiningSim({Spec(0, 7, EqualFees(20))}, config, &rng);
  EXPECT_DOUBLE_EQ(two.makespan, 2 * 120.0);
  EXPECT_DOUBLE_EQ(four.makespan, 2 * 60.0);
  // Beyond the calibration power, no further speedup (the paper's
  // Table I plateau).
  EXPECT_DOUBLE_EQ(seven.makespan, four.makespan);
}

// ----------------------- Congestion-game policy --------------------------

TEST(MiningSimTest, GameSelectionParallelizesWithinShard) {
  // Fig. 3h: disjoint sets let all n concurrent blocks commit.
  MiningSimConfig config = BaseConfig();
  config.policy = SelectionPolicy::kCongestionGame;
  Rng rng(4);
  // Distinct fees spread the equilibrium sets apart.
  std::vector<Amount> fees;
  for (size_t i = 0; i < 180; ++i) fees.push_back(1 + (i * 7) % 101);
  const SimResult r = RunMiningSim({Spec(0, 9, fees)}, config, &rng);
  EXPECT_EQ(r.TotalTxsConfirmed(), 180u);
  // Greedy would need 18 rounds; the game should finish much faster.
  Rng rng2(5);
  const SimResult greedy =
      RunMiningSim({Spec(0, 9, fees)}, BaseConfig(), &rng2);
  EXPECT_LT(r.makespan, greedy.makespan / 2.0);
}

TEST(MiningSimTest, RoundRobinIsAtLeastAsFastAsGame) {
  std::vector<Amount> fees;
  for (size_t i = 0; i < 120; ++i) fees.push_back(1 + (i * 13) % 97);
  MiningSimConfig game = BaseConfig();
  game.policy = SelectionPolicy::kCongestionGame;
  MiningSimConfig oracle = BaseConfig();
  oracle.policy = SelectionPolicy::kRoundRobin;
  Rng rng1(6);
  Rng rng2(7);
  const SimResult g = RunMiningSim({Spec(0, 6, fees)}, game, &rng1);
  const SimResult o = RunMiningSim({Spec(0, 6, fees)}, oracle, &rng2);
  EXPECT_LE(o.makespan, g.makespan);
}

TEST(MiningSimTest, SingleMinerGameEqualsGreedy) {
  std::vector<Amount> fees = EqualFees(50);
  MiningSimConfig game = BaseConfig();
  game.policy = SelectionPolicy::kCongestionGame;
  Rng rng1(8);
  Rng rng2(9);
  const SimResult g = RunMiningSim({Spec(0, 1, fees)}, game, &rng1);
  const SimResult e = RunMiningSim({Spec(0, 1, fees)}, BaseConfig(),
                                   &rng2);
  EXPECT_DOUBLE_EQ(g.makespan, e.makespan);
}

// --------------------------- Empty blocks --------------------------------

TEST(MiningSimTest, NoEmptyBlocksWhileWorkRemains) {
  Rng rng(10);
  const SimResult r =
      RunMiningSim({Spec(0, 1, EqualFees(100))}, BaseConfig(), &rng);
  EXPECT_EQ(r.TotalEmptyBlocks(), 0u);
}

TEST(MiningSimTest, SmallShardMinesEmptyBlocksInWindow) {
  // Fig. 3c setting: a shard with very few txs keeps packing empty
  // blocks for the rest of the observation window.
  MiningSimConfig config = BaseConfig();
  config.window_seconds = 600.0;
  Rng rng(11);
  const SimResult r =
      RunMiningSim({Spec(0, 1, EqualFees(5))}, config, &rng);
  // Round 1 confirms all 5 txs; rounds 2..10 are empty.
  EXPECT_EQ(r.TotalEmptyBlocks(), 9u);
  EXPECT_EQ(r.TotalTxsConfirmed(), 5u);
  EXPECT_DOUBLE_EQ(r.makespan, 60.0);
}

TEST(MiningSimTest, ZeroTxShardMinesOnlyEmpty) {
  MiningSimConfig config = BaseConfig();
  config.window_seconds = 300.0;
  Rng rng(12);
  const SimResult r = RunMiningSim({Spec(0, 1, {})}, config, &rng);
  EXPECT_EQ(r.TotalEmptyBlocks(), 5u);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST(MiningSimTest, MoreMinersThanWorkProduceEmptyBlocks) {
  // 9 miners, 5 txs, round-robin dealing: five miners pack one tx each,
  // the other four mine empty blocks in the same round.
  MiningSimConfig config = BaseConfig();
  config.policy = SelectionPolicy::kRoundRobin;
  Rng rng(13);
  const SimResult r =
      RunMiningSim({Spec(0, 9, EqualFees(5))}, config, &rng);
  EXPECT_EQ(r.TotalTxsConfirmed(), 5u);
  EXPECT_EQ(r.TotalEmptyBlocks(), 4u);
  EXPECT_EQ(r.TotalBlocks(), 9u);
}

// ------------------------- Aggregate helpers -----------------------------

TEST(MiningSimTest, ThroughputImprovementRatio) {
  SimResult base;
  base.makespan = 1200.0;
  SimResult sharded;
  sharded.makespan = 180.0;
  EXPECT_NEAR(ThroughputImprovement(base, sharded), 6.67, 0.01);
  SimResult zero;
  EXPECT_EQ(ThroughputImprovement(base, zero), 0.0);
}

TEST(MiningSimTest, PerShardEmptyAverage) {
  SimResult r;
  r.shards.resize(2);
  r.shards[0].empty_blocks = 4;
  r.shards[1].empty_blocks = 2;
  EXPECT_DOUBLE_EQ(r.EmptyBlocksPerShard(), 3.0);
}

TEST(MiningSimTest, PolicyNames) {
  EXPECT_STREQ(SelectionPolicyName(SelectionPolicy::kGreedy), "Greedy");
  EXPECT_STREQ(SelectionPolicyName(SelectionPolicy::kCongestionGame),
               "CongestionGame");
  EXPECT_STREQ(SelectionPolicyName(SelectionPolicy::kRandomSets),
               "RandomSets");
  EXPECT_STREQ(SelectionPolicyName(SelectionPolicy::kRoundRobin),
               "RoundRobin");
}

// ------------------------- Ethereum baseline -----------------------------

TEST(EthereumBaselineTest, MatchesGreedySingleShard) {
  Rng rng1(14);
  Rng rng2(15);
  const SimResult direct = RunMiningSim(
      {Spec(0, 9, EqualFees(200))}, BaseConfig(), &rng1);
  const SimResult baseline =
      RunEthereumBaseline(EqualFees(200), 9, BaseConfig(), &rng2);
  EXPECT_DOUBLE_EQ(direct.makespan, baseline.makespan);
  Rng rng3(16);
  EXPECT_DOUBLE_EQ(
      EthereumConfirmationTime(EqualFees(200), 9, BaseConfig(), &rng3),
      baseline.makespan);
}

TEST(EthereumBaselineTest, ForcesGreedyPolicy) {
  MiningSimConfig config = BaseConfig();
  config.policy = SelectionPolicy::kRoundRobin;  // Ignored by baseline.
  Rng rng(17);
  const SimResult r = RunEthereumBaseline(EqualFees(100), 5, config, &rng);
  EXPECT_DOUBLE_EQ(r.makespan, 10 * 60.0);
}

// ------------------------- ChainSpace baseline ---------------------------

TEST(ChainSpaceTest, AccountShardIsDeterministic) {
  Rng rng(18);
  const Address a = RandomAddress(&rng);
  EXPECT_EQ(ChainSpaceShardOfAccount(a, 9), ChainSpaceShardOfAccount(a, 9));
  EXPECT_LT(ChainSpaceShardOfAccount(a, 9), 9u);
}

TEST(ChainSpaceTest, MessagesCountForeignInputShards) {
  EXPECT_EQ(ChainSpaceMessagesForTx(0, {0}), 0u);
  EXPECT_EQ(ChainSpaceMessagesForTx(0, {1}), 2u);
  EXPECT_EQ(ChainSpaceMessagesForTx(0, {1, 2}), 4u);
  EXPECT_EQ(ChainSpaceMessagesForTx(0, {1, 1, 2}), 4u);  // Dedup.
  EXPECT_EQ(ChainSpaceMessagesForTx(1, {1, 1}), 0u);
}

TEST(ChainSpaceTest, CommunicationGrowsLinearlyWithTxs) {
  // Fig. 4b: communication per shard is linear in the number of
  // injected 3-input transactions.
  ChainSpaceConfig config;
  config.mining.round_seconds = 10.0 / 76.0;
  Rng rng(19);
  const auto txs_small = GenerateKInputTransactions(1000, 3, 5, &rng);
  const auto txs_large = GenerateKInputTransactions(2000, 3, 5, &rng);
  Rng r1(20);
  Rng r2(21);
  const ChainSpaceResult small = RunChainSpace(txs_small, config, &r1);
  const ChainSpaceResult large = RunChainSpace(txs_large, config, &r2);
  EXPECT_GT(small.cross_shard_messages, 0u);
  const double ratio = static_cast<double>(large.cross_shard_messages) /
                       static_cast<double>(small.cross_shard_messages);
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(ChainSpaceTest, ConfirmsAllTransactions) {
  ChainSpaceConfig config;
  Rng rng(22);
  const auto txs = GenerateKInputTransactions(500, 3, 5, &rng);
  Rng run_rng(23);
  const ChainSpaceResult r = RunChainSpace(txs, config, &run_rng);
  EXPECT_EQ(r.sim.TotalTxsConfirmed(), 500u);
  EXPECT_EQ(r.sim.shards.size(), 9u);
  EXPECT_GT(r.CommunicationTimesPerShard(), 0.0);
}

}  // namespace
}  // namespace shardchain
