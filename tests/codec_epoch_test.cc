#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/epoch.h"
#include "sim/workload.h"
#include "types/codec.h"

namespace shardchain {
namespace {

Transaction SampleTx(Rng* rng) {
  Transaction tx;
  tx.sender = RandomAddress(rng);
  tx.recipient = RandomAddress(rng);
  tx.kind = static_cast<TxKind>(rng->UniformInt(3));
  tx.value = rng->Next() % 100000;
  tx.fee = rng->Next() % 1000;
  tx.gas_limit = 21000 + rng->Next() % 10000;
  tx.nonce = rng->Next() % 32;
  const size_t payload = rng->UniformInt(40);
  for (size_t i = 0; i < payload; ++i) {
    tx.payload.push_back(static_cast<uint8_t>(rng->UniformInt(256)));
  }
  const size_t inputs = rng->UniformInt(4);
  for (size_t i = 0; i < inputs; ++i) {
    tx.input_accounts.push_back(RandomAddress(rng));
  }
  return tx;
}

// ------------------------------ Codec ------------------------------------

TEST(CodecTest, TransactionRoundTripPreservesId) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Transaction tx = SampleTx(&rng);
    Result<Transaction> back =
        codec::DecodeTransaction(codec::EncodeTransaction(tx));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->Id(), tx.Id());
    EXPECT_EQ(back->sender, tx.sender);
    EXPECT_EQ(back->kind, tx.kind);
    EXPECT_EQ(back->payload, tx.payload);
    EXPECT_EQ(back->input_accounts, tx.input_accounts);
  }
}

TEST(CodecTest, HeaderRoundTripPreservesHash) {
  Rng rng(2);
  BlockHeader h;
  h.parent_hash = Sha256Digest("parent");
  h.number = 7;
  h.shard_id = 3;
  h.miner = RandomAddress(&rng);
  h.tx_root = Sha256Digest("txs");
  h.state_root = Sha256Digest("state");
  h.difficulty = 0x40000;
  h.nonce = 12345;
  h.timestamp = 99;
  Result<BlockHeader> back = codec::DecodeHeader(codec::EncodeHeader(h));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Hash(), h.Hash());
  EXPECT_EQ(back->shard_id, h.shard_id);
}

TEST(CodecTest, BlockRoundTrip) {
  Rng rng(3);
  Block block;
  block.header.shard_id = 2;
  block.header.number = 5;
  for (int i = 0; i < 7; ++i) block.transactions.push_back(SampleTx(&rng));
  block.header.tx_root = block.ComputeTxRoot();

  Result<Block> back = codec::DecodeBlock(codec::EncodeBlock(block));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->header.Hash(), block.header.Hash());
  ASSERT_EQ(back->transactions.size(), 7u);
  EXPECT_EQ(back->ComputeTxRoot(), block.header.tx_root);
}

TEST(CodecTest, EmptyBlockRoundTrip) {
  Block block;
  Result<Block> back = codec::DecodeBlock(codec::EncodeBlock(block));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->IsEmpty());
}

TEST(CodecTest, TruncationIsDetectedEverywhere) {
  Rng rng(4);
  Block block;
  for (int i = 0; i < 3; ++i) block.transactions.push_back(SampleTx(&rng));
  const Bytes full = codec::EncodeBlock(block);
  // Every strict prefix must fail cleanly, never crash.
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    Bytes prefix(full.begin(), full.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(codec::DecodeBlock(prefix).ok()) << "cut=" << cut;
  }
}

TEST(CodecTest, TrailingGarbageRejected) {
  Rng rng(5);
  Bytes data = codec::EncodeTransaction(SampleTx(&rng));
  data.push_back(0x00);
  EXPECT_FALSE(codec::DecodeTransaction(data).ok());
  Block block;
  Bytes bdata = codec::EncodeBlock(block);
  bdata.push_back(0x00);
  EXPECT_FALSE(codec::DecodeBlock(bdata).ok());
}

TEST(CodecTest, BadKindRejected) {
  Rng rng(6);
  Transaction tx = SampleTx(&rng);
  Bytes data = codec::EncodeTransaction(tx);
  data[40] = 0x77;  // The kind byte (after two 20-byte addresses).
  EXPECT_FALSE(codec::DecodeTransaction(data).ok());
}

TEST(CodecTest, RandomGarbageNeverCrashes) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Bytes junk(rng.UniformInt(300));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.UniformInt(256));
    (void)codec::DecodeTransaction(junk);
    (void)codec::DecodeHeader(junk);
    (void)codec::DecodeBlock(junk);
  }
  SUCCEED();
}

// --------------------------- EpochManager --------------------------------

std::vector<KeyPair> MakeKeys(size_t n) {
  std::vector<KeyPair> keys;
  for (size_t i = 0; i < n; ++i) keys.push_back(KeyPair::FromSeed(1000 + i));
  return keys;
}

std::vector<LeaderCandidate> Evaluate(const std::vector<KeyPair>& keys,
                                      const Hash256& seed) {
  std::vector<LeaderCandidate> out;
  for (const KeyPair& k : keys) {
    out.push_back(LeaderCandidate{k.public_key(), VrfEvaluate(k, seed)});
  }
  return out;
}

TEST(EpochManagerTest, AdvanceChainsRandomness) {
  EpochManager manager(Sha256Digest("genesis"));
  const auto keys = MakeKeys(4);
  const std::vector<double> fractions{60.0, 40.0};

  const Hash256 seed1 = manager.NextSeed();
  Result<EpochRecord> e1 = manager.Advance(Evaluate(keys, seed1), fractions);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1->number, 1u);
  EXPECT_EQ(e1->seed, seed1);

  const Hash256 seed2 = manager.NextSeed();
  EXPECT_NE(seed2, seed1);
  Result<EpochRecord> e2 = manager.Advance(Evaluate(keys, seed2), fractions);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->number, 2u);
  EXPECT_EQ(manager.EpochCount(), 2u);
  // Seed 2 must depend on epoch 1's randomness.
  EXPECT_NE(e2->randomness, e1->randomness);
}

TEST(EpochManagerTest, RecordsVerifyAgainstHistory) {
  EpochManager manager(Sha256Digest("genesis"));
  const auto keys = MakeKeys(5);
  const std::vector<double> fractions{100.0};

  Hash256 prev = Sha256Digest("genesis");
  for (int epoch = 0; epoch < 3; ++epoch) {
    const Hash256 seed = manager.NextSeed();
    const auto candidates = Evaluate(keys, seed);
    Result<EpochRecord> record = manager.Advance(candidates, fractions);
    ASSERT_TRUE(record.ok());
    const size_t leader = record->leader_index;
    EXPECT_TRUE(EpochManager::VerifyRecord(*record, prev,
                                           keys[leader].public_key(),
                                           candidates[leader].vrf)
                    .ok());
    // A record claiming a different chain position fails.
    EpochRecord forged = *record;
    forged.seed = Sha256Digest("elsewhere");
    EXPECT_FALSE(EpochManager::VerifyRecord(forged, prev,
                                            keys[leader].public_key(),
                                            candidates[leader].vrf)
                     .ok());
    prev = record->randomness;
  }
}

TEST(EpochManagerTest, VerifyRejectsWrongLeaderKey) {
  EpochManager manager(Sha256Digest("genesis"));
  const auto keys = MakeKeys(3);
  const Hash256 seed = manager.NextSeed();
  const auto candidates = Evaluate(keys, seed);
  Result<EpochRecord> record = manager.Advance(candidates, {100.0});
  ASSERT_TRUE(record.ok());
  const size_t other = (record->leader_index + 1) % keys.size();
  EXPECT_FALSE(EpochManager::VerifyRecord(*record, Sha256Digest("genesis"),
                                          keys[other].public_key(),
                                          candidates[other].vrf)
                   .ok());
}

TEST(EpochManagerTest, ReconfigurationMovesMiners) {
  // Sybil resistance: the same miner population re-shuffles across
  // epochs because the randomness changes.
  EpochManager manager(Sha256Digest("genesis"));
  const auto keys = MakeKeys(3);
  const std::vector<double> fractions{25.0, 25.0, 25.0, 25.0};

  std::vector<Hash256> miner_ids;
  for (uint64_t i = 0; i < 200; ++i) {
    miner_ids.push_back(Sha256Digest("miner" + std::to_string(i)));
  }

  ASSERT_TRUE(manager.Advance(Evaluate(keys, manager.NextSeed()), fractions)
                  .ok());
  std::vector<ShardId> first;
  for (const auto& id : miner_ids) {
    first.push_back(*manager.CurrentShardOf(id));
  }
  ASSERT_TRUE(manager.Advance(Evaluate(keys, manager.NextSeed()), fractions)
                  .ok());
  size_t moved = 0;
  for (size_t i = 0; i < miner_ids.size(); ++i) {
    if (*manager.CurrentShardOf(miner_ids[i]) != first[i]) ++moved;
  }
  // With 4 even shards, ~75% of miners relocate per epoch.
  EXPECT_GT(moved, miner_ids.size() / 2);
}

TEST(EpochManagerTest, NoEpochMeansNoAssignment) {
  EpochManager manager(Sha256Digest("genesis"));
  EXPECT_TRUE(manager.CurrentShardOf(Sha256Digest("m"))
                  .status()
                  .IsFailedPrecondition());
}

TEST(EpochManagerTest, EmptyFractionsRejected) {
  EpochManager manager(Sha256Digest("genesis"));
  const auto keys = MakeKeys(2);
  EXPECT_TRUE(manager.Advance(Evaluate(keys, manager.NextSeed()), {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace shardchain
