// Round-trip coverage for the Sec. IV-C unification messages: the
// unified-input broadcast and the merge/selection plans. These
// encodings are the byte-equality oracle the determinism harness
// relies on, so encode→decode→encode must be the identity on bytes.

#include <gtest/gtest.h>

#include "core/unification_codec.h"

namespace shardchain {
namespace {

UnifiedParameters SampleParams() {
  UnifiedParameters params;
  params.randomness = Sha256Digest("codec-epoch");
  params.shard_sizes = {8, 9, 7, 0, 19, 5};
  params.tx_fees = {10, 40, 20, 90, 60, 30, 70, 50};
  params.num_miners = 5;
  params.merge_config.min_shard_size = 21;
  params.merge_config.shard_reward = 101.5;
  params.merge_config.merge_cost = 19.25;
  params.merge_config.eta = 0.0625;
  params.merge_config.subslots = 48;
  params.merge_config.tolerance = 1e-4;
  params.merge_config.max_slots = 321;
  params.merge_config.initial_prob = 0.375;
  params.merge_config.final_draw_retries = 17;
  params.merge_config.prefer_minimal_coalition = true;
  params.merge_config.prob_floor = 0.0009765625;
  params.select_config.capacity = 4;
  params.select_config.max_sweeps = 123;
  return params;
}

TEST(UnificationCodecTest, ParametersRoundTrip) {
  const UnifiedParameters params = SampleParams();
  const Bytes wire = codec::EncodeUnifiedParameters(params);
  Result<UnifiedParameters> decoded = codec::DecodeUnifiedParameters(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  EXPECT_EQ(decoded->randomness, params.randomness);
  EXPECT_EQ(decoded->shard_sizes, params.shard_sizes);
  EXPECT_EQ(decoded->tx_fees, params.tx_fees);
  EXPECT_EQ(decoded->num_miners, params.num_miners);
  EXPECT_EQ(decoded->merge_config.min_shard_size,
            params.merge_config.min_shard_size);
  EXPECT_EQ(decoded->merge_config.shard_reward,
            params.merge_config.shard_reward);
  EXPECT_EQ(decoded->merge_config.merge_cost, params.merge_config.merge_cost);
  EXPECT_EQ(decoded->merge_config.eta, params.merge_config.eta);
  EXPECT_EQ(decoded->merge_config.subslots, params.merge_config.subslots);
  EXPECT_EQ(decoded->merge_config.tolerance, params.merge_config.tolerance);
  EXPECT_EQ(decoded->merge_config.max_slots, params.merge_config.max_slots);
  EXPECT_EQ(decoded->merge_config.initial_prob,
            params.merge_config.initial_prob);
  EXPECT_EQ(decoded->merge_config.final_draw_retries,
            params.merge_config.final_draw_retries);
  EXPECT_EQ(decoded->merge_config.prefer_minimal_coalition,
            params.merge_config.prefer_minimal_coalition);
  EXPECT_EQ(decoded->merge_config.prob_floor, params.merge_config.prob_floor);
  EXPECT_EQ(decoded->select_config.capacity, params.select_config.capacity);
  EXPECT_EQ(decoded->select_config.max_sweeps,
            params.select_config.max_sweeps);

  // Re-encoding the decoded struct is the byte identity.
  EXPECT_EQ(codec::EncodeUnifiedParameters(*decoded), wire);
}

TEST(UnificationCodecTest, ParametersSeedSurvivesTransport) {
  // The decoded broadcast must derive the same game seeds — this is
  // exactly what lets a receiving miner replay Algorithms 1-3.
  const UnifiedParameters params = SampleParams();
  Result<UnifiedParameters> decoded =
      codec::DecodeUnifiedParameters(codec::EncodeUnifiedParameters(params));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->SeedFor("merge"), params.SeedFor("merge"));
  EXPECT_EQ(decoded->SeedFor("select"), params.SeedFor("select"));
}

TEST(UnificationCodecTest, SelectionPlanRoundTrip) {
  SelectionResult plan;
  plan.assignment = {{0, 3, 5}, {}, {1, 2}, {4}};
  plan.improvement_moves = 12;
  plan.converged = true;
  const Bytes wire = codec::EncodeSelectionPlan(plan);
  Result<SelectionResult> decoded = codec::DecodeSelectionPlan(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->assignment, plan.assignment);
  EXPECT_EQ(decoded->improvement_moves, plan.improvement_moves);
  EXPECT_EQ(decoded->converged, plan.converged);
  EXPECT_EQ(codec::EncodeSelectionPlan(*decoded), wire);
}

TEST(UnificationCodecTest, ComputedSelectionPlanRoundTrips) {
  // Not just hand-built structs: the actual Algorithm 2 output.
  const UnifiedParameters params = SampleParams();
  const SelectionResult plan = ComputeSelectionPlan(params);
  const Bytes wire = codec::EncodeSelectionPlan(plan);
  Result<SelectionResult> decoded = codec::DecodeSelectionPlan(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->assignment, plan.assignment);
  EXPECT_EQ(codec::EncodeSelectionPlan(*decoded), wire);
}

TEST(UnificationCodecTest, MergePlanRoundTrip) {
  IterativeMergeResult plan;
  plan.new_shards = {{0, 2, 4}, {1, 5}};
  plan.leftover = {3};
  plan.total_slots = 77;
  const Bytes wire = codec::EncodeMergePlan(plan);
  Result<IterativeMergeResult> decoded = codec::DecodeMergePlan(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->new_shards, plan.new_shards);
  EXPECT_EQ(decoded->leftover, plan.leftover);
  EXPECT_EQ(decoded->total_slots, plan.total_slots);
  EXPECT_EQ(codec::EncodeMergePlan(*decoded), wire);
}

TEST(UnificationCodecTest, ComputedMergePlanRoundTrips) {
  const UnifiedParameters params = SampleParams();
  const IterativeMergeResult plan = ComputeMergePlan(params);
  const Bytes wire = codec::EncodeMergePlan(plan);
  Result<IterativeMergeResult> decoded = codec::DecodeMergePlan(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->new_shards, plan.new_shards);
  EXPECT_EQ(decoded->leftover, plan.leftover);
  EXPECT_EQ(codec::EncodeMergePlan(*decoded), wire);
}

// ----------------------- Corruption rejection ---------------------------

TEST(UnificationCodecTest, RejectsTruncatedParameters) {
  Bytes wire = codec::EncodeUnifiedParameters(SampleParams());
  for (size_t cut : {size_t{0}, size_t{1}, wire.size() / 2,
                     wire.size() - 1}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(codec::DecodeUnifiedParameters(truncated).ok())
        << "cut=" << cut;
  }
}

TEST(UnificationCodecTest, RejectsTrailingGarbage) {
  Bytes wire = codec::EncodeSelectionPlan(SelectionResult{});
  wire.push_back(0xAB);
  EXPECT_FALSE(codec::DecodeSelectionPlan(wire).ok());
}

TEST(UnificationCodecTest, RejectsAbsurdCounts) {
  // A count prefix far beyond the buffer must fail cleanly instead of
  // driving a huge allocation.
  Bytes wire;
  AppendUint64(&wire, ~uint64_t{0});
  EXPECT_FALSE(codec::DecodeSelectionPlan(wire).ok());
  EXPECT_FALSE(codec::DecodeMergePlan(wire).ok());
}

TEST(UnificationCodecTest, RejectsBadBoolByte) {
  SelectionResult plan;
  plan.assignment = {{0}};
  Bytes wire = codec::EncodeSelectionPlan(plan);
  wire.back() = 7;  // converged must be 0 or 1.
  EXPECT_FALSE(codec::DecodeSelectionPlan(wire).ok());
}

}  // namespace
}  // namespace shardchain
