// Unit tests for the deterministic fork-join pool and the parallel
// primitives built on it (ctest label: parallel). The contract under
// test is DESIGN.md §9: fixed chunking, disjoint writes, ordered
// reduction, per-chunk seeding — so every result is independent of
// thread count and scheduling, including the pool-free serial path.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "parallel/parallel.h"
#include "parallel/thread_pool.h"

namespace shardchain {
namespace {

// Thread counts every equivalence assertion sweeps: serial, even,
// odd, prime, and more-threads-than-chunks shapes.
const size_t kThreadCounts[] = {1, 2, 3, 4, 7, 8};

TEST(ParallelConfigTest, ResolveHonorsExplicitAndDefault) {
  EXPECT_EQ(ParallelConfig{1}.Resolve(), 1u);
  EXPECT_EQ(ParallelConfig{5}.Resolve(), 5u);
  EXPECT_GE(ParallelConfig{0}.Resolve(), 1u);  // hardware_concurrency.
}

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  for (const size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<int> hits(1000, 0);
    pool.Run(hits.size(), [&](size_t c) { ++hits[c]; });
    for (size_t c = 0; c < hits.size(); ++c) {
      ASSERT_EQ(hits[c], 1) << "chunk " << c << " at " << threads
                            << " threads";
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.Run(17, [&](size_t c) { total += c; });
  }
  EXPECT_EQ(total.load(), 50u * (16 * 17 / 2));
}

TEST(ParallelForTest, ThreadsOneMatchesPoolFreePathBitwise) {
  // A ThreadPool(1) and no pool at all must walk the identical chunks
  // in the identical order: same doubles, bit for bit.
  const size_t n = 10'007;
  std::vector<double> serial(n), pooled(n);
  auto body = [](size_t i) {
    return std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (1.0 + i);
  };
  ParallelFor(nullptr, n, 64, [&](size_t i) { serial[i] = body(i); });
  ThreadPool one(1);
  ParallelFor(&one, n, 64, [&](size_t i) { pooled[i] = body(i); });
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelReduceTest, OrderedReductionBitStableAcrossThreadCounts) {
  // Floating-point addition is not associative; only the fixed
  // chunking + left-to-right fold of per-chunk partials makes the sum
  // reproducible. Compare full bit patterns against the serial result.
  const size_t n = 54'321;
  auto reduce = [&](ThreadPool* pool) {
    return ParallelReduce(
        pool, n, 100, 0.0,
        [](size_t begin, size_t end, size_t) {
          double partial = 0.0;
          for (size_t i = begin; i < end; ++i) {
            partial += 1.0 / (1.0 + static_cast<double>(i) * 1e-3);
          }
          return partial;
        },
        [](double acc, double p) { return acc + p; });
  };
  const double expected = reduce(nullptr);
  for (const size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const double got = reduce(&pool);
    uint64_t eb, gb;
    static_assert(sizeof(eb) == sizeof(expected));
    std::memcpy(&eb, &expected, sizeof(eb));
    std::memcpy(&gb, &got, sizeof(gb));
    EXPECT_EQ(eb, gb) << "FP sum drifted at " << threads << " threads";
  }
}

TEST(ParallelChunksTest, ChunkBoundariesDependOnlyOnSizeAndGrain) {
  // Record (begin, end, chunk) triples at several thread counts; the
  // sets must be identical because boundaries are (n, grain) functions.
  const size_t n = 1003, grain = 17;
  auto collect = [&](ThreadPool* pool) {
    std::vector<std::vector<size_t>> triples(NumChunks(n, grain));
    ParallelChunks(pool, n, grain, [&](size_t b, size_t e, size_t c) {
      triples[c] = {b, e, c};
    });
    return triples;
  };
  const auto expected = collect(nullptr);
  for (const size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_EQ(collect(&pool), expected) << threads << " threads";
  }
}

TEST(ParallelChunksTest, ChunkSeedStreamsIndependentOfThreadCount) {
  // Per-chunk RNG: the draws a chunk makes depend only on its index.
  const uint64_t base = 0xfeedfacecafebeefull;
  auto draw = [&](ThreadPool* pool) {
    std::vector<uint64_t> out(NumChunks(256, 8));
    ParallelChunks(pool, 256, 8, [&](size_t, size_t, size_t c) {
      Rng sub(ChunkSeed(base, c));
      out[c] = sub.Next() ^ sub.Next();
    });
    return out;
  };
  const auto expected = draw(nullptr);
  for (const size_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_EQ(draw(&pool), expected) << threads << " threads";
  }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100, 1,
                  [](size_t i) {
                    if (i == 37) throw std::runtime_error("chunk 37");
                  }),
      std::runtime_error);
  // The failed region must drain fully: the pool stays usable.
  std::atomic<int> ran{0};
  ParallelFor(&pool, 64, 1, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForSerializesInline) {
  // An inner region launched from inside a chunk must not deadlock and
  // must produce the same values as a serial inner loop.
  ThreadPool pool(4);
  const size_t outer = 8, inner = 32;
  std::vector<std::vector<uint64_t>> got(outer);
  std::vector<uint8_t> was_nested(outer, 0);
  ParallelFor(&pool, outer, 1, [&](size_t o) {
    was_nested[o] = ThreadPool::InParallelRegion() ? 1 : 0;
    got[o].assign(inner, 0);
    ParallelFor(&pool, inner, 4,
                [&](size_t i) { got[o][i] = o * 1000 + i; });
  });
  for (size_t o = 0; o < outer; ++o) {
    EXPECT_EQ(was_nested[o], 1) << "outer chunk " << o;
    for (size_t i = 0; i < inner; ++i) {
      ASSERT_EQ(got[o][i], o * 1000 + i);
    }
  }
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ParallelForTest, EmptyAndSingleElementRanges) {
  ThreadPool pool(3);
  int hits = 0;
  ParallelFor(&pool, 0, 16, [&](size_t) { ++hits; });
  EXPECT_EQ(hits, 0);
  ParallelFor(&pool, 1, 16, [&](size_t) { ++hits; });
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace shardchain
