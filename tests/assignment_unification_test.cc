#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/miner_assignment.h"
#include "core/unification.h"
#include "crypto/keys.h"
#include "crypto/vrf.h"

namespace shardchain {
namespace {

Hash256 Id(uint64_t n) { return Sha256Digest("miner-" + std::to_string(n)); }

// ------------------------- Leader election -------------------------------

TEST(LeaderElectionTest, PicksSmallestValidTicket) {
  const Hash256 seed = Sha256Digest("epoch");
  std::vector<KeyPair> keys;
  std::vector<LeaderCandidate> candidates;
  for (uint64_t i = 0; i < 5; ++i) {
    keys.push_back(KeyPair::FromSeed(i));
    candidates.push_back(
        LeaderCandidate{keys[i].public_key(), VrfEvaluate(keys[i], seed)});
  }
  Result<size_t> leader = ElectLeader(candidates, seed);
  ASSERT_TRUE(leader.ok());
  const double winning = VrfTicket(candidates[*leader].vrf.value);
  for (const auto& c : candidates) {
    EXPECT_LE(winning, VrfTicket(c.vrf.value));
  }
}

TEST(LeaderElectionTest, SkipsForgedProofs) {
  const Hash256 seed = Sha256Digest("epoch");
  KeyPair honest = KeyPair::FromSeed(1);
  KeyPair cheat = KeyPair::FromSeed(2);
  // The cheater claims a zero (minimal) VRF value with a proof that
  // cannot verify.
  VrfOutput forged = VrfEvaluate(cheat, seed);
  forged.value = Hash256::Zero();
  std::vector<LeaderCandidate> candidates{
      {honest.public_key(), VrfEvaluate(honest, seed)},
      {cheat.public_key(), forged},
  };
  Result<size_t> leader = ElectLeader(candidates, seed);
  ASSERT_TRUE(leader.ok());
  EXPECT_EQ(*leader, 0u);
}

TEST(LeaderElectionTest, FailsWithNoValidCandidates) {
  const Hash256 seed = Sha256Digest("epoch");
  KeyPair k = KeyPair::FromSeed(3);
  VrfOutput forged = VrfEvaluate(k, Sha256Digest("wrong-seed"));
  std::vector<LeaderCandidate> candidates{{k.public_key(), forged}};
  EXPECT_TRUE(ElectLeader(candidates, seed).status().IsNotFound());
}

TEST(LeaderElectionTest, DeterministicAcrossVerifiers) {
  const Hash256 seed = Sha256Digest("epoch");
  std::vector<KeyPair> keys;
  std::vector<LeaderCandidate> candidates;
  for (uint64_t i = 10; i < 16; ++i) {
    keys.push_back(KeyPair::FromSeed(i));
    candidates.push_back(
        LeaderCandidate{keys.back().public_key(),
                        VrfEvaluate(keys.back(), seed)});
  }
  Result<size_t> a = ElectLeader(candidates, seed);
  Result<size_t> b = ElectLeader(candidates, seed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

// ------------------------- RandHound draws -------------------------------

TEST(RandHoundTest, DrawInRange) {
  const Hash256 r = Sha256Digest("rand");
  for (uint64_t i = 0; i < 500; ++i) {
    const uint32_t draw = RandHoundDraw(r, Id(i));
    EXPECT_GE(draw, 1u);
    EXPECT_LE(draw, 100u);
  }
}

TEST(RandHoundTest, DrawsAreRoughlyUniform) {
  // "Miners are separated to 100 groups evenly" — chi-square-lite check
  // over 10 buckets.
  const Hash256 r = Sha256Digest("rand2");
  std::vector<int> buckets(10, 0);
  const int kMiners = 10000;
  for (int i = 0; i < kMiners; ++i) {
    ++buckets[(RandHoundDraw(r, Id(static_cast<uint64_t>(i))) - 1) / 10];
  }
  for (int count : buckets) {
    EXPECT_GT(count, 850);
    EXPECT_LT(count, 1150);
  }
}

TEST(RandHoundTest, DifferentRandomnessReshuffles) {
  int moved = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    if (RandHoundDraw(Sha256Digest("r1"), Id(i)) !=
        RandHoundDraw(Sha256Digest("r2"), Id(i))) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 80);
}

// ------------------------ Shard-for-draw mapping -------------------------

TEST(ShardForDrawTest, CumulativeBands) {
  const std::vector<double> fractions{50.0, 30.0, 20.0};
  EXPECT_EQ(ShardForDraw(1, fractions), 0u);
  EXPECT_EQ(ShardForDraw(50, fractions), 0u);
  EXPECT_EQ(ShardForDraw(51, fractions), 1u);
  EXPECT_EQ(ShardForDraw(80, fractions), 1u);
  EXPECT_EQ(ShardForDraw(81, fractions), 2u);
  EXPECT_EQ(ShardForDraw(100, fractions), 2u);
}

TEST(ShardForDrawTest, RoundingSliverGoesToLastShard) {
  const std::vector<double> fractions{33.3, 33.3, 33.3};
  EXPECT_EQ(ShardForDraw(100, fractions), 2u);
}

TEST(AssignmentTest, FractionWeightedPopulation) {
  // "The fraction of miners in a shard shall keep up with the fraction
  // of transactions in that shard" (Sec. III-B).
  const Hash256 r = Sha256Digest("epoch-randomness");
  const std::vector<double> fractions{70.0, 20.0, 10.0};
  std::vector<Hash256> ids;
  for (uint64_t i = 0; i < 3000; ++i) ids.push_back(Id(i));
  const auto shards = AssignAllMiners(r, ids, fractions, nullptr);
  std::map<ShardId, int> counts;
  for (ShardId s : shards) ++counts[s];
  EXPECT_NEAR(counts[0] / 3000.0, 0.70, 0.04);
  EXPECT_NEAR(counts[1] / 3000.0, 0.20, 0.04);
  EXPECT_NEAR(counts[2] / 3000.0, 0.10, 0.04);
}

TEST(AssignmentTest, RegistersOnNetwork) {
  Network net;
  const auto shards = AssignAllMiners(Sha256Digest("r"), {Id(1), Id(2)},
                                      {50.0, 50.0}, &net);
  EXPECT_EQ(net.NodeCount(), 2u);
  EXPECT_EQ(net.ShardOf(0), shards[0]);
  EXPECT_EQ(net.ShardOf(1), shards[1]);
}

TEST(AssignmentTest, MembershipVerification) {
  const Hash256 r = Sha256Digest("epoch");
  const std::vector<double> fractions{60.0, 40.0};
  const ShardId real = AssignShard(r, Id(7), fractions);
  EXPECT_TRUE(VerifyShardMembership(r, Id(7), fractions, real).ok());
  const ShardId fake = real == 0 ? 1 : 0;
  EXPECT_TRUE(
      VerifyShardMembership(r, Id(7), fractions, fake).IsUnauthorized());
}

// ------------------------ Parameter unification --------------------------

UnifiedParameters MakeParams() {
  UnifiedParameters params;
  params.randomness = Sha256Digest("unified-epoch");
  params.shard_sizes = {8, 9, 7, 6, 8, 5};
  params.tx_fees = {10, 40, 20, 90, 60, 30, 70, 50, 80, 25, 35, 45};
  params.num_miners = 4;
  params.merge_config.min_shard_size = 20;
  params.merge_config.subslots = 16;
  params.merge_config.max_slots = 100;
  params.select_config.capacity = 3;
  return params;
}

TEST(UnificationTest, SeedsDifferPerDomain) {
  const UnifiedParameters params = MakeParams();
  EXPECT_NE(params.SeedFor("merge"), params.SeedFor("select"));
}

TEST(UnificationTest, MergePlanIsReproducibleEverywhere) {
  const UnifiedParameters params = MakeParams();
  const auto a = ComputeMergePlan(params);
  const auto b = ComputeMergePlan(params);
  EXPECT_EQ(a.new_shards, b.new_shards);
  EXPECT_EQ(a.leftover, b.leftover);
}

TEST(UnificationTest, SelectionPlanIsReproducibleEverywhere) {
  const UnifiedParameters params = MakeParams();
  EXPECT_EQ(ComputeSelectionPlan(params).assignment,
            ComputeSelectionPlan(params).assignment);
}

TEST(UnificationTest, DifferentRandomnessDifferentPlans) {
  UnifiedParameters a = MakeParams();
  UnifiedParameters b = MakeParams();
  b.randomness = Sha256Digest("other-epoch");
  // Selection initial choices differ, so assignments will generally
  // differ; at minimum the derived seeds must.
  EXPECT_NE(a.SeedFor("select"), b.SeedFor("select"));
}

TEST(UnificationTest, HonestMinerPassesVerification) {
  const UnifiedParameters params = MakeParams();
  const SelectionResult plan = ComputeSelectionPlan(params);
  for (size_t i = 0; i < params.num_miners; ++i) {
    EXPECT_TRUE(VerifySelection(params, i, plan.assignment[i]).ok());
  }
}

TEST(UnificationTest, CheaterIsDetected) {
  // The adversary packs a transaction not assigned to her — honest
  // miners locally recompute the plan and reject the block (Sec. IV-C).
  const UnifiedParameters params = MakeParams();
  const SelectionResult plan = ComputeSelectionPlan(params);
  std::vector<size_t> stolen = plan.assignment[0];
  // Swap in some transaction belonging to nobody or someone else.
  for (size_t j = 0; j < params.tx_fees.size(); ++j) {
    if (std::find(stolen.begin(), stolen.end(), j) == stolen.end()) {
      stolen[0] = j;
      break;
    }
  }
  EXPECT_TRUE(VerifySelection(params, 0, stolen).IsUnauthorized());
}

TEST(UnificationTest, VerifySelectionRejectsBadIndex) {
  const UnifiedParameters params = MakeParams();
  EXPECT_TRUE(VerifySelection(params, 99, {}).IsInvalidArgument());
}

TEST(UnificationTest, MergeGroupVerification) {
  const UnifiedParameters params = MakeParams();
  const auto plan = ComputeMergePlan(params);
  if (!plan.new_shards.empty()) {
    EXPECT_TRUE(VerifyMergeGroup(params, plan.new_shards[0]).ok());
  }
  EXPECT_TRUE(VerifyMergeGroup(params, {0}).IsUnauthorized());
}

TEST(UnificationTest, UnificationRoundCostsTwoPerShard) {
  // Fig. 4c: "the communication times per shard remains to be 2".
  Network net;
  const NodeId leader = 0;
  std::vector<NodeId> reps;
  for (NodeId n = 0; n < 7; ++n) {
    net.Register(n, n);  // One rep per shard, leader in shard 0.
    if (n > 0) reps.push_back(n);
  }
  const uint64_t msgs = RunUnificationRound(&net, leader, reps);
  EXPECT_EQ(msgs, 2 * reps.size());
  EXPECT_NEAR(net.CommunicationTimesPerShard(reps.size()), 2.0, 1e-9);
}

TEST(UnificationTest, GossipAblationIsQuadratic) {
  Network net;
  std::vector<NodeId> players;
  for (NodeId n = 0; n < 10; ++n) {
    net.Register(n, n);
    players.push_back(n);
  }
  const uint64_t msgs = RunGossipIterations(&net, players, 3);
  EXPECT_EQ(msgs, 3u * 10u * 9u);
}

}  // namespace
}  // namespace shardchain
