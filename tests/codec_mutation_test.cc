// Dynamic twin of codeclint's digest-missing-field rule: flip each
// encoded member of Transaction and BlockHeader one at a time and
// assert every digest that claims to commit to the record actually
// changes — Id(), SigningDigest(), and the raw Encode() bytes for
// transactions; Hash() and Encode() for headers. A member a digest
// ignores is a collision an adversary controls (signature
// malleability for the signing digest, consensus split for the header
// hash), so every mutator below must perturb every digest.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "types/address.h"
#include "types/block.h"
#include "types/transaction.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Hash256 FilledHash(uint8_t tag) {
  Hash256 h;
  h.bytes.fill(tag);
  return h;
}

// A baseline with every member nonzero/nonempty, so a mutator that
// accidentally writes the value already present cannot mask a missing
// field.
Transaction BaselineTx() {
  Transaction tx;
  tx.sender = Addr(1);
  tx.recipient = Addr(2);
  tx.kind = TxKind::kContractCall;
  tx.value = 1000;
  tx.fee = 7;
  tx.gas_limit = 30000;
  tx.nonce = 5;
  tx.payload = {0xde, 0xad, 0xbe, 0xef};
  tx.input_accounts = {Addr(3), Addr(4)};
  return tx;
}

BlockHeader BaselineHeader() {
  BlockHeader h;
  h.parent_hash = FilledHash(0x11);
  h.number = 42;
  h.shard_id = 3;
  h.miner = Addr(9);
  h.tx_root = FilledHash(0x22);
  h.state_root = FilledHash(0x33);
  h.difficulty = 1000;
  h.nonce = 77;
  h.timestamp = 123456;
  return h;
}

using TxMutator = std::pair<const char*, void (*)(Transaction&)>;

const TxMutator kTxMutators[] = {
    {"sender", [](Transaction& t) { t.sender = Addr(0xAA); }},
    {"recipient", [](Transaction& t) { t.recipient = Addr(0xBB); }},
    {"kind", [](Transaction& t) { t.kind = TxKind::kContractDeploy; }},
    {"value", [](Transaction& t) { t.value = 2000; }},
    {"fee", [](Transaction& t) { t.fee = 8; }},
    {"gas_limit", [](Transaction& t) { t.gas_limit = 60000; }},
    {"nonce", [](Transaction& t) { t.nonce = 6; }},
    {"payload", [](Transaction& t) { t.payload = {0xca, 0xfe}; }},
    {"payload_truncated", [](Transaction& t) { t.payload.pop_back(); }},
    {"input_accounts",
     [](Transaction& t) { t.input_accounts = {Addr(0xCC)}; }},
    {"input_accounts_reordered",
     [](Transaction& t) {
       std::swap(t.input_accounts[0], t.input_accounts[1]);
     }},
};

TEST(CodecMutationTest, EveryTransactionFieldPerturbsAllDigests) {
  const Transaction base = BaselineTx();
  const Hash256 base_id = base.Id();
  const Hash256 base_signing = base.SigningDigest();
  const Bytes base_bytes = base.Encode();
  for (const auto& [name, mutate] : kTxMutators) {
    Transaction tx = BaselineTx();
    mutate(tx);
    EXPECT_NE(tx.Encode(), base_bytes)
        << "Encode() ignores mutated field: " << name;
    EXPECT_NE(tx.Id(), base_id) << "Id() ignores mutated field: " << name;
    EXPECT_NE(tx.SigningDigest(), base_signing)
        << "SigningDigest() ignores mutated field: " << name;
  }
}

// The signing digest is domain-separated from the id: equal inputs
// must still produce distinct commitments under the two roots, or a
// signature over one is replayable as the other.
TEST(CodecMutationTest, SigningDigestIsDomainSeparatedFromId) {
  const Transaction base = BaselineTx();
  EXPECT_NE(base.Id(), base.SigningDigest());
}

using HeaderMutator = std::pair<const char*, void (*)(BlockHeader&)>;

const HeaderMutator kHeaderMutators[] = {
    {"parent_hash",
     [](BlockHeader& h) { h.parent_hash = FilledHash(0x44); }},
    {"number", [](BlockHeader& h) { h.number = 43; }},
    {"shard_id", [](BlockHeader& h) { h.shard_id = 4; }},
    {"miner", [](BlockHeader& h) { h.miner = Addr(0xDD); }},
    {"tx_root", [](BlockHeader& h) { h.tx_root = FilledHash(0x55); }},
    {"state_root",
     [](BlockHeader& h) { h.state_root = FilledHash(0x66); }},
    {"difficulty", [](BlockHeader& h) { h.difficulty = 2000; }},
    {"nonce", [](BlockHeader& h) { h.nonce = 78; }},
    {"timestamp", [](BlockHeader& h) { h.timestamp = 123457; }},
};

TEST(CodecMutationTest, EveryHeaderFieldPerturbsEncodingAndHash) {
  const BlockHeader base = BaselineHeader();
  const Hash256 base_hash = base.Hash();
  const Bytes base_bytes = base.Encode();
  for (const auto& [name, mutate] : kHeaderMutators) {
    BlockHeader h = BaselineHeader();
    mutate(h);
    EXPECT_NE(h.Encode(), base_bytes)
        << "Encode() ignores mutated field: " << name;
    EXPECT_NE(h.Hash(), base_hash)
        << "Hash() ignores mutated field: " << name;
  }
}

// Single-bit flips in the encoded stream must also perturb the
// digests — the digest commits to the bytes, not just to field-level
// rewrites.
TEST(CodecMutationTest, BitFlipInEncodingChangesHeaderHash) {
  const BlockHeader base = BaselineHeader();
  const Bytes bytes = base.Encode();
  ASSERT_FALSE(bytes.empty());
  for (size_t i = 0; i < bytes.size(); i += 13) {
    Bytes flipped = bytes;
    flipped[i] ^= 0x01;
    EXPECT_NE(Sha256Digest(flipped), Sha256Digest(bytes))
        << "byte offset " << i;
  }
}

}  // namespace
}  // namespace shardchain
