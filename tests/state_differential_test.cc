// Randomized differential tests for the incremental authenticated
// state layer (DESIGN.md §10).
//
// The copy-on-write MerklePatriciaTrie and the journaled StateDB are
// driven through long seeded Put/Delete/Snapshot/Revert/Commit
// sequences against deliberately naive reference models:
//
//   - trie  vs  std::map<Bytes, Bytes> + a rebuild-from-scratch trie
//     (equal contents, equal root bytes, valid proofs for present and
//     absent keys at every checkpoint);
//   - StateDB vs a plain account map whose snapshots are full copies
//     (equal balances/nonces/storage, a root byte-identical to a
//     from-scratch StateDB rebuilt from the model, valid account
//     proofs).
//
// Any divergence between the O(dirty·depth) incremental path and the
// O(n) rebuild — a stale cached hash, a leaked journal entry, a COW
// node aliased across versions — fails here. The suites run under the
// ASan/UBSan and (via the shardchain_tests binary) release CI legs.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "parallel/thread_pool.h"
#include "state/statedb.h"
#include "state/trie.h"
#include "types/address.h"

namespace shardchain {
namespace {

// ------------------------------ Trie ----------------------------------

Bytes KeyFor(uint64_t n) {
  // Mix of short and long keys so leaf/extension/branch splits and
  // collapses all occur; low entropy in the first byte forces shared
  // prefixes (extension nodes).
  Bytes key;
  key.push_back(static_cast<uint8_t>(n % 7));
  key.push_back(static_cast<uint8_t>(n % 13));
  if (n % 3 != 0) key.push_back(static_cast<uint8_t>(n >> 8));
  if (n % 5 == 0) key.push_back(static_cast<uint8_t>(n >> 16));
  return key;
}

Bytes ValueFor(uint64_t n) {
  Bytes value;
  for (int i = 0; i < 1 + static_cast<int>(n % 9); ++i) {
    value.push_back(static_cast<uint8_t>(n >> (i * 4)));
  }
  return value;
}

Hash256 RebuildRoot(const std::map<Bytes, Bytes>& model) {
  MerklePatriciaTrie scratch;
  for (const auto& [key, value] : model) scratch.Put(key, value);
  return scratch.RootHash();
}

void CheckTrieAgainstModel(const MerklePatriciaTrie& trie,
                           const std::map<Bytes, Bytes>& model,
                           uint64_t probe_seed) {
  ASSERT_EQ(trie.Size(), model.size());
  // Root bytes must equal a from-scratch rebuild of the same contents.
  const Hash256 root = trie.RootHash();
  ASSERT_EQ(root, RebuildRoot(model)) << "incremental root diverged";
  // Entries come back sorted and complete.
  const auto entries = trie.Entries();
  ASSERT_EQ(entries.size(), model.size());
  auto it = model.begin();
  for (const auto& [key, value] : entries) {
    ASSERT_EQ(key, it->first);
    ASSERT_EQ(value, it->second);
    ++it;
  }
  // Proofs for a sample of present keys and for probing absent keys.
  Rng probe(probe_seed);
  for (int i = 0; i < 8; ++i) {
    const Bytes key = KeyFor(probe.Next() % 4096);
    const auto expected = trie.Get(key);
    auto model_it = model.find(key);
    ASSERT_EQ(expected.has_value(), model_it != model.end());
    if (expected.has_value()) {
      ASSERT_EQ(*expected, model_it->second);
    }
    const auto proof = trie.Prove(key);
    auto verified = MerklePatriciaTrie::VerifyProof(root, key, proof);
    ASSERT_TRUE(verified.ok()) << verified.status().ToString();
    ASSERT_EQ(*verified, expected) << "proof resolved the wrong value";
  }
}

TEST(StateDifferential, TrieMatchesMapThroughRandomOps) {
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    Rng rng(seed);
    MerklePatriciaTrie trie;
    std::map<Bytes, Bytes> model;
    for (int step = 0; step < 1200; ++step) {
      const uint64_t n = rng.Next() % 4096;
      const Bytes key = KeyFor(n);
      if (rng.UniformInt(100) < 70) {
        Bytes value = ValueFor(rng.Next());
        model[key] = value;
        trie.Put(key, std::move(value));
      } else {
        const bool removed = trie.Delete(key);
        ASSERT_EQ(removed, model.erase(key) > 0);
      }
      if (step % 150 == 149) {
        CheckTrieAgainstModel(trie, model, seed * 1000 + step);
      }
    }
    CheckTrieAgainstModel(trie, model, seed);
  }
}

TEST(StateDifferential, TrieCopiesAreIndependentVersions) {
  Rng rng(4242);
  MerklePatriciaTrie base;
  std::map<Bytes, Bytes> base_model;
  for (int i = 0; i < 300; ++i) {
    const Bytes key = KeyFor(rng.Next() % 2048);
    Bytes value = ValueFor(rng.Next());
    base_model[key] = value;
    base.Put(key, std::move(value));
  }
  const Hash256 base_root = base.RootHash();

  // An O(1) copy shares structure; divergent mutations on the copy
  // must never leak into the original (and vice versa).
  MerklePatriciaTrie fork = base;
  std::map<Bytes, Bytes> fork_model = base_model;
  for (int i = 0; i < 300; ++i) {
    const Bytes key = KeyFor(rng.Next() % 2048);
    if (rng.UniformInt(2) == 0) {
      Bytes value = ValueFor(rng.Next());
      fork_model[key] = value;
      fork.Put(key, std::move(value));
    } else {
      fork.Delete(key);
      fork_model.erase(key);
    }
  }
  EXPECT_EQ(base.RootHash(), base_root) << "fork mutated the original";
  CheckTrieAgainstModel(base, base_model, 1);
  CheckTrieAgainstModel(fork, fork_model, 2);

  // And a chain of versions each sharing with its predecessor.
  std::vector<MerklePatriciaTrie> versions;
  std::vector<Hash256> roots;
  MerklePatriciaTrie head = base;
  for (int v = 0; v < 10; ++v) {
    head.Put(KeyFor(9000 + static_cast<uint64_t>(v)), ValueFor(v));
    versions.push_back(head);
    roots.push_back(head.RootHash());
  }
  for (int v = 0; v < 10; ++v) {
    EXPECT_EQ(versions[static_cast<size_t>(v)].RootHash(), roots[static_cast<size_t>(v)]);
  }
}

// ----------------------------- StateDB --------------------------------

Address AddrFor(uint64_t n) {
  Address a;
  a.bytes[0] = static_cast<uint8_t>(n);
  a.bytes[1] = static_cast<uint8_t>(n >> 8);
  a.bytes[19] = static_cast<uint8_t>(n * 31);
  return a;
}

/// The naive reference: plain account data, snapshots as full copies —
/// exactly the semantics the journal replaces.
struct RefAccount {
  Amount balance = 0;
  uint64_t nonce = 0;
  Bytes code;
  std::map<uint64_t, int64_t> storage;
};

struct RefState {
  std::map<Address, RefAccount> accounts;
  std::vector<std::map<Address, RefAccount>> snapshots;

  RefAccount& Get(const Address& a) { return accounts[a]; }
  size_t Snapshot() {
    snapshots.push_back(accounts);
    return snapshots.size() - 1;
  }
  void RevertTo(size_t id) {
    accounts = snapshots[id];
    snapshots.resize(id);
  }
  void Commit() { snapshots.pop_back(); }
};

/// Rebuild-from-scratch root: a fresh StateDB populated with the
/// model's contents, with no shared history with the incremental one.
Hash256 RebuildRoot(const RefState& ref) {
  StateDB scratch;
  for (const auto& [addr, account] : ref.accounts) {
    Account& a = scratch.GetOrCreate(addr);
    a.balance = account.balance;
    a.nonce = account.nonce;
    a.code = account.code;
    a.storage = account.storage;
  }
  return scratch.StateRoot();
}

void CheckStateAgainstModel(const StateDB& db, const RefState& ref) {
  ASSERT_EQ(db.AccountCount(), ref.accounts.size());
  for (const auto& [addr, account] : ref.accounts) {
    ASSERT_EQ(db.BalanceOf(addr), account.balance);
    ASSERT_EQ(db.NonceOf(addr), account.nonce);
    const Account* held = db.Find(addr);
    ASSERT_NE(held, nullptr);
    ASSERT_EQ(held->code, account.code);
    ASSERT_EQ(held->storage, account.storage);
  }
  const Hash256 root = db.StateRoot();
  ASSERT_EQ(root, RebuildRoot(ref))
      << "incremental state root diverged from scratch rebuild";
  // Account proofs: a present and an absent address.
  if (!ref.accounts.empty()) {
    const Address present = ref.accounts.begin()->first;
    auto verified = StateDB::VerifyAccount(root, present,
                                           db.ProveAccount(present));
    ASSERT_TRUE(verified.ok()) << verified.status().ToString();
    ASSERT_TRUE(verified->has_value());
    ASSERT_EQ(**verified, db.Find(present)->Digest(present));
  }
  Address absent;
  absent.bytes.fill(0xfe);
  auto absent_proof = StateDB::VerifyAccount(root, absent,
                                             db.ProveAccount(absent));
  ASSERT_TRUE(absent_proof.ok()) << absent_proof.status().ToString();
  ASSERT_FALSE(absent_proof->has_value());
}

TEST(StateDifferential, StateDBMatchesModelThroughSnapshotsAndReverts) {
  for (uint64_t seed : {7ull, 77ull, 777ull}) {
    Rng rng(seed);
    StateDB db;
    RefState ref;
    std::vector<size_t> live_snaps;
    for (int step = 0; step < 900; ++step) {
      const Address addr = AddrFor(rng.Next() % 64);
      switch (rng.UniformInt(10)) {
        case 0:
        case 1:
        case 2: {  // Mint.
          const Amount amount = 1 + rng.UniformInt(1000);
          db.Mint(addr, amount);
          ref.Get(addr).balance += amount;
          break;
        }
        case 3: {  // Transfer (may legitimately fail).
          const Address to = AddrFor(rng.Next() % 64);
          const Amount amount = 1 + rng.UniformInt(500);
          const bool ok = db.Transfer(addr, to, amount).ok();
          const bool ref_ok = ref.Get(addr).balance >= amount;
          ASSERT_EQ(ok, ref_ok);
          if (ok) {
            ref.Get(addr).balance -= amount;
            ref.Get(to).balance += amount;
          }
          break;
        }
        case 4: {  // Nonce bump through the mutable accessor.
          db.GetOrCreate(addr).nonce += 1;
          ref.Get(addr).nonce += 1;
          break;
        }
        case 5:
        case 6: {  // Contract storage write.
          const uint64_t key = rng.Next() % 16;
          const int64_t value = static_cast<int64_t>(rng.Next() % 1000);
          db.StorageSet(addr, key, value);
          ref.Get(addr).storage[key] = value;
          break;
        }
        case 7: {  // Snapshot.
          const size_t id = db.Snapshot();
          ASSERT_EQ(id, ref.Snapshot());
          live_snaps.push_back(id);
          break;
        }
        case 8: {  // Revert to a random live snapshot.
          if (live_snaps.empty()) break;
          const size_t pick = rng.UniformInt(live_snaps.size());
          const size_t id = live_snaps[pick];
          ASSERT_TRUE(db.RevertTo(id).ok());
          ref.RevertTo(id);
          live_snaps.resize(pick);
          // Ids at or above the reverted one are dead now.
          ASSERT_TRUE(db.RevertTo(id).IsOutOfRange());
          break;
        }
        default: {  // Commit the innermost snapshot.
          if (live_snaps.empty()) break;
          ASSERT_TRUE(db.Commit(live_snaps.back()).ok());
          ref.Commit();
          live_snaps.pop_back();
          break;
        }
      }
      if (step % 90 == 89) CheckStateAgainstModel(db, ref);
    }
    CheckStateAgainstModel(db, ref);
  }
}

TEST(StateDifferential, ParallelDigestBatchMatchesSerial) {
  // The batch digest recompute must be bitwise-identical at any thread
  // count (§9 contract): drive two StateDBs through the same mutation
  // stream, one serial, one with a pool, and compare roots repeatedly.
  ThreadPool pool(4);
  StateDB serial;
  StateDB parallel;
  parallel.SetThreadPool(&pool);
  Rng rng(31337);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 200; ++i) {
      const Address addr = AddrFor(rng.Next() % 500);
      const Amount amount = 1 + rng.UniformInt(100);
      serial.Mint(addr, amount);
      parallel.Mint(addr, amount);
      if (i % 5 == 0) {
        const uint64_t key = rng.Next() % 8;
        const int64_t value = static_cast<int64_t>(rng.Next() % 100);
        serial.StorageSet(addr, key, value);
        parallel.StorageSet(addr, key, value);
      }
    }
    ASSERT_EQ(serial.StateRoot(), parallel.StateRoot())
        << "thread count leaked into root bytes at round " << round;
  }
}

TEST(StateDifferential, CopiedStateDBForksIndependently) {
  StateDB base;
  for (uint64_t i = 0; i < 200; ++i) base.Mint(AddrFor(i), 1000 + i);
  const Hash256 base_root = base.StateRoot();

  StateDB fork = base;  // Shares the trie structurally.
  fork.Mint(AddrFor(3), 5);
  fork.GetOrCreate(AddrFor(7)).nonce = 9;
  EXPECT_NE(fork.StateRoot(), base_root);
  EXPECT_EQ(base.StateRoot(), base_root) << "fork wrote through the copy";

  // The fork's root equals a scratch rebuild of the fork's contents.
  RefState ref;
  for (uint64_t i = 0; i < 200; ++i) {
    ref.Get(AddrFor(i)).balance = 1000 + i;
  }
  ref.Get(AddrFor(3)).balance += 5;
  ref.Get(AddrFor(7)).nonce = 9;
  EXPECT_EQ(fork.StateRoot(), RebuildRoot(ref));
}

TEST(StateDifferential, CommitRequiresInnermostSnapshot) {
  StateDB db;
  db.Mint(AddrFor(1), 100);
  const size_t outer = db.Snapshot();
  const size_t inner = db.Snapshot();
  EXPECT_TRUE(db.Commit(outer).IsInvalidArgument());
  EXPECT_TRUE(db.Commit(inner + 7).IsOutOfRange());
  EXPECT_TRUE(db.Commit(inner).ok());
  db.Mint(AddrFor(1), 1);
  EXPECT_TRUE(db.RevertTo(outer).ok());
  EXPECT_EQ(db.BalanceOf(AddrFor(1)), 100u);
  EXPECT_EQ(db.SnapshotDepth(), 0u);
}

}  // namespace
}  // namespace shardchain
