#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/gossip.h"

namespace shardchain {
namespace {

Bytes Payload(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(GossipTest, TopologyIsConnected) {
  for (size_t n : {1u, 2u, 3u, 10u, 64u, 200u}) {
    Rng rng(n);
    GossipNetwork net(n, {}, &rng);
    EXPECT_TRUE(net.IsConnected()) << n << " nodes";
    EXPECT_EQ(net.NodeCount(), n);
  }
}

TEST(GossipTest, FloodReachesEveryNode) {
  Rng rng(1);
  GossipNetwork net(50, {}, &rng);
  EventQueue queue;
  std::set<NodeId> reached;
  net.SetHandler([&](NodeId node, const Bytes&, SimTime) {
    reached.insert(node);
  });
  net.Publish(0, Payload("block"), &queue);
  queue.RunAll();
  EXPECT_EQ(reached.size(), 50u);
}

TEST(GossipTest, EachNodeDeliversOnce) {
  Rng rng(2);
  GossipNetwork net(30, {}, &rng);
  EventQueue queue;
  std::vector<int> deliveries(30, 0);
  net.SetHandler([&](NodeId node, const Bytes&, SimTime) {
    ++deliveries[node];
  });
  net.Publish(5, Payload("x"), &queue);
  queue.RunAll();
  for (int d : deliveries) EXPECT_EQ(d, 1);
}

TEST(GossipTest, DistinctMessagesFloodIndependently) {
  Rng rng(3);
  GossipNetwork net(20, {}, &rng);
  EventQueue queue;
  int deliveries = 0;
  net.SetHandler([&](NodeId, const Bytes&, SimTime) { ++deliveries; });
  const Hash256 a = net.Publish(0, Payload("a"), &queue);
  const Hash256 b = net.Publish(7, Payload("b"), &queue);
  EXPECT_NE(a, b);
  queue.RunAll();
  EXPECT_EQ(deliveries, 40);
}

TEST(GossipTest, MessageCostIsBoundedByEdges) {
  Rng rng(4);
  GossipConfig config;
  config.degree = 3;
  GossipNetwork net(40, config, &rng);
  EventQueue queue;
  net.Publish(0, Payload("m"), &queue);
  queue.RunAll();
  // Flooding sends at most one message per directed edge.
  size_t directed_edges = 0;
  for (const auto& adj : net.adjacency()) directed_edges += adj.size();
  EXPECT_LE(net.MessagesSent(), directed_edges);
  EXPECT_GT(net.MessagesSent(), 0u);
}

TEST(GossipTest, ArrivalTimesRespectLatency) {
  Rng rng(5);
  GossipConfig config;
  config.deterministic_latency = true;
  config.link_latency = 0.5;
  GossipNetwork net(16, config, &rng);
  EventQueue queue;
  const auto report = net.MeasureSpread(0, Payload("m"), &queue);
  EXPECT_EQ(report.reached, 16u);
  // With 0.5 s hops, everything arrives at a multiple of 0.5 and the
  // farthest node needs at least one hop.
  EXPECT_GE(report.time_to_all, 0.5);
  EXPECT_LE(report.time_to_half, report.time_to_all);
}

TEST(GossipTest, SpreadTimeGrowsSlowlyWithSize) {
  // Time-to-all should grow like the graph diameter (~log n with the
  // random links), far slower than linearly.
  GossipConfig config;
  config.deterministic_latency = true;
  config.link_latency = 0.1;
  Rng rng_small(6);
  Rng rng_large(7);
  GossipNetwork small(20, config, &rng_small);
  GossipNetwork large(320, config, &rng_large);
  EventQueue q1, q2;
  const auto rs = small.MeasureSpread(0, Payload("m"), &q1);
  const auto rl = large.MeasureSpread(0, Payload("m"), &q2);
  EXPECT_EQ(rl.reached, 320u);
  // 16x more nodes should cost far less than 16x the time.
  EXPECT_LT(rl.time_to_all, 4.0 * rs.time_to_all + 0.5);
}

TEST(GossipTest, DeterministicGivenSeed) {
  GossipConfig config;
  Rng r1(8);
  Rng r2(8);
  GossipNetwork a(25, config, &r1);
  GossipNetwork b(25, config, &r2);
  EXPECT_EQ(a.adjacency(), b.adjacency());
  EventQueue q1, q2;
  const auto ra = a.MeasureSpread(3, Payload("m"), &q1);
  const auto rb = b.MeasureSpread(3, Payload("m"), &q2);
  EXPECT_DOUBLE_EQ(ra.time_to_all, rb.time_to_all);
  EXPECT_EQ(ra.messages, rb.messages);
}

TEST(GossipTest, SingleNodeTrivialSpread) {
  Rng rng(9);
  GossipNetwork net(1, {}, &rng);
  EventQueue queue;
  const auto report = net.MeasureSpread(0, Payload("m"), &queue);
  EXPECT_EQ(report.reached, 1u);
  EXPECT_DOUBLE_EQ(report.time_to_all, 0.0);
  EXPECT_EQ(report.messages, 0u);
}

}  // namespace
}  // namespace shardchain
