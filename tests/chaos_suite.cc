// Seeded chaos suite (ctest label: chaos): randomized fault schedules
// against the epoch liveness simulator, asserting the no-split
// invariant — after every epoch, ALL honest live miners hold either a
// byte-identical codec-encoded plan or the identical MaxShard
// fallback, never a mixture. Schedules stay inside the recoverable
// envelope the harness guarantees: at most 1/3 of miners crashed or
// islanded, per-link drop probability at most 30%, and partitions that
// heal before the decision deadline.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/churn.h"
#include "core/migration.h"
#include "core/sharding_system.h"
#include "core/unification_codec.h"
#include "sim/liveness.h"
#include "sim/workload.h"

namespace shardchain {
namespace {

LivenessConfig ChaosConfig() {
  LivenessConfig config;
  config.num_miners = 18;
  config.gossip.deterministic_latency = true;
  return config;
}

/// Draws a fault schedule inside the recoverable envelope. `ranking`
/// lets the schedule target real would-be leaders.
FaultConfig DrawFaults(const LivenessConfig& config, Rng* rng,
                       const std::vector<NodeId>& ranking) {
  FaultConfig faults;
  faults.drop_probability = 0.30 * rng->UniformDouble();
  faults.duplicate_probability = 0.20 * rng->UniformDouble();
  faults.delay_multiplier_max = 1.0 + 1.5 * rng->UniformDouble();

  const size_t n = config.num_miners;
  const size_t max_faulty = n / 3;  // Crashed + islanded together.
  size_t budget = rng->UniformInt(max_faulty + 1);

  // Crashes: half the budget, biased toward the top of the failover
  // ranking so leader deaths actually happen. Crash instants range
  // over the whole epoch (beacon phases, broadcast slots, decision).
  std::set<NodeId> faulty;
  const size_t num_crashes = rng->UniformInt(budget / 2 + 1);
  for (size_t i = 0; i < num_crashes; ++i) {
    const NodeId victim = rng->Bernoulli(0.5) && i < ranking.size()
                              ? ranking[i]
                              : static_cast<NodeId>(rng->UniformInt(n));
    if (!faulty.insert(victim).second) continue;
    const double when = config.decision_deadline * rng->UniformDouble();
    faults.crashes.push_back({victim, when});
  }
  budget -= std::min(budget, faults.crashes.size());

  // One partition window islanding the remaining budget, healing at
  // least 2 s before the decision deadline so repair can cross.
  if (budget > 0 && rng->Bernoulli(0.7)) {
    PartitionWindow window;
    window.start =
        rng->UniformDouble() * (config.decision_deadline - 4.0);
    window.end = window.start +
                 rng->UniformDouble() *
                     (config.decision_deadline - 2.0 - window.start);
    while (window.island.size() < budget) {
      const NodeId node = static_cast<NodeId>(rng->UniformInt(n));
      if (!faulty.insert(node).second) continue;
      window.island.push_back(node);
    }
    if (!window.island.empty()) faults.partitions.push_back(window);
  }
  return faults;
}

/// The no-split invariant: every live miner's decision is identical.
void AssertNoSplit(const EpochOutcome& out, uint64_t seed, int epoch) {
  ASSERT_TRUE(out.converged)
      << "SPLIT at chaos seed " << seed << " epoch " << epoch;
  const MinerDecision* ref = nullptr;
  size_t live = 0;
  for (const MinerDecision& d : out.decisions) {
    if (!d.live) continue;
    ++live;
    if (ref == nullptr) {
      ref = &d;
      continue;
    }
    ASSERT_EQ(d.fallback, ref->fallback)
        << "fallback split at seed " << seed << " epoch " << epoch;
    ASSERT_EQ(d.plan, ref->plan)
        << "plan bytes split at seed " << seed << " epoch " << epoch;
    ASSERT_EQ(d.randomness, ref->randomness)
        << "randomness split at seed " << seed << " epoch " << epoch;
  }
  ASSERT_GT(live, 0u) << "envelope must leave live miners (seed " << seed
                      << ")";
}

TEST(ChaosSuite, TwentyFiveSeededSchedulesNeverSplit) {
  const LivenessConfig config = ChaosConfig();
  size_t fallback_epochs = 0;
  size_t view_changes = 0;
  size_t lossy_epochs = 0;

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    EpochLivenessSim sim(config, seed);
    Rng rng(0x9e3779b97f4a7c15ull ^ seed);
    for (int epoch = 0; epoch < 3; ++epoch) {
      const std::vector<NodeId> ranking = sim.NextRanking();
      const FaultConfig fault_config = DrawFaults(config, &rng, ranking);
      FaultPlan plan(fault_config, seed * 1000 + epoch);
      const EpochOutcome out = sim.RunEpoch(&plan);

      AssertNoSplit(out, seed, epoch);
      for (const MinerDecision& d : out.decisions) {
        if (!d.live) continue;
        if (d.fallback) {
          ++fallback_epochs;
        } else if (d.view > 0) {
          ++view_changes;
        }
        break;
      }
      if (out.messages_lost > 0) ++lossy_epochs;
    }
  }
  // The envelope must actually exercise the recovery paths, not just
  // happy-path epochs.
  EXPECT_GT(lossy_epochs, 10u) << "schedules too gentle to mean anything";
  EXPECT_GT(view_changes + fallback_epochs, 0u)
      << "no schedule ever dethroned a leader";
}

TEST(ChaosSuite, SameSeedSameOutcomeByteForByte) {
  const LivenessConfig config = ChaosConfig();
  auto run = [&config]() {
    EpochLivenessSim sim(config, 42);
    Rng rng(42);
    std::vector<Bytes> plans;
    for (int epoch = 0; epoch < 2; ++epoch) {
      const FaultConfig fault_config =
          DrawFaults(config, &rng, sim.NextRanking());
      FaultPlan plan(fault_config, 4242 + epoch);
      const EpochOutcome out = sim.RunEpoch(&plan);
      for (const MinerDecision& d : out.decisions) {
        plans.push_back(d.plan);
      }
    }
    return plans;
  };
  EXPECT_EQ(run(), run()) << "chaos runs must be reproducible from seeds";
}

TEST(ChaosSuite, LeaderKilledMidBroadcastRecoversByViewChange) {
  // The acceptance-criterion schedule: the elected leader dies exactly
  // at its broadcast instant (its own publish is suppressed — the
  // flood never starts), under simultaneous message loss. The network
  // must recover via view change, not fallback, and not split.
  const LivenessConfig config = ChaosConfig();
  EpochLivenessSim sim(config, 7);
  const std::vector<NodeId> ranking = sim.NextRanking();
  ASSERT_GE(ranking.size(), 2u);

  FaultConfig faults;
  faults.drop_probability = 0.25;
  faults.crashes = {{ranking[0], config.ViewBroadcastTime(0)}};
  FaultPlan plan(faults, 77);
  const EpochOutcome out = sim.RunEpoch(&plan);

  AssertNoSplit(out, 7, 0);
  EXPECT_FALSE(out.decisions[ranking[0]].live);
  bool saw_live = false;
  for (const MinerDecision& d : out.decisions) {
    if (!d.live) continue;
    saw_live = true;
    EXPECT_FALSE(d.fallback) << "view change, not fallback, must recover";
    EXPECT_EQ(d.view, 1u);
  }
  EXPECT_TRUE(saw_live);
  EXPECT_EQ(sim.epochs().Current()->view, 1u);
  EXPECT_GT(out.messages_lost, 0u);
}

TEST(ChaosSuite, PartitionAcrossBroadcastHealsWithoutSplit) {
  // A third of the miners are islanded across the view-0 broadcast
  // slot; after the heal, anti-entropy must deliver the SAME view-0
  // broadcast to the island — not leave it to fall back.
  const LivenessConfig config = ChaosConfig();
  EpochLivenessSim sim(config, 11);
  const std::vector<NodeId> ranking = sim.NextRanking();

  PartitionWindow window;
  window.start = config.beacon_reveal_close;
  window.end = config.decision_deadline - 3.0;
  for (NodeId n = 0; window.island.size() < config.num_miners / 3; ++n) {
    if (n == ranking[0]) continue;  // Keep the leader on the main side.
    window.island.push_back(n);
  }
  FaultConfig faults;
  faults.partitions = {window};
  FaultPlan plan(faults, 111);
  const EpochOutcome out = sim.RunEpoch(&plan);

  AssertNoSplit(out, 11, 0);
  for (const MinerDecision& d : out.decisions) {
    EXPECT_TRUE(d.live);
    EXPECT_FALSE(d.fallback) << "healed island must catch up, not fall back";
    EXPECT_EQ(d.view, 0u);
  }
  EXPECT_GT(out.repair_sends + out.retransmissions, 0u)
      << "recovery traffic must have crossed the healed boundary";
}

// ------------------------- Churn chaos (§12) ---------------------------

/// Islands up to `budget` live miners across a window that heals at
/// least 2 s before the decision deadline, skipping the given victims.
void AddHealingPartition(const LivenessConfig& config,
                         const std::vector<NodeId>& live,
                         const std::set<NodeId>& skip, size_t budget,
                         Rng* rng, FaultConfig* faults) {
  if (budget == 0) return;
  PartitionWindow window;
  window.start = rng->UniformDouble() * (config.decision_deadline - 5.0);
  window.end =
      window.start +
      rng->UniformDouble() * (config.decision_deadline - 2.0 - window.start);
  for (NodeId n : live) {
    if (window.island.size() >= budget) break;
    if (skip.count(n) > 0) continue;
    if (rng->Bernoulli(0.5)) window.island.push_back(n);
  }
  if (!window.island.empty()) faults->partitions.push_back(window);
}

TEST(ChaosSuite, ChurnSchedulesWithPartitionHealNeverSplit) {
  // Seeded churn (joins, voluntary leaves, mid-epoch crash-stops drawn
  // from core/churn.h) composed with partition-heal schedules: across
  // 25 seeds x 3 epochs the no-split invariant must hold on the codec
  // bytes every surviving miner decides on.
  const LivenessConfig config = ChaosConfig();
  ChurnConfig churn;
  churn.join_rate = 0.6;
  churn.retire_probability = 0.05;
  churn.crash_probability = 0.05;
  churn.min_live_miners = 12;
  churn.max_joins_per_epoch = 2;

  size_t joins = 0;
  size_t leaves = 0;
  size_t crashes = 0;
  size_t islanded_epochs = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    EpochLivenessSim sim(config, seed);
    Rng rng(0x636875726eull ^ seed);
    for (int epoch = 0; epoch < 3; ++epoch) {
      FaultConfig faults;
      faults.drop_probability = 0.25 * rng.UniformDouble();

      const std::vector<ChurnEvent> events = DrawChurnEvents(
          churn, /*seed=*/seed * 31 + 7, epoch, sim.LiveMiners());
      sim.ApplyChurn(events, &faults);
      sim.AppendDepartureCrashes(&faults);
      std::set<NodeId> mid_epoch_victims;
      for (const ChurnEvent& e : events) {
        switch (e.kind) {
          case ChurnEventKind::kJoin: ++joins; break;
          case ChurnEventKind::kRetire: ++leaves; break;
          case ChurnEventKind::kCrash:
            ++crashes;
            mid_epoch_victims.insert(e.node);
            break;
        }
      }

      // Partition-heal on top, staying inside the recoverable envelope:
      // crashed + islanded together at most 1/3 of the live population.
      const std::vector<NodeId> live = sim.LiveMiners();
      const size_t envelope = live.size() / 3;
      if (envelope > mid_epoch_victims.size()) {
        const size_t before = faults.partitions.size();
        AddHealingPartition(config, live, mid_epoch_victims,
                            envelope - mid_epoch_victims.size(), &rng,
                            &faults);
        if (faults.partitions.size() > before) ++islanded_epochs;
      }

      FaultPlan plan(faults, seed * 1009 + epoch);
      const EpochOutcome out = sim.RunEpoch(&plan);
      AssertNoSplit(out, seed, epoch);
    }
  }
  // The schedules must genuinely churn AND island, not degenerate into
  // happy-path epochs.
  EXPECT_GT(joins, 10u) << "schedules drew no joins";
  EXPECT_GT(leaves + crashes, 10u) << "schedules drew no departures";
  EXPECT_GT(islanded_epochs, 25u) << "schedules never partitioned";
}

TEST(ChaosSuite, ChurnRunsAreByteReproducible) {
  // Same seeds, same churn, same faults: every miner's decided plan
  // bytes must be identical across independent process-local reruns.
  const LivenessConfig config = ChaosConfig();
  ChurnConfig churn;
  churn.join_rate = 1.0;
  churn.retire_probability = 0.1;
  churn.crash_probability = 0.08;
  churn.min_live_miners = 12;
  auto run = [&config, &churn]() {
    EpochLivenessSim sim(config, 99);
    Rng rng(99);
    std::vector<Bytes> plans;
    for (int epoch = 0; epoch < 3; ++epoch) {
      FaultConfig faults;
      faults.drop_probability = 0.2 * rng.UniformDouble();
      sim.ApplyChurn(
          DrawChurnEvents(churn, 99, epoch, sim.LiveMiners()), &faults);
      sim.AppendDepartureCrashes(&faults);
      FaultPlan plan(faults, 990 + epoch);
      const EpochOutcome out = sim.RunEpoch(&plan);
      for (const MinerDecision& d : out.decisions) {
        if (d.live) plans.push_back(d.plan);
      }
    }
    return plans;
  };
  EXPECT_EQ(run(), run()) << "churn runs must be reproducible from seeds";
}

TEST(ChaosSuite, ShardingChurnMigrationInvariantsOverSeeds) {
  // The full system under seeded churn + drifting workload, 25 seeds:
  // every accepted cross-shard migration must re-verify against its
  // source root, and a rerun of the same seed must produce the same
  // epoch-record and migration-plan bytes.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto run = [seed]() {
      ShardingSystemConfig config;
      config.chain.max_txs_per_block = 32;
      ShardingSystem system(config, seed);
      for (int i = 0; i < 8; ++i) system.AddMiner();

      std::vector<Address> contracts;
      for (uint8_t c = 1; c <= 3; ++c) {
        Address creator;
        creator.bytes.fill(c);
        Result<Address> deployed = system.DeployContract(
            creator, contracts::UnconditionalTransfer(creator));
        EXPECT_TRUE(deployed.ok());
        contracts.push_back(*deployed);
      }
      std::vector<Address> senders;
      std::vector<size_t> homes;
      std::vector<uint64_t> nonces;
      for (uint8_t u = 0; u < 5; ++u) {
        Address s;
        s.bytes.fill(static_cast<uint8_t>(0x30 + u));
        senders.push_back(s);
        system.Mint(s, 1'000'000);
        homes.push_back(u % contracts.size());
        nonces.push_back(0);
      }

      ChurnConfig churn;
      churn.join_rate = 0.8;
      churn.retire_probability = 0.1;
      churn.crash_probability = 0.1;
      churn.min_live_miners = 4;

      std::vector<Bytes> bytes;
      for (uint64_t epoch = 0; epoch < 4; ++epoch) {
        EXPECT_TRUE(
            system
                .ApplyChurn(DrawChurnEvents(churn, seed * 7 + 1, epoch,
                                            system.LiveMiners()))
                .ok());
        if (system.EpochDegraded()) {
          EXPECT_TRUE(system.BeginFallbackEpoch().ok());
        } else {
          EXPECT_TRUE(system.BeginEpoch(epoch).ok());
        }
        bytes.push_back(
            codec::EncodeEpochRecord(*system.epochs().Current()));

        Rng workload(seed * 1000 + epoch);
        for (size_t u = 0; u < senders.size(); ++u) {
          if (workload.Bernoulli(0.4)) {
            homes[u] = (homes[u] + 1) % contracts.size();
          }
          Transaction tx;
          tx.kind = TxKind::kContractCall;
          tx.sender = senders[u];
          tx.recipient = contracts[homes[u]];
          tx.value = 10;
          tx.fee = 1 + workload.UniformInt(20);
          tx.nonce = nonces[u]++;
          Result<ShardId> routed = system.SubmitTransaction(tx);
          EXPECT_TRUE(routed.ok()) << routed.status().message();
        }
        for (NodeId m : system.LiveMiners()) {
          EXPECT_TRUE(system.MineBlock(m).ok());
        }
        bytes.push_back(
            codec::EncodeMigrationPlan(system.EpochMigrationPlan()));
      }
      for (const HandoffRecord& record : system.MigrationLog()) {
        EXPECT_TRUE(VerifyHandoff(record).ok())
            << "accepted migration fails re-verification at seed " << seed;
      }
      return bytes;
    };
    EXPECT_EQ(run(), run()) << "seed " << seed << " is not reproducible";
  }
}

}  // namespace
}  // namespace shardchain
