// Golden-vector pinning of the unification codec outputs: five fixed
// scenarios whose encoded unified parameters, merge plan, and
// selection plan are committed as hex snapshots under tests/vectors/.
// Any change to the codecs, the games' RNG consumption, or the
// parallel chunking that shifts a single byte fails here — exactly the
// changes that would fork miners in deployment (Sec. IV-C).
//
// Regenerate deliberately with:
//   SHARDCHAIN_REGEN_VECTORS=1 ./shardchain_tests
//   --gtest_filter='GoldenVectors.*'

#include <array>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/rng.h"
#include "core/unification.h"
#include "core/unification_codec.h"

namespace shardchain {
namespace {

#ifndef SHARDCHAIN_TEST_VECTOR_DIR
#error "SHARDCHAIN_TEST_VECTOR_DIR must point at tests/vectors"
#endif

/// The five pinned scenarios. Every field is a literal or derived from
/// a fixed-seed Rng, so the inputs can never drift.
UnifiedParameters Scenario(int k) {
  UnifiedParameters params;
  params.randomness = Sha256Digest("golden.scenario." + std::to_string(k));
  switch (k) {
    case 0:
      // Degenerate: nothing to merge, nothing to select.
      break;
    case 1:
      // Two small shards that can just reach L together; one miner.
      params.shard_sizes = {12, 9};
      params.tx_fees = {5, 5, 3};
      params.num_miners = 1;
      break;
    case 2: {
      // A typical mid-size epoch.
      params.shard_sizes = {3, 7, 11, 15, 19, 8};
      Rng rng(2222);
      for (int t = 0; t < 30; ++t) {
        params.tx_fees.push_back(static_cast<Amount>(1 + rng.Zipf(40, 1.2)));
      }
      params.num_miners = 5;
      params.select_config.capacity = 6;
      break;
    }
    case 3: {
      // Ample shards with minimal-coalition preference.
      params.shard_sizes = {18, 17, 16, 15, 14, 13, 12, 11, 10, 9};
      params.merge_config.prefer_minimal_coalition = true;
      Rng rng(3333);
      for (int t = 0; t < 100; ++t) {
        params.tx_fees.push_back(static_cast<Amount>(1 + rng.UniformInt(25)));
      }
      params.num_miners = 8;
      break;
    }
    default: {
      // Stress: capacity above the tx count, heavy fee ties.
      params.shard_sizes = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 4, 6};
      params.tx_fees = {7, 7, 7, 7, 2, 2, 9};
      params.num_miners = 11;
      params.select_config.capacity = 50;
      params.merge_config.subslots = 16;
      break;
    }
  }
  return params;
}

std::array<std::string, 3> ComputeHexLines(const UnifiedParameters& params) {
  return {HexEncode(codec::EncodeUnifiedParameters(params)),
          HexEncode(codec::EncodeMergePlan(ComputeMergePlan(params))),
          HexEncode(codec::EncodeSelectionPlan(ComputeSelectionPlan(params)))};
}

std::string VectorPath(int k) {
  return std::string(SHARDCHAIN_TEST_VECTOR_DIR) + "/scenario" +
         std::to_string(k) + ".hex";
}

void CheckScenario(int k) {
  const std::array<std::string, 3> lines = ComputeHexLines(Scenario(k));
  const std::string path = VectorPath(k);
  if (std::getenv("SHARDCHAIN_REGEN_VECTORS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : lines) out << line << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden vector " << path
                         << " (regenerate with SHARDCHAIN_REGEN_VECTORS=1)";
  const char* kLabels[3] = {"unified parameters", "merge plan",
                            "selection plan"};
  for (int i = 0; i < 3; ++i) {
    std::string expected;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, expected)))
        << path << " truncated at line " << i;
    EXPECT_EQ(lines[i], expected)
        << kLabels[i] << " bytes changed for scenario " << k
        << " — a consensus-visible encoding moved";
  }
}

TEST(GoldenVectors, Scenario0EmptyInputs) { CheckScenario(0); }
TEST(GoldenVectors, Scenario1TwoShardsOneMiner) { CheckScenario(1); }
TEST(GoldenVectors, Scenario2TypicalEpoch) { CheckScenario(2); }
TEST(GoldenVectors, Scenario3AmpleMinimalCoalition) { CheckScenario(3); }
TEST(GoldenVectors, Scenario4StressTiesAndOvercapacity) { CheckScenario(4); }

}  // namespace
}  // namespace shardchain
