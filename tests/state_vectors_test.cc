// Golden-vector pinning of the state-root commitment: five fixed
// account-state scenarios whose roots are committed as hex snapshots
// under tests/vectors/state<k>.hex. The state root goes into every
// block header, so any change to the account digest encoding, the trie
// node serialization, or the incremental update path that shifts a
// single byte forks the chain — and fails here first (DESIGN.md §10).
//
// Each file holds one root per checkpoint of its scenario, so the
// vectors pin intermediate roots (mid-mutation, post-revert), not just
// the final one.
//
// Regenerate deliberately with:
//   SHARDCHAIN_REGEN_VECTORS=1 ./shardchain_tests
//   --gtest_filter='StateVectors.*'

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "state/statedb.h"
#include "types/address.h"

namespace shardchain {
namespace {

#ifndef SHARDCHAIN_TEST_VECTOR_DIR
#error "SHARDCHAIN_TEST_VECTOR_DIR must point at tests/vectors"
#endif

Address VecAddr(uint64_t n) {
  Address a;
  a.bytes[0] = static_cast<uint8_t>(n);
  a.bytes[1] = static_cast<uint8_t>(n >> 8);
  a.bytes[19] = static_cast<uint8_t>(n * 131);
  return a;
}

/// Runs scenario `k`, collecting the root hex at each checkpoint.
/// Every input is a literal or drawn from a fixed-seed Rng, so the
/// byte stream can never drift.
std::vector<std::string> ScenarioRoots(int k) {
  std::vector<std::string> roots;
  StateDB db;
  auto checkpoint = [&] { roots.push_back(db.StateRoot().ToHex()); };
  switch (k) {
    case 0: {
      // Degenerate: the empty state, then a single empty account.
      checkpoint();
      db.GetOrCreate(VecAddr(0));
      checkpoint();
      break;
    }
    case 1: {
      // A handful of plain balance accounts.
      for (uint64_t i = 0; i < 5; ++i) db.Mint(VecAddr(i), 1000 * (i + 1));
      checkpoint();
      EXPECT_TRUE(db.Transfer(VecAddr(4), VecAddr(0), 1234).ok()) << k;
      checkpoint();
      break;
    }
    case 2: {
      // Contract-shaped accounts: code, storage, nonces.
      for (uint64_t i = 0; i < 3; ++i) {
        Account& a = db.GetOrCreate(VecAddr(10 + i));
        a.balance = 77 * (i + 1);
        a.nonce = i;
        a.code = Bytes{0x01, 0x02, static_cast<uint8_t>(i)};
        for (uint64_t s = 0; s < 4; ++s) {
          a.storage[s] = static_cast<int64_t>(i * 100 + s);
        }
      }
      checkpoint();
      db.StorageSet(VecAddr(11), 2, -5);
      checkpoint();
      break;
    }
    case 3: {
      // Snapshot/revert: the post-revert root must land back on the
      // pre-snapshot bytes, and the committed branch must pin too.
      for (uint64_t i = 0; i < 8; ++i) db.Mint(VecAddr(i), 50 + i);
      checkpoint();
      const size_t snap = db.Snapshot();
      db.Mint(VecAddr(3), 999);
      db.GetOrCreate(VecAddr(100)).nonce = 7;
      checkpoint();
      EXPECT_TRUE(db.RevertTo(snap).ok()) << k;
      checkpoint();
      const size_t snap2 = db.Snapshot();
      db.Mint(VecAddr(5), 11);
      EXPECT_TRUE(db.Commit(snap2).ok()) << k;
      checkpoint();
      break;
    }
    default: {
      // Stress: 200 seeded accounts with mixed mutations and deletions
      // of storage slots, checkpointed every 50 ops.
      Rng rng(5555);
      for (int op = 0; op < 200; ++op) {
        const Address addr = VecAddr(rng.Next() % 60);
        switch (rng.UniformInt(4)) {
          case 0:
            db.Mint(addr, 1 + rng.UniformInt(10000));
            break;
          case 1:
            db.GetOrCreate(addr).nonce += 1;
            break;
          case 2:
            db.StorageSet(addr, rng.Next() % 16,
                          static_cast<int64_t>(rng.Next() % 512));
            break;
          default: {
            Account& a = db.GetOrCreate(addr);
            a.code.push_back(static_cast<uint8_t>(rng.Next()));
            break;
          }
        }
        if (op % 50 == 49) checkpoint();
      }
      break;
    }
  }
  return roots;
}

std::string StateVectorPath(int k) {
  return std::string(SHARDCHAIN_TEST_VECTOR_DIR) + "/state" +
         std::to_string(k) + ".hex";
}

void CheckScenario(int k) {
  const std::vector<std::string> roots = ScenarioRoots(k);
  if (testing::Test::HasFailure()) return;
  const std::string path = StateVectorPath(k);
  if (std::getenv("SHARDCHAIN_REGEN_VECTORS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& root : roots) out << root << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden vector " << path
                         << " (regenerate with SHARDCHAIN_REGEN_VECTORS=1)";
  for (size_t i = 0; i < roots.size(); ++i) {
    std::string expected;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, expected)))
        << path << " truncated at checkpoint " << i;
    EXPECT_EQ(roots[i], expected)
        << "state root bytes changed at checkpoint " << i << " of scenario "
        << k << " — a consensus-visible commitment moved";
  }
  std::string extra;
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)))
      << path << " has more checkpoints than the scenario produced";
}

TEST(StateVectors, Scenario0EmptyAndSingleAccount) { CheckScenario(0); }
TEST(StateVectors, Scenario1PlainBalances) { CheckScenario(1); }
TEST(StateVectors, Scenario2ContractAccounts) { CheckScenario(2); }
TEST(StateVectors, Scenario3SnapshotRevertCommit) { CheckScenario(3); }
TEST(StateVectors, Scenario4SeededStress) { CheckScenario(4); }

}  // namespace
}  // namespace shardchain
