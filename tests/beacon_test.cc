#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/beacon.h"

namespace shardchain {
namespace {

Bytes Share(uint64_t n) {
  Bytes b;
  AppendUint64(&b, n);
  return b;
}

TEST(BeaconTest, HappyPathProducesVerifiableOutput) {
  RandomnessBeacon beacon(3);
  std::map<NodeId, Hash256> commitments;
  std::map<NodeId, Bytes> reveals;
  for (NodeId n = 0; n < 4; ++n) {
    const Bytes share = Share(100 + n);
    const Hash256 c = RandomnessBeacon::CommitmentFor(share);
    ASSERT_TRUE(beacon.Commit(n, c).ok());
    commitments[n] = c;
    reveals[n] = share;
  }
  ASSERT_TRUE(beacon.CloseCommits().ok());
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_TRUE(beacon.Reveal(n, Share(100 + n)).ok());
  }
  Result<Hash256> output = beacon.Finalize();
  ASSERT_TRUE(output.ok());
  EXPECT_FALSE(output->IsZero());
  EXPECT_TRUE(beacon.Withholders().empty());
  EXPECT_TRUE(
      RandomnessBeacon::VerifyTranscript(commitments, reveals, *output).ok());
}

TEST(BeaconTest, PhaseDisciplineEnforced) {
  RandomnessBeacon beacon;
  // Reveal before commits close.
  EXPECT_TRUE(beacon.Reveal(0, Share(1)).IsFailedPrecondition());
  ASSERT_TRUE(beacon.Commit(0, RandomnessBeacon::CommitmentFor(Share(1))).ok());
  ASSERT_TRUE(beacon.CloseCommits().ok());
  // Commit after close.
  EXPECT_TRUE(
      beacon.Commit(1, RandomnessBeacon::CommitmentFor(Share(2)))
          .IsFailedPrecondition());
  EXPECT_TRUE(beacon.CloseCommits().IsFailedPrecondition());
  ASSERT_TRUE(beacon.Reveal(0, Share(1)).ok());
  ASSERT_TRUE(beacon.Finalize().ok());
  // Reveal after done.
  EXPECT_TRUE(beacon.Reveal(0, Share(1)).IsFailedPrecondition());
}

TEST(BeaconTest, DoubleCommitAndRevealRejected) {
  RandomnessBeacon beacon;
  ASSERT_TRUE(beacon.Commit(0, RandomnessBeacon::CommitmentFor(Share(1))).ok());
  EXPECT_TRUE(beacon.Commit(0, RandomnessBeacon::CommitmentFor(Share(2)))
                  .IsAlreadyExists());
  ASSERT_TRUE(beacon.CloseCommits().ok());
  ASSERT_TRUE(beacon.Reveal(0, Share(1)).ok());
  EXPECT_TRUE(beacon.Reveal(0, Share(1)).IsAlreadyExists());
}

TEST(BeaconTest, WrongRevealRejected) {
  RandomnessBeacon beacon;
  ASSERT_TRUE(beacon.Commit(0, RandomnessBeacon::CommitmentFor(Share(1))).ok());
  ASSERT_TRUE(beacon.CloseCommits().ok());
  EXPECT_TRUE(beacon.Reveal(0, Share(2)).IsUnauthorized());
  EXPECT_TRUE(beacon.Reveal(9, Share(1)).IsNotFound());
}

TEST(BeaconTest, WithholdersAreNamed) {
  RandomnessBeacon beacon(1);
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_TRUE(
        beacon.Commit(n, RandomnessBeacon::CommitmentFor(Share(n))).ok());
  }
  ASSERT_TRUE(beacon.CloseCommits().ok());
  ASSERT_TRUE(beacon.Reveal(1, Share(1)).ok());
  ASSERT_TRUE(beacon.Finalize().ok());
  EXPECT_EQ(beacon.Withholders(), (std::vector<NodeId>{0, 2}));
}

TEST(BeaconTest, QuorumEnforced) {
  RandomnessBeacon beacon(2);
  ASSERT_TRUE(beacon.Commit(0, RandomnessBeacon::CommitmentFor(Share(1))).ok());
  ASSERT_TRUE(beacon.CloseCommits().ok());
  ASSERT_TRUE(beacon.Reveal(0, Share(1)).ok());
  EXPECT_TRUE(beacon.Finalize().status().IsFailedPrecondition());
}

TEST(BeaconTest, OutputDependsOnEveryShare) {
  auto run = [](uint64_t tweak) {
    RandomnessBeacon beacon;
    for (NodeId n = 0; n < 3; ++n) {
      const Bytes share = Share(n == 2 ? tweak : n);
      EXPECT_TRUE(
          beacon.Commit(n, RandomnessBeacon::CommitmentFor(share)).ok());
    }
    EXPECT_TRUE(beacon.CloseCommits().ok());
    for (NodeId n = 0; n < 3; ++n) {
      EXPECT_TRUE(beacon.Reveal(n, Share(n == 2 ? tweak : n)).ok());
    }
    return *beacon.Finalize();
  };
  EXPECT_NE(run(10), run(11));
  EXPECT_EQ(run(10), run(10));  // And deterministic.
}

TEST(BeaconTest, TranscriptVerificationCatchesLies) {
  std::map<NodeId, Hash256> commitments;
  std::map<NodeId, Bytes> reveals;
  for (NodeId n = 0; n < 3; ++n) {
    reveals[n] = Share(n);
    commitments[n] = RandomnessBeacon::CommitmentFor(reveals[n]);
  }
  // Build the honest output via a beacon run.
  RandomnessBeacon beacon;
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_TRUE(beacon.Commit(n, commitments[n]).ok());
  }
  ASSERT_TRUE(beacon.CloseCommits().ok());
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_TRUE(beacon.Reveal(n, reveals[n]).ok());
  }
  const Hash256 honest = *beacon.Finalize();
  EXPECT_TRUE(
      RandomnessBeacon::VerifyTranscript(commitments, reveals, honest).ok());

  // A doctored output fails.
  Hash256 forged = honest;
  forged.bytes[0] ^= 1;
  EXPECT_TRUE(RandomnessBeacon::VerifyTranscript(commitments, reveals, forged)
                  .IsCorruption());
  // A reveal that matches no commitment fails.
  reveals[7] = Share(7);
  EXPECT_TRUE(RandomnessBeacon::VerifyTranscript(commitments, reveals, honest)
                  .IsUnauthorized());
}

TEST(BeaconTest, EveryCommitterWithholdsWhenNobodyReveals) {
  // Total reveal failure (e.g. every committer crashed in the reveal
  // phase): Finalize fails, and ALL committers are named withholders.
  RandomnessBeacon beacon(1);
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_TRUE(
        beacon.Commit(n, RandomnessBeacon::CommitmentFor(Share(n))).ok());
  }
  ASSERT_TRUE(beacon.CloseCommits().ok());
  EXPECT_TRUE(beacon.Finalize().status().IsFailedPrecondition());
  EXPECT_EQ(beacon.Withholders(), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_FALSE(beacon.output().has_value());
}

TEST(BeaconTest, TamperedRevealBytesFailTranscriptVerification) {
  std::map<NodeId, Hash256> commitments;
  std::map<NodeId, Bytes> reveals;
  RandomnessBeacon beacon;
  for (NodeId n = 0; n < 3; ++n) {
    reveals[n] = Share(50 + n);
    commitments[n] = RandomnessBeacon::CommitmentFor(reveals[n]);
    ASSERT_TRUE(beacon.Commit(n, commitments[n]).ok());
  }
  ASSERT_TRUE(beacon.CloseCommits().ok());
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_TRUE(beacon.Reveal(n, reveals[n]).ok());
  }
  const Hash256 honest = *beacon.Finalize();
  ASSERT_TRUE(
      RandomnessBeacon::VerifyTranscript(commitments, reveals, honest).ok());

  // Flipping one byte of an EXISTING reveal breaks its commitment
  // binding — a transcript forger cannot substitute shares in place.
  reveals[1].back() ^= 1;
  EXPECT_FALSE(
      RandomnessBeacon::VerifyTranscript(commitments, reveals, honest).ok());
}

TEST(BeaconTest, FinalizeTwiceRejected) {
  RandomnessBeacon beacon;
  ASSERT_TRUE(beacon.Commit(0, RandomnessBeacon::CommitmentFor(Share(1))).ok());
  ASSERT_TRUE(beacon.CloseCommits().ok());
  ASSERT_TRUE(beacon.Reveal(0, Share(1)).ok());
  ASSERT_TRUE(beacon.Finalize().ok());
  EXPECT_TRUE(beacon.Finalize().status().IsFailedPrecondition());
}

}  // namespace
}  // namespace shardchain
