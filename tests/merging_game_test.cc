#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/merging_game.h"

namespace shardchain {
namespace {

MergingGameConfig FastConfig() {
  MergingGameConfig config;
  config.min_shard_size = 20;
  config.shard_reward = 100.0;
  config.merge_cost = 20.0;
  config.subslots = 16;
  config.max_slots = 120;
  return config;
}

// ------------------------- One-time merge --------------------------------

TEST(OneTimeMergeTest, EmptyAndSingletonInputs) {
  Rng rng(1);
  const auto empty = RunOneTimeMerge({}, FastConfig(), &rng);
  EXPECT_FALSE(empty.formed);
  const auto lone = RunOneTimeMerge({50}, FastConfig(), &rng);
  EXPECT_FALSE(lone.formed);
  EXPECT_TRUE(lone.converged);
}

TEST(OneTimeMergeTest, FormsShardMeetingThreshold) {
  Rng rng(2);
  const std::vector<uint64_t> sizes{8, 9, 7, 6, 8};
  const auto r = RunOneTimeMerge(sizes, FastConfig(), &rng);
  ASSERT_TRUE(r.formed);
  EXPECT_GE(r.merged_size, FastConfig().min_shard_size);
  EXPECT_GE(r.merged.size(), 2u);
  // Reported size matches the coalition.
  uint64_t total = 0;
  for (size_t i : r.merged) total += sizes[i];
  EXPECT_EQ(total, r.merged_size);
}

TEST(OneTimeMergeTest, ProbabilitiesStayInUnitInterval) {
  Rng rng(3);
  const auto r = RunOneTimeMerge({5, 5, 5, 5, 5, 5}, FastConfig(), &rng);
  for (double p : r.final_probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(OneTimeMergeTest, ImpossibleThresholdNeverForms) {
  Rng rng(4);
  MergingGameConfig config = FastConfig();
  config.min_shard_size = 1000;  // Total is only 25.
  const auto r = RunOneTimeMerge({5, 5, 5, 5, 5}, config, &rng);
  EXPECT_FALSE(r.formed);
}

TEST(OneTimeMergeTest, MergeIndicesAreValidAndUnique) {
  Rng rng(5);
  const std::vector<uint64_t> sizes{4, 9, 3, 8, 2, 7, 5};
  const auto r = RunOneTimeMerge(sizes, FastConfig(), &rng);
  std::set<size_t> seen;
  for (size_t i : r.merged) {
    EXPECT_LT(i, sizes.size());
    EXPECT_TRUE(seen.insert(i).second);
  }
}

TEST(OneTimeMergeTest, EquilibriumBalancesMergeAndStayPayoffs) {
  // At the converged mixed strategy the expected payoffs of merging and
  // staying should be close (the defining property of the mixed NE).
  Rng rng(6);
  MergingGameConfig config = FastConfig();
  config.max_slots = 400;
  config.subslots = 32;
  const std::vector<uint64_t> sizes{8, 8, 8, 8, 8};
  const auto r = RunOneTimeMerge(sizes, config, &rng);
  Rng eval_rng(7);
  const double u_merge =
      MergeUtility(sizes, r.final_probs, 0, true, config, 20000, &eval_rng);
  const double u_stay =
      MergeUtility(sizes, r.final_probs, 0, false, config, 20000, &eval_rng);
  // Tolerance is generous: Monte-Carlo dynamics with a clamped domain.
  EXPECT_NEAR(u_merge, u_stay, 0.35 * config.shard_reward);
}

// ------------------------- Iterative merge -------------------------------

TEST(IterativeMergeTest, GroupsAreDisjointAndQualify) {
  Rng rng(8);
  std::vector<uint64_t> sizes;
  Rng size_rng(9);
  for (int i = 0; i < 30; ++i) {
    sizes.push_back(static_cast<uint64_t>(size_rng.UniformRange(1, 10)));
  }
  const auto r = RunIterativeMerge(sizes, FastConfig(), &rng);
  std::set<size_t> seen;
  for (const auto& group : r.new_shards) {
    EXPECT_GE(group.size(), 2u);
    uint64_t total = 0;
    for (size_t i : group) {
      EXPECT_TRUE(seen.insert(i).second) << "shard in two groups";
      total += sizes[i];
    }
    EXPECT_GE(total, FastConfig().min_shard_size);
  }
  for (size_t i : r.leftover) {
    EXPECT_TRUE(seen.insert(i).second) << "leftover shard also merged";
  }
  // Every shard is accounted for exactly once.
  EXPECT_EQ(seen.size(), sizes.size());
}

TEST(IterativeMergeTest, NewShardSizesMatchGroups) {
  Rng rng(10);
  const std::vector<uint64_t> sizes{9, 9, 9, 9, 9, 9};
  const auto r = RunIterativeMerge(sizes, FastConfig(), &rng);
  const auto new_sizes = r.NewShardSizes(sizes);
  ASSERT_EQ(new_sizes.size(), r.new_shards.size());
  for (size_t g = 0; g < r.new_shards.size(); ++g) {
    uint64_t total = 0;
    for (size_t i : r.new_shards[g]) total += sizes[i];
    EXPECT_EQ(new_sizes[g], total);
  }
}

TEST(IterativeMergeTest, ProducesAtLeastOneShardWhenAmple) {
  Rng rng(11);
  const std::vector<uint64_t> sizes(20, 9);  // Total 180, L = 20.
  const auto r = RunIterativeMerge(sizes, FastConfig(), &rng);
  EXPECT_GE(r.NumNewShards(), 1u);
}

TEST(IterativeMergeTest, CannotExceedOptimal) {
  Rng rng(12);
  std::vector<uint64_t> sizes;
  Rng size_rng(13);
  for (int i = 0; i < 40; ++i) {
    sizes.push_back(static_cast<uint64_t>(size_rng.UniformRange(1, 12)));
  }
  const auto r = RunIterativeMerge(sizes, FastConfig(), &rng);
  EXPECT_LE(r.NumNewShards(),
            OptimalNewShards(sizes, FastConfig().min_shard_size));
}

// ------------------------ Randomized baseline ----------------------------

TEST(RandomizedMergeTest, GroupsQualifyToo) {
  Rng rng(14);
  const std::vector<uint64_t> sizes(12, 6);
  const auto r = RunRandomizedMerge(sizes, FastConfig(), &rng, 0.5);
  for (const auto& group : r.new_shards) {
    uint64_t total = 0;
    for (size_t i : group) total += sizes[i];
    EXPECT_GE(total, FastConfig().min_shard_size);
  }
}

TEST(RandomizedMergeTest, GameYieldsAtLeastAsManyShardsOnAverage) {
  // Fig. 3g: the game forms ~59% more new shards than random merging.
  // Averaged over seeds, the game should not be worse.
  MergingGameConfig config = FastConfig();
  double game_total = 0;
  double random_total = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::vector<uint64_t> sizes;
    Rng size_rng(100 + seed);
    for (int i = 0; i < 24; ++i) {
      sizes.push_back(static_cast<uint64_t>(size_rng.UniformRange(1, 9)));
    }
    Rng g_rng(200 + seed);
    Rng r_rng(300 + seed);
    game_total += static_cast<double>(
        RunIterativeMerge(sizes, config, &g_rng).NumNewShards());
    random_total += static_cast<double>(
        RunRandomizedMerge(sizes, config, &r_rng, 0.5).NumNewShards());
  }
  EXPECT_GE(game_total, random_total);
}

// ------------------------------ Optimal ----------------------------------

TEST(OptimalTest, FloorOfTotalOverL) {
  EXPECT_EQ(OptimalNewShards({10, 10, 10}, 20), 1u);
  EXPECT_EQ(OptimalNewShards({10, 10, 20}, 20), 2u);
  EXPECT_EQ(OptimalNewShards({}, 20), 0u);
  EXPECT_EQ(OptimalNewShards({5}, 20), 0u);
  EXPECT_EQ(OptimalNewShards({5, 5}, 0), 2u);
}

}  // namespace
}  // namespace shardchain
