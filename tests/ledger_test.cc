#include <gtest/gtest.h>

#include "chain/ledger.h"
#include "consensus/pow.h"
#include "contract/registry.h"
#include "txpool/txpool.h"
#include "types/codec.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

Transaction Pay(const Address& from, const Address& to, Amount value,
                Amount fee, uint64_t nonce = 0) {
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  tx.sender = from;
  tx.recipient = to;
  tx.value = value;
  tx.fee = fee;
  tx.nonce = nonce;
  return tx;
}

StateDB FundedState() {
  StateDB state;
  state.Mint(Addr(1), 1000);
  state.Mint(Addr(2), 1000);
  return state;
}

/// BuildBlock returns Result<Block> (snapshot bracket failures
/// propagate); the happy-path tests unwrap it.
Block MustBuild(const Ledger& ledger, const Address& miner,
                std::vector<Transaction> txs, uint64_t timestamp) {
  Result<Block> built = ledger.BuildBlock(miner, std::move(txs), timestamp);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return *std::move(built);
}

// ---------------------------- TxPool -----------------------------------

TEST(TxPoolTest, AddAndContains) {
  TxPool pool;
  const Transaction tx = Pay(Addr(1), Addr(2), 10, 5);
  ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.Contains(tx.Id()));
  EXPECT_EQ(pool.Size(), 1u);
}

TEST(TxPoolTest, DuplicateRejected) {
  TxPool pool;
  const Transaction tx = Pay(Addr(1), Addr(2), 10, 5);
  ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_TRUE(pool.Add(tx).IsAlreadyExists());
}

TEST(TxPoolTest, TopByFeeOrdersDescending) {
  TxPool pool;
  ASSERT_TRUE(pool.Add(Pay(Addr(1), Addr(2), 1, 5)).ok());
  ASSERT_TRUE(pool.Add(Pay(Addr(1), Addr(2), 2, 50)).ok());
  ASSERT_TRUE(pool.Add(Pay(Addr(1), Addr(2), 3, 20)).ok());
  const auto top = pool.TopByFee(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].fee, 50u);
  EXPECT_EQ(top[1].fee, 20u);
}

TEST(TxPoolTest, RemoveAndRemoveAll) {
  TxPool pool;
  const Transaction a = Pay(Addr(1), Addr(2), 1, 5);
  const Transaction b = Pay(Addr(1), Addr(2), 2, 6);
  ASSERT_TRUE(pool.Add(a).ok());
  ASSERT_TRUE(pool.Add(b).ok());
  ASSERT_TRUE(pool.Remove(a.Id()).ok());
  EXPECT_TRUE(pool.Remove(a.Id()).IsNotFound());
  pool.RemoveAll({b});
  EXPECT_TRUE(pool.Empty());
}

TEST(TxPoolTest, CapacityEvictsCheapest) {
  TxPool pool(2);
  ASSERT_TRUE(pool.Add(Pay(Addr(1), Addr(2), 1, 10)).ok());
  ASSERT_TRUE(pool.Add(Pay(Addr(1), Addr(2), 2, 20)).ok());
  // A pricier tx evicts the fee-10 one.
  ASSERT_TRUE(pool.Add(Pay(Addr(1), Addr(2), 3, 30)).ok());
  EXPECT_EQ(pool.Size(), 2u);
  EXPECT_EQ(pool.TopByFee(2)[1].fee, 20u);
  // A cheaper-than-everything tx is rejected outright.
  EXPECT_TRUE(pool.Add(Pay(Addr(1), Addr(2), 4, 1)).IsFailedPrecondition());
}

TEST(TxPoolTest, DeterministicTieBreakById) {
  TxPool a;
  TxPool b;
  std::vector<Transaction> txs;
  for (uint8_t i = 0; i < 10; ++i) txs.push_back(Pay(Addr(i), Addr(99), 1, 7));
  for (const auto& tx : txs) ASSERT_TRUE(a.Add(tx).ok());
  for (auto it = txs.rbegin(); it != txs.rend(); ++it) {
    ASSERT_TRUE(b.Add(*it).ok());
  }
  const auto ta = a.TopByFee(10);
  const auto tb = b.TopByFee(10);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(ta[i].Id(), tb[i].Id());
}

// ----------------------------- Ledger -----------------------------------

TEST(LedgerTest, GenesisIsCanonical) {
  Ledger ledger(1, FundedState());
  EXPECT_EQ(ledger.CanonicalLength(), 1u);
  EXPECT_EQ(ledger.tip_number(), 0u);
  EXPECT_EQ(ledger.tip_hash(), ledger.genesis_hash());
  EXPECT_TRUE(ledger.Contains(ledger.genesis_hash()));
}

TEST(LedgerTest, BuildAndAppendBlock) {
  Ledger ledger(1, FundedState());
  const Address miner = Addr(9);
  Block block = MustBuild(ledger, miner, {Pay(Addr(1), Addr(2), 100, 10)}, 1);
  ASSERT_EQ(block.transactions.size(), 1u);
  Result<Hash256> hash = ledger.Append(block);
  ASSERT_TRUE(hash.ok()) << hash.status().ToString();
  EXPECT_EQ(ledger.tip_number(), 1u);
  EXPECT_EQ(ledger.tip_state().BalanceOf(Addr(2)), 1100u);
  // Miner got fee + block reward.
  EXPECT_EQ(ledger.tip_state().BalanceOf(miner),
            10u + ledger.config().block_reward);
  EXPECT_EQ(ledger.CanonicalTxCount(), 1u);
}

TEST(LedgerTest, AppendRejectsForeignShardId) {
  Ledger ledger(1, FundedState());
  Block block = MustBuild(ledger, Addr(9), {}, 1);
  block.header.shard_id = 2;
  block.header.tx_root = block.ComputeTxRoot();
  EXPECT_TRUE(ledger.Append(block).status().IsUnauthorized());
}

TEST(LedgerTest, AppendRejectsUnknownParent) {
  Ledger ledger(1, FundedState());
  Block block = MustBuild(ledger, Addr(9), {}, 1);
  block.header.parent_hash = Sha256Digest("nowhere");
  EXPECT_TRUE(ledger.Append(block).status().IsNotFound());
}

TEST(LedgerTest, AppendRejectsBadTxRoot) {
  Ledger ledger(1, FundedState());
  Block block = MustBuild(ledger, Addr(9), {Pay(Addr(1), Addr(2), 1, 1)}, 1);
  block.header.tx_root = Sha256Digest("lies");
  EXPECT_TRUE(ledger.Append(block).status().IsCorruption());
}

TEST(LedgerTest, AppendRejectsBadStateRoot) {
  Ledger ledger(1, FundedState());
  Block block = MustBuild(ledger, Addr(9), {Pay(Addr(1), Addr(2), 1, 1)}, 1);
  block.header.state_root = Sha256Digest("lies");
  block.header.tx_root = block.ComputeTxRoot();
  EXPECT_TRUE(ledger.Append(block).status().IsCorruption());
}

TEST(LedgerTest, AppendRejectsDuplicate) {
  Ledger ledger(1, FundedState());
  Block block = MustBuild(ledger, Addr(9), {}, 1);
  ASSERT_TRUE(ledger.Append(block).ok());
  EXPECT_TRUE(ledger.Append(block).status().IsAlreadyExists());
}

TEST(LedgerTest, AppendRejectsOverfullBlock) {
  ChainConfig config;
  config.max_txs_per_block = 2;
  Ledger ledger(1, FundedState(), config);
  Block block = MustBuild(ledger, Addr(9), {}, 1);
  for (uint64_t n = 0; n < 3; ++n) {
    block.transactions.push_back(Pay(Addr(1), Addr(2), 1, 1, n));
  }
  block.header.tx_root = block.ComputeTxRoot();
  EXPECT_TRUE(ledger.Append(block).status().IsInvalidArgument());
}

TEST(LedgerTest, BuildBlockRespectsCapacityAndSkipsInvalid) {
  ChainConfig config;
  config.max_txs_per_block = 3;
  Ledger ledger(1, FundedState(), config);
  std::vector<Transaction> txs;
  // One tx with a hopeless balance, then five valid ones.
  txs.push_back(Pay(Addr(5), Addr(2), 999999, 1));
  for (uint64_t n = 0; n < 5; ++n) {
    txs.push_back(Pay(Addr(1), Addr(2), 10, 1, n));
  }
  Block block = MustBuild(ledger, Addr(9), txs, 1);
  EXPECT_EQ(block.transactions.size(), 3u);
  for (const auto& tx : block.transactions) EXPECT_EQ(tx.sender, Addr(1));
  EXPECT_TRUE(ledger.Append(block).ok());
}

TEST(LedgerTest, NonceOrderEnforced) {
  Ledger ledger(1, FundedState());
  // Nonce 1 before nonce 0 is rejected by execution; BuildBlock skips it.
  Block block = MustBuild(ledger, Addr(9), {Pay(Addr(1), Addr(2), 1, 1, 1)}, 1);
  EXPECT_TRUE(block.transactions.empty());
}

TEST(LedgerTest, ForkChoiceLongestChainWins) {
  Ledger ledger(1, FundedState());
  // Chain A: one block on genesis.
  Block a1 = MustBuild(ledger, Addr(9), {}, 1);
  ASSERT_TRUE(ledger.Append(a1).ok());
  const Hash256 tip_a = ledger.tip_hash();

  // Chain B: two blocks, also rooted at genesis (different miner so the
  // headers differ).
  Ledger shadow(1, FundedState());
  Block b1 = MustBuild(shadow, Addr(8), {}, 1);
  ASSERT_TRUE(shadow.Append(b1).ok());
  Block b2 = MustBuild(shadow, Addr(8), {}, 2);

  ASSERT_TRUE(ledger.Append(b1).ok());
  // Same-height sibling does not displace the tip.
  EXPECT_EQ(ledger.tip_hash(), tip_a);
  ASSERT_TRUE(ledger.Append(b2).ok());
  // Longer fork wins.
  EXPECT_EQ(ledger.tip_number(), 2u);
  EXPECT_NE(ledger.tip_hash(), tip_a);
  EXPECT_EQ(ledger.CanonicalChain().size(), 3u);
}

TEST(LedgerTest, EmptyBlockCounting) {
  Ledger ledger(1, FundedState());
  ASSERT_TRUE(ledger.Append(MustBuild(ledger, Addr(9), {}, 1)).ok());
  ASSERT_TRUE(
      ledger
          .Append(MustBuild(ledger, Addr(9), {Pay(Addr(1), Addr(2), 1, 1)}, 2))
          .ok());
  ASSERT_TRUE(ledger.Append(MustBuild(ledger, Addr(9), {}, 3)).ok());
  EXPECT_EQ(ledger.CanonicalEmptyBlocks(), 2u);
  EXPECT_EQ(ledger.CanonicalTxCount(), 1u);
}

TEST(LedgerTest, ContractCallExecutesInBlock) {
  StateDB state;
  state.Mint(Addr(1), 1000);
  Result<Address> contract = ContractRegistry::Deploy(
      &state, Addr(7), contracts::UnconditionalTransfer(Addr(2)));
  ASSERT_TRUE(contract.ok());
  Ledger ledger(1, std::move(state));

  Transaction call;
  call.kind = TxKind::kContractCall;
  call.sender = Addr(1);
  call.recipient = *contract;
  call.value = 400;
  call.fee = 10;
  Block block = MustBuild(ledger, Addr(9), {call}, 1);
  ASSERT_EQ(block.transactions.size(), 1u);
  ASSERT_TRUE(ledger.Append(block).ok());
  EXPECT_EQ(ledger.tip_state().BalanceOf(Addr(2)), 400u);
}

TEST(LedgerTest, DeployTransactionCreatesContract) {
  Ledger ledger(1, FundedState());
  Transaction deploy;
  deploy.kind = TxKind::kContractDeploy;
  deploy.sender = Addr(1);
  deploy.fee = 5;
  deploy.payload = contracts::UnconditionalTransfer(Addr(2)).Serialize();
  Block block = MustBuild(ledger, Addr(9), {deploy}, 1);
  ASSERT_EQ(block.transactions.size(), 1u);
  ASSERT_TRUE(ledger.Append(block).ok());
  const Address expected = Address::ForContract(Addr(1), 0);
  EXPECT_TRUE(ledger.tip_state().IsContract(expected));
}

TEST(LedgerTest, PowCheckedWhenConfigured) {
  ChainConfig config;
  config.check_pow = true;
  Ledger ledger(1, FundedState(), config);
  Block block = MustBuild(ledger, Addr(9), {}, 1);
  block.header.difficulty = 256;
  // Unsolved header almost surely fails the difficulty check.
  if (!pow::CheckPow(block.header)) {
    EXPECT_TRUE(ledger.Append(block).status().IsUnauthorized());
  }
  ASSERT_TRUE(pow::SolvePow(&block.header).has_value());
  EXPECT_TRUE(ledger.Append(block).ok());
}

// ------------------------------ PoW -------------------------------------

// ---------------------- built-state reuse cache -------------------------

TEST(LedgerTest, LastBuiltCacheHitOnImmediateAppend) {
  // Build-then-append is the hit path: the retained post-state must
  // satisfy the header's root and leave the tip fully consistent.
  Ledger ledger(1, FundedState());
  const Address miner = Addr(9);
  Block block = MustBuild(ledger, miner, {Pay(Addr(1), Addr(2), 50, 5)}, 1);
  ASSERT_TRUE(ledger.Append(block).ok());
  EXPECT_EQ(ledger.tip_state().StateRoot(), block.header.state_root);
  // The cache is consumed: a second build-append cycle works on top.
  Block next = MustBuild(ledger, miner, {Pay(Addr(2), Addr(1), 7, 2)}, 2);
  ASSERT_TRUE(ledger.Append(next).ok());
  EXPECT_EQ(ledger.tip_number(), 2u);
}

TEST(LedgerTest, LastBuiltCacheMissFallsBackToReExecution) {
  // Appending a block other than the one just built (different header
  // hash) must take the re-execution path and still land on the same
  // post-state a shadow ledger derives.
  Ledger ledger(1, FundedState());
  Ledger shadow(1, FundedState());
  const Address miner = Addr(9);
  // Prime the cache with block A...
  Block a = MustBuild(ledger, miner, {Pay(Addr(1), Addr(2), 50, 5)}, 1);
  // ...then append B (same parent, different timestamp => different
  // hash), which the cache cannot serve.
  Block b = MustBuild(shadow, miner, {Pay(Addr(1), Addr(2), 50, 5)}, 2);
  ASSERT_NE(a.header.Hash(), b.header.Hash());
  ASSERT_TRUE(ledger.Append(b).ok());
  ASSERT_TRUE(shadow.Append(b).ok());
  EXPECT_EQ(ledger.tip_hash(), shadow.tip_hash());
  EXPECT_EQ(ledger.tip_state().StateRoot(), shadow.tip_state().StateRoot());
  // A still appends as a same-height fork; the earlier tip wins ties.
  ASSERT_TRUE(ledger.Append(a).ok());
  EXPECT_EQ(ledger.tip_hash(), b.header.Hash());
}

TEST(LedgerTest, ImportAccountInvalidatesBuildCache) {
  // ImportAccount mutates the tip post-state under a cached built
  // block. If the stale cache were reused, the append would succeed
  // with a post-state that no longer matches the chain; instead the
  // cache is dropped, re-execution runs from the mutated tip, and the
  // root check rejects the now-inconsistent block.
  Ledger ledger(1, FundedState());
  Block block = MustBuild(ledger, Addr(9), {Pay(Addr(1), Addr(2), 50, 5)}, 1);
  Account imported;
  imported.balance = 777;
  ASSERT_TRUE(ledger.ImportAccount(Addr(7), imported).ok());
  EXPECT_TRUE(ledger.Append(block).status().IsCorruption());
}

TEST(LedgerTest, BuildBlockRevertsFailingCandidateMidStream) {
  // A candidate that fails after journaling writes (fee charged, value
  // moved, then the VM rejects the call to a codeless address) forces
  // the RevertTo path inside BuildBlock; the block must come out
  // byte-identical to one built without the failing candidate.
  StateDB genesis = FundedState();
  genesis.Mint(Addr(3), 500);
  const Address miner = Addr(9);

  Transaction bad_call = Pay(Addr(3), Addr(0x66), 40, 4);
  bad_call.kind = TxKind::kContractCall;  // No code at 0x66: VM error.

  Ledger ledger(1, genesis);
  Block with_failure = MustBuild(
      ledger, miner,
      {Pay(Addr(1), Addr(2), 100, 10), bad_call, Pay(Addr(2), Addr(1), 30, 3)},
      1);

  Ledger shadow(1, genesis);
  Block reference = MustBuild(
      shadow, miner,
      {Pay(Addr(1), Addr(2), 100, 10), Pay(Addr(2), Addr(1), 30, 3)}, 1);

  ASSERT_EQ(with_failure.transactions.size(), 2u);
  EXPECT_EQ(codec::EncodeBlock(with_failure), codec::EncodeBlock(reference));
  ASSERT_TRUE(ledger.Append(with_failure).ok());
  // The failed candidate left no residue: Addr(3) kept its balance.
  EXPECT_EQ(ledger.tip_state().BalanceOf(Addr(3)), 500u);
}

TEST(PowTest, TargetMonotoneInDifficulty) {
  EXPECT_GT(pow::TargetForDifficulty(2), pow::TargetForDifficulty(1000));
  EXPECT_EQ(pow::TargetForDifficulty(1), ~uint64_t{0});
}

TEST(PowTest, SolveMeetsCheck) {
  BlockHeader h;
  h.difficulty = 1024;
  const auto iters = pow::SolvePow(&h);
  ASSERT_TRUE(iters.has_value());
  EXPECT_TRUE(pow::CheckPow(h));
}

TEST(PowTest, SolveGivesUpWithinBudget) {
  BlockHeader h;
  h.difficulty = ~uint64_t{0};  // Effectively unsolvable.
  EXPECT_FALSE(pow::SolvePow(&h, 100).has_value());
}

TEST(PowTest, CalibratedMeanInterval) {
  // Difficulty 0x40000 on one unit of power = 60 s (Sec. VI-B1).
  EXPECT_NEAR(pow::MeanBlockInterval(0x40000, 1.0), 60.0, 1e-9);
  EXPECT_NEAR(pow::MeanBlockInterval(0x40000, 2.0), 30.0, 1e-9);
}

TEST(PowTest, SampleIntervalHasRightMean) {
  Rng rng(55);
  double total = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    total += pow::SampleBlockInterval(0x40000, 1.0, &rng);
  }
  EXPECT_NEAR(total / kSamples, 60.0, 2.0);
}

TEST(PowTest, DifficultyForThroughputMatchesPaperSetting) {
  // 76 tx/s with 10-tx blocks (Sec. VI-B2): interval 10/76 s.
  const uint64_t d = pow::DifficultyForThroughput(76.0, 10.0);
  EXPECT_NEAR(pow::MeanBlockInterval(d, 1.0), 10.0 / 76.0, 0.01);
}

}  // namespace
}  // namespace shardchain
