// Runtime determinism harness (the dynamic half of the determinism
// audit; the static half is tools/detlint). Two independent "miners"
// run the full unification pipeline — shard formation over the
// confirmed history, pool assembly, then Algorithms 1-3 from the
// leader-broadcast unified inputs — with everything that is genuinely
// order-free shuffled differently on each side: pool insertion order,
// duplicate submissions, interleaved evictions. Sec. IV-C only works
// if the consensus-visible outputs are nevertheless *byte-identical*,
// so the assertions compare the codec encodings, not just the structs.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/shard_formation.h"
#include "core/unification_codec.h"
#include "txpool/txpool.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

// A mixed confirmed history: single-contract callers (shardable),
// multi-contract callers and direct transfers (MaxShard). Routed in
// this fixed order by every miner — the history order IS consensus
// state, so the harness never shuffles it.
std::vector<Transaction> ConfirmedHistory() {
  std::vector<Transaction> txs;
  for (uint8_t user = 1; user <= 30; ++user) {
    Transaction tx;
    tx.sender = Addr(user);
    tx.kind = TxKind::kContractCall;
    tx.recipient = Addr(static_cast<uint8_t>(0xC0 + user % 5));
    tx.fee = 10 + user;
    tx.nonce = user;
    txs.push_back(tx);
  }
  // A few direct transfers and one multi-contract sender.
  for (uint8_t user = 1; user <= 4; ++user) {
    Transaction tx;
    tx.sender = Addr(static_cast<uint8_t>(0x40 + user));
    tx.kind = TxKind::kDirectTransfer;
    tx.recipient = Addr(static_cast<uint8_t>(0x50 + user));
    tx.value = 100;
    tx.fee = 5;
    tx.nonce = user;
    txs.push_back(tx);
  }
  Transaction hopper;
  hopper.sender = Addr(2);  // Already called contract 0xC2 above.
  hopper.kind = TxKind::kContractCall;
  hopper.recipient = Addr(0xC4);
  hopper.fee = 99;
  hopper.nonce = 77;
  txs.push_back(hopper);
  return txs;
}

// The unconfirmed transactions whose *arrival order at a given miner*
// is arbitrary — exactly the nondeterminism the pool must absorb.
std::vector<Transaction> PendingTransactions() {
  std::vector<Transaction> txs;
  for (uint8_t i = 1; i <= 40; ++i) {
    Transaction tx;
    tx.sender = Addr(static_cast<uint8_t>(0x80 + i));
    tx.kind = TxKind::kContractCall;
    tx.recipient = Addr(static_cast<uint8_t>(0xC0 + i % 5));
    tx.fee = 3 * (i % 11) + 7;  // Plenty of fee ties to stress the order.
    tx.nonce = i;
    txs.push_back(tx);
  }
  return txs;
}

/// One miner's full local pipeline run. `shuffle_seed` perturbs only
/// what a real network would perturb: gossip arrival order and
/// redundant deliveries.
struct PipelineRun {
  Bytes params_wire;
  Bytes merge_wire;
  Bytes select_wire;
};

PipelineRun RunPipeline(uint64_t shuffle_seed) {
  Rng rng(shuffle_seed);

  // Confirmed history replays in consensus order on every miner.
  ShardFormation formation;
  for (const Transaction& tx : ConfirmedHistory()) formation.Route(tx);

  // Pool fills in whatever order gossip happened to deliver, including
  // duplicate deliveries (ignored) sprinkled throughout.
  std::vector<Transaction> pending = PendingTransactions();
  rng.Shuffle(&pending);
  TxPool pool;
  for (const Transaction& tx : pending) {
    EXPECT_TRUE(pool.Add(tx).ok());
    if (rng.UniformDouble() < 0.3) {
      EXPECT_TRUE(pool.Add(tx).IsAlreadyExists());  // Redundant delivery.
    }
  }

  // The leader's unified broadcast, assembled from local state.
  UnifiedParameters params;
  params.randomness = Sha256Digest("determinism-harness-epoch");
  params.shard_sizes = formation.ShardSizes();
  for (const Transaction& tx : pool.All()) params.tx_fees.push_back(tx.fee);
  params.num_miners = 6;
  params.merge_config.min_shard_size = 12;
  params.merge_config.subslots = 16;
  params.merge_config.max_slots = 120;
  params.select_config.capacity = 4;

  PipelineRun run;
  run.params_wire = codec::EncodeUnifiedParameters(params);
  run.merge_wire = codec::EncodeMergePlan(ComputeMergePlan(params));
  run.select_wire = codec::EncodeSelectionPlan(ComputeSelectionPlan(params));
  return run;
}

TEST(DeterminismHarnessTest, ShuffledArrivalOrdersYieldIdenticalBytes) {
  const PipelineRun a = RunPipeline(0xA11CE);
  const PipelineRun b = RunPipeline(0xB0B);
  EXPECT_EQ(a.params_wire, b.params_wire);
  EXPECT_EQ(a.merge_wire, b.merge_wire);
  EXPECT_EQ(a.select_wire, b.select_wire);
}

TEST(DeterminismHarnessTest, ManyIndependentMinersAgree) {
  const PipelineRun reference = RunPipeline(1);
  for (uint64_t seed = 2; seed <= 8; ++seed) {
    const PipelineRun run = RunPipeline(seed);
    EXPECT_EQ(run.params_wire, reference.params_wire) << "seed=" << seed;
    EXPECT_EQ(run.merge_wire, reference.merge_wire) << "seed=" << seed;
    EXPECT_EQ(run.select_wire, reference.select_wire) << "seed=" << seed;
  }
}

TEST(DeterminismHarnessTest, DecodedBroadcastReplaysToIdenticalPlans) {
  // A receiving miner decodes the leader's broadcast off the wire and
  // must replay Algorithms 1-3 to the very bytes the leader computed.
  const PipelineRun leader = RunPipeline(0x5EED);
  Result<UnifiedParameters> received =
      codec::DecodeUnifiedParameters(leader.params_wire);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(codec::EncodeMergePlan(ComputeMergePlan(*received)),
            leader.merge_wire);
  EXPECT_EQ(codec::EncodeSelectionPlan(ComputeSelectionPlan(*received)),
            leader.select_wire);
}

TEST(DeterminismHarnessTest, PoolEmissionIsArrivalOrderFree) {
  // The narrow invariant under the harness: TxPool::All() is a
  // canonical total order (fee desc, id asc) no matter how the pool
  // was filled — including after evicting under capacity pressure.
  std::vector<Transaction> pending = PendingTransactions();

  TxPool forward(32);
  for (const Transaction& tx : pending) (void)forward.Add(tx);

  std::reverse(pending.begin(), pending.end());
  TxPool backward(32);
  for (const Transaction& tx : pending) (void)backward.Add(tx);

  const std::vector<Transaction> a = forward.All();
  const std::vector<Transaction> b = backward.All();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Id(), b[i].Id()) << "position " << i;
  }
}

}  // namespace
}  // namespace shardchain
