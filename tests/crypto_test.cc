#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/keys.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/vrf.h"

namespace shardchain {
namespace {

// --------------------------- SHA-256 ----------------------------------
// Vectors from FIPS 180-4 / NIST CAVP.

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256Digest("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256Digest("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.Finalize().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  const std::string msg(64, 'x');
  EXPECT_EQ(Sha256Digest(msg).ToHex(),
            Sha256Digest(msg.substr(0, 32) + msg.substr(32)).ToHex());
  // 55 and 56 bytes straddle the length-field boundary.
  EXPECT_NE(Sha256Digest(std::string(55, 'y')),
            Sha256Digest(std::string(56, 'y')));
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finalize(), Sha256Digest(msg)) << "split=" << split;
  }
}

TEST(Hash256Test, ZeroAndPrefix) {
  EXPECT_TRUE(Hash256::Zero().IsZero());
  EXPECT_FALSE(Sha256Digest("x").IsZero());
  Hash256 h;
  h.bytes[0] = 0x01;
  h.bytes[7] = 0xff;
  EXPECT_EQ(h.Prefix64(), 0x01000000000000ffULL);
}

TEST(Hash256Test, OrderingIsLexicographic) {
  Hash256 a;
  Hash256 b;
  b.bytes[31] = 1;
  EXPECT_LT(a, b);
  b = a;
  EXPECT_EQ(a, b);
}

TEST(Sha256Test, HashPairDependsOnOrder) {
  const Hash256 a = Sha256Digest("a");
  const Hash256 b = Sha256Digest("b");
  EXPECT_NE(HashPair(a, b), HashPair(b, a));
}

// ------------------------ Lamport signatures ---------------------------

TEST(KeysTest, SignVerifyRoundTrip) {
  KeyPair kp = KeyPair::FromSeed(1);
  const Hash256 msg = Sha256Digest("hello world");
  const Signature sig = kp.Sign(msg);
  EXPECT_TRUE(Verify(kp.public_key(), msg, sig));
}

TEST(KeysTest, VerifyRejectsWrongMessage) {
  KeyPair kp = KeyPair::FromSeed(2);
  const Signature sig = kp.Sign(Sha256Digest("msg1"));
  EXPECT_FALSE(Verify(kp.public_key(), Sha256Digest("msg2"), sig));
}

TEST(KeysTest, VerifyRejectsTamperedSignature) {
  KeyPair kp = KeyPair::FromSeed(3);
  const Hash256 msg = Sha256Digest("payload");
  Signature sig = kp.Sign(msg);
  sig.preimages[17].bytes[0] ^= 0x01;
  EXPECT_FALSE(Verify(kp.public_key(), msg, sig));
}

TEST(KeysTest, VerifyRejectsForeignKey) {
  KeyPair kp1 = KeyPair::FromSeed(4);
  KeyPair kp2 = KeyPair::FromSeed(5);
  const Hash256 msg = Sha256Digest("payload");
  EXPECT_FALSE(Verify(kp2.public_key(), msg, kp1.Sign(msg)));
}

TEST(KeysTest, FingerprintIsStableAndUnique) {
  KeyPair a = KeyPair::FromSeed(6);
  KeyPair b = KeyPair::FromSeed(7);
  EXPECT_EQ(a.public_key().Fingerprint(), a.public_key().Fingerprint());
  EXPECT_NE(a.public_key().Fingerprint(), b.public_key().Fingerprint());
}

TEST(KeysTest, DigestBitExtraction) {
  Hash256 d;
  d.bytes[0] = 0b10000001;
  EXPECT_EQ(DigestBit(d, 0), 1);
  EXPECT_EQ(DigestBit(d, 1), 0);
  EXPECT_EQ(DigestBit(d, 7), 1);
  EXPECT_EQ(DigestBit(d, 8), 0);
}

// ------------------------------ VRF ------------------------------------

TEST(VrfTest, EvaluateVerifyRoundTrip) {
  KeyPair kp = KeyPair::FromSeed(10);
  const Hash256 seed = Sha256Digest("epoch-1");
  const VrfOutput out = VrfEvaluate(kp, seed);
  EXPECT_TRUE(VrfVerify(kp.public_key(), seed, out));
}

TEST(VrfTest, OutputIsDeterministicPerKeySeed) {
  KeyPair kp = KeyPair::FromSeed(11);
  const Hash256 seed = Sha256Digest("epoch-2");
  EXPECT_EQ(VrfEvaluate(kp, seed).value, VrfEvaluate(kp, seed).value);
}

TEST(VrfTest, DifferentSeedsDifferentValues) {
  KeyPair kp = KeyPair::FromSeed(12);
  EXPECT_NE(VrfEvaluate(kp, Sha256Digest("s1")).value,
            VrfEvaluate(kp, Sha256Digest("s2")).value);
}

TEST(VrfTest, VerifyRejectsWrongSeed) {
  KeyPair kp = KeyPair::FromSeed(13);
  const VrfOutput out = VrfEvaluate(kp, Sha256Digest("s1"));
  EXPECT_FALSE(VrfVerify(kp.public_key(), Sha256Digest("s2"), out));
}

TEST(VrfTest, VerifyRejectsTamperedValue) {
  KeyPair kp = KeyPair::FromSeed(14);
  const Hash256 seed = Sha256Digest("s");
  VrfOutput out = VrfEvaluate(kp, seed);
  out.value.bytes[0] ^= 0xff;
  EXPECT_FALSE(VrfVerify(kp.public_key(), seed, out));
}

TEST(VrfTest, TicketInUnitInterval) {
  KeyPair kp = KeyPair::FromSeed(15);
  for (int i = 0; i < 8; ++i) {
    const double t =
        VrfTicket(VrfEvaluate(kp, Sha256Digest(std::to_string(i))).value);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 1.0);
  }
}

// ---------------------------- Merkle -----------------------------------

std::vector<Hash256> MakeLeaves(size_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256Digest("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_TRUE(tree.root().IsZero());
  EXPECT_EQ(MerkleRoot({}), Hash256::Zero());
}

TEST(MerkleTest, SingleLeafRootIsLeaf) {
  const auto leaves = MakeLeaves(1);
  EXPECT_EQ(MerkleTree(leaves).root(), leaves[0]);
}

TEST(MerkleTest, RootMatchesStandaloneComputation) {
  for (size_t n : {2u, 3u, 4u, 5u, 8u, 13u}) {
    const auto leaves = MakeLeaves(n);
    EXPECT_EQ(MerkleTree(leaves).root(), MerkleRoot(leaves)) << "n=" << n;
  }
}

TEST(MerkleTest, RootChangesWhenLeafChanges) {
  auto leaves = MakeLeaves(6);
  const Hash256 before = MerkleRoot(leaves);
  leaves[3].bytes[0] ^= 1;
  EXPECT_NE(before, MerkleRoot(leaves));
}

class MerkleProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofTest, EveryLeafProves) {
  const size_t n = GetParam();
  const auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  for (size_t i = 0; i < n; ++i) {
    const MerkleProof proof = tree.Prove(i);
    EXPECT_TRUE(MerkleVerify(leaves[i], proof, tree.root()))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofTest, ProofFailsForWrongLeaf) {
  const size_t n = GetParam();
  if (n < 2) return;
  const auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  const MerkleProof proof = tree.Prove(0);
  EXPECT_FALSE(MerkleVerify(leaves[1], proof, tree.root()));
}

TEST_P(MerkleProofTest, ProofFailsAgainstWrongRoot) {
  const size_t n = GetParam();
  const auto leaves = MakeLeaves(n);
  MerkleTree tree(leaves);
  Hash256 bad_root = tree.root();
  bad_root.bytes[31] ^= 1;
  EXPECT_FALSE(MerkleVerify(leaves[0], tree.Prove(0), bad_root));
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31));

}  // namespace
}  // namespace shardchain
