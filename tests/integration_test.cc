// Cross-component integration tests: wire-level block exchange between
// two system instances, epoch chaining through the façade, and the VM
// tracer.

#include <gtest/gtest.h>

#include "contract/assembler.h"
#include "core/sharding_system.h"
#include "types/codec.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

ShardingSystemConfig SmallConfig() {
  ShardingSystemConfig config;
  config.chain.max_txs_per_block = 10;
  return config;
}

/// Two replicas built from the same seed hold identical miner keys and
/// genesis, so one can validate and adopt the other's blocks — the
/// wire-level version of "all the miners record that block locally".
class TwinSystemsTest : public ::testing::Test {
 protected:
  TwinSystemsTest()
      : alice_(SmallConfig(), /*seed=*/99), bob_(SmallConfig(), /*seed=*/99) {}

  void SetUpUniverse() {
    for (int i = 0; i < 3; ++i) {
      alice_.AddMiner();
      bob_.AddMiner();
    }
    contract_ = *alice_.DeployContract(
        Addr(1), contracts::UnconditionalTransfer(Addr(0xee)));
    ASSERT_EQ(contract_, *bob_.DeployContract(
                             Addr(1),
                             contracts::UnconditionalTransfer(Addr(0xee))));
    // Same funding on both replicas, before shards form.
    tx_ = MakeTx(10);
    alice_.Mint(tx_.sender, 1000);
    bob_.Mint(tx_.sender, 1000);
    ASSERT_TRUE(alice_.BeginEpoch(1).ok());
    ASSERT_TRUE(bob_.BeginEpoch(1).ok());
    ASSERT_EQ(alice_.epoch_randomness(), bob_.epoch_randomness());
  }

  Transaction MakeTx(uint8_t user) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = Addr(user);
    tx.recipient = contract_;
    tx.value = 50;
    tx.fee = 5;
    return tx;
  }

  ShardingSystem alice_;
  ShardingSystem bob_;
  Address contract_;
  Transaction tx_;
};

TEST_F(TwinSystemsTest, BlockMinedHereAppliesThere) {
  SetUpUniverse();
  ASSERT_TRUE(alice_.SubmitTransaction(tx_).ok());
  ASSERT_TRUE(bob_.SubmitTransaction(tx_).ok());
  // Move miners onto the contract shard.
  ASSERT_TRUE(alice_.BeginEpoch(2).ok());
  ASSERT_TRUE(bob_.BeginEpoch(2).ok());

  // Alice's miner 0 mines; find the block and its packer identity.
  Result<Hash256> mined = alice_.MineBlock(0);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  const ShardId shard = alice_.ShardOfMiner(0);
  const Block* block = alice_.ShardLedger(shard)->Find(*mined);
  ASSERT_NE(block, nullptr);

  // Bob derives the same epoch, so miner 0's fingerprint (identical
  // key material) verifies; he accepts the wire bytes.
  // Packer id: replicas share seeds, so Bob's miner 0 == Alice's.
  // Bob reconstructs it from his own records via the assignment check.
  ShardingSystem probe(SmallConfig(), /*seed=*/99);
  const Hash256 packer_id = [] {
    Rng rng(99);
    return KeyPair::Generate(&rng).public_key().Fingerprint();
  }();
  (void)probe;

  const Bytes wire = codec::EncodeBlock(*block);
  Result<Hash256> received = bob_.ReceiveBlockBytes(wire, packer_id);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(*received, *mined);
  EXPECT_EQ(bob_.ShardLedger(shard)->CanonicalTxCount(), 1u);
  // The pooled duplicate was flushed on receipt.
  EXPECT_EQ(bob_.ShardPool(shard)->Size(), 0u);
  // Both replicas agree on the post state.
  EXPECT_EQ(bob_.ShardLedger(shard)->tip_state().StateRoot(),
            alice_.ShardLedger(shard)->tip_state().StateRoot());
}

TEST_F(TwinSystemsTest, TamperedWireBlockRejected) {
  SetUpUniverse();
  ASSERT_TRUE(alice_.SubmitTransaction(tx_).ok());
  ASSERT_TRUE(bob_.SubmitTransaction(tx_).ok());
  ASSERT_TRUE(alice_.BeginEpoch(2).ok());
  ASSERT_TRUE(bob_.BeginEpoch(2).ok());
  Result<Hash256> mined = alice_.MineBlock(0);
  ASSERT_TRUE(mined.ok());
  const ShardId shard = alice_.ShardOfMiner(0);
  const Block* block = alice_.ShardLedger(shard)->Find(*mined);
  ASSERT_NE(block, nullptr);
  const Hash256 packer_id = [] {
    Rng rng(99);
    return KeyPair::Generate(&rng).public_key().Fingerprint();
  }();

  // Flip a byte inside the body: either decode or the tx-root check
  // must reject it.
  Bytes wire = codec::EncodeBlock(*block);
  if (wire.size() > 160) wire[160] ^= 0x01;
  EXPECT_FALSE(bob_.ReceiveBlockBytes(wire, packer_id).ok());

  // A wrong packer identity fails the membership check.
  const Bytes honest_wire = codec::EncodeBlock(*block);
  Status st = bob_.ReceiveBlockBytes(honest_wire, Sha256Digest("imposter"))
                  .status();
  EXPECT_FALSE(st.ok());
}

TEST_F(TwinSystemsTest, EpochChainsAreIdenticalAcrossReplicas) {
  SetUpUniverse();
  for (uint64_t e = 2; e <= 5; ++e) {
    ASSERT_TRUE(alice_.BeginEpoch(e).ok());
    ASSERT_TRUE(bob_.BeginEpoch(e).ok());
    EXPECT_EQ(alice_.epoch_randomness(), bob_.epoch_randomness());
    EXPECT_EQ(alice_.leader(), bob_.leader());
  }
  EXPECT_EQ(alice_.epochs().EpochCount(), 5u);
  // Randomness actually changes across epochs (no stuck chain).
  const auto& history = alice_.epochs().History();
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_NE(history[i].randomness, history[i - 1].randomness);
    EXPECT_NE(history[i].seed, history[i - 1].seed);
  }
}

// ------------------------------ VM tracer --------------------------------

TEST(VmTracerTest, TraceCoversEveryExecutedInstruction) {
  ContractProgram program;
  program.code = *Assemble("PUSH 1\nPUSH 2\nADD\nPOP\nSTOP");
  StateDB state;
  CallContext ctx;
  ctx.contract = Addr(0xcc);
  ctx.caller = Addr(0xaa);
  std::vector<TraceStep> steps;
  ctx.tracer = [&](const TraceStep& s) { steps.push_back(s); };
  ASSERT_TRUE(Vm::Execute(program, ctx, &state).ok());
  ASSERT_EQ(steps.size(), 5u);
  EXPECT_EQ(steps[0].op, Op::kPush);
  EXPECT_EQ(steps[2].op, Op::kAdd);
  EXPECT_EQ(steps[2].stack_depth_before, 2u);
  EXPECT_EQ(steps[4].op, Op::kStop);
  // Gas is monotone.
  for (size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i].gas_after, steps[i - 1].gas_after);
  }
}

TEST(VmTracerTest, TraceStopsAtRevert) {
  ContractProgram program;
  program.code = *Assemble("PUSH 1\nREVERT\nPUSH 2\nSTOP");
  StateDB state;
  CallContext ctx;
  ctx.contract = Addr(0xcc);
  ctx.caller = Addr(0xaa);
  std::vector<TraceStep> steps;
  ctx.tracer = [&](const TraceStep& s) { steps.push_back(s); };
  EXPECT_FALSE(Vm::Execute(program, ctx, &state).ok());
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps.back().op, Op::kRevert);
}

}  // namespace
}  // namespace shardchain
