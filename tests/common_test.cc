#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace shardchain {
namespace {

// --------------------------- Status ----------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing block");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing block");
  EXPECT_EQ(s.ToString(), "NotFound: missing block");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unauthorized("x").IsUnauthorized());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Status FailingHelper() { return Status::Corruption("inner"); }

Status UsesReturnIfError() {
  SHARDCHAIN_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError().IsCorruption());
}

// --------------------------- Result ----------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsesAssignOrReturn(int x, int* out) {
  SHARDCHAIN_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(UsesAssignOrReturn(-1, &out).IsInvalidArgument());
}

// ----------------------------- Rng -----------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.UniformInt(10)];
  for (int c : seen) EXPECT_GT(c, 800);  // ~1000 expected each.
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Exponential(60.0));
  EXPECT_NEAR(stats.mean(), 60.0, 2.0);
}

TEST(RngTest, BinomialSmallNMeanMatches) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Binomial(40, 0.5));
  EXPECT_NEAR(stats.mean(), 20.0, 0.3);
}

TEST(RngTest, BinomialLargeNApproximationInRange) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    const uint32_t v = rng.Binomial(200, 0.5);
    EXPECT_LE(v, 200u);
    stats.Add(v);
  }
  EXPECT_NEAR(stats.mean(), 100.0, 2.0);
}

TEST(RngTest, BinomialDegenerateCases) {
  Rng rng(31);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(37);
  std::vector<int> hits(11, 0);
  for (int i = 0; i < 20000; ++i) ++hits[rng.Zipf(10, 1.0)];
  EXPECT_GT(hits[1], hits[5]);
  EXPECT_GT(hits[1], hits[10]);
  EXPECT_EQ(hits[0], 0);  // Zipf is 1-based.
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ----------------------------- Hex -----------------------------------

TEST(HexTest, EncodeDecodeRoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff7f");
  Result<Bytes> back = HexDecode(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(HexTest, DecodeAcceptsPrefixAndUppercase) {
  Result<Bytes> r = HexDecode("0xABCD");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bytes{0xab, 0xcd}));
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_TRUE(HexDecode("abc").status().IsInvalidArgument());
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_TRUE(HexDecode("zz").status().IsInvalidArgument());
}

TEST(HexTest, Uint64RoundTrip) {
  Bytes buf;
  AppendUint64(&buf, 0x0123456789abcdefULL);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(ReadUint64(buf, 0), 0x0123456789abcdefULL);
}

TEST(HexTest, Uint32BigEndian) {
  Bytes buf;
  AppendUint32(&buf, 0x01020304u);
  EXPECT_EQ(buf, (Bytes{0x01, 0x02, 0x03, 0x04}));
}

// ---------------------------- Stats ----------------------------------

TEST(StatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(StatsTest, PercentileEmptyIsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

}  // namespace
}  // namespace shardchain
