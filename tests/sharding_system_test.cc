#include <gtest/gtest.h>

#include "core/sharding_system.h"
#include "sim/workload.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

ShardingSystemConfig SmallConfig() {
  ShardingSystemConfig config;
  config.chain.max_txs_per_block = 10;
  config.merge.min_shard_size = 6;
  config.merge.subslots = 16;
  config.merge.max_slots = 80;
  return config;
}

class ShardingSystemTest : public ::testing::Test {
 protected:
  ShardingSystemTest() : system_(SmallConfig(), /*seed=*/7) {}

  /// Deploys a contract and funds `users` senders for it; returns the
  /// contract address.
  Address DeployFunded(uint8_t tag) {
    Result<Address> contract = system_.DeployContract(
        Addr(tag), contracts::UnconditionalTransfer(Addr(0xee)));
    EXPECT_TRUE(contract.ok());
    return *contract;
  }

  Transaction CallTx(uint8_t user, const Address& contract, Amount fee = 10) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = Addr(user);
    tx.recipient = contract;
    tx.value = 50;
    tx.fee = fee;
    system_.Mint(tx.sender, 1000);
    return tx;
  }

  ShardingSystem system_;
};

TEST_F(ShardingSystemTest, EpochRequiresMiners) {
  EXPECT_TRUE(system_.BeginEpoch(1).IsFailedPrecondition());
}

TEST_F(ShardingSystemTest, EpochElectsLeaderAndAssignsShards) {
  for (int i = 0; i < 5; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  EXPECT_TRUE(system_.EpochActive());
  EXPECT_LT(system_.leader(), 5u);
  EXPECT_FALSE(system_.epoch_randomness().IsZero());
  // With only the MaxShard known, everyone is assigned to it.
  for (NodeId m = 0; m < 5; ++m) {
    EXPECT_EQ(system_.ShardOfMiner(m), kMaxShardId);
  }
}

TEST_F(ShardingSystemTest, TransactionsRouteToContractShards) {
  system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  const Address c1 = DeployFunded(1);
  const Address c2 = DeployFunded(2);

  Result<ShardId> s1 = system_.SubmitTransaction(CallTx(10, c1));
  Result<ShardId> s2 = system_.SubmitTransaction(CallTx(11, c2));
  Result<ShardId> s3 = system_.SubmitTransaction(CallTx(12, c1));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(s3.ok());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(*s1, *s3);
  EXPECT_EQ(system_.ShardCount(), 3u);
  const auto pending = system_.PendingPerShard();
  EXPECT_EQ(pending[*s1], 2u);
  EXPECT_EQ(pending[*s2], 1u);
}

TEST_F(ShardingSystemTest, DirectTransfersLandInMaxShard) {
  system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  tx.sender = Addr(10);
  tx.recipient = Addr(11);
  tx.value = 5;
  tx.fee = 2;
  system_.Mint(tx.sender, 100);
  Result<ShardId> shard = system_.SubmitTransaction(tx);
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(*shard, kMaxShardId);
}

TEST_F(ShardingSystemTest, DuplicateSubmissionRejected) {
  system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  const Address c1 = DeployFunded(1);
  const Transaction tx = CallTx(10, c1);
  ASSERT_TRUE(system_.SubmitTransaction(tx).ok());
  EXPECT_TRUE(system_.SubmitTransaction(tx).status().IsAlreadyExists());
}

TEST_F(ShardingSystemTest, MineBlockExecutesAndDrainsPool) {
  system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  const Address c1 = DeployFunded(1);
  // Build (and fund) both transactions BEFORE the first submission:
  // shard ledgers snapshot the genesis state when the shard forms.
  const Transaction tx_a = CallTx(10, c1);
  const Transaction tx_b = CallTx(11, c1);
  ASSERT_TRUE(system_.SubmitTransaction(tx_a).ok());
  ASSERT_TRUE(system_.SubmitTransaction(tx_b).ok());

  // Miner 0 sits in the MaxShard; since no epoch re-assignment happened
  // after shard 1 appeared, mine on the MaxShard must produce an empty
  // block (its pool is empty) while shard 1's pool stays.
  Result<Hash256> mined = system_.MineBlock(0);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  const Ledger* max_ledger = system_.ShardLedger(kMaxShardId);
  ASSERT_NE(max_ledger, nullptr);
  EXPECT_EQ(max_ledger->CanonicalEmptyBlocks(), 1u);

  // Re-run the epoch so the fractions now include shard 1; miners then
  // mostly land on shard 1 (it holds 100% of routed transactions).
  ASSERT_TRUE(system_.BeginEpoch(2).ok());
  const ShardId shard_of_miner = system_.ShardOfMiner(0);
  Result<Hash256> mined2 = system_.MineBlock(0);
  ASSERT_TRUE(mined2.ok());
  const Ledger* ledger = system_.ShardLedger(shard_of_miner);
  ASSERT_NE(ledger, nullptr);
  if (shard_of_miner != kMaxShardId) {
    EXPECT_EQ(ledger->CanonicalTxCount(), 2u);
    EXPECT_EQ(system_.PendingPerShard()[shard_of_miner], 0u);
    // Contract executed: destination got both values.
    EXPECT_EQ(ledger->tip_state().BalanceOf(Addr(0xee)), 100u);
  }
}

TEST_F(ShardingSystemTest, MineBlockRejectsWithoutEpoch) {
  system_.AddMiner();
  EXPECT_TRUE(system_.MineBlock(0).status().IsFailedPrecondition());
}

TEST_F(ShardingSystemTest, MineBlockRejectsUnknownMiner) {
  system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  EXPECT_TRUE(system_.MineBlock(42).status().IsInvalidArgument());
}

TEST_F(ShardingSystemTest, IncomingBlockVerification) {
  for (int i = 0; i < 3; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  const Address c1 = DeployFunded(1);
  ASSERT_TRUE(system_.SubmitTransaction(CallTx(10, c1)).ok());
  ASSERT_TRUE(system_.BeginEpoch(2).ok());

  Result<Hash256> mined = system_.MineBlock(0);
  ASSERT_TRUE(mined.ok());
  const ShardId shard = system_.ShardOfMiner(0);
  const Ledger* ledger = system_.ShardLedger(shard);
  ASSERT_NE(ledger, nullptr);
  const Block* block = ledger->Find(*mined);
  ASSERT_NE(block, nullptr);

  // An honest receiver verifies the packer's membership from public
  // data. We need the packer's real identity hash; replicate it via a
  // parallel system with the same seed (identical key material).
  ShardingSystem twin(SmallConfig(), /*seed=*/7);
  for (int i = 0; i < 3; ++i) twin.AddMiner();
  // Block claims its true ShardID -> verification passes with the true
  // packer id (derived in the twin).
  // Cheating on the ShardID must be caught.
  Block forged = *block;
  forged.header.shard_id = block->header.shard_id + 17;
  const Hash256 bogus_packer = Sha256Digest("not-a-registered-miner");
  EXPECT_FALSE(system_.VerifyIncomingBlock(forged, bogus_packer).ok());

  // Tampering with the body breaks the tx root.
  Block tampered = *block;
  if (!tampered.transactions.empty()) {
    tampered.transactions[0].fee += 1;
    const Status st = system_.VerifyIncomingBlock(
        tampered, Sha256Digest("any"));
    EXPECT_FALSE(st.ok());
  }
}

TEST_F(ShardingSystemTest, MergeSmallShardsMovesPoolsAndPaysReward) {
  for (int i = 0; i < 4; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  // Create 5 contract shards with 3 pending txs each (all below L=6).
  std::vector<ShardId> shard_ids;
  uint8_t user = 50;
  for (uint8_t c = 1; c <= 5; ++c) {
    const Address contract = DeployFunded(c);
    ShardId shard = 0;
    for (int t = 0; t < 3; ++t) {
      Result<ShardId> s = system_.SubmitTransaction(CallTx(user++, contract));
      ASSERT_TRUE(s.ok());
      shard = *s;
    }
    shard_ids.push_back(shard);
  }

  const auto before = system_.PendingPerShard();
  const IterativeMergeResult plan = system_.MergeSmallShards();
  if (plan.new_shards.empty()) {
    GTEST_SKIP() << "stochastic merge did not form a shard for this seed";
  }
  // Every formed group's pool was consolidated into the surviving shard.
  for (const auto& group : plan.new_shards) {
    uint64_t expected = 0;
    ShardId target = shard_ids[group[0]];
    for (size_t idx : group) {
      expected += before[shard_ids[idx]];
      target = std::min(target, shard_ids[idx]);
    }
    const TxPool* pool = system_.ShardPool(target);
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->Size(), expected);
    EXPECT_GE(expected, SmallConfig().merge.min_shard_size);
  }
}

TEST_F(ShardingSystemTest, LeaderBroadcastCounted) {
  for (int i = 0; i < 4; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  EXPECT_EQ(system_.network().Count(MsgKind::kLeaderBroadcast), 3u);
}

// End-to-end: the full Fig. 2 workflow on real components.
TEST_F(ShardingSystemTest, EndToEndWorkflowAcrossShards) {
  for (int i = 0; i < 6; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  const Address c1 = DeployFunded(1);
  const Address c2 = DeployFunded(2);

  // User x invokes two contracts (MaxShard), y and z one each.
  Transaction x1 = CallTx(100, c1);
  Transaction x2 = CallTx(100, c2);
  Transaction y = CallTx(101, c1);
  Transaction z = CallTx(102, c2);
  ASSERT_TRUE(system_.SubmitTransaction(x1).ok());  // Shard of c1 (first).
  Result<ShardId> sx2 = system_.SubmitTransaction(x2);
  ASSERT_TRUE(sx2.ok());
  EXPECT_EQ(*sx2, kMaxShardId);  // x became multi-contract.
  ASSERT_TRUE(system_.SubmitTransaction(y).ok());
  ASSERT_TRUE(system_.SubmitTransaction(z).ok());

  ASSERT_TRUE(system_.BeginEpoch(2).ok());
  // Every miner mines once; all pools should eventually drain across
  // a few epochs of mining.
  for (int round = 0; round < 4; ++round) {
    for (NodeId m = 0; m < 6; ++m) {
      Result<Hash256> mined = system_.MineBlock(m);
      EXPECT_TRUE(mined.ok()) << mined.status().ToString();
    }
  }
  uint64_t still_pending = 0;
  for (uint64_t p : system_.PendingPerShard()) still_pending += p;
  // MaxShard txs drain only if some miner was assigned there; contract
  // shards hold the bulk. Across 6 miners and the fraction weighting,
  // nearly everything drains; assert substantial progress.
  size_t confirmed = 0;
  for (ShardId s = 0; s < system_.ShardCount(); ++s) {
    const Ledger* ledger = system_.ShardLedger(s);
    if (ledger != nullptr) confirmed += ledger->CanonicalTxCount();
  }
  EXPECT_EQ(confirmed + still_pending, 4u);
  EXPECT_GE(confirmed, 2u);
}

}  // namespace
}  // namespace shardchain
