#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/liveness.h"

namespace shardchain {
namespace {

LivenessConfig SmallConfig() {
  LivenessConfig config;
  config.num_miners = 12;
  config.gossip.deterministic_latency = true;
  return config;
}

// Every live miner must have reached the same decision.
void ExpectConverged(const EpochOutcome& out) {
  EXPECT_TRUE(out.converged);
  const MinerDecision* ref = nullptr;
  for (const MinerDecision& d : out.decisions) {
    if (!d.live) continue;
    if (ref == nullptr) {
      ref = &d;
      continue;
    }
    EXPECT_EQ(d.fallback, ref->fallback);
    EXPECT_EQ(d.plan, ref->plan);
    EXPECT_EQ(d.randomness, ref->randomness);
  }
}

TEST(LivenessSimTest, FaultFreeEpochConvergesAtViewZero) {
  EpochLivenessSim sim(SmallConfig(), 1);
  const EpochOutcome out = sim.RunEpoch(nullptr);

  EXPECT_EQ(out.epoch_number, 1u);
  EXPECT_EQ(out.broadcasts_published, 1u);
  EXPECT_FALSE(out.beacon_degraded);
  EXPECT_TRUE(out.withholders.empty());
  ExpectConverged(out);
  for (const MinerDecision& d : out.decisions) {
    EXPECT_TRUE(d.live);
    EXPECT_FALSE(d.fallback);
    EXPECT_EQ(d.view, 0u);
    EXPECT_FALSE(d.plan.empty());
  }
  EXPECT_EQ(sim.epochs().EpochCount(), 1u);
  EXPECT_FALSE(sim.epochs().Current()->fallback);
  EXPECT_EQ(sim.epochs().Current()->view, 0u);
}

TEST(LivenessSimTest, EpochsChainAndStayDistinct) {
  EpochLivenessSim sim(SmallConfig(), 2);
  const EpochOutcome e1 = sim.RunEpoch(nullptr);
  const EpochOutcome e2 = sim.RunEpoch(nullptr);
  EXPECT_EQ(e2.epoch_number, 2u);
  EXPECT_NE(e1.seed, e2.seed);
  EXPECT_NE(e1.decisions[0].plan, e2.decisions[0].plan)
      << "each epoch's broadcast must bind to its own seed";
  EXPECT_EQ(sim.epochs().EpochCount(), 2u);
}

TEST(LivenessSimTest, LeaderKilledBeforeBroadcastTriggersViewChange) {
  const LivenessConfig config = SmallConfig();
  EpochLivenessSim sim(config, 3);
  const std::vector<NodeId> ranking = sim.NextRanking();
  ASSERT_GE(ranking.size(), 2u);

  // Kill the elected leader an instant before its broadcast slot: the
  // runner-up must take over at view 1.
  FaultConfig faults;
  faults.crashes = {{ranking[0], config.ViewBroadcastTime(0) - 0.01}};
  FaultPlan plan(faults, 1);
  const EpochOutcome out = sim.RunEpoch(&plan);

  ExpectConverged(out);
  EXPECT_EQ(out.broadcasts_published, 1u);
  for (size_t i = 0; i < out.decisions.size(); ++i) {
    if (!out.decisions[i].live) continue;
    EXPECT_FALSE(out.decisions[i].fallback);
    EXPECT_EQ(out.decisions[i].view, 1u)
        << "survivors must accept the view-1 leader";
  }
  EXPECT_FALSE(out.decisions[ranking[0]].live);
  EXPECT_EQ(sim.epochs().Current()->view, 1u);
}

TEST(LivenessSimTest, LeaderKilledMidBroadcastStillConverges) {
  const LivenessConfig config = SmallConfig();
  EpochLivenessSim sim(config, 4);
  const std::vector<NodeId> ranking = sim.NextRanking();
  ASSERT_GE(ranking.size(), 2u);

  // Kill the leader just AFTER it published: the partially flooded
  // view-0 broadcast must either win everywhere (relays complete it)
  // or lose everywhere — never split the network.
  FaultConfig faults;
  faults.crashes = {{ranking[0], config.ViewBroadcastTime(0) + 0.01}};
  FaultPlan plan(faults, 1);
  const EpochOutcome out = sim.RunEpoch(&plan);

  ExpectConverged(out);
  for (size_t i = 0; i < out.decisions.size(); ++i) {
    if (!out.decisions[i].live) continue;
    EXPECT_FALSE(out.decisions[i].fallback);
    EXPECT_EQ(out.decisions[i].view, 0u)
        << "neighbour relays must finish the dead leader's flood";
  }
}

TEST(LivenessSimTest, AllEligibleLeadersDeadMeansUnanimousFallback) {
  const LivenessConfig config = SmallConfig();
  EpochLivenessSim sim(config, 5);
  const std::vector<NodeId> ranking = sim.NextRanking();
  ASSERT_GE(ranking.size(), config.max_views);

  // Crash every miner that could ever lead (views 0..max_views-1)
  // before the first broadcast slot.
  FaultConfig faults;
  for (size_t v = 0; v < config.max_views; ++v) {
    faults.crashes.push_back({ranking[v], config.beacon_reveal_close});
  }
  FaultPlan plan(faults, 1);
  const EpochOutcome out = sim.RunEpoch(&plan);

  ExpectConverged(out);
  EXPECT_EQ(out.broadcasts_published, 0u);
  const Hash256 expected = EpochManager::FallbackRandomness(out.seed);
  for (const MinerDecision& d : out.decisions) {
    if (!d.live) continue;
    EXPECT_TRUE(d.fallback);
    EXPECT_EQ(d.randomness, expected);
    EXPECT_TRUE(d.plan.empty());
  }
  EXPECT_TRUE(sim.epochs().Current()->fallback);
}

TEST(LivenessSimTest, WithholdersAreExcludedFromNextCandidacy) {
  const LivenessConfig config = SmallConfig();
  EpochLivenessSim sim(config, 6);

  // Crash one miner between the commit and reveal phases: it commits,
  // never reveals, and is named a withholder.
  const NodeId victim = 3;
  FaultConfig faults;
  faults.crashes = {{victim, config.beacon_commit_close}};
  FaultPlan plan(faults, 1);
  const EpochOutcome out = sim.RunEpoch(&plan);

  ASSERT_EQ(out.withholders.size(), 1u);
  EXPECT_EQ(out.withholders[0], victim);
  EXPECT_EQ(sim.excluded(), out.withholders);

  // The next epoch's failover ranking must not contain the withholder.
  const std::vector<NodeId> ranking = sim.NextRanking();
  EXPECT_EQ(ranking.size(), config.num_miners - 1);
  EXPECT_EQ(std::count(ranking.begin(), ranking.end(), victim), 0);

  // One clean epoch later the exclusion lapses.
  const EpochOutcome clean = sim.RunEpoch(nullptr);
  EXPECT_TRUE(clean.withholders.empty());
  EXPECT_EQ(sim.NextRanking().size(), config.num_miners);
}

TEST(LivenessSimTest, BeaconDegradesBelowQuorumInsteadOfStalling) {
  LivenessConfig config = SmallConfig();
  config.min_reveals = config.num_miners;  // Any withholder degrades it.
  EpochLivenessSim sim(config, 7);

  FaultConfig faults;
  faults.crashes = {{2, config.beacon_commit_close}};
  FaultPlan plan(faults, 1);
  const EpochOutcome out = sim.RunEpoch(&plan);

  EXPECT_TRUE(out.beacon_degraded);
  ExpectConverged(out);
  for (const MinerDecision& d : out.decisions) {
    if (!d.live) continue;
    EXPECT_FALSE(d.fallback)
        << "a degraded beacon must not prevent the leader broadcast";
  }
}

TEST(LivenessSimTest, LossyGossipRecoversWithinTheEpoch) {
  EpochLivenessSim sim(SmallConfig(), 8);
  FaultConfig faults;
  faults.drop_probability = 0.30;
  FaultPlan plan(faults, 21);
  const EpochOutcome out = sim.RunEpoch(&plan);

  ExpectConverged(out);
  EXPECT_GT(out.messages_lost, 0u);
  EXPECT_GT(out.retransmissions, 0u);
  for (const MinerDecision& d : out.decisions) {
    EXPECT_TRUE(d.live);
    EXPECT_FALSE(d.fallback);
  }
  EXPECT_GT(out.recovery_latency, 0.0);
  EXPECT_LT(out.recovery_latency, sim.config().decision_deadline);
}

}  // namespace
}  // namespace shardchain
