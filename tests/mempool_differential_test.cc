// Chunked-vs-legacy mempool differential suite (DESIGN.md §14): the
// chunked TxPool must be observably indistinguishable from the legacy
// single-ordered-map pool — element-wise equal admission statuses and
// byte-identical TopByFee emission — under 20 shuffled-arrival seeds
// with interleaved removals, block confirmations, and capacity
// evictions. Also pins the PR 1 fee-tie eviction determinism (retained
// set independent of arrival order), the legacy pool's batched
// RemoveAll (sweep and per-key paths), and batch signature
// verification at admission (one bad signature rejects only its tx).

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/keys.h"
#include "txpool/legacy_pool.h"
#include "txpool/txpool.h"

namespace shardchain {
namespace {

Address RngAddr(Rng* rng) {
  Address a;
  for (auto& b : a.bytes) b = static_cast<uint8_t>(rng->Next());
  return a;
}

Transaction RandTx(Rng* rng, Amount fee_cap) {
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  tx.sender = RngAddr(rng);
  tx.recipient = RngAddr(rng);
  tx.value = 1 + rng->UniformInt(1000);
  // Small fee range on purpose: lots of fee ties, so the id tie-break
  // order is exercised constantly.
  tx.fee = 1 + rng->UniformInt(fee_cap);
  tx.nonce = rng->UniformInt(4);
  return tx;
}

Bytes Concat(const std::vector<Transaction>& txs) {
  Bytes out;
  for (const Transaction& tx : txs) {
    const Bytes enc = tx.Encode();
    out.insert(out.end(), enc.begin(), enc.end());
  }
  return out;
}

// ------------------- chunked vs legacy, shuffled arrivals ----------------

TEST(MempoolDifferential, ShuffledArrivalsMatchLegacy) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 733 + 5);
    // Tiny chunks force multi-chunk merges, recycling, and compaction.
    TxPool chunked(/*capacity=*/256, /*chunk_capacity=*/16);
    LegacyTxPool legacy(/*capacity=*/256);
    std::vector<Transaction> known;

    for (int step = 0; step < 600; ++step) {
      const uint32_t op = rng.UniformInt(100);
      if (op < 70 || known.empty()) {
        // Admission (with occasional duplicate re-adds).
        const bool dup = !known.empty() && rng.Bernoulli(0.2);
        const Transaction tx =
            dup ? known[rng.UniformInt(known.size())] : RandTx(&rng, 16);
        const Status a = chunked.Add(tx);
        const Status b = legacy.Add(tx);
        ASSERT_EQ(a.code(), b.code()) << "seed " << seed << " step " << step;
        if (a.ok() && !dup) known.push_back(tx);
      } else if (op < 85) {
        // Targeted removal (sometimes of an id already gone).
        const Transaction& victim = known[rng.UniformInt(known.size())];
        const Status a = chunked.Remove(victim.Id());
        const Status b = legacy.Remove(victim.Id());
        ASSERT_EQ(a.code(), b.code()) << "seed " << seed << " step " << step;
      } else {
        // Block confirmation: take the top slice from BOTH pools
        // (asserting emission equality on the way) and remove it.
        const size_t take = 1 + rng.UniformInt(12);
        const std::vector<Transaction> top_c = chunked.TopByFee(take);
        const std::vector<Transaction> top_l = legacy.TopByFee(take);
        ASSERT_EQ(Concat(top_c), Concat(top_l))
            << "seed " << seed << " step " << step;
        chunked.RemoveAll(top_l);
        legacy.RemoveAll(top_l);
      }
      ASSERT_EQ(chunked.Size(), legacy.Size());
    }
    EXPECT_EQ(Concat(chunked.All()), Concat(legacy.All())) << "seed " << seed;
  }
}

// PR 1 regression: with the pool at capacity, fee ties must be evicted
// by the full (fee desc, id asc) key — the retained set is a pure
// function of the tx set, never of arrival order. Holds for the
// chunked pool exactly as it did for the legacy pool.
TEST(MempoolDifferential, CapacityEvictionFeeTieDeterminism) {
  Rng gen(42);
  std::vector<Transaction> txs;
  for (int i = 0; i < 64; ++i) txs.push_back(RandTx(&gen, 3));

  Bytes reference;
  for (uint64_t order = 0; order < 20; ++order) {
    Rng shuffle_rng(order * 31 + 7);
    std::vector<Transaction> shuffled = txs;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[shuffle_rng.UniformInt(i)]);
    }
    TxPool chunked(/*capacity=*/16, /*chunk_capacity=*/4);
    LegacyTxPool legacy(/*capacity=*/16);
    for (const Transaction& tx : shuffled) {
      const Status a = chunked.Add(tx);
      const Status b = legacy.Add(tx);
      ASSERT_EQ(a.code(), b.code());
    }
    const Bytes retained = Concat(chunked.All());
    ASSERT_EQ(retained, Concat(legacy.All())) << "order " << order;
    if (order == 0) {
      reference = retained;
    } else {
      ASSERT_EQ(retained, reference) << "order " << order;
    }
  }
}

TEST(MempoolDifferential, AddBatchMatchesSequentialAdds) {
  Rng rng(9);
  std::vector<Transaction> txs;
  for (int i = 0; i < 80; ++i) txs.push_back(RandTx(&rng, 8));
  txs.push_back(txs[3]);  // Duplicate inside the batch.

  TxPool batched(/*capacity=*/48, /*chunk_capacity=*/8);
  TxPool sequential(/*capacity=*/48, /*chunk_capacity=*/8);
  const std::vector<Status> got = batched.AddBatch(txs);
  ASSERT_EQ(got.size(), txs.size());
  for (size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(got[i].code(), sequential.Add(txs[i]).code()) << "index " << i;
  }
  EXPECT_EQ(Concat(batched.All()), Concat(sequential.All()));
}

// ------------------- legacy batched RemoveAll paths ----------------------

TEST(LegacyPoolBatchRemove, SweepPathMatchesPerTxRemoval) {
  Rng rng(11);
  LegacyTxPool batch_pool;
  LegacyTxPool single_pool;
  std::vector<Transaction> txs;
  for (int i = 0; i < 200; ++i) txs.push_back(RandTx(&rng, 10));
  for (const Transaction& tx : txs) {
    ASSERT_TRUE(batch_pool.Add(tx).ok());
    ASSERT_TRUE(single_pool.Add(tx).ok());
  }
  // A large confirmed fraction (includes some unpooled strangers, which
  // RemoveAll must skip): exercises the single-sweep path.
  std::vector<Transaction> confirmed(txs.begin(), txs.begin() + 150);
  confirmed.push_back(RandTx(&rng, 10));
  batch_pool.RemoveAll(confirmed);
  for (const Transaction& tx : confirmed) (void)single_pool.Remove(tx.Id());
  EXPECT_EQ(batch_pool.Size(), 50u);
  EXPECT_EQ(Concat(batch_pool.All()), Concat(single_pool.All()));
}

TEST(LegacyPoolBatchRemove, PerKeyPathMatchesPerTxRemoval) {
  Rng rng(13);
  LegacyTxPool batch_pool;
  LegacyTxPool single_pool;
  std::vector<Transaction> txs;
  for (int i = 0; i < 200; ++i) txs.push_back(RandTx(&rng, 10));
  for (const Transaction& tx : txs) {
    ASSERT_TRUE(batch_pool.Add(tx).ok());
    ASSERT_TRUE(single_pool.Add(tx).ok());
  }
  // A small confirmed set: exercises the per-key erase path.
  const std::vector<Transaction> confirmed(txs.begin(), txs.begin() + 5);
  batch_pool.RemoveAll(confirmed);
  for (const Transaction& tx : confirmed) (void)single_pool.Remove(tx.Id());
  EXPECT_EQ(batch_pool.Size(), 195u);
  EXPECT_EQ(Concat(batch_pool.All()), Concat(single_pool.All()));
}

// ------------------- signed batch admission ------------------------------

TEST(TxPoolSignedBatch, OneBadSignatureRejectsOnlyThatTx) {
  Rng rng(17);
  std::vector<Transaction> txs;
  std::vector<KeyPair> keys;
  for (int i = 0; i < 5; ++i) {
    txs.push_back(RandTx(&rng, 10));
    keys.push_back(KeyPair::FromSeed(1000 + i));
  }
  std::vector<Signature> sigs;
  std::vector<const PublicKey*> pks;
  std::vector<const Signature*> sig_ptrs;
  for (int i = 0; i < 5; ++i) {
    sigs.push_back(keys[i].Sign(txs[i].SigningDigest()));
  }
  // Forge exactly one signature.
  sigs[2].preimages[0].bytes[0] ^= 1;
  for (int i = 0; i < 5; ++i) {
    pks.push_back(&keys[i].public_key());
    sig_ptrs.push_back(&sigs[i]);
  }

  TxPool pool(/*capacity=*/64, /*chunk_capacity=*/8);
  const std::vector<Status> got =
      pool.AddSignedBatch(txs, pks, sig_ptrs, /*pool=*/nullptr);
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    if (i == 2) {
      EXPECT_TRUE(got[i].IsUnauthorized()) << got[i].message();
      EXPECT_FALSE(pool.Contains(txs[i].Id()));
    } else {
      EXPECT_TRUE(got[i].ok()) << got[i].message();
      EXPECT_TRUE(pool.Contains(txs[i].Id()));
    }
  }
  EXPECT_EQ(pool.Size(), 4u);
}

TEST(TxPoolSignedBatch, SigningDigestIsDomainSeparatedFromId) {
  Rng rng(19);
  const Transaction tx = RandTx(&rng, 10);
  EXPECT_NE(tx.SigningDigest(), tx.Id());
  // A signature over the id must not authenticate the admission digest.
  const KeyPair key = KeyPair::FromSeed(55);
  const Signature over_id = key.Sign(tx.Id());
  EXPECT_FALSE(Verify(key.public_key(), tx.SigningDigest(), over_id));
  EXPECT_TRUE(Verify(key.public_key(), tx.Id(), over_id));
}

// ------------------- chunk lifecycle -------------------------------------

TEST(TxPoolChunks, ConfirmationRecyclesChunks) {
  TxPool pool(/*capacity=*/1 << 20, /*chunk_capacity=*/8);
  Rng rng(23);
  std::vector<Transaction> txs;
  for (int i = 0; i < 64; ++i) txs.push_back(RandTx(&rng, 10));
  for (const Transaction& tx : txs) ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_EQ(pool.ChunkCount(), 8u);

  pool.RemoveAll(txs);
  EXPECT_TRUE(pool.Empty());
  EXPECT_EQ(pool.ChunkCount(), 0u);

  // Recycled chunks are reused rather than re-allocated.
  for (const Transaction& tx : txs) ASSERT_TRUE(pool.Add(tx).ok());
  EXPECT_EQ(pool.ChunkCount(), 8u);
  EXPECT_EQ(pool.Size(), 64u);
}

TEST(TxPoolChunks, PartialConfirmationCompactsMostlyDeadChunks) {
  TxPool pool(/*capacity=*/1 << 20, /*chunk_capacity=*/8);
  Rng rng(29);
  std::vector<Transaction> txs;
  for (int i = 0; i < 32; ++i) txs.push_back(RandTx(&rng, 10));
  for (const Transaction& tx : txs) ASSERT_TRUE(pool.Add(tx).ok());

  // Confirm 7 of every 8: each chunk crosses the compaction threshold.
  std::vector<Transaction> confirmed;
  for (size_t i = 0; i < txs.size(); ++i) {
    if (i % 8 != 0) confirmed.push_back(txs[i]);
  }
  pool.RemoveAll(confirmed);
  EXPECT_EQ(pool.Size(), 4u);
  for (size_t i = 0; i < txs.size(); ++i) {
    EXPECT_EQ(pool.Contains(txs[i].Id()), i % 8 == 0);
  }
  // Emission still sees exactly the survivors, in fee order.
  LegacyTxPool reference;
  for (size_t i = 0; i < txs.size(); i += 8) {
    ASSERT_TRUE(reference.Add(txs[i]).ok());
  }
  EXPECT_EQ(Concat(pool.All()), Concat(reference.All()));
}

}  // namespace
}  // namespace shardchain
