#include <vector>

#include <gtest/gtest.h>

#include "core/epoch.h"
#include "core/miner_assignment.h"
#include "core/sharding_system.h"
#include "crypto/keys.h"
#include "crypto/vrf.h"

namespace shardchain {
namespace {

std::vector<KeyPair> MakeKeys(size_t n) {
  std::vector<KeyPair> keys;
  for (size_t i = 0; i < n; ++i) keys.push_back(KeyPair::FromSeed(2000 + i));
  return keys;
}

std::vector<LeaderCandidate> Evaluate(const std::vector<KeyPair>& keys,
                                      const Hash256& seed) {
  std::vector<LeaderCandidate> out;
  for (const KeyPair& k : keys) {
    out.push_back(LeaderCandidate{k.public_key(), VrfEvaluate(k, seed)});
  }
  return out;
}

// --- RankCandidates -------------------------------------------------

TEST(RankCandidatesTest, RankingHeadsWithTheElectedLeader) {
  const auto keys = MakeKeys(8);
  const Hash256 seed = Sha256Digest("ranking-seed");
  const auto candidates = Evaluate(keys, seed);

  Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
  ASSERT_TRUE(ranked.ok());
  Result<size_t> leader = ElectLeader(candidates, seed);
  ASSERT_TRUE(leader.ok());
  EXPECT_EQ(ranked->front(), *leader);
}

TEST(RankCandidatesTest, RankingIsAPermutationOrderedByTicket) {
  const auto keys = MakeKeys(10);
  const Hash256 seed = Sha256Digest("permutation-seed");
  const auto candidates = Evaluate(keys, seed);

  Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), candidates.size());
  std::vector<bool> present(candidates.size(), false);
  for (size_t idx : *ranked) present[idx] = true;
  for (bool p : present) EXPECT_TRUE(p);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_LE(VrfTicket(candidates[(*ranked)[i - 1]].vrf.value),
              VrfTicket(candidates[(*ranked)[i]].vrf.value));
  }
}

TEST(RankCandidatesTest, InvalidProofsAreExcluded) {
  const auto keys = MakeKeys(4);
  const Hash256 seed = Sha256Digest("invalid-proof-seed");
  auto candidates = Evaluate(keys, seed);
  // Corrupt candidate 1's proof: its ticket must vanish from the
  // ranking.
  candidates[1].vrf.value.bytes[0] ^= 0xff;

  Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 3u);
  for (size_t idx : *ranked) EXPECT_NE(idx, 1u);
}

// --- EpochManager view-change failover ------------------------------

TEST(EpochFailoverTest, AdvancePicksTheViewRankedLeader) {
  const auto keys = MakeKeys(6);
  const std::vector<double> fractions{50.0, 50.0};

  for (size_t view = 0; view < 3; ++view) {
    EpochManager manager(Sha256Digest("failover-genesis"));
    const Hash256 seed = manager.NextSeed();
    const auto candidates = Evaluate(keys, seed);
    Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
    ASSERT_TRUE(ranked.ok());

    Result<EpochRecord> record = manager.Advance(candidates, fractions, view);
    ASSERT_TRUE(record.ok()) << "view " << view;
    EXPECT_EQ(record->leader_index, (*ranked)[view]);
    EXPECT_EQ(record->view, view);
    EXPECT_EQ(record->randomness, candidates[(*ranked)[view]].vrf.value);
  }
}

TEST(EpochFailoverTest, ViewBeyondCandidatesIsOutOfRange) {
  const auto keys = MakeKeys(3);
  EpochManager manager(Sha256Digest("failover-genesis"));
  const auto candidates = Evaluate(keys, manager.NextSeed());
  Result<EpochRecord> record =
      manager.Advance(candidates, {100.0}, /*view=*/3);
  EXPECT_TRUE(record.status().IsOutOfRange());
}

TEST(EpochFailoverTest, VerifyViewAcceptsExactlyTheLowestLiveCandidate) {
  const auto keys = MakeKeys(5);
  const Hash256 seed = Sha256Digest("view-verify-seed");
  const auto candidates = Evaluate(keys, seed);
  Result<std::vector<size_t>> ranked = RankCandidates(candidates, seed);
  ASSERT_TRUE(ranked.ok());

  // All live: only view 0 with the top-ranked leader verifies.
  std::vector<bool> live(5, true);
  EXPECT_TRUE(EpochManager::VerifyView(candidates, seed, live, 0,
                                       (*ranked)[0])
                  .ok());
  EXPECT_FALSE(EpochManager::VerifyView(candidates, seed, live, 1,
                                        (*ranked)[1])
                   .ok())
      << "skipping a live leader must be rejected";

  // Kill the top-ranked leader: view 1 with the runner-up verifies,
  // view 0 does not (dead leader), and impersonation fails.
  live[(*ranked)[0]] = false;
  EXPECT_TRUE(EpochManager::VerifyView(candidates, seed, live, 1,
                                       (*ranked)[1])
                  .ok());
  EXPECT_FALSE(EpochManager::VerifyView(candidates, seed, live, 0,
                                        (*ranked)[0])
                   .ok());
  EXPECT_FALSE(EpochManager::VerifyView(candidates, seed, live, 1,
                                        (*ranked)[2])
                   .ok())
      << "a wrong leader at the claimed view must be rejected";

  // Mismatched live vector length is an argument error.
  EXPECT_TRUE(EpochManager::VerifyView(candidates, seed, {true}, 0,
                                       (*ranked)[0])
                  .IsInvalidArgument());
}

// --- Fallback epochs ------------------------------------------------

TEST(EpochFallbackTest, FallbackKeepsTheSeedChainUnbroken) {
  const auto keys = MakeKeys(4);
  EpochManager manager(Sha256Digest("fallback-genesis"));

  // Epoch 1: normal. Epoch 2: fallback. Epoch 3: normal again.
  Result<EpochRecord> e1 =
      manager.Advance(Evaluate(keys, manager.NextSeed()), {100.0});
  ASSERT_TRUE(e1.ok());

  Result<EpochRecord> e2 = manager.AdvanceFallback();
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE(e2->fallback);
  EXPECT_EQ(e2->number, 2u);
  EXPECT_EQ(e2->randomness, EpochManager::FallbackRandomness(e2->seed));
  EXPECT_EQ(e2->fractions, std::vector<double>{100.0});
  // The record verifies structurally without any leader key.
  EXPECT_TRUE(EpochManager::VerifyRecord(*e2, e1->randomness,
                                         keys[0].public_key(), VrfOutput{})
                  .ok());
  // A tampered fallback randomness is caught.
  EpochRecord forged = *e2;
  forged.randomness.bytes[0] ^= 1;
  EXPECT_FALSE(EpochManager::VerifyRecord(forged, e1->randomness,
                                          keys[0].public_key(), VrfOutput{})
                   .ok());

  // Every miner lands in the MaxShard during the fallback epoch.
  for (size_t i = 0; i < 6; ++i) {
    Result<ShardId> shard =
        manager.CurrentShardOf(Sha256Digest("miner-" + std::to_string(i)));
    ASSERT_TRUE(shard.ok());
    EXPECT_EQ(*shard, kMaxShardId);
  }

  Result<EpochRecord> e3 =
      manager.Advance(Evaluate(keys, manager.NextSeed()), {100.0});
  ASSERT_TRUE(e3.ok());
  EXPECT_FALSE(e3->fallback);
  EXPECT_EQ(e3->number, 3u);
}

TEST(ShardingSystemFallbackTest, FallbackEpochFullyValidatesInMaxShard) {
  ShardingSystem system(ShardingSystemConfig{}, 99);
  for (int i = 0; i < 5; ++i) system.AddMiner();
  const Address alice = Address::FromHash(Sha256Digest("alice"));
  const Address bob = Address::FromHash(Sha256Digest("bob"));
  system.Mint(alice, 1000);

  ASSERT_TRUE(system.BeginFallbackEpoch().ok());
  EXPECT_TRUE(system.EpochActive());
  EXPECT_TRUE(system.CurrentEpochIsFallback());
  for (NodeId m = 0; m < 5; ++m) {
    EXPECT_EQ(system.ShardOfMiner(m), kMaxShardId)
        << "fallback must send every miner to the MaxShard";
  }

  // The degraded epoch still makes progress: txs route and blocks mine.
  Transaction tx;
  tx.kind = TxKind::kDirectTransfer;
  tx.sender = alice;
  tx.recipient = bob;
  tx.value = 10;
  tx.fee = 1;
  Result<ShardId> routed = system.SubmitTransaction(tx);
  ASSERT_TRUE(routed.ok());
  Result<Hash256> mined = system.MineBlock(2);
  ASSERT_TRUE(mined.ok());

  // The next normal epoch clears the degraded mode.
  ASSERT_TRUE(system.BeginEpoch(1).ok());
  EXPECT_FALSE(system.CurrentEpochIsFallback());
  EXPECT_EQ(system.epochs().EpochCount(), 2u);
}

}  // namespace
}  // namespace shardchain
