// Churn-tolerant epochs and authenticated cross-shard migration
// (DESIGN.md §12): miner lifecycle under join/retire/crash, orphan-
// shard degradation into the MaxShard, handoff proof verification, and
// the differential determinism gate — identical churn + workload seeds
// must yield byte-identical epoch records, canonical migration plans,
// and state roots across shuffled transaction arrival orders and
// thread counts {1, 4}.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/churn.h"
#include "core/migration.h"
#include "core/sharding_system.h"
#include "core/unification_codec.h"

namespace shardchain {
namespace {

Address Addr(uint8_t tag) {
  Address a;
  a.bytes.fill(tag);
  return a;
}

ShardingSystemConfig SmallConfig(size_t threads = 1) {
  ShardingSystemConfig config;
  config.chain.max_txs_per_block = 64;
  config.merge.min_shard_size = 2;
  config.merge.subslots = 16;
  config.merge.max_slots = 80;
  config.parallel = ParallelConfig{threads};
  return config;
}

class ChurnMigrationTest : public ::testing::Test {
 protected:
  ChurnMigrationTest() : system_(SmallConfig(), /*seed=*/7) {}

  Address Deploy(uint8_t tag) {
    Result<Address> contract = system_.DeployContract(
        Addr(tag), contracts::UnconditionalTransfer(Addr(0xee)));
    EXPECT_TRUE(contract.ok());
    return *contract;
  }

  Transaction CallTx(const Address& sender, const Address& contract,
                     uint64_t nonce = 0, Amount fee = 10) {
    Transaction tx;
    tx.kind = TxKind::kContractCall;
    tx.sender = sender;
    tx.recipient = contract;
    tx.value = 50;
    tx.fee = fee;
    tx.nonce = nonce;
    return tx;
  }

  /// Every live miner packs once, in ascending NodeId order.
  void MineRound() {
    for (NodeId m : system_.LiveMiners()) {
      Result<Hash256> mined = system_.MineBlock(m);
      EXPECT_TRUE(mined.ok()) << mined.status().message();
    }
  }

  ShardingSystem system_;
};

// --------------------------- Miner lifecycle ---------------------------

TEST_F(ChurnMigrationTest, JoinerEntersAtNextBoundary) {
  for (int i = 0; i < 4; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());

  const NodeId joiner = system_.JoinMiner();
  EXPECT_EQ(system_.StatusOfMiner(joiner), MinerStatus::kPending);
  EXPECT_FALSE(system_.MinerLive(joiner));
  EXPECT_EQ(system_.LiveMinerCount(), 4u);
  EXPECT_TRUE(system_.MineBlock(joiner).status().IsUnauthorized());
  EXPECT_EQ(system_.ShardOfMiner(joiner), kUnassignedShard);

  ASSERT_TRUE(system_.BeginEpoch(2).ok());
  EXPECT_EQ(system_.StatusOfMiner(joiner), MinerStatus::kActive);
  EXPECT_EQ(system_.LiveMinerCount(), 5u);
  EXPECT_NE(system_.ShardOfMiner(joiner), kUnassignedShard);
  EXPECT_TRUE(system_.MineBlock(joiner).ok());
}

TEST_F(ChurnMigrationTest, RetireeServesOutTheEpoch) {
  for (int i = 0; i < 4; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());

  ASSERT_TRUE(system_.RetireMiner(2).ok());
  EXPECT_EQ(system_.StatusOfMiner(2), MinerStatus::kRetiring);
  EXPECT_TRUE(system_.MinerLive(2));
  EXPECT_TRUE(system_.MineBlock(2).ok()) << "retiree serves out the epoch";

  ASSERT_TRUE(system_.BeginEpoch(2).ok());
  EXPECT_EQ(system_.StatusOfMiner(2), MinerStatus::kDeparted);
  EXPECT_FALSE(system_.MinerLive(2));
  EXPECT_EQ(system_.ShardOfMiner(2), kUnassignedShard);
  EXPECT_TRUE(system_.MineBlock(2).status().IsUnauthorized());
  EXPECT_TRUE(system_.RetireMiner(2).IsFailedPrecondition());
}

TEST_F(ChurnMigrationTest, CrashedMinerStopsServingImmediately) {
  for (int i = 0; i < 4; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());

  ASSERT_TRUE(system_.CrashMiner(3).ok());
  EXPECT_EQ(system_.StatusOfMiner(3), MinerStatus::kDeparted);
  EXPECT_TRUE(system_.MineBlock(3).status().IsUnauthorized());
  EXPECT_EQ(system_.LiveMinerCount(), 3u);
  EXPECT_TRUE(system_.CrashMiner(3).IsFailedPrecondition());
}

TEST_F(ChurnMigrationTest, LeaderCrashDegradesAndFallbackRecovers) {
  for (int i = 0; i < 5; ++i) system_.AddMiner();
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  EXPECT_FALSE(system_.EpochDegraded());

  ASSERT_TRUE(system_.CrashMiner(system_.leader()).ok());
  EXPECT_TRUE(system_.EpochDegraded()) << "leader crash must degrade";

  // Graceful degradation: the fallback epoch puts every survivor on the
  // MaxShard, and EpochDegraded clears.
  ASSERT_TRUE(system_.BeginFallbackEpoch().ok());
  EXPECT_TRUE(system_.CurrentEpochIsFallback());
  EXPECT_FALSE(system_.EpochDegraded());
  for (NodeId m : system_.LiveMiners()) {
    EXPECT_EQ(system_.ShardOfMiner(m), kMaxShardId);
    EXPECT_TRUE(system_.MineBlock(m).ok());
  }
  // The seed chain is unbroken: the next epoch elects a leader again.
  ASSERT_TRUE(system_.BeginEpoch(3).ok());
  EXPECT_FALSE(system_.CurrentEpochIsFallback());
  EXPECT_TRUE(system_.MinerLive(system_.leader()));
}

// ---------------------- Orphan-shard degradation -----------------------

TEST_F(ChurnMigrationTest, OrphanedShardMergesIntoMaxShardWithProofs) {
  for (int i = 0; i < 6; ++i) system_.AddMiner();
  const Address c1 = Deploy(1);
  const Address sender = Addr(10);
  system_.Mint(sender, 10'000);
  ASSERT_TRUE(system_.BeginEpoch(1).ok());

  // A second populated shard keeps part of the population (and the
  // system) alive when the first shard's miners all crash.
  const Address c2 = Deploy(2);
  const Address other = Addr(11);
  system_.Mint(other, 10'000);

  Result<ShardId> routed = system_.SubmitTransaction(CallTx(sender, c1, 0));
  ASSERT_TRUE(routed.ok());
  const ShardId shard = *routed;
  ASSERT_NE(shard, kMaxShardId);
  ASSERT_TRUE(system_.SubmitTransaction(CallTx(other, c2, 0)).ok());
  // Re-run the epoch so the fractions include the new shards — miners
  // then land on them and confirm the pooled transactions.
  ASSERT_TRUE(system_.BeginEpoch(2).ok());
  ASSERT_FALSE(system_.MinersOfShard(shard).empty());
  ASSERT_LT(system_.MinersOfShard(shard).size(), system_.LiveMinerCount());
  MineRound();
  const Ledger* source = system_.ShardLedger(shard);
  ASSERT_NE(source, nullptr);
  const uint64_t nonce_on_source = source->tip_state().NonceOf(sender);
  ASSERT_EQ(nonce_on_source, 1u);

  // Crash every miner serving the contract shard: the shard is orphaned
  // and must degrade into the MaxShard instead of stalling.
  for (NodeId m : system_.MinersOfShard(shard)) {
    ASSERT_TRUE(system_.CrashMiner(m).ok());
  }
  ASSERT_GT(system_.LiveMinerCount(), 0u);
  EXPECT_EQ(system_.ShardLedger(shard), system_.ShardLedger(kMaxShardId))
      << "orphaned shard must alias to the MaxShard";

  // Routing now resolves to the MaxShard, and the sender's executed
  // state (its advanced nonce) followed under verified handoffs.
  Result<ShardId> rerouted = system_.SubmitTransaction(CallTx(sender, c1, 1));
  ASSERT_TRUE(rerouted.ok());
  EXPECT_EQ(*rerouted, kMaxShardId);
  const Ledger* max = system_.ShardLedger(kMaxShardId);
  ASSERT_NE(max, nullptr);
  EXPECT_EQ(max->tip_state().NonceOf(sender), nonce_on_source);

  ASSERT_FALSE(system_.MigrationLog().empty());
  for (const HandoffRecord& record : system_.MigrationLog()) {
    EXPECT_TRUE(VerifyHandoff(record).ok())
        << "every accepted migration must re-verify against its root";
    EXPECT_EQ(record.dest, kMaxShardId);
  }
  // Graceful degradation end-to-end: the fallback epoch puts the
  // survivors on the MaxShard, which confirms the rerouted traffic.
  ASSERT_TRUE(system_.BeginFallbackEpoch().ok());
  MineRound();
  EXPECT_EQ(max->tip_state().NonceOf(sender), nonce_on_source + 1);
}

// ------------------------ Authenticated handoffs -----------------------

TEST_F(ChurnMigrationTest, ContractSetChangeMigratesSenderUnderProof) {
  for (int i = 0; i < 4; ++i) system_.AddMiner();
  const Address c1 = Deploy(1);
  const Address c2 = Deploy(2);
  const Address sender = Addr(10);
  system_.Mint(sender, 10'000);
  ASSERT_TRUE(system_.BeginEpoch(1).ok());

  Result<ShardId> s1 = system_.SubmitTransaction(CallTx(sender, c1, 0));
  ASSERT_TRUE(s1.ok());
  // Re-run the epoch: the fractions now route every miner to the new
  // shard (it holds 100% of routed transactions), confirming the tx.
  ASSERT_TRUE(system_.BeginEpoch(2).ok());
  MineRound();
  const Ledger* source = system_.ShardLedger(*s1);
  const Amount balance_on_source = source->tip_state().BalanceOf(sender);
  ASSERT_EQ(source->tip_state().NonceOf(sender), 1u);

  // Calling a SECOND contract demotes the sender to the MaxShard
  // (Sec. II-C); its executed account state must migrate along, under a
  // handoff whose proof anchors to the source shard's root.
  Result<ShardId> s2 = system_.SubmitTransaction(CallTx(sender, c2, 1));
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, kMaxShardId);
  ASSERT_EQ(system_.MigrationLog().size(), 1u);
  const HandoffRecord& record = system_.MigrationLog().front();
  EXPECT_EQ(record.addr, sender);
  EXPECT_EQ(record.source, *s1);
  EXPECT_EQ(record.dest, kMaxShardId);
  EXPECT_TRUE(VerifyHandoff(record).ok());
  EXPECT_EQ(record.account.nonce, 1u);

  const Ledger* max = system_.ShardLedger(kMaxShardId);
  EXPECT_EQ(max->tip_state().NonceOf(sender), 1u);
  EXPECT_EQ(max->tip_state().BalanceOf(sender), balance_on_source);
  // The source-side eviction is deferred to the boundary (so other
  // handoffs from the shard keep anchoring to the same root); after the
  // next epoch begins, the account no longer double-exists.
  EXPECT_NE(source->tip_state().Find(sender), nullptr);
  ASSERT_TRUE(system_.BeginEpoch(3).ok());
  EXPECT_EQ(source->tip_state().Find(sender), nullptr);
}

TEST_F(ChurnMigrationTest, TamperedHandoffRejectedWithoutHaltingEpoch) {
  for (int i = 0; i < 4; ++i) system_.AddMiner();
  const Address c1 = Deploy(1);
  const Address sender = Addr(10);
  system_.Mint(sender, 10'000);
  system_.Mint(Addr(11), 10'000);  // Funded before the shard forms.
  ASSERT_TRUE(system_.BeginEpoch(1).ok());
  Result<ShardId> s1 = system_.SubmitTransaction(CallTx(sender, c1, 0));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(system_.BeginEpoch(2).ok());
  MineRound();

  const Ledger* source = system_.ShardLedger(*s1);
  ASSERT_EQ(source->tip_state().NonceOf(sender), 1u);
  Result<HandoffRecord> honest =
      BuildHandoff(source->tip_state(), *s1, kMaxShardId, sender);
  ASSERT_TRUE(honest.ok());
  ASSERT_TRUE(VerifyHandoff(*honest).ok());

  // Inflate the carried balance: the digest no longer matches the
  // proven leaf, so the receive side must reject...
  HandoffRecord forged = *honest;
  forged.account.balance += 1;
  EXPECT_TRUE(system_.ApplyHandoff(forged).IsUnauthorized());
  // ...a proof rewired to a root that never existed is malformed...
  HandoffRecord rewired = *honest;
  rewired.source_root = Hash256{};
  EXPECT_FALSE(system_.ApplyHandoff(rewired).ok());

  // ...and a replay of a once-valid handoff whose source chain moved on
  // is stale: the proof still verifies against the CARRIED root, but
  // that root is no longer the source ledger's current one.
  const Address other = Addr(11);
  ASSERT_TRUE(system_.SubmitTransaction(CallTx(other, c1, 0)).ok());
  MineRound();
  ASSERT_NE(source->tip_state().StateRoot(), honest->source_root);
  ASSERT_TRUE(VerifyHandoff(*honest).ok());
  EXPECT_TRUE(system_.ApplyHandoff(*honest).IsUnauthorized());

  // Rejection never halts: the epoch is still active, mining and a
  // freshly built handoff still work.
  EXPECT_TRUE(system_.EpochActive());
  EXPECT_TRUE(system_.MigrationLog().empty());
  Result<HandoffRecord> fresh =
      BuildHandoff(source->tip_state(), *s1, kMaxShardId, sender);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(system_.ApplyHandoff(*fresh).ok());
  EXPECT_EQ(system_.MigrationLog().size(), 1u);
  MineRound();
}

// ------------------------ Churn schedule drawing -----------------------

TEST(ChurnScheduleTest, SameSeedSameSchedule) {
  ChurnConfig config;
  config.join_rate = 1.5;
  config.retire_probability = 0.1;
  config.crash_probability = 0.1;
  config.min_live_miners = 4;
  std::vector<NodeId> live{0, 1, 2, 3, 4, 5, 6, 7};

  const auto a = DrawChurnEvents(config, 99, 3, live);
  const auto b = DrawChurnEvents(config, 99, 3, live);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].when, b[i].when);
  }
}

TEST(ChurnScheduleTest, DeparturesRespectTheMinLiveFloor) {
  ChurnConfig config;
  config.retire_probability = 1.0;  // Everyone wants to leave...
  config.crash_probability = 1.0;
  config.min_live_miners = 5;       // ...but the floor holds.
  std::vector<NodeId> live{0, 1, 2, 3, 4, 5, 6, 7};
  for (uint64_t epoch = 0; epoch < 8; ++epoch) {
    size_t departures = 0;
    for (const ChurnEvent& e : DrawChurnEvents(config, 7, epoch, live)) {
      if (e.kind != ChurnEventKind::kJoin) ++departures;
      if (e.kind == ChurnEventKind::kCrash) {
        EXPECT_GE(e.when, 0.0);
        EXPECT_LT(e.when, 1.0);
      }
    }
    EXPECT_LE(departures, live.size() - config.min_live_miners);
  }
}

// --------------------------- Migration codecs --------------------------

TEST(MigrationCodecTest, HandoffAndPlanRoundTripByteExactly) {
  ShardingSystemConfig config = SmallConfig();
  ShardingSystem system(config, /*seed=*/7);
  system.AddMiner();
  Result<Address> c1 = system.DeployContract(
      Addr(1), contracts::UnconditionalTransfer(Addr(0xee)));
  ASSERT_TRUE(c1.ok());
  const Address sender = Addr(10);
  system.Mint(sender, 10'000);
  ASSERT_TRUE(system.BeginEpoch(1).ok());
  Transaction tx;
  tx.kind = TxKind::kContractCall;
  tx.sender = sender;
  tx.recipient = *c1;
  tx.value = 50;
  tx.fee = 10;
  Result<ShardId> shard = system.SubmitTransaction(tx);
  ASSERT_TRUE(shard.ok());
  for (NodeId m : system.LiveMiners()) ASSERT_TRUE(system.MineBlock(m).ok());

  Result<HandoffRecord> record = BuildHandoff(
      system.ShardLedger(*shard)->tip_state(), *shard, kMaxShardId, sender);
  ASSERT_TRUE(record.ok());

  const Bytes wire = codec::EncodeHandoffRecord(*record);
  Result<HandoffRecord> back = codec::DecodeHandoffRecord(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(codec::EncodeHandoffRecord(*back), wire);
  // The decoded handoff still verifies: codec preserves proof fidelity.
  EXPECT_TRUE(VerifyHandoff(*back).ok());

  MigrationPlan plan;
  plan.epoch = 3;
  plan.handoffs = {*record};
  const Bytes plan_wire = codec::EncodeMigrationPlan(plan);
  Result<MigrationPlan> plan_back = codec::DecodeMigrationPlan(plan_wire);
  ASSERT_TRUE(plan_back.ok());
  EXPECT_EQ(plan_back->epoch, 3u);
  EXPECT_EQ(codec::EncodeMigrationPlan(*plan_back), plan_wire);

  // Truncation and trailing garbage are malformed, not misread.
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(codec::DecodeHandoffRecord(truncated).ok());
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(codec::DecodeHandoffRecord(padded).ok());
}

TEST(MigrationCodecTest, AccountStateRejectsUnsortedStorage) {
  Account account;
  account.balance = 5;
  account.nonce = 2;
  account.storage = {{1, 10}, {2, -20}};
  const Bytes wire = codec::EncodeAccountState(account);
  Result<Account> back = codec::DecodeAccountState(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(codec::EncodeAccountState(*back), wire);
  EXPECT_EQ(back->storage.at(2), -20);

  // Swapping the two 16-byte storage slots breaks the strictly-
  // ascending key order the canonical stream requires (layout: balance,
  // nonce, code length, empty code, slot count, then the slots at
  // offset 32).
  Bytes unsorted = wire;
  ASSERT_EQ(unsorted.size(), 64u);
  std::swap_ranges(unsorted.begin() + 32, unsorted.begin() + 48,
                   unsorted.begin() + 48);
  EXPECT_FALSE(codec::DecodeAccountState(unsorted).ok());
}

// ---------------------- Differential determinism gate ------------------

struct Trace {
  std::vector<Bytes> epoch_records;
  std::vector<Bytes> migration_plans;
  std::vector<Bytes> state_roots;
  size_t migrations = 0;

  bool operator==(const Trace& other) const {
    return epoch_records == other.epoch_records &&
           migration_plans == other.migration_plans &&
           state_roots == other.state_roots;
  }
};

/// One full churn-and-migration run: seeded churn schedule, per-epoch
/// workload with returning senders that switch contracts (forcing
/// migrations), intra-epoch submissions SHUFFLED by `shuffle_salt`
/// after a fixed route-pinning preamble. Everything consensus-visible
/// is recorded in canonical bytes.
Trace RunTrace(size_t threads, uint64_t shuffle_salt) {
  ShardingSystem system(SmallConfig(threads), /*seed=*/11);
  for (int i = 0; i < 8; ++i) system.AddMiner();

  std::vector<Address> contracts;
  for (uint8_t c = 1; c <= 4; ++c) {
    Result<Address> deployed = system.DeployContract(
        Addr(c), contracts::UnconditionalTransfer(Addr(0xee)));
    EXPECT_TRUE(deployed.ok());
    contracts.push_back(*deployed);
  }
  std::vector<Address> senders;
  std::vector<size_t> homes;
  std::vector<uint64_t> nonces;
  for (uint8_t u = 0; u < 6; ++u) {
    senders.push_back(Addr(static_cast<uint8_t>(0x40 + u)));
    system.Mint(senders.back(), 1'000'000);
    homes.push_back(u % contracts.size());
    nonces.push_back(0);
  }
  // Route-pinning preamble: one funded probe per contract, in fixed
  // order, so ShardFormation numbers the shards identically no matter
  // how later arrivals are shuffled.
  for (uint8_t c = 0; c < contracts.size(); ++c) {
    system.Mint(Addr(static_cast<uint8_t>(0x80 + c)), 1'000);
  }

  ChurnConfig churn;
  churn.join_rate = 0.7;
  churn.retire_probability = 0.08;
  churn.crash_probability = 0.08;
  churn.min_live_miners = 4;

  Trace trace;
  for (uint64_t epoch = 0; epoch < 4; ++epoch) {
    const std::vector<ChurnEvent> events =
        DrawChurnEvents(churn, /*seed=*/555, epoch, system.LiveMiners());
    EXPECT_TRUE(system.ApplyChurn(events).ok());
    if (system.EpochDegraded()) {
      EXPECT_TRUE(system.BeginFallbackEpoch().ok());
    } else {
      EXPECT_TRUE(system.BeginEpoch(epoch).ok());
    }
    trace.epoch_records.push_back(
        codec::EncodeEpochRecord(*system.epochs().Current()));

    if (epoch == 0) {
      for (uint8_t c = 0; c < contracts.size(); ++c) {
        Transaction probe;
        probe.kind = TxKind::kContractCall;
        probe.sender = Addr(static_cast<uint8_t>(0x80 + c));
        probe.recipient = contracts[c];
        probe.value = 1;
        probe.fee = 1;
        Result<ShardId> pinned = system.SubmitTransaction(probe);
        EXPECT_TRUE(pinned.ok());
      }
    }

    // Workload: drawn from the WORKLOAD seed alone — identical across
    // runs. A switching sender calls only its new contract this epoch,
    // so the migration set cannot depend on intra-epoch order.
    Rng workload(0xBEEF0000 + epoch);
    std::vector<Transaction> txs;
    for (size_t u = 0; u < senders.size(); ++u) {
      if (workload.Bernoulli(0.5)) {
        homes[u] = (homes[u] + 1 + workload.UniformInt(contracts.size() - 1)) %
                   contracts.size();
      }
      for (int k = 0; k < 2; ++k) {
        Transaction tx;
        tx.kind = TxKind::kContractCall;
        tx.sender = senders[u];
        tx.recipient = contracts[homes[u]];
        tx.value = 50;
        tx.fee = 5 + workload.UniformInt(40);
        tx.nonce = nonces[u]++;
        txs.push_back(tx);
      }
    }

    // The gate's independent variable: intra-epoch arrival order.
    Rng shuffler(shuffle_salt ^ (epoch * 0x9e37));
    shuffler.Shuffle(&txs);
    for (const Transaction& tx : txs) {
      Result<ShardId> routed = system.SubmitTransaction(tx);
      EXPECT_TRUE(routed.ok()) << routed.status().message();
    }
    for (NodeId m : system.LiveMiners()) {
      EXPECT_TRUE(system.MineBlock(m).ok());
    }

    trace.migration_plans.push_back(
        codec::EncodeMigrationPlan(system.EpochMigrationPlan()));
  }

  trace.migrations = system.MigrationLog().size();
  for (const HandoffRecord& record : system.MigrationLog()) {
    EXPECT_TRUE(VerifyHandoff(record).ok());
  }
  // Final roots of every live shard, in id order.
  for (ShardId s = 0; s < system.ShardCount(); ++s) {
    const Ledger* ledger = system.ShardLedger(s);
    if (ledger == nullptr) continue;
    const Hash256 root = ledger->tip_state().StateRoot();
    trace.state_roots.emplace_back(root.bytes.begin(), root.bytes.end());
  }
  return trace;
}

TEST(ChurnDeterminismGate, ByteIdenticalAcrossArrivalOrdersAndThreads) {
  const Trace baseline = RunTrace(/*threads=*/1, /*shuffle_salt=*/0xA1);
  EXPECT_GT(baseline.migrations, 0u)
      << "the gate must actually exercise migrations";
  bool any_plan_nonempty = false;
  for (const Bytes& plan : baseline.migration_plans) {
    Result<MigrationPlan> decoded = codec::DecodeMigrationPlan(plan);
    ASSERT_TRUE(decoded.ok());
    if (!decoded->handoffs.empty()) any_plan_nonempty = true;
  }
  EXPECT_TRUE(any_plan_nonempty);

  EXPECT_EQ(RunTrace(1, 0xB2), baseline) << "arrival order leaked into bytes";
  EXPECT_EQ(RunTrace(4, 0xA1), baseline) << "thread count leaked into bytes";
  EXPECT_EQ(RunTrace(4, 0xC3), baseline)
      << "threads x arrival order leaked into bytes";
}

}  // namespace
}  // namespace shardchain
